// TDMA slot assignment via distributed edge coloring.
//
// Scenario: radio links (edges) of a sensor network must be assigned time
// slots so that no two links sharing an endpoint transmit simultaneously —
// a proper coloring of the *line graph*, the bounded-neighborhood-
// independence family the paper's related work highlights. We build the
// line graph, hand it to the Theorem 1.4 pipeline, and compare the slot
// count against the trivial lower bound (the maximum number of links at
// one node).
//
//   $ ./tdma_scheduling [n] [avg_degree] [seed]
#include <cstdlib>
#include <iostream>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/graph/generators.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::uint32_t d = argc > 2 ? std::atoi(argv[2]) : 6;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 3;

  const ldc::Graph radio = ldc::gen::random_regular(n, d, seed);
  const ldc::Graph links = ldc::gen::line_graph(radio);
  std::cout << "radio net: " << radio.n() << " stations, " << radio.m()
            << " links; line graph Delta=" << links.max_degree() << "\n";

  // Each link may use any slot in [0, Delta_L + 1) — the standard
  // (Delta+1) instance on the line graph.
  const ldc::LdcInstance inst = ldc::delta_plus_one_instance(links);

  ldc::Network net(links);
  const auto res = ldc::d1lc::color(net, inst);
  const auto check = ldc::validate_proper(links, res.phi);

  const std::size_t slots = ldc::colors_used(res.phi);
  // Lower bound: a station with k incident links needs >= k slots.
  std::uint32_t lb = 0;
  for (ldc::NodeId v = 0; v < radio.n(); ++v) {
    lb = std::max(lb, radio.degree(v));
  }
  std::cout << "schedule valid=" << check.ok << " slots=" << slots
            << " (lower bound " << lb << ", Vizing bound " << lb + 1 << ")\n";
  std::cout << "rounds=" << res.rounds
            << " max_message_bits=" << net.metrics().max_message_bits
            << "\n";
  return check.ok ? 0 : 1;
}
