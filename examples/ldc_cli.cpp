// ldc_cli — command-line driver for the library.
//
//   ldc_cli gen   --gen <spec> [--seed S] [--ids BITS] --out FILE
//   ldc_cli color [--graph FILE | --gen <spec>] [--algo NAME]
//                 [--space K] [--reduction R] [--seed S] [--dot FILE]
//   ldc_cli edge  [--graph FILE | --gen <spec>]
//
// Graph specs: regular:<n>,<d>  gnp:<n>,<p>  ring:<n>  torus:<w>,<h>
//              clique:<n>  tree:<n>  power:<n>,<alpha>,<avg>
// Algorithms:  pipeline (default, Theorem 1.4), local (no reduction),
//              luby, oneclass, kw, repair
//
// Prints the validation verdict, round count, message statistics and a
// quality summary; optionally writes a colored DOT file.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ldc/baselines/color_reduction.hpp"
#include "ldc/baselines/kw_reduction.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/instance_io.hpp"
#include "ldc/coloring/stats.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/d1lc/edge_color.hpp"
#include "ldc/d1lc/fhk_local.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/graph/io.hpp"
#include "ldc/repair/repair.hpp"

namespace {

using namespace ldc;

[[noreturn]] void usage(const std::string& why = "") {
  if (!why.empty()) std::cerr << "error: " << why << "\n";
  std::cerr <<
      "usage:\n"
      "  ldc_cli gen   --gen SPEC [--seed S] [--ids BITS] --out FILE\n"
      "  ldc_cli color [--graph FILE | --gen SPEC] [--algo NAME]\n"
      "                [--instance FILE]\n"
      "                [--space K] [--reduction R] [--seed S] [--dot FILE]\n"
      "  ldc_cli edge  [--graph FILE | --gen SPEC]\n"
      "specs: regular:n,d gnp:n,p ring:n torus:w,h clique:n tree:n "
      "power:n,alpha,avg\n"
      "algos: pipeline local luby oneclass kw repair\n";
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("unexpected argument " + key);
    if (i + 1 >= argc) usage("missing value for " + key);
    flags[key.substr(2)] = argv[++i];
  }
  return flags;
}

std::vector<double> split_numbers(const std::string& s) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}

Graph make_graph(const std::string& spec, std::uint64_t seed) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const auto args = colon == std::string::npos
                        ? std::vector<double>{}
                        : split_numbers(spec.substr(colon + 1));
  auto need = [&](std::size_t k) {
    if (args.size() != k) usage("spec " + kind + " needs " +
                                std::to_string(k) + " arguments");
  };
  if (kind == "regular") {
    need(2);
    return gen::random_regular(static_cast<std::uint32_t>(args[0]),
                               static_cast<std::uint32_t>(args[1]), seed);
  }
  if (kind == "gnp") {
    need(2);
    return gen::gnp(static_cast<std::uint32_t>(args[0]), args[1], seed);
  }
  if (kind == "ring") {
    need(1);
    return gen::ring(static_cast<std::uint32_t>(args[0]));
  }
  if (kind == "torus") {
    need(2);
    return gen::torus(static_cast<std::uint32_t>(args[0]),
                      static_cast<std::uint32_t>(args[1]));
  }
  if (kind == "clique") {
    need(1);
    return gen::clique(static_cast<std::uint32_t>(args[0]));
  }
  if (kind == "tree") {
    need(1);
    return gen::random_tree(static_cast<std::uint32_t>(args[0]), seed);
  }
  if (kind == "power") {
    need(3);
    return gen::power_law(static_cast<std::uint32_t>(args[0]), args[1],
                          args[2], seed);
  }
  usage("unknown graph spec " + kind);
}

Graph obtain_graph(const std::map<std::string, std::string>& flags,
                   std::uint64_t seed) {
  if (flags.count("graph")) return io::load_edge_list(flags.at("graph"));
  if (flags.count("gen")) return make_graph(flags.at("gen"), seed);
  usage("need --graph or --gen");
}

int cmd_gen(const std::map<std::string, std::string>& flags) {
  const std::uint64_t seed =
      flags.count("seed") ? std::stoull(flags.at("seed")) : 1;
  Graph g = obtain_graph(flags, seed);
  if (flags.count("ids")) {
    const auto bits = std::stoul(flags.at("ids"));
    gen::scramble_ids(g, 1ULL << bits, seed + 1);
  }
  if (!flags.count("out")) usage("gen needs --out");
  io::save_edge_list(flags.at("out"), g);
  std::cout << "wrote " << flags.at("out") << ": n=" << g.n()
            << " m=" << g.m() << " Delta=" << g.max_degree() << "\n";
  return 0;
}

int cmd_color(const std::map<std::string, std::string>& flags) {
  const std::uint64_t seed =
      flags.count("seed") ? std::stoull(flags.at("seed")) : 1;
  const Graph g = obtain_graph(flags, seed);
  const std::uint64_t space =
      flags.count("space") ? std::stoull(flags.at("space"))
                           : g.max_degree() + 1;
  const LdcInstance inst =
      flags.count("instance")
          ? io::load_instance(flags.at("instance"), g)
          : (space == g.max_degree() + 1)
                ? delta_plus_one_instance(g)
                : degree_plus_one_instance(g, space, seed + 2);
  const std::string algo =
      flags.count("algo") ? flags.at("algo") : "pipeline";

  Network net(g);
  Coloring phi;
  std::uint64_t rounds = 0;
  if (algo == "pipeline" || algo == "local") {
    d1lc::PipelineOptions opt;
    if (algo == "local") opt.reduction_levels = 0;
    if (flags.count("reduction")) {
      opt.reduction_levels = std::stoul(flags.at("reduction"));
    }
    const auto res = d1lc::color(net, inst, opt);
    phi = res.phi;
    rounds = res.rounds;
  } else if (algo == "luby") {
    const auto res = baselines::luby_list_coloring(net, inst);
    phi = res.phi;
    rounds = res.rounds;
  } else if (algo == "oneclass") {
    const auto res = baselines::linial_then_reduce(net, inst);
    phi = res.phi;
    rounds = res.rounds;
  } else if (algo == "kw") {
    const auto res = baselines::linial_then_kw(net);
    phi = res.phi;
    rounds = res.rounds;
  } else if (algo == "repair") {
    const auto res = repair::repair(net, inst, Coloring(g.n(), kUncolored));
    phi = res.phi;
    rounds = res.rounds;
  } else {
    usage("unknown algorithm " + algo);
  }

  const auto check = validate_ldc(inst, phi);
  const auto stats = coloring_stats(inst, phi);
  std::cout << "graph: n=" << g.n() << " m=" << g.m()
            << " Delta=" << g.max_degree() << "\n";
  std::cout << "algo=" << algo << " valid=" << check.ok
            << " rounds=" << rounds << " colors=" << stats.colors_used
            << "\n";
  std::cout << "traffic: " << net.metrics().messages << " msgs, max "
            << net.metrics().max_message_bits << " bits, total "
            << net.metrics().total_bits << " bits\n";
  if (flags.count("dot")) {
    std::ofstream f(flags.at("dot"));
    io::write_dot(f, g, &phi);
    std::cout << "wrote " << flags.at("dot") << "\n";
  }
  return check.ok ? 0 : 1;
}

int cmd_edge(const std::map<std::string, std::string>& flags) {
  const std::uint64_t seed =
      flags.count("seed") ? std::stoull(flags.at("seed")) : 1;
  const Graph g = obtain_graph(flags, seed);
  const auto res = d1lc::edge_color(g);
  std::cout << "edges=" << res.edges.size() << " slots<=" << res.palette
            << " valid=" << res.valid << " rounds=" << res.rounds << "\n";
  return res.valid ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  if (cmd == "gen") return cmd_gen(flags);
  if (cmd == "color") return cmd_color(flags);
  if (cmd == "edge") return cmd_edge(flags);
  usage("unknown command " + cmd);
}
