// Low-degree cluster decomposition via defective coloring — the
// divide-and-conquer primitive of [BE09, Kuh09] that the paper builds on.
//
// Scenario: a large overlay network must be split into a handful of groups
// such that inside each group every node talks to few group-mates (e.g. to
// run an expensive protocol within groups in parallel). That is exactly a
// d-defective c-coloring. We compute one with the defective-Linial
// algorithm (O(log* n) rounds), report the group degree profile, and also
// compute the arbdefective variant whose orientation certifies a bounded
// out-fanout workload assignment (Lemma A.2 machinery).
//
//   $ ./cluster_decomposition [n] [p] [defect] [seed]
#include <cstdlib>
#include <iostream>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/defective_linial.hpp"
#include "ldc/sequential/list_arbdefective.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 200;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.08;
  const std::uint32_t d = argc > 3 ? std::atoi(argv[3]) : 4;
  const std::uint64_t seed = argc > 4 ? std::atoll(argv[4]) : 5;

  ldc::Graph g = ldc::gen::gnp(n, p, seed);
  ldc::gen::scramble_ids(g, std::uint64_t{1} << 30, seed + 1);
  std::cout << "overlay: n=" << g.n() << " Delta=" << g.max_degree() << "\n";

  // Distributed d-defective coloring in O(log* n) rounds.
  ldc::Network net(g);
  const auto res = ldc::linial::defective_color(net, d);
  const auto check = ldc::validate_defective(
      g, res.phi, static_cast<std::uint32_t>(res.palette), d);
  std::cout << "defective clustering: groups<=" << res.palette
            << " defect<=" << d << " valid=" << check.ok
            << " rounds=" << res.rounds << "\n";

  // Intra-group degree profile.
  std::uint32_t max_inside = 0;
  std::uint64_t total_inside = 0;
  for (ldc::NodeId v = 0; v < g.n(); ++v) {
    std::uint32_t inside = 0;
    for (ldc::NodeId u : g.neighbors(v)) {
      if (res.phi[u] == res.phi[v]) ++inside;
    }
    max_inside = std::max(max_inside, inside);
    total_inside += inside;
  }
  std::cout << "intra-group degree: max=" << max_inside << " avg="
            << static_cast<double>(total_inside) / g.n() << "\n";

  // Arbdefective variant (Lemma A.2): halve the group count by accepting
  // the same defect only on *out*-edges of a computed orientation.
  const std::uint32_t groups =
      g.max_degree() / (2 * d + 1) + 1;  // c(2d+1) > Delta
  const ldc::LdcInstance arb_inst =
      ldc::uniform_defective_instance(g, groups, d);
  const auto arb = ldc::sequential::solve_list_arbdefective(arb_inst);
  if (arb.has_value()) {
    const auto ok = ldc::validate_arbdefective(arb_inst, *arb);
    std::cout << "arbdefective clustering: groups=" << groups
              << " out-fanout<=" << d << " valid=" << ok.ok << "\n";
  }
  return check.ok ? 0 : 1;
}
