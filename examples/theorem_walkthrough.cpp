// A guided, numeric walkthrough of the paper's main theorems on one
// instance — the "read the paper alongside the code" example.
//
//   $ ./theorem_walkthrough [beta] [seed]
//
// Builds a directed instance meeting Theorem 1.1's weight condition,
// solves it three ways (Lemma 3.6 multi-defect, Theorem 1.1 two-phase,
// Theorem 1.2 reduction over the two-phase solver) with phase-marked
// transcripts, then feeds the same machinery through Theorem 1.3 / 1.4 to
// produce a (Delta+1)-coloring — printing, at each step, the quantity the
// paper's statement bounds next to the measured value.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/stats.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/multi_defect.hpp"
#include "ldc/oldc/two_phase.hpp"
#include "ldc/reduction/color_space.hpp"
#include "ldc/runtime/trace.hpp"
#include "ldc/support/math.hpp"

int main(int argc, char** argv) {
  using namespace ldc;
  const std::uint32_t beta = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 3;

  Graph g = gen::random_regular(std::max(64u, 4 * beta), beta, seed);
  gen::scramble_ids(g, 1ULL << 24, seed + 1);
  const Orientation orient = Orientation::by_decreasing_id(g);

  std::cout << "=== Setup ===\n"
            << "n = " << g.n() << ", Delta = " << g.max_degree()
            << ", max beta_v = " << orient.max_beta() << "\n\n";

  // --- Theorem 1.1 precondition: sum (d+1)^2 >= alpha beta^2 kappa.
  RandomLdcParams p;
  p.color_space = 32ULL * beta * beta;
  p.one_plus_nu = 2.0;
  p.kappa = 40.0;
  p.max_defect = std::max(1u, beta / 4);
  p.seed = seed + 2;
  const LdcInstance inst = random_weighted_oriented_instance(g, orient, p);
  double worst_ratio = 1e300;
  for (NodeId v = 0; v < g.n(); ++v) {
    const double b = orient.beta(v);
    worst_ratio =
        std::min(worst_ratio, inst.lists[v].weight_pow(2.0) / (b * b));
  }
  std::cout << "instance: |C| = " << inst.color_space
            << ", worst sum(d+1)^2 / beta_v^2 = " << worst_ratio
            << " (the paper's kappa slot)\n\n";

  // --- Lemma 3.6 (multi-defect bucket algorithm).
  {
    Network net(g);
    Trace trace;
    net.attach_trace(&trace);
    trace.mark("linial");
    const auto lin = linial::color(net);
    trace.mark("lemma 3.6");
    oldc::MultiDefectInput in;
    in.inst = &inst;
    in.orientation = &orient;
    in.initial = &lin.phi;
    in.m = lin.palette;
    const auto res = oldc::solve_multi_defect(net, in);
    std::cout << "=== Lemma 3.6 (single bucket per node) ===\n"
              << "rounds = " << res.stats.rounds << " (claim: O(h), h = "
              << res.stats.h << "), tau = " << res.stats.tau
              << ", valid = " << validate_oldc(inst, orient, res.phi).ok
              << "\n\n";
  }

  // --- Theorem 1.1 (two-phase).
  {
    Network net(g);
    const auto lin = linial::color(net);
    oldc::TwoPhaseInput in;
    in.inst = &inst;
    in.orientation = &orient;
    in.initial = &lin.phi;
    in.m = lin.palette;
    const auto res = oldc::solve_two_phase(net, in);
    std::cout << "=== Theorem 1.1 (two-phase) ===\n"
              << "rounds = " << res.stats.rounds << " vs O(log beta) = "
              << ceil_log2(std::max(2u, orient.max_beta()))
              << " classes x 3 + aux " << res.stats.aux_rounds << "\n"
              << "pruned colors = " << res.stats.pruned_colors
              << ", P1 relaxations = " << res.stats.p1_relaxed
              << ", repaired = " << res.stats.repaired << ", valid = "
              << validate_oldc(inst, orient, res.phi).ok << "\n\n";
  }

  // --- Theorem 1.2 (reduction, r = 2).
  {
    Network net(g);
    const auto lin = linial::color(net);
    mt::CandidateParams params;
    reduction::Options opt;
    opt.p = reduction::subspace_count_for_depth(inst.color_space, 2);
    const auto base = [&params](Network& n2, const LdcInstance& i2,
                                const Orientation& o2, const Coloring& init2,
                                std::uint64_t m2) {
      oldc::TwoPhaseInput in;
      in.inst = &i2;
      in.orientation = &o2;
      in.initial = &init2;
      in.m = m2;
      in.params = params;
      const auto two = oldc::solve_two_phase(n2, in);
      oldc::OldcResult r;
      r.phi = two.phi;
      r.stats = two.stats;
      r.valid = two.valid;
      return r;
    };
    const auto res = reduction::reduce_and_solve(net, inst, orient, lin.phi,
                                                 lin.palette, opt, base);
    std::cout << "=== Theorem 1.2 (p = " << opt.p << ", "
              << res.levels << " levels) ===\n"
              << "rounds = " << res.stats.rounds << ", max message = "
              << net.metrics().max_message_bits
              << " bits (claim: lists now cost ~|C|^(1/2) = " << opt.p
              << " each), valid = "
              << validate_oldc(inst, orient, res.phi).ok << "\n\n";
  }

  // --- Theorems 1.3 + 1.4 on the standard problem.
  {
    const LdcInstance std_inst = delta_plus_one_instance(g);
    Network net(g);
    const auto res = d1lc::color(net, std_inst);
    const auto stats = coloring_stats(std_inst, res.phi);
    std::cout << "=== Theorems 1.3/1.4 ((Delta+1)-coloring) ===\n"
              << "rounds = " << res.rounds << " (claim ~ sqrt(Delta) polylog"
              << "; sqrt(Delta) = "
              << std::sqrt(static_cast<double>(g.max_degree()))
              << "), stages = " << res.t13.stages << ", colors used = "
              << stats.colors_used << " of " << std_inst.color_space
              << ", max message = " << net.metrics().max_message_bits
              << " bits, valid = " << validate_proper(g, res.phi).ok
              << "\n";
  }
  return 0;
}
