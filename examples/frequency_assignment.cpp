// Frequency assignment with per-channel interference tolerance — the
// canonical *list defective* coloring application.
//
// Scenario: wireless access points on a grid-with-shortcuts topology must
// each pick a channel from a regulatory whitelist that differs per device
// (lists), where robust low-band channels tolerate a couple of interfering
// neighbors (positive defect) while high-band channels tolerate none
// (defect 0). Nearby channels also interfere, which maps to the paper's
// generalized |x - y| <= g conflicts.
//
//   $ ./frequency_assignment [width] [height] [seed]
#include <cstdlib>
#include <iostream>

#include "ldc/coloring/validate.hpp"
#include "ldc/graph/builder.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/multi_defect.hpp"
#include "ldc/support/prf.hpp"

namespace {

// Torus + deterministic random shortcuts: a plausible dense deployment.
ldc::Graph deployment(std::uint32_t w, std::uint32_t h, std::uint64_t seed) {
  const ldc::Graph base = ldc::gen::torus(w, h);
  ldc::GraphBuilder b(base.n());
  for (ldc::NodeId v = 0; v < base.n(); ++v) {
    for (ldc::NodeId u : base.neighbors(v)) {
      if (v < u) b.add_edge(v, u);
    }
  }
  ldc::SplitMix64 rng(seed);
  for (std::uint32_t i = 0; i < base.n() / 4; ++i) {
    const auto x = static_cast<ldc::NodeId>(rng.next_below(base.n()));
    const auto y = static_cast<ldc::NodeId>(rng.next_below(base.n()));
    if (x != y) b.add_edge(x, y);
  }
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t w = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::uint32_t h = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 7;

  const ldc::Graph g = deployment(w, h, seed);
  const std::uint32_t channels = 96;  // the licensed band
  const std::uint32_t guard = 1;      // adjacent channels interfere

  // Build per-device channel whitelists with per-channel tolerance: the
  // lower third of the band is robust (defect 2), the middle tolerates one
  // interferer, the top tolerates none.
  ldc::LdcInstance inst;
  inst.graph = &g;
  inst.color_space = channels;
  inst.lists.resize(g.n());
  const ldc::Prf prf(seed + 1);
  for (ldc::NodeId v = 0; v < g.n(); ++v) {
    auto picks = ldc::sample_distinct(prf, static_cast<std::uint64_t>(v) << 32,
                                      channels, 40);
    for (auto c : picks) {
      inst.lists[v].colors.push_back(static_cast<ldc::Color>(c));
      inst.lists[v].defects.push_back(c < channels / 3        ? 2
                                      : c < 2 * channels / 3 ? 1
                                                              : 0);
    }
  }

  // Channel choice only constrains who we *listen to*: model interference
  // bookkeeping on an orientation (OLDC) — the paper's Definition 1.1.
  const ldc::Orientation orient = ldc::Orientation::by_decreasing_id(g);

  ldc::Network net(g);
  const auto lin = ldc::linial::color(net);
  ldc::oldc::MultiDefectInput in;
  in.inst = &inst;
  in.orientation = &orient;
  in.initial = &lin.phi;
  in.m = lin.palette;
  in.g = guard;
  const auto res = ldc::oldc::solve_multi_defect(net, in);

  const auto check = ldc::validate_oldc(inst, orient, res.phi, guard);
  std::cout << "devices=" << g.n() << " channels=" << channels
            << " guard=+-" << guard << "\n";
  std::cout << "assignment valid=" << check.ok
            << " rounds=" << (lin.rounds + res.stats.rounds)
            << " (linial=" << lin.rounds << ")"
            << " repaired=" << res.stats.repaired << "\n";
  // Report how much interference tolerance was actually consumed.
  std::uint64_t used = 0, budget = 0;
  for (ldc::NodeId v = 0; v < g.n(); ++v) {
    std::uint32_t cnt = 0;
    for (ldc::NodeId u : orient.out(v)) {
      const std::int64_t dx =
          static_cast<std::int64_t>(res.phi[v]) - res.phi[u];
      if ((dx < 0 ? -dx : dx) <= guard) ++cnt;
    }
    used += cnt;
    budget += inst.lists[v].defect_of(res.phi[v]);
  }
  std::cout << "interference: " << used << " conflicting links used of "
            << budget << " tolerated\n";
  return check.ok ? 0 : 1;
}
