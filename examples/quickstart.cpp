// Quickstart: color a random communication graph with the paper's CONGEST
// (degree+1)-list coloring pipeline (Theorem 1.4) and verify the result.
//
//   $ ./quickstart [n] [degree] [seed]
//
// Walks through the library's core objects: a Graph, a Network (the
// round-synchronous CONGEST simulator), a list coloring instance, the
// pipeline, and the validator.
#include <cstdlib>
#include <iostream>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/graph/generators.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 128;
  const std::uint32_t d = argc > 2 ? std::atoi(argv[2]) : 12;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 1;

  // 1. A communication graph with unique O(log n)-bit identifiers.
  ldc::Graph g = ldc::gen::random_regular(n, d, seed);
  ldc::gen::scramble_ids(g, std::uint64_t{1} << 24, seed + 1);
  std::cout << "graph: n=" << g.n() << " m=" << g.m()
            << " Delta=" << g.max_degree() << "\n";

  // 2. A (degree+1)-list coloring instance: every node gets deg(v)+1
  //    colors from a poly(Delta) color space.
  const std::uint64_t space = 8ULL * (g.max_degree() + 1);
  const ldc::LdcInstance inst =
      ldc::degree_plus_one_instance(g, space, seed + 2);

  // 3. The simulated network. Passing a bit budget makes it a CONGEST
  //    network; messages over budget are counted as violations.
  ldc::Network net(g);

  // 4. Run the Theorem 1.4 pipeline (Linial -> arbdefective decomposition
  //    -> two-phase OLDC with color space reduction).
  const auto res = ldc::d1lc::color(net, inst);

  // 5. Validate and report.
  const auto proper = ldc::validate_proper(g, res.phi);
  const auto member = ldc::validate_membership(inst, res.phi);
  std::cout << "colored: valid=" << (proper.ok && member.ok)
            << " colors_used=" << ldc::colors_used(res.phi) << "\n";
  std::cout << "rounds: total=" << res.rounds
            << " (linial=" << res.linial_rounds
            << ", stages=" << res.t13.stages
            << ", tail=" << res.t13.tail_rounds << ")\n";
  std::cout << "traffic: " << net.metrics().messages << " messages, max "
            << net.metrics().max_message_bits << " bits/message\n";
  return (proper.ok && member.ok) ? 0 : 1;
}
