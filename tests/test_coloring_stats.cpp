#include "ldc/coloring/stats.hpp"

#include <gtest/gtest.h>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/graph/generators.hpp"

namespace ldc {
namespace {

TEST(ColoringStats, ProperColoringHasZeroConflicts) {
  const Graph g = gen::ring(8);
  const LdcInstance inst = delta_plus_one_instance(g);
  const Coloring phi = {0, 1, 0, 1, 0, 1, 0, 1};
  const auto s = coloring_stats(inst, phi);
  EXPECT_EQ(s.colors_used, 2u);
  EXPECT_EQ(s.monochromatic_conflicts, 0u);
  EXPECT_EQ(s.max_realized_defect, 0u);
  EXPECT_DOUBLE_EQ(s.budget_utilization, 0.0);
  EXPECT_EQ(s.histogram.at(0), 4u);
  EXPECT_EQ(s.max_class_size, 4u);
}

TEST(ColoringStats, CountsRealizedDefects) {
  const Graph g = gen::clique(4);
  const LdcInstance inst = uniform_defective_instance(g, 2, 2);
  const Coloring phi = {0, 0, 1, 1};  // each node: 1 same-color neighbor
  const auto s = coloring_stats(inst, phi);
  EXPECT_EQ(s.colors_used, 2u);
  EXPECT_EQ(s.max_realized_defect, 1u);
  EXPECT_DOUBLE_EQ(s.avg_realized_defect, 1.0);
  EXPECT_EQ(s.total_defect_budget, 8u);     // 4 nodes x budget 2
  EXPECT_DOUBLE_EQ(s.budget_utilization, 0.5);
}

TEST(ColoringStats, GeneralizedWindow) {
  const Graph g = gen::path(2);
  const LdcInstance inst = uniform_defective_instance(g, 10, 1);
  const Coloring phi = {3, 5};
  EXPECT_EQ(coloring_stats(inst, phi, 0).monochromatic_conflicts, 0u);
  EXPECT_EQ(coloring_stats(inst, phi, 2).monochromatic_conflicts, 2u);
}

TEST(ColoringStats, OrientedCountsOutOnly) {
  const Graph g = gen::path(2);
  const LdcInstance inst = uniform_defective_instance(g, 1, 1);
  std::vector<std::vector<NodeId>> out = {{1}, {}};
  const Orientation o(g, std::move(out));
  const Coloring phi = {0, 0};
  const auto s = coloring_stats_oriented(inst, o, phi);
  EXPECT_EQ(s.monochromatic_conflicts, 1u);  // only node 0's out-edge
  EXPECT_EQ(s.max_realized_defect, 1u);
}

TEST(ColoringStats, SkipsUncoloredNodes) {
  const Graph g = gen::path(3);
  const LdcInstance inst = delta_plus_one_instance(g);
  const Coloring phi = {0, kUncolored, 0};
  const auto s = coloring_stats(inst, phi);
  EXPECT_EQ(s.colors_used, 1u);
  EXPECT_EQ(s.monochromatic_conflicts, 0u);  // uncolored never conflicts
  EXPECT_EQ(s.histogram.at(0), 2u);
}

}  // namespace
}  // namespace ldc
