#include <gtest/gtest.h>

#include <set>

#include "ldc/mt/candidates.hpp"
#include "ldc/mt/conflict.hpp"
#include "ldc/mt/greedy_types.hpp"

namespace ldc {
namespace {

using mt::FamilyView;

TEST(Conflict, MuGCountsWindow) {
  const std::vector<Color> c = {2, 5, 9, 14};
  EXPECT_EQ(mt::mu_g(5, c, 0), 1u);
  EXPECT_EQ(mt::mu_g(6, c, 0), 0u);
  EXPECT_EQ(mt::mu_g(6, c, 1), 1u);   // 5
  EXPECT_EQ(mt::mu_g(7, c, 2), 2u);   // 5, 9
  EXPECT_EQ(mt::mu_g(0, c, 2), 1u);   // 2 (no underflow)
  EXPECT_EQ(mt::mu_g(20, c, 100), 4u);
}

TEST(Conflict, WeightSymmetric) {
  const std::vector<Color> a = {1, 4, 8};
  const std::vector<Color> b = {2, 4, 9};
  for (std::uint32_t g : {0u, 1u, 2u, 5u}) {
    EXPECT_EQ(mt::conflict_weight(a, b, g), mt::conflict_weight(b, a, g))
        << g;
  }
  EXPECT_EQ(mt::conflict_weight(a, b, 0), 1u);  // only 4
  EXPECT_EQ(mt::conflict_weight(a, b, 1), 3u);  // (1,2) (4,4) (8,9)
}

TEST(Conflict, WeightAgainstBruteForce) {
  const std::vector<Color> a = {0, 3, 7, 12, 20};
  const std::vector<Color> b = {1, 3, 8, 13, 14, 25};
  for (std::uint32_t g = 0; g <= 6; ++g) {
    std::uint64_t brute = 0;
    for (Color x : a) {
      for (Color y : b) {
        const std::int64_t d = static_cast<std::int64_t>(x) - y;
        if ((d < 0 ? -d : d) <= g) ++brute;
      }
    }
    EXPECT_EQ(mt::conflict_weight(a, b, g), brute) << "g=" << g;
  }
}

TEST(Conflict, TauGConflictThreshold) {
  const std::vector<Color> a = {1, 2, 3, 4};
  const std::vector<Color> b = {1, 2, 3, 9};
  EXPECT_TRUE(mt::tau_g_conflict(a, b, 3, 0));
  EXPECT_FALSE(mt::tau_g_conflict(a, b, 4, 0));
  EXPECT_TRUE(mt::tau_g_conflict(a, b, 0, 0));  // zero threshold
}

TEST(Conflict, PsiRelation) {
  // K1 has two sets heavily overlapping K2's set; tau'=2 triggers.
  const std::vector<Color> storage1 = {1, 2, 3, /**/ 2, 3, 4};
  const std::vector<Color> storage2 = {2, 3, 4, /**/ 10, 11, 12};
  const FamilyView k1{storage1, 3, 2};
  const FamilyView k2{storage2, 3, 2};
  EXPECT_EQ(mt::conflicting_sets(k1, k2, 2, 0), 2u);
  EXPECT_TRUE(mt::psi_conflict(k1, k2, 2, 2, 0));
  EXPECT_FALSE(mt::psi_conflict(k1, k2, 3, 2, 0));
  EXPECT_FALSE(mt::psi_conflict(k1, k2, 1, 4, 0));  // no 4-overlap
}

TEST(Candidates, TauFormulaMonotone) {
  EXPECT_LT(mt::tau_formula(1, 16, 16), mt::tau_formula(8, 16, 16));
  EXPECT_LE(mt::tau_formula(1, 16, 16), mt::tau_formula(1, 1 << 20, 16));
}

TEST(Candidates, EffectiveTauRespectsCapAndOverride) {
  mt::CandidateParams p;
  p.tau_cap = 10;
  EXPECT_EQ(mt::effective_tau(p, 8, 1 << 16, 1 << 16), 10u);
  p.tau = 3;
  EXPECT_EQ(mt::effective_tau(p, 8, 1 << 16, 1 << 16), 3u);
}

TEST(Candidates, FamilyIsPureFunctionOfType) {
  std::vector<Color> list;
  for (Color c = 0; c < 100; c += 2) list.push_back(c);
  const auto key = mt::type_key(7, list);
  mt::CandidateFamily a(key, list, 10, 8);
  mt::CandidateFamily b(key, list, 10, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::uint32_t j = 0; j < a.size(); ++j) {
    const auto sa = a.set(j);
    const auto sb = b.set(j);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
  }
}

TEST(Candidates, SetsAreSortedDistinctSubsetsOfList) {
  std::vector<Color> list = {3, 7, 11, 19, 23, 31, 40, 41, 55, 60};
  mt::CandidateFamily fam(mt::type_key(1, list), list, 4, 6);
  EXPECT_FALSE(fam.degraded());
  for (std::uint32_t j = 0; j < fam.size(); ++j) {
    const auto s = fam.set(j);
    EXPECT_EQ(s.size(), 4u);
    std::set<Color> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 4u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    for (Color c : s) {
      EXPECT_TRUE(std::binary_search(list.begin(), list.end(), c));
    }
  }
}

TEST(Candidates, DegradedWhenListTooShort) {
  std::vector<Color> list = {1, 2, 3};
  mt::CandidateFamily fam(mt::type_key(0, list), list, 10, 4);
  EXPECT_TRUE(fam.degraded());
  EXPECT_EQ(fam.set_size(), 3u);
}

TEST(Candidates, DifferentTypesGiveDifferentFamilies) {
  std::vector<Color> list;
  for (Color c = 0; c < 64; ++c) list.push_back(c);
  mt::CandidateFamily a(mt::type_key(1, list), list, 8, 4);
  mt::CandidateFamily b(mt::type_key(2, list), list, 8, 4);
  bool any_diff = false;
  for (std::uint32_t j = 0; j < 4 && !any_diff; ++j) {
    const auto sa = a.set(j);
    const auto sb = b.set(j);
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i] != sb[i]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Candidates, BestResidueSublist) {
  // g = 1 => mod 3. Colors 0,3,6,9 (residue 0) dominate.
  const std::vector<Color> list = {0, 1, 3, 5, 6, 9};
  std::uint32_t residue = 99;
  const auto sub = mt::best_residue_sublist(list, 1, &residue);
  EXPECT_EQ(residue, 0u);
  EXPECT_EQ(sub, (std::vector<Color>{0, 3, 6, 9}));
  // g = 0: whole list.
  EXPECT_EQ(mt::best_residue_sublist(list, 0).size(), list.size());
}

TEST(GreedyTypes, CombinationsEnumeration) {
  const auto c52 = mt::combinations(5, 2);
  EXPECT_EQ(c52.size(), 10u);
  EXPECT_EQ(c52.front(), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(c52.back(), (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(mt::combinations(4, 4).size(), 1u);
  EXPECT_TRUE(mt::combinations(3, 4).empty());
}

TEST(GreedyTypes, Lemma35TinyInstanceSolvable) {
  // Small parameters where the greedy succeeds: generous tau so conflicts
  // are rare.
  mt::TinyParams p;
  p.color_space = 6;
  p.ell = 4;
  p.k = 2;
  p.kprime = 2;
  p.tau = 2;        // sets conflict only if identical (k = tau = 2)
  p.tau_prime = 2;  // both sets must clash
  p.m = 2;
  const auto a = mt::greedy_assign(p);
  EXPECT_TRUE(a.complete);
  EXPECT_TRUE(mt::verify_pairwise(a, p));
  EXPECT_EQ(a.types.size(), 2u * 15u);  // m * binom(6,4)
}

TEST(GreedyTypes, ImpossibleWhenTauTooSmall) {
  // tau = 1: any shared color conflicts; tau' = 1: one clash kills the
  // family; lists overlap heavily -> greedy must fail.
  mt::TinyParams p;
  p.color_space = 4;
  p.ell = 3;
  p.k = 2;
  p.kprime = 2;
  p.tau = 1;
  p.tau_prime = 1;
  p.m = 2;
  const auto a = mt::greedy_assign(p);
  EXPECT_FALSE(a.complete);
}

}  // namespace
}  // namespace ldc
