#include "ldc/graph/generators.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "ldc/graph/stats.hpp"

namespace ldc {
namespace {

TEST(Generators, Ring) {
  const Graph g = gen::ring(10);
  EXPECT_EQ(g.n(), 10u);
  EXPECT_EQ(g.m(), 10u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(check_graph(g));
}

TEST(Generators, RingRejectsTiny) {
  EXPECT_THROW(gen::ring(2), std::invalid_argument);
}

TEST(Generators, Path) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.m(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, Clique) {
  const Graph g = gen::clique(7);
  EXPECT_EQ(g.m(), 21u);
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_TRUE(check_graph(g));
}

TEST(Generators, CompleteBipartite) {
  const Graph g = gen::complete_bipartite(3, 4);
  EXPECT_EQ(g.n(), 7u);
  EXPECT_EQ(g.m(), 12u);
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(5), 3u);
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  const Graph g = gen::gnp(200, 0.1, 42);
  EXPECT_TRUE(check_graph(g));
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(g.m()), expected, expected * 0.25);
}

TEST(Generators, GnpSparseAndDensePathsAgreeInDistribution) {
  // p = 0 and p = 1 corner cases.
  EXPECT_EQ(gen::gnp(50, 0.0, 1).m(), 0u);
  EXPECT_EQ(gen::gnp(20, 1.0, 1).m(), 190u);
}

TEST(Generators, GnpDeterministic) {
  const Graph a = gen::gnp(100, 0.05, 9);
  const Graph b = gen::gnp(100, 0.05, 9);
  ASSERT_EQ(a.m(), b.m());
  for (NodeId v = 0; v < a.n(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(Generators, RandomRegularDegrees) {
  const Graph g = gen::random_regular(100, 6, 3);
  EXPECT_TRUE(check_graph(g));
  EXPECT_LE(g.max_degree(), 6u);
  // At most a few deficient nodes.
  int deficient = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (g.degree(v) < 6) ++deficient;
  }
  EXPECT_LE(deficient, 6);
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  EXPECT_THROW(gen::random_regular(5, 3, 1), std::invalid_argument);
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = gen::torus(5, 4);
  EXPECT_EQ(g.n(), 20u);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomTreeHasNMinusOneEdges) {
  for (std::uint32_t n : {1u, 2u, 3u, 10u, 100u}) {
    const Graph g = gen::random_tree(n, 5);
    EXPECT_EQ(g.m(), n - 1);
    EXPECT_TRUE(check_graph(g));
  }
}

TEST(Generators, PowerLawProducesSkewedDegrees) {
  const Graph g = gen::power_law(300, 2.5, 4.0, 11);
  EXPECT_TRUE(check_graph(g));
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.max_degree, 2 * static_cast<std::uint32_t>(s.avg_degree));
}

TEST(Generators, LineGraphOfTriangleIsTriangle) {
  const Graph t = gen::clique(3);
  const Graph lg = gen::line_graph(t);
  EXPECT_EQ(lg.n(), 3u);
  EXPECT_EQ(lg.m(), 3u);
}

TEST(Generators, LineGraphOfStar) {
  const Graph star = gen::complete_bipartite(1, 5);
  const Graph lg = gen::line_graph(star);
  EXPECT_EQ(lg.n(), 5u);
  EXPECT_EQ(lg.m(), 10u);  // all edges share the hub -> clique K5
}

TEST(Generators, ScrambleIdsUniqueAndBounded) {
  Graph g = gen::ring(50);
  gen::scramble_ids(g, 1u << 20, 77);
  std::set<std::uint64_t> ids;
  for (NodeId v = 0; v < g.n(); ++v) {
    ids.insert(g.id(v));
    EXPECT_LT(g.id(v), 1u << 20);
  }
  EXPECT_EQ(ids.size(), g.n());
}

TEST(Generators, ScrambleIdsRejectsSmallSpace) {
  Graph g = gen::ring(50);
  EXPECT_THROW(gen::scramble_ids(g, 10, 1), std::invalid_argument);
}

// Size arithmetic is computed in 64 bits and checked against explicit
// caps BEFORE any allocation. Each of these products overflows 32 bits
// (or exceeds the in-RAM cap) and used to wrap or attempt a giant
// allocation; now they must throw std::overflow_error immediately.
TEST(Generators, CompleteBipartiteOverflowGuard) {
  EXPECT_THROW(gen::complete_bipartite(70000, 70000), std::overflow_error);
  EXPECT_THROW(gen::complete_bipartite(1u << 31, 1u << 31),
               std::overflow_error);
}

TEST(Generators, RandomRegularOverflowGuard) {
  // n*d = 2^32 stubs: wraps to 0 in 32-bit arithmetic.
  EXPECT_THROW(gen::random_regular(1u << 31, 2, 1), std::overflow_error);
  EXPECT_THROW(gen::random_regular(4'000'000'000u, 4, 1),
               std::overflow_error);
}

TEST(Generators, TorusOverflowGuard) {
  // w*h = 2^32 nodes: wraps to 0 in 32-bit arithmetic.
  EXPECT_THROW(gen::torus(1u << 16, 1u << 16), std::overflow_error);
}

}  // namespace
}  // namespace ldc
