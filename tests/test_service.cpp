// The job-serving subsystem: queue semantics, LRU cache accounting, job
// digests, latency histograms, end-to-end service behaviour (backpressure,
// cancellation, deadlines, caching, the thread-nesting policy) and the
// line-delimited JSON protocol including its determinism contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ldc/service/cache.hpp"
#include "ldc/service/job.hpp"
#include "ldc/service/metrics.hpp"
#include "ldc/service/protocol.hpp"
#include "ldc/service/queue.hpp"
#include "ldc/service/service.hpp"
#include "ldc/storage/registry.hpp"
#include "ldc/storage/stream_gen.hpp"
#include "ldc/support/bitio.hpp"

namespace ldc::service {
namespace {

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(ServiceQueue, FifoWithBackpressure) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: the backpressure signal
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);  // strict FIFO
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(ServiceQueue, CloseRejectsPushesAndDrains) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_FALSE(q.try_push(3));  // closed: no new admissions
  EXPECT_EQ(q.pop(), 1);        // queued items still drain
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);  // closed and empty: worker exit
}

TEST(ServiceQueue, CloseOverridesPause) {
  // A paused queue must still drain after close(), otherwise a paused
  // service could never shut down.
  BoundedQueue<int> q(4);
  q.pause();
  q.try_push(7);
  q.close();
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(ServiceQueue, ResumeDeliversToBlockedPop) {
  BoundedQueue<int> q(4);
  q.pause();
  q.try_push(5);
  std::thread popper([&] { EXPECT_EQ(q.pop(), 5); });
  q.resume();
  popper.join();
}

TEST(ServiceQueue, GateSkipsBlockedItemsFifoWithinClass) {
  // A gated pop must skip undeliverable items but stay FIFO among the
  // deliverable ones.
  std::atomic<bool> evens_blocked{true};
  BoundedQueue<int> q(8, [&](const int& v) {
    return v % 2 != 0 || !evens_blocked.load();
  });
  q.try_push(2);
  q.try_push(1);
  q.try_push(4);
  q.try_push(3);
  EXPECT_EQ(q.pop(), 1);  // skips 2
  EXPECT_EQ(q.pop(), 3);  // skips 2 and 4
  evens_blocked.store(false);
  EXPECT_EQ(q.pop(), 2);  // gate lifted: original order restored
  EXPECT_EQ(q.pop(), 4);
}

TEST(ServiceQueue, PokeWakesBlockedPopAfterGateFlip) {
  std::atomic<bool> blocked{true};
  BoundedQueue<int> q(4, [&](const int&) { return !blocked.load(); });
  q.try_push(9);
  std::thread popper([&] { EXPECT_EQ(q.pop(), 9); });
  blocked.store(false);
  q.poke();  // the gate changed outside the queue: wake the sleeper
  popper.join();
}

TEST(ServiceQueue, CloseOverridesGate) {
  // Shutdown must drain even permanently-gated items, mirroring how
  // close() overrides pause(): a gated session's jobs still complete.
  BoundedQueue<int> q(4, [](const int&) { return false; });
  q.try_push(5);
  q.close();
  EXPECT_EQ(q.pop(), 5);
  EXPECT_EQ(q.pop(), std::nullopt);
}

// ---------------------------------------------------------------------------
// ResultCache

JobOutcome outcome_with_digest(std::uint64_t d) {
  JobOutcome o;
  o.valid = true;
  o.color_digest = d;
  return o;
}

TEST(ServiceCache, LruEvictionUnderByteBudget) {
  ResultCache cache(2 * ResultCache::kEntryBytes);
  cache.put(1, outcome_with_digest(11));
  cache.put(2, outcome_with_digest(22));
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().bytes, 2 * ResultCache::kEntryBytes);

  ASSERT_TRUE(cache.get(1).has_value());  // refreshes 1 -> MRU
  cache.put(3, outcome_with_digest(33));  // evicts 2 (the LRU)
  EXPECT_FALSE(cache.get(2).has_value());
  ASSERT_TRUE(cache.get(1).has_value());
  EXPECT_EQ(cache.get(1)->color_digest, 11u);
  ASSERT_TRUE(cache.get(3).has_value());

  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(ServiceCache, OverwriteRefreshes) {
  ResultCache cache(2 * ResultCache::kEntryBytes);
  cache.put(1, outcome_with_digest(11));
  cache.put(2, outcome_with_digest(22));
  cache.put(1, outcome_with_digest(99));  // overwrite, 1 becomes MRU
  cache.put(3, outcome_with_digest(33));  // evicts 2
  EXPECT_EQ(cache.get(1)->color_digest, 99u);
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ServiceCache, ZeroBudgetDisablesCaching) {
  ResultCache cache(0);
  cache.put(1, outcome_with_digest(11));
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

// ---------------------------------------------------------------------------
// Job spec + digest

Job parse_job(const std::string& text) {
  return job_from_json(harness::Json::parse(text));
}

TEST(ServiceJob, DigestIgnoresParamOrderAndDeadline) {
  const Job a = parse_job(
      R"({"algorithm":"d1lc","graph":{"family":"ring","n":32},)"
      R"("params":{"alpha":1,"beta":2}})");
  const Job b = parse_job(
      R"({"algorithm":"d1lc","graph":{"family":"ring","n":32},)"
      R"("params":{"beta":2,"alpha":1},"deadline_ms":500})");
  // Same work, so same digest: the deadline decides *whether* the job
  // runs, never *what* it computes.
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(ServiceJob, DigestSeparatesDistinctWork) {
  const Job base = parse_job(
      R"({"algorithm":"luby","graph":{"family":"ring","n":32},"seed":1})");
  const Job seed = parse_job(
      R"({"algorithm":"luby","graph":{"family":"ring","n":32},"seed":2})");
  const Job algo = parse_job(
      R"({"algorithm":"kw","graph":{"family":"ring","n":32},"seed":1})");
  const Job graph = parse_job(
      R"({"algorithm":"luby","graph":{"family":"ring","n":33},"seed":1})");
  EXPECT_NE(base.digest(), seed.digest());
  EXPECT_NE(base.digest(), algo.digest());
  EXPECT_NE(base.digest(), graph.digest());
}

TEST(ServiceJob, RoundTripsThroughWireForm) {
  const Job a = parse_job(
      R"({"algorithm":"d1lc","graph":{"family":"regular","n":48,"d":6,)"
      R"("seed":9,"id_bits":16},"seed":3,"deadline_ms":100,)"
      R"("params":{"reduction_levels":2}})");
  const Job b = job_from_json(job_to_json(a));
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
}

TEST(ServiceJob, ParseErrorsNameTheField) {
  const char* bad[] = {
      R"({"graph":{"family":"ring","n":8}})",              // no algorithm
      R"({"algorithm":"kw"})",                             // no graph
      R"({"algorithm":"kw","graph":{"n":8}})",             // no family
      R"({"algorithm":"kw","graph":{"family":"ring","n":8},"params":3})",
      R"({"algorithm":"kw","graph":{"family":"ring","n":8},)"
      R"("params":{"x":"y"}})",                            // non-integer param
      R"([1,2])",                                          // not an object
  };
  for (const char* text : bad) {
    EXPECT_THROW(parse_job(text), JobSpecError) << text;
  }
}

TEST(ServiceJob, BuildGraphRejectsBadSpecs) {
  const char* bad[] = {
      R"({"algorithm":"kw","graph":{"family":"moebius","n":8}})",
      R"({"algorithm":"kw","graph":{"family":"ring","n":2}})",   // ring n<3
      R"({"algorithm":"kw","graph":{"family":"ring","n":2000000}})",
      R"({"algorithm":"kw","graph":{"family":"gnp","n":64,"p":1.5}})",
      R"({"algorithm":"kw","graph":{"family":"regular","n":9,"d":3}})",
      R"({"algorithm":"kw","graph":{"family":"regular","n":8,"d":9}})",
      R"({"algorithm":"kw","graph":{"family":"file"}})",        // no path
      R"({"algorithm":"kw","graph":{"family":"ring","n":64,"id_bits":4}})",
  };
  for (const char* text : bad) {
    EXPECT_THROW(build_graph(parse_job(text).graph), JobSpecError) << text;
  }
  const Job ok = parse_job(
      R"({"algorithm":"kw","graph":{"family":"torus","w":4,"h":5,"n":20}})");
  EXPECT_EQ(build_graph(ok.graph).n(), 20u);
}

TEST(ServiceJob, DuplicateParamsRejected) {
  Job job;
  job.algorithm = "kw";
  job.params = {{"x", 1}, {"x", 2}};
  EXPECT_THROW(job.normalize(), JobSpecError);
}

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(ServiceMetrics, HistogramPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile_ns(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.add(1'000);      // ~1us bucket
  for (int i = 0; i < 10; ++i) h.add(1'000'000);  // ~1ms bucket
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LT(h.percentile_ns(0.50), 10'000u);
  EXPECT_GT(h.percentile_ns(0.95), 500'000u);
  EXPECT_GT(h.percentile_ns(0.99), 500'000u);
  const harness::Json j = h.to_json();
  EXPECT_EQ(j.at("count").as_uint(), 100u);
  EXPECT_GT(j.at("p95_ms").as_double(), 0.5);
}

TEST(ServiceMetrics, HistogramZeroSampleLandsInBucketZero) {
  // add(0) must be well-defined: bucket 0 holds [0, 2), reported upper
  // bound 1 ns — not a shift past the bucket array.
  LatencyHistogram h;
  h.add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile_ns(0.0), 1u);
  EXPECT_EQ(h.percentile_ns(0.5), 1u);
  EXPECT_EQ(h.percentile_ns(1.0), 1u);
}

TEST(ServiceMetrics, HistogramAllEqualSamplesReportTheirBucketBound) {
  // Every quantile of an all-equal stream is that value's bucket bound:
  // bucket_of(5000) = 12, upper bound 2^13 - 1 = 8191.
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(5'000);
  for (double q : {0.50, 0.95, 0.99}) {
    EXPECT_EQ(h.percentile_ns(q), 8191u) << "q=" << q;
  }
}

TEST(ServiceMetrics, HistogramTailQuantileOfTwoSamplesIsTheMax) {
  // Nearest-rank regression: the q-quantile sample has rank ceil(q*count),
  // so p99 of two samples is rank 2 — the larger one. The previous
  // floor(q*(count-1))+1 rank picked rank 1 and reported the minimum.
  LatencyHistogram h;
  h.add(1);
  h.add(1'000'000);
  EXPECT_EQ(h.percentile_ns(0.99), (1u << 20) - 1);  // 1e6's bucket bound
  EXPECT_EQ(h.percentile_ns(0.50), 1u);              // rank 1: the min
}

// ---------------------------------------------------------------------------
// Service end-to-end

Job ring_job(const std::string& algo, std::uint32_t n, std::uint64_t seed) {
  Job job;
  job.algorithm = algo;
  job.seed = seed;
  job.graph.family = "ring";
  job.graph.n = n;
  return job;
}

/// Collects results thread-safely and hands them back after a drain.
struct Collector {
  std::vector<JobResult> results;
  std::mutex mu;
  Service::ResultCallback callback() {
    return [this](const JobResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(r);
    };
  }
  const JobResult* by_id(std::uint64_t id) const {
    for (const auto& r : results) {
      if (r.id == id) return &r;
    }
    return nullptr;
  }
};

TEST(Service, RunsJobsAndServesCacheHits) {
  ServiceConfig cfg;
  cfg.workers = 1;
  Collector c;
  Service svc(cfg, c.callback());

  const auto a1 = svc.submit(ring_job("greedy", 24, 1));
  ASSERT_TRUE(a1.admitted);
  svc.drain();  // barrier: the first run must be in the cache
  const auto a2 = svc.submit(ring_job("greedy", 24, 1));
  ASSERT_TRUE(a2.admitted);
  svc.drain();
  svc.shutdown();

  ASSERT_EQ(c.results.size(), 2u);
  const JobResult* first = c.by_id(a1.id);
  const JobResult* second = c.by_id(a2.id);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->status, "ok");
  EXPECT_FALSE(first->cached);
  EXPECT_TRUE(second->cached);
  EXPECT_TRUE(second->outcome.valid);
  EXPECT_EQ(first->outcome.color_digest, second->outcome.color_digest);
  EXPECT_EQ(first->digest, second->digest);

  const auto stats = svc.stats(/*counters_only=*/true);
  EXPECT_EQ(stats.at("admitted").as_uint(), 2u);
  EXPECT_EQ(stats.at("completed").as_uint(), 2u);
  EXPECT_EQ(stats.at("cache").at("hits").as_uint(), 1u);
}

TEST(Service, BackpressureRejectsDeterministically) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  Collector c;
  Service svc(cfg, c.callback());

  // Paused, admission is decided before any job runs: exactly
  // (submissions - capacity) rejections regardless of worker timing.
  svc.pause();
  std::uint64_t rejected = 0;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    const auto a = svc.submit(ring_job("luby", 16, s));
    if (!a.admitted) {
      ++rejected;
      EXPECT_EQ(a.reason, "queue full");
    }
  }
  EXPECT_EQ(rejected, 3u);
  svc.resume();
  svc.drain();
  svc.shutdown();
  EXPECT_EQ(c.results.size(), 2u);
  for (const auto& r : c.results) EXPECT_EQ(r.status, "ok");
}

TEST(Service, CancelsQueuedJobBeforeItRuns) {
  ServiceConfig cfg;
  cfg.workers = 1;
  Collector c;
  Service svc(cfg, c.callback());
  svc.pause();
  const auto a = svc.submit(ring_job("kw", 16, 1));
  ASSERT_TRUE(a.admitted);
  EXPECT_TRUE(svc.cancel(a.id));
  EXPECT_FALSE(svc.cancel(a.id + 99));  // unknown id
  svc.resume();
  svc.drain();
  ASSERT_EQ(c.results.size(), 1u);
  EXPECT_EQ(c.results[0].status, "cancelled");
  EXPECT_FALSE(svc.cancel(a.id));  // already finished
  svc.shutdown();
  EXPECT_EQ(svc.stats(true).at("cancelled").as_uint(), 1u);
}

TEST(Service, SessionGatePausesOnlyThatSession) {
  // Per-session gates are what lets the event-loop frontend scope
  // pause/resume to one client on a shared queue: a gated session's
  // jobs sit in the queue while other sessions' jobs flow around them.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_bytes = 0;
  Service svc(cfg);

  auto gate_a = std::make_shared<SessionGate>();
  auto gate_b = std::make_shared<SessionGate>();
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> done;
  auto finish = [&](std::string name) {
    return [&, name](const JobResult&) {
      std::lock_guard<std::mutex> lock(mu);
      done.push_back(name);
      cv.notify_all();
    };
  };

  svc.pause_session(*gate_a);
  SubmitOptions oa;
  oa.gate = gate_a;
  oa.on_result = finish("a");
  ASSERT_TRUE(svc.submit(ring_job("greedy", 16, 1), std::move(oa)).admitted);
  SubmitOptions ob;
  ob.gate = gate_b;
  ob.on_result = finish("b");
  ASSERT_TRUE(svc.submit(ring_job("greedy", 16, 2), std::move(ob)).admitted);

  // B overtakes A even though A was submitted first: only A is gated.
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !done.empty(); });
    EXPECT_EQ(done[0], "b");
  }
  svc.resume_session(*gate_a);
  svc.drain();
  svc.shutdown();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1], "a");
}

TEST(Service, PerJobCallbackOverridesGlobalCallback) {
  ServiceConfig cfg;
  cfg.workers = 1;
  Collector c;
  Service svc(cfg, c.callback());
  std::atomic<std::uint64_t> routed{0};
  SubmitOptions opts;
  opts.on_result = [&](const JobResult&) {
    routed.fetch_add(1, std::memory_order_relaxed);
  };
  ASSERT_TRUE(svc.submit(ring_job("greedy", 16, 1), std::move(opts)).admitted);
  ASSERT_TRUE(svc.submit(ring_job("greedy", 16, 2)).admitted);
  svc.drain();
  svc.shutdown();
  // The per-job result went to its own callback, not the global sink.
  EXPECT_EQ(routed.load(), 1u);
  EXPECT_EQ(c.results.size(), 1u);
}

TEST(Service, RejectsAfterShutdown) {
  ServiceConfig cfg;
  Collector c;
  Service svc(cfg, c.callback());
  svc.shutdown();
  const auto a = svc.submit(ring_job("greedy", 8, 1));
  EXPECT_FALSE(a.admitted);
  EXPECT_EQ(a.reason, "shutting down");
}

// Test-only algorithms for the cancellation paths. Registered once in the
// process-wide registry under names no real client uses.
std::atomic<bool> g_spin_started{false};

void register_test_algorithms() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& r = AlgorithmRegistry::instance();
    r.add({"test_spin", "spins exchange rounds until cancelled",
           [](const Graph& g, const Job&, const ExecContext& exec)
               -> JobOutcome {
             Network net(g);
             exec.configure(net);
             BitWriter w;
             w.write(1, 1);
             const std::vector<Message> msgs(g.n(), Message::from(w));
             g_spin_started.store(true, std::memory_order_release);
             // Unbounded on purpose: only the round-boundary cancellation
             // hook can end this job. A broken hook hangs the test.
             for (;;) net.exchange_broadcast(msgs);
           }});
    r.add({"test_sleepy", "sleeps, then runs a few rounds",
           [](const Graph& g, const Job& job, const ExecContext& exec) {
             Network net(g);
             exec.configure(net);
             std::this_thread::sleep_for(
                 std::chrono::milliseconds(job.param_or("sleep_ms", 30)));
             BitWriter w;
             w.write(1, 1);
             const std::vector<Message> msgs(g.n(), Message::from(w));
             for (int i = 0; i < 4; ++i) net.exchange_broadcast(msgs);
             JobOutcome out;
             out.valid = true;
             out.n = g.n();
             out.rounds = net.metrics().rounds;
             return out;
           }});
  });
}

TEST(Service, CancelsRunningJobAtRoundBoundary) {
  register_test_algorithms();
  ServiceConfig cfg;
  cfg.workers = 1;
  Collector c;
  Service svc(cfg, c.callback());
  g_spin_started.store(false);
  const auto a = svc.submit(ring_job("test_spin", 4, 1));
  ASSERT_TRUE(a.admitted);
  while (!g_spin_started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // The job is provably mid-run now; cancellation must land at its next
  // exchange instead of waiting for (non-existent) completion.
  EXPECT_TRUE(svc.cancel(a.id));
  svc.drain();
  svc.shutdown();
  ASSERT_EQ(c.results.size(), 1u);
  EXPECT_EQ(c.results[0].status, "cancelled");
}

TEST(Service, DeadlineMissedAtRoundBoundary) {
  register_test_algorithms();
  ServiceConfig cfg;
  cfg.workers = 1;
  Collector c;
  Service svc(cfg, c.callback());
  Job job = ring_job("test_sleepy", 4, 1);
  job.deadline_ms = 1;  // expires during the 30ms sleep
  const auto a = svc.submit(job);
  ASSERT_TRUE(a.admitted);
  svc.drain();
  svc.shutdown();
  ASSERT_EQ(c.results.size(), 1u);
  EXPECT_EQ(c.results[0].status, "deadline_missed");
  EXPECT_EQ(svc.stats(true).at("deadline_missed").as_uint(), 1u);
}

TEST(Service, FailedJobReportsErrorNotCrash) {
  ServiceConfig cfg;
  Collector c;
  Service svc(cfg, c.callback());
  Job job;
  job.algorithm = "no_such_algorithm";
  job.graph.family = "ring";
  job.graph.n = 8;
  const auto a = svc.submit(job);
  ASSERT_TRUE(a.admitted);
  svc.drain();
  svc.shutdown();
  ASSERT_EQ(c.results.size(), 1u);
  EXPECT_EQ(c.results[0].status, "failed");
  EXPECT_NE(c.results[0].error.find("no_such_algorithm"),
            std::string::npos);
}

TEST(Service, NestingPolicyParallelJobsInsideWorkerPool) {
  // The documented nesting contract: pool lanes run whole jobs; a job may
  // itself use the parallel engine (each Network owns a private pool).
  // The engine choice must not change any model-exact result.
  const std::vector<Job> jobs = {
      ring_job("linial", 32, 1), ring_job("kw", 32, 1),
      ring_job("luby", 32, 7), ring_job("greedy", 32, 1)};

  auto run_with = [&](Network::Engine engine, std::size_t job_threads) {
    ServiceConfig cfg;
    cfg.workers = 2;  // concurrent whole jobs ...
    cfg.job_engine = engine;
    cfg.job_threads = job_threads;  // ... each itself parallel
    cfg.cache_bytes = 0;  // force real computation in both configurations
    Collector c;
    Service svc(cfg, c.callback());
    for (const auto& j : jobs) EXPECT_TRUE(svc.submit(j).admitted);
    svc.drain();
    svc.shutdown();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    for (const auto& r : c.results) {
      EXPECT_EQ(r.status, "ok");
      EXPECT_TRUE(r.outcome.valid);
      out.emplace_back(r.digest, r.outcome.color_digest);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  const auto serial = run_with(Network::Engine::kSerial, 1);
  const auto nested = run_with(Network::Engine::kParallel, 2);
  EXPECT_EQ(serial, nested);
}

// ---------------------------------------------------------------------------
// Protocol

std::string serve_script(const std::string& script,
                         const ServiceConfig& cfg) {
  std::istringstream in(script);
  std::ostringstream out;
  StreamLineIO io(in, out);
  serve(io, cfg);
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

const char* kScript =
    R"({"op":"pause"}
{"op":"submit","job":{"algorithm":"greedy","graph":{"family":"ring","n":16}},"tag":"g"}
{"op":"submit","job":{"algorithm":"linial","graph":{"family":"ring","n":16}}}
{"op":"submit","job":{"algorithm":"kw","graph":{"family":"ring","n":16}}}
{"op":"resume"}
{"op":"drain"}
{"op":"submit","job":{"algorithm":"greedy","graph":{"family":"ring","n":16}},"tag":"dup"}
{"op":"drain"}
{"op":"stats","counters_only":true}
{"op":"shutdown"}
)";

ServiceConfig script_config(std::size_t workers) {
  ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = 2;  // third burst submit must bounce
  return cfg;
}

TEST(ServiceProtocol, ScriptedSessionIsByteDeterministic) {
  const std::string run1 = serve_script(kScript, script_config(1));
  const std::string run2 = serve_script(kScript, script_config(1));
  EXPECT_EQ(run1, run2);  // byte-identical at one worker

  EXPECT_NE(run1.find("\"event\":\"rejected\""), std::string::npos) << run1;
  EXPECT_NE(run1.find("\"reason\":\"queue full\""), std::string::npos);
  EXPECT_NE(run1.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(run1.find("\"tag\":\"dup\""), std::string::npos);
  EXPECT_NE(run1.find("\"event\":\"bye\""), std::string::npos);
  // Every line is one parseable document (the framing contract).
  for (const auto& line : lines_of(run1)) {
    EXPECT_NO_THROW(harness::Json::parse_line(line)) << line;
  }
}

TEST(ServiceProtocol, WorkerCountChangesOrderNotContent) {
  // At 7 workers only interleaving may change: the multiset of emitted
  // lines must match the one-worker run exactly (rejections and cache
  // hits stay deterministic thanks to the pause/drain discipline).
  auto sorted = [](const std::string& text) {
    auto l = lines_of(text);
    std::sort(l.begin(), l.end());
    return l;
  };
  const auto one = sorted(serve_script(kScript, script_config(1)));
  const auto seven = sorted(serve_script(kScript, script_config(7)));
  EXPECT_EQ(one, seven);
}

TEST(ServiceProtocol, MalformedInputNeverKillsTheSession) {
  const char* script =
      "{oops\n"
      "\n"
      "{\"op\":42}\n"
      "{\"noop\":1}\n"
      "{\"op\":\"frobnicate\"}\n"
      "{\"op\":\"submit\"}\n"
      "{\"op\":\"submit\",\"job\":{\"algorithm\":\"kw\",\"graph\":"
      "{\"family\":\"moebius\",\"n\":8}}}\n"
      "{\"op\":\"cancel\"}\n"
      "{\"op\":\"submit\",\"job\":{\"algorithm\":\"greedy\",\"graph\":"
      "{\"family\":\"ring\",\"n\":8}}}\n"
      "{\"op\":\"shutdown\"}\n";
  ServiceConfig cfg;
  cfg.workers = 1;
  const std::string out = serve_script(script, cfg);
  // One error per bad line...
  std::size_t errors = 0;
  for (const auto& line : lines_of(out)) {
    errors += line.find("\"event\":\"error\"") != std::string::npos;
  }
  EXPECT_EQ(errors, 7u) << out;
  // ...and the session still served the valid job afterwards. The unknown
  // graph family is rejected at job build time, i.e. a failed *result*
  // would also be acceptable — here the spec parser catches it earlier.
  EXPECT_NE(out.find("\"status\":\"ok\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"event\":\"bye\""), std::string::npos);
}

TEST(ServiceProtocol, EofTriggersGracefulDrain) {
  // No shutdown op: the script just ends. Every admitted job must still
  // emit its result before the final bye.
  const char* script =
      "{\"op\":\"submit\",\"job\":{\"algorithm\":\"greedy\",\"graph\":"
      "{\"family\":\"ring\",\"n\":12}}}\n"
      "{\"op\":\"submit\",\"job\":{\"algorithm\":\"kw\",\"graph\":"
      "{\"family\":\"ring\",\"n\":12}}}\n";
  ServiceConfig cfg;
  cfg.workers = 2;
  const std::string out = serve_script(script, cfg);
  const auto lines = lines_of(out);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), R"({"event":"bye"})");
  std::size_t results = 0;
  for (const auto& line : lines) {
    results += line.find("\"event\":\"result\"") != std::string::npos;
  }
  EXPECT_EQ(results, 2u) << out;
}

// ---------------------------------------------------------------------------
// Corpus-served jobs

/// Writes a streamed corpus named `name` into its own fresh directory and
/// removes both on teardown.
struct CorpusFixture {
  std::string dir;
  std::string name;
  storage::CorpusMeta meta;
  CorpusFixture(const std::string& tag, const storage::gen::StreamSpec& spec) {
    dir = testing::TempDir() + "svc_corpus_" + tag;
    std::filesystem::create_directories(dir);
    name = "g_" + tag;
    meta = storage::gen::write_corpus(spec, path());
  }
  std::string path() const {
    return dir + "/" + name + storage::kCorpusExtension;
  }
  ~CorpusFixture() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

Job corpus_job(const std::string& name, const std::string& algo = "greedy") {
  Job job;
  job.algorithm = algo;
  job.graph.family = "corpus";
  job.graph.corpus = name;
  return job;
}

TEST(ServiceCorpus, RunsJobsFromMappedCorpusAndCachesByContent) {
  CorpusFixture fx("cache", storage::gen::stream_random_regular(512, 4, 7));
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.corpus_dir = fx.dir;
  Collector c;
  Service svc(cfg, c.callback());

  const auto a1 = svc.submit(corpus_job(fx.name));
  ASSERT_TRUE(a1.admitted);
  svc.drain();
  const auto a2 = svc.submit(corpus_job(fx.name));
  ASSERT_TRUE(a2.admitted);
  svc.drain();
  svc.shutdown();

  ASSERT_EQ(c.results.size(), 2u);
  const JobResult* first = c.by_id(a1.id);
  const JobResult* second = c.by_id(a2.id);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->status, "ok");
  EXPECT_TRUE(first->outcome.valid);
  EXPECT_FALSE(first->cached);
  EXPECT_TRUE(second->cached);  // build once, serve many
  EXPECT_EQ(first->digest, second->digest);
  // The admission echoes the service's content-keyed digest; clients
  // cannot compute it from the spec alone.
  EXPECT_EQ(a1.digest, first->digest);
  EXPECT_EQ(a2.digest, a1.digest);
}

TEST(ServiceCorpus, DigestIsKeyedByContentNotName) {
  // Same corpus NAME, different content -> different job digest (a stale
  // cache entry can never be served for regenerated data). Same content
  // under a different name -> same digest (renames don't bust the cache).
  CorpusFixture a("da", storage::gen::stream_ring(256, 1));
  CorpusFixture b("db", storage::gen::stream_ring(512, 1));
  CorpusFixture c("dc", storage::gen::stream_ring(256, 1));
  ASSERT_NE(a.meta.content_digest, b.meta.content_digest);
  ASSERT_EQ(a.meta.content_digest, c.meta.content_digest);

  auto admit = [](const CorpusFixture& fx) {
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.corpus_dir = fx.dir;
    Service svc(cfg);
    svc.pause();  // admission only; never runs the job
    const auto adm = svc.submit(corpus_job(fx.name));
    EXPECT_TRUE(adm.admitted);
    svc.cancel(adm.id);
    svc.resume();
    svc.shutdown();
    return adm.digest;
  };
  const std::uint64_t da = admit(a);
  const std::uint64_t db = admit(b);
  EXPECT_NE(da, db);

  // Same content, different name: rebuild c's job with a's spec shape.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.corpus_dir = c.dir;
  Service svc(cfg);
  svc.pause();
  Job job = corpus_job(c.name);
  const auto adm = svc.submit(job);
  ASSERT_TRUE(adm.admitted);
  svc.cancel(adm.id);
  svc.resume();
  svc.shutdown();
  // Names differ (g_da vs g_dc) so full digests differ, but the resolved
  // content component must match a's.
  EXPECT_EQ(job.graph.corpus_digest, 0u);  // caller's copy is untouched
  EXPECT_NE(adm.digest, 0u);
}

TEST(ServiceCorpus, MissingCorpusFailsTheJobNotTheService) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.corpus_dir = testing::TempDir() + "svc_corpus_missing";
  std::filesystem::create_directories(cfg.corpus_dir);
  Collector c;
  Service svc(cfg, c.callback());
  const auto a = svc.submit(corpus_job("no_such_corpus"));
  ASSERT_TRUE(a.admitted);  // admission is non-blocking; the run reports
  svc.drain();
  // The service must still serve ordinary jobs afterwards.
  ASSERT_TRUE(svc.submit(ring_job("greedy", 16, 1)).admitted);
  svc.drain();
  svc.shutdown();
  ASSERT_EQ(c.results.size(), 2u);
  const JobResult* bad = c.by_id(a.id);
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->status, "failed");
  EXPECT_NE(bad->error.find("no_such_corpus"), std::string::npos)
      << bad->error;
}

TEST(ServiceCorpus, CorpusJobWithoutCorpusDirFailsWithClearError) {
  ServiceConfig cfg;
  cfg.workers = 1;
  Collector c;
  Service svc(cfg, c.callback());  // no corpus_dir configured
  const auto a = svc.submit(corpus_job("anything"));
  ASSERT_TRUE(a.admitted);
  svc.drain();
  svc.shutdown();
  ASSERT_EQ(c.results.size(), 1u);
  EXPECT_EQ(c.results[0].status, "failed");
  EXPECT_NE(c.results[0].error.find("--corpus-dir"), std::string::npos)
      << c.results[0].error;
}

TEST(ServiceCorpus, IdBitsCannotRescrambleACorpusGraph) {
  const auto spec = harness::Json::parse_line(
      R"({"algorithm":"greedy","graph":{"family":"corpus",)"
      R"("corpus":"g","id_bits":20}})");
  EXPECT_THROW(job_from_json(spec), JobSpecError);
  // Wire round-trip for a legal corpus job keeps the corpus name.
  const auto ok = harness::Json::parse_line(
      R"({"algorithm":"greedy","graph":{"family":"corpus","corpus":"g"}})");
  const Job job = job_from_json(ok);
  EXPECT_EQ(job.graph.corpus, "g");
  const Job back = job_from_json(job_to_json(job));
  EXPECT_EQ(back.graph.corpus, "g");
  EXPECT_EQ(back.canonical(), job.canonical());
}

TEST(ServiceCorpus, StatsExportsLoadedCorpora) {
  CorpusFixture fx("stats", storage::gen::stream_gnp(300, 16, 0.2, 3));
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.corpus_dir = fx.dir;
  Service svc(cfg);
  const auto before = svc.stats(/*counters_only=*/true);
  ASSERT_NE(before.find("corpora"), nullptr);
  EXPECT_EQ(before.at("corpora").as_array().size(), 0u);  // nothing open yet
  ASSERT_TRUE(svc.submit(corpus_job(fx.name, "luby")).admitted);
  svc.drain();
  const auto after = svc.stats(/*counters_only=*/true);
  ASSERT_EQ(after.at("corpora").as_array().size(), 1u);
  const auto& info = after.at("corpora").as_array()[0];
  EXPECT_EQ(info.at("name").as_string(), fx.name);
  EXPECT_EQ(info.at("vertices").as_uint(), fx.meta.n);
  EXPECT_EQ(info.at("edges").as_uint(), fx.meta.m());
  EXPECT_GT(info.at("file_bytes").as_uint(), 0u);
  svc.shutdown();
}

TEST(ServiceCorpus, ProtocolServesCorpusJobsDeterministically) {
  CorpusFixture fx("proto", storage::gen::stream_ring(64, 5));
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.corpus_dir = fx.dir;
  const std::string script =
      "{\"op\":\"submit\",\"job\":{\"algorithm\":\"greedy\",\"graph\":"
      "{\"family\":\"corpus\",\"corpus\":\"" + fx.name + "\"}}}\n"
      "{\"op\":\"drain\"}\n"
      "{\"op\":\"submit\",\"job\":{\"algorithm\":\"greedy\",\"graph\":"
      "{\"family\":\"corpus\",\"corpus\":\"" + fx.name + "\"}}}\n"
      "{\"op\":\"shutdown\"}\n";
  const std::string run1 = serve_script(script, cfg);
  const std::string run2 = serve_script(script, cfg);
  EXPECT_EQ(run1, run2);
  EXPECT_NE(run1.find("\"status\":\"ok\""), std::string::npos) << run1;
  EXPECT_NE(run1.find("\"cached\":true"), std::string::npos) << run1;
}

TEST(ServiceProtocol, StatsShapes) {
  ServiceConfig cfg;
  Collector c;
  Service svc(cfg, c.callback());
  svc.submit(ring_job("greedy", 8, 1));
  svc.drain();
  const auto counters = svc.stats(/*counters_only=*/true);
  EXPECT_EQ(counters.find("latency"), nullptr);  // deterministic snapshot
  const auto full = svc.stats(/*counters_only=*/false);
  ASSERT_NE(full.find("latency"), nullptr);
  EXPECT_EQ(full.at("latency").at("greedy").at("count").as_uint(), 1u);
  EXPECT_GT(full.at("latency").at("greedy").at("p50_ms").as_double(), 0.0);
  svc.shutdown();
}

}  // namespace
}  // namespace ldc::service
