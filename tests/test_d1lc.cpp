#include "ldc/d1lc/congest_colorer.hpp"

#include <gtest/gtest.h>

#include "ldc/baselines/color_reduction.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/fhk_local.hpp"
#include "ldc/graph/generators.hpp"

namespace ldc {
namespace {

d1lc::PipelineOptions small_params() {
  d1lc::PipelineOptions opt;
  opt.params.kprime = 12;
  opt.params.tau_cap = 6;
  return opt;
}

TEST(Congest, SolvesDeltaPlusOne) {
  const Graph g = gen::random_regular(72, 8, 1);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = d1lc::color(net, inst, small_params());
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
  EXPECT_TRUE(validate_membership(inst, res.phi).ok);
}

TEST(Congest, SolvesDegreePlusOneLists) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = gen::gnp(64, 0.12, seed);
    const LdcInstance inst =
        degree_plus_one_instance(g, 8 * (g.max_degree() + 1), seed);
    Network net(g);
    const auto res = d1lc::color(net, inst, small_params());
    ASSERT_TRUE(res.valid) << seed;
    EXPECT_TRUE(validate_proper(g, res.phi).ok) << seed;
  }
}

TEST(Congest, ReductionShrinksMessagesVsLocalBaseline) {
  const Graph g = gen::random_regular(72, 12, 3);
  const LdcInstance inst =
      degree_plus_one_instance(g, 16 * (g.max_degree() + 1), 4);

  Network congest_net(g);
  auto opt = small_params();
  opt.reduction_levels = 2;
  const auto congest = d1lc::color(congest_net, inst, opt);
  ASSERT_TRUE(congest.valid);

  Network local_net(g);
  const auto local = d1lc::color_local_baseline(local_net, inst,
                                                small_params());
  ASSERT_TRUE(local.valid);

  EXPECT_LT(congest_net.metrics().max_message_bits,
            local_net.metrics().max_message_bits);
}

TEST(Congest, FewerRoundsThanClassReductionBaselineAtLargeDelta) {
  // Realistic CONGEST ids (sparse in a large space): the baseline must pay
  // one round per Linial-palette class (~Delta^2); the pipeline pays
  // ~sqrt(Delta) * polylog.
  Graph g = gen::random_regular(160, 24, 5);
  gen::scramble_ids(g, 1ULL << 24, 6);
  const LdcInstance inst = delta_plus_one_instance(g);

  Network pipe_net(g);
  const auto pipe = d1lc::color(pipe_net, inst, small_params());
  ASSERT_TRUE(pipe.valid);

  Network base_net(g);
  const auto base = baselines::linial_then_reduce(base_net, inst);
  EXPECT_TRUE(validate_ldc(inst, base.phi).ok);

  // The baseline pays ~Delta^2 rounds; the pipeline should be far below.
  EXPECT_LT(pipe.rounds, base.rounds);
}

TEST(Congest, ReportsStageBreakdown) {
  const Graph g = gen::random_regular(64, 8, 7);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = d1lc::color(net, inst, small_params());
  ASSERT_TRUE(res.valid);
  EXPECT_EQ(res.rounds, res.linial_rounds + res.t13.rounds);
  EXPECT_GT(res.initial_palette, g.max_degree());
}

TEST(Congest, DeterministicEndToEnd) {
  const Graph g = gen::gnp(56, 0.15, 9);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network n1(g), n2(g);
  const auto a = d1lc::color(n1, inst, small_params());
  const auto b = d1lc::color(n2, inst, small_params());
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(n1.metrics().total_bits, n2.metrics().total_bits);
}

}  // namespace
}  // namespace ldc
