#include "ldc/support/prf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ldc {
namespace {

TEST(SplitMix, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix, NextBelowInRange) {
  SplitMix64 rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(SplitMix, NextDoubleInUnitInterval) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix, RoughlyUniform) {
  SplitMix64 rng(5);
  std::vector<int> buckets(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++buckets[rng.next_below(10)];
  for (int b : buckets) {
    EXPECT_NEAR(b, trials / 10, trials / 100);
  }
}

TEST(Prf, StatelessRandomAccess) {
  Prf prf(123);
  const auto v5 = prf.at(5);
  prf.at(99);
  EXPECT_EQ(prf.at(5), v5);  // no hidden state
}

TEST(Prf, KeySeparation) {
  Prf a(1), b(2);
  int same = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (a.at(i) == b.at(i)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Prf, AtBelowInRange) {
  Prf prf(77);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_LT(prf.at_below(i, 13), 13u);
  }
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Fingerprint, SensitiveToContentAndLength) {
  std::vector<std::uint32_t> a = {1, 2, 3};
  std::vector<std::uint32_t> b = {1, 2, 4};
  std::vector<std::uint32_t> c = {1, 2, 3, 0};
  EXPECT_NE(fingerprint(std::span<const std::uint32_t>(a)),
            fingerprint(std::span<const std::uint32_t>(b)));
  EXPECT_NE(fingerprint(std::span<const std::uint32_t>(a)),
            fingerprint(std::span<const std::uint32_t>(c)));
  EXPECT_EQ(fingerprint(std::span<const std::uint32_t>(a)),
            fingerprint(std::span<const std::uint32_t>(a)));
}

TEST(SampleDistinct, ProducesSortedDistinct) {
  Prf prf(3);
  for (std::size_t k : {0u, 1u, 5u, 50u, 99u, 100u}) {
    auto s = sample_distinct(prf, 1000, 100, k);
    ASSERT_EQ(s.size(), k);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::set<std::uint64_t>(s.begin(), s.end()).size(), k);
    for (auto x : s) EXPECT_LT(x, 100u);
  }
}

TEST(SampleDistinct, FullUniverse) {
  Prf prf(4);
  auto s = sample_distinct(prf, 0, 10, 10);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(SampleDistinct, DeterministicPerKeyAndOffset) {
  Prf prf(9);
  EXPECT_EQ(sample_distinct(prf, 0, 1000, 10),
            sample_distinct(prf, 0, 1000, 10));
  EXPECT_NE(sample_distinct(prf, 0, 1000, 10),
            sample_distinct(prf, 1, 1000, 10));
}

}  // namespace
}  // namespace ldc
