// Unit tests for the Lemma 3.8 gamma-class planner — the paper's
// inequalities checked directly on the pure computation.
#include "ldc/oldc/class_plan.hpp"

#include <gtest/gtest.h>

#include "ldc/support/math.hpp"
#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

oldc::ClassPlanParams params_for(std::uint32_t beta_max) {
  oldc::ClassPlanParams p;
  p.h = std::max(1, ceil_log2(std::max(2u, beta_max)));
  p.hp = 4;
  p.tau_bar = 4;
  p.alpha = 4;
  return p;
}

ColorList uniform_list(std::size_t len, std::uint32_t defect) {
  ColorList l;
  for (std::size_t i = 0; i < len; ++i) {
    l.colors.push_back(static_cast<Color>(i));
    l.defects.push_back(defect);
  }
  return l;
}

TEST(ClassPlan, RvIsPowerOfFour) {
  for (std::uint32_t beta : {1u, 3u, 8u, 17u, 64u}) {
    const auto plan =
        oldc::plan_classes(uniform_list(16, 2), beta, params_for(beta));
    const int lg = ilog2(plan.rv);
    EXPECT_EQ(plan.rv, std::uint64_t{1} << lg);
    EXPECT_EQ(lg % 2, 0) << "R_v must be a power of 4";
  }
}

TEST(ClassPlan, UniformDefectsFallInOneBucketCaseII) {
  // All defects identical -> one bucket holds all weight -> lambda = 1
  // >= 1/4 -> Case II with a singleton aux list.
  const auto plan =
      oldc::plan_classes(uniform_list(32, 3), 8, params_for(8));
  EXPECT_TRUE(plan.case2);
  EXPECT_FALSE(plan.fallback);
  ASSERT_EQ(plan.aux_colors.size(), 1u);
  // Case II delta = sqrt(R_v)/4 >= beta (the paper's "trivially
  // satisfiable" property with alpha >= 16; our alpha*tau_bar*hp^2 = 256
  // gives sqrt >= 16*beta_hat, /4 = 4*beta_hat >= beta).
  EXPECT_GE(plan.aux_defects[0], 8u);
}

TEST(ClassPlan, AuxListNeverEmptyAndSorted) {
  const Prf prf(9);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ColorList l;
    const std::size_t len = 4 + prf.at_below(seed * 3, 60);
    for (std::size_t i = 0; i < len; ++i) {
      l.colors.push_back(static_cast<Color>(i));
      l.defects.push_back(static_cast<std::uint32_t>(
          prf.at_below(seed * 1000 + i, 33)));
    }
    const auto plan = oldc::plan_classes(l, 16, params_for(16));
    ASSERT_FALSE(plan.aux_colors.empty());
    EXPECT_TRUE(std::is_sorted(plan.aux_colors.begin(),
                               plan.aux_colors.end()));
    EXPECT_EQ(plan.aux_colors.size(), plan.aux_defects.size());
    // Every aux color maps back to a bucket, and classes are in [1, h].
    for (Color c : plan.aux_colors) {
      const std::uint32_t cls = c + 1;
      EXPECT_GE(cls, 1u);
      EXPECT_LE(cls, params_for(16).h);
      ASSERT_TRUE(plan.mu_of_class.count(cls));
      EXPECT_TRUE(plan.bucket_colors.count(plan.mu_of_class.at(cls)));
    }
  }
}

TEST(ClassPlan, BucketsPartitionTheList) {
  ColorList l;
  const std::uint32_t defects[] = {0, 0, 1, 3, 3, 7, 15, 15, 31, 63};
  for (std::size_t i = 0; i < 10; ++i) {
    l.colors.push_back(static_cast<Color>(i * 5));
    l.defects.push_back(defects[i]);
  }
  const auto plan = oldc::plan_classes(l, 8, params_for(8));
  std::size_t total = 0;
  for (const auto& [mu, colors] : plan.bucket_colors) {
    (void)mu;
    total += colors.size();
  }
  EXPECT_EQ(total, l.size());
  // Colors in one bucket share one rounded defect: their (d+1) rounded
  // down to a power of two must be equal.
  for (const auto& [mu, colors] : plan.bucket_colors) {
    const std::uint32_t expect = plan.bucket_defect(mu);
    for (Color c : colors) {
      const std::uint32_t d = l.defect_of(c);
      const std::uint32_t dp1 = std::uint32_t{1} << ilog2(d + 1);
      // Clamped buckets (huge defects) map to mu = 0.
      if (mu > 0) {
        EXPECT_EQ(dp1 - 1, expect) << "mu " << mu;
      } else {
        EXPECT_GE(dp1 - 1, expect);
      }
    }
  }
}

TEST(ClassPlan, PaperInequalitySumDeltaSquared) {
  // Inequality (7)'s consequence: sum over the aux list of (delta+1)^2
  // >= R_v / 20 (paper, Section 3.3). Checked on weight-heavy random
  // lists (the precondition regime; fallback-flagged plans are exempt).
  const Prf prf(77);
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    ColorList l;
    const std::uint32_t beta = 16;
    for (std::size_t i = 0; i < 200; ++i) {
      l.colors.push_back(static_cast<Color>(i));
      l.defects.push_back(static_cast<std::uint32_t>(
          prf.at_below(seed * 500 + i, beta)));
    }
    const auto plan = oldc::plan_classes(l, beta, params_for(beta));
    if (plan.fallback) continue;
    std::uint64_t sum = 0;
    for (auto d : plan.aux_defects) {
      sum += (static_cast<std::uint64_t>(d) + 1) * (d + 1);
    }
    EXPECT_GE(sum, plan.rv / 20) << "seed " << seed;
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

TEST(ClassPlan, DeltaLowerBoundBetaOver8h) {
  // The paper shows delta_{v,i} >= sqrt(R_v)/(8h) >= beta_hat/h for every
  // listed class (Case I derivation).
  const std::uint32_t beta = 32;
  const auto params = params_for(beta);
  const Prf prf(5);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ColorList l;
    for (std::size_t i = 0; i < 120; ++i) {
      l.colors.push_back(static_cast<Color>(i));
      l.defects.push_back(
          static_cast<std::uint32_t>(prf.at_below(seed * 300 + i, 16)));
    }
    const auto plan = oldc::plan_classes(l, beta, params);
    if (plan.fallback) continue;
    const std::uint64_t sqrt_rv = std::uint64_t{1} << (ilog2(plan.rv) / 2);
    for (auto d : plan.aux_defects) {
      EXPECT_GE(d + 1, sqrt_rv / (8 * params.h)) << "seed " << seed;
    }
  }
}

TEST(ClassPlan, ThrowsOnEmptyList) {
  EXPECT_THROW(oldc::plan_classes(ColorList{}, 4, params_for(4)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ldc
