// Fault injection and self-stabilizing recovery. Covers the FaultPlan model
// semantics (drop / corrupt / crash / sleep, determinism, accounting), the
// trace integration, and the resilient driver wrappers — including the
// headline property: the repair path recovers a valid coloring from runs
// injected with fault rates up to 10%. Runs under both engines, so it is
// also part of the TSan surface (ctest -L tsan).
#include "ldc/runtime/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/repair/resilient.hpp"
#include "ldc/resilient/drivers.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc {
namespace {

Message make_msg(std::uint64_t value, int bits) {
  BitWriter w;
  w.write(value, bits);
  return Message::from(w);
}

TEST(FaultPlan, DecisionsAreDeterministic) {
  FaultPlan p;
  p.seed = 77;
  p.drop_rate = 0.5;
  p.corrupt_rate = 0.5;
  p.crash_rate = 0.5;
  p.sleep_rate = 0.5;
  for (std::uint64_t round = 0; round < 8; ++round) {
    for (NodeId u = 0; u < 16; ++u) {
      for (NodeId v = 0; v < 16; ++v) {
        EXPECT_EQ(p.drops_message(round, u, v),
                  p.drops_message(round, u, v));
        EXPECT_EQ(p.corrupts_message(round, u, v),
                  p.corrupts_message(round, u, v));
      }
      EXPECT_EQ(p.crashes_node(round, u), p.crashes_node(round, u));
      EXPECT_EQ(p.sleeps_node(round, u), p.sleeps_node(round, u));
    }
  }
}

TEST(FaultPlan, RatesZeroAndOneAreExact) {
  FaultPlan none;
  none.seed = 3;
  FaultPlan all;
  all.seed = 3;
  all.drop_rate = 1.0;
  all.sleep_rate = 1.0;
  EXPECT_FALSE(none.any());
  EXPECT_TRUE(all.any());
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (NodeId u = 0; u < 32; ++u) {
      EXPECT_FALSE(none.drops_message(round, u, u + 1));
      EXPECT_TRUE(all.drops_message(round, u, u + 1));
      EXPECT_FALSE(none.sleeps_node(round, u));
      EXPECT_TRUE(all.sleeps_node(round, u));
    }
  }
}

TEST(FaultPlan, SeedChangesTheSchedule) {
  FaultPlan a, b;
  a.seed = 1;
  b.seed = 2;
  a.drop_rate = b.drop_rate = 0.5;
  int differing = 0;
  for (NodeId u = 0; u < 64; ++u) {
    if (a.drops_message(0, u, u + 1) != b.drops_message(0, u, u + 1)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, CorruptionFlipsExactlyOneBitAndPreservesLength) {
  FaultPlan p;
  p.seed = 5;
  p.corrupt_rate = 1.0;
  Message m = make_msg(0xabcdef, 24);
  const std::size_t bits_before = m.bit_count();
  Message corrupted = m;
  p.corrupt_payload(3, 0, 1, corrupted);
  EXPECT_EQ(corrupted.bit_count(), bits_before);
  auto ra = m.reader();
  auto rb = corrupted.reader();
  const std::uint64_t delta = ra.read(24) ^ rb.read(24);
  EXPECT_NE(delta, 0u);
  EXPECT_EQ(delta & (delta - 1), 0u);  // exactly one bit differs
}

TEST(FaultPlan, CorruptionOfEmptyMessageIsANoOp) {
  FaultPlan p;
  p.seed = 5;
  p.corrupt_rate = 1.0;
  Message empty;
  p.corrupt_payload(0, 0, 1, empty);
  EXPECT_EQ(empty.bit_count(), 0u);
}

TEST(FaultPlan, CorruptPayloadClonesSharedPayloads) {
  FaultPlan p;
  p.seed = 5;
  p.corrupt_rate = 1.0;
  Message m = make_msg(0x0f0f, 16);
  Message shared = m;
  ASSERT_TRUE(shared.shares_payload(m));
  p.corrupt_payload(1, 0, 1, shared);
  // Copy-on-write: the corrupted handle detached; the original is intact.
  EXPECT_FALSE(shared.shares_payload(m));
  auto r = m.reader();
  EXPECT_EQ(r.read(16), 0x0f0fu);
}

// The zero-copy plane delivers one shared payload handle per receiver; a
// corruption fault must clone before flipping (CoW), so a corrupted
// delivery can never mutate the sender's message or the clean copies that
// sibling receivers got — under either engine.
TEST(Network, CorruptionNeverMutatesSenderOrSiblingCopies) {
  const Graph g = gen::clique(6);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    Network net(g);
    if (threads != 0) net.set_engine(Network::Engine::kParallel, threads);
    FaultPlan p;
    p.seed = 21;
    p.corrupt_rate = 0.4;
    net.attach_faults(&p);
    std::vector<Message> msgs(6);
    for (NodeId v = 0; v < 6; ++v) msgs[v] = make_msg(0x500u + v, 12);
    auto in = net.exchange_broadcast(msgs);
    // The schedule must mix corrupted and clean deliveries for the test to
    // mean anything (deterministic in the plan seed).
    ASSERT_GT(net.metrics().messages_corrupted, 0u);
    ASSERT_LT(net.metrics().messages_corrupted, 30u);
    for (NodeId v = 0; v < 6; ++v) {
      for (const auto& [u, m] : in[v]) {
        auto r = m.reader();
        if (r.read(12) == 0x500u + u) {
          // Clean delivery: still the sender's own payload block.
          EXPECT_TRUE(m.shares_payload(msgs[u]));
        } else {
          // Corrupted delivery: cloned before the flip.
          EXPECT_FALSE(m.shares_payload(msgs[u]));
        }
      }
    }
    // No corruption leaked into the senders' handles.
    for (NodeId u = 0; u < 6; ++u) {
      auto r = msgs[u].reader();
      EXPECT_EQ(r.read(12), 0x500u + u);
    }
  }
}

TEST(Network, DropRateOneLosesEveryMessageButSenderPays) {
  const Graph g = gen::clique(6);
  Network net(g);
  FaultPlan p;
  p.seed = 11;
  p.drop_rate = 1.0;
  net.attach_faults(&p);
  auto in = net.exchange_broadcast(std::vector<Message>(6, make_msg(9, 10)));
  for (const auto& inbox : in) EXPECT_TRUE(inbox.empty());
  // Drop is a transit fault: the sender transmitted, so the traffic is
  // accounted — and additionally counted as dropped.
  EXPECT_EQ(net.metrics().messages, 30u);
  EXPECT_EQ(net.metrics().total_bits, 300u);
  EXPECT_EQ(net.metrics().messages_dropped, 30u);
  EXPECT_EQ(net.metrics().messages_corrupted, 0u);
}

TEST(Network, CorruptRateOneTouchesEveryMessageWithoutChangingCongest) {
  const Graph g = gen::ring(8);
  Network net(g);
  FaultPlan p;
  p.seed = 13;
  p.corrupt_rate = 1.0;
  net.attach_faults(&p);
  std::vector<Message> msgs(8);
  for (NodeId v = 0; v < 8; ++v) msgs[v] = make_msg(v, 12);
  auto in = net.exchange_broadcast(msgs);
  EXPECT_EQ(net.metrics().messages_corrupted, 16u);
  EXPECT_EQ(net.metrics().messages_dropped, 0u);
  EXPECT_EQ(net.metrics().max_message_bits, 12u);  // length preserved
  int changed = 0;
  for (NodeId v = 0; v < 8; ++v) {
    for (const auto& [u, m] : in[v]) {
      ASSERT_EQ(m.bit_count(), 12u);
      auto r = m.reader();
      if (r.read(12) != u) ++changed;
    }
  }
  EXPECT_EQ(changed, 16);  // a single-bit flip always changes the payload
}

TEST(Network, CrashIsPermanentAndSilencesTheNode) {
  const Graph g = gen::clique(5);
  Network net(g);
  FaultPlan p;
  p.seed = 17;
  p.crash_rate = 0.6;
  p.max_crashes = 1;
  net.attach_faults(&p);
  const std::vector<Message> msgs(5, make_msg(1, 4));
  NodeId crashed_node = kUncolored;
  for (int round = 0; round < 6; ++round) {
    auto in = net.exchange_broadcast(msgs);
    if (net.metrics().node_crashes == 1 && crashed_node == kUncolored) {
      for (NodeId v = 0; v < 5; ++v) {
        if (net.crashed(v)) crashed_node = v;
      }
    }
    if (crashed_node != kUncolored) {
      // The crashed node receives nothing and its neighbors stop hearing
      // from it — permanently.
      EXPECT_TRUE(in[crashed_node].empty());
      for (NodeId v = 0; v < 5; ++v) {
        if (v == crashed_node) continue;
        EXPECT_EQ(in[v].size(), 3u);
        for (const auto& [u, m] : in[v]) EXPECT_NE(u, crashed_node);
      }
    }
  }
  ASSERT_NE(crashed_node, kUncolored) << "crash never triggered";
  EXPECT_EQ(net.metrics().node_crashes, 1u);  // max_crashes respected
}

TEST(Network, SleepSilencesExactlyOneRound) {
  const Graph g = gen::clique(4);
  Network net(g);
  FaultPlan p;
  p.seed = 23;
  p.sleep_rate = 1.0;
  net.attach_faults(&p);
  const std::vector<Message> msgs(4, make_msg(3, 4));
  auto in = net.exchange_broadcast(msgs);
  for (const auto& inbox : in) EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(net.metrics().node_sleeps, 4u);
  // A sleeping sender transmits nothing: no traffic, no drops.
  EXPECT_EQ(net.metrics().messages, 0u);
  EXPECT_EQ(net.metrics().messages_dropped, 0u);
  // Sleep is transient: detach/zero-rate rounds deliver again.
  net.attach_faults(nullptr);
  auto in2 = net.exchange_broadcast(msgs);
  for (const auto& inbox : in2) EXPECT_EQ(inbox.size(), 3u);
}

TEST(Network, AttachFaultsResetsCrashState) {
  const Graph g = gen::clique(4);
  Network net(g);
  FaultPlan p;
  p.seed = 29;
  p.crash_rate = 1.0;
  net.attach_faults(&p);
  net.exchange_broadcast(std::vector<Message>(4, make_msg(1, 4)));
  EXPECT_EQ(net.metrics().node_crashes, 4u);
  net.attach_faults(nullptr);
  for (NodeId v = 0; v < 4; ++v) EXPECT_FALSE(net.crashed(v));
  auto in = net.exchange_broadcast(std::vector<Message>(4, make_msg(1, 4)));
  for (const auto& inbox : in) EXPECT_EQ(inbox.size(), 3u);
}

TEST(Network, TraceRecordsPerRoundFaults) {
  const Graph g = gen::ring(6);
  Network net(g);
  Trace t;
  net.attach_trace(&t);
  FaultPlan p;
  p.seed = 31;
  p.drop_rate = 1.0;
  net.attach_faults(&p);
  net.exchange_broadcast(std::vector<Message>(6, make_msg(1, 5)));
  net.attach_faults(nullptr);
  net.exchange_broadcast(std::vector<Message>(6, make_msg(1, 5)));
  ASSERT_EQ(t.rounds().size(), 2u);
  EXPECT_EQ(t.rounds()[0].faults.dropped, 12u);
  EXPECT_TRUE(t.rounds()[0].faults.any());
  EXPECT_FALSE(t.rounds()[1].faults.any());
}

TEST(Network, FaultsChangeTheDigestButZeroRatePlanDoesNot) {
  const Graph g = gen::ring(6);
  auto run = [&](const FaultPlan* p) {
    Network net(g);
    Trace t;
    net.attach_trace(&t);
    if (p != nullptr) net.attach_faults(p);
    net.exchange_broadcast(std::vector<Message>(6, make_msg(1, 5)));
    return t.digest();
  };
  FaultPlan zero;  // any() == false
  FaultPlan dropping;
  dropping.seed = 37;
  dropping.drop_rate = 0.9;
  EXPECT_EQ(run(nullptr), run(&zero));
  EXPECT_NE(run(nullptr), run(&dropping));
}

TEST(BitReader, OverrunThrowsInsteadOfReadingPastTheEnd) {
  // Corrupted payloads can derail variable-length decodes; the reader must
  // fail loudly (and catchably) in every build type.
  BitWriter w;
  w.write(5, 8);
  BitReader r(w);
  EXPECT_EQ(r.read(8), 5u);
  EXPECT_THROW(r.read(1), std::out_of_range);
}

// --- resilient drivers -----------------------------------------------------

FaultPlan ten_percent_plan(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.drop_rate = 0.10;
  p.corrupt_rate = 0.10;
  p.sleep_rate = 0.05;
  p.crash_rate = 0.005;
  p.max_crashes = 3;
  return p;
}

TEST(Resilient, LinialRecoversUnderTenPercentFaults) {
  Graph g = gen::gnp(60, 0.15, 101);
  gen::scramble_ids(g, 1 << 18, 3);
  Network net(g);
  repair::ResilientOptions opt;
  opt.plan = ten_percent_plan(0xfeed);
  const auto res = resilient::resilient_linial(net, opt);
  EXPECT_TRUE(res.run.valid);
  EXPECT_TRUE(validate_ldc(res.inst, res.run.phi, 0).ok);
  EXPECT_EQ(net.faults(), nullptr);  // plan detached on return
  // The faulty run must actually have been faulty.
  EXPECT_GT(res.run.metrics.messages_dropped +
                res.run.metrics.messages_corrupted +
                res.run.metrics.node_sleeps,
            0u);
}

TEST(Resilient, DefectiveLinialRecoversUnderTenPercentFaults) {
  Graph g = gen::random_regular(64, 6, 55);
  gen::scramble_ids(g, 1 << 16, 9);
  Network net(g);
  repair::ResilientOptions opt;
  opt.plan = ten_percent_plan(0xbeef);
  const auto res = resilient::resilient_defective_linial(net, 2, opt);
  EXPECT_TRUE(res.run.valid);
  EXPECT_TRUE(validate_ldc(res.inst, res.run.phi, 0).ok);
  for (const auto& l : res.inst.lists) {
    for (auto d : l.defects) EXPECT_EQ(d, 2u);
  }
}

TEST(Resilient, D1lcRecoversUnderTenPercentFaults) {
  Graph g = gen::gnp(48, 0.15, 77);
  gen::scramble_ids(g, 1 << 18, 5);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  repair::ResilientOptions opt;
  opt.plan = ten_percent_plan(0xd17c);
  const auto res = resilient::resilient_d1lc(net, inst, opt);
  EXPECT_TRUE(res.valid);
  EXPECT_TRUE(validate_ldc(inst, res.phi, 0).ok);
}

TEST(Resilient, FaultFreeRunNeedsNoRecovery) {
  Graph g = gen::gnp(40, 0.2, 31);
  gen::scramble_ids(g, 1 << 18, 7);
  Network net(g);
  const auto res = resilient::resilient_linial(net);
  EXPECT_TRUE(res.run.valid);
  EXPECT_FALSE(res.run.colorer_failed);
  EXPECT_EQ(res.run.initial_violations, 0u);
  EXPECT_EQ(res.run.recovery_rounds, 0u);
  EXPECT_EQ(res.run.moved_nodes, 0u);
}

TEST(Resilient, ThrowingColorerIsRepairedFromScratch) {
  const Graph g = gen::ring(20);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = repair::run_resilient(
      net, inst,
      [](Network&, const LdcInstance&) -> Coloring {
        throw std::runtime_error("decoder derailed");
      });
  EXPECT_TRUE(res.colorer_failed);
  EXPECT_EQ(res.colorer_rounds, 0u);
  EXPECT_EQ(res.initial_violations, inst.n());
  EXPECT_TRUE(res.valid);
  EXPECT_TRUE(validate_ldc(inst, res.phi, 0).ok);
  EXPECT_EQ(res.moved_nodes, inst.n());  // everyone was uncolored
}

TEST(Resilient, RecoveryCostIsReported) {
  // Deliberately heavy corruption so that repair demonstrably has work to
  // do, and the cost shows up in the result.
  Graph g = gen::gnp(50, 0.2, 13);
  gen::scramble_ids(g, 1 << 18, 11);
  Network net(g);
  repair::ResilientOptions opt;
  opt.plan.seed = 0xc0de;
  opt.plan.drop_rate = 0.3;
  opt.plan.corrupt_rate = 0.3;
  const auto res = resilient::resilient_linial(net, opt);
  EXPECT_TRUE(res.run.valid);
  if (res.run.initial_violations > 0) {
    EXPECT_GT(res.run.recovery_rounds, 0u);
    EXPECT_GT(res.run.moved_nodes, 0u);
  }
  // Metrics snapshot covers colorer + repair rounds.
  EXPECT_EQ(res.run.metrics.rounds, net.metrics().rounds);
}

TEST(Resilient, LinialFixpointPaletteMatchesFaultFreeRun) {
  Graph g = gen::gnp(56, 0.12, 19);
  gen::scramble_ids(g, 1 << 18, 13);
  Network net(g);
  const auto lin = linial::color(net);
  EXPECT_EQ(resilient::linial_fixpoint_palette(
                g.max_id() + 1,
                std::max<std::uint64_t>(1, g.max_degree())),
            lin.palette);
}

}  // namespace
}  // namespace ldc
