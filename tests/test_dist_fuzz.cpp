// Wire-format hostility battery (ISSUE 10 satellite): the distributed
// engine's frames are untrusted input — a worker can be buggy, a socket
// can tear, a byte can flip. This file drives a seeded mutator over
// streams of valid frames (truncations, splices, bit flips in header and
// payload, wrong versions/magics, oversized length prefixes, count
// tampering, garbage prefixes) and asserts the decoder's contract: every
// malformed stream yields a typed dist::FrameError or a clean
// "need more bytes", NEVER a crash, an allocation driven by a hostile
// length, or a silently wrong frame. Run it under ASan/UBSan to make
// "never a crash" mean something.
#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "ldc/dist/wire.hpp"

namespace ldc::dist {
namespace {

/// Deterministic splitmix64 — the battery must replay byte-identically
/// from its seed, so a CI failure is reproducible locally.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
};

/// A few representative valid frames: empty payload, small payload, a
/// payload with structure (fault ctx + messages), and a large-ish batch.
std::vector<std::string> valid_frames() {
  std::vector<std::string> fs;
  fs.push_back(encode_frame(FrameKind::kHeartbeat, 7, 1, 0, 0, {}));
  fs.push_back(encode_frame(FrameKind::kBatchAck, 3, 0, 2, 1, "x"));
  {
    PayloadWriter w;
    FaultPlan plan;
    plan.seed = 0xfeed;
    plan.drop_rate = 0.25;
    encode_fault_ctx(w, &plan, std::vector<char>(40, 0), 40);
    BitWriter bw;
    bw.write(0x123456789abcdefull, 60);
    encode_message(w, Message::from(bw));
    fs.push_back(encode_frame(FrameKind::kOutbox, 2, 0, 1, 1, w.take()));
  }
  {
    PayloadWriter w;
    for (std::uint32_t i = 0; i < 200; ++i) {
      w.u32(i);
      BitWriter bw;
      bw.write(i * 2654435761u, 32);
      encode_message(w, Message::from(bw));
    }
    fs.push_back(encode_frame(FrameKind::kBatch, 5, 2, 3, 200, w.take()));
  }
  return fs;
}

/// Drains a byte stream through FrameReader in randomly sized feeds.
/// Returns the decoded frames; FrameError propagates to the caller.
std::vector<Frame> drain(const std::string& bytes, Rng& rng) {
  FrameReader reader;
  std::vector<Frame> out;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const std::size_t take =
        std::min<std::size_t>(bytes.size() - off, 1 + rng.below(97));
    reader.feed(bytes.data() + off, take);
    off += take;
    while (std::optional<Frame> f = reader.next()) out.push_back(std::move(*f));
  }
  return out;
}

TEST(DistFuzz, ValidStreamsRoundTripUnderAnyFeedChunking) {
  const std::vector<std::string> fs = valid_frames();
  Rng rng{0xc0ffee};
  for (int iter = 0; iter < 200; ++iter) {
    std::string stream;
    std::vector<std::size_t> order;
    const std::size_t count = 1 + rng.below(6);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t pick = rng.below(fs.size());
      order.push_back(pick);
      stream += fs[pick];
    }
    std::vector<Frame> got;
    ASSERT_NO_THROW(got = drain(stream, rng)) << "iter " << iter;
    ASSERT_EQ(got.size(), order.size()) << "iter " << iter;
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Re-encoding the decoded frame must reproduce the input bytes.
      const std::string re = encode_frame(
          got[i].header.kind, got[i].header.round, got[i].header.src_shard,
          got[i].header.dst_shard, got[i].header.count, got[i].payload);
      EXPECT_EQ(re, fs[order[i]]) << "iter " << iter << " frame " << i;
    }
  }
}

TEST(DistFuzz, TruncatedStreamsNeverYieldAFrameFromThePartialTail) {
  const std::vector<std::string> fs = valid_frames();
  for (const std::string& f : fs) {
    for (std::size_t cut = 0; cut < f.size(); ++cut) {
      FrameReader reader;
      reader.feed(f.data(), cut);
      try {
        EXPECT_FALSE(reader.next().has_value()) << "cut " << cut;
        // A partial frame is visible as such (torn-frame reporting).
        EXPECT_EQ(reader.mid_frame(), cut != 0) << "cut " << cut;
      } catch (const FrameError&) {
        // Acceptable only once enough of a header exists to fail a check
        // — truncation alone must read as "wait for more bytes".
        ADD_FAILURE() << "prefix of a valid frame rejected at cut " << cut;
      }
    }
  }
}

// The core battery: seeded mutations over valid streams. Every outcome
// must be a valid frame, a quiet wait-for-more, or a typed FrameError —
// mutations that structurally cannot produce a valid stream must throw.
TEST(DistFuzz, MutatedStreamsAlwaysFailTyped) {
  const std::vector<std::string> fs = valid_frames();
  Rng rng{0xdead5eed};
  std::uint64_t rejected = 0;
  const int kIters = 4000;
  for (int iter = 0; iter < kIters; ++iter) {
    std::string stream = fs[rng.below(fs.size())] + fs[rng.below(fs.size())];
    const std::uint64_t mutation = rng.below(8);
    bool must_throw = false;
    switch (mutation) {
      case 0:  // single bit flip anywhere
        stream[rng.below(stream.size())] ^=
            static_cast<char>(1u << rng.below(8));
        break;
      case 1:  // wrong wire version
        stream[4] = 2;
        must_throw = true;
        break;
      case 2:  // bad magic
        stream[0] = 'X';
        must_throw = true;
        break;
      case 3: {  // oversized payload length prefix (hostile allocation)
        const std::uint64_t huge = kMaxFramePayload + 1 + rng.below(1u << 20);
        std::memcpy(stream.data() + 24, &huge, sizeof huge);
        must_throw = true;
        break;
      }
      case 4: {  // splice: tail of one frame onto the head of another
        const std::string& a = fs[rng.below(fs.size())];
        const std::string& b = fs[rng.below(fs.size())];
        stream = a.substr(0, 1 + rng.below(a.size() - 1)) + b;
        break;
      }
      case 5:  // unknown frame kind
        stream[6] = static_cast<char>(200);
        must_throw = true;
        break;
      case 6:  // nonzero reserved word
        stream[36] = 1;
        must_throw = true;
        break;
      case 7:  // garbage prefix before a valid frame
        stream = std::string(1 + rng.below(16), 'Z') + stream;
        must_throw = true;
        break;
    }
    try {
      const std::vector<Frame> got = drain(stream, rng);
      if (must_throw) {
        ADD_FAILURE() << "iter " << iter << " mutation " << mutation
                      << ": structurally invalid stream decoded "
                      << got.size() << " frames";
      }
      // Anything decoded must re-encode to real frame bytes (no silently
      // wrong frames): digest-valid by construction of next().
    } catch (const FrameError&) {
      ++rejected;  // the typed rejection the contract promises
    }
    // Any other exception type escapes and fails the test.
  }
  // The battery must actually bite: the deterministic seed above rejects
  // the overwhelming majority of mutations (bit flips land in payload or
  // digest far more often than in slack bytes).
  EXPECT_GT(rejected, static_cast<std::uint64_t>(kIters) / 2);
}

TEST(DistFuzz, CountPayloadDisagreementIsTyped) {
  // A kBatch frame whose count promises more entries than the payload
  // holds: header validation can't see it (count is kind-specific), but
  // the payload decoder must fail typed, not overrun.
  PayloadWriter w;
  w.u32(9);  // one sender id…
  BitWriter bw;
  bw.write(0xab, 8);
  encode_message(w, Message::from(bw));  // …and one message
  const std::string frame =
      encode_frame(FrameKind::kBatch, 1, 0, 1, /*count=*/3, w.take());
  FrameReader reader;
  reader.feed(frame.data(), frame.size());
  const std::optional<Frame> f = reader.next();
  ASSERT_TRUE(f.has_value());
  PayloadReader r(f->payload, "batch");
  (void)r.u32();
  (void)decode_message(r);
  // Entry 2 of the promised 3: every further read is a typed overrun.
  EXPECT_THROW((void)r.u32(), FrameError);
}

TEST(DistFuzz, PayloadReaderOverrunAndTrailingGarbageAreTyped) {
  {
    PayloadReader r("abc", "test");
    (void)r.u8();
    EXPECT_THROW((void)r.u64(), FrameError);  // 2 bytes left, need 8
  }
  {
    PayloadReader r("abcd", "test");
    (void)r.u32();
    EXPECT_NO_THROW(r.expect_end());
  }
  {
    PayloadReader r("abcde", "test");
    (void)r.u32();
    EXPECT_THROW(r.expect_end(), FrameError);  // trailing byte
  }
  {
    // decode_message with a hostile bit count: rejected before any
    // allocation sized by it.
    PayloadWriter w;
    w.u32(1u << 30);
    const std::string payload = w.take();
    PayloadReader r(payload, "msg");
    EXPECT_THROW((void)decode_message(r), FrameError);
  }
  {
    // Truncated fault context: the down bitmap is cut short.
    PayloadWriter w;
    FaultPlan plan;
    plan.seed = 1;
    plan.drop_rate = 0.5;
    encode_fault_ctx(w, &plan, std::vector<char>(64, 1), 64);
    std::string payload = w.take();
    payload.resize(payload.size() - 3);
    PayloadReader r(payload, "fault ctx");
    EXPECT_THROW((void)decode_fault_ctx(r, 64), FrameError);
  }
  {
    // Truncated summary (9 u64 fields on the wire).
    PayloadWriter w;
    encode_summary(w, ShardRoundSummary{});
    std::string payload = w.take();
    payload.resize(payload.size() - 1);
    PayloadReader r(payload, "summary");
    EXPECT_THROW((void)decode_summary(r), FrameError);
  }
}

TEST(DistFuzz, RoundTripCodecs) {
  {
    FaultPlan plan;
    plan.seed = 0x1234;
    plan.drop_rate = 0.1;
    plan.corrupt_rate = 0.2;
    plan.crash_rate = 0.05;
    plan.sleep_rate = 0.15;
    plan.max_crashes = 7;
    std::vector<char> down(50, 0);
    down[3] = down[17] = down[49] = 1;
    PayloadWriter w;
    encode_fault_ctx(w, &plan, down, 50);
    const std::string payload = w.take();
    PayloadReader r(payload, "fault ctx");
    const FaultCtx ctx = decode_fault_ctx(r, 50);
    r.expect_end();
    ASSERT_TRUE(ctx.faulty);
    EXPECT_EQ(ctx.plan.seed, plan.seed);
    EXPECT_EQ(ctx.plan.max_crashes, plan.max_crashes);
    EXPECT_DOUBLE_EQ(ctx.plan.drop_rate, plan.drop_rate);
    for (NodeId v = 0; v < 50; ++v) {
      EXPECT_EQ(ctx.down_bit(v), down[v] != 0) << v;
    }
  }
  {
    // Messages: exact bit counts survive, including non-word-aligned.
    for (const std::size_t bits : {1u, 7u, 64u, 65u, 129u, 1000u}) {
      BitWriter bw;
      for (std::size_t done = 0; done < bits; done += 32) {
        bw.write(0xdeadbeef, static_cast<int>(std::min<std::size_t>(
                                 32, bits - done)));
      }
      const Message m = Message::from(bw);
      PayloadWriter w;
      encode_message(w, m);
      const std::string payload = w.take();
      PayloadReader r(payload, "msg");
      const Message back = decode_message(r);
      r.expect_end();
      ASSERT_EQ(back.bit_count(), m.bit_count()) << bits << " bits";
      auto ra = m.reader();
      auto rb = back.reader();
      for (std::size_t done = 0; done < bits; done += 64) {
        const int take =
            static_cast<int>(std::min<std::size_t>(64, bits - done));
        EXPECT_EQ(ra.read(take), rb.read(take)) << bits << " bits";
      }
    }
  }
  {
    ShardRoundSummary s;
    s.messages = 11;
    s.total_bits = 22;
    s.max_message_bits = 33;
    s.congest_violations = 44;
    s.round_max_bits = 55;
    s.dropped = 66;
    s.corrupted = 77;
    s.traffic_messages = 88;
    s.traffic_bits = 99;
    PayloadWriter w;
    encode_summary(w, s);
    const std::string payload = w.take();
    PayloadReader r(payload, "summary");
    const ShardRoundSummary back = decode_summary(r);
    r.expect_end();
    EXPECT_EQ(back.messages, s.messages);
    EXPECT_EQ(back.traffic_bits, s.traffic_bits);
    EXPECT_EQ(back.round_max_bits, s.round_max_bits);
  }
}

// Blocking fd reads share the decoder: clean EOF at a frame boundary is
// nullopt, EOF mid-frame is a typed torn-frame error — and the caller's
// persistent reader keeps coalesced frames (two frames arriving in one
// read(2)) instead of dropping the surplus bytes.
TEST(DistFuzz, ReadFrameFdTornAndCleanEof) {
  const std::string frame =
      encode_frame(FrameKind::kHeartbeat, 1, 0, 0, 0, {});
  {
    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    const std::string two = frame + encode_frame(FrameKind::kBatchAck, 2, 1,
                                                 0, 0, {});
    ASSERT_EQ(::write(p[1], two.data(), two.size()),
              static_cast<ssize_t>(two.size()));
    ::close(p[1]);
    FrameReader reader;
    const std::optional<Frame> f = read_frame_fd(p[0], reader);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->header.kind, FrameKind::kHeartbeat);
    const std::optional<Frame> g = read_frame_fd(p[0], reader);
    ASSERT_TRUE(g.has_value());  // buffered in the reader, not lost
    EXPECT_EQ(g->header.kind, FrameKind::kBatchAck);
    EXPECT_EQ(g->header.round, 2u);
    EXPECT_FALSE(read_frame_fd(p[0], reader).has_value());  // clean EOF
    ::close(p[0]);
  }
  {
    int p[2];
    ASSERT_EQ(::pipe(p), 0);
    ASSERT_EQ(::write(p[1], frame.data(), frame.size() - 5),
              static_cast<ssize_t>(frame.size() - 5));
    ::close(p[1]);
    try {
      FrameReader reader;
      (void)read_frame_fd(p[0], reader);
      ADD_FAILURE() << "expected a torn-frame FrameError";
    } catch (const FrameError& e) {
      EXPECT_NE(std::string(e.what()).find("torn"), std::string::npos)
          << e.what();
    }
    ::close(p[0]);
  }
}

TEST(DistFuzz, WriteAllFdReportsTheGonePeer) {
  ::signal(SIGPIPE, SIG_IGN);
  int p[2];
  ASSERT_EQ(::pipe(p), 0);
  ::close(p[0]);  // peer gone
  const std::string frame =
      encode_frame(FrameKind::kHeartbeat, 1, 0, 0, 0, {});
  try {
    write_all_fd(p[1], frame, "test peer");
    ADD_FAILURE() << "expected WorkerError on EPIPE";
  } catch (const WorkerError& e) {
    EXPECT_NE(std::string(e.what()).find("test peer"), std::string::npos)
        << e.what();
  }
  ::close(p[1]);
}

}  // namespace
}  // namespace ldc::dist
