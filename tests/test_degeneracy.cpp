#include "ldc/arb/degeneracy.hpp"

#include <gtest/gtest.h>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/builder.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/two_phase.hpp"

namespace ldc {
namespace {

TEST(Degeneracy, TreeHasDegeneracyOne) {
  const Graph g = gen::random_tree(60, 3);
  const auto res = degeneracy_orientation(g);
  EXPECT_EQ(res.degeneracy, 1u);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_LE(res.orientation.outdeg(v), 1u);
}

TEST(Degeneracy, CliqueHasDegeneracyNMinusOne) {
  const Graph g = gen::clique(7);
  const auto res = degeneracy_orientation(g);
  EXPECT_EQ(res.degeneracy, 6u);
}

TEST(Degeneracy, RingHasDegeneracyTwo) {
  const Graph g = gen::ring(20);
  const auto res = degeneracy_orientation(g);
  EXPECT_EQ(res.degeneracy, 2u);
}

TEST(Degeneracy, StarDegeneracyOneDespiteHugeDelta) {
  const Graph g = gen::complete_bipartite(1, 40);  // Delta = 40
  const auto res = degeneracy_orientation(g);
  EXPECT_EQ(res.degeneracy, 1u);
  EXPECT_EQ(res.orientation.max_beta(), 1u);
}

TEST(Degeneracy, OutdegreeBoundedByDegeneracyEverywhere) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = gen::gnp(80, 0.1, seed);
    const auto res = degeneracy_orientation(g);
    std::uint32_t max_out = 0;
    std::uint64_t total = 0;
    for (NodeId v = 0; v < g.n(); ++v) {
      max_out = std::max(max_out, res.orientation.outdeg(v));
      total += res.orientation.outdeg(v);
    }
    EXPECT_EQ(max_out, res.degeneracy) << seed;
    EXPECT_EQ(total, g.m()) << seed;
  }
}

TEST(Peeling, BetaWithinConstantFactorOfDegeneracy) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = gen::power_law(150, 2.5, 5.0, seed);
    const auto exact = degeneracy_orientation(g);
    Network net(g);
    const auto peel = distributed_peeling_orientation(net, 1.0);
    // (2+eps) * arboricity; arboricity <= degeneracy.
    EXPECT_LE(peel.beta, 3 * std::max(1u, exact.degeneracy) + 3) << seed;
    EXPECT_GE(peel.beta, 1u);
  }
}

TEST(Peeling, LayerCountLogarithmic) {
  const Graph g = gen::gnp(256, 0.05, 9);
  Network net(g);
  const auto peel = distributed_peeling_orientation(net, 1.0);
  // Each layer removes a constant fraction: O(log n) layers.
  EXPECT_LE(peel.layers, 24u);
  EXPECT_EQ(peel.rounds, peel.layers);
}

TEST(Peeling, OrientationCoversAllEdges) {
  const Graph g = gen::torus(8, 6);
  Network net(g);
  const auto peel = distributed_peeling_orientation(net, 0.5);
  std::uint64_t total = 0;
  for (NodeId v = 0; v < g.n(); ++v) total += peel.orientation.outdeg(v);
  EXPECT_EQ(total, g.m());
}

TEST(Peeling, RejectsNonpositiveEps) {
  const Graph g = gen::ring(6);
  Network net(g);
  EXPECT_THROW(distributed_peeling_orientation(net, 0.0),
               std::invalid_argument);
}

// The payoff: OLDC on a sparse-but-high-Delta graph is much cheaper with
// the degeneracy orientation (h tracks log beta, not log Delta).
TEST(Degeneracy, OldcBenefitsFromLowOutdegreeOrientation) {
  // Star-of-cliques: high Delta hub, low degeneracy.
  GraphBuilder b(61);
  for (std::uint32_t v = 1; v <= 60; ++v) b.add_edge(0, v);
  for (std::uint32_t v = 1; v + 1 <= 60; v += 2) b.add_edge(v, v + 1);
  Graph g = b.build();
  gen::scramble_ids(g, 1 << 20, 5);
  const auto deg = degeneracy_orientation(g);
  ASSERT_LE(deg.degeneracy, 2u);

  RandomLdcParams p;
  p.color_space = 2048;
  p.one_plus_nu = 2.0;
  p.kappa = 40.0;
  p.max_defect = 1;
  p.seed = 8;
  const LdcInstance inst =
      random_weighted_oriented_instance(g, deg.orientation, p);
  Network net(g);
  const auto lin = linial::color(net);
  oldc::TwoPhaseInput in;
  in.inst = &inst;
  in.orientation = &deg.orientation;
  in.initial = &lin.phi;
  in.m = lin.palette;
  const auto res = oldc::solve_two_phase(net, in);
  EXPECT_TRUE(validate_oldc(inst, deg.orientation, res.phi).ok);
  // h = log2(max beta) = 1..2, nowhere near log2(Delta=60).
  EXPECT_LE(res.stats.h, 2u);
}

}  // namespace
}  // namespace ldc
