// Distributed-engine equivalence, robustness, and strict-knob contracts.
//
// Engine::kDist runs every communication round in K `ldc_shard` worker
// *processes* talking to a dist::Coordinator over sockets; this file pins
// the contract ISSUE 10 states: colors, model-exact RunMetrics, trace
// digests, and fault decisions byte-identical to kSerial and kSharded
// for every worker count × fault plan × active mask — plus the parts
// only a multi-process engine has: the attach handshake rejects a worker
// whose corpus content digest differs, a SIGKILLed worker surfaces as a
// typed WorkerError naming the shard and round (well inside the
// heartbeat window, with no orphan processes left behind), a SIGSTOPped
// worker trips the heartbeat timeout, CONGEST violations and outbox
// validation errors cross the process boundary with their original
// exception types, and every dist knob (LDC_DIST_WORKERS,
// heartbeat/attach timeouts) is parsed strictly — garbage throws
// std::invalid_argument naming the offending token, never a silent
// fallback.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "ldc/baselines/kw_reduction.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/dist/coordinator.hpp"
#include "ldc/dist/wire.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/defective_linial.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/runtime/network.hpp"
#include "ldc/storage/corpus.hpp"
#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

using dist::AttachError;
using dist::Coordinator;
using dist::CoordinatorOptions;
using dist::WorkerError;

/// Unique corpus path under the test temp dir, removed on destruction.
class TempCorpus {
 public:
  explicit TempCorpus(const std::string& tag)
      : path_(testing::TempDir() + "dist_corpus_" + tag + ".ldcg") {
    std::remove(path_.c_str());
  }
  ~TempCorpus() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Streams an in-RAM graph through the corpus writer (identity ids — the
/// workers mmap this file, so every engine must run over the same view).
void write_graph(const Graph& g, const std::string& path) {
  storage::CorpusWriter w(path, g.n(), /*with_ids=*/false);
  for (NodeId v = 0; v < g.n(); ++v) w.add_vertex(g.neighbors(v));
  w.close();
}

/// Path of the built ldc_shard binary, resolved the same way the
/// coordinator's spawn mode does (test binaries live in build/tests/,
/// ldc_shard in build/src/).
std::string shard_binary() {
  if (const char* env = std::getenv("LDC_SHARD_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (len <= 0) return "ldc_shard";
  buf[len] = '\0';
  std::string dir(buf);
  dir = dir.substr(0, dir.find_last_of('/'));
  for (const std::string& cand :
       {dir + "/ldc_shard", dir + "/../src/ldc_shard"}) {
    if (::access(cand.c_str(), X_OK) == 0) return cand;
  }
  return "ldc_shard";
}

// An engine selection applied to a fresh Network; "serial" is the
// reference. The dist selection attaches a live Coordinator, so the same
// worker processes serve every run the sweep binds to them.
struct EngineSel {
  std::string name;
  std::function<void(Network&)> apply;
};

EngineSel dist_sel(Coordinator& coord) {
  return {"dist@" + std::to_string(coord.shards()),
          [&coord](Network& net) { net.attach_dist(&coord); }};
}

struct EngineRun {
  Coloring phi;
  RunMetrics metrics;
  std::uint64_t trace_digest = 0;
  std::vector<Trace::Round> rounds;
};

using Colorer = std::function<Coloring(Network&)>;

EngineRun run_with_engine(const Graph& g, const EngineSel& sel,
                          const Colorer& algo) {
  Network net(g);
  sel.apply(net);
  Trace trace;
  net.attach_trace(&trace);
  EngineRun out;
  out.phi = algo(net);
  out.metrics = net.metrics();
  out.trace_digest = trace.digest();
  out.rounds = trace.rounds();
  return out;
}

void expect_equivalent(const EngineRun& serial, const EngineRun& other,
                       const std::string& label) {
  EXPECT_EQ(serial.phi, other.phi) << label << ": colors differ";
  EXPECT_TRUE(serial.metrics.same_communication(other.metrics))
      << label << ": metrics differ: serial {" << serial.metrics
      << "} other {" << other.metrics << "}";
  EXPECT_EQ(serial.trace_digest, other.trace_digest)
      << label << ": trace digests differ";
  ASSERT_EQ(serial.rounds.size(), other.rounds.size())
      << label << ": transcript length differs";
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    const auto& a = serial.rounds[i];
    const auto& b = other.rounds[i];
    EXPECT_EQ(a.messages, b.messages) << label << " round " << i;
    EXPECT_EQ(a.bits, b.bits) << label << " round " << i;
    EXPECT_EQ(a.max_message_bits, b.max_message_bits)
        << label << " round " << i;
    EXPECT_EQ(a.faults.dropped, b.faults.dropped) << label << " round " << i;
    EXPECT_EQ(a.faults.corrupted, b.faults.corrupted)
        << label << " round " << i;
    EXPECT_EQ(a.faults.crashes, b.faults.crashes) << label << " round " << i;
  }
}

struct NamedColorer {
  std::string name;
  Colorer run;
};

// Colorer coverage across the three mail lanes: linial (fused word
// rounds), defective linial (masked broadcasts), Luby (per-edge
// exchanges under randomness), linial+kw (long masked pipelines).
std::vector<NamedColorer> colorer_mix(const Graph& g) {
  std::vector<NamedColorer> cs;
  cs.push_back({"linial", [](Network& net) {
                  return linial::color(net).phi;
                }});
  cs.push_back({"defective-linial-d2", [](Network& net) {
                  return linial::defective_color(net, 2).phi;
                }});
  cs.push_back({"luby", [&g](Network& net) {
                  const LdcInstance inst = delta_plus_one_instance(g);
                  baselines::LubyOptions opt;
                  opt.seed = 42;
                  return baselines::luby_list_coloring(net, inst, opt).phi;
                }});
  cs.push_back({"linial+kw", [](Network& net) {
                  return baselines::linial_then_kw(net).phi;
                }});
  return cs;
}

TEST(Dist, EveryColorerEveryWorkerCountMatchesSerialAndSharded) {
  struct NamedGraph {
    std::string name;
    Graph g;
  };
  std::vector<NamedGraph> graphs;
  graphs.push_back({"gnp60", gen::gnp(60, 0.2, 11)});
  graphs.push_back({"ring49", gen::ring(49)});
  const EngineSel serial{"serial", [](Network&) {}};
  for (const auto& ng : graphs) {
    TempCorpus tc("equiv_" + ng.name);
    write_graph(ng.g, tc.path());
    for (std::size_t workers : {1u, 2u, 4u}) {
      CoordinatorOptions opt;
      opt.workers = workers;
      Coordinator coord(tc.path(), opt);
      ASSERT_EQ(coord.shards(), workers);
      // One coordinator (same worker processes) serves every colorer:
      // re-binding must fully reset the distributed state.
      for (const auto& colorer : colorer_mix(ng.g)) {
        const EngineRun ref = run_with_engine(ng.g, serial, colorer.run);
        const EngineSel sharded{
            "sharded@" + std::to_string(workers), [workers](Network& net) {
              net.set_engine(Network::Engine::kSharded, workers);
            }};
        const EngineRun in_proc =
            run_with_engine(ng.g, sharded, colorer.run);
        const EngineRun got =
            run_with_engine(coord.corpus_graph(), dist_sel(coord),
                            colorer.run);
        const std::string label =
            colorer.name + " on " + ng.name + " @dist" +
            std::to_string(workers);
        expect_equivalent(ref, got, label);
        expect_equivalent(in_proc, got, label + " (vs sharded)");
      }
    }
  }
}

// Named fault plans; rates aggressive enough that every fault process
// fires on the small test graphs (same seeds as tests/test_sharded.cpp).
std::vector<std::pair<std::string, FaultPlan>> fault_plan_mix() {
  std::vector<std::pair<std::string, FaultPlan>> plans;
  {
    FaultPlan p;
    p.seed = 0xfa01;
    p.drop_rate = 0.15;
    plans.push_back({"drop15", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa02;
    p.corrupt_rate = 0.20;
    plans.push_back({"corrupt20", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa03;
    p.crash_rate = 0.03;
    p.sleep_rate = 0.10;
    p.max_crashes = 5;
    plans.push_back({"crash-sleep", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa04;
    p.drop_rate = 0.05;
    p.corrupt_rate = 0.05;
    p.crash_rate = 0.01;
    p.sleep_rate = 0.05;
    p.max_crashes = 4;
    plans.push_back({"mixed", p});
  }
  return plans;
}

struct FaultyRun {
  std::vector<std::uint64_t> inbox_flat;  ///< (receiver, sender, payload)
  RunMetrics metrics;
  std::uint64_t trace_digest = 0;
};

// Raw multi-round exchange under a fault plan, flattening every delivered
// payload so drop/corrupt/crash/sleep effects are byte-observable.
FaultyRun run_faulty_exchange(const Graph& g, const EngineSel& sel,
                              const FaultPlan& plan) {
  Network net(g);
  sel.apply(net);
  Trace trace;
  net.attach_trace(&trace);
  net.attach_faults(&plan);
  FaultyRun out;
  for (std::uint64_t r = 0; r < 6; ++r) {
    std::vector<Network::Outbox> outboxes(g.n());
    for (NodeId u = 0; u < g.n(); ++u) {
      for (NodeId v : g.neighbors(u)) {
        BitWriter w;
        w.write(hash_combine(r, (static_cast<std::uint64_t>(u) << 20) | v),
                40);
        outboxes[u].emplace_back(v, Message::from(w));
      }
    }
    const auto in = net.exchange(outboxes);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const auto& [sender, msg] : in[v]) {
        auto rd = msg.reader();
        out.inbox_flat.push_back(hash_combine(
            (static_cast<std::uint64_t>(v) << 32) | sender, rd.read(40)));
      }
    }
  }
  out.metrics = net.metrics();
  out.trace_digest = trace.digest();
  return out;
}

// The fault context crosses the wire once per round (coordinator-resolved
// down bitmap + PRF plan); every worker must re-resolve drop/corrupt
// decisions bit-identically to the serial engine.
TEST(Dist, FaultPlansMatchSerial) {
  const Graph g = gen::gnp(60, 0.2, 11);
  TempCorpus tc("faults");
  write_graph(g, tc.path());
  const EngineSel serial{"serial", [](Network&) {}};
  for (std::size_t workers : {1u, 2u, 4u}) {
    CoordinatorOptions opt;
    opt.workers = workers;
    Coordinator coord(tc.path(), opt);
    for (const auto& [plan_name, plan] : fault_plan_mix()) {
      const FaultyRun ref = run_faulty_exchange(g, serial, plan);
      EXPECT_GT(ref.metrics.messages_dropped + ref.metrics.messages_corrupted +
                    ref.metrics.node_crashes + ref.metrics.node_sleeps,
                0u)
          << plan_name;
      const FaultyRun got = run_faulty_exchange(coord.corpus_graph(),
                                                dist_sel(coord), plan);
      const std::string label = plan_name + " @dist" + std::to_string(workers);
      EXPECT_EQ(ref.inbox_flat, got.inbox_flat)
          << label << ": delivered payloads differ";
      EXPECT_TRUE(ref.metrics.same_communication(got.metrics))
          << label << ": metrics differ: ref {" << ref.metrics << "} got {"
          << got.metrics << "}";
      EXPECT_EQ(ref.trace_digest, got.trace_digest)
          << label << ": trace digests differ";
    }
  }
}

// Broadcast fast path and the fused word path under kDist must match the
// serial engine's materialized-outbox reference — with and without an
// active mask, with and without faults. All-live rounds stay
// coordinator-local; masked/faulty rounds take the kBcast / kWordSparse
// wire paths.
TEST(Dist, BroadcastAndWordPathsMatchSerialReference) {
  const Graph g = gen::gnp(48, 0.25, 34);
  TempCorpus tc("bcast");
  write_graph(g, tc.path());
  const std::uint64_t bound = 499;
  std::vector<std::uint64_t> words(g.n());
  std::vector<Message> msgs(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    words[v] = hash_combine(0xb1, v) % (bound + 1);
    BitWriter w;
    w.write_bounded(words[v], bound);
    msgs[v] = Message::from(w);
  }
  std::vector<bool> mask(g.n());
  for (NodeId v = 0; v < g.n(); ++v) mask[v] = v % 3 != 0;
  FaultPlan plan;
  plan.seed = 0xfa08;
  plan.drop_rate = 0.08;
  plan.corrupt_rate = 0.12;
  plan.sleep_rate = 0.05;

  struct Flat {
    std::vector<std::uint64_t> slots;
    RunMetrics metrics;
    std::uint64_t trace_digest = 0;
  };
  enum class Path { kOutboxes, kBroadcast, kFusedWord };
  auto run = [&](Coordinator* coord, const std::vector<bool>* active,
                 const FaultPlan* faults, Path path) {
    Network net(coord != nullptr ? coord->corpus_graph() : g);
    if (coord != nullptr) net.attach_dist(coord);
    Trace trace;
    net.attach_trace(&trace);
    if (faults != nullptr) net.attach_faults(faults);
    Flat out;
    for (int round = 0; round < 3; ++round) {
      if (path == Path::kFusedWord) {
        const WordMail in = net.exchange_broadcast_word(words, bound, active);
        for (NodeId v = 0; v < g.n(); ++v) {
          for (const auto [sender, word] : in[v]) {
            out.slots.push_back(hash_combine(
                (static_cast<std::uint64_t>(v) << 32) | sender, word));
          }
        }
        continue;
      }
      RoundMail in;
      if (path == Path::kOutboxes) {
        std::vector<Network::Outbox> outboxes(g.n());
        for (NodeId u = 0; u < g.n(); ++u) {
          if (active != nullptr && !(*active)[u]) continue;
          for (NodeId v : g.neighbors(u)) outboxes[u].emplace_back(v, msgs[u]);
        }
        in = net.exchange(outboxes);
      } else {
        in = net.exchange_broadcast(msgs, active);
      }
      for (NodeId v = 0; v < g.n(); ++v) {
        for (const auto& [sender, msg] : in[v]) {
          auto r = msg.reader();
          out.slots.push_back(
              hash_combine((static_cast<std::uint64_t>(v) << 32) | sender,
                           r.read_bounded(bound)));
        }
      }
    }
    out.metrics = net.metrics();
    out.trace_digest = trace.digest();
    return out;
  };

  const std::vector<bool>* masks[] = {nullptr, &mask};
  const FaultPlan* plans[] = {nullptr, &plan};
  for (std::size_t workers : {2u, 4u}) {
    CoordinatorOptions opt;
    opt.workers = workers;
    Coordinator coord(tc.path(), opt);
    for (const std::vector<bool>* active : masks) {
      for (const FaultPlan* faults : plans) {
        const Flat ref = run(nullptr, active, faults, Path::kOutboxes);
        for (const Path path :
             {Path::kOutboxes, Path::kBroadcast, Path::kFusedWord}) {
          const Flat got = run(&coord, active, faults, path);
          const std::string label =
              std::string(path == Path::kFusedWord  ? "fused"
                          : path == Path::kOutboxes ? "outboxes"
                                                    : "broadcast") +
              "/" + (active != nullptr ? "masked" : "all") +
              (faults != nullptr ? "+faults" : "") + " @dist" +
              std::to_string(workers);
          EXPECT_EQ(ref.slots, got.slots) << label << ": deliveries differ";
          EXPECT_TRUE(ref.metrics.same_communication(got.metrics))
              << label << ": metrics differ: ref {" << ref.metrics
              << "} got {" << got.metrics << "}";
          EXPECT_EQ(ref.trace_digest, got.trace_digest)
              << label << ": trace digests differ";
        }
      }
    }
  }
}

// The logical cross-shard counters are engine-independent observability:
// kDist over K processes must report exactly what the in-process sharded
// engine reports for the same K — the wire adds frames and headers, never
// logical traffic.
TEST(Dist, CrossShardTrafficMatchesShardedEngine) {
  const Graph g = gen::gnp(60, 0.2, 11);
  TempCorpus tc("traffic");
  write_graph(g, tc.path());
  auto run_linial = [](Network& net) { linial::color(net); };
  for (std::size_t workers : {2u, 4u}) {
    Network sharded(g);
    sharded.set_engine(Network::Engine::kSharded, workers);
    run_linial(sharded);
    const ShardTraffic want = sharded.cross_shard_traffic();

    CoordinatorOptions opt;
    opt.workers = workers;
    Coordinator coord(tc.path(), opt);
    Network net(coord.corpus_graph());
    net.attach_dist(&coord);
    run_linial(net);
    const ShardTraffic got = net.cross_shard_traffic();
    EXPECT_EQ(want.messages, got.messages) << workers << " workers";
    EXPECT_EQ(want.bits, got.bits) << workers << " workers";
    // The physical wire actually moved frames (attach handshake at
    // minimum), and the counters reconcile sent vs received directions.
    const dist::WireStats ws = coord.wire_stats();
    EXPECT_GT(ws.frames_sent, 0u);
    EXPECT_GT(ws.frames_received, 0u);
    EXPECT_GT(ws.bytes_sent, ws.frames_sent * dist::kFrameHeaderBytes - 1);
  }
}

// ---------------------------------------------------------- robustness --

// A worker serving a DIFFERENT corpus (same n, different edges, so only
// the content digest can tell) must be rejected at attach with a typed
// AttachError — before any round runs over mismatched adjacency.
TEST(Dist, AttachRejectsCorpusContentDigestMismatch) {
  const Graph a = gen::gnp(40, 0.2, 11);
  const Graph b = gen::gnp(40, 0.2, 12);  // same n, different digest
  TempCorpus ca("attach_a"), cb("attach_b");
  write_graph(a, ca.path());
  write_graph(b, cb.path());

  const std::string sock = testing::TempDir() + "ldc_dist_attach.sock";
  std::remove(sock.c_str());
  const std::string bin = shard_binary();
  ASSERT_EQ(::access(bin.c_str(), X_OK), 0) << "ldc_shard not found at "
                                            << bin;
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: wait for the coordinator's listening socket, then attach
    // with the WRONG corpus.
    for (int i = 0; i < 400 && ::access(sock.c_str(), F_OK) != 0; ++i) {
      ::usleep(20 * 1000);
    }
    ::execl(bin.c_str(), "ldc_shard", "--corpus", cb.path().c_str(),
            "--connect-unix", sock.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }
  CoordinatorOptions opt;
  opt.workers = 1;
  opt.listen_unix = sock;
  opt.attach_timeout_ms = 10000;
  try {
    Coordinator coord(ca.path(), opt);
    ADD_FAILURE() << "expected AttachError on corpus digest mismatch";
  } catch (const AttachError& e) {
    EXPECT_NE(std::string(e.what()).find("digest mismatch"),
              std::string::npos)
        << e.what();
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  // The failed attach tears the listen socket down behind itself.
  EXPECT_NE(::access(sock.c_str(), F_OK), 0) << "listen socket leaked";
}

// kill -9 one worker mid-run: the next round must fail with a typed
// WorkerError naming the dead shard and the round — detected via EOF,
// i.e. well inside the heartbeat window — and the coordinator teardown
// must leave no orphan worker processes behind.
TEST(Dist, WorkerKilledMidRunYieldsTypedErrorNamingShardAndRound) {
  const Graph g = gen::gnp(40, 0.2, 21);
  TempCorpus tc("kill");
  write_graph(g, tc.path());
  std::vector<pid_t> pids;
  {
    CoordinatorOptions opt;
    opt.workers = 3;
    opt.heartbeat_ms = 60000;  // EOF detection must not need the timeout
    Coordinator coord(tc.path(), opt);
    pids = coord.worker_pids();
    ASSERT_EQ(pids.size(), 3u);
    for (const pid_t p : pids) ASSERT_GT(p, 0);

    Network net(coord.corpus_graph());
    net.attach_dist(&coord);
    auto round = [&] {
      std::vector<Network::Outbox> out(g.n());
      for (NodeId u = 0; u < g.n(); ++u) {
        for (NodeId v : g.neighbors(u)) {
          BitWriter w;
          w.write(u ^ v, 24);
          out[u].emplace_back(v, Message::from(w));
        }
      }
      return net.exchange(out);
    };
    EXPECT_EQ(round().size(), g.n());  // one clean round first

    ASSERT_EQ(::kill(pids[1], SIGKILL), 0);
    const auto t0 = std::chrono::steady_clock::now();
    try {
      round();
      ADD_FAILURE() << "expected WorkerError after SIGKILL";
    } catch (const WorkerError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
      EXPECT_NE(what.find("round 1"), std::string::npos) << what;
      EXPECT_NE(what.find("died"), std::string::npos) << what;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    EXPECT_LT(elapsed.count(), 10000) << "EOF detection took too long";
  }
  // Coordinator destroyed: every worker (including the killed one) must
  // be reaped — no orphans, no zombies.
  for (const pid_t p : pids) {
    EXPECT_EQ(::kill(p, 0), -1) << "worker " << p << " still alive";
    EXPECT_EQ(errno, ESRCH) << "worker " << p;
  }
}

// A hung (SIGSTOPped) worker never closes its socket, so only the
// heartbeat window can catch it: the round must abort with a WorkerError
// naming the silent shard within ~the configured window.
TEST(Dist, HungWorkerTripsHeartbeatTimeout) {
  const Graph g = gen::ring(24);
  TempCorpus tc("hang");
  write_graph(g, tc.path());
  CoordinatorOptions opt;
  opt.workers = 2;
  opt.heartbeat_ms = 300;
  Coordinator coord(tc.path(), opt);
  const std::vector<pid_t> pids = coord.worker_pids();
  Network net(coord.corpus_graph());
  net.attach_dist(&coord);

  ASSERT_EQ(::kill(pids[0], SIGSTOP), 0);
  std::vector<Network::Outbox> out(g.n());
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      BitWriter w;
      w.write(1, 1);
      out[u].emplace_back(v, Message::from(w));
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  try {
    net.exchange(out);
    ADD_FAILURE() << "expected WorkerError on heartbeat timeout";
  } catch (const WorkerError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 0"), std::string::npos) << what;
    EXPECT_NE(what.find("heartbeat"), std::string::npos) << what;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 250) << "gave up before the window";
  EXPECT_LT(elapsed.count(), 5000) << "timeout far past the window";
  ASSERT_EQ(::kill(pids[0], SIGCONT), 0);  // let shutdown run cleanly
}

// Typed errors cross the process boundary with their original types:
// a strict CONGEST violation inside a worker surfaces as
// CongestViolation, an invalid outbox as std::invalid_argument — exactly
// what the in-process engines throw.
TEST(Dist, WorkerErrorsKeepTheirTypesAcrossTheWire) {
  const Graph g = gen::ring(16);
  TempCorpus tc("typed");
  write_graph(g, tc.path());
  {
    CoordinatorOptions opt;
    opt.workers = 2;
    Coordinator coord(tc.path(), opt);
    Network net(coord.corpus_graph(), /*budget_bits=*/4, /*strict=*/true);
    net.attach_dist(&coord);
    std::vector<Network::Outbox> out(g.n());
    BitWriter w;
    w.write(0, 9);  // 9 bits > 4-bit budget
    out[0].emplace_back(1, Message::from(w));
    EXPECT_THROW(net.exchange(out), CongestViolation);
  }
  {
    CoordinatorOptions opt;
    opt.workers = 2;
    Coordinator coord(tc.path(), opt);
    Network net(coord.corpus_graph());
    net.attach_dist(&coord);
    std::vector<Network::Outbox> out(g.n());
    BitWriter w;
    w.write(1, 1);
    out[0].emplace_back(5, Message::from(w));  // 0 and 5 not adjacent
    EXPECT_THROW(net.exchange(out), std::invalid_argument);
  }
}

// ------------------------------------------------- strict knob parsing --

TEST(Dist, ParsePositiveU64RejectsGarbageNamingTheToken) {
  for (const char* bad :
       {"banana", "0", "-3", "3x", "", "99999999999999999999"}) {
    try {
      dist::parse_positive_u64("--heartbeat-ms", bad, 86400000ull);
      ADD_FAILURE() << "\"" << bad << "\": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("--heartbeat-ms"), std::string::npos) << bad;
      EXPECT_NE(what.find(std::string("\"") + bad + "\""), std::string::npos)
          << "message must quote the offending token: " << what;
    }
  }
  // Out-of-range is rejected too, naming the bound.
  EXPECT_THROW(dist::parse_positive_u64("--workers", "65", 64),
               std::invalid_argument);
  EXPECT_EQ(dist::parse_positive_u64("--workers", "64", 64), 64u);
  EXPECT_EQ(dist::parse_positive_u64("--attach-timeout-ms", "1500", 86400000ull),
            1500u);
}

TEST(Dist, LdcDistWorkersEnvStrictParsing) {
  for (const char* bad : {"banana", "0", "-2", "4x", "1000"}) {
    ASSERT_EQ(setenv("LDC_DIST_WORKERS", bad, 1), 0);
    try {
      dist::default_worker_count();
      ADD_FAILURE() << "LDC_DIST_WORKERS=" << bad
                    << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("LDC_DIST_WORKERS"),
                std::string::npos)
          << bad;
    }
  }
  ASSERT_EQ(setenv("LDC_DIST_WORKERS", "5", 1), 0);
  EXPECT_EQ(dist::default_worker_count(), 5u);
  ASSERT_EQ(setenv("LDC_DIST_WORKERS", "", 1), 0);
  std::size_t k = 0;
  EXPECT_NO_THROW(k = dist::default_worker_count());  // empty == unset
  EXPECT_GE(k, 1u);
  EXPECT_LE(k, dist::kMaxDistWorkers);
  unsetenv("LDC_DIST_WORKERS");
}

TEST(Dist, CoordinatorRejectsBadOptions) {
  const Graph g = gen::ring(8);
  TempCorpus tc("opts");
  write_graph(g, tc.path());
  {
    CoordinatorOptions opt;
    opt.heartbeat_ms = 0;
    EXPECT_THROW(Coordinator(tc.path(), opt), std::invalid_argument);
  }
  {
    CoordinatorOptions opt;
    opt.attach_timeout_ms = 0;
    EXPECT_THROW(Coordinator(tc.path(), opt), std::invalid_argument);
  }
  {
    CoordinatorOptions opt;
    opt.workers = dist::kMaxDistWorkers + 1;
    EXPECT_THROW(Coordinator(tc.path(), opt), std::invalid_argument);
  }
}

TEST(Dist, EngineDistNeedsAnAttachedBackend) {
  const Graph g = gen::ring(8);
  Network net(g);
  EXPECT_THROW(net.set_engine(Network::Engine::kDist),
               std::invalid_argument);
}

// Worker count clamps to n: a 3-vertex corpus never gets more than 3
// shard processes however many were requested.
TEST(Dist, WorkerCountClampsToVertexCount) {
  const Graph g = gen::clique(3);
  TempCorpus tc("clamp");
  write_graph(g, tc.path());
  CoordinatorOptions opt;
  opt.workers = 8;
  Coordinator coord(tc.path(), opt);
  EXPECT_EQ(coord.shards(), 3u);
}

}  // namespace
}  // namespace ldc
