// Sharded-engine equivalence and shard-boundary correctness.
//
// Engine::kSharded must be bit-for-bit equivalent to kSerial (and
// kParallel): same colors, same model-exact RunMetrics, same trace
// transcript, same fault decisions — for every registered colorer, across
// shard counts {1, 2, 7}, with and without masks and fault plans. On top
// of the cross-engine sweeps this file pins the shard-specific contracts:
// ghost-halo reads are snapshots of the round just exchanged (mutating
// the caller's words afterwards must not leak in), cross-shard duplicate
// destinations are rejected with the same error as the other engines,
// LDC_SHARDS is parsed strictly (garbage throws instead of silently
// reshaping the run), and cross_shard_traffic() counts exactly the
// messages that crossed a partition boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ldc/arb/beg_arbdefective.hpp"
#include "ldc/baselines/kw_reduction.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/graph/partition.hpp"
#include "ldc/linial/defective_linial.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/single_defect.hpp"
#include "ldc/resilient/drivers.hpp"
#include "ldc/runtime/network.hpp"
#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

// An engine selection applied to a fresh Network. "serial" is the
// reference; the sweeps compare every other variant against it.
struct EngineSel {
  std::string name;
  std::function<void(Network&)> apply;
};

std::vector<EngineSel> engine_mix() {
  std::vector<EngineSel> es;
  es.push_back({"serial", [](Network&) {}});
  for (std::size_t t : {2u, 7u}) {
    es.push_back({"parallel@" + std::to_string(t), [t](Network& net) {
                    net.set_engine(Network::Engine::kParallel, t);
                  }});
  }
  for (std::size_t k : {1u, 2u, 7u}) {
    es.push_back({"sharded@" + std::to_string(k), [k](Network& net) {
                    net.set_engine(Network::Engine::kSharded, k);
                  }});
  }
  return es;
}

struct EngineRun {
  Coloring phi;
  RunMetrics metrics;
  std::uint64_t trace_digest = 0;
  std::vector<Trace::Round> rounds;
};

using Colorer = std::function<Coloring(Network&)>;

struct NamedColorer {
  std::string name;
  Colorer run;
};

struct NamedGraph {
  std::string name;
  Graph g;
};

EngineRun run_with_engine(const Graph& g, const EngineSel& sel,
                          const Colorer& algo) {
  Network net(g);
  sel.apply(net);
  Trace trace;
  net.attach_trace(&trace);
  EngineRun out;
  out.phi = algo(net);
  out.metrics = net.metrics();
  out.trace_digest = trace.digest();
  out.rounds = trace.rounds();
  return out;
}

void expect_equivalent(const EngineRun& serial, const EngineRun& other,
                       const std::string& label) {
  EXPECT_EQ(serial.phi, other.phi) << label << ": colors differ";
  EXPECT_TRUE(serial.metrics.same_communication(other.metrics))
      << label << ": metrics differ: serial {" << serial.metrics
      << "} other {" << other.metrics << "}";
  EXPECT_EQ(serial.trace_digest, other.trace_digest)
      << label << ": trace digests differ";
  ASSERT_EQ(serial.rounds.size(), other.rounds.size())
      << label << ": transcript length differs";
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    const auto& a = serial.rounds[i];
    const auto& b = other.rounds[i];
    EXPECT_EQ(a.messages, b.messages) << label << " round " << i;
    EXPECT_EQ(a.bits, b.bits) << label << " round " << i;
    EXPECT_EQ(a.max_message_bits, b.max_message_bits)
        << label << " round " << i;
    EXPECT_EQ(a.mark, b.mark) << label << " round " << i;
    EXPECT_EQ(a.faults.dropped, b.faults.dropped)
        << label << " round " << i;
    EXPECT_EQ(a.faults.corrupted, b.faults.corrupted)
        << label << " round " << i;
    EXPECT_EQ(a.faults.crashes, b.faults.crashes)
        << label << " round " << i;
    EXPECT_EQ(a.faults.sleeps, b.faults.sleeps) << label << " round " << i;
  }
}

std::vector<NamedGraph> graph_mix() {
  std::vector<NamedGraph> graphs;
  {
    Graph g = gen::gnp(60, 0.2, 11);
    gen::scramble_ids(g, 1 << 20, 3);
    graphs.push_back({"gnp60", std::move(g)});
  }
  {
    Graph g = gen::random_regular(72, 8, 7);
    gen::scramble_ids(g, 1 << 16, 5);
    graphs.push_back({"reg72", std::move(g)});
  }
  graphs.push_back({"ring49", gen::ring(49)});
  {
    Graph g = gen::random_tree(64, 13);
    gen::scramble_ids(g, 1 << 18, 9);
    graphs.push_back({"tree64", std::move(g)});
  }
  graphs.push_back({"clique12", gen::clique(12)});
  return graphs;
}

// Every registered colorer, deterministic given (graph, fixed seeds);
// mirrors tests/test_parallel_equivalence.cpp so the sharded engine gets
// the same algorithm coverage the parallel one has.
std::vector<NamedColorer> colorer_mix(const Graph& g) {
  std::vector<NamedColorer> cs;
  cs.push_back({"linial", [](Network& net) {
                  return linial::color(net).phi;
                }});
  cs.push_back({"defective-linial-d2", [](Network& net) {
                  return linial::defective_color(net, 2).phi;
                }});
  cs.push_back({"luby", [&g](Network& net) {
                  const LdcInstance inst = delta_plus_one_instance(g);
                  baselines::LubyOptions opt;
                  opt.seed = 42;
                  return baselines::luby_list_coloring(net, inst, opt).phi;
                }});
  cs.push_back({"linial+kw", [](Network& net) {
                  return baselines::linial_then_kw(net).phi;
                }});
  cs.push_back({"oldc-single-defect", [&g](Network& net) {
                  const Orientation orient = Orientation::by_decreasing_id(g);
                  const std::uint64_t space = 512;
                  const Prf prf(99);
                  oldc::SingleDefectInput in;
                  std::vector<std::vector<Color>> lists(g.n());
                  for (NodeId v = 0; v < g.n(); ++v) {
                    auto picks = sample_distinct(
                        prf, static_cast<std::uint64_t>(v) << 40, space, 48);
                    lists[v].assign(picks.begin(), picks.end());
                  }
                  const auto lin = linial::color(net);
                  in.graph = &net.graph();
                  in.orientation = &orient;
                  in.color_space = space;
                  in.lists = std::move(lists);
                  in.defects.assign(g.n(), 2);
                  in.initial = &lin.phi;
                  in.m = lin.palette;
                  in.params.kprime = 12;
                  in.params.tau_cap = 6;
                  return oldc::solve_single_defect(net, in).phi;
                }});
  cs.push_back({"beg-arbdefective", [&g](Network& net) {
                  arb::ArbdefectiveOptions opt;
                  opt.defect = 2;
                  opt.colors = g.max_degree() / 3 + 1;  // q(d+1) > Delta
                  return arb::arbdefective_color(net, opt).phi;
                }});
  return cs;
}

TEST(Sharded, EveryColorerEveryGraphEveryShardCount) {
  const EngineSel serial{"serial", [](Network&) {}};
  for (const auto& ng : graph_mix()) {
    for (const auto& colorer : colorer_mix(ng.g)) {
      const EngineRun ref = run_with_engine(ng.g, serial, colorer.run);
      for (std::size_t shards : {1u, 2u, 7u}) {
        const EngineSel sel{
            "sharded@" + std::to_string(shards), [shards](Network& net) {
              net.set_engine(Network::Engine::kSharded, shards);
            }};
        const EngineRun got = run_with_engine(ng.g, sel, colorer.run);
        expect_equivalent(ref, got, colorer.name + " on " + ng.name +
                                        " @" + sel.name);
      }
    }
  }
}

// Named fault plans; rates aggressive enough that every fault process
// fires on the small test graphs.
std::vector<std::pair<std::string, FaultPlan>> fault_plan_mix() {
  std::vector<std::pair<std::string, FaultPlan>> plans;
  {
    FaultPlan p;
    p.seed = 0xfa01;
    p.drop_rate = 0.15;
    plans.push_back({"drop15", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa02;
    p.corrupt_rate = 0.20;
    plans.push_back({"corrupt20", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa03;
    p.crash_rate = 0.03;
    p.sleep_rate = 0.10;
    p.max_crashes = 5;
    plans.push_back({"crash-sleep", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa04;
    p.drop_rate = 0.05;
    p.corrupt_rate = 0.05;
    p.crash_rate = 0.01;
    p.sleep_rate = 0.05;
    p.max_crashes = 4;
    plans.push_back({"mixed", p});
  }
  return plans;
}

struct FaultyRun {
  std::vector<std::uint64_t> inbox_flat;  ///< (receiver, sender, payload)
  RunMetrics metrics;
  std::uint64_t trace_digest = 0;
};

// Raw multi-round exchange under a fault plan, flattening every delivered
// payload so drop/corrupt/crash/sleep effects are byte-observable.
FaultyRun run_faulty_exchange(const Graph& g, const EngineSel& sel,
                              const FaultPlan& plan) {
  Network net(g);
  sel.apply(net);
  Trace trace;
  net.attach_trace(&trace);
  net.attach_faults(&plan);
  FaultyRun out;
  for (std::uint64_t r = 0; r < 6; ++r) {
    std::vector<Network::Outbox> outboxes(g.n());
    for (NodeId u = 0; u < g.n(); ++u) {
      for (NodeId v : g.neighbors(u)) {
        BitWriter w;
        w.write(hash_combine(r, (static_cast<std::uint64_t>(u) << 20) | v),
                40);
        outboxes[u].emplace_back(v, Message::from(w));
      }
    }
    const auto in = net.exchange(outboxes);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const auto& [sender, msg] : in[v]) {
        auto rd = msg.reader();
        out.inbox_flat.push_back(hash_combine(
            (static_cast<std::uint64_t>(v) << 32) | sender, rd.read(40)));
      }
    }
  }
  out.metrics = net.metrics();
  out.trace_digest = trace.digest();
  return out;
}

// The PR 2 satellite contract, extended to three engines: every
// drop/corrupt/crash/sleep PRF decision must pick identical bits under
// kSerial, kParallel, and kSharded — delivered payloads, fault counters,
// and trace digests all byte-equal.
TEST(Sharded, FaultPlansMatchAcrossAllThreeEngines) {
  const auto engines = engine_mix();
  for (const auto& ng : graph_mix()) {
    for (const auto& [plan_name, plan] : fault_plan_mix()) {
      const FaultyRun ref = run_faulty_exchange(ng.g, engines[0], plan);
      EXPECT_GT(ref.metrics.messages_dropped +
                    ref.metrics.messages_corrupted + ref.metrics.node_crashes +
                    ref.metrics.node_sleeps,
                0u)
          << plan_name << " on " << ng.name;
      for (std::size_t i = 1; i < engines.size(); ++i) {
        const FaultyRun got = run_faulty_exchange(ng.g, engines[i], plan);
        const std::string label =
            plan_name + " on " + ng.name + " @" + engines[i].name;
        EXPECT_EQ(ref.inbox_flat, got.inbox_flat)
            << label << ": delivered payloads differ";
        EXPECT_TRUE(ref.metrics.same_communication(got.metrics))
            << label << ": metrics differ: ref {" << ref.metrics << "} got {"
            << got.metrics << "}";
        EXPECT_EQ(ref.trace_digest, got.trace_digest)
            << label << ": trace digests differ";
      }
    }
  }
}

// Broadcast fast path and the fused word path under kSharded must match
// the serial engine's materialized-outbox reference — with and without an
// active mask, with and without faults, across shard counts.
TEST(Sharded, BroadcastAndWordPathsMatchSerialReference) {
  const Graph g = gen::gnp(48, 0.25, 34);
  const std::uint64_t bound = 499;
  std::vector<std::uint64_t> words(g.n());
  std::vector<Message> msgs(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    words[v] = hash_combine(0xb1, v) % (bound + 1);
    BitWriter w;
    w.write_bounded(words[v], bound);
    msgs[v] = Message::from(w);
  }
  std::vector<bool> mask(g.n());
  for (NodeId v = 0; v < g.n(); ++v) mask[v] = v % 3 != 0;
  FaultPlan plan;
  plan.seed = 0xfa08;
  plan.drop_rate = 0.08;
  plan.corrupt_rate = 0.12;
  plan.sleep_rate = 0.05;

  struct Flat {
    std::vector<std::uint64_t> slots;
    RunMetrics metrics;
    std::uint64_t trace_digest = 0;
  };
  enum class Path { kOutboxes, kBroadcast, kFusedWord };
  auto run = [&](std::size_t shards, const std::vector<bool>* active,
                 const FaultPlan* faults, Path path) {
    Network net(g);
    if (shards > 0) net.set_engine(Network::Engine::kSharded, shards);
    Trace trace;
    net.attach_trace(&trace);
    if (faults != nullptr) net.attach_faults(faults);
    Flat out;
    for (int round = 0; round < 3; ++round) {
      if (path == Path::kFusedWord) {
        const WordMail in = net.exchange_broadcast_word(words, bound, active);
        for (NodeId v = 0; v < g.n(); ++v) {
          for (const auto [sender, word] : in[v]) {
            out.slots.push_back(hash_combine(
                (static_cast<std::uint64_t>(v) << 32) | sender, word));
          }
        }
        continue;
      }
      RoundMail in;
      if (path == Path::kOutboxes) {
        std::vector<Network::Outbox> outboxes(g.n());
        for (NodeId u = 0; u < g.n(); ++u) {
          if (active != nullptr && !(*active)[u]) continue;
          for (NodeId v : g.neighbors(u)) outboxes[u].emplace_back(v, msgs[u]);
        }
        in = net.exchange(outboxes);
      } else {
        in = net.exchange_broadcast(msgs, active);
      }
      for (NodeId v = 0; v < g.n(); ++v) {
        for (const auto& [sender, msg] : in[v]) {
          auto r = msg.reader();
          out.slots.push_back(
              hash_combine((static_cast<std::uint64_t>(v) << 32) | sender,
                           r.read_bounded(bound)));
        }
      }
    }
    out.metrics = net.metrics();
    out.trace_digest = trace.digest();
    return out;
  };

  const std::vector<bool>* masks[] = {nullptr, &mask};
  const FaultPlan* plans[] = {nullptr, &plan};
  for (const std::vector<bool>* active : masks) {
    for (const FaultPlan* faults : plans) {
      const Flat ref = run(0, active, faults, Path::kOutboxes);
      for (const Path path :
           {Path::kOutboxes, Path::kBroadcast, Path::kFusedWord}) {
        for (std::size_t shards : {1u, 2u, 7u}) {
          const Flat got = run(shards, active, faults, path);
          const std::string label =
              std::string(path == Path::kFusedWord  ? "fused"
                          : path == Path::kOutboxes ? "outboxes"
                                                    : "broadcast") +
              "/" + (active != nullptr ? "masked" : "all") +
              (faults != nullptr ? "+faults" : "") + " @" +
              std::to_string(shards) + "s";
          EXPECT_EQ(ref.slots, got.slots) << label << ": deliveries differ";
          EXPECT_TRUE(ref.metrics.same_communication(got.metrics))
              << label << ": metrics differ: ref {" << ref.metrics
              << "} got {" << got.metrics << "}";
          EXPECT_EQ(ref.trace_digest, got.trace_digest)
              << label << ": trace digests differ";
        }
      }
    }
  }
}

// End-to-end resilient run (colorer + validation + repair under faults):
// the recovery cost report must be shard-count independent too.
TEST(Sharded, ResilientRecoveryMatchesSerial) {
  Graph g = gen::gnp(48, 0.15, 33);
  gen::scramble_ids(g, 1 << 18, 3);
  repair::ResilientOptions opt;
  opt.plan.seed = 0xabcd;
  opt.plan.drop_rate = 0.10;
  opt.plan.corrupt_rate = 0.10;
  opt.plan.sleep_rate = 0.05;
  auto run = [&](std::size_t shards) {
    Network net(g);
    if (shards > 0) net.set_engine(Network::Engine::kSharded, shards);
    Trace trace;
    net.attach_trace(&trace);
    const auto res = resilient::resilient_linial(net, opt);
    return std::make_tuple(res.run.phi, res.run.valid,
                           res.run.recovery_rounds, res.run.moved_nodes,
                           res.run.metrics, trace.digest());
  };
  const auto ref = run(0);
  EXPECT_TRUE(std::get<1>(ref));
  for (std::size_t shards : {2u, 7u}) {
    const auto got = run(shards);
    EXPECT_EQ(std::get<0>(ref), std::get<0>(got)) << shards;
    EXPECT_EQ(std::get<1>(ref), std::get<1>(got)) << shards;
    EXPECT_EQ(std::get<2>(ref), std::get<2>(got)) << shards;
    EXPECT_EQ(std::get<3>(ref), std::get<3>(got)) << shards;
    EXPECT_TRUE(std::get<4>(ref).same_communication(std::get<4>(got)))
        << shards;
    EXPECT_EQ(std::get<5>(ref), std::get<5>(got)) << shards;
  }
}

// A dense WordMail lane under kSharded reads the shard's snapshot of the
// round just exchanged — owned words AND the ghost halo. Mutating the
// caller's word vector after the exchange must not leak into the view
// (a ghost read reflects the previous round only), and the next exchange
// invalidates the view entirely.
TEST(Sharded, GhostHaloReadsAreRoundSnapshots) {
  const Graph g = gen::ring(16);  // degree-balanced split: [0,8) | [8,16)
  Network net(g);
  net.set_engine(Network::Engine::kSharded, 2);
  std::vector<std::uint64_t> words(g.n());
  for (NodeId v = 0; v < g.n(); ++v) words[v] = 100 + v;
  const WordMail in = net.exchange_broadcast_word(words, 255);

  // Boundary inboxes before mutation: each sees one owned neighbor and
  // one cross-shard ghost neighbor.
  auto expect_lane = [&](NodeId v, NodeId s0, std::uint64_t w0, NodeId s1,
                         std::uint64_t w1) {
    const auto lane = in[v];
    ASSERT_EQ(lane.size(), 2u) << "receiver " << v;
    EXPECT_EQ(lane[0].sender, s0) << "receiver " << v;
    EXPECT_EQ(lane[0].value, w0) << "receiver " << v;
    EXPECT_EQ(lane[1].sender, s1) << "receiver " << v;
    EXPECT_EQ(lane[1].value, w1) << "receiver " << v;
  };
  expect_lane(7, 6, 106, 8, 108);    // 8 is a ghost of shard 0
  expect_lane(8, 7, 107, 9, 109);    // 7 is a ghost of shard 1
  expect_lane(0, 1, 101, 15, 115);   // 15 is a ghost of shard 0

  // Mutate every word the boundary lanes touch: the snapshot must hold.
  for (NodeId v : {6u, 7u, 8u, 9u, 1u, 15u}) words[v] = 0;
  expect_lane(7, 6, 106, 8, 108);
  expect_lane(8, 7, 107, 9, 109);
  expect_lane(0, 1, 101, 15, 115);

  // The next round sees the new words; the old view dies loudly.
  const WordMail next = net.exchange_broadcast_word(words, 255);
  EXPECT_THROW((void)in[7], std::logic_error);
  const auto lane = next[7];
  ASSERT_EQ(lane.size(), 2u);
  EXPECT_EQ(lane[0].value, 0u);
  EXPECT_EQ(lane[1].value, 0u);
}

TEST(Sharded, DuplicateCrossShardDestinationThrows) {
  const Graph g = gen::ring(8);  // split [0,4) | [4,8): edge 3-4 crosses
  for (std::size_t shards : {2u, 7u}) {
    Network net(g);
    net.set_engine(Network::Engine::kSharded, shards);
    std::vector<Network::Outbox> out(8);
    BitWriter w;
    w.write(1, 1);
    out[3].emplace_back(4, Message::from(w));
    out[3].emplace_back(4, Message::from(w));  // duplicate, other shard
    try {
      net.exchange(out);
      FAIL() << shards << " shards: expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate destination"),
                std::string::npos)
          << shards << " shards";
    }
  }
}

TEST(Sharded, NonNeighborThrows) {
  const Graph g = gen::path(8);
  Network net(g);
  net.set_engine(Network::Engine::kSharded, 2);
  std::vector<Network::Outbox> out(8);
  BitWriter w;
  w.write(1, 1);
  out[0].emplace_back(5, Message::from(w));  // 0 and 5 not adjacent
  EXPECT_THROW(net.exchange(out), std::invalid_argument);
}

TEST(Sharded, CongestAccountingMatchesSerial) {
  const Graph g = gen::random_regular(50, 6, 17);
  auto run = [&](std::size_t shards) {
    Network net(g, /*budget_bits=*/10);
    if (shards > 0) net.set_engine(Network::Engine::kSharded, shards);
    std::vector<Message> msgs(g.n());
    for (NodeId v = 0; v < g.n(); ++v) {
      BitWriter w;
      w.write(v, v % 2 == 0 ? 8 : 16);  // odd nodes violate the budget
      msgs[v] = Message::from(w);
    }
    net.exchange_broadcast(msgs);
    return net.metrics();
  };
  const RunMetrics m0 = run(0);
  EXPECT_GT(m0.congest_violations, 0u);
  for (std::size_t shards : {2u, 4u, 7u}) {
    EXPECT_TRUE(m0.same_communication(run(shards))) << shards << " shards";
  }
}

TEST(Sharded, StrictViolationThrows) {
  const Graph g = gen::path(4);
  for (std::size_t shards : {2u, 4u}) {
    Network net(g, /*budget_bits=*/4, /*strict=*/true);
    net.set_engine(Network::Engine::kSharded, shards);
    BitWriter w;
    w.write(0, 9);
    EXPECT_THROW(
        net.exchange_broadcast(std::vector<Message>(4, Message::from(w))),
        CongestViolation)
        << shards << " shards";
  }
}

TEST(Sharded, RunNodeProgramsComputesEveryNodeOnce) {
  const Graph g = gen::ring(101);
  for (std::size_t shards : {1u, 2u, 7u}) {
    Network net(g);
    net.set_engine(Network::Engine::kSharded, shards);
    std::vector<std::uint32_t> hits(g.n(), 0);
    net.run_node_programs([&](NodeId v) { ++hits[v]; });
    for (NodeId v = 0; v < g.n(); ++v) {
      ASSERT_EQ(hits[v], 1u) << "node " << v << " @" << shards;
    }
  }
}

// Cross-shard traffic counters are engine-private observability: they
// must count exactly the boundary-crossing deliveries, stay out of
// RunMetrics, and read as zero under the other engines.
TEST(Sharded, CrossShardTrafficCountsTheCut) {
  const Graph g = gen::ring(16);  // split [0,8) | [8,16): cut edges 7-8, 15-0
  {
    // Explicit exchange, full broadcast of 40-bit messages: 4 directed
    // messages cross the cut per round.
    Network net(g);
    net.set_engine(Network::Engine::kSharded, 2);
    std::vector<Network::Outbox> out(g.n());
    for (NodeId u = 0; u < g.n(); ++u) {
      for (NodeId v : g.neighbors(u)) {
        BitWriter w;
        w.write(u, 40);
        out[u].emplace_back(v, Message::from(w));
      }
    }
    net.exchange(out);
    EXPECT_EQ(net.cross_shard_traffic().messages, 4u);
    EXPECT_EQ(net.cross_shard_traffic().bits, 4u * 40u);
    net.exchange(out);  // cumulative
    EXPECT_EQ(net.cross_shard_traffic().messages, 8u);
  }
  {
    // Fused all-live word round: traffic is the halo refresh — ghost
    // adjacency entries times the word width (bound 7 -> 3 bits).
    Network net(g);
    net.set_engine(Network::Engine::kSharded, 2);
    const std::vector<std::uint64_t> words(g.n(), 5);
    net.exchange_broadcast_word(words, 7);
    EXPECT_EQ(net.cross_shard_traffic().messages, 4u);
    EXPECT_EQ(net.cross_shard_traffic().bits, 4u * 3u);
  }
  {
    // Broadcast fast path, all live: same four boundary deliveries.
    Network net(g);
    net.set_engine(Network::Engine::kSharded, 2);
    std::vector<Message> msgs(g.n());
    for (NodeId v = 0; v < g.n(); ++v) {
      BitWriter w;
      w.write(v, 10);
      msgs[v] = Message::from(w);
    }
    net.exchange_broadcast(msgs);
    EXPECT_EQ(net.cross_shard_traffic().messages, 4u);
    EXPECT_EQ(net.cross_shard_traffic().bits, 4u * 10u);
    // RunMetrics must not know about any of this.
    EXPECT_EQ(net.metrics().messages, 32u);
  }
  {
    Network serial(g);
    EXPECT_EQ(serial.cross_shard_traffic().messages, 0u);
    EXPECT_EQ(serial.cross_shard_traffic().bits, 0u);
  }
}

TEST(Sharded, EngineSelectionAndClamping) {
  const Graph g = gen::ring(8);
  Network net(g);
  net.set_engine(Network::Engine::kSharded, 3);
  EXPECT_EQ(net.engine(), Network::Engine::kSharded);
  EXPECT_EQ(net.threads(), 3u);
  net.set_engine(Network::Engine::kSharded, 100);  // clamped to n
  EXPECT_EQ(net.threads(), 8u);
  net.set_engine(Network::Engine::kSharded, 1);  // serial code path
  EXPECT_EQ(net.threads(), 1u);
  net.set_engine(Network::Engine::kSerial);
  EXPECT_EQ(net.threads(), 1u);
}

// LDC_SHARDS is parsed strictly, unlike LDC_THREADS' silent fallback: a
// typo must fail loudly instead of silently reshaping the execution.
TEST(Sharded, LdcShardsEnvStrictParsing) {
  const Graph g = gen::ring(12);
  auto resolve = [&]() {
    Network net(g);
    net.set_engine(Network::Engine::kSharded, 0);
    return net.threads();
  };
  for (const char* bad :
       {"banana", "0", "-3", "3x", "1025", "99999999999999999999"}) {
    ASSERT_EQ(setenv("LDC_SHARDS", bad, 1), 0);
    try {
      resolve();
      ADD_FAILURE() << "LDC_SHARDS=" << bad
                    << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("LDC_SHARDS"), std::string::npos)
          << bad;
    }
  }
  ASSERT_EQ(setenv("LDC_SHARDS", "3", 1), 0);
  EXPECT_EQ(resolve(), 3u);
  ASSERT_EQ(setenv("LDC_SHARDS", "", 1), 0);
  EXPECT_NO_THROW(resolve());  // empty == unset: hardware fallback
  unsetenv("LDC_SHARDS");
}

// ------------------------------------------------- partition topology --

TEST(Sharded, PartitionContiguousCoversAndLocates) {
  const Partition p = Partition::contiguous(10, 3);
  ASSERT_EQ(p.shards(), 3u);
  EXPECT_EQ(p.n(), 10u);
  const std::vector<NodeId> want = {0, 4, 7, 10};
  EXPECT_EQ(p.starts(), want);
  for (NodeId v = 0; v < 10; ++v) {
    const std::size_t k = p.shard_of(v);
    EXPECT_GE(v, p.begin(k)) << v;
    EXPECT_LT(v, p.end(k)) << v;
  }
  // More shards than vertices: clamped to one vertex per shard.
  const Partition q = Partition::contiguous(3, 7);
  EXPECT_EQ(q.shards(), 3u);
  for (std::size_t k = 0; k < q.shards(); ++k) {
    EXPECT_EQ(q.end(k) - q.begin(k), 1u) << k;
  }
}

TEST(Sharded, PartitionDegreeBalancedInvariants) {
  const Graph g = gen::gnp(64, 0.1, 3);
  const std::size_t k = 4;
  const Partition p = Partition::degree_balanced(g, k);
  ASSERT_EQ(p.shards(), k);
  EXPECT_EQ(p.starts().front(), 0u);
  EXPECT_EQ(p.starts().back(), g.n());
  std::vector<std::uint64_t> prefix(g.n() + 1, 0);
  for (NodeId v = 0; v < g.n(); ++v) prefix[v + 1] = prefix[v] + g.degree(v);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_LT(p.begin(i), p.end(i)) << "shard " << i << " empty";
    if (i > 0) {
      // Boundary sits at the first prefix reaching the ideal target.
      const std::uint64_t target = prefix.back() * i / k;
      EXPECT_GE(prefix[p.begin(i)], target) << i;
      EXPECT_LT(prefix[p.begin(i)] - target, g.max_degree()) << i;
    }
  }
}

TEST(Sharded, ShardTopologyLocalViewMatchesGlobalRows) {
  const Graph g = gen::gnp(30, 0.2, 9);
  ShardTopology t;
  t.build(g, 10, 20);
  EXPECT_EQ(t.owned(), 10u);
  for (std::size_t i = 1; i < t.ghosts.size(); ++i) {
    EXPECT_LT(t.ghosts[i - 1], t.ghosts[i]) << "ghosts not sorted/unique";
  }
  for (const NodeId u : t.ghosts) {
    EXPECT_TRUE(u < 10 || u >= 20) << "owned vertex in the halo: " << u;
  }
  std::uint64_t ghost_edges = 0;
  for (NodeId v = 10; v < 20; ++v) {
    const auto nb = g.neighbors(v);
    const std::uint64_t row = t.xadj[v - 10];
    ASSERT_EQ(t.xadj[v - 10 + 1] - row, nb.size()) << v;
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const std::uint32_t lid = t.adj[row + i];
      const NodeId u = nb.data()[i];
      EXPECT_EQ(t.global_id(lid), u) << v;
      EXPECT_EQ(t.is_ghost(lid), u < 10 || u >= 20) << v;
      if (t.is_ghost(lid)) ++ghost_edges;
    }
  }
  EXPECT_EQ(t.ghost_edges, ghost_edges);
}

}  // namespace
}  // namespace ldc
