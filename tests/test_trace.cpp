#include "ldc/runtime/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc {
namespace {

Message make_msg(std::uint64_t v, int bits) {
  BitWriter w;
  w.write(v, bits);
  return Message::from(w);
}

TEST(Trace, RecordsPerRoundAggregates) {
  const Graph g = gen::ring(4);
  Network net(g);
  Trace trace;
  net.attach_trace(&trace);
  trace.mark("phase-a");
  net.exchange_broadcast(std::vector<Message>(4, make_msg(1, 8)));
  trace.mark("phase-b");
  net.exchange_broadcast(std::vector<Message>(4, make_msg(1, 4)));
  ASSERT_EQ(trace.rounds().size(), 2u);
  EXPECT_EQ(trace.rounds()[0].messages, 8u);
  EXPECT_EQ(trace.rounds()[0].bits, 64u);
  EXPECT_EQ(trace.rounds()[0].max_message_bits, 8u);
  EXPECT_EQ(trace.rounds()[0].mark, "phase-a");
  EXPECT_EQ(trace.rounds()[1].bits, 32u);
  EXPECT_EQ(trace.rounds()[1].mark, "phase-b");
}

TEST(Trace, DigestDistinguishesTranscripts) {
  const Graph g = gen::ring(4);
  Trace a, b, c;
  {
    Network net(g);
    net.attach_trace(&a);
    net.exchange_broadcast(std::vector<Message>(4, make_msg(1, 8)));
  }
  {
    Network net(g);
    net.attach_trace(&b);
    net.exchange_broadcast(std::vector<Message>(4, make_msg(1, 8)));
  }
  {
    Network net(g);
    net.attach_trace(&c);
    net.exchange_broadcast(std::vector<Message>(4, make_msg(1, 9)));
  }
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Trace, PipelineTranscriptIsDeterministic) {
  Graph g = gen::gnp(48, 0.15, 4);
  gen::scramble_ids(g, 1 << 20, 5);
  const LdcInstance inst = delta_plus_one_instance(g);
  auto run = [&]() {
    Network net(g);
    Trace t;
    net.attach_trace(&t);
    d1lc::color(net, inst);
    return t.digest();
  };
  EXPECT_EQ(run(), run());
}

TEST(Trace, PrintGroupsByMark) {
  Trace t;
  t.mark("setup");
  t.record_round(2, 16, 8);
  t.record_round(2, 16, 8);
  t.mark("solve");
  t.record_round(1, 4, 4);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("--- setup ---"), std::string::npos);
  EXPECT_NE(out.find("--- solve ---"), std::string::npos);
  EXPECT_NE(out.find("round 2: 1 msgs, 4 bits"), std::string::npos);
}

TEST(Trace, SolverPhaseMarksAppear) {
  // Solvers label their phases on the attached trace; a pipeline run must
  // show the linial and Theorem 1.3 sections in order.
  Graph g = gen::gnp(40, 0.15, 6);
  gen::scramble_ids(g, 1 << 20, 7);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  Trace t;
  net.attach_trace(&t);
  d1lc::color(net, inst);
  bool saw_linial = false, saw_t13 = false;
  std::size_t first_linial = 0, first_t13 = 0;
  for (std::size_t i = 0; i < t.rounds().size(); ++i) {
    const auto& mark = t.rounds()[i].mark;
    if (!saw_linial && mark == "pipeline/linial") {
      saw_linial = true;
      first_linial = i;
    }
    if (!saw_t13 && mark == "pipeline/theorem-1.3") {
      saw_t13 = true;
      first_t13 = i;
    }
  }
  EXPECT_TRUE(saw_linial);
  EXPECT_TRUE(saw_t13);
  EXPECT_LT(first_linial, first_t13);
}

TEST(Trace, AdvanceRoundsRecordsSilentRounds) {
  // Invariant: an attached trace's transcript length always equals
  // metrics().rounds — silent (payload-free) rounds appear as empty
  // records under the current mark, so trace-derived round counts can
  // never drift from the metrics.
  const Graph g = gen::ring(4);
  Network net(g);
  Trace t;
  net.attach_trace(&t);
  net.exchange_broadcast(std::vector<Message>(4, make_msg(1, 8)));
  t.mark("silent-phase");
  net.advance_rounds(3);
  net.exchange_broadcast(std::vector<Message>(4, make_msg(1, 8)));
  EXPECT_EQ(net.metrics().rounds, 5u);
  ASSERT_EQ(t.rounds().size(), 5u);
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(t.rounds()[i].messages, 0u);
    EXPECT_EQ(t.rounds()[i].bits, 0u);
    EXPECT_EQ(t.rounds()[i].mark, "silent-phase");
  }
  EXPECT_EQ(t.rounds()[4].messages, 8u);
}

TEST(Trace, AbsorbRecordsAggregateAndSilentRounds) {
  // Network::absorb() used to bump metrics().rounds without telling the
  // trace, breaking the transcript-length invariant. The default path now
  // records one aggregate row plus silent rounds, conserving both the
  // round count and the traffic sums.
  const Graph g = gen::ring(4);
  Network net(g);
  Trace t;
  net.attach_trace(&t);
  net.exchange_broadcast(std::vector<Message>(4, make_msg(1, 8)));
  RunMetrics sub;
  sub.rounds = 3;
  sub.messages = 10;
  sub.total_bits = 120;
  sub.max_message_bits = 16;
  net.absorb(sub);
  EXPECT_EQ(net.metrics().rounds, 4u);
  ASSERT_EQ(t.rounds().size(), 4u);
  std::uint64_t msgs = 0, bits = 0;
  for (const auto& r : t.rounds()) {
    msgs += r.messages;
    bits += r.bits;
  }
  EXPECT_EQ(msgs, net.metrics().messages);
  EXPECT_EQ(bits, net.metrics().total_bits);
  EXPECT_EQ(t.rounds()[1].messages, 10u);  // aggregate row first
  EXPECT_EQ(t.rounds()[2].messages, 0u);   // then silent rounds
  EXPECT_EQ(t.rounds()[3].messages, 0u);
}

TEST(Trace, AbsorbWithSubTraceCarriesPerRoundRows) {
  const Graph g = gen::ring(4);
  Network net(g);
  Trace t;
  net.attach_trace(&t);
  Trace sub_trace;
  sub_trace.mark("sub-phase");
  sub_trace.record_round(4, 32, 8);
  sub_trace.record_round(2, 8, 4);
  RunMetrics sub;
  sub.rounds = 2;
  sub.messages = 6;
  sub.total_bits = 40;
  sub.max_message_bits = 8;
  net.absorb(sub, &sub_trace);
  EXPECT_EQ(net.metrics().rounds, 2u);
  ASSERT_EQ(t.rounds().size(), 2u);
  EXPECT_EQ(t.rounds()[0].messages, 4u);
  EXPECT_EQ(t.rounds()[1].messages, 2u);
  EXPECT_EQ(t.rounds()[0].mark, "sub-phase");
  EXPECT_EQ(t.rounds()[1].index, 1u);  // re-indexed into this transcript
}

TEST(Trace, AbsorbOfZeroRoundSubRunRecordsNothing) {
  const Graph g = gen::ring(4);
  Network net(g);
  Trace t;
  net.attach_trace(&t);
  RunMetrics sub;  // rounds == 0 (e.g. an empty parallel branch)
  net.absorb(sub);
  EXPECT_EQ(net.metrics().rounds, 0u);
  EXPECT_TRUE(t.rounds().empty());
}

TEST(Trace, PipelineTranscriptLengthMatchesMetricsRounds) {
  // End-to-end regression: the d1lc pipeline absorbs sub-runs (per-class
  // OLDC solves, color space reduction) and advances structural rounds; the
  // transcript must account for every one of metrics().rounds.
  Graph g = gen::gnp(48, 0.15, 4);
  gen::scramble_ids(g, 1 << 20, 5);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  Trace t;
  net.attach_trace(&t);
  d1lc::color(net, inst);
  EXPECT_EQ(t.rounds().size(), net.metrics().rounds);
  std::uint64_t msgs = 0, bits = 0;
  for (const auto& r : t.rounds()) {
    msgs += r.messages;
    bits += r.bits;
  }
  EXPECT_EQ(msgs, net.metrics().messages);
  EXPECT_EQ(bits, net.metrics().total_bits);
}

TEST(Trace, FaultFieldsAreDigestedOnlyWhenPresent) {
  // Fault-free transcripts keep the legacy digest fold (faults contribute
  // nothing), while any nonzero fault counter must change the digest.
  Trace a, b, c;
  a.record_round(2, 16, 8);
  RoundFaults none;
  b.record_round(2, 16, 8, 0, none);
  RoundFaults dropped;
  dropped.dropped = 1;
  c.record_round(2, 16, 8, 0, dropped);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Trace, SilentRoundsChangeTheDigest) {
  // Two executions that differ only in silent structural rounds must not
  // collide: transcripts certify full executions, including round counts.
  Trace a, b;
  a.record_round(2, 16, 8);
  b.record_round(2, 16, 8);
  b.record_silent(2);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Trace, WallTimeExcludedFromDigest) {
  Trace a, b;
  a.record_round(2, 16, 8, /*wall_ns=*/123);
  b.record_round(2, 16, 8, /*wall_ns=*/456789);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.rounds()[0].wall_ns, 123u);
}

TEST(Trace, EmptyTraceDigestStable) {
  Trace a, b;
  EXPECT_EQ(a.digest(), b.digest());
}

}  // namespace
}  // namespace ldc
