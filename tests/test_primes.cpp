#include "ldc/support/primes.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ldc {
namespace {

TEST(Primes, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
}

TEST(Primes, AgreesWithSieve) {
  const int limit = 10000;
  std::vector<bool> composite(limit, false);
  for (int i = 2; i < limit; ++i) {
    if (!composite[i]) {
      for (int j = 2 * i; j < limit; j += i) composite[j] = true;
    }
  }
  for (int i = 0; i < limit; ++i) {
    EXPECT_EQ(is_prime(i), i >= 2 && !composite[i]) << "at " << i;
  }
}

TEST(Primes, LargeKnownValues) {
  EXPECT_TRUE(is_prime(2147483647ULL));            // 2^31 - 1
  EXPECT_TRUE(is_prime(1000000007ULL));
  EXPECT_TRUE(is_prime(18446744073709551557ULL));  // largest 64-bit prime
  EXPECT_FALSE(is_prime(2147483647ULL * 3));
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(is_prime(561));
}

TEST(Primes, NextPrime) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(90), 97u);
  EXPECT_EQ(next_prime(1000000000), 1000000007u);
}

TEST(Primes, MulmodNoOverflow) {
  const std::uint64_t m = 18446744073709551557ULL;
  EXPECT_EQ(mulmod(m - 1, m - 1, m), 1u);  // (-1)^2 = 1 mod m
}

TEST(Primes, Powmod) {
  EXPECT_EQ(powmod(2, 10, 1000000007), 1024u);
  EXPECT_EQ(powmod(5, 0, 7), 1u);
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(powmod(123456, 1000000006, 1000000007), 1u);
}

TEST(Primes, PolyEvalHorner) {
  // p(x) = 3 + 2x + x^2 over GF(7); p(2) = 3 + 4 + 4 = 11 = 4 mod 7.
  const std::vector<std::uint64_t> coeffs = {3, 2, 1};
  EXPECT_EQ(poly_eval(coeffs, 2, 7), 4u);
  EXPECT_EQ(poly_eval(coeffs, 0, 7), 3u);
}

TEST(Primes, PolyEvalDistinctPolysAgreeOnAtMostDegPoints) {
  // Degree-2 polynomials over GF(11) agree on at most 2 points.
  const std::vector<std::uint64_t> p = {1, 2, 3};
  const std::vector<std::uint64_t> q = {4, 5, 3};
  int agreements = 0;
  for (std::uint64_t x = 0; x < 11; ++x) {
    if (poly_eval(p, x, 11) == poly_eval(q, x, 11)) ++agreements;
  }
  EXPECT_LE(agreements, 2);
}

TEST(Primes, ToBaseQ) {
  std::vector<std::uint64_t> digits(3);
  to_base_q(5 + 2 * 7 + 6 * 49, 7, digits);
  EXPECT_EQ(digits[0], 5u);
  EXPECT_EQ(digits[1], 2u);
  EXPECT_EQ(digits[2], 6u);
}

}  // namespace
}  // namespace ldc
