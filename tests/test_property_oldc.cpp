// Property sweeps for the OLDC solver stack: across graph families,
// orientations, defect scales, conflict windows, and candidate-machinery
// parameters, every output must satisfy Definition 1.1 (validated
// independently), transcripts must be deterministic, and the round count
// must respect the O(log beta) structure.
#include <gtest/gtest.h>

#include <tuple>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/multi_defect.hpp"
#include "ldc/oldc/two_phase.hpp"

namespace ldc {
namespace {

struct Config {
  std::uint32_t degree;
  std::uint32_t max_defect;
  bool random_orientation;
  std::uint32_t window;  // generalized g (multi-defect path only)
};

class OldcSweep
    : public ::testing::TestWithParam<std::tuple<Config, std::uint64_t>> {
 protected:
  void build(std::uint64_t seed, const Config& c) {
    g_ = gen::random_regular(48, c.degree, seed);
    gen::scramble_ids(g_, 1ULL << 20, seed + 5);
    orient_ = c.random_orientation ? Orientation::random(g_, seed + 9)
                                   : Orientation::by_decreasing_id(g_);
    RandomLdcParams p;
    p.color_space = 64ULL * c.degree * c.degree + 128;
    p.one_plus_nu = 2.0;
    p.kappa = 40.0;
    p.max_defect = c.max_defect;
    p.seed = seed + 13;
    inst_ = random_weighted_oriented_instance(g_, orient_, p);
  }

  Graph g_;
  Orientation orient_;
  LdcInstance inst_;
};

TEST_P(OldcSweep, MultiDefectValid) {
  const auto [c, seed] = GetParam();
  build(seed, c);
  Network net(g_);
  const auto lin = linial::color(net);
  oldc::MultiDefectInput in;
  in.inst = &inst_;
  in.orientation = &orient_;
  in.initial = &lin.phi;
  in.m = lin.palette;
  in.g = c.window;
  const auto res = oldc::solve_multi_defect(net, in);
  EXPECT_TRUE(validate_oldc(inst_, orient_, res.phi, c.window).ok)
      << "degree=" << c.degree << " seed=" << seed;
}

TEST_P(OldcSweep, TwoPhaseValidAndBounded) {
  const auto [c, seed] = GetParam();
  if (c.window != 0) GTEST_SKIP() << "two-phase is the g = 0 algorithm";
  build(seed, c);
  Network net(g_);
  const auto lin = linial::color(net);
  oldc::TwoPhaseInput in;
  in.inst = &inst_;
  in.orientation = &orient_;
  in.initial = &lin.phi;
  in.m = lin.palette;
  const auto res = oldc::solve_two_phase(net, in);
  EXPECT_TRUE(validate_oldc(inst_, orient_, res.phi).ok);
  EXPECT_LE(res.stats.rounds, res.stats.aux_rounds + 1 + 3 * res.stats.h +
                                  res.stats.repair_rounds);
}

TEST_P(OldcSweep, DeterministicTranscripts) {
  const auto [c, seed] = GetParam();
  build(seed, c);
  auto run = [&]() {
    Network net(g_);
    const auto lin = linial::color(net);
    oldc::TwoPhaseInput in;
    in.inst = &inst_;
    in.orientation = &orient_;
    in.initial = &lin.phi;
    in.m = lin.palette;
    const auto res = oldc::solve_two_phase(net, in);
    return std::make_tuple(res.phi, net.metrics().total_bits,
                           net.metrics().messages);
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OldcSweep,
    ::testing::Combine(
        ::testing::Values(Config{6, 2, false, 0}, Config{6, 2, true, 0},
                          Config{10, 4, false, 0}, Config{10, 4, false, 2},
                          Config{14, 6, true, 0}),
        ::testing::Values(1ULL, 2ULL)),
    [](const auto& info) {
      const auto& c = std::get<0>(info.param);
      return "d" + std::to_string(c.degree) + "_md" +
             std::to_string(c.max_defect) + (c.random_orientation ? "_r" : "_i") +
             "_g" + std::to_string(c.window) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// The CONGEST budget: running the multi-defect solver over a small color
// space must respect an O(log n + |C|)-bit budget in *strict* mode.
TEST(OldcCongest, StrictBudgetRespectedOnSmallSpaces) {
  Graph g = gen::random_regular(40, 6, 3);
  gen::scramble_ids(g, 1ULL << 16, 11);
  const Orientation orient = Orientation::by_decreasing_id(g);
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = 16;
  inst.lists.resize(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    for (Color c = 0; c < 16; ++c) {
      inst.lists[v].colors.push_back(c);
      inst.lists[v].defects.push_back(2);
    }
  }
  // Budget: list bitmap (17) + initial color (~14) + gamma/defect (~10).
  Network net(g, /*budget_bits=*/64, /*strict=*/true);
  const auto lin = linial::color(net);
  oldc::MultiDefectInput in;
  in.inst = &inst;
  in.orientation = &orient;
  in.initial = &lin.phi;
  in.m = lin.palette;
  EXPECT_NO_THROW({
    const auto res = oldc::solve_multi_defect(net, in);
    EXPECT_TRUE(validate_oldc(inst, orient, res.phi).ok);
  });
  EXPECT_EQ(net.metrics().congest_violations, 0u);
}

}  // namespace
}  // namespace ldc
