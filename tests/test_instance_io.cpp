#include "ldc/coloring/instance_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/graph/generators.hpp"

namespace ldc {
namespace {

TEST(InstanceIo, RoundTrip) {
  const Graph g = gen::gnp(30, 0.2, 5);
  RandomLdcParams p;
  p.color_space = 128;
  p.one_plus_nu = 1.0;
  p.kappa = 1.5;
  p.max_defect = 3;
  p.seed = 6;
  const LdcInstance inst = random_weighted_instance(g, p);
  std::ostringstream os;
  io::write_instance(os, inst);
  std::istringstream is(os.str());
  const LdcInstance back = io::read_instance(is, g);
  ASSERT_EQ(back.color_space, inst.color_space);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(back.lists[v].colors, inst.lists[v].colors) << v;
    EXPECT_EQ(back.lists[v].defects, inst.lists[v].defects) << v;
  }
}

TEST(InstanceIo, AcceptsUnsortedInputAndNormalizes) {
  const Graph g = gen::path(2);
  std::istringstream is(
      "space 10\n"
      "l 0 5/1 2/0\n"
      "l 1 9/2\n");
  const LdcInstance inst = io::read_instance(is, g);
  EXPECT_EQ(inst.lists[0].colors, (std::vector<Color>{2, 5}));
  EXPECT_EQ(inst.lists[0].defects, (std::vector<std::uint32_t>{0, 1}));
}

TEST(InstanceIo, RejectsMalformed) {
  const Graph g = gen::path(2);
  const char* bad[] = {
      "l 0 1/0\n",                 // before space
      "space 4\nl 7 1/0\n",        // node out of range
      "space 4\nl 0 1\n",          // missing defect
      "space 4\nl 0 9/0\nl 1 0/0\n",  // color outside space (check())
      "space 4\nl 0 1/0\nl 0 2/0\nl 1 0/0\n",  // duplicate node
      "space 4\nx 0\n",            // unknown record
      "space 0\n",                 // zero space
  };
  for (const char* text : bad) {
    std::istringstream is(text);
    EXPECT_THROW(io::read_instance(is, g), std::invalid_argument) << text;
  }
}

TEST(InstanceIo, ThrowsTypedParseError) {
  const Graph g = gen::path(2);
  std::istringstream is("l 0 1/0\n");
  EXPECT_THROW(io::read_instance(is, g), io::ParseError);
}

TEST(InstanceIo, RejectsTruncatedFiles) {
  // A file that ends before covering every node used to load silently
  // (LdcInstance::check() tolerates empty lists); the reader must treat
  // missing coverage as truncation and name the first uncovered node.
  const Graph g = gen::path(3);
  std::istringstream is(
      "space 4\n"
      "l 0 1/0\n"
      "l 1 2/0\n");  // node 2 never appears
  try {
    io::read_instance(is, g);
    FAIL() << "truncated instance accepted";
  } catch (const io::ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no list for node 2"), std::string::npos) << what;
  }
}

TEST(InstanceIo, FileRoundTrip) {
  const Graph g = gen::ring(6);
  const LdcInstance inst = uniform_defective_instance(g, 3, 1);
  io::save_instance("/tmp/ldc_inst_test.txt", inst);
  const LdcInstance back = io::load_instance("/tmp/ldc_inst_test.txt", g);
  EXPECT_EQ(back.color_space, 3u);
  EXPECT_EQ(back.lists[5].defects, (std::vector<std::uint32_t>{1, 1, 1}));
}

}  // namespace
}  // namespace ldc
