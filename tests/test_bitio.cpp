#include "ldc/support/bitio.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

TEST(BitIo, EmptyWriter) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  BitReader r(w);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitIo, SingleBits) {
  BitWriter w;
  w.write(1, 1);
  w.write(0, 1);
  w.write(1, 1);
  EXPECT_EQ(w.bit_count(), 3u);
  BitReader r(w);
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.read(1), 0u);
  EXPECT_EQ(r.read(1), 1u);
}

TEST(BitIo, FullWord) {
  BitWriter w;
  const std::uint64_t v = 0xdeadbeefcafebabeULL;
  w.write(v, 64);
  BitReader r(w);
  EXPECT_EQ(r.read(64), v);
}

TEST(BitIo, CrossWordBoundary) {
  BitWriter w;
  w.write(0x7f, 7);
  w.write(0x123456789abcdefULL, 60);
  w.write(0x3, 2);
  BitReader r(w);
  EXPECT_EQ(r.read(7), 0x7fu);
  EXPECT_EQ(r.read(60), 0x123456789abcdefULL);
  EXPECT_EQ(r.read(2), 0x3u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitIo, MasksHighBits) {
  BitWriter w;
  w.write(0xff, 4);  // only low 4 bits should land
  w.write(0, 4);
  BitReader r(w);
  EXPECT_EQ(r.read(8), 0x0fu);
}

TEST(BitIo, ZeroBitWriteIsNoop) {
  BitWriter w;
  w.write(123, 0);
  EXPECT_EQ(w.bit_count(), 0u);
}

TEST(BitIo, BoundedRoundTrip) {
  BitWriter w;
  w.write_bounded(0, 0);    // 0 bits
  w.write_bounded(5, 7);    // 3 bits
  w.write_bounded(7, 7);    // 3 bits
  w.write_bounded(8, 8);    // 4 bits
  EXPECT_EQ(w.bit_count(), 10u);
  BitReader r(w);
  EXPECT_EQ(r.read_bounded(0), 0u);
  EXPECT_EQ(r.read_bounded(7), 5u);
  EXPECT_EQ(r.read_bounded(7), 7u);
  EXPECT_EQ(r.read_bounded(8), 8u);
}

TEST(BitIo, VarintRoundTrip) {
  BitWriter w;
  const std::vector<std::uint64_t> values = {0,  1,   2,      3,
                                             63, 64,  12345,  (1ULL << 32),
                                             (1ULL << 63) + 7, ~0ULL};
  for (auto v : values) w.write_varint(v);
  BitReader r(w);
  for (auto v : values) EXPECT_EQ(r.read_varint(), v);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitIo, RandomRoundTrip) {
  SplitMix64 rng(7);
  for (int rep = 0; rep < 50; ++rep) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, int>> written;
    for (int i = 0; i < 100; ++i) {
      const int bits = 1 + static_cast<int>(rng.next_below(64));
      std::uint64_t v = rng.next();
      if (bits < 64) v &= (1ULL << bits) - 1;
      w.write(v, bits);
      written.emplace_back(v, bits);
    }
    BitReader r(w);
    for (const auto& [v, bits] : written) {
      EXPECT_EQ(r.read(bits), v);
    }
  }
}

}  // namespace
}  // namespace ldc
