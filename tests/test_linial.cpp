#include "ldc/linial/linial.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/cover_free.hpp"
#include "ldc/linial/defective_linial.hpp"
#include "ldc/support/math.hpp"

namespace ldc {
namespace {

using linial::choose_family;
using linial::kth_root_ceil;
using linial::RsFamily;

TEST(CoverFree, KthRootCeil) {
  EXPECT_EQ(kth_root_ceil(1, 2), 1u);
  EXPECT_EQ(kth_root_ceil(4, 2), 2u);
  EXPECT_EQ(kth_root_ceil(5, 2), 3u);
  EXPECT_EQ(kth_root_ceil(27, 3), 3u);
  EXPECT_EQ(kth_root_ceil(28, 3), 4u);
  EXPECT_EQ(kth_root_ceil(1000000, 1), 1000000u);
}

TEST(CoverFree, FamilySatisfiesConstraints) {
  for (std::uint64_t m : {10ULL, 100ULL, 10000ULL, 1ULL << 20}) {
    for (std::uint64_t D : {1ULL, 3ULL, 10ULL, 50ULL}) {
      for (std::uint32_t d : {0u, 1u, 4u}) {
        const RsFamily f = choose_family(m, D, d);
        EXPECT_GE(sat_pow(f.q, f.deg + 1), m) << m << " " << D << " " << d;
        EXPECT_GT(f.q * (d + 1), D * f.deg) << m << " " << D << " " << d;
      }
    }
  }
}

TEST(CoverFree, ProperFamilyShrinksLargePalettes) {
  // For m >> Delta^2 the output must be far smaller than m.
  const RsFamily f = choose_family(1ULL << 20, 8, 0);
  EXPECT_LT(f.output_space(), 1ULL << 16);
}

TEST(CoverFree, ElementEncodesPointValuePair) {
  const RsFamily f = choose_family(100, 3, 0);
  for (std::uint64_t c : {0ULL, 1ULL, 57ULL, 99ULL}) {
    for (std::uint64_t x = 0; x < f.q; x += 3) {
      const auto e = f.element(c, x);
      EXPECT_EQ(e / f.q, x);
      EXPECT_EQ(e % f.q, f.evaluate(c, x));
      EXPECT_LT(e, f.output_space());
    }
  }
}

TEST(CoverFree, DistinctColorsDisagreeSomewhere) {
  const RsFamily f = choose_family(64, 4, 0);
  for (std::uint64_t a = 0; a < 20; ++a) {
    for (std::uint64_t b = a + 1; b < 20; ++b) {
      std::uint64_t agreements = 0;
      for (std::uint64_t x = 0; x < f.q; ++x) {
        if (f.evaluate(a, x) == f.evaluate(b, x)) ++agreements;
      }
      EXPECT_LE(agreements, f.deg);
    }
  }
}

TEST(CoverFree, OutputSpaceOverflowThrows) {
  // q*q above 2^64 must refuse loudly instead of silently wrapping into a
  // tiny (and wrong) palette bound.
  RsFamily f;
  f.q = std::uint64_t{1} << 33;
  f.deg = 1;
  EXPECT_THROW(f.output_space(), std::overflow_error);
  f.q = std::uint64_t{1} << 31;  // q^2 = 2^62: representable
  EXPECT_EQ(f.output_space(), std::uint64_t{1} << 62);
}

TEST(CoverFree, ChooseFamilyThrowsInsteadOfWrapping) {
  // Pre-fix, the conflict bound D*deg/(d+1)+1 was computed in 64 bits: a
  // huge D wrapped to a tiny q_min and the search "succeeded" with a
  // family whose conflict constraint is violated (or fell through and
  // returned the default q = 0 family, whose evaluate() divides by zero).
  EXPECT_THROW(
      choose_family(1ULL << 32, std::numeric_limits<std::uint64_t>::max(), 0),
      std::overflow_error);
  // Large-but-representable boundary still succeeds: q ~ 2^31, q^2 ~ 2^62.
  const RsFamily f = choose_family(std::uint64_t{1} << 62, 4, 0);
  EXPECT_GT(f.q, 0u);
  EXPECT_GE(sat_pow(f.q, f.deg + 1), std::uint64_t{1} << 62);
  EXPECT_GE(f.output_space(), f.q);
}

TEST(CoverFree, EvalTableMatchesDirectEvaluation) {
  // The per-round pow table must be a pure memoization: same value as
  // RsFamily::evaluate for every (color, point) pair.
  for (std::uint64_t m : {10ULL, 1000ULL, 1ULL << 20}) {
    for (std::uint64_t D : {2ULL, 9ULL}) {
      const RsFamily f = choose_family(m, D, 1);
      const linial::RsEvalTable tab(f);
      std::vector<std::uint64_t> digits(f.deg + 1);
      for (std::uint64_t c = 0; c < std::min<std::uint64_t>(m, 200); c += 7) {
        tab.digits_of(c, digits.data());
        for (std::uint64_t x = 0; x < f.q; ++x) {
          ASSERT_EQ(tab.eval(digits.data(), x), f.evaluate(c, x))
              << "m=" << m << " D=" << D << " c=" << c << " x=" << x;
        }
      }
    }
  }
}

TEST(Linial, ProperColoringOnRing) {
  const Graph g = gen::ring(64);
  Network net(g);
  const auto res = linial::color(net);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
  // Fixpoint palette is O(Delta^2): small constant for Delta = 2.
  EXPECT_LE(res.palette, 64u);
  for (Color c : res.phi) EXPECT_LT(c, res.palette);
}

TEST(Linial, LogStarRoundScaling) {
  // Rounds grow like log* of the id space.
  Graph g = gen::ring(128);
  gen::scramble_ids(g, 1ULL << 48, 3);
  Network net(g);
  const auto res = linial::color(net);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
  EXPECT_LE(res.rounds, 8u);
}

TEST(Linial, MessageSizeIsLogarithmic) {
  Graph g = gen::ring(64);
  gen::scramble_ids(g, 1ULL << 30, 5);
  Network net(g);
  linial::color(net);
  // First round sends the ids: <= 30 bits; never more.
  EXPECT_LE(net.metrics().max_message_bits, 31u);
}

TEST(Linial, WorksOnVariousFamilies) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = gen::gnp(120, 0.05, seed);
    Network net(g);
    const auto res = linial::color(net);
    EXPECT_TRUE(validate_proper(g, res.phi).ok) << "seed " << seed;
    const std::uint64_t delta = std::max(1u, g.max_degree());
    EXPECT_LE(res.palette, 16 * delta * delta + 64) << "seed " << seed;
  }
}

TEST(Linial, OrientedVariantProperOnOutNeighbors) {
  const Graph g = gen::random_regular(60, 6, 7);
  const Orientation o = Orientation::by_decreasing_id(g);
  Network net(g);
  linial::Options opt;
  opt.orientation = &o;
  const auto res = linial::color(net, opt);
  // Proper w.r.t. out-neighbors: no node shares a color with an
  // out-neighbor.
  for (NodeId v = 0; v < g.n(); ++v) {
    for (NodeId u : o.out(v)) {
      EXPECT_NE(res.phi[v], res.phi[u]);
    }
  }
  // beta = Delta here, but the id orientation halves typical outdegree;
  // the palette should be bounded by O(beta^2).
  const std::uint64_t beta = o.max_beta();
  EXPECT_LE(res.palette, 16 * beta * beta + 64);
}

TEST(Linial, ColorFromAcceptsExistingColoring) {
  const Graph g = gen::torus(8, 8);
  Network net(g);
  // Start from a proper coloring with a large, sparse palette (distinct
  // colors, far above the O(Delta^2) fixpoint).
  Coloring phi(g.n());
  for (NodeId v = 0; v < g.n(); ++v) phi[v] = v * 64;
  const auto res = linial::color_from(net, phi, 64 * g.n());
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
  EXPECT_LT(res.palette, 64u * g.n() / 8);
}

TEST(DefectiveLinial, DefectBudgetsHold) {
  const Graph g = gen::random_regular(80, 8, 1);
  for (std::uint32_t d : {1u, 2u, 4u}) {
    Network net(g);
    const auto res = linial::defective_color(net, d);
    auto check = validate_defective(g, res.phi,
                                    static_cast<std::uint32_t>(res.palette),
                                    d);
    EXPECT_TRUE(check.ok) << "defect " << d;
  }
}

TEST(DefectiveLinial, PaletteShrinksWithDefect) {
  const Graph g = gen::random_regular(128, 16, 2);
  Network net0(g);
  const auto proper = linial::color(net0);
  Network net(g);
  const auto res = linial::defective_color(net, 8);
  EXPECT_LT(res.palette, proper.palette);
}

TEST(DefectiveLinial, ZeroDefectEqualsProper) {
  const Graph g = gen::ring(32);
  Network net(g);
  const auto res = linial::defective_color(net, 0);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
}

}  // namespace
}  // namespace ldc
