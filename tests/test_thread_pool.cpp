// Concurrency stress tests for the runtime ThreadPool. These are the tests
// the TSan CI job exists for (ctest -L tsan / the tsan CMake preset): every
// assertion here is also a data-race probe.
#include "ldc/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace ldc {
namespace {

TEST(ThreadPool, SizeOneRunsInlineWithNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran;
  pool.run_tasks({[&] { ran.push_back(std::this_thread::get_id()); },
                  [&] { ran.push_back(std::this_thread::get_id()); }});
  ASSERT_EQ(ran.size(), 2u);
  EXPECT_EQ(ran[0], caller);
  EXPECT_EQ(ran[1], caller);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 3u, 4u, 7u}) {
    ThreadPool pool(threads);
    for (std::size_t n : {0u, 1u, 2u, 5u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(ThreadPool, ParallelForChunksArePartitionOfRange) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(10, [&](std::size_t b, std::size_t e, std::size_t c) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
    EXPECT_LT(c, 4u);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, 10u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i - 1].second, chunks[i].first);  // contiguous
  }
}

TEST(ThreadPool, TaskBurstsReuseWorkers) {
  // Many small batches back-to-back: exercises the sleep/wake handshake
  // and reuse-after-drain; the counter sum certifies no task is lost or
  // duplicated across generations.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  std::uint64_t expected = 0;
  for (int burst = 0; burst < 200; ++burst) {
    const std::size_t k = 1 + static_cast<std::size_t>(burst % 7);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < k; ++i) {
      tasks.emplace_back([&sum, burst, i] {
        sum.fetch_add(static_cast<std::uint64_t>(burst) * 10 + i);
      });
      expected += static_cast<std::uint64_t>(burst) * 10 + i;
    }
    pool.run_tasks(std::move(tasks));
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, HeavyContendedBurst) {
  // One large batch of trivial tasks hammering the queue hand-off.
  ThreadPool pool(7);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks(5000, [&] { count.fetch_add(1); });
  pool.run_tasks(std::move(tasks));
  EXPECT_EQ(count.load(), 5000);
}

TEST(ThreadPool, ExceptionPropagatesLowestIndexFirst) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] {});
  tasks.emplace_back([] { throw std::runtime_error("task-1"); });
  tasks.emplace_back([] { throw std::logic_error("task-2"); });
  tasks.emplace_back([] {});
  try {
    pool.run_tasks(std::move(tasks));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task-1");  // lowest throwing index wins
  }
}

TEST(ThreadPool, ParallelForExceptionNamesFirstChunk) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t b, std::size_t, std::size_t) {
                          if (b >= 25) throw std::invalid_argument("boom");
                        }),
      std::invalid_argument);
}

TEST(ThreadPool, UsableAfterException) {
  // A throwing batch must drain fully and leave the pool reusable.
  ThreadPool pool(3);
  std::atomic<int> survivors{0};
  std::vector<std::function<void()>> bad;
  for (int i = 0; i < 20; ++i) {
    bad.emplace_back([&survivors, i] {
      if (i % 2 == 0) throw std::runtime_error("even task");
      survivors.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.run_tasks(std::move(bad)), std::runtime_error);
  EXPECT_EQ(survivors.load(), 10);  // non-throwing tasks still ran

  std::atomic<int> after{0};
  pool.parallel_for(64, [&](std::size_t b, std::size_t e, std::size_t) {
    after.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPool, MoreTasksThanWorkersAndViceVersa) {
  ThreadPool pool(7);
  std::atomic<int> c1{0};
  pool.run_tasks({[&] { c1.fetch_add(1); }});  // fewer tasks than lanes
  EXPECT_EQ(c1.load(), 1);
  std::atomic<int> c2{0};
  std::vector<std::function<void()>> many(100, [&] { c2.fetch_add(1); });
  pool.run_tasks(std::move(many));
  EXPECT_EQ(c2.load(), 100);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv) {
  ASSERT_EQ(setenv("LDC_THREADS", "5", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 5u);
  ASSERT_EQ(setenv("LDC_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);  // falls back to hw
  ASSERT_EQ(setenv("LDC_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);  // 0 is invalid too
  ASSERT_EQ(unsetenv("LDC_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, DefaultThreadCountRejectsMalformedEnv) {
  // Every malformed value must resolve to the hardware-concurrency default,
  // never to a garbage pool size (strtol's partial parses, negatives,
  // overflow saturation, and absurdly large counts included).
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw == 0 ? 1 : hw;
  const char* bad[] = {
      "",      " ",          "-1",  "-0",         "3threads",
      "0x10",  "2.5",        "+ 4", "99999999999999999999",  // > LONG_MAX
      "-9223372036854775808000",                             // < LONG_MIN
      "1e3",   "eight",      "4 ",
      "5000",                                  // beyond the 4096 sanity cap
  };
  for (const char* v : bad) {
    ASSERT_EQ(setenv("LDC_THREADS", v, 1), 0);
    EXPECT_EQ(ThreadPool::default_thread_count(), fallback)
        << "LDC_THREADS=\"" << v << "\"";
  }
  // Boundary values that are valid must still be honored.
  ASSERT_EQ(setenv("LDC_THREADS", "1", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 1u);
  ASSERT_EQ(setenv("LDC_THREADS", "4096", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 4096u);
  ASSERT_EQ(unsetenv("LDC_THREADS"), 0);
}

TEST(ThreadPool, ZeroResolvesToDefault) {
  ASSERT_EQ(setenv("LDC_THREADS", "3", 1), 0);
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 3u);
  ASSERT_EQ(unsetenv("LDC_THREADS"), 0);
}

TEST(ThreadPool, DestructionWithIdleWorkersIsClean) {
  for (int i = 0; i < 25; ++i) {
    ThreadPool pool(4);  // construct + destruct churn
    if (i % 5 == 0) {
      pool.parallel_for(8, [](std::size_t, std::size_t, std::size_t) {});
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ldc
