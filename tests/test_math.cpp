#include "ldc/support/math.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ldc {
namespace {

TEST(Math, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_EQ(ilog2(~0ULL), 63);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1ULL << 40), 40);
  EXPECT_EQ(ceil_log2((1ULL << 40) + 1), 41);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Math, LogStar) {
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(65536), 4);
  // 2^64-1 -> 63 -> 5 -> 2 -> 1: four applications of floor(log2).
  EXPECT_EQ(log_star(~0ULL), 4);
}

TEST(Math, SatPow) {
  EXPECT_EQ(sat_pow(2, 10), 1024u);
  EXPECT_EQ(sat_pow(10, 0), 1u);
  EXPECT_EQ(sat_pow(2, 64), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(sat_pow(1ULL << 32, 3), std::numeric_limits<std::uint64_t>::max());
}

TEST(Math, SatMul) {
  EXPECT_EQ(sat_mul(3, 4), 12u);
  EXPECT_EQ(sat_mul(1ULL << 40, 1ULL << 40),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(sat_mul(0, ~0ULL), 0u);
}

}  // namespace
}  // namespace ldc
