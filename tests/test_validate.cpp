#include "ldc/coloring/validate.hpp"

#include <gtest/gtest.h>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/graph/generators.hpp"

namespace ldc {
namespace {

TEST(Validate, MembershipDetectsUncoloredAndForeignColor) {
  const Graph g = gen::path(3);
  LdcInstance inst = uniform_defective_instance(g, 2, 0);
  Coloring phi = {0, 1, kUncolored};
  auto r = validate_membership(inst, phi);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].node, 2u);

  phi = {0, 5, 1};  // 5 not in the list
  r = validate_membership(inst, phi);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.violations[0].node, 1u);
}

TEST(Validate, LdcDefectBudgets) {
  const Graph g = gen::clique(3);
  LdcInstance inst = uniform_defective_instance(g, 1, 1);
  // All three nodes share color 0; each sees 2 same-colored neighbors but
  // budget is 1 -> all violate.
  const Coloring phi = {0, 0, 0};
  auto r = validate_ldc(inst, phi);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.violations.size(), 3u);

  LdcInstance relaxed = uniform_defective_instance(g, 1, 2);
  EXPECT_TRUE(validate_ldc(relaxed, phi).ok);
}

TEST(Validate, GeneralizedGCountsNearbyColors) {
  const Graph g = gen::path(2);
  LdcInstance inst = uniform_defective_instance(g, 10, 0);
  const Coloring phi = {3, 5};
  EXPECT_TRUE(validate_ldc(inst, phi, /*g=*/0).ok);
  EXPECT_TRUE(validate_ldc(inst, phi, /*g=*/1).ok);
  EXPECT_FALSE(validate_ldc(inst, phi, /*g=*/2).ok);  // |3-5| <= 2
}

TEST(Validate, OldcCountsOutNeighborsOnly) {
  const Graph g = gen::path(2);
  LdcInstance inst = uniform_defective_instance(g, 1, 0);
  // Orient 0 -> 1. Node 0 has an out-conflict; node 1 does not.
  std::vector<std::vector<NodeId>> out = {{1}, {}};
  const Orientation o(g, std::move(out));
  const Coloring phi = {0, 0};
  auto r = validate_oldc(inst, o, phi);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].node, 0u);
}

TEST(Validate, ArbdefectiveUsesOutputOrientation) {
  const Graph g = gen::clique(3);
  LdcInstance inst = uniform_defective_instance(g, 1, 1);
  // All same color; orient as a directed cycle so each node has exactly
  // one same-colored out-neighbor = within budget 1.
  std::vector<std::vector<NodeId>> out = {{1}, {2}, {0}};
  ArbdefectiveColoring ac{{0, 0, 0}, Orientation(g, std::move(out))};
  EXPECT_TRUE(validate_arbdefective(inst, ac).ok);
}

TEST(Validate, ProperColoring) {
  const Graph g = gen::ring(4);
  EXPECT_TRUE(validate_proper(g, {0, 1, 0, 1}).ok);
  EXPECT_FALSE(validate_proper(g, {0, 1, 0, 0}).ok);
  EXPECT_FALSE(validate_proper(g, {0, 1, 0, kUncolored}).ok);
}

TEST(Validate, DefectiveColoring) {
  const Graph g = gen::clique(4);
  // 2 colors, defect 1: {0,0,1,1} gives each node exactly 1 same-color
  // neighbor.
  EXPECT_TRUE(validate_defective(g, {0, 0, 1, 1}, 2, 1).ok);
  EXPECT_FALSE(validate_defective(g, {0, 0, 0, 1}, 2, 1).ok);
  EXPECT_FALSE(validate_defective(g, {0, 0, 2, 1}, 2, 1).ok);  // color >= c
}

TEST(Validate, ColorsUsed) {
  EXPECT_EQ(colors_used({0, 1, 1, 5, kUncolored}), 3u);
  EXPECT_EQ(colors_used({}), 0u);
}

}  // namespace
}  // namespace ldc
