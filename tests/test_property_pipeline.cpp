// Property sweeps for the end-to-end pipelines (Theorem 1.3 transformer,
// Theorem 1.4 CONGEST colorer, edge coloring, color space reduction):
// validity on every family x seed x option combination, plus the
// structural invariants the theory promises (degree-halving stage counts,
// arbdefect budgets, message-size orderings).
#include <gtest/gtest.h>

#include <tuple>

#include "ldc/arb/list_arbdefective.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/d1lc/edge_color.hpp"
#include "ldc/d1lc/fhk_local.hpp"
#include "ldc/graph/builder.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/reduction/speedup.hpp"
#include "ldc/support/math.hpp"

namespace ldc {
namespace {

enum class Fam { kRegular, kGnp, kPower, kTorus, kTree };

Graph make_graph(Fam f, std::uint64_t seed) {
  Graph g = [&] {
    switch (f) {
      case Fam::kRegular: return gen::random_regular(64, 10, seed);
      case Fam::kGnp: return gen::gnp(64, 0.15, seed);
      case Fam::kPower: return gen::power_law(80, 2.5, 5.0, seed);
      case Fam::kTorus: return gen::torus(8, 8);
      case Fam::kTree: return gen::random_tree(80, seed);
    }
    return gen::ring(3);
  }();
  gen::scramble_ids(g, 1ULL << 22, seed + 3);
  return g;
}

const char* fam_name(Fam f) {
  switch (f) {
    case Fam::kRegular: return "regular";
    case Fam::kGnp: return "gnp";
    case Fam::kPower: return "power";
    case Fam::kTorus: return "torus";
    case Fam::kTree: return "tree";
  }
  return "?";
}

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<Fam, std::uint64_t,
                                                 std::uint32_t>> {};

TEST_P(PipelineSweep, DegreePlusOneListsSolved) {
  const auto [fam, seed, levels] = GetParam();
  const Graph g = make_graph(fam, seed);
  const LdcInstance inst =
      degree_plus_one_instance(g, 8ULL * (g.max_degree() + 1), seed + 9);
  d1lc::PipelineOptions opt;
  opt.reduction_levels = levels;
  Network net(g);
  const auto res = d1lc::color(net, inst, opt);
  ASSERT_TRUE(res.valid) << fam_name(fam) << " seed " << seed;
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
  EXPECT_TRUE(validate_membership(inst, res.phi).ok);
  // Degree-halving: stages bounded by ~log2(Delta) + 1.
  EXPECT_LE(res.t13.stages,
            static_cast<std::uint32_t>(
                ceil_log2(std::max(2u, g.max_degree()))) + 2);
}

TEST_P(PipelineSweep, ArbdefectiveInstancesSolved) {
  const auto [fam, seed, levels] = GetParam();
  if (levels != 0) GTEST_SKIP() << "instance variation only once per fam";
  const Graph g = make_graph(fam, seed);
  RandomLdcParams p;
  p.color_space = 1024;
  p.one_plus_nu = 1.0;
  p.kappa = 1.3;
  p.max_defect = 2;
  p.seed = seed + 77;
  const LdcInstance inst = random_weighted_instance(g, p);
  Network net(g);
  const auto lin = linial::color(net);
  mt::CandidateParams params;
  const auto res = arb::solve_list_arbdefective(
      net, inst, lin.phi, lin.palette, arb::two_phase_solver(params));
  ASSERT_TRUE(res.valid) << fam_name(fam) << " seed " << seed;
  EXPECT_TRUE(validate_arbdefective(inst, res.out).ok);
  // The output orientation must cover every edge exactly once.
  std::uint64_t total = 0;
  for (NodeId v = 0; v < g.n(); ++v) total += res.out.orientation.outdeg(v);
  EXPECT_EQ(total, g.m());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineSweep,
    ::testing::Combine(::testing::Values(Fam::kRegular, Fam::kGnp,
                                         Fam::kPower, Fam::kTorus,
                                         Fam::kTree),
                       ::testing::Values(1ULL, 2ULL),
                       ::testing::Values(0u, 2u)),
    [](const auto& info) {
      return std::string(fam_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param));
    });

TEST(PipelineExtras, EdgeColoringValidWithVizingStylePalette) {
  const Graph g = gen::random_regular(40, 6, 3);
  const auto res = d1lc::edge_color(g);
  ASSERT_TRUE(res.valid);
  EXPECT_EQ(res.edges.size(), g.m());
  EXPECT_LE(res.palette, 2ULL * g.max_degree() - 1);
  // Re-check by hand: no two edges sharing an endpoint share a slot.
  for (std::size_t i = 0; i < res.edges.size(); ++i) {
    for (std::size_t j = i + 1; j < res.edges.size(); ++j) {
      const auto [a, b] = res.edges[i];
      const auto [c, d] = res.edges[j];
      if (a == c || a == d || b == c || b == d) {
        EXPECT_NE(res.slots[i], res.slots[j]) << i << "," << j;
      }
    }
  }
}

TEST(PipelineExtras, SpeedupSubspaceCountSane) {
  // p grows with beta and kappa, clamps to the color space.
  const auto p1 = reduction::speedup_subspace_count(16, 4.0, 1 << 20);
  const auto p2 = reduction::speedup_subspace_count(1 << 16, 4.0, 1 << 20);
  EXPECT_LT(p1, p2);
  EXPECT_GE(p1, 2u);
  EXPECT_EQ(reduction::speedup_subspace_count(1 << 30, 1e9, 64), 64u);
}

TEST(PipelineExtras, LocalBaselineUsesStrictlyBiggerMessages) {
  const Graph g = make_graph(Fam::kRegular, 5);
  const LdcInstance inst =
      degree_plus_one_instance(g, 16ULL * (g.max_degree() + 1), 6);
  Network a(g), b(g);
  d1lc::PipelineOptions opt;
  opt.reduction_levels = 3;
  const auto congest = d1lc::color(a, inst, opt);
  const auto local = d1lc::color_local_baseline(b, inst);
  ASSERT_TRUE(congest.valid);
  ASSERT_TRUE(local.valid);
  EXPECT_LT(a.metrics().max_message_bits, b.metrics().max_message_bits);
}

TEST(PipelineExtras, WorksOnDisconnectedGraphs) {
  GraphBuilder builder(60);
  // Two components: a clique and a ring; plus isolated vertices.
  for (std::uint32_t u = 0; u < 10; ++u) {
    for (std::uint32_t v = u + 1; v < 10; ++v) builder.add_edge(u, v);
  }
  for (std::uint32_t v = 10; v < 40; ++v) {
    builder.add_edge(v, (v == 39) ? 10 : v + 1);
  }
  Graph g = builder.build();
  gen::scramble_ids(g, 1 << 16, 2);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = d1lc::color(net, inst);
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
}

}  // namespace
}  // namespace ldc
