#include "ldc/reduction/color_space.hpp"

#include <gtest/gtest.h>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/multi_defect.hpp"

namespace ldc {
namespace {

reduction::OldcSolver multi_defect_base(mt::CandidateParams params) {
  return [params](Network& net, const LdcInstance& inst,
                  const Orientation& orientation, const Coloring& initial,
                  std::uint64_t m) {
    oldc::MultiDefectInput in;
    in.inst = &inst;
    in.orientation = &orientation;
    in.initial = &initial;
    in.m = m;
    in.params = params;
    return oldc::solve_multi_defect(net, in);
  };
}

struct RedEnv {
  Graph g;
  Orientation orient;
  LdcInstance inst;
  Coloring initial;
  std::uint64_t m;
};

RedEnv make_setup(std::uint64_t seed, std::uint64_t color_space, double kappa,
                 std::uint32_t max_defect) {
  RedEnv s;
  s.g = gen::random_regular(48, 8, seed);
  s.orient = Orientation::by_decreasing_id(s.g);
  RandomLdcParams p;
  p.color_space = color_space;
  p.one_plus_nu = 2.0;
  p.kappa = kappa;
  p.max_defect = max_defect;
  p.seed = seed + 500;
  s.inst = random_weighted_oriented_instance(s.g, s.orient, p);
  return s;
}

TEST(Reduction, SubspaceCountForDepth) {
  EXPECT_EQ(reduction::subspace_count_for_depth(4096, 1), 4096u);
  EXPECT_EQ(reduction::subspace_count_for_depth(4096, 2), 64u);
  EXPECT_EQ(reduction::subspace_count_for_depth(4096, 3), 16u);
  EXPECT_EQ(reduction::subspace_count_for_depth(4097, 2), 65u);
}

TEST(Reduction, NoOpWhenPZero) {
  RedEnv s = make_setup(1, 4096, 60.0, 7);
  Network net(s.g);
  const auto lin = linial::color(net);
  mt::CandidateParams params;
  params.kprime = 12;
  params.tau_cap = 8;
  reduction::Options opt;  // p = 0
  const auto res = reduction::reduce_and_solve(
      net, s.inst, s.orient, lin.phi, lin.palette, opt,
      multi_defect_base(params));
  EXPECT_EQ(res.levels, 1u);
  EXPECT_TRUE(validate_oldc(s.inst, s.orient, res.phi).ok);
}

TEST(Reduction, TwoLevelRecursionValid) {
  RedEnv s = make_setup(2, 4096, 60.0, 7);
  Network net(s.g);
  const auto lin = linial::color(net);
  mt::CandidateParams params;
  params.kprime = 12;
  params.tau_cap = 8;
  reduction::Options opt;
  opt.p = reduction::subspace_count_for_depth(4096, 2);  // 64
  const auto res = reduction::reduce_and_solve(
      net, s.inst, s.orient, lin.phi, lin.palette, opt,
      multi_defect_base(params));
  EXPECT_GE(res.levels, 2u);
  EXPECT_TRUE(validate_oldc(s.inst, s.orient, res.phi).ok);
}

TEST(Reduction, ReducesMaxMessageSize) {
  // Same instance solved with and without reduction: the reduced variant
  // must use strictly smaller maximum messages (lists over a smaller
  // space).
  RedEnv s1 = make_setup(3, 1 << 14, 80.0, 7);
  mt::CandidateParams params;
  params.kprime = 12;
  params.tau_cap = 8;

  Network flat(s1.g);
  const auto lin1 = linial::color(flat);
  reduction::Options none;  // direct solve
  reduction::reduce_and_solve(flat, s1.inst, s1.orient, lin1.phi,
                              lin1.palette, none, multi_defect_base(params));

  Network red(s1.g);
  const auto lin2 = linial::color(red);
  reduction::Options two;
  two.p = reduction::subspace_count_for_depth(1 << 14, 3);
  reduction::reduce_and_solve(red, s1.inst, s1.orient, lin2.phi,
                              lin2.palette, two, multi_defect_base(params));

  EXPECT_LT(red.metrics().max_message_bits, flat.metrics().max_message_bits);
}

TEST(Reduction, DisjointBlocksNeverConflictAcross) {
  // Nodes choosing different blocks get colors from disjoint ranges.
  RedEnv s = make_setup(4, 1024, 60.0, 7);
  Network net(s.g);
  const auto lin = linial::color(net);
  mt::CandidateParams params;
  params.kprime = 8;
  params.tau_cap = 6;
  reduction::Options opt;
  opt.p = 4;
  const auto res = reduction::reduce_and_solve(
      net, s.inst, s.orient, lin.phi, lin.palette, opt,
      multi_defect_base(params));
  EXPECT_TRUE(validate_oldc(s.inst, s.orient, res.phi).ok);
  EXPECT_TRUE(validate_membership(s.inst, res.phi).ok);
}

TEST(Reduction, LinearExponentVariant) {
  // Theorem 1.2 with nu = 0 (exponent 1): auxiliary defects come from the
  // plain weight sum; validity must still hold.
  RedEnv s = make_setup(7, 2048, 60.0, 7);
  Network net(s.g);
  const auto lin = linial::color(net);
  mt::CandidateParams params;
  params.kprime = 12;
  params.tau_cap = 8;
  reduction::Options opt;
  opt.p = 8;
  opt.one_plus_nu = 1.0;
  const auto res = reduction::reduce_and_solve(
      net, s.inst, s.orient, lin.phi, lin.palette, opt,
      multi_defect_base(params));
  EXPECT_TRUE(validate_oldc(s.inst, s.orient, res.phi).ok);
}

TEST(Reduction, DepthCapStopsRecursion) {
  RedEnv s = make_setup(8, 4096, 60.0, 7);
  Network net(s.g);
  const auto lin = linial::color(net);
  mt::CandidateParams params;
  params.kprime = 8;
  params.tau_cap = 6;
  reduction::Options opt;
  opt.p = 2;          // would recurse ~12 levels
  opt.max_depth = 3;  // cap
  const auto res = reduction::reduce_and_solve(
      net, s.inst, s.orient, lin.phi, lin.palette, opt,
      multi_defect_base(params));
  EXPECT_LE(res.levels, 4u);
  EXPECT_TRUE(validate_oldc(s.inst, s.orient, res.phi).ok);
}

}  // namespace
}  // namespace ldc
