#include "ldc/coloring/instance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/graph/generators.hpp"

namespace ldc {
namespace {

TEST(ColorList, FindAndDefect) {
  ColorList l;
  l.colors = {2, 5, 9};
  l.defects = {0, 3, 1};
  EXPECT_EQ(l.find(5), 1u);
  EXPECT_EQ(l.find(4), l.size());
  EXPECT_TRUE(l.contains(9));
  EXPECT_FALSE(l.contains(1));
  EXPECT_EQ(l.defect_of(5), 3u);
}

TEST(ColorList, Weights) {
  ColorList l;
  l.colors = {0, 1, 2};
  l.defects = {0, 1, 3};
  EXPECT_EQ(l.weight(), 1u + 2u + 4u);
  EXPECT_EQ(l.weight_sq(), 1u + 4u + 16u);
  EXPECT_DOUBLE_EQ(l.weight_pow(2.0), 21.0);
  EXPECT_DOUBLE_EQ(l.weight_pow(1.0), 7.0);
}

TEST(ColorList, NormalizeSortsAndPairs) {
  ColorList l;
  l.colors = {9, 2, 5};
  l.defects = {1, 0, 3};
  l.normalize();
  EXPECT_EQ(l.colors, (std::vector<Color>{2, 5, 9}));
  EXPECT_EQ(l.defects, (std::vector<std::uint32_t>{0, 3, 1}));
}

TEST(ColorList, NormalizeRejectsDuplicates) {
  ColorList l;
  l.colors = {1, 1};
  l.defects = {0, 0};
  EXPECT_THROW(l.normalize(), std::invalid_argument);
}

TEST(InstanceGen, DeltaPlusOne) {
  const Graph g = gen::clique(5);
  const LdcInstance inst = delta_plus_one_instance(g);
  inst.check();
  EXPECT_EQ(inst.color_space, 5u);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(inst.lists[v].size(), 5u);
    for (auto d : inst.lists[v].defects) EXPECT_EQ(d, 0u);
  }
}

TEST(InstanceGen, DegreePlusOneListSizes) {
  const Graph g = gen::gnp(60, 0.1, 4);
  const LdcInstance inst = degree_plus_one_instance(g, 256, 1);
  inst.check();
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(inst.lists[v].size(), g.degree(v) + 1);
  }
}

TEST(InstanceGen, DegreePlusOneRejectsSmallSpace) {
  const Graph g = gen::clique(6);
  EXPECT_THROW(degree_plus_one_instance(g, 5, 1), std::invalid_argument);
}

TEST(InstanceGen, UniformDefective) {
  const Graph g = gen::ring(6);
  const LdcInstance inst = uniform_defective_instance(g, 3, 2);
  inst.check();
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(inst.lists[v].size(), 3u);
    for (auto d : inst.lists[v].defects) EXPECT_EQ(d, 2u);
  }
}

TEST(InstanceGen, RandomWeightedMeetsCondition) {
  const Graph g = gen::random_regular(40, 6, 2);
  RandomLdcParams p;
  p.color_space = 4096;
  p.one_plus_nu = 2.0;
  p.kappa = 3.0;
  p.max_defect = 2;
  p.seed = 5;
  const LdcInstance inst = random_weighted_instance(g, p);
  inst.check();
  for (NodeId v = 0; v < g.n(); ++v) {
    const double bound =
        std::pow(static_cast<double>(g.degree(v)), 2.0) * p.kappa;
    EXPECT_GE(inst.lists[v].weight_pow(2.0), bound);
  }
}

TEST(InstanceGen, RandomWeightedOrientedUsesBeta) {
  const Graph g = gen::random_regular(40, 6, 2);
  const Orientation o = Orientation::by_decreasing_id(g);
  RandomLdcParams p;
  p.color_space = 4096;
  p.one_plus_nu = 2.0;
  p.kappa = 2.0;
  p.seed = 6;
  const LdcInstance inst = random_weighted_oriented_instance(g, o, p);
  for (NodeId v = 0; v < g.n(); ++v) {
    const double bound = std::pow(static_cast<double>(o.beta(v)), 2.0) * p.kappa;
    EXPECT_GE(inst.lists[v].weight_pow(2.0), bound);
  }
}

TEST(InstanceGen, InfeasibleSpaceThrows) {
  const Graph g = gen::clique(20);
  RandomLdcParams p;
  p.color_space = 4;  // cannot reach deg^2 weight with defect 0 and 4 colors
  p.one_plus_nu = 2.0;
  p.kappa = 1.0;
  p.max_defect = 0;
  EXPECT_THROW(random_weighted_instance(g, p), std::invalid_argument);
}

TEST(Instance, CheckRejectsBadColor) {
  const Graph g = gen::path(2);
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = 4;
  inst.lists.resize(2);
  inst.lists[0].colors = {0, 7};  // 7 outside space
  inst.lists[0].defects = {0, 0};
  inst.lists[1].colors = {0};
  inst.lists[1].defects = {0};
  EXPECT_THROW(inst.check(), std::invalid_argument);
}

}  // namespace
}  // namespace ldc
