// Property sweeps for the sequential solvers (Lemmas A.1 / A.2) and the
// Euler orientation: the existence conditions must be *sufficient* on
// every graph family and every random instance, and outputs must always
// validate.
#include <gtest/gtest.h>

#include <tuple>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/sequential/euler.hpp"
#include "ldc/sequential/list_arbdefective.hpp"
#include "ldc/sequential/list_defective.hpp"
#include "ldc/support/math.hpp"

namespace ldc {
namespace {

enum class Family { kRing, kClique, kGnp, kRegular, kTree, kTorus, kPower };

Graph make_graph(Family f, std::uint64_t seed) {
  switch (f) {
    case Family::kRing:
      return gen::ring(40 + seed % 7);
    case Family::kClique:
      return gen::clique(12 + seed % 5);
    case Family::kGnp:
      return gen::gnp(60, 0.12, seed);
    case Family::kRegular:
      return gen::random_regular(60, 6, seed);
    case Family::kTree:
      return gen::random_tree(60, seed);
    case Family::kTorus:
      return gen::torus(6 + seed % 3, 6);
    case Family::kPower:
      return gen::power_law(70, 2.6, 4.0, seed);
  }
  return gen::ring(3);
}

const char* family_name(Family f) {
  switch (f) {
    case Family::kRing: return "ring";
    case Family::kClique: return "clique";
    case Family::kGnp: return "gnp";
    case Family::kRegular: return "regular";
    case Family::kTree: return "tree";
    case Family::kTorus: return "torus";
    case Family::kPower: return "power";
  }
  return "?";
}

class SequentialSweep
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(SequentialSweep, LemmaA1SolvesWhenConditionHolds) {
  const auto [fam, seed] = GetParam();
  const Graph g = make_graph(fam, seed);
  RandomLdcParams p;
  p.color_space = 512;
  p.one_plus_nu = 1.0;
  p.kappa = 1.1;  // just above the existence threshold
  p.max_defect = 2;
  p.seed = seed + 17;
  const LdcInstance inst = random_weighted_instance(g, p);
  ASSERT_TRUE(sequential::satisfies_ldc_condition(inst));
  sequential::RecolorStats stats;
  const auto phi = sequential::solve_list_defective(inst, &stats);
  ASSERT_TRUE(phi.has_value()) << family_name(fam) << " seed " << seed;
  EXPECT_TRUE(validate_ldc(inst, *phi).ok);
  // Lemma A.1's potential bound.
  EXPECT_LE(stats.steps, 3 * g.m() + g.n());
}

TEST_P(SequentialSweep, LemmaA2SolvesWhenConditionHolds) {
  const auto [fam, seed] = GetParam();
  const Graph g = make_graph(fam, seed);
  RandomLdcParams p;
  p.color_space = 512;
  p.one_plus_nu = 1.0;
  p.kappa = 2.1;  // sum(d+1) >= 2.1 deg  =>  sum(2d+1) > deg
  p.max_defect = 3;
  p.seed = seed + 31;
  const LdcInstance inst = random_weighted_instance(g, p);
  ASSERT_TRUE(sequential::satisfies_arb_condition(inst));
  const auto out = sequential::solve_list_arbdefective(inst);
  ASSERT_TRUE(out.has_value()) << family_name(fam) << " seed " << seed;
  EXPECT_TRUE(validate_arbdefective(inst, *out).ok);
}

TEST_P(SequentialSweep, EulerOrientationBalanced) {
  const auto [fam, seed] = GetParam();
  const Graph g = make_graph(fam, seed);
  const Orientation o = sequential::euler_orientation(g);
  std::uint64_t total = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_LE(o.outdeg(v), ceil_div(g.degree(v), 2));
    total += o.outdeg(v);
  }
  EXPECT_EQ(total, g.m());
}

TEST_P(SequentialSweep, RecoveryFromAdversarialInitialColorings) {
  const auto [fam, seed] = GetParam();
  const Graph g = make_graph(fam, seed);
  const LdcInstance inst = delta_plus_one_instance(g);
  // Adversarial starts: all-same, striped, reversed-greedy.
  std::vector<Coloring> starts;
  starts.emplace_back(g.n(), 0);
  Coloring striped(g.n());
  for (NodeId v = 0; v < g.n(); ++v) striped[v] = v % 2;
  starts.push_back(striped);
  for (const auto& start : starts) {
    const auto phi = sequential::solve_list_defective(inst, nullptr, &start);
    ASSERT_TRUE(phi.has_value());
    EXPECT_TRUE(validate_ldc(inst, *phi).ok);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, SequentialSweep,
    ::testing::Combine(::testing::Values(Family::kRing, Family::kClique,
                                         Family::kGnp, Family::kRegular,
                                         Family::kTree, Family::kTorus,
                                         Family::kPower),
                       ::testing::Values(1ULL, 2ULL, 3ULL)),
    [](const auto& info) {
      return std::string(family_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ldc
