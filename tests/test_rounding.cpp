#include "ldc/oldc/rounding.hpp"

#include <gtest/gtest.h>

namespace ldc::oldc {
namespace {

TEST(Rounding, Pow2Floor) {
  EXPECT_EQ(pow2_floor(0), 1u);  // clamped
  EXPECT_EQ(pow2_floor(1), 1u);
  EXPECT_EQ(pow2_floor(2), 2u);
  EXPECT_EQ(pow2_floor(3), 2u);
  EXPECT_EQ(pow2_floor(1023), 512u);
  EXPECT_EQ(pow2_floor(1024), 1024u);
}

TEST(Rounding, Pow4Ceil) {
  EXPECT_EQ(pow4_ceil(0), 1u);
  EXPECT_EQ(pow4_ceil(1), 1u);
  EXPECT_EQ(pow4_ceil(2), 4u);
  EXPECT_EQ(pow4_ceil(4), 4u);
  EXPECT_EQ(pow4_ceil(5), 16u);
  EXPECT_EQ(pow4_ceil(65), 256u);
}

TEST(Rounding, CeilLog4Ratio) {
  EXPECT_EQ(ceil_log4_ratio(1, 1), 0u);
  EXPECT_EQ(ceil_log4_ratio(3, 1), 1u);
  EXPECT_EQ(ceil_log4_ratio(4, 1), 1u);
  EXPECT_EQ(ceil_log4_ratio(5, 1), 2u);
  EXPECT_EQ(ceil_log4_ratio(100, 25), 1u);
  EXPECT_EQ(ceil_log4_ratio(101, 25), 2u);
  // lambda = 4^{-r} >= D_mu/(4 D): r = ceil(log4(D/D_mu)).
  EXPECT_EQ(ceil_log4_ratio(64, 1), 3u);
}

}  // namespace
}  // namespace ldc::oldc
