#include "ldc/graph/graph.hpp"

#include <gtest/gtest.h>

#include "ldc/graph/builder.hpp"
#include "ldc/graph/orientation.hpp"
#include "ldc/graph/stats.hpp"
#include "ldc/graph/subgraph.hpp"

namespace ldc {
namespace {

Graph triangle_plus_pendant() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(GraphBuilder, BasicTopology) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_TRUE(check_graph(g));
}

TEST(GraphBuilder, DeduplicatesEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.m(), 1u);
}

TEST(GraphBuilder, RejectsSelfLoopAndBadNode) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 3), std::out_of_range);
}

TEST(Graph, DefaultIdsAreIndices) {
  const Graph g = triangle_plus_pendant();
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(g.id(v), v);
  EXPECT_EQ(g.max_id(), 3u);
}

TEST(Graph, SetIdsValidatesUniqueness) {
  Graph g = triangle_plus_pendant();
  EXPECT_THROW(g.set_ids({1, 2, 3}), std::invalid_argument);   // wrong size
  EXPECT_THROW(g.set_ids({1, 2, 3, 3}), std::invalid_argument);  // dup
  g.set_ids({10, 20, 30, 40});
  EXPECT_EQ(g.id(2), 30u);
  EXPECT_EQ(g.max_id(), 40u);
}

TEST(Graph, NeighborIndex) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.neighbor_index(2, 0), 0u);
  EXPECT_EQ(g.neighbor_index(2, 1), 1u);
  EXPECT_EQ(g.neighbor_index(2, 3), 2u);
  EXPECT_EQ(g.neighbor_index(0, 3), g.n());
}

TEST(Orientation, ByDecreasingIdIsAcyclicAndComplete) {
  const Graph g = triangle_plus_pendant();
  const Orientation o = Orientation::by_decreasing_id(g);
  // Each edge oriented exactly once, from larger id to smaller.
  std::uint64_t directed = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    directed += o.outdeg(v);
    for (NodeId u : o.out(v)) EXPECT_GT(g.id(v), g.id(u));
  }
  EXPECT_EQ(directed, g.m());
}

TEST(Orientation, BetaConvention) {
  const Graph g = triangle_plus_pendant();
  const Orientation o = Orientation::by_decreasing_id(g);
  EXPECT_EQ(o.outdeg(0), 0u);
  EXPECT_EQ(o.beta(0), 1u);  // beta_v = max(1, outdeg)
}

TEST(Orientation, RandomCoversEachEdgeOnce) {
  const Graph g = triangle_plus_pendant();
  const Orientation o = Orientation::random(g, 7);
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      EXPECT_NE(o.has_out_edge(u, v), o.has_out_edge(v, u));
    }
  }
}

TEST(Orientation, BidirectedDoublesEdges) {
  const Graph g = triangle_plus_pendant();
  const Orientation o = Orientation::bidirected(g);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(o.outdeg(v), g.degree(v));
  }
}

TEST(Orientation, ExplicitListsValidated) {
  const Graph g = triangle_plus_pendant();
  // Edge {0,1} oriented both ways -> invalid.
  std::vector<std::vector<NodeId>> bad = {{1}, {0, 2}, {0, 3}, {}};
  EXPECT_THROW(Orientation(g, std::move(bad)), std::invalid_argument);
  std::vector<std::vector<NodeId>> good = {{1, 2}, {2}, {3}, {}};
  const Orientation o(g, std::move(good));
  EXPECT_EQ(o.outdeg(0), 2u);
  EXPECT_EQ(o.max_beta(), 2u);
}

TEST(Subgraph, InducedTriangle) {
  const Graph g = triangle_plus_pendant();
  const std::vector<NodeId> nodes = {0, 1, 2};
  const Subgraph s = induced_subgraph(g, nodes);
  EXPECT_EQ(s.graph.n(), 3u);
  EXPECT_EQ(s.graph.m(), 3u);
  EXPECT_EQ(s.from_parent[3], g.n());
  EXPECT_EQ(s.to_parent[s.from_parent[1]], 1u);
}

TEST(Subgraph, InheritsIds) {
  Graph g = triangle_plus_pendant();
  g.set_ids({100, 200, 300, 400});
  const std::vector<NodeId> nodes = {1, 3};
  const Subgraph s = induced_subgraph(g, nodes);
  EXPECT_EQ(s.graph.n(), 2u);
  EXPECT_EQ(s.graph.m(), 0u);
  EXPECT_EQ(s.graph.id(s.from_parent[3]), 400u);
}

TEST(Subgraph, RejectsDuplicates) {
  const Graph g = triangle_plus_pendant();
  const std::vector<NodeId> nodes = {0, 0};
  EXPECT_THROW(induced_subgraph(g, nodes), std::invalid_argument);
}

TEST(DegreeStats, Histogram) {
  const Graph g = triangle_plus_pendant();
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 3u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.histogram[1], 1u);
  EXPECT_EQ(s.histogram[2], 2u);
  EXPECT_EQ(s.histogram[3], 1u);
}

TEST(GraphBuilder, EdgeCountIsRawUniqueEdgeCountIsDeduped) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge, reversed
  b.add_edge(0, 1);  // exact duplicate
  b.add_edge(2, 3);
  // edge_count() is the raw add_edge tally — a duplicate-heavy stream
  // shows the gap between what was fed in and what build() will keep.
  EXPECT_EQ(b.edge_count(), 4u);
  EXPECT_EQ(b.unique_edge_count(), 2u);
  const Graph g = b.build();
  EXPECT_EQ(g.m(), 2u);
  EXPECT_EQ(b.unique_edge_count(), 2u);  // build() left the builder intact
}

// ---- Zero-copy views (the mmap-backed corpus read path) ---------------

TEST(GraphView, ReadsExternalStorageWithoutCopying) {
  // CSR of the triangle-plus-pendant graph, owned by the test.
  const std::vector<std::uint64_t> offsets = {0, 2, 4, 7, 8};
  const std::vector<NodeId> adj = {1, 2, 0, 2, 0, 1, 3, 2};
  const Graph g = Graph::view(offsets, adj, {}, 3, 3, nullptr);
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 4u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_TRUE(g.has_edge(2, 3));
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(g.id(v), v);  // identity
  // Zero-copy: the view reads the test's vectors directly.
  EXPECT_EQ(g.neighbors(0).data(), adj.data());
}

TEST(GraphView, PinKeepsBackingStorageAlive) {
  auto backing = std::make_shared<std::vector<std::uint64_t>>(
      std::vector<std::uint64_t>{0, 1, 2});
  const std::vector<NodeId> adj = {1, 0};
  Graph g;
  {
    Graph view = Graph::view(*backing, adj, {}, 1, 1, backing);
    g = view;  // the copy must keep the pin
  }
  EXPECT_GE(backing.use_count(), 2);  // test + the surviving copy
  EXPECT_EQ(g.n(), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

TEST(GraphView, RejectsInconsistentSpans) {
  const std::vector<std::uint64_t> offsets = {0, 1, 2};
  const std::vector<NodeId> adj = {1, 0};
  const std::vector<std::uint64_t> bad_off = {0, 1, 7};
  EXPECT_THROW(Graph::view(bad_off, adj, {}, 1, 1, nullptr),
               std::invalid_argument);
  const std::vector<std::uint64_t> ids = {5};  // 1 id for 2 nodes
  EXPECT_THROW(Graph::view(offsets, adj, ids, 1, 5, nullptr),
               std::invalid_argument);
}

TEST(GraphView, SetIdsWorksOnViews) {
  const std::vector<std::uint64_t> offsets = {0, 1, 2};
  const std::vector<NodeId> adj = {1, 0};
  Graph g = Graph::view(offsets, adj, {}, 1, 1, nullptr);
  g.set_ids({10, 20});
  EXPECT_EQ(g.id(0), 10u);
  EXPECT_EQ(g.max_id(), 20u);
  const Graph copy = g;  // owned ids must rebind on copy
  EXPECT_EQ(copy.id(1), 20u);
  EXPECT_EQ(copy.neighbors(0).data(), adj.data());  // topology still external
}

TEST(Graph, CopyRebindsSpansToOwnedStorage) {
  Graph g = triangle_plus_pendant();
  Graph copy = g;
  // The copy must read its own vectors, not the source's.
  EXPECT_NE(copy.neighbors(0).data(), g.neighbors(0).data());
  g = Graph();  // destroying the source must not disturb the copy
  EXPECT_EQ(copy.n(), 4u);
  EXPECT_EQ(copy.degree(2), 3u);
  EXPECT_TRUE(copy.has_edge(0, 1));
}

TEST(Graph, SelfAssignmentIsSafe) {
  Graph g = triangle_plus_pendant();
  g = *&g;
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 4u);
}

}  // namespace
}  // namespace ldc
