#include "ldc/graph/graph.hpp"

#include <gtest/gtest.h>

#include "ldc/graph/builder.hpp"
#include "ldc/graph/orientation.hpp"
#include "ldc/graph/stats.hpp"
#include "ldc/graph/subgraph.hpp"

namespace ldc {
namespace {

Graph triangle_plus_pendant() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(GraphBuilder, BasicTopology) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_TRUE(check_graph(g));
}

TEST(GraphBuilder, DeduplicatesEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.m(), 1u);
}

TEST(GraphBuilder, RejectsSelfLoopAndBadNode) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 3), std::out_of_range);
}

TEST(Graph, DefaultIdsAreIndices) {
  const Graph g = triangle_plus_pendant();
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(g.id(v), v);
  EXPECT_EQ(g.max_id(), 3u);
}

TEST(Graph, SetIdsValidatesUniqueness) {
  Graph g = triangle_plus_pendant();
  EXPECT_THROW(g.set_ids({1, 2, 3}), std::invalid_argument);   // wrong size
  EXPECT_THROW(g.set_ids({1, 2, 3, 3}), std::invalid_argument);  // dup
  g.set_ids({10, 20, 30, 40});
  EXPECT_EQ(g.id(2), 30u);
  EXPECT_EQ(g.max_id(), 40u);
}

TEST(Graph, NeighborIndex) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.neighbor_index(2, 0), 0u);
  EXPECT_EQ(g.neighbor_index(2, 1), 1u);
  EXPECT_EQ(g.neighbor_index(2, 3), 2u);
  EXPECT_EQ(g.neighbor_index(0, 3), g.n());
}

TEST(Orientation, ByDecreasingIdIsAcyclicAndComplete) {
  const Graph g = triangle_plus_pendant();
  const Orientation o = Orientation::by_decreasing_id(g);
  // Each edge oriented exactly once, from larger id to smaller.
  std::uint64_t directed = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    directed += o.outdeg(v);
    for (NodeId u : o.out(v)) EXPECT_GT(g.id(v), g.id(u));
  }
  EXPECT_EQ(directed, g.m());
}

TEST(Orientation, BetaConvention) {
  const Graph g = triangle_plus_pendant();
  const Orientation o = Orientation::by_decreasing_id(g);
  EXPECT_EQ(o.outdeg(0), 0u);
  EXPECT_EQ(o.beta(0), 1u);  // beta_v = max(1, outdeg)
}

TEST(Orientation, RandomCoversEachEdgeOnce) {
  const Graph g = triangle_plus_pendant();
  const Orientation o = Orientation::random(g, 7);
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      EXPECT_NE(o.has_out_edge(u, v), o.has_out_edge(v, u));
    }
  }
}

TEST(Orientation, BidirectedDoublesEdges) {
  const Graph g = triangle_plus_pendant();
  const Orientation o = Orientation::bidirected(g);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(o.outdeg(v), g.degree(v));
  }
}

TEST(Orientation, ExplicitListsValidated) {
  const Graph g = triangle_plus_pendant();
  // Edge {0,1} oriented both ways -> invalid.
  std::vector<std::vector<NodeId>> bad = {{1}, {0, 2}, {0, 3}, {}};
  EXPECT_THROW(Orientation(g, std::move(bad)), std::invalid_argument);
  std::vector<std::vector<NodeId>> good = {{1, 2}, {2}, {3}, {}};
  const Orientation o(g, std::move(good));
  EXPECT_EQ(o.outdeg(0), 2u);
  EXPECT_EQ(o.max_beta(), 2u);
}

TEST(Subgraph, InducedTriangle) {
  const Graph g = triangle_plus_pendant();
  const std::vector<NodeId> nodes = {0, 1, 2};
  const Subgraph s = induced_subgraph(g, nodes);
  EXPECT_EQ(s.graph.n(), 3u);
  EXPECT_EQ(s.graph.m(), 3u);
  EXPECT_EQ(s.from_parent[3], g.n());
  EXPECT_EQ(s.to_parent[s.from_parent[1]], 1u);
}

TEST(Subgraph, InheritsIds) {
  Graph g = triangle_plus_pendant();
  g.set_ids({100, 200, 300, 400});
  const std::vector<NodeId> nodes = {1, 3};
  const Subgraph s = induced_subgraph(g, nodes);
  EXPECT_EQ(s.graph.n(), 2u);
  EXPECT_EQ(s.graph.m(), 0u);
  EXPECT_EQ(s.graph.id(s.from_parent[3]), 400u);
}

TEST(Subgraph, RejectsDuplicates) {
  const Graph g = triangle_plus_pendant();
  const std::vector<NodeId> nodes = {0, 0};
  EXPECT_THROW(induced_subgraph(g, nodes), std::invalid_argument);
}

TEST(DegreeStats, Histogram) {
  const Graph g = triangle_plus_pendant();
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 3u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.histogram[1], 1u);
  EXPECT_EQ(s.histogram[2], 2u);
  EXPECT_EQ(s.histogram[3], 1u);
}

}  // namespace
}  // namespace ldc
