#include <gtest/gtest.h>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/builder.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/sequential/euler.hpp"
#include "ldc/sequential/list_arbdefective.hpp"
#include "ldc/sequential/list_defective.hpp"
#include "ldc/support/math.hpp"

namespace ldc {
namespace {

TEST(Euler, OutdegreeAtMostHalfCeil) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::gnp(80, 0.08, seed);
    const Orientation o = sequential::euler_orientation(g);
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_LE(o.outdeg(v), ceil_div(g.degree(v), 2)) << "node " << v;
    }
  }
}

TEST(Euler, OddDegreeGraph) {
  const Graph g = gen::clique(4);  // all degrees 3 (odd)
  const Orientation o = sequential::euler_orientation(g);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_LE(o.outdeg(v), 2u);
  // Every edge oriented exactly once.
  std::uint64_t total = 0;
  for (NodeId v = 0; v < g.n(); ++v) total += o.outdeg(v);
  EXPECT_EQ(total, g.m());
}

TEST(Euler, DisconnectedComponents) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();
  const Orientation o = sequential::euler_orientation(g);
  std::uint64_t total = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    total += o.outdeg(v);
    EXPECT_LE(o.outdeg(v), ceil_div(g.degree(v), 2));
  }
  EXPECT_EQ(total, g.m());
}

TEST(SequentialLdc, ConditionPredicates) {
  const Graph g = gen::clique(4);  // degrees 3
  // Lists of weight 4 > 3: condition holds.
  LdcInstance ok = uniform_defective_instance(g, 4, 0);
  EXPECT_TRUE(sequential::satisfies_ldc_condition(ok));
  // Weight 3 = deg: fails.
  LdcInstance bad = uniform_defective_instance(g, 3, 0);
  EXPECT_FALSE(sequential::satisfies_ldc_condition(bad));
  // Arb condition: sum (2d+1): with d=1 and 1 color, weight 3 = deg fails;
  // with 2 colors weight 6 > 3 holds.
  LdcInstance arb1 = uniform_defective_instance(g, 1, 1);
  EXPECT_FALSE(sequential::satisfies_arb_condition(arb1));
  LdcInstance arb2 = uniform_defective_instance(g, 2, 1);
  EXPECT_TRUE(sequential::satisfies_arb_condition(arb2));
}

TEST(SequentialLdc, SolvesProperColoringOnClique) {
  const Graph g = gen::clique(8);
  const LdcInstance inst = delta_plus_one_instance(g);
  auto phi = sequential::solve_list_defective(inst);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(validate_ldc(inst, *phi).ok);
  EXPECT_TRUE(validate_proper(g, *phi).ok);
}

TEST(SequentialLdc, SolvesAtTheExistenceThreshold) {
  // K_{D+1} with c colors and defect d such that c(d+1) = D+1 > D: the
  // tight sufficient condition of Lemma A.1.
  const std::uint32_t d = 2, c = 3;
  const Graph g = gen::clique(c * (d + 1));  // Delta = c(d+1)-1
  const LdcInstance inst = uniform_defective_instance(g, c, d);
  ASSERT_TRUE(sequential::satisfies_ldc_condition(inst));
  auto phi = sequential::solve_list_defective(inst);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(validate_ldc(inst, *phi).ok);
}

TEST(SequentialLdc, StepBoundFromPotential) {
  const Graph g = gen::gnp(60, 0.15, 3);
  const LdcInstance inst = delta_plus_one_instance(g);
  sequential::RecolorStats stats;
  auto phi = sequential::solve_list_defective(inst, &stats);
  ASSERT_TRUE(phi.has_value());
  // Lemma A.1: steps bounded by the initial potential <= 3|E| + n.
  EXPECT_LE(stats.steps, 3 * g.m() + g.n());
}

TEST(SequentialLdc, HeterogeneousLists) {
  // Random per-node lists with random defects meeting the weight condition.
  const Graph g = gen::random_regular(50, 4, 9);
  RandomLdcParams p;
  p.color_space = 64;
  p.one_plus_nu = 1.0;  // weight condition sum (d+1) >= deg * kappa
  p.kappa = 1.5;
  p.max_defect = 2;
  p.seed = 12;
  const LdcInstance inst = random_weighted_instance(g, p);
  ASSERT_TRUE(sequential::satisfies_ldc_condition(inst));
  auto phi = sequential::solve_list_defective(inst);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(validate_ldc(inst, *phi).ok);
}

TEST(SequentialLdc, RecoversFromCorruptedInitialColoring) {
  const Graph g = gen::clique(6);
  const LdcInstance inst = delta_plus_one_instance(g);
  const Coloring corrupted(g.n(), 0);  // everyone color 0
  auto phi = sequential::solve_list_defective(inst, nullptr, &corrupted);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(validate_ldc(inst, *phi).ok);
}

TEST(SequentialLdc, ReturnsNulloptWhenInfeasible) {
  // K_3, one color, defect 0: impossible.
  const Graph g = gen::clique(3);
  const LdcInstance inst = uniform_defective_instance(g, 1, 0);
  EXPECT_FALSE(sequential::solve_list_defective(inst).has_value());
}

TEST(SequentialArb, SolvesAtArbThreshold) {
  // Lemma A.2 condition: c(2d+1) > Delta. K_6 with c=2, d=1: 2*3=6 > 5.
  const Graph g = gen::clique(6);
  const LdcInstance inst = uniform_defective_instance(g, 2, 1);
  ASSERT_TRUE(sequential::satisfies_arb_condition(inst));
  auto out = sequential::solve_list_arbdefective(inst);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(validate_arbdefective(inst, *out).ok);
}

TEST(SequentialArb, RandomGraphs) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = gen::gnp(40, 0.2, seed);
    RandomLdcParams p;
    p.color_space = 128;
    p.one_plus_nu = 1.0;
    p.kappa = 2.0;  // sum (d+1) >= 2 deg  =>  sum (2d+1) > deg
    p.max_defect = 3;
    p.seed = seed + 100;
    const LdcInstance inst = random_weighted_instance(g, p);
    ASSERT_TRUE(sequential::satisfies_arb_condition(inst));
    auto out = sequential::solve_list_arbdefective(inst);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(validate_arbdefective(inst, *out).ok);
  }
}

TEST(SequentialArb, OrientationCoversAllEdges) {
  const Graph g = gen::clique(6);
  const LdcInstance inst = uniform_defective_instance(g, 2, 1);
  auto out = sequential::solve_list_arbdefective(inst);
  ASSERT_TRUE(out.has_value());
  std::uint64_t total = 0;
  for (NodeId v = 0; v < g.n(); ++v) total += out->orientation.outdeg(v);
  EXPECT_EQ(total, g.m());
}

}  // namespace
}  // namespace ldc
