#include "ldc/support/packed_palette.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "ldc/coloring/instance.hpp"
#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

TEST(PackedPalette, InsertContainsClear) {
  PackedPalette p;
  p.reset(130);
  EXPECT_FALSE(p.contains(0));
  p.insert(0);
  p.insert(63);
  p.insert(64);
  p.insert(129);
  p.insert(200);  // out of universe: ignored, not UB
  EXPECT_TRUE(p.contains(0));
  EXPECT_TRUE(p.contains(63));
  EXPECT_TRUE(p.contains(64));
  EXPECT_TRUE(p.contains(129));
  EXPECT_FALSE(p.contains(1));
  EXPECT_FALSE(p.contains(128));
  p.clear();
  for (std::uint64_t c : {0ULL, 63ULL, 64ULL, 129ULL}) {
    EXPECT_FALSE(p.contains(c)) << c;
  }
}

TEST(PackedPalette, InsertWindowClampsAndSpansWords) {
  PackedPalette p;
  p.reset(200);
  p.insert_window(2, 5);  // clamps at 0: marks [0, 7]
  for (std::uint64_t c = 0; c <= 7; ++c) EXPECT_TRUE(p.contains(c)) << c;
  EXPECT_FALSE(p.contains(8));
  p.clear();
  p.insert_window(64, 70);  // spans three words and both universe edges
  for (std::uint64_t c = 0; c <= 134; ++c) EXPECT_TRUE(p.contains(c)) << c;
  EXPECT_FALSE(p.contains(135));
  p.clear();
  p.insert_window(198, 10);  // clamps at the top: [188, 199]
  EXPECT_FALSE(p.contains(187));
  for (std::uint64_t c = 188; c <= 199; ++c) EXPECT_TRUE(p.contains(c)) << c;
}

TEST(PackedPalette, FirstAbsentListScan) {
  PackedPalette p;
  p.reset(64);
  const std::vector<Color> cand = {3, 5, 9, 11};
  EXPECT_EQ(p.first_absent(std::span<const Color>(cand)), 3u);
  p.insert(3);
  p.insert(5);
  EXPECT_EQ(p.first_absent(std::span<const Color>(cand)), 9u);
  p.insert(9);
  p.insert(11);
  EXPECT_EQ(p.first_absent(std::span<const Color>(cand)),
            PackedPalette::npos);
}

// Randomized equivalence: the packed scan must pick exactly the color a
// reference std::set-based scan picks, over many universes and densities.
TEST(PackedPalette, RandomizedMatchesReferenceScan) {
  const Prf prf(0xfeedULL);
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    const std::uint64_t universe =
        1 + prf.at_below(hash_combine(trial, 1), 300);
    PackedPalette packed;
    packed.reset(universe);
    std::set<std::uint64_t> reference;
    const std::uint64_t inserts = prf.at_below(hash_combine(trial, 2), 64);
    for (std::uint64_t i = 0; i < inserts; ++i) {
      const std::uint64_t c =
          prf.at_below(hash_combine(trial, 100 + i), universe + 10);
      const std::uint64_t g = prf.at_below(hash_combine(trial, 200 + i), 4);
      packed.insert_window(c, g);
      for (std::uint64_t y = (c > g ? c - g : 0);
           y <= c + g && y < universe; ++y) {
        reference.insert(y);
      }
    }
    // Membership agrees everywhere.
    for (std::uint64_t c = 0; c < universe; ++c) {
      ASSERT_EQ(packed.contains(c), reference.count(c) != 0)
          << "trial " << trial << " color " << c;
    }
    // first_absent over a sorted candidate list agrees with the reference.
    std::vector<Color> cand;
    for (std::uint64_t c = prf.at_below(hash_combine(trial, 3), 7);
         c < universe; c += 1 + prf.at_below(hash_combine(trial, 4), 5)) {
      cand.push_back(static_cast<Color>(c));
    }
    std::uint64_t want = PackedPalette::npos;
    for (Color c : cand) {
      if (reference.count(c) == 0) {
        want = c;
        break;
      }
    }
    ASSERT_EQ(packed.first_absent(std::span<const Color>(cand)), want)
        << "trial " << trial;
  }
}

// Word-parallel scan vs. the element-wise scan: filling the candidate
// palette with ascending inserts (its documented precondition) must give
// the same smallest-absent answer.
TEST(PackedPalette, WordParallelMatchesElementScan) {
  const Prf prf(0xc0ffeeULL);
  for (std::uint64_t trial = 0; trial < 100; ++trial) {
    const std::uint64_t universe =
        65 + prf.at_below(hash_combine(trial, 1), 200);
    PackedPalette forbid;
    forbid.reset(universe);
    const std::uint64_t inserts = prf.at_below(hash_combine(trial, 2), 96);
    for (std::uint64_t i = 0; i < inserts; ++i) {
      forbid.insert(prf.at_below(hash_combine(trial, 10 + i), universe));
    }
    std::vector<Color> cand;
    for (std::uint64_t c = prf.at_below(hash_combine(trial, 3), 9);
         c < universe; c += 1 + prf.at_below(hash_combine(trial, 4), 3)) {
      cand.push_back(static_cast<Color>(c));
    }
    PackedPalette cand_set;
    cand_set.reset(universe);
    for (Color c : cand) cand_set.insert(c);  // ascending inserts
    ASSERT_EQ(forbid.first_absent(cand_set),
              forbid.first_absent(std::span<const Color>(cand)))
        << "trial " << trial;
  }
}

TEST(PackedPalette, ResetGrowsAndShrinksUniverse) {
  PackedPalette p;
  p.reset(10);
  p.insert(5);
  p.reset(500);  // grow: old marks gone
  EXPECT_FALSE(p.contains(5));
  p.insert(499);
  EXPECT_TRUE(p.contains(499));
  p.reset(10);  // shrink: 499 now out of universe
  EXPECT_FALSE(p.contains(499));
  EXPECT_FALSE(p.contains(5));
}

}  // namespace
}  // namespace ldc
