// Edge cases across the whole stack: degenerate graphs (singletons,
// stars, no edges), extreme instances (single-color lists, huge defects),
// and boundary parameters. These are the inputs that break libraries in
// the wild.
#include <gtest/gtest.h>

#include "ldc/baselines/greedy.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/graph/builder.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/repair/repair.hpp"
#include "ldc/sequential/euler.hpp"
#include "ldc/sequential/list_defective.hpp"

namespace ldc {
namespace {

Graph edgeless(std::uint32_t n) { return GraphBuilder(n).build(); }

TEST(EdgeCases, SingleNodeGraph) {
  const Graph g = edgeless(1);
  const LdcInstance inst = delta_plus_one_instance(g);
  EXPECT_EQ(inst.color_space, 1u);
  Network net(g);
  const auto res = d1lc::color(net, inst);
  ASSERT_TRUE(res.valid);
  EXPECT_EQ(res.phi[0], 0u);
}

TEST(EdgeCases, EdgelessGraphManyNodes) {
  const Graph g = edgeless(50);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = d1lc::color(net, inst);
  ASSERT_TRUE(res.valid);
  for (Color c : res.phi) EXPECT_EQ(c, 0u);
}

TEST(EdgeCases, StarGraph) {
  // Hub of degree 49; leaves of degree 1.
  const Graph g = gen::complete_bipartite(1, 49);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = d1lc::color(net, inst);
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
  // Two colors suffice and the pipeline should not use more than Delta+1.
  EXPECT_LE(colors_used(res.phi), 50u);
}

TEST(EdgeCases, TwoNodeGraph) {
  const Graph g = gen::path(2);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = d1lc::color(net, inst);
  ASSERT_TRUE(res.valid);
  EXPECT_NE(res.phi[0], res.phi[1]);
}

TEST(EdgeCases, SingleColorListsWithGiantDefect) {
  // Everyone must take color 0; defect Delta makes it valid.
  const Graph g = gen::clique(6);
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = 1;
  inst.lists.resize(6);
  for (auto& l : inst.lists) {
    l.colors = {0};
    l.defects = {5};
  }
  const auto phi = sequential::solve_list_defective(inst);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(validate_ldc(inst, *phi).ok);
  Network net(g);
  const auto rep = repair::repair(net, inst, Coloring(6, kUncolored));
  ASSERT_TRUE(rep.success);
}

TEST(EdgeCases, LinialOnCompleteBipartite) {
  Graph g = gen::complete_bipartite(8, 8);
  gen::scramble_ids(g, 1 << 20, 4);
  Network net(g);
  const auto res = linial::color(net);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
}

TEST(EdgeCases, LubyOnStar) {
  const Graph g = gen::complete_bipartite(1, 30);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = baselines::luby_list_coloring(net, inst);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
}

TEST(EdgeCases, GreedyOnEdgeless) {
  const Graph g = edgeless(10);
  const LdcInstance inst = delta_plus_one_instance(g);
  const auto phi = baselines::greedy_list_coloring(inst);
  ASSERT_TRUE(phi.has_value());
}

TEST(EdgeCases, EulerOnEdgeless) {
  const Graph g = edgeless(5);
  const Orientation o = sequential::euler_orientation(g);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(o.outdeg(v), 0u);
}

TEST(EdgeCases, PathGraphsOfAllSmallSizes) {
  for (std::uint32_t n = 2; n <= 8; ++n) {
    Graph g = gen::path(n);
    const LdcInstance inst = delta_plus_one_instance(g);
    Network net(g);
    const auto res = d1lc::color(net, inst);
    ASSERT_TRUE(res.valid) << "n=" << n;
    EXPECT_TRUE(validate_proper(g, res.phi).ok) << "n=" << n;
  }
}

TEST(EdgeCases, HighDegreeHubWithLongTail) {
  // Lollipop-ish: a clique attached to a long path — mixed degrees.
  GraphBuilder b(40);
  for (std::uint32_t u = 0; u < 8; ++u) {
    for (std::uint32_t v = u + 1; v < 8; ++v) b.add_edge(u, v);
  }
  for (std::uint32_t v = 7; v + 1 < 40; ++v) b.add_edge(v, v + 1);
  Graph g = b.build();
  gen::scramble_ids(g, 1 << 18, 9);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = d1lc::color(net, inst);
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
}

TEST(EdgeCases, VarintBoundaries) {
  BitWriter w;
  for (int bits = 0; bits <= 63; ++bits) {
    w.write_varint((1ULL << bits) - 1);
    w.write_varint(1ULL << bits);
  }
  BitReader r(w);
  for (int bits = 0; bits <= 63; ++bits) {
    EXPECT_EQ(r.read_varint(), (1ULL << bits) - 1);
    EXPECT_EQ(r.read_varint(), 1ULL << bits);
  }
}

}  // namespace
}  // namespace ldc
