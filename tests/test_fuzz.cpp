// Monkey fuzzing: random graph family x random instance x random solver
// options, many iterations. The contract under test: the library either
// produces a *valid* coloring or throws a typed error (InfeasibleError /
// std::invalid_argument) — it never returns an invalid coloring and never
// crashes. The protocol fuzz at the bottom extends the same contract to
// the serving frontend: mutated line-JSON and mid-request disconnects
// must never produce anything but typed error events (runs under the
// ASan CI job like the rest of this file).
#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/harness/json.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/multi_defect.hpp"
#include "ldc/oldc/two_phase.hpp"
#include "ldc/service/event_loop.hpp"
#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

Graph random_graph(SplitMix64& rng) {
  switch (rng.next_below(6)) {
    case 0: return gen::ring(3 + rng.next_below(60));
    case 1: return gen::clique(2 + rng.next_below(12));
    case 2: return gen::gnp(10 + rng.next_below(60),
                            0.02 + rng.next_double() * 0.3, rng.next());
    case 3: {
      std::uint32_t n = 10 + rng.next_below(60);
      std::uint32_t d = 2 + rng.next_below(6);
      if ((static_cast<std::uint64_t>(n) * d) % 2) ++n;
      return gen::random_regular(n, d, rng.next());
    }
    case 4: return gen::random_tree(2 + rng.next_below(60), rng.next());
    default: return gen::torus(3 + rng.next_below(5), 3 + rng.next_below(5));
  }
}

TEST(Fuzz, PipelineNeverReturnsInvalid) {
  SplitMix64 rng(0xf022);
  for (int iter = 0; iter < 25; ++iter) {
    Graph g = random_graph(rng);
    gen::scramble_ids(g, 1ULL << (16 + rng.next_below(16)), rng.next());
    const std::uint64_t space =
        (g.max_degree() + 1) * (1 + rng.next_below(8));
    const LdcInstance inst =
        space == g.max_degree() + 1
            ? delta_plus_one_instance(g)
            : degree_plus_one_instance(g, space, rng.next());
    d1lc::PipelineOptions opt;
    opt.reduction_levels = static_cast<std::uint32_t>(rng.next_below(4));
    opt.params.kprime = 4 + static_cast<std::uint32_t>(rng.next_below(28));
    opt.params.tau_cap = 2 + static_cast<std::uint32_t>(rng.next_below(18));
    opt.t13.q_factor = 0.5 + rng.next_double() * 4.0;
    Network net(g);
    try {
      const auto res = d1lc::color(net, inst, opt);
      EXPECT_TRUE(validate_proper(g, res.phi).ok) << "iter " << iter;
      EXPECT_TRUE(validate_membership(inst, res.phi).ok) << "iter " << iter;
    } catch (const InfeasibleError&) {
      // Acceptable typed failure (extreme random parameters).
    }
  }
}

TEST(Fuzz, OldcSolversNeverReturnInvalid) {
  SplitMix64 rng(0xf023);
  for (int iter = 0; iter < 25; ++iter) {
    Graph g = random_graph(rng);
    if (g.max_degree() == 0) continue;
    gen::scramble_ids(g, 1ULL << 20, rng.next());
    const Orientation orient = (rng.next() & 1)
                                   ? Orientation::by_decreasing_id(g)
                                   : Orientation::random(g, rng.next());
    RandomLdcParams p;
    p.color_space = 256 + rng.next_below(1 << 14);
    p.one_plus_nu = 2.0;
    p.kappa = 1.0 + rng.next_double() * 60.0;
    p.max_defect = static_cast<std::uint32_t>(
        rng.next_below(orient.max_beta() + 2));
    p.seed = rng.next();
    LdcInstance inst;
    try {
      inst = random_weighted_oriented_instance(g, orient, p);
    } catch (const std::invalid_argument&) {
      continue;  // color space too small for the drawn parameters
    }
    Network net(g);
    const auto lin = linial::color(net);
    try {
      if (rng.next() & 1) {
        oldc::MultiDefectInput in;
        in.inst = &inst;
        in.orientation = &orient;
        in.initial = &lin.phi;
        in.m = lin.palette;
        in.g = static_cast<std::uint32_t>(rng.next_below(3));
        const auto res = oldc::solve_multi_defect(net, in);
        EXPECT_TRUE(validate_oldc(inst, orient, res.phi, in.g).ok)
            << "iter " << iter;
      } else {
        oldc::TwoPhaseInput in;
        in.inst = &inst;
        in.orientation = &orient;
        in.initial = &lin.phi;
        in.m = lin.palette;
        const auto res = oldc::solve_two_phase(net, in);
        EXPECT_TRUE(validate_oldc(inst, orient, res.phi).ok)
            << "iter " << iter;
      }
    } catch (const InfeasibleError&) {
      // Acceptable typed failure.
    }
  }
}

// ---------------------------------------------------------------------------
// Protocol fuzz: the event-loop frontend vs hostile line-JSON.

void fuzz_send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // server closed the session (e.g. outbuf overflow): fine
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string fuzz_read_to_eof(int fd) {
  std::string stream;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    stream.append(buf, static_cast<std::size_t>(n));
  }
  return stream;
}

/// One seed line from the pool of well-formed requests (plus a tiny
/// valid submit), before mutation.
std::string fuzz_seed_line(SplitMix64& rng) {
  switch (rng.next_below(8)) {
    case 0:
      return "{\"op\":\"submit\",\"job\":{\"algorithm\":\"greedy\","
             "\"graph\":{\"family\":\"ring\",\"n\":8}}}";
    case 1: return "{\"op\":\"cancel\",\"id\":" +
                   std::to_string(rng.next_below(8)) + "}";
    case 2: return "{\"op\":\"pause\"}";
    case 3: return "{\"op\":\"resume\"}";
    case 4: return "{\"op\":\"stats\",\"counters_only\":true}";
    case 5: return "{\"op\":\"drain\"}";
    case 6: return "{\"op\":\"" + std::string(1 + rng.next_below(12), 'x') +
                   "\"}";
    default: return "{\"op\":12,\"job\":null}";
  }
}

/// Seeded mutator: truncation, splicing two lines together, byte
/// injection, duplication, and overlong lines (the session's line limit
/// is shrunk so the overlong path actually triggers).
std::string fuzz_mutate(std::string line, SplitMix64& rng) {
  switch (rng.next_below(6)) {
    case 0:  // truncate mid-request
      if (!line.empty()) line.resize(rng.next_below(line.size()));
      return line;
    case 1:  // splice: two requests interleaved on one line
      return line + fuzz_seed_line(rng);
    case 2: {  // inject random bytes (including NUL and high bits)
      for (int i = 0; i < 4; ++i) {
        const char c = static_cast<char>(rng.next_below(256));
        if (c == '\n' || c == '\r') continue;
        line.insert(rng.next_below(line.size() + 1), 1, c);
      }
      return line;
    }
    case 3:  // overlong: blows past max_line_bytes
      return line + std::string(600, 'a');
    case 4:  // leading garbage
      return std::string("\t \x01garbage") + line;
    default:
      return line;  // pass through unmutated
  }
}

TEST(Fuzz, ProtocolSessionsSurviveHostileBytes) {
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 32;
  service::EventLoopOptions opts;
  opts.session_limits.max_line_bytes = 256;  // overlong path reachable
  service::EventLoopServer server(cfg, opts);
  std::thread loop([&] { server.run(); });

  SplitMix64 rng(0xf024);
  for (int iter = 0; iter < 30; ++iter) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server.adopt(sv[0]);

    std::string script;
    const std::size_t lines = 3 + rng.next_below(12);
    for (std::size_t i = 0; i < lines; ++i) {
      script += fuzz_mutate(fuzz_seed_line(rng), rng);
      script.push_back('\n');
    }
    const bool disconnect = rng.next_below(3) == 0;
    if (disconnect) {
      // Mid-request disconnect: leave a torn line, never read a byte.
      script += "{\"op\":\"sub";
      fuzz_send_all(sv[1], script);
      ::close(sv[1]);
      continue;
    }
    script += "{\"op\":\"shutdown\"}\n";
    fuzz_send_all(sv[1], script);
    const std::string stream = fuzz_read_to_eof(sv[1]);
    ::close(sv[1]);

    // Every response byte is well-formed line-JSON carrying an event —
    // hostile input yields typed error events, never garbage output.
    std::size_t pos = 0, nl;
    std::size_t parsed = 0;
    while ((nl = stream.find('\n', pos)) != std::string::npos) {
      const std::string line = stream.substr(pos, nl - pos);
      pos = nl + 1;
      harness::Json ev;
      ASSERT_NO_THROW(ev = harness::Json::parse_line(line))
          << "iter " << iter << ": unparsable response: " << line;
      EXPECT_NE(ev.find("event"), nullptr) << "iter " << iter;
      ++parsed;
    }
    EXPECT_EQ(pos, stream.size()) << "iter " << iter
                                  << ": torn trailing response bytes";
    EXPECT_GT(parsed, 0u) << "iter " << iter;
  }

  // The server is still fully functional after every hostile session.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  server.adopt(sv[0]);
  fuzz_send_all(sv[1],
                "{\"op\":\"submit\",\"job\":{\"algorithm\":\"greedy\","
                "\"graph\":{\"family\":\"ring\",\"n\":8}}}\n"
                "{\"op\":\"drain\"}\n{\"op\":\"shutdown\"}\n");
  const std::string stream = fuzz_read_to_eof(sv[1]);
  ::close(sv[1]);
  EXPECT_NE(stream.find("\"event\":\"admitted\""), std::string::npos);
  EXPECT_NE(stream.find("\"event\":\"result\""), std::string::npos);
  EXPECT_NE(stream.find("\"event\":\"bye\""), std::string::npos);

  server.stop();
  loop.join();
}

}  // namespace
}  // namespace ldc
