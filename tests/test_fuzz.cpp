// Monkey fuzzing: random graph family x random instance x random solver
// options, many iterations. The contract under test: the library either
// produces a *valid* coloring or throws a typed error (InfeasibleError /
// std::invalid_argument) — it never returns an invalid coloring and never
// crashes.
#include <gtest/gtest.h>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/multi_defect.hpp"
#include "ldc/oldc/two_phase.hpp"
#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

Graph random_graph(SplitMix64& rng) {
  switch (rng.next_below(6)) {
    case 0: return gen::ring(3 + rng.next_below(60));
    case 1: return gen::clique(2 + rng.next_below(12));
    case 2: return gen::gnp(10 + rng.next_below(60),
                            0.02 + rng.next_double() * 0.3, rng.next());
    case 3: {
      std::uint32_t n = 10 + rng.next_below(60);
      std::uint32_t d = 2 + rng.next_below(6);
      if ((static_cast<std::uint64_t>(n) * d) % 2) ++n;
      return gen::random_regular(n, d, rng.next());
    }
    case 4: return gen::random_tree(2 + rng.next_below(60), rng.next());
    default: return gen::torus(3 + rng.next_below(5), 3 + rng.next_below(5));
  }
}

TEST(Fuzz, PipelineNeverReturnsInvalid) {
  SplitMix64 rng(0xf022);
  for (int iter = 0; iter < 25; ++iter) {
    Graph g = random_graph(rng);
    gen::scramble_ids(g, 1ULL << (16 + rng.next_below(16)), rng.next());
    const std::uint64_t space =
        (g.max_degree() + 1) * (1 + rng.next_below(8));
    const LdcInstance inst =
        space == g.max_degree() + 1
            ? delta_plus_one_instance(g)
            : degree_plus_one_instance(g, space, rng.next());
    d1lc::PipelineOptions opt;
    opt.reduction_levels = static_cast<std::uint32_t>(rng.next_below(4));
    opt.params.kprime = 4 + static_cast<std::uint32_t>(rng.next_below(28));
    opt.params.tau_cap = 2 + static_cast<std::uint32_t>(rng.next_below(18));
    opt.t13.q_factor = 0.5 + rng.next_double() * 4.0;
    Network net(g);
    try {
      const auto res = d1lc::color(net, inst, opt);
      EXPECT_TRUE(validate_proper(g, res.phi).ok) << "iter " << iter;
      EXPECT_TRUE(validate_membership(inst, res.phi).ok) << "iter " << iter;
    } catch (const InfeasibleError&) {
      // Acceptable typed failure (extreme random parameters).
    }
  }
}

TEST(Fuzz, OldcSolversNeverReturnInvalid) {
  SplitMix64 rng(0xf023);
  for (int iter = 0; iter < 25; ++iter) {
    Graph g = random_graph(rng);
    if (g.max_degree() == 0) continue;
    gen::scramble_ids(g, 1ULL << 20, rng.next());
    const Orientation orient = (rng.next() & 1)
                                   ? Orientation::by_decreasing_id(g)
                                   : Orientation::random(g, rng.next());
    RandomLdcParams p;
    p.color_space = 256 + rng.next_below(1 << 14);
    p.one_plus_nu = 2.0;
    p.kappa = 1.0 + rng.next_double() * 60.0;
    p.max_defect = static_cast<std::uint32_t>(
        rng.next_below(orient.max_beta() + 2));
    p.seed = rng.next();
    LdcInstance inst;
    try {
      inst = random_weighted_oriented_instance(g, orient, p);
    } catch (const std::invalid_argument&) {
      continue;  // color space too small for the drawn parameters
    }
    Network net(g);
    const auto lin = linial::color(net);
    try {
      if (rng.next() & 1) {
        oldc::MultiDefectInput in;
        in.inst = &inst;
        in.orientation = &orient;
        in.initial = &lin.phi;
        in.m = lin.palette;
        in.g = static_cast<std::uint32_t>(rng.next_below(3));
        const auto res = oldc::solve_multi_defect(net, in);
        EXPECT_TRUE(validate_oldc(inst, orient, res.phi, in.g).ok)
            << "iter " << iter;
      } else {
        oldc::TwoPhaseInput in;
        in.inst = &inst;
        in.orientation = &orient;
        in.initial = &lin.phi;
        in.m = lin.palette;
        const auto res = oldc::solve_two_phase(net, in);
        EXPECT_TRUE(validate_oldc(inst, orient, res.phi).ok)
            << "iter " << iter;
      }
    } catch (const InfeasibleError&) {
      // Acceptable typed failure.
    }
  }
}

}  // namespace
}  // namespace ldc
