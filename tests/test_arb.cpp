#include <gtest/gtest.h>

#include "ldc/arb/beg_arbdefective.hpp"
#include "ldc/arb/list_arbdefective.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"

namespace ldc {
namespace {

TEST(Arbdefective, RespectsArbdefectBound) {
  const Graph g = gen::random_regular(80, 12, 1);
  for (std::uint32_t d : {1u, 2u, 5u}) {
    Network net(g);
    arb::ArbdefectiveOptions opt;
    opt.defect = d;
    opt.colors = g.max_degree() / (d + 1) + 1;
    const auto res = arb::arbdefective_color(net, opt);
    ASSERT_TRUE(res.success) << "d=" << d;
    // Every node: at most d same-colored out-neighbors.
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_LT(res.phi[v], opt.colors);
      std::uint32_t same = 0;
      for (NodeId u : res.orientation.out(v)) {
        if (res.phi[u] == res.phi[v]) ++same;
      }
      EXPECT_LE(same, d) << "node " << v << " d=" << d;
    }
  }
}

TEST(Arbdefective, OrientationCoversAllEdges) {
  const Graph g = gen::gnp(60, 0.15, 2);
  Network net(g);
  arb::ArbdefectiveOptions opt;
  opt.defect = 2;
  opt.colors = g.max_degree() / 3 + 1;
  const auto res = arb::arbdefective_color(net, opt);
  ASSERT_TRUE(res.success);
  std::uint64_t total = 0;
  for (NodeId v = 0; v < g.n(); ++v) total += res.orientation.outdeg(v);
  EXPECT_EQ(total, g.m());
}

TEST(Arbdefective, RejectsInfeasibleParameters) {
  const Graph g = gen::clique(10);  // Delta = 9
  Network net(g);
  arb::ArbdefectiveOptions opt;
  opt.colors = 3;
  opt.defect = 2;  // 3*3 = 9 <= 9: infeasible
  EXPECT_THROW(arb::arbdefective_color(net, opt), std::invalid_argument);
}

TEST(Arbdefective, FewRoundsInPractice) {
  const Graph g = gen::random_regular(128, 16, 3);
  Network net(g);
  arb::ArbdefectiveOptions opt;
  opt.defect = 3;
  opt.colors = 2 * (g.max_degree() / 4 + 1);
  const auto res = arb::arbdefective_color(net, opt);
  ASSERT_TRUE(res.success);
  EXPECT_LE(res.rounds, 40u);
}

TEST(Arbdefective, DeterministicGivenSeed) {
  const Graph g = gen::gnp(50, 0.2, 4);
  arb::ArbdefectiveOptions opt;
  opt.defect = 2;
  opt.colors = g.max_degree() / 3 + 2;
  Network n1(g), n2(g);
  const auto a = arb::arbdefective_color(n1, opt);
  const auto b = arb::arbdefective_color(n2, opt);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.rounds, b.rounds);
}

arb::OldcSolver default_solver() {
  mt::CandidateParams params;
  params.kprime = 12;
  params.tau_cap = 6;
  return arb::two_phase_solver(params);
}

TEST(Theorem13, SolvesDegreePlusOneListColoring) {
  const Graph g = gen::random_regular(64, 8, 5);
  const LdcInstance inst = degree_plus_one_instance(g, 256, 6);
  Network net(g);
  const auto lin = linial::color(net);
  const auto res = arb::solve_list_arbdefective(net, inst, lin.phi,
                                                lin.palette,
                                                default_solver());
  ASSERT_TRUE(res.valid);
  // Defect-0 arbdefective == proper list coloring.
  EXPECT_TRUE(validate_proper(g, res.out.colors).ok);
  EXPECT_TRUE(validate_membership(inst, res.out.colors).ok);
}

TEST(Theorem13, SolvesStandardDeltaPlusOne) {
  const Graph g = gen::gnp(80, 0.1, 7);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto lin = linial::color(net);
  const auto res = arb::solve_list_arbdefective(net, inst, lin.phi,
                                                lin.palette,
                                                default_solver());
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(validate_proper(g, res.out.colors).ok);
  EXPECT_LE(colors_used(res.out.colors), g.max_degree() + 1);
}

TEST(Theorem13, SolvesListArbdefectiveWithDefects) {
  // General instance: sum (d+1) > deg with nonzero defects.
  const Graph g = gen::random_regular(60, 10, 9);
  RandomLdcParams p;
  p.color_space = 512;
  p.one_plus_nu = 1.0;  // condition on sum (d+1)
  p.kappa = 1.2;
  p.max_defect = 2;
  p.seed = 11;
  const LdcInstance inst = random_weighted_instance(g, p);
  Network net(g);
  const auto lin = linial::color(net);
  const auto res = arb::solve_list_arbdefective(net, inst, lin.phi,
                                                lin.palette,
                                                default_solver());
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(validate_arbdefective(inst, res.out).ok);
}

TEST(Theorem13, DegreeHalvingStagesAreLogarithmic) {
  const Graph g = gen::random_regular(96, 16, 13);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto lin = linial::color(net);
  const auto res = arb::solve_list_arbdefective(net, inst, lin.phi,
                                                lin.palette,
                                                default_solver());
  ASSERT_TRUE(res.valid);
  EXPECT_LE(res.stats.stages, 8u);  // ~ log2(Delta) + slack
}

TEST(Theorem13, WorksOnTreesAndTori) {
  for (int which = 0; which < 2; ++which) {
    const Graph g = which == 0 ? gen::random_tree(100, 3) : gen::torus(8, 8);
    const LdcInstance inst = degree_plus_one_instance(g, 64, 17);
    Network net(g);
    const auto lin = linial::color(net);
    const auto res = arb::solve_list_arbdefective(net, inst, lin.phi,
                                                  lin.palette,
                                                  default_solver());
    ASSERT_TRUE(res.valid) << which;
    EXPECT_TRUE(validate_proper(g, res.out.colors).ok) << which;
  }
}

}  // namespace
}  // namespace ldc
