// The event-loop serving frontend under concurrency and hostile I/O:
// many simultaneous sessions over one shared Service must each see the
// exact byte stream a dedicated solo run would produce (1 worker), the
// union of emitted lines must be invariant to worker count, and framing
// must survive arbitrarily small reads and writes. Labelled "tsan" — the
// ThreadSanitizer CI job runs this suite at LDC_THREADS=7.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "ldc/harness/json.hpp"
#include "ldc/service/event_loop.hpp"
#include "ldc/service/job.hpp"

namespace ldc::service {
namespace {

constexpr const char* kAlgos[] = {"greedy", "luby", "linial", "kw"};

/// Deterministic session script: pause, a burst of submits, cancel the
/// last while it is still gated, resume, drain, shutdown. Every line of
/// the response is pinned at one worker.
std::string script_for(std::size_t idx, std::size_t jobs) {
  std::string s = "{\"op\":\"pause\"}\n";
  for (std::size_t j = 0; j < jobs; ++j) {
    Job job;
    job.algorithm = kAlgos[(idx + j) % 4];
    job.seed = 100 * idx + j + 1;
    job.graph.family = "ring";
    job.graph.n = 16;
    harness::Json req = harness::Json::object();
    req.add("op", "submit");
    req.add("job", job_to_json(job));
    s += req.dump();
    s.push_back('\n');
  }
  s += "{\"op\":\"cancel\",\"id\":" + std::to_string(jobs) + "}\n";
  s += "{\"op\":\"resume\"}\n{\"op\":\"drain\"}\n{\"op\":\"shutdown\"}\n";
  return s;
}

void send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string read_to_eof(int fd, std::size_t chunk = 4096) {
  std::string stream;
  std::vector<char> buf(chunk);
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    stream.append(buf.data(), static_cast<std::size_t>(n));
  }
  return stream;
}

std::string run_script_client(int fd, const std::string& script) {
  send_all(fd, script.data(), script.size());
  std::string stream = read_to_eof(fd);
  ::close(fd);
  return stream;
}

ServiceConfig shared_config(std::size_t workers) {
  ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = 512;  // every session's paused burst fits
  cfg.cache_bytes = 0;       // no cross-session cache hits
  return cfg;
}

/// K scripted sessions against one server: all concurrent, or strictly
/// one after another (the solo reference streams).
std::vector<std::string> run_sessions(std::size_t workers, std::size_t k,
                                      std::size_t jobs, bool concurrent) {
  EventLoopServer server(shared_config(workers), {});
  std::thread loop([&] { server.run(); });
  std::vector<std::string> streams(k);
  auto one = [&](std::size_t idx) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server.adopt(sv[0]);
    streams[idx] = run_script_client(sv[1], script_for(idx, jobs));
  };
  if (concurrent) {
    std::vector<std::thread> clients;
    clients.reserve(k);
    for (std::size_t idx = 0; idx < k; ++idx) {
      clients.emplace_back(one, idx);
    }
    for (auto& t : clients) t.join();
  } else {
    for (std::size_t idx = 0; idx < k; ++idx) one(idx);
  }
  server.stop();
  loop.join();
  return streams;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::size_t pos = 0, nl;
  while ((nl = s.find('\n', pos)) != std::string::npos) {
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::vector<std::string> sorted_union(
    const std::vector<std::string>& streams) {
  std::vector<std::string> all;
  for (const auto& s : streams) {
    auto lines = split_lines(s);
    all.insert(all.end(), lines.begin(), lines.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

// ---------------------------------------------------------------------------
// Concurrent-session determinism

TEST(ServeConcurrent, SixtyFourSessionsByteIdenticalToSoloAtOneWorker) {
  constexpr std::size_t kSessions = 64;
  constexpr std::size_t kJobs = 2;
  const auto solo = run_sessions(1, kSessions, kJobs, /*concurrent=*/false);
  const auto mux = run_sessions(1, kSessions, kJobs, /*concurrent=*/true);
  for (std::size_t i = 0; i < kSessions; ++i) {
    ASSERT_FALSE(solo[i].empty()) << "session " << i;
    EXPECT_EQ(solo[i], mux[i]) << "session " << i
                               << ": multiplexed stream diverged";
  }
}

TEST(ServeConcurrent, SevenWorkerUnionMatchesOneWorkerUnion) {
  constexpr std::size_t kSessions = 64;
  constexpr std::size_t kJobs = 2;
  const auto one = run_sessions(1, kSessions, kJobs, /*concurrent=*/true);
  const auto seven = run_sessions(7, kSessions, kJobs, /*concurrent=*/true);
  // Per-session byte order may differ at 7 workers, but every session
  // must emit exactly the same multiset of lines.
  EXPECT_EQ(sorted_union(one), sorted_union(seven));
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_EQ(sorted_union({one[i]}), sorted_union({seven[i]}))
        << "session " << i;
  }
}

// ---------------------------------------------------------------------------
// Partial-I/O torture

TEST(ServeConcurrent, ByteAtATimeWritesAndReadsPreserveTheStream) {
  const std::string script = script_for(3, 3);

  // Reference: the same script over a cooperative client.
  EventLoopServer ref_server(shared_config(1), {});
  std::thread ref_loop([&] { ref_server.run(); });
  int rv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, rv), 0);
  ref_server.adopt(rv[0]);
  const std::string want = run_script_client(rv[1], script);
  ref_server.stop();
  ref_loop.join();
  ASSERT_FALSE(want.empty());

  // Torture: minimal socket buffers, one-byte writes, one-byte reads.
  EventLoopServer server(shared_config(1), {});
  std::thread loop([&] { server.run(); });
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const int tiny = 1;  // the kernel clamps to its minimum — still small
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny);
  ::setsockopt(sv[0], SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
  ::setsockopt(sv[1], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny);
  ::setsockopt(sv[1], SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
  server.adopt(sv[0]);

  // Reader first (1-byte reads), so the byte-at-a-time writer can never
  // deadlock against a full return path.
  std::string got;
  std::thread reader([&] { got = read_to_eof(sv[1], 1); });
  for (const char c : script) {
    send_all(sv[1], &c, 1);
  }
  reader.join();
  ::close(sv[1]);
  server.stop();
  loop.join();

  // No dropped, duplicated or interleaved lines: the byte stream is
  // exactly the cooperative client's byte stream.
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------------
// Disconnects and session caps

TEST(ServeConcurrent, MidRequestDisconnectLeavesServerServing) {
  EventLoopServer server(shared_config(1), {});
  std::thread loop([&] { server.run(); });

  // A client that dies mid-line, one that dies with jobs in flight, and
  // one that just connects and leaves.
  {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server.adopt(sv[0]);
    const std::string partial = "{\"op\":\"sub";
    send_all(sv[1], partial.data(), partial.size());
    ::close(sv[1]);
  }
  {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server.adopt(sv[0]);
    Job job;
    job.algorithm = "greedy";
    job.graph.family = "ring";
    job.graph.n = 16;
    harness::Json req = harness::Json::object();
    req.add("op", "submit");
    req.add("job", job_to_json(job));
    std::string wire = req.dump();
    wire.push_back('\n');
    send_all(sv[1], wire.data(), wire.size());
    ::close(sv[1]);  // abandon without reading anything
  }
  {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server.adopt(sv[0]);
    ::close(sv[1]);
  }

  // A well-behaved session afterwards still gets its full stream.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  server.adopt(sv[0]);
  const std::string stream = run_script_client(sv[1], script_for(0, 2));
  server.stop();
  loop.join();

  const auto lines = split_lines(stream);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(stream.find("\"event\":\"drained\""), std::string::npos);
  EXPECT_EQ(lines.back(), "{\"event\":\"bye\"}");
}

TEST(ServeConcurrent, SessionCapRefusesTheExcessConnection) {
  EventLoopOptions opts;
  opts.max_sessions = 1;
  EventLoopServer server(shared_config(1), opts);
  std::thread loop([&] { server.run(); });

  int first[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, first), 0);
  server.adopt(first[0]);
  // Ensure the loop has materialized the first session before the
  // second fd arrives, so the cap decision is deterministic.
  while (server.session_count() < 1) {
    std::this_thread::yield();
  }

  int second[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, second), 0);
  server.adopt(second[0]);
  // The refused connection is closed outright: immediate EOF.
  EXPECT_EQ(read_to_eof(second[1]), "");
  ::close(second[1]);

  // The admitted session is unaffected.
  const std::string stream =
      run_script_client(first[1], script_for(1, 2));
  EXPECT_EQ(split_lines(stream).back(), "{\"event\":\"bye\"}");
  server.stop();
  loop.join();
}

}  // namespace
}  // namespace ldc::service
