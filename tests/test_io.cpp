#include "ldc/graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ldc/graph/generators.hpp"
#include "ldc/graph/stats.hpp"

namespace ldc {
namespace {

TEST(GraphIo, EdgeListRoundTrip) {
  Graph g = gen::gnp(40, 0.15, 7);
  std::ostringstream os;
  io::write_edge_list(os, g);
  std::istringstream is(os.str());
  const Graph back = io::read_edge_list(is);
  ASSERT_EQ(back.n(), g.n());
  ASSERT_EQ(back.m(), g.m());
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = back.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIo, PreservesCustomIds) {
  Graph g = gen::ring(10);
  gen::scramble_ids(g, 1 << 16, 3);
  std::ostringstream os;
  io::write_edge_list(os, g);
  std::istringstream is(os.str());
  const Graph back = io::read_edge_list(is);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(back.id(v), g.id(v));
}

TEST(GraphIo, IgnoresCommentsAndBlankLines) {
  std::istringstream is(
      "# a comment\n"
      "\n"
      "n 3\n"
      "# another\n"
      "e 0 1\n"
      "e 1 2\n");
  const Graph g = io::read_edge_list(is);
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 2u);
  EXPECT_TRUE(check_graph(g));
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::istringstream is("e 0 1\n");  // edge before n
    EXPECT_THROW(io::read_edge_list(is), std::invalid_argument);
  }
  {
    std::istringstream is("n 2\ne 0 5\n");  // node out of range
    EXPECT_THROW(io::read_edge_list(is), std::invalid_argument);
  }
  {
    std::istringstream is("n 2\nz 0 1\n");  // unknown record
    EXPECT_THROW(io::read_edge_list(is), std::invalid_argument);
  }
  {
    std::istringstream is("n 2\nn 3\n");  // duplicate n
    EXPECT_THROW(io::read_edge_list(is), std::invalid_argument);
  }
  {
    std::istringstream is("");  // missing n
    EXPECT_THROW(io::read_edge_list(is), std::invalid_argument);
  }
}

TEST(GraphIo, ThrowsTypedParseError) {
  // Malformed input is a ParseError — callers serving untrusted files
  // (the job service's "file" graph family) catch exactly this type and
  // turn it into a client-visible rejection, never a crash or a bare
  // invalid_argument that could be confused with a programming bug.
  std::istringstream is("n 2\ne 0 5\n");
  EXPECT_THROW(io::read_edge_list(is), io::ParseError);
}

TEST(GraphIo, RejectsTruncatedRecords) {
  {
    std::istringstream is("n 3\ne 0\n");  // edge missing its endpoint
    EXPECT_THROW(io::read_edge_list(is), io::ParseError);
  }
  {
    std::istringstream is("n\n");  // header missing its count
    EXPECT_THROW(io::read_edge_list(is), io::ParseError);
  }
  {
    std::istringstream is("n 3\nid 0\n");  // id missing its value
    EXPECT_THROW(io::read_edge_list(is), io::ParseError);
  }
}

TEST(GraphIo, RejectsOversizedHeaderCountBeforeAllocating) {
  // "n 4000000000" must fail as a parse error, not attempt a
  // multi-gigabyte allocation on behalf of the input.
  std::istringstream is("n 4000000000\n");
  try {
    io::read_edge_list(is);
    FAIL() << "oversized n accepted";
  } catch (const io::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds limit"),
              std::string::npos)
        << e.what();
  }
}

TEST(GraphIo, RejectsDuplicateEdges) {
  {
    std::istringstream is("n 3\ne 0 1\ne 0 1\n");
    EXPECT_THROW(io::read_edge_list(is), io::ParseError);
  }
  {
    // Same edge written in the opposite direction is still a duplicate.
    std::istringstream is("n 3\ne 0 1\ne 1 0\n");
    try {
      io::read_edge_list(is);
      FAIL() << "reversed duplicate accepted";
    } catch (const io::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate edge"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(GraphIo, ErrorMessagesCarryLineNumbers) {
  std::istringstream is("n 2\ne 0 5\n");
  try {
    io::read_edge_list(is);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GraphIo, DotOutputMentionsEveryEdge) {
  const Graph g = gen::path(4);
  Coloring phi = {0, 1, 0, 1};
  std::ostringstream os;
  io::write_dot(os, g, &phi);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("2 -- 3"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
}

TEST(GraphIo, FileRoundTrip) {
  const Graph g = gen::torus(4, 4);
  const std::string path = "/tmp/ldc_io_test.el";
  io::save_edge_list(path, g);
  const Graph back = io::load_edge_list(path);
  EXPECT_EQ(back.n(), g.n());
  EXPECT_EQ(back.m(), g.m());
  EXPECT_THROW(io::load_edge_list("/nonexistent/dir/x.el"),
               std::runtime_error);
}

}  // namespace
}  // namespace ldc
