#include "ldc/graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ldc/graph/generators.hpp"
#include "ldc/graph/stats.hpp"

namespace ldc {
namespace {

TEST(GraphIo, EdgeListRoundTrip) {
  Graph g = gen::gnp(40, 0.15, 7);
  std::ostringstream os;
  io::write_edge_list(os, g);
  std::istringstream is(os.str());
  const Graph back = io::read_edge_list(is);
  ASSERT_EQ(back.n(), g.n());
  ASSERT_EQ(back.m(), g.m());
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = back.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIo, PreservesCustomIds) {
  Graph g = gen::ring(10);
  gen::scramble_ids(g, 1 << 16, 3);
  std::ostringstream os;
  io::write_edge_list(os, g);
  std::istringstream is(os.str());
  const Graph back = io::read_edge_list(is);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(back.id(v), g.id(v));
}

TEST(GraphIo, IgnoresCommentsAndBlankLines) {
  std::istringstream is(
      "# a comment\n"
      "\n"
      "n 3\n"
      "# another\n"
      "e 0 1\n"
      "e 1 2\n");
  const Graph g = io::read_edge_list(is);
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 2u);
  EXPECT_TRUE(check_graph(g));
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::istringstream is("e 0 1\n");  // edge before n
    EXPECT_THROW(io::read_edge_list(is), std::invalid_argument);
  }
  {
    std::istringstream is("n 2\ne 0 5\n");  // node out of range
    EXPECT_THROW(io::read_edge_list(is), std::invalid_argument);
  }
  {
    std::istringstream is("n 2\nz 0 1\n");  // unknown record
    EXPECT_THROW(io::read_edge_list(is), std::invalid_argument);
  }
  {
    std::istringstream is("n 2\nn 3\n");  // duplicate n
    EXPECT_THROW(io::read_edge_list(is), std::invalid_argument);
  }
  {
    std::istringstream is("");  // missing n
    EXPECT_THROW(io::read_edge_list(is), std::invalid_argument);
  }
}

TEST(GraphIo, ErrorMessagesCarryLineNumbers) {
  std::istringstream is("n 2\ne 0 5\n");
  try {
    io::read_edge_list(is);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GraphIo, DotOutputMentionsEveryEdge) {
  const Graph g = gen::path(4);
  Coloring phi = {0, 1, 0, 1};
  std::ostringstream os;
  io::write_dot(os, g, &phi);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("2 -- 3"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
}

TEST(GraphIo, FileRoundTrip) {
  const Graph g = gen::torus(4, 4);
  const std::string path = "/tmp/ldc_io_test.el";
  io::save_edge_list(path, g);
  const Graph back = io::load_edge_list(path);
  EXPECT_EQ(back.n(), g.n());
  EXPECT_EQ(back.m(), g.m());
  EXPECT_THROW(io::load_edge_list("/nonexistent/dir/x.el"),
               std::runtime_error);
}

}  // namespace
}  // namespace ldc
