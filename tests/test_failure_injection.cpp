// Failure injection: the self-stabilization flavour of the repair module
// (DESIGN.md §6). Valid colorings corrupted in adversarial patterns must
// be restored distributively, touching only what must move, within the
// repair round budget — including oriented instances and generalized
// conflict windows.
#include <gtest/gtest.h>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/repair/repair.hpp"
#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

// Produces a valid (Delta+1)-coloring to corrupt.
Coloring valid_coloring(const Graph& g, const LdcInstance& inst) {
  Network net(g);
  const auto res = d1lc::color(net, inst);
  EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
  return res.phi;
}

TEST(FailureInjection, SingleNodeFlip) {
  const Graph g = gen::random_regular(60, 8, 1);
  const LdcInstance inst = delta_plus_one_instance(g);
  Coloring phi = valid_coloring(g, inst);
  // Flip node 0 to its neighbor's color.
  phi[0] = phi[g.neighbors(0)[0]];
  Network net(g);
  const auto res = repair::repair(net, inst, phi);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
  // Only nodes in the corrupted neighborhood may have moved.
  std::uint32_t moved = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (res.phi[v] != phi[v]) ++moved;
  }
  EXPECT_LE(moved, 1u + g.degree(0));
}

TEST(FailureInjection, CorruptRandomFraction) {
  for (double frac : {0.1, 0.3, 0.7}) {
    const Graph g = gen::gnp(80, 0.1, 3);
    const LdcInstance inst = delta_plus_one_instance(g);
    Coloring phi = valid_coloring(g, inst);
    SplitMix64 rng(99);
    for (NodeId v = 0; v < g.n(); ++v) {
      if (rng.next_double() < frac) {
        phi[v] = static_cast<Color>(rng.next_below(inst.color_space));
      }
    }
    Network net(g);
    const auto res = repair::repair(net, inst, phi);
    ASSERT_TRUE(res.success) << "frac " << frac;
    EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
  }
}

TEST(FailureInjection, EraseRegion) {
  // Uncolor a ball around a node: repair recolors exactly that region.
  const Graph g = gen::torus(10, 10);
  const LdcInstance inst = delta_plus_one_instance(g);
  Coloring phi = valid_coloring(g, inst);
  Coloring corrupted = phi;
  corrupted[0] = kUncolored;
  for (NodeId u : g.neighbors(0)) {
    corrupted[u] = kUncolored;
    for (NodeId w : g.neighbors(u)) corrupted[w] = kUncolored;
  }
  Network net(g);
  const auto res = repair::repair(net, inst, corrupted);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
  for (NodeId v = 0; v < g.n(); ++v) {
    if (corrupted[v] != kUncolored) {
      EXPECT_EQ(res.phi[v], phi[v]);
    }
  }
}

TEST(FailureInjection, OrientedInstanceCorruption) {
  const Graph g = gen::random_regular(48, 6, 5);
  const Orientation orient = Orientation::by_decreasing_id(g);
  const LdcInstance inst = uniform_defective_instance(g, 4, 1);
  repair::Options opt;
  opt.orientation = &orient;
  Network net0(g);
  const auto base =
      repair::repair(net0, inst, Coloring(g.n(), kUncolored), opt);
  ASSERT_TRUE(base.success);
  Coloring phi = base.phi;
  for (NodeId v = 0; v < g.n(); v += 3) phi[v] = 0;
  Network net(g);
  const auto res = repair::repair(net, inst, phi, opt);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_oldc(inst, orient, res.phi).ok);
}

TEST(FailureInjection, GeneralizedWindowCorruption) {
  const Graph g = gen::ring(30);
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = 30;
  inst.lists.resize(g.n());
  for (auto& l : inst.lists) {
    l.colors = {0, 5, 10, 15, 20, 25};
    l.defects.assign(6, 0);
  }
  repair::Options opt;
  opt.g = 4;
  Network net0(g);
  const auto base =
      repair::repair(net0, inst, Coloring(g.n(), kUncolored), opt);
  ASSERT_TRUE(base.success);
  Coloring phi = base.phi;
  // Shift a contiguous arc to clashing colors.
  for (NodeId v = 5; v < 12; ++v) phi[v] = 10;
  Network net(g);
  const auto res = repair::repair(net, inst, phi, opt);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_ldc(inst, res.phi, 4).ok);
}

TEST(FailureInjection, RepeatedCorruptionCycles) {
  // Stabilize -> corrupt -> stabilize, five cycles; the system must
  // always return to a valid state.
  const Graph g = gen::gnp(50, 0.15, 7);
  const LdcInstance inst = delta_plus_one_instance(g);
  Coloring phi(g.n(), kUncolored);
  SplitMix64 rng(4242);
  for (int cycle = 0; cycle < 5; ++cycle) {
    Network net(g);
    const auto res = repair::repair(net, inst, phi);
    ASSERT_TRUE(res.success) << "cycle " << cycle;
    ASSERT_TRUE(validate_ldc(inst, res.phi).ok) << "cycle " << cycle;
    phi = res.phi;
    for (int k = 0; k < 10; ++k) {
      phi[rng.next_below(g.n())] =
          static_cast<Color>(rng.next_below(inst.color_space));
    }
  }
}

}  // namespace
}  // namespace ldc
