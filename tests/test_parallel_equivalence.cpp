// Cross-engine equivalence suite: the parallel round engine must be
// bit-for-bit equivalent to the serial one. For every registered colorer on
// a seeded mix of graphs, and for thread counts {1, 2, 4, 7}, the colors,
// the model-exact RunMetrics fields, and the full trace transcript
// (digest + per-round fields + marks) must equal the serial run's. This is
// what lets EXPERIMENTS.md keep making *exact* round/bit claims while the
// simulator runs on however many cores the host has.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ldc/arb/beg_arbdefective.hpp"
#include "ldc/baselines/kw_reduction.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/defective_linial.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/single_defect.hpp"
#include "ldc/resilient/drivers.hpp"
#include "ldc/runtime/network.hpp"
#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

struct EngineRun {
  Coloring phi;
  RunMetrics metrics;
  std::uint64_t trace_digest = 0;
  std::vector<Trace::Round> rounds;
};

/// A registered colorer: runs an algorithm on `net` and returns the colors.
using Colorer = std::function<Coloring(Network&)>;

struct NamedColorer {
  std::string name;
  Colorer run;
};

struct NamedGraph {
  std::string name;
  Graph g;
};

EngineRun run_with_threads(const Graph& g, std::size_t threads,
                           const Colorer& algo) {
  Network net(g);
  if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
  Trace trace;
  net.attach_trace(&trace);
  EngineRun out;
  out.phi = algo(net);
  out.metrics = net.metrics();
  out.trace_digest = trace.digest();
  out.rounds = trace.rounds();
  return out;
}

void expect_equivalent(const EngineRun& serial, const EngineRun& parallel,
                       const std::string& label) {
  EXPECT_EQ(serial.phi, parallel.phi) << label << ": colors differ";
  EXPECT_TRUE(serial.metrics.same_communication(parallel.metrics))
      << label << ": metrics differ: serial {" << serial.metrics
      << "} parallel {" << parallel.metrics << "}";
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest)
      << label << ": trace digests differ";
  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size())
      << label << ": transcript length differs";
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    const auto& a = serial.rounds[i];
    const auto& b = parallel.rounds[i];
    EXPECT_EQ(a.messages, b.messages) << label << " round " << i;
    EXPECT_EQ(a.bits, b.bits) << label << " round " << i;
    EXPECT_EQ(a.max_message_bits, b.max_message_bits)
        << label << " round " << i;
    EXPECT_EQ(a.mark, b.mark) << label << " round " << i;
    EXPECT_EQ(a.faults.dropped, b.faults.dropped)
        << label << " round " << i;
    EXPECT_EQ(a.faults.corrupted, b.faults.corrupted)
        << label << " round " << i;
    EXPECT_EQ(a.faults.crashes, b.faults.crashes)
        << label << " round " << i;
    EXPECT_EQ(a.faults.sleeps, b.faults.sleeps) << label << " round " << i;
  }
}

std::vector<NamedGraph> graph_mix() {
  std::vector<NamedGraph> graphs;
  {
    Graph g = gen::gnp(60, 0.2, 11);
    gen::scramble_ids(g, 1 << 20, 3);
    graphs.push_back({"gnp60", std::move(g)});
  }
  {
    Graph g = gen::random_regular(72, 8, 7);
    gen::scramble_ids(g, 1 << 16, 5);
    graphs.push_back({"reg72", std::move(g)});
  }
  graphs.push_back({"ring49", gen::ring(49)});
  {
    Graph g = gen::random_tree(64, 13);
    gen::scramble_ids(g, 1 << 18, 9);
    graphs.push_back({"tree64", std::move(g)});
  }
  graphs.push_back({"clique12", gen::clique(12)});
  return graphs;
}

// Every registered colorer, deterministic given (graph, fixed seeds).
// Each owns whatever auxiliary state (orientations, instances) it needs;
// state derived from the network run itself is computed inside `run`.
std::vector<NamedColorer> colorer_mix(const Graph& g) {
  std::vector<NamedColorer> cs;
  cs.push_back({"linial", [](Network& net) {
                  return linial::color(net).phi;
                }});
  cs.push_back({"defective-linial-d2", [](Network& net) {
                  return linial::defective_color(net, 2).phi;
                }});
  cs.push_back({"luby", [&g](Network& net) {
                  const LdcInstance inst = delta_plus_one_instance(g);
                  baselines::LubyOptions opt;
                  opt.seed = 42;
                  return baselines::luby_list_coloring(net, inst, opt).phi;
                }});
  cs.push_back({"linial+kw", [](Network& net) {
                  return baselines::linial_then_kw(net).phi;
                }});
  cs.push_back({"oldc-single-defect", [&g](Network& net) {
                  // Oriented instance with healthy list/defect margins so
                  // the run exercises types, P1, and all P0 classes.
                  const Orientation orient = Orientation::by_decreasing_id(g);
                  const std::uint64_t space = 512;
                  const Prf prf(99);
                  oldc::SingleDefectInput in;
                  std::vector<std::vector<Color>> lists(g.n());
                  for (NodeId v = 0; v < g.n(); ++v) {
                    auto picks = sample_distinct(
                        prf, static_cast<std::uint64_t>(v) << 40, space, 48);
                    lists[v].assign(picks.begin(), picks.end());
                  }
                  const auto lin = linial::color(net);
                  in.graph = &net.graph();
                  in.orientation = &orient;
                  in.color_space = space;
                  in.lists = std::move(lists);
                  in.defects.assign(g.n(), 2);
                  in.initial = &lin.phi;
                  in.m = lin.palette;
                  in.params.kprime = 12;
                  in.params.tau_cap = 6;
                  return oldc::solve_single_defect(net, in).phi;
                }});
  cs.push_back({"beg-arbdefective", [&g](Network& net) {
                  arb::ArbdefectiveOptions opt;
                  opt.defect = 2;
                  opt.colors = g.max_degree() / 3 + 1;  // q(d+1) > Delta
                  return arb::arbdefective_color(net, opt).phi;
                }});
  return cs;
}

TEST(ParallelEquivalence, EveryColorerEveryGraphEveryThreadCount) {
  for (const auto& ng : graph_mix()) {
    for (const auto& colorer : colorer_mix(ng.g)) {
      const EngineRun serial = run_with_threads(ng.g, 0, colorer.run);
      for (std::size_t threads : {1u, 2u, 4u, 7u}) {
        const EngineRun parallel =
            run_with_threads(ng.g, threads, colorer.run);
        expect_equivalent(serial, parallel,
                          colorer.name + " on " + ng.name + " @" +
                              std::to_string(threads) + "t");
      }
    }
  }
}

// Named fault plans for the sweep; rates are deliberately aggressive so
// every fault process actually fires on the small test graphs.
std::vector<std::pair<std::string, FaultPlan>> fault_plan_mix() {
  std::vector<std::pair<std::string, FaultPlan>> plans;
  {
    FaultPlan p;
    p.seed = 0xfa01;
    p.drop_rate = 0.15;
    plans.push_back({"drop15", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa02;
    p.corrupt_rate = 0.20;
    plans.push_back({"corrupt20", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa03;
    p.crash_rate = 0.03;
    p.sleep_rate = 0.10;
    p.max_crashes = 5;
    plans.push_back({"crash-sleep", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa04;
    p.drop_rate = 0.05;
    p.corrupt_rate = 0.05;
    p.crash_rate = 0.01;
    p.sleep_rate = 0.05;
    p.max_crashes = 4;
    plans.push_back({"mixed", p});
  }
  return plans;
}

struct FaultyRun {
  std::vector<std::uint64_t> inbox_flat;  ///< (receiver, sender, payload)
  RunMetrics metrics;
  std::uint64_t trace_digest = 0;
  std::vector<Trace::Round> rounds;
};

// Raw multi-round exchange under a fault plan, flattening every delivered
// payload so drop/corrupt/crash/sleep effects are byte-observable.
FaultyRun run_faulty_exchange(const Graph& g, std::size_t threads,
                              const FaultPlan& plan) {
  Network net(g);
  if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
  Trace trace;
  net.attach_trace(&trace);
  net.attach_faults(&plan);
  FaultyRun out;
  for (std::uint64_t r = 0; r < 6; ++r) {
    std::vector<Network::Outbox> outboxes(g.n());
    for (NodeId u = 0; u < g.n(); ++u) {
      for (NodeId v : g.neighbors(u)) {
        BitWriter w;
        w.write(hash_combine(r, (static_cast<std::uint64_t>(u) << 20) | v),
                40);
        outboxes[u].emplace_back(v, Message::from(w));
      }
    }
    const auto in = net.exchange(outboxes);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const auto& [sender, msg] : in[v]) {
        auto rd = msg.reader();
        out.inbox_flat.push_back(hash_combine(
            (static_cast<std::uint64_t>(v) << 32) | sender, rd.read(40)));
      }
    }
  }
  out.metrics = net.metrics();
  out.trace_digest = trace.digest();
  out.rounds = trace.rounds();
  return out;
}

TEST(ParallelEquivalence, FaultPlansMatchAcrossEngines) {
  for (const auto& ng : graph_mix()) {
    for (const auto& [plan_name, plan] : fault_plan_mix()) {
      const FaultyRun serial = run_faulty_exchange(ng.g, 0, plan);
      // The sweep must exercise real faults, not vacuous plans.
      EXPECT_GT(serial.metrics.messages_dropped +
                    serial.metrics.messages_corrupted +
                    serial.metrics.node_crashes + serial.metrics.node_sleeps,
                0u)
          << plan_name << " on " << ng.name;
      for (std::size_t threads : {1u, 2u, 4u, 7u}) {
        const FaultyRun parallel = run_faulty_exchange(ng.g, threads, plan);
        const std::string label =
            plan_name + " on " + ng.name + " @" + std::to_string(threads) +
            "t";
        EXPECT_EQ(serial.inbox_flat, parallel.inbox_flat)
            << label << ": delivered payloads differ";
        EXPECT_TRUE(serial.metrics.same_communication(parallel.metrics))
            << label << ": metrics differ: serial {" << serial.metrics
            << "} parallel {" << parallel.metrics << "}";
        EXPECT_EQ(serial.trace_digest, parallel.trace_digest)
            << label << ": trace digests differ";
        ASSERT_EQ(serial.rounds.size(), parallel.rounds.size()) << label;
        for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
          EXPECT_EQ(serial.rounds[i].faults.dropped,
                    parallel.rounds[i].faults.dropped)
              << label << " round " << i;
          EXPECT_EQ(serial.rounds[i].faults.corrupted,
                    parallel.rounds[i].faults.corrupted)
              << label << " round " << i;
          EXPECT_EQ(serial.rounds[i].faults.crashes,
                    parallel.rounds[i].faults.crashes)
              << label << " round " << i;
          EXPECT_EQ(serial.rounds[i].faults.sleeps,
                    parallel.rounds[i].faults.sleeps)
              << label << " round " << i;
        }
      }
    }
  }
}

TEST(ParallelEquivalence, ResilientRecoveryMatchesAcrossEngines) {
  // End-to-end: colorer under faults + validation + repair must stay
  // engine-independent, including the recovery cost report.
  Graph g = gen::gnp(48, 0.15, 33);
  gen::scramble_ids(g, 1 << 18, 3);
  repair::ResilientOptions opt;
  opt.plan.seed = 0xabcd;
  opt.plan.drop_rate = 0.10;
  opt.plan.corrupt_rate = 0.10;
  opt.plan.sleep_rate = 0.05;
  auto run = [&](std::size_t threads) {
    Network net(g);
    if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
    Trace trace;
    net.attach_trace(&trace);
    const auto res = resilient::resilient_linial(net, opt);
    return std::make_tuple(res.run.phi, res.run.valid,
                           res.run.recovery_rounds, res.run.moved_nodes,
                           res.run.metrics, trace.digest());
  };
  const auto serial = run(0);
  EXPECT_TRUE(std::get<1>(serial));
  for (std::size_t threads : {2u, 4u, 7u}) {
    const auto parallel = run(threads);
    EXPECT_EQ(std::get<0>(serial), std::get<0>(parallel)) << threads;
    EXPECT_EQ(std::get<1>(serial), std::get<1>(parallel)) << threads;
    EXPECT_EQ(std::get<2>(serial), std::get<2>(parallel)) << threads;
    EXPECT_EQ(std::get<3>(serial), std::get<3>(parallel)) << threads;
    EXPECT_TRUE(std::get<4>(serial).same_communication(std::get<4>(parallel)))
        << threads;
    EXPECT_EQ(std::get<5>(serial), std::get<5>(parallel)) << threads;
  }
}

TEST(ParallelEquivalence, DuplicateDestinationThrowsOnBothEngines) {
  const Graph g = gen::ring(8);
  for (std::size_t threads : {0u, 2u, 7u}) {
    Network net(g);
    if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
    std::vector<Network::Outbox> out(8);
    BitWriter w;
    w.write(1, 1);
    out[3].emplace_back(4, Message::from(w));
    out[3].emplace_back(4, Message::from(w));  // duplicate destination
    try {
      net.exchange(out);
      FAIL() << threads << " threads: expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate destination"),
                std::string::npos)
          << threads << " threads";
    }
  }
}

TEST(ParallelEquivalence, ExplicitExchangeMatchesAcrossEngines) {
  // Raw exchange() (not broadcast): multiple messages per sender with
  // distinct payloads, so inbox merge order is fully observable.
  const Graph g = gen::gnp(40, 0.3, 21);
  auto run = [&](std::size_t threads) {
    Network net(g);
    if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
    std::vector<Network::Outbox> out(g.n());
    for (NodeId u = 0; u < g.n(); ++u) {
      for (NodeId v : g.neighbors(u)) {
        BitWriter w;
        w.write(static_cast<std::uint64_t>(u) * 1000 + v, 22);
        out[u].emplace_back(v, Message::from(w));
      }
    }
    const auto in = net.exchange(out);
    // Flatten the inboxes into a comparable transcript.
    std::vector<std::uint64_t> flat;
    for (const auto& inbox : in) {
      for (const auto& [sender, msg] : inbox) {
        auto r = msg.reader();
        flat.push_back((static_cast<std::uint64_t>(sender) << 32) |
                       r.read(22));
      }
    }
    return std::make_pair(flat, net.metrics());
  };
  const auto [flat0, m0] = run(0);
  for (std::size_t threads : {2u, 4u, 7u}) {
    const auto [flat, m] = run(threads);
    EXPECT_EQ(flat0, flat) << threads << " threads";
    EXPECT_TRUE(m0.same_communication(m)) << threads << " threads";
  }
}

// The broadcast fast path skips outbox materialization and fills the round
// arena receiver-side; its observable behavior must stay identical to
// building the equivalent outboxes and calling exchange() — with and
// without an active mask, with and without faults, under both engines.
TEST(ParallelEquivalence, BroadcastFastPathMatchesExplicitOutboxes) {
  const Graph g = gen::gnp(48, 0.25, 33);
  std::vector<Message> msgs(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    BitWriter w;
    w.write(hash_combine(0xb0, v), 36);
    msgs[v] = Message::from(w);
  }
  std::vector<bool> mask(g.n());
  for (NodeId v = 0; v < g.n(); ++v) mask[v] = v % 3 != 0;
  FaultPlan plan;
  plan.seed = 0xfa07;
  plan.drop_rate = 0.08;
  plan.corrupt_rate = 0.08;
  plan.sleep_rate = 0.05;

  struct Flat {
    std::vector<std::uint64_t> slots;
    RunMetrics metrics;
    std::uint64_t trace_digest = 0;
  };
  auto run = [&](std::size_t threads, const std::vector<bool>* active,
                 const FaultPlan* faults, bool via_outboxes) {
    Network net(g);
    if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
    Trace trace;
    net.attach_trace(&trace);
    if (faults != nullptr) net.attach_faults(faults);
    Flat out;
    for (int round = 0; round < 3; ++round) {
      RoundMail in;
      if (via_outboxes) {
        // The reference semantics: materialized per-neighbor outboxes.
        std::vector<Network::Outbox> outboxes(g.n());
        for (NodeId u = 0; u < g.n(); ++u) {
          if (active != nullptr && !(*active)[u]) continue;
          for (NodeId v : g.neighbors(u)) outboxes[u].emplace_back(v, msgs[u]);
        }
        in = net.exchange(outboxes);
      } else {
        in = net.exchange_broadcast(msgs, active);
      }
      for (NodeId v = 0; v < g.n(); ++v) {
        for (const auto& [sender, msg] : in[v]) {
          auto r = msg.reader();
          out.slots.push_back(hash_combine(
              (static_cast<std::uint64_t>(v) << 32) | sender, r.read(36)));
        }
      }
    }
    out.metrics = net.metrics();
    out.trace_digest = trace.digest();
    return out;
  };

  const std::vector<bool>* masks[] = {nullptr, &mask};
  const FaultPlan* plans[] = {nullptr, &plan};
  for (const std::vector<bool>* active : masks) {
    for (const FaultPlan* faults : plans) {
      const Flat ref = run(0, active, faults, /*via_outboxes=*/true);
      for (std::size_t threads : {0u, 2u, 7u}) {
        const Flat fast = run(threads, active, faults, /*via_outboxes=*/false);
        const std::string label =
            std::string(active != nullptr ? "masked" : "all") +
            (faults != nullptr ? "+faults" : "") + " @" +
            std::to_string(threads) + "t";
        EXPECT_EQ(ref.slots, fast.slots) << label << ": deliveries differ";
        EXPECT_TRUE(ref.metrics.same_communication(fast.metrics))
            << label << ": metrics differ: ref {" << ref.metrics
            << "} fast {" << fast.metrics << "}";
        EXPECT_EQ(ref.trace_digest, fast.trace_digest)
            << label << ": trace digests differ";
      }
    }
  }
}

// The fused word-broadcast path (one bounded word per sender, no per-edge
// mail) must be observably identical to BOTH the generic broadcast fast
// path carrying the same write_bounded payload AND fully materialized
// outboxes: same decoded values per (receiver, sender), same accounting,
// same trace digest — with and without an active mask, with and without
// faults, across engines. write_bounded lays the value out LSB-first, so
// payload bit k is value bit k and a corrupted word decodes to exactly
// the corrupted payload's value.
TEST(ParallelEquivalence, FusedWordBroadcastMatchesBroadcastAndOutboxes) {
  const Graph g = gen::gnp(48, 0.25, 34);
  const std::uint64_t bound = 499;
  std::vector<std::uint64_t> words(g.n());
  std::vector<Message> msgs(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    words[v] = hash_combine(0xb1, v) % (bound + 1);
    BitWriter w;
    w.write_bounded(words[v], bound);
    msgs[v] = Message::from(w);
  }
  std::vector<bool> mask(g.n());
  for (NodeId v = 0; v < g.n(); ++v) mask[v] = v % 3 != 0;
  FaultPlan plan;
  plan.seed = 0xfa08;
  plan.drop_rate = 0.08;
  plan.corrupt_rate = 0.12;
  plan.sleep_rate = 0.05;

  struct Flat {
    std::vector<std::uint64_t> slots;
    RunMetrics metrics;
    std::uint64_t trace_digest = 0;
  };
  enum class Path { kOutboxes, kBroadcast, kFusedWord };
  auto run = [&](std::size_t threads, const std::vector<bool>* active,
                 const FaultPlan* faults, Path path) {
    Network net(g);
    if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
    Trace trace;
    net.attach_trace(&trace);
    if (faults != nullptr) net.attach_faults(faults);
    Flat out;
    for (int round = 0; round < 3; ++round) {
      if (path == Path::kFusedWord) {
        const WordMail in = net.exchange_broadcast_word(words, bound, active);
        for (NodeId v = 0; v < g.n(); ++v) {
          for (const auto [sender, word] : in[v]) {
            out.slots.push_back(hash_combine(
                (static_cast<std::uint64_t>(v) << 32) | sender, word));
          }
        }
        continue;
      }
      RoundMail in;
      if (path == Path::kOutboxes) {
        std::vector<Network::Outbox> outboxes(g.n());
        for (NodeId u = 0; u < g.n(); ++u) {
          if (active != nullptr && !(*active)[u]) continue;
          for (NodeId v : g.neighbors(u)) outboxes[u].emplace_back(v, msgs[u]);
        }
        in = net.exchange(outboxes);
      } else {
        in = net.exchange_broadcast(msgs, active);
      }
      for (NodeId v = 0; v < g.n(); ++v) {
        for (const auto& [sender, msg] : in[v]) {
          auto r = msg.reader();
          out.slots.push_back(
              hash_combine((static_cast<std::uint64_t>(v) << 32) | sender,
                           r.read_bounded(bound)));
        }
      }
    }
    out.metrics = net.metrics();
    out.trace_digest = trace.digest();
    return out;
  };

  const std::vector<bool>* masks[] = {nullptr, &mask};
  const FaultPlan* plans[] = {nullptr, &plan};
  for (const std::vector<bool>* active : masks) {
    for (const FaultPlan* faults : plans) {
      const Flat ref = run(0, active, faults, Path::kOutboxes);
      for (const Path path : {Path::kBroadcast, Path::kFusedWord}) {
        for (std::size_t threads : {0u, 1u, 7u}) {
          const Flat got = run(threads, active, faults, path);
          const std::string label =
              std::string(path == Path::kFusedWord ? "fused" : "broadcast") +
              "/" + (active != nullptr ? "masked" : "all") +
              (faults != nullptr ? "+faults" : "") + " @" +
              std::to_string(threads) + "t";
          EXPECT_EQ(ref.slots, got.slots) << label << ": deliveries differ";
          EXPECT_TRUE(ref.metrics.same_communication(got.metrics))
              << label << ": metrics differ: ref {" << ref.metrics
              << "} got {" << got.metrics << "}";
          EXPECT_EQ(ref.trace_digest, got.trace_digest)
              << label << ": trace digests differ";
        }
      }
    }
  }
}

// A WordMail is a view into the network's round arena; touching it after
// the next exchange begins must fail loudly instead of silently reading
// reused storage.
TEST(ParallelEquivalence, StaleWordMailAccessThrows) {
  const Graph g = gen::ring(8);
  Network net(g);
  const std::vector<std::uint64_t> words(g.n(), 3);
  const WordMail first = net.exchange_broadcast_word(words, 7);
  (void)first[0];  // fresh: fine
  (void)net.exchange_broadcast_word(words, 7);
  EXPECT_THROW((void)first[0], std::logic_error);
}

TEST(ParallelEquivalence, CongestAccountingMatchesAcrossEngines) {
  // Non-strict CONGEST budget: violation counts must merge exactly.
  const Graph g = gen::random_regular(50, 6, 17);
  auto run = [&](std::size_t threads) {
    Network net(g, /*budget_bits=*/10);
    if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
    std::vector<Message> msgs(g.n());
    for (NodeId v = 0; v < g.n(); ++v) {
      BitWriter w;
      w.write(v, v % 2 == 0 ? 8 : 16);  // odd nodes violate the budget
      msgs[v] = Message::from(w);
    }
    net.exchange_broadcast(msgs);
    return net.metrics();
  };
  const RunMetrics m0 = run(0);
  EXPECT_GT(m0.congest_violations, 0u);
  for (std::size_t threads : {2u, 4u, 7u}) {
    EXPECT_TRUE(m0.same_communication(run(threads)))
        << threads << " threads";
  }
}

TEST(ParallelEquivalence, StrictViolationThrowsOnBothEngines) {
  const Graph g = gen::path(4);
  for (std::size_t threads : {0u, 2u, 7u}) {
    Network net(g, /*budget_bits=*/4, /*strict=*/true);
    if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
    BitWriter w;
    w.write(0, 9);
    EXPECT_THROW(net.exchange_broadcast(std::vector<Message>(4, Message::from(w))),
                 CongestViolation)
        << threads << " threads";
  }
}

TEST(ParallelEquivalence, NonNeighborThrowsOnBothEngines) {
  const Graph g = gen::path(8);
  for (std::size_t threads : {0u, 2u, 7u}) {
    Network net(g);
    if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
    std::vector<Network::Outbox> out(8);
    BitWriter w;
    w.write(1, 1);
    out[0].emplace_back(5, Message::from(w));  // 0 and 5 not adjacent
    EXPECT_THROW(net.exchange(out), std::invalid_argument)
        << threads << " threads";
  }
}

TEST(ParallelEquivalence, WallClockIsRecordedButNotInDigest) {
  const Graph g = gen::ring(32);
  Network net(g);
  net.set_engine(Network::Engine::kParallel, 3);
  Trace trace;
  net.attach_trace(&trace);
  linial::color(net);
  EXPECT_GT(net.metrics().wall_ns, 0u);
  std::uint64_t total = 0;
  for (const auto& r : trace.rounds()) total += r.wall_ns;
  EXPECT_EQ(total, net.metrics().wall_ns);
}

TEST(ParallelEquivalence, RunNodeProgramsComputesEveryNodeOnce) {
  const Graph g = gen::ring(101);
  for (std::size_t threads : {0u, 1u, 2u, 4u, 7u}) {
    Network net(g);
    if (threads > 0) net.set_engine(Network::Engine::kParallel, threads);
    std::vector<std::uint32_t> hits(g.n(), 0);
    net.run_node_programs([&](NodeId v) { ++hits[v]; });
    for (NodeId v = 0; v < g.n(); ++v) {
      ASSERT_EQ(hits[v], 1u) << "node " << v << " @" << threads;
    }
  }
}

}  // namespace
}  // namespace ldc
