#include "ldc/repair/repair.hpp"

#include <gtest/gtest.h>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"

namespace ldc {
namespace {

TEST(Repair, ColorsFromScratch) {
  const Graph g = gen::gnp(60, 0.1, 2);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = repair::repair(net, inst, Coloring(g.n(), kUncolored));
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
}

TEST(Repair, FixesCorruptedColoring) {
  const Graph g = gen::clique(10);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const Coloring corrupted(g.n(), 0);  // everyone the same color
  const auto res = repair::repair(net, inst, corrupted);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
}

TEST(Repair, LeavesValidColoringAlone) {
  const Graph g = gen::ring(8);
  const LdcInstance inst = delta_plus_one_instance(g);
  Coloring valid(g.n());
  for (NodeId v = 0; v < g.n(); ++v) valid[v] = v % 2;
  Network net(g);
  const auto res = repair::repair(net, inst, valid);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.phi, valid);
  // Only the initial verification exchange happens; no contention round.
  EXPECT_EQ(res.rounds, 0u);
}

TEST(Repair, RespectsDefectBudgets) {
  const Graph g = gen::clique(6);
  // 2 colors with defect 2: valid colorings exist (split 3/3).
  const LdcInstance inst = uniform_defective_instance(g, 2, 2);
  Network net(g);
  const auto res = repair::repair(net, inst, Coloring(g.n(), kUncolored));
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
}

TEST(Repair, OrientedDefects) {
  const Graph g = gen::clique(5);
  // Directed cycle-ish orientation by id: outdeg <= 4; 1 color with defect
  // equal to outdegree always validates trivially; use 2 colors defect 1.
  const Orientation o = Orientation::by_decreasing_id(g);
  const LdcInstance inst = uniform_defective_instance(g, 3, 1);
  Network net(g);
  repair::Options opt;
  opt.orientation = &o;
  const auto res = repair::repair(net, inst, Coloring(g.n(), kUncolored), opt);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_oldc(inst, o, res.phi).ok);
}

TEST(Repair, GeneralizedGap) {
  const Graph g = gen::path(4);
  // Colors {0, 5, 10, 15}: with g = 4 all distinct list colors are
  // non-conflicting, so a proper-by-gap coloring exists.
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = 16;
  inst.lists.resize(4);
  for (auto& l : inst.lists) {
    l.colors = {0, 5, 10, 15};
    l.defects = {0, 0, 0, 0};
  }
  Network net(g);
  repair::Options opt;
  opt.g = 4;
  const auto res = repair::repair(net, inst, Coloring(4, kUncolored), opt);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_ldc(inst, res.phi, 4).ok);
}

TEST(Repair, DeterministicAcrossRuns) {
  const Graph g = gen::gnp(40, 0.15, 9);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net1(g), net2(g);
  const auto a = repair::repair(net1, inst, Coloring(g.n(), kUncolored));
  const auto b = repair::repair(net2, inst, Coloring(g.n(), kUncolored));
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Repair, ReportsFailureWhenInfeasible) {
  const Graph g = gen::clique(3);
  const LdcInstance inst = uniform_defective_instance(g, 1, 0);  // impossible
  Network net(g);
  repair::Options opt;
  opt.max_rounds = 50;
  const auto res = repair::repair(net, inst, Coloring(g.n(), kUncolored), opt);
  EXPECT_FALSE(res.success);
}

}  // namespace
}  // namespace ldc
