#include "ldc/runtime/network.hpp"

#include <gtest/gtest.h>

#include "ldc/graph/generators.hpp"

namespace ldc {
namespace {

Message make_msg(std::uint64_t value, int bits) {
  BitWriter w;
  w.write(value, bits);
  return Message::from(w);
}

TEST(Network, DeliversToNeighborsOnly) {
  const Graph g = gen::path(3);  // 0-1-2
  Network net(g);
  std::vector<Network::Outbox> out(3);
  out[0].emplace_back(1, make_msg(42, 8));
  auto in = net.exchange(out);
  ASSERT_EQ(in[1].size(), 1u);
  EXPECT_EQ(in[1][0].first, 0u);
  auto r = in[1][0].second.reader();
  EXPECT_EQ(r.read(8), 42u);
  EXPECT_TRUE(in[0].empty());
  EXPECT_TRUE(in[2].empty());
}

TEST(Network, RejectsNonNeighborDelivery) {
  const Graph g = gen::path(3);
  Network net(g);
  std::vector<Network::Outbox> out(3);
  out[0].emplace_back(2, make_msg(1, 1));  // 0 and 2 are not adjacent
  EXPECT_THROW(net.exchange(out), std::invalid_argument);
}

TEST(Network, RejectsDuplicateDestinations) {
  // Contract: each sender may send at most one message per neighbor per
  // round. Duplicates used to be delivered (with stdlib-sort-dependent
  // inbox order); now they are rejected up front on both engines.
  const Graph g = gen::path(3);
  for (bool parallel : {false, true}) {
    Network net(g);
    if (parallel) net.set_engine(Network::Engine::kParallel, 4);
    std::vector<Network::Outbox> out(3);
    out[1].emplace_back(0, make_msg(1, 4));
    out[1].emplace_back(0, make_msg(2, 4));
    EXPECT_THROW(net.exchange(out), std::invalid_argument);
  }
}

TEST(Network, DuplicateCheckPrecedesPerMessageValidation) {
  // Error fidelity: the duplicate check runs before the sender's messages
  // are validated, so a sender with both faults reports the duplicate
  // (identically on both engines, regardless of message order).
  const Graph g = gen::path(3);
  for (bool parallel : {false, true}) {
    Network net(g);
    if (parallel) net.set_engine(Network::Engine::kParallel, 4);
    std::vector<Network::Outbox> out(3);
    out[0].emplace_back(2, make_msg(1, 4));  // non-neighbor
    out[0].emplace_back(1, make_msg(1, 4));
    out[0].emplace_back(1, make_msg(2, 4));  // duplicate
    try {
      net.exchange(out);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate destination"),
                std::string::npos);
    }
  }
}

TEST(Network, CountsRoundsAndBits) {
  const Graph g = gen::ring(4);
  Network net(g);
  std::vector<Message> msgs(4, make_msg(5, 10));
  net.exchange_broadcast(msgs);
  net.exchange_broadcast(msgs);
  const auto& m = net.metrics();
  EXPECT_EQ(m.rounds, 2u);
  EXPECT_EQ(m.messages, 16u);       // 4 nodes x 2 neighbors x 2 rounds
  EXPECT_EQ(m.total_bits, 160u);
  EXPECT_EQ(m.max_message_bits, 10u);
}

TEST(Network, InboxSortedBySender) {
  const Graph g = gen::clique(5);
  Network net(g);
  std::vector<Message> msgs(5, make_msg(1, 4));
  auto in = net.exchange_broadcast(msgs);
  for (NodeId v = 0; v < 5; ++v) {
    ASSERT_EQ(in[v].size(), 4u);
    for (std::size_t i = 1; i < in[v].size(); ++i) {
      EXPECT_LT(in[v][i - 1].first, in[v][i].first);
    }
  }
}

TEST(Network, BroadcastActiveMask) {
  const Graph g = gen::ring(4);
  Network net(g);
  std::vector<Message> msgs(4, make_msg(7, 4));
  std::vector<bool> active = {true, false, false, false};
  auto in = net.exchange_broadcast(msgs, &active);
  EXPECT_EQ(in[1].size(), 1u);
  EXPECT_EQ(in[3].size(), 1u);
  EXPECT_TRUE(in[0].empty());
  EXPECT_TRUE(in[2].empty());
}

TEST(Network, CongestBudgetCountsViolations) {
  const Graph g = gen::path(2);
  Network net(g, /*budget_bits=*/8);
  std::vector<Network::Outbox> out(2);
  out[0].emplace_back(1, make_msg(0, 16));  // 16 > 8: violation
  out[1].emplace_back(0, make_msg(0, 8));   // exactly at budget: fine
  net.exchange(out);
  EXPECT_EQ(net.metrics().congest_violations, 1u);
}

TEST(Network, StrictModeThrows) {
  const Graph g = gen::path(2);
  Network net(g, /*budget_bits=*/4, /*strict=*/true);
  std::vector<Network::Outbox> out(2);
  out[0].emplace_back(1, make_msg(0, 5));
  EXPECT_THROW(net.exchange(out), CongestViolation);
}

TEST(Network, BroadcastRejectsWrongMessageCount) {
  const Graph g = gen::ring(4);
  Network net(g);
  std::vector<Message> too_few(3, make_msg(1, 4));
  EXPECT_THROW(net.exchange_broadcast(too_few), std::invalid_argument);
  std::vector<Message> too_many(5, make_msg(1, 4));
  EXPECT_THROW(net.exchange_broadcast(too_many), std::invalid_argument);
  // A failed precondition must not consume a round or account traffic.
  EXPECT_EQ(net.metrics().rounds, 0u);
  EXPECT_EQ(net.metrics().messages, 0u);
}

TEST(Network, BroadcastRejectsWrongActiveMaskSize) {
  const Graph g = gen::ring(4);
  Network net(g);
  std::vector<Message> msgs(4, make_msg(1, 4));
  std::vector<bool> short_mask(3, true);
  EXPECT_THROW(net.exchange_broadcast(msgs, &short_mask),
               std::invalid_argument);
  std::vector<bool> long_mask(6, true);
  EXPECT_THROW(net.exchange_broadcast(msgs, &long_mask),
               std::invalid_argument);
  EXPECT_EQ(net.metrics().rounds, 0u);
}

TEST(Network, BroadcastEmptyGraphIsANoOpRound) {
  const Graph g;  // n == 0
  Network net(g);
  auto in = net.exchange_broadcast({});
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(net.metrics().rounds, 1u);
  EXPECT_EQ(net.metrics().messages, 0u);
}

TEST(Network, SetEngineReportsThreads) {
  const Graph g = gen::ring(4);
  Network net(g);
  EXPECT_EQ(net.engine(), Network::Engine::kSerial);
  EXPECT_EQ(net.threads(), 1u);
  net.set_engine(Network::Engine::kParallel, 3);
  EXPECT_EQ(net.engine(), Network::Engine::kParallel);
  EXPECT_EQ(net.threads(), 3u);
  net.set_engine(Network::Engine::kParallel, 1);  // serial code path
  EXPECT_EQ(net.threads(), 1u);
  net.set_engine(Network::Engine::kSerial);
  EXPECT_EQ(net.engine(), Network::Engine::kSerial);
  EXPECT_EQ(net.threads(), 1u);
}

TEST(Network, WallTimeAccumulates) {
  const Graph g = gen::clique(16);
  Network net(g);
  std::vector<Message> msgs(16, make_msg(3, 12));
  net.exchange_broadcast(msgs);
  EXPECT_GT(net.metrics().wall_ns, 0u);
}

TEST(Network, AdvanceRoundsAccountsSilentRounds) {
  const Graph g = gen::path(2);
  Network net(g);
  net.advance_rounds(3);
  EXPECT_EQ(net.metrics().rounds, 3u);
}

TEST(Network, AdvanceRoundsFlushesPendingComputeTime) {
  // run_node_programs() defers its wall time to the next recorded round;
  // a run ending in compute + advance_rounds() (no exchange) used to drop
  // that time on the floor.
  const Graph g = gen::clique(32);
  Network net(g);
  net.run_node_programs([&](NodeId v) {
    volatile std::uint64_t x = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) x = x + i * v;
  });
  EXPECT_EQ(net.metrics().wall_ns, 0u);  // still pending
  net.advance_rounds(1);
  EXPECT_GT(net.metrics().wall_ns, 0u);
}

TEST(Network, FlushComputeTimeConservesWallTimeWithoutARound) {
  const Graph g = gen::clique(32);
  Network net(g);
  net.run_node_programs([&](NodeId v) {
    volatile std::uint64_t x = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) x = x + i * v;
  });
  net.flush_compute_time();
  EXPECT_GT(net.metrics().wall_ns, 0u);
  EXPECT_EQ(net.metrics().rounds, 0u);
  const std::uint64_t after_flush = net.metrics().wall_ns;
  net.flush_compute_time();  // idempotent: nothing left to flush
  EXPECT_EQ(net.metrics().wall_ns, after_flush);
}

TEST(Network, EmptyMessagesCountAsMessages) {
  const Graph g = gen::path(2);
  Network net(g);
  std::vector<Message> msgs(2);  // zero-bit messages
  net.exchange_broadcast(msgs);
  EXPECT_EQ(net.metrics().messages, 2u);
  EXPECT_EQ(net.metrics().total_bits, 0u);
}

TEST(RunMetrics, Merge) {
  RunMetrics a{1, 2, 30, 10, 0};
  RunMetrics b{4, 1, 5, 20, 2};
  a.merge(b);
  EXPECT_EQ(a.rounds, 5u);
  EXPECT_EQ(a.messages, 3u);
  EXPECT_EQ(a.total_bits, 35u);
  EXPECT_EQ(a.max_message_bits, 20u);
  EXPECT_EQ(a.congest_violations, 2u);
}

TEST(RunMetrics, MergeAndEquivalenceCoverFaultCounters) {
  RunMetrics a, b;
  a.messages_dropped = 3;
  a.node_crashes = 1;
  b.messages_dropped = 2;
  b.messages_corrupted = 7;
  b.node_sleeps = 4;
  a.merge(b);
  EXPECT_EQ(a.messages_dropped, 5u);
  EXPECT_EQ(a.messages_corrupted, 7u);
  EXPECT_EQ(a.node_crashes, 1u);
  EXPECT_EQ(a.node_sleeps, 4u);
  // Fault counters are model-exact: they take part in cross-engine
  // equivalence.
  RunMetrics c = a;
  EXPECT_TRUE(a.same_communication(c));
  c.messages_dropped += 1;
  EXPECT_FALSE(a.same_communication(c));
}

TEST(Message, FlipBitOutOfRangeThrows) {
  Message m = make_msg(0b101, 3);
  EXPECT_THROW(m.flip_bit(3), std::out_of_range);
  EXPECT_THROW(m.flip_bit(1000), std::out_of_range);
  Message empty;
  EXPECT_THROW(empty.flip_bit(0), std::out_of_range);
  // The failed flips left the payload untouched.
  auto r = m.reader();
  EXPECT_EQ(r.read(3), 0b101u);
  m.flip_bit(2);
  auto r2 = m.reader();
  EXPECT_EQ(r2.read(3), 0b001u);
}

TEST(Message, CopiesSharePayloadUntilMutation) {
  Message m = make_msg(0xbeef, 16);
  Message copy = m;
  EXPECT_TRUE(copy.shares_payload(m));
  copy.flip_bit(0);  // copy-on-write detaches the mutated handle
  EXPECT_FALSE(copy.shares_payload(m));
  auto r = m.reader();
  EXPECT_EQ(r.read(16), 0xbeefu);
  auto rc = copy.reader();
  EXPECT_EQ(rc.read(16), 0xbeeeu);
  // Empty messages hold no payload block and thus never "share" one.
  EXPECT_FALSE(Message().shares_payload(Message()));
}

TEST(Network, BroadcastDeliversSharedPayloadHandles) {
  const Graph g = gen::clique(4);
  Network net(g);
  std::vector<Message> msgs(4);
  for (NodeId v = 0; v < 4; ++v) msgs[v] = make_msg(v + 1, 8);
  auto in = net.exchange_broadcast(msgs);
  for (NodeId v = 0; v < 4; ++v) {
    ASSERT_EQ(in[v].size(), 3u);
    for (const auto& [u, m] : in[v]) {
      // Zero-copy: every delivery is a handle onto the sender's payload.
      EXPECT_TRUE(m.shares_payload(msgs[u]));
    }
  }
}

TEST(Network, RoundMailViewExpiresAtTheNextExchange) {
  const Graph g = gen::path(3);
  Network net(g);
  const std::vector<Message> msgs(3, make_msg(7, 4));
  auto in = net.exchange_broadcast(msgs);
  ASSERT_EQ(in[1].size(), 2u);
  auto kept = in.materialize();
  net.exchange_broadcast(msgs);
  // The old view is stale now — accessing it throws instead of silently
  // reading the new round's traffic.
  EXPECT_THROW(in[1], std::logic_error);
  EXPECT_THROW(in.begin(), std::logic_error);
  EXPECT_THROW(in.materialize(), std::logic_error);
  // The materialized copy owns its slots and stays valid.
  ASSERT_EQ(kept[1].size(), 2u);
  EXPECT_EQ(kept[1][0].first, 0u);
  EXPECT_EQ(kept[1][1].first, 2u);
  auto r = kept[1][0].second.reader();
  EXPECT_EQ(r.read(4), 7u);
}

TEST(Network, InboxesArriveInAscendingSenderOrder) {
  const Graph g = gen::clique(5);
  Network net(g);
  std::vector<Message> msgs(5);
  for (NodeId v = 0; v < 5; ++v) msgs[v] = make_msg(v, 8);
  auto in = net.exchange_broadcast(msgs);
  for (NodeId v = 0; v < 5; ++v) {
    ASSERT_EQ(in[v].size(), 4u);
    for (std::size_t i = 1; i < in[v].size(); ++i) {
      EXPECT_LT(in[v][i - 1].first, in[v][i].first);
    }
  }
}

}  // namespace
}  // namespace ldc
