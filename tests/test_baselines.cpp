#include <gtest/gtest.h>

#include "ldc/baselines/color_reduction.hpp"
#include "ldc/baselines/greedy.hpp"
#include "ldc/baselines/kw_reduction.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"

namespace ldc {
namespace {

TEST(Greedy, SolvesDeltaPlusOne) {
  const Graph g = gen::clique(9);
  const LdcInstance inst = delta_plus_one_instance(g);
  const auto phi = baselines::greedy_list_coloring(inst);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(validate_proper(g, *phi).ok);
  EXPECT_TRUE(validate_membership(inst, *phi).ok);
}

TEST(Greedy, SolvesDegreePlusOneLists) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::gnp(80, 0.08, seed);
    const LdcInstance inst = degree_plus_one_instance(g, 512, seed);
    const auto phi = baselines::greedy_list_coloring(inst);
    ASSERT_TRUE(phi.has_value()) << seed;
    EXPECT_TRUE(validate_ldc(inst, *phi).ok) << seed;
  }
}

TEST(Greedy, FailsWhenListsTooShort) {
  const Graph g = gen::clique(3);
  const LdcInstance inst = uniform_defective_instance(g, 2, 0);
  EXPECT_FALSE(baselines::greedy_list_coloring(inst).has_value());
}

TEST(Luby, ColorsRandomGraph) {
  const Graph g = gen::gnp(100, 0.08, 3);
  const LdcInstance inst = degree_plus_one_instance(g, 1024, 3);
  Network net(g);
  const auto res = baselines::luby_list_coloring(net, inst);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
}

TEST(Luby, RoundCountIsLogarithmicInPractice) {
  const Graph g = gen::random_regular(256, 8, 5);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  const auto res = baselines::luby_list_coloring(net, inst);
  ASSERT_TRUE(res.success);
  EXPECT_LE(res.rounds, 64u);
}

TEST(Luby, CongestMessageSize) {
  const Graph g = gen::random_regular(64, 4, 6);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  baselines::luby_list_coloring(net, inst);
  // 1 flag bit + ceil(log2 |C|) bits.
  EXPECT_LE(net.metrics().max_message_bits, 1 + 3u);
}

TEST(Luby, DeterministicGivenSeed) {
  const Graph g = gen::gnp(50, 0.1, 8);
  const LdcInstance inst = delta_plus_one_instance(g);
  Network n1(g), n2(g);
  const auto a = baselines::luby_list_coloring(n1, inst);
  const auto b = baselines::luby_list_coloring(n2, inst);
  EXPECT_EQ(a.phi, b.phi);
  baselines::LubyOptions opt;
  opt.seed = 999;
  Network n3(g);
  const auto c = baselines::luby_list_coloring(n3, inst, opt);
  EXPECT_NE(a.phi, c.phi);  // different seed, different run (w.h.p.)
}

TEST(ColorReduction, ReduceByClassesFromIds) {
  const Graph g = gen::gnp(60, 0.1, 1);
  const LdcInstance inst = degree_plus_one_instance(g, 256, 2);
  Network net(g);
  Coloring ids(g.n());
  for (NodeId v = 0; v < g.n(); ++v) ids[v] = v;
  const auto res = baselines::reduce_by_classes(net, inst, ids, g.n());
  EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
  EXPECT_EQ(res.rounds, g.n());  // exactly m rounds
}

TEST(ColorReduction, LinialThenReduce) {
  const Graph g = gen::random_regular(100, 6, 4);
  const LdcInstance inst = degree_plus_one_instance(g, 128, 5);
  Network net(g);
  const auto res = baselines::linial_then_reduce(net, inst);
  EXPECT_TRUE(validate_ldc(inst, res.phi).ok);
  // Rounds ~ palette of the Linial fixpoint (O(Delta^2)) + log*.
  EXPECT_LE(res.rounds, 16 * 36 + 128u);
}

TEST(KwReduction, ProducesDeltaPlusOneColoring) {
  const Graph g = gen::random_regular(120, 8, 2);
  Network net(g);
  const auto res = baselines::linial_then_kw(net);
  EXPECT_EQ(res.palette, g.max_degree() + 1);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
  for (Color c : res.phi) EXPECT_LT(c, res.palette);
}

TEST(KwReduction, FasterThanNaiveForLargePalettes) {
  const Graph g = gen::random_regular(200, 6, 3);
  Network naive_net(g), kw_net(g);
  const LdcInstance inst = delta_plus_one_instance(g);
  const auto naive = baselines::linial_then_reduce(naive_net, inst);
  const auto kw = baselines::linial_then_kw(kw_net);
  EXPECT_TRUE(validate_proper(g, kw.phi).ok);
  EXPECT_LT(kw.rounds, naive.rounds);
}

TEST(KwReduction, AlreadySmallPaletteIsNoop) {
  const Graph g = gen::clique(5);  // Delta+1 = 5
  Network net(g);
  Coloring ids(g.n());
  for (NodeId v = 0; v < g.n(); ++v) ids[v] = v;
  const auto res = baselines::kw_reduce(net, ids, 5);
  EXPECT_EQ(res.palette, 5u);
  EXPECT_TRUE(validate_proper(g, res.phi).ok);
}

}  // namespace
}  // namespace ldc
