// Experiment harness: registry semantics, JSON round-trips, the metric
// sink's JSONL/CSV output, CLI parsing, and the baseline checker's
// verdicts (exact pass / deterministic drift / wall-clock tolerance).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "ldc/harness/baseline.hpp"
#include "ldc/harness/experiment.hpp"
#include "ldc/harness/json.hpp"
#include "ldc/harness/registry.hpp"
#include "ldc/harness/runner.hpp"
#include "ldc/harness/sink.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::harness {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Json

TEST(HarnessJson, RoundTripsScalars) {
  const std::string doc =
      R"({"a":1,"b":-7,"c":18446744073709551615,"d":2.5,"e":"x\ny","f":true,)"
      R"("g":null,"h":[1,2,3],"i":{}})";
  const Json j = Json::parse(doc);
  EXPECT_EQ(j.at("a").as_uint(), 1u);
  EXPECT_EQ(j.at("b").as_int(), -7);
  // uint64 max must survive exactly — it cannot round-trip via double.
  EXPECT_EQ(j.at("c").as_uint(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(j.at("d").as_double(), 2.5);
  EXPECT_EQ(j.at("e").as_string(), "x\ny");
  EXPECT_TRUE(j.at("f").as_bool());
  EXPECT_TRUE(j.at("g").is_null());
  EXPECT_EQ(j.at("h").as_array().size(), 3u);
  EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
}

TEST(HarnessJson, PreservesInsertionOrder) {
  Json obj = Json::object();
  obj.add("zeta", 1);
  obj.add("alpha", 2);
  EXPECT_EQ(obj.dump(), R"({"zeta":1,"alpha":2})");
  EXPECT_EQ(Json::parse(obj.dump()).dump(), obj.dump());
}

TEST(HarnessJson, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
}

TEST(HarnessJson, RejectsMalformedNumberTokens) {
  // The number scanner consumes any digit/.eE+- run; the parser must then
  // reject tokens whose valid prefix hides trailing garbage instead of
  // silently decoding a different value.
  EXPECT_THROW(Json::parse("1e5e5"), JsonError);
  EXPECT_THROW(Json::parse("1.2.3"), JsonError);
  EXPECT_THROW(Json::parse("[5-2]"), JsonError);
  EXPECT_THROW(Json::parse("1e"), JsonError);
  EXPECT_THROW(Json::parse("-"), JsonError);
  EXPECT_EQ(Json::parse("1e5").as_double(), 1e5);
  EXPECT_EQ(Json::parse("-3").as_int(), -3);
}

TEST(HarnessJson, AstralPlaneRoundTripsAsSurrogatePairs) {
  // Non-BMP codepoints must survive dump/parse: the writer synthesizes a
  // \uXXXX surrogate pair from the 4-byte UTF-8 sequence, the parser
  // recombines it. U+1F600 GRINNING FACE = 😀.
  const std::string emoji = "\xF0\x9F\x98\x80";
  Json obj = Json::object();
  obj.add("s", emoji);
  const std::string dumped = obj.dump();
  EXPECT_NE(dumped.find("\\ud83d\\ude00"), std::string::npos) << dumped;
  EXPECT_EQ(dumped.find('\xF0'), std::string::npos)
      << "raw non-BMP bytes leaked into the escaped output";
  EXPECT_EQ(Json::parse(dumped).at("s").as_string(), emoji);
  // Escaped input decodes to the same UTF-8 bytes directly.
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), emoji);
  // BMP codepoints keep passing through as raw UTF-8 (no escaping).
  const std::string bmp = "gr\xC3\xBC n";  // ü
  EXPECT_EQ(Json::parse(Json(bmp).dump()).as_string(), bmp);
  EXPECT_EQ(Json(bmp).dump().find("\\u"), std::string::npos);
}

TEST(HarnessJson, LoneSurrogateEscapesAreRejected) {
  EXPECT_THROW(Json::parse(R"("\uD83D")"), JsonError);        // high, no low
  EXPECT_THROW(Json::parse(R"("\uD83Dx")"), JsonError);       // high + text
  // High surrogate followed by a \u escape that is not a low surrogate.
  EXPECT_THROW(Json::parse(R"("\uD83D\u0041")"), JsonError);
  EXPECT_THROW(Json::parse(R"("\uDE00")"), JsonError);        // bare low
  EXPECT_THROW(Json::parse(R"("\uD8")"), JsonError);          // short hex
}

TEST(HarnessJson, MissingKeyLookup) {
  const Json j = Json::parse(R"({"a":1})");
  EXPECT_EQ(j.find("b"), nullptr);
  EXPECT_THROW(j.at("b"), JsonError);
}

TEST(HarnessJson, ParseLineAcceptsOneDocument) {
  const Json j = Json::parse_line(R"({"op":"submit","id":3})");
  EXPECT_EQ(j.at("id").as_uint(), 3u);
  // Leading spaces/tabs before the document are legal JSON whitespace.
  EXPECT_EQ(Json::parse_line("  \t{\"a\":1}").at("a").as_uint(), 1u);
}

TEST(HarnessJson, ParseLineRejectsEmbeddedNewlines) {
  // A newline inside the "line" is a framing violation: the transport
  // glued two frames together (or a raw \n leaked into a string field).
  // The offset must point at the offending byte.
  try {
    Json::parse_line("{\"a\":1}\n{\"b\":2}");
    FAIL() << "embedded \\n accepted";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("byte 7"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(Json::parse_line("{\"a\":1}\r"), JsonError);
  EXPECT_THROW(Json::parse_line("\n"), JsonError);
}

TEST(HarnessJson, ParseLineRejectsBlankLines) {
  // parse() skips leading whitespace, so a whitespace-only line used to
  // slip through concatenated with the next document; as a *line* it must
  // be an explicit error instead of a silent accept.
  EXPECT_THROW(Json::parse_line(""), JsonError);
  EXPECT_THROW(Json::parse_line("   "), JsonError);
  EXPECT_THROW(Json::parse_line("\t \t"), JsonError);
}

// ---------------------------------------------------------------------------
// Registry

Experiment make_experiment(std::string name, std::string claim = "claim") {
  Experiment e;
  e.name = std::move(name);
  e.claim = std::move(claim);
  e.run = [](ExperimentContext&) {};
  return e;
}

TEST(HarnessRegistry, SortsFindsAndFilters) {
  Registry r;
  r.add(make_experiment("e02_beta", "message bits"));
  r.add(make_experiment("e01_alpha", "round complexity"));
  r.add(make_experiment("a1_gamma", "ablation"));
  ASSERT_EQ(r.size(), 3u);

  const auto all = r.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name, "a1_gamma");
  EXPECT_EQ(all[1]->name, "e01_alpha");
  EXPECT_EQ(all[2]->name, "e02_beta");

  ASSERT_NE(r.find("e01_alpha"), nullptr);
  EXPECT_EQ(r.find("e01_alpha")->claim, "round complexity");
  EXPECT_EQ(r.find("nope"), nullptr);

  EXPECT_EQ(r.match({}).size(), 3u);              // empty filter = all
  EXPECT_EQ(r.match({"e0"}).size(), 2u);          // name substring
  EXPECT_EQ(r.match({"ablation"}).size(), 1u);    // claim substring
  EXPECT_EQ(r.match({"e0", "ablation"}).size(), 3u);  // union
  EXPECT_TRUE(r.match({"zzz"}).empty());
}

TEST(HarnessRegistry, RejectsBadRegistrations) {
  Registry r;
  r.add(make_experiment("dup"));
  EXPECT_THROW(r.add(make_experiment("dup")), std::invalid_argument);
  EXPECT_THROW(r.add(make_experiment("")), std::invalid_argument);
  Experiment no_run;
  no_run.name = "no_run";
  EXPECT_THROW(r.add(std::move(no_run)), std::invalid_argument);
}

TEST(HarnessRegistry, GlobalInstanceHoldsAllEighteen) {
  // The experiment TUs are linked into ldc_bench, not into this test, so
  // the global registry here only checks the singleton exists and is
  // usable; the CLI smoke path covers the full roster.
  EXPECT_NO_THROW(Registry::instance().all());
}

// ---------------------------------------------------------------------------
// ResultTable / ExperimentContext

TEST(HarnessTable, ArityMismatchThrows) {
  ResultTable t("t", {"a", "b"});
  t.add_row({std::uint64_t{1}, "x"});
  EXPECT_THROW(t.add_row({std::uint64_t{1}}), std::invalid_argument);
  EXPECT_EQ(t.rows().size(), 1u);
}

TEST(HarnessContext, PickSelectsAxis) {
  RunConfig full_cfg;
  ExperimentContext full("x", full_cfg);
  RunConfig smoke_cfg;
  smoke_cfg.smoke = true;
  ExperimentContext smoke("x", smoke_cfg);
  const std::vector<int> f = {1, 2, 3}, s = {1};
  EXPECT_EQ(full.pick(f, s).size(), 3u);
  EXPECT_EQ(smoke.pick(f, s).size(), 1u);
  EXPECT_FALSE(full.smoke());
  EXPECT_TRUE(smoke.smoke());
}

Message tiny_message() {
  BitWriter w;
  w.write(1, 8);
  return Message::from(w);
}

// One broadcast round on a small ring, so metrics and a trace exist.
void one_round(Network& net) {
  std::vector<Message> msgs(net.graph().n(), tiny_message());
  net.exchange_broadcast(msgs);
}

TEST(HarnessContext, PrepareRecordCapturesMetricsAndTrace) {
  RunConfig cfg;
  ExperimentContext ctx("x", cfg);
  const Graph g = gen::ring(6);
  Network net(g);
  ctx.prepare(net);
  one_round(net);
  ctx.record("one-round", net);
  auto result = ctx.take_result();
  ASSERT_EQ(result.runs.size(), 1u);
  const MetricRecord& rec = result.runs[0];
  EXPECT_EQ(rec.label, "one-round");
  EXPECT_EQ(rec.metrics.rounds, 1u);
  EXPECT_GT(rec.metrics.messages, 0u);
  EXPECT_NE(rec.trace_digest, 0u);
  ASSERT_EQ(rec.rounds.size(), 1u);
}

TEST(HarnessContext, ReusedNetworkAddressBindsLatestTrace) {
  RunConfig cfg;
  ExperimentContext ctx("x", cfg);
  const Graph g = gen::ring(6);
  // Experiments construct Networks as loop-body locals, so every iteration
  // reuses the same address; optional::emplace reproduces that exactly.
  std::optional<Network> net;
  for (int rounds = 1; rounds <= 2; ++rounds) {
    net.emplace(g);
    ctx.prepare(*net);
    for (int r = 0; r < rounds; ++r) one_round(*net);
    ctx.record("iter" + std::to_string(rounds), *net);
  }
  auto result = ctx.take_result();
  ASSERT_EQ(result.runs.size(), 2u);
  // record() must bind each run to the trace of the *latest* prepare for
  // that address, not the first iteration's stale trace.
  ASSERT_EQ(result.runs[0].rounds.size(), 1u);
  ASSERT_EQ(result.runs[1].rounds.size(), 2u);
  EXPECT_NE(result.runs[0].trace_digest, result.runs[1].trace_digest);
}

TEST(HarnessContext, TableReferencesStaySable) {
  RunConfig cfg;
  ExperimentContext ctx("x", cfg);
  auto& t1 = ctx.table("first", {"a"});
  t1.add_row({std::uint64_t{1}});
  // Opening more tables must not invalidate t1 (deque storage).
  for (int i = 0; i < 50; ++i) ctx.table("t" + std::to_string(i), {"a"});
  t1.add_row({std::uint64_t{2}});
  EXPECT_EQ(ctx.take_result().tables.front().rows().size(), 2u);
}

// ---------------------------------------------------------------------------
// Sink

ExperimentResult small_result() {
  RunConfig cfg;
  ExperimentContext ctx("tiny", cfg);
  auto& t = ctx.table("tiny: demo", {"k", "rounds", "wall ms (obs)"});
  t.add_row({"a", std::uint64_t{3}, 1.25});
  const Graph g = gen::ring(4);
  Network net(g);
  ctx.prepare(net);
  one_round(net);
  ctx.record("demo", net);
  return ctx.take_result();
}

TEST(HarnessSink, WritesParseableJsonlAndCsv) {
  const fs::path dir =
      fs::temp_directory_path() / "ldc_harness_sink_test";
  fs::remove_all(dir);
  {
    Provenance prov;
    prov.git_rev = "abc1234";
    prov.engine = "serial";
    Sink sink(dir.string(), prov);
    sink.write(small_result());
  }
  std::ifstream jsonl(dir / "results.jsonl");
  ASSERT_TRUE(jsonl.good());
  std::string line;
  std::size_t lines = 0;
  bool saw_run = false, saw_row = false, saw_metrics = false,
       saw_round = false;
  while (std::getline(jsonl, line)) {
    ++lines;
    const Json j = Json::parse(line);  // every line is one valid document
    const std::string type = j.at("type").as_string();
    if (type == "run") {
      saw_run = true;
      EXPECT_EQ(j.at("git_rev").as_string(), "abc1234");
    } else if (type == "table_row") {
      saw_row = true;
      EXPECT_EQ(j.at("experiment").as_string(), "tiny");
      EXPECT_EQ(j.at("cells").at("rounds").as_uint(), 3u);
    } else if (type == "metrics") {
      saw_metrics = true;
      EXPECT_EQ(j.at("label").as_string(), "demo");
      EXPECT_EQ(j.at("rounds").as_uint(), 1u);
      EXPECT_NE(j.at("trace_digest").as_uint(), 0u);
    } else if (type == "round") {
      saw_round = true;
    }
  }
  EXPECT_GE(lines, 4u);
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_row);
  EXPECT_TRUE(saw_metrics);
  EXPECT_TRUE(saw_round);

  std::ifstream csv(dir / "csv" / "tiny.0.csv");
  ASSERT_TRUE(csv.good());
  std::string title, header, row;
  ASSERT_TRUE(std::getline(csv, title));  // "# <table title>" comment
  EXPECT_EQ(title.rfind("# ", 0), 0u);
  ASSERT_TRUE(std::getline(csv, header));
  ASSERT_TRUE(std::getline(csv, row));
  EXPECT_NE(header.find("rounds"), std::string::npos);
  EXPECT_NE(row.find("3"), std::string::npos);
  fs::remove_all(dir);
}

TEST(HarnessSink, ObservationalColumnDetection) {
  EXPECT_TRUE(observational_column("wall ms (obs)"));
  EXPECT_TRUE(observational_column("Wall ns"));
  EXPECT_TRUE(observational_column("speedup (obs)"));
  EXPECT_FALSE(observational_column("rounds"));
  EXPECT_FALSE(observational_column("total bits"));
}

// ---------------------------------------------------------------------------
// Baseline

std::vector<ExperimentResult> one_result() {
  std::vector<ExperimentResult> v;
  v.push_back(small_result());
  return v;
}

Provenance test_provenance() {
  Provenance p;
  p.git_rev = "test";
  p.engine = "serial";
  return p;
}

TEST(HarnessBaseline, ExactMatchPasses) {
  const auto results = one_result();
  const Json base = baseline_json(results, test_provenance());
  const auto diff = check_baseline(base, results, {}, /*ran_all=*/true);
  EXPECT_TRUE(diff.ok()) << (diff.mismatches.empty()
                                 ? ""
                                 : diff.mismatches.front());
}

TEST(HarnessBaseline, RoundTripThroughTextPasses) {
  const auto results = one_result();
  const Json base = baseline_json(results, test_provenance());
  const Json reparsed = Json::parse(base.dump_pretty());
  EXPECT_TRUE(check_baseline(reparsed, results, {}, true).ok());
}

TEST(HarnessBaseline, PerturbedRoundCountFails) {
  auto results = one_result();
  const Json base = baseline_json(results, test_provenance());
  // Deliberate drift: bump a deterministic metric (the acceptance
  // criterion — a perturbed round count must be caught).
  results[0].runs[0].metrics.rounds += 1;
  const auto diff = check_baseline(base, results, {}, true);
  EXPECT_FALSE(diff.ok());
}

TEST(HarnessBaseline, PerturbedTableCellFails) {
  auto results = one_result();
  const Json base = baseline_json(results, test_provenance());
  ResultTable t(results[0].tables[0].title(),
                results[0].tables[0].headers());
  t.add_row({"a", std::uint64_t{4}, 1.25});  // rounds 3 -> 4
  results[0].tables[0] = t;
  EXPECT_FALSE(check_baseline(base, results, {}, true).ok());
}

TEST(HarnessBaseline, PerturbedDigestFails) {
  auto results = one_result();
  const Json base = baseline_json(results, test_provenance());
  results[0].runs[0].trace_digest ^= 1;
  EXPECT_FALSE(check_baseline(base, results, {}, true).ok());
}

TEST(HarnessBaseline, ObservationalColumnsExemptFromDiff) {
  auto results = one_result();
  const Json base = baseline_json(results, test_provenance());
  ResultTable t(results[0].tables[0].title(),
                results[0].tables[0].headers());
  t.add_row({"a", std::uint64_t{3}, 99999.0});  // wall column only
  results[0].tables[0] = t;
  EXPECT_TRUE(check_baseline(base, results, {}, true).ok());
}

TEST(HarnessBaseline, WallClockTolerance) {
  auto results = one_result();
  results[0].runs[0].metrics.wall_ns = 10'000'000;  // 10ms
  const Json base = baseline_json(results, test_provenance());

  BaselineOptions opt;
  opt.wall_tolerance = 10.0;
  opt.wall_floor_ns = 1'000'000;

  // Within 10x: pass.
  results[0].runs[0].metrics.wall_ns = 90'000'000;
  EXPECT_TRUE(check_baseline(base, results, opt, true).ok());

  // Beyond 10x: drift.
  results[0].runs[0].metrics.wall_ns = 200'000'000;
  EXPECT_FALSE(check_baseline(base, results, opt, true).ok());

  // Both sides under the absolute floor: always pass, however large the
  // ratio (sub-millisecond smoke timings are jitter).
  auto tiny = one_result();
  tiny[0].runs[0].metrics.wall_ns = 10;
  const Json tiny_base = baseline_json(tiny, test_provenance());
  tiny[0].runs[0].metrics.wall_ns = 900'000;
  EXPECT_TRUE(check_baseline(tiny_base, tiny, opt, true).ok());
}

TEST(HarnessBaseline, MissingExperimentIsDriftOnlyWhenRanAll) {
  const auto results = one_result();
  Json base = baseline_json(results, test_provenance());
  // Baseline gains an experiment the fresh run lacks.
  std::vector<ExperimentResult> two = one_result();
  two.push_back(small_result());
  two[1].name = "other";
  base = baseline_json(two, test_provenance());
  EXPECT_FALSE(check_baseline(base, results, {}, /*ran_all=*/true).ok());
  EXPECT_TRUE(check_baseline(base, results, {}, /*ran_all=*/false).ok());
  // A fresh experiment missing from the baseline is drift either way.
  EXPECT_FALSE(check_baseline(baseline_json(results, test_provenance()), two,
                              {}, false)
                   .ok());
}

TEST(HarnessBaseline, TruncatedBaselineRowReportsArityMismatch) {
  const auto results = one_result();
  std::string text = baseline_json(results, test_provenance()).dump();
  // Hand-truncate the table row ["a",3,1.25] to ["a",3]: the checker must
  // report the arity disagreement, not read past the row's end.
  const std::string full_row = ", 1.25]";
  const auto at = text.find(full_row);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, full_row.size(), "]");
  const auto diff = check_baseline(Json::parse(text), results, {}, true);
  EXPECT_FALSE(diff.ok());
  ASSERT_FALSE(diff.mismatches.empty());
  EXPECT_NE(diff.mismatches.front().find("arity"), std::string::npos);
}

TEST(HarnessBaseline, SaveLoadRoundTrip) {
  const auto results = one_result();
  const Json base = baseline_json(results, test_provenance());
  const fs::path path =
      fs::temp_directory_path() / "ldc_harness_baseline_test.json";
  save_baseline(path.string(), base);
  const Json loaded = load_baseline(path.string());
  EXPECT_TRUE(check_baseline(loaded, results, {}, true).ok());
  EXPECT_TRUE(loaded.at("config").at("smoke").as_bool() == false);
  fs::remove(path);
  EXPECT_THROW(load_baseline(path.string()), std::runtime_error);
}

// ---------------------------------------------------------------------------
// CLI parsing

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"ldc_bench"};
  v.insert(v.end(), args);
  return v;
}

TEST(HarnessCli, ParsesFlagCombinations) {
  auto a = argv_of({"--smoke", "--filter", "oldc", "--threads", "4", "--out",
                    "d", "--baseline", "b.json", "--check"});
  const CliOptions o =
      parse_cli(static_cast<int>(a.size()), a.data());
  EXPECT_TRUE(o.smoke);
  EXPECT_TRUE(o.check);
  ASSERT_EQ(o.filters.size(), 1u);
  EXPECT_EQ(o.filters[0], "oldc");
  EXPECT_EQ(o.threads, 4u);
  EXPECT_TRUE(o.parallel);  // --threads > 1 implies the parallel engine
  EXPECT_EQ(o.out_dir, "d");
  EXPECT_EQ(o.baseline_path, "b.json");
}

TEST(HarnessCli, RejectsBadUsage) {
  auto check_only = argv_of({"--check"});
  EXPECT_THROW(
      parse_cli(static_cast<int>(check_only.size()), check_only.data()),
      std::invalid_argument);
  auto unknown = argv_of({"--frobnicate"});
  EXPECT_THROW(parse_cli(static_cast<int>(unknown.size()), unknown.data()),
               std::invalid_argument);
  auto bad_threads = argv_of({"--threads", "0"});
  EXPECT_THROW(
      parse_cli(static_cast<int>(bad_threads.size()), bad_threads.data()),
      std::invalid_argument);
  auto bad_engine = argv_of({"--engine", "quantum"});
  EXPECT_THROW(
      parse_cli(static_cast<int>(bad_engine.size()), bad_engine.data()),
      std::invalid_argument);
}

// Registers one no-op experiment in the *global* registry so run_cli has
// something to (not) match against.
const Registrar cli_probe{{
    .name = "zz_cli_probe",
    .claim = "test-only probe for run_cli selection",
    .axes = {},
    .run = [](ExperimentContext&) {},
}};

TEST(HarnessCli, UnmatchedFilterIsUsageErrorNamingTheFilter) {
  CliOptions o;
  o.filters = {"no_such_experiment_zzz"};
  o.print_tables = false;
  std::ostringstream out, err;
  // A typo'd --filter in a CI gate must not look like success: nothing
  // ran, so nothing was checked.
  EXPECT_EQ(run_cli(o, out, err), 2);
  EXPECT_NE(err.str().find("no experiments match"), std::string::npos)
      << err.str();
  EXPECT_NE(err.str().find("'no_such_experiment_zzz'"), std::string::npos)
      << err.str();

  // Same selection logic, matching filter: exit 0.
  CliOptions ok;
  ok.filters = {"zz_cli_probe"};
  ok.print_tables = false;
  std::ostringstream out2, err2;
  EXPECT_EQ(run_cli(ok, out2, err2), 0);
}

}  // namespace
}  // namespace ldc::harness
