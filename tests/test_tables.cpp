#include "ldc/support/tables.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ldc {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo", {"a", "bb", "ccc"});
  t.add_row({std::uint64_t{1}, std::string("x"), 2.5});
  t.add_row({std::uint64_t{10}, std::string("yy"), -0.125});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("ccc"), std::string::npos);
  EXPECT_NE(out.find("2.500"), std::string::npos);
  EXPECT_NE(out.find("-0.125"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAligned) {
  Table t("align", {"col", "v"});
  t.add_row({std::string("short"), std::uint64_t{1}});
  t.add_row({std::string("much-longer-cell"), std::uint64_t{22}});
  std::ostringstream os;
  t.print(os);
  // Every data line has the same length (fixed-width columns).
  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);  // title
  std::size_t len = 0;
  int data_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '-') continue;
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
    ++data_lines;
  }
  EXPECT_EQ(data_lines, 3);  // header + 2 rows
}

TEST(Table, SignedAndUnsignedCells) {
  Table t("cells", {"i64", "u64"});
  t.add_row({std::int64_t{-5}, std::uint64_t{18446744073709551615ULL}});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("-5"), std::string::npos);
  EXPECT_NE(os.str().find("18446744073709551615"), std::string::npos);
}

}  // namespace
}  // namespace ldc
