// Conformance grid: every OLDC solver configuration against every
// instance class it claims to handle, across seeds — validity, transcript
// determinism (via Trace digests), and the orientation-independence
// contract (a solver must respect whatever orientation it is given).
#include <gtest/gtest.h>

#include <tuple>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/multi_defect.hpp"
#include "ldc/oldc/two_phase.hpp"
#include "ldc/reduction/color_space.hpp"
#include "ldc/reduction/speedup.hpp"
#include "ldc/runtime/trace.hpp"
#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

enum class Solver { kMultiDefect, kTwoPhase, kReducedTwoPhase };
enum class Kind { kUniformDefective, kWeighted, kWeightedHiDefect,
                  kSkewedLists };

const char* solver_name(Solver s) {
  switch (s) {
    case Solver::kMultiDefect: return "multi";
    case Solver::kTwoPhase: return "two";
    case Solver::kReducedTwoPhase: return "red";
  }
  return "?";
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kUniformDefective: return "uniform";
    case Kind::kWeighted: return "weighted";
    case Kind::kWeightedHiDefect: return "hidef";
    case Kind::kSkewedLists: return "skewed";
  }
  return "?";
}

LdcInstance make_instance(Kind k, const Graph& g, const Orientation& o,
                          std::uint64_t seed) {
  switch (k) {
    case Kind::kUniformDefective:
      return uniform_defective_instance(g, 2 * o.max_beta() + 1, 2);
    case Kind::kWeighted: {
      RandomLdcParams p;
      p.color_space = 4096;
      p.one_plus_nu = 2.0;
      p.kappa = 40.0;
      p.max_defect = 3;
      p.seed = seed + 11;
      return random_weighted_oriented_instance(g, o, p);
    }
    case Kind::kWeightedHiDefect: {
      RandomLdcParams p;
      p.color_space = 4096;
      p.one_plus_nu = 2.0;
      p.kappa = 40.0;
      p.max_defect = 2 * o.max_beta();
      p.seed = seed + 23;
      return random_weighted_oriented_instance(g, o, p);
    }
    case Kind::kSkewedLists: {
      // Half the nodes get generous lists, half get barely-sufficient
      // ones — exercising heterogeneous gamma-class mixes.
      LdcInstance inst;
      inst.graph = &g;
      inst.color_space = 4096;
      inst.lists.resize(g.n());
      const Prf prf(seed + 37);
      for (NodeId v = 0; v < g.n(); ++v) {
        const bool rich = (v % 2) == 0;
        const std::size_t len = rich ? 40 * (o.beta(v) + 1)
                                     : 4 * (o.beta(v) + 1);
        auto idx = sample_distinct(prf, static_cast<std::uint64_t>(v) << 32,
                                   4096, len);
        inst.lists[v].colors.assign(idx.begin(), idx.end());
        inst.lists[v].defects.assign(
            len, rich ? 1 : o.beta(v));  // poor nodes get big defects
      }
      return inst;
    }
  }
  return {};
}

class ConformanceSweep
    : public ::testing::TestWithParam<
          std::tuple<Solver, Kind, std::uint64_t>> {};

TEST_P(ConformanceSweep, ValidAndDeterministic) {
  const auto [solver, kind, seed] = GetParam();
  Graph g = gen::random_regular(48, 8, seed);
  gen::scramble_ids(g, 1 << 20, seed + 1);
  const Orientation orient = Orientation::by_decreasing_id(g);
  const LdcInstance inst = make_instance(kind, g, orient, seed);

  auto run = [&]() -> std::pair<Coloring, std::uint64_t> {
    Network net(g);
    Trace trace;
    net.attach_trace(&trace);
    const auto lin = linial::color(net);
    switch (solver) {
      case Solver::kMultiDefect: {
        oldc::MultiDefectInput in;
        in.inst = &inst;
        in.orientation = &orient;
        in.initial = &lin.phi;
        in.m = lin.palette;
        return {oldc::solve_multi_defect(net, in).phi, trace.digest()};
      }
      case Solver::kTwoPhase: {
        oldc::TwoPhaseInput in;
        in.inst = &inst;
        in.orientation = &orient;
        in.initial = &lin.phi;
        in.m = lin.palette;
        return {oldc::solve_two_phase(net, in).phi, trace.digest()};
      }
      case Solver::kReducedTwoPhase: {
        mt::CandidateParams params;
        reduction::Options opt;
        opt.p = reduction::subspace_count_for_depth(inst.color_space, 2);
        const auto base = [&params](Network& n2, const LdcInstance& i2,
                                    const Orientation& o2,
                                    const Coloring& init2, std::uint64_t m2) {
          oldc::TwoPhaseInput in;
          in.inst = &i2;
          in.orientation = &o2;
          in.initial = &init2;
          in.m = m2;
          in.params = params;
          const auto two = oldc::solve_two_phase(n2, in);
          oldc::OldcResult r;
          r.phi = two.phi;
          r.stats = two.stats;
          r.valid = two.valid;
          return r;
        };
        return {reduction::reduce_and_solve(net, inst, orient, lin.phi,
                                            lin.palette, opt, base)
                    .phi,
                trace.digest()};
      }
    }
    return {};
  };

  const auto [phi1, digest1] = run();
  EXPECT_TRUE(validate_oldc(inst, orient, phi1).ok)
      << solver_name(solver) << "/" << kind_name(kind) << " seed " << seed;
  const auto [phi2, digest2] = run();
  EXPECT_EQ(phi1, phi2);
  EXPECT_EQ(digest1, digest2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConformanceSweep,
    ::testing::Combine(
        ::testing::Values(Solver::kMultiDefect, Solver::kTwoPhase,
                          Solver::kReducedTwoPhase),
        ::testing::Values(Kind::kUniformDefective, Kind::kWeighted,
                          Kind::kWeightedHiDefect, Kind::kSkewedLists),
        ::testing::Values(1ULL, 2ULL)),
    [](const auto& info) {
      return std::string(solver_name(std::get<0>(info.param))) + "_" +
             kind_name(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace ldc
