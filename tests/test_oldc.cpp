#include <gtest/gtest.h>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/gamma.hpp"
#include "ldc/oldc/multi_defect.hpp"
#include "ldc/oldc/single_defect.hpp"
#include "ldc/oldc/two_phase.hpp"
#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

TEST(Gamma, ClassFormula) {
  // 2^i >= 2*beta/(d+1).
  EXPECT_EQ(oldc::gamma_class(1, 0, 2), 1u);
  EXPECT_EQ(oldc::gamma_class(8, 0, 2), 4u);   // 2^4 = 16 >= 16
  EXPECT_EQ(oldc::gamma_class(8, 1, 2), 3u);   // 16/2 = 8
  EXPECT_EQ(oldc::gamma_class(8, 7, 2), 1u);   // 16/8 = 2
  EXPECT_EQ(oldc::gamma_class(8, 100, 2), 1u);
  EXPECT_EQ(oldc::gamma_class(8, 0, 4), 5u);   // factor 4
}

TEST(Gamma, ListCodecRoundTrip) {
  for (std::uint64_t space : {8ULL, 100ULL, 100000ULL}) {
    std::vector<Color> list = {1, 5, 7};
    if (space > 1000) list.push_back(99999);
    BitWriter w;
    oldc::encode_color_list(w, list, space);
    BitReader r(w);
    EXPECT_EQ(oldc::decode_color_list(r, space), list);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(Gamma, ListCodecPicksSmallerEncoding) {
  // Small space: bitmap (|C| bits + 1). Large space: explicit.
  std::vector<Color> list = {0, 1, 2};
  BitWriter small;
  oldc::encode_color_list(small, list, 16);
  EXPECT_LE(small.bit_count(), 17u);
  BitWriter large;
  oldc::encode_color_list(large, list, 1 << 20);
  EXPECT_LE(large.bit_count(), 1u + 32u + 3u * 20u);
}

// Shared fixture: builds an oriented instance with uniform defect and list
// sizes meeting the basic algorithm's needs, then solves and validates.
struct SingleDefectCase {
  Graph g;
  Orientation orient;
  oldc::SingleDefectInput in;
  std::vector<std::vector<Color>> lists;
  Coloring initial;
  std::uint64_t m = 0;
};

oldc::OldcResult run_single_defect(SingleDefectCase& c, Network& net,
                                   std::uint32_t defect,
                                   std::uint64_t color_space,
                                   std::size_t list_len, std::uint64_t seed,
                                   std::uint32_t g_window = 0) {
  const Prf prf(seed);
  c.lists.resize(c.g.n());
  for (NodeId v = 0; v < c.g.n(); ++v) {
    auto picks =
        sample_distinct(prf, static_cast<std::uint64_t>(v) << 40,
                        color_space, std::min<std::size_t>(list_len,
                                                            color_space));
    c.lists[v].assign(picks.begin(), picks.end());
  }
  // Initial proper coloring via Linial.
  const auto lin = linial::color(net);
  c.initial = lin.phi;
  c.m = lin.palette;

  c.in.graph = &c.g;
  c.in.orientation = &c.orient;
  c.in.color_space = color_space;
  c.in.lists = c.lists;
  c.in.defects.assign(c.g.n(), defect);
  c.in.initial = &c.initial;
  c.in.m = c.m;
  c.in.g = g_window;
  c.in.params.kprime = 16;
  c.in.params.tau_cap = 8;
  return oldc::solve_single_defect(net, c.in);
}

LdcInstance as_instance(const SingleDefectCase& c, std::uint32_t defect,
                        std::uint64_t color_space) {
  LdcInstance inst;
  inst.graph = &c.g;
  inst.color_space = color_space;
  inst.lists.resize(c.g.n());
  for (NodeId v = 0; v < c.g.n(); ++v) {
    inst.lists[v].colors = c.lists[v];
    inst.lists[v].defects.assign(c.lists[v].size(), defect);
  }
  return inst;
}

TEST(SingleDefect, ValidColoringModerateDefect) {
  SingleDefectCase c;
  c.g = gen::random_regular(64, 8, 1);
  c.orient = Orientation::by_decreasing_id(c.g);
  Network net(c.g);
  // defect 3 -> beta/(d+1) ~ 2, gamma classes small; lists of 96 colors.
  const auto res = run_single_defect(c, net, 3, 1024, 96, 7);
  const auto inst = as_instance(c, 3, 1024);
  EXPECT_TRUE(validate_oldc(inst, c.orient, res.phi).ok);
  EXPECT_GT(res.stats.rounds, 0u);
}

TEST(SingleDefect, ValidAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    SingleDefectCase c;
    c.g = gen::gnp(48, 0.15, seed);
    c.orient = Orientation::random(c.g, seed + 10);
    Network net(c.g);
    const auto res = run_single_defect(c, net, 2, 2048, 128, seed);
    const auto inst = as_instance(c, 2, 2048);
    EXPECT_TRUE(validate_oldc(inst, c.orient, res.phi).ok) << seed;
  }
}

TEST(SingleDefect, GeneralizedWindow) {
  SingleDefectCase c;
  c.g = gen::random_regular(40, 6, 2);
  c.orient = Orientation::by_decreasing_id(c.g);
  Network net(c.g);
  const std::uint32_t window = 2;
  const auto res = run_single_defect(c, net, 2, 4096, 160, 3, window);
  const auto inst = as_instance(c, 2, 4096);
  EXPECT_TRUE(validate_oldc(inst, c.orient, res.phi, window).ok);
}

TEST(SingleDefect, RoundsScaleWithLogBeta) {
  // Rounds = 2 + h (+ repair); h <= log2(2*beta) for defect 0.
  SingleDefectCase c;
  c.g = gen::random_regular(48, 8, 3);
  c.orient = Orientation::by_decreasing_id(c.g);
  Network net(c.g);
  const auto res = run_single_defect(c, net, 7, 2048, 64, 5);
  EXPECT_LE(res.stats.rounds - res.stats.repair_rounds,
            2u + res.stats.h + 8u /* linial rounds in same net */);
}

TEST(SingleDefect, HighDefectTrivial) {
  // defect >= beta: a single gamma class, everything valid immediately.
  SingleDefectCase c;
  c.g = gen::clique(10);
  c.orient = Orientation::by_decreasing_id(c.g);
  Network net(c.g);
  const auto res = run_single_defect(c, net, 16, 64, 8, 4);
  const auto inst = as_instance(c, 16, 64);
  EXPECT_TRUE(validate_oldc(inst, c.orient, res.phi).ok);
  EXPECT_EQ(res.stats.h, 1u);
}

TEST(SingleDefect, DeterministicTranscript) {
  SingleDefectCase c1, c2;
  c1.g = gen::gnp(40, 0.2, 5);
  c2.g = gen::gnp(40, 0.2, 5);
  c1.orient = Orientation::by_decreasing_id(c1.g);
  c2.orient = Orientation::by_decreasing_id(c2.g);
  Network n1(c1.g), n2(c2.g);
  const auto a = run_single_defect(c1, n1, 2, 1024, 96, 9);
  const auto b = run_single_defect(c2, n2, 2, 1024, 96, 9);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(n1.metrics().total_bits, n2.metrics().total_bits);
}

TEST(MultiDefect, HeterogeneousDefectsValid) {
  const Graph g = gen::random_regular(56, 8, 11);
  const Orientation orient = Orientation::by_decreasing_id(g);
  // Lists with varied defects meeting a sum (d+1)^2 >~ beta^2 * kappa
  // condition.
  RandomLdcParams p;
  p.color_space = 4096;
  p.one_plus_nu = 2.0;
  p.kappa = 40.0;
  p.max_defect = 7;
  p.seed = 21;
  const LdcInstance inst = random_weighted_oriented_instance(g, orient, p);
  Network net(g);
  const auto lin = linial::color(net);
  oldc::MultiDefectInput in;
  in.inst = &inst;
  in.orientation = &orient;
  in.initial = &lin.phi;
  in.m = lin.palette;
  in.params.kprime = 16;
  in.params.tau_cap = 8;
  const auto res = oldc::solve_multi_defect(net, in);
  EXPECT_TRUE(validate_oldc(inst, orient, res.phi).ok);
}

TEST(MultiDefect, SmallColorSpaceWindowInstance) {
  // The auxiliary-instance shape used inside two_phase: tiny color space,
  // per-color defects, window g > 0.
  const Graph g = gen::random_regular(40, 6, 13);
  const Orientation orient = Orientation::by_decreasing_id(g);
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = 8;
  inst.lists.resize(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    inst.lists[v].colors = {0, 2, 4, 6};
    inst.lists[v].defects = {6, 6, 6, 6};
  }
  Network net(g);
  const auto lin = linial::color(net);
  oldc::MultiDefectInput in;
  in.inst = &inst;
  in.orientation = &orient;
  in.initial = &lin.phi;
  in.m = lin.palette;
  in.g = 1;
  in.params.kprime = 8;
  in.params.tau_cap = 4;
  const auto res = oldc::solve_multi_defect(net, in);
  EXPECT_TRUE(validate_oldc(inst, orient, res.phi, 1).ok);
}

TEST(TwoPhase, SolvesTheorem11StyleInstance) {
  const Graph g = gen::random_regular(48, 8, 17);
  const Orientation orient = Orientation::by_decreasing_id(g);
  RandomLdcParams p;
  p.color_space = 4096;
  p.one_plus_nu = 2.0;
  p.kappa = 60.0;
  p.max_defect = 7;
  p.seed = 31;
  const LdcInstance inst = random_weighted_oriented_instance(g, orient, p);
  Network net(g);
  const auto lin = linial::color(net);
  oldc::TwoPhaseInput in;
  in.inst = &inst;
  in.orientation = &orient;
  in.initial = &lin.phi;
  in.m = lin.palette;
  in.params.kprime = 16;
  in.params.tau_cap = 8;
  const auto res = oldc::solve_two_phase(net, in);
  EXPECT_TRUE(validate_oldc(inst, orient, res.phi).ok);
  EXPECT_GT(res.stats.rounds, res.stats.aux_rounds);
}

TEST(TwoPhase, RoundsAreLogarithmicInBeta) {
  const Graph g = gen::random_regular(64, 16, 19);
  const Orientation orient = Orientation::by_decreasing_id(g);
  RandomLdcParams p;
  p.color_space = 8192;
  p.one_plus_nu = 2.0;
  p.kappa = 80.0;
  p.max_defect = 15;
  p.seed = 37;
  const LdcInstance inst = random_weighted_oriented_instance(g, orient, p);
  Network net(g);
  const auto lin = linial::color(net);
  oldc::TwoPhaseInput in;
  in.inst = &inst;
  in.orientation = &orient;
  in.initial = &lin.phi;
  in.m = lin.palette;
  in.params.kprime = 12;
  in.params.tau_cap = 8;
  const auto res = oldc::solve_two_phase(net, in);
  EXPECT_TRUE(validate_oldc(inst, orient, res.phi).ok);
  // Phases: aux + 1 + 3h (+ repair).
  EXPECT_LE(res.stats.rounds,
            res.stats.aux_rounds + 1 + 3 * res.stats.h +
                res.stats.repair_rounds);
}

}  // namespace
}  // namespace ldc
