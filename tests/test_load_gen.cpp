// Unit tests for the load generator's latency reduction. The percentile
// function is the piece that turns thousands of raw samples into the three
// numbers people actually read off a load run, so its conventions are
// pinned here: nearest-rank (ceil(p * N), 1-based), empty input reports 0,
// and the label on the report matches the timestamp pair being measured.
#include "load_gen.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ldc::bench {
namespace {

using loadgen_detail::percentile_sorted;

TEST(LoadGenPercentile, EmptySampleReportsZero) {
  const std::vector<double> none;
  EXPECT_EQ(percentile_sorted(none, 0.50), 0.0);
  EXPECT_EQ(percentile_sorted(none, 0.999), 0.0);
}

TEST(LoadGenPercentile, SingleSampleIsEveryPercentile) {
  const std::vector<double> one = {42.0};
  EXPECT_EQ(percentile_sorted(one, 0.0), 42.0);
  EXPECT_EQ(percentile_sorted(one, 0.50), 42.0);
  EXPECT_EQ(percentile_sorted(one, 1.0), 42.0);
}

TEST(LoadGenPercentile, TailRanksReachTheMaximum) {
  // 100 ascending samples 1..100. Nearest-rank p99.9 is rank
  // ceil(0.999 * 100) = 100 — the maximum. The floor-index form
  // `sorted[size_t(p * (N-1))]` picks index 98 (= 99.0) and silently
  // under-reports the tail; this is the regression the fix pins.
  std::vector<double> s(100);
  for (int i = 0; i < 100; ++i) s[i] = static_cast<double>(i + 1);
  EXPECT_EQ(percentile_sorted(s, 0.999), 100.0);
  EXPECT_EQ(percentile_sorted(s, 0.99), 99.0);   // rank ceil(99.0) = 99
  EXPECT_EQ(percentile_sorted(s, 0.50), 50.0);   // rank ceil(50.0) = 50
}

TEST(LoadGenPercentile, TwoSampleTail) {
  const std::vector<double> two = {10.0, 1000.0};
  // rank ceil(0.99 * 2) = 2: the p99 of two samples is the larger one.
  EXPECT_EQ(percentile_sorted(two, 0.99), 1000.0);
  EXPECT_EQ(percentile_sorted(two, 0.50), 10.0);  // rank ceil(1.0) = 1
}

TEST(LoadGenPercentile, RanksClampToValidRange) {
  const std::vector<double> s = {1.0, 2.0, 3.0};
  EXPECT_EQ(percentile_sorted(s, 0.0), 1.0);    // rank clamps up to 1
  EXPECT_EQ(percentile_sorted(s, 1.0), 3.0);    // rank ceil(3.0) = 3
  EXPECT_EQ(percentile_sorted(s, 2.0), 3.0);    // out-of-range p clamps
}

}  // namespace
}  // namespace ldc::bench
