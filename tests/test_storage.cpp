// The out-of-core corpus store: streaming writer round-trips, the
// MappedGraph-vs-in-RAM digest equivalence the format promises, registry
// sharing, and — because corpus files are untrusted on-disk input — a
// hostility battery where every malformed file must surface as a typed
// CorpusError naming the failing check, never a crash or a silently
// wrong graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ldc/graph/generators.hpp"
#include "ldc/storage/corpus.hpp"
#include "ldc/storage/mapped_graph.hpp"
#include "ldc/storage/registry.hpp"
#include "ldc/storage/stream_gen.hpp"

namespace ldc {
namespace {

using storage::CorpusError;
using storage::CorpusMeta;
using storage::CorpusWriter;
using storage::MappedGraph;

/// Unique corpus path under the test temp dir, removed on destruction.
class TempCorpus {
 public:
  explicit TempCorpus(const std::string& tag)
      : path_(testing::TempDir() + "corpus_" + tag + ".ldcg") {
    std::remove(path_.c_str());
  }
  ~TempCorpus() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Streams an in-RAM graph through the writer (identity ids).
CorpusMeta write_graph(const Graph& g, const std::string& path) {
  CorpusWriter w(path, g.n(), /*with_ids=*/false);
  for (NodeId v = 0; v < g.n(); ++v) w.add_vertex(g.neighbors(v));
  return w.close();
}

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  ASSERT_EQ(a.max_degree(), b.max_degree());
  for (NodeId v = 0; v < a.n(); ++v) {
    ASSERT_EQ(a.id(v), b.id(v)) << "v=" << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "v=" << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i], nb[i]) << "v=" << v << " i=" << i;
    }
  }
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CorpusWriter, RoundTripsAGeneratedGraph) {
  const Graph g = gen::gnp(300, 0.05, 11);
  TempCorpus tc("roundtrip");
  const CorpusMeta meta = write_graph(g, tc.path());
  EXPECT_EQ(meta.n, g.n());
  EXPECT_EQ(meta.m(), g.m());
  EXPECT_EQ(meta.max_degree, g.max_degree());

  const auto mg = MappedGraph::open(tc.path(), /*verify_content=*/true);
  EXPECT_EQ(mg->meta().content_digest, meta.content_digest);
  expect_same_graph(g, mg->graph());
}

TEST(CorpusWriter, RoundTripsExternalIds) {
  Graph g = gen::ring(50);
  gen::scramble_ids(g, 1 << 20, 3);
  TempCorpus tc("ids");
  CorpusWriter w(tc.path(), g.n(), /*with_ids=*/true);
  for (NodeId v = 0; v < g.n(); ++v) w.add_vertex(g.neighbors(v), g.id(v));
  w.close();
  const auto mg = MappedGraph::open(tc.path(), /*verify_content=*/true);
  EXPECT_TRUE(mg->meta().has_ids);
  expect_same_graph(g, mg->graph());
}

TEST(CorpusWriter, DigestIsContentNotName) {
  const Graph g = gen::random_regular(64, 4, 5);
  TempCorpus a("digest_a"), b("digest_b");
  EXPECT_EQ(write_graph(g, a.path()).content_digest,
            write_graph(g, b.path()).content_digest);
  const Graph h = gen::random_regular(64, 4, 6);  // different seed
  TempCorpus c("digest_c");
  EXPECT_NE(write_graph(h, c.path()).content_digest,
            write_graph(g, a.path()).content_digest);
}

TEST(CorpusWriter, RejectsBadRows) {
  TempCorpus tc("badrows");
  {
    CorpusWriter w(tc.path(), 3, false);
    const NodeId self[] = {0};
    EXPECT_THROW(w.add_vertex(self), CorpusError);  // self-loop
  }
  {
    CorpusWriter w(tc.path(), 3, false);
    const NodeId range[] = {7};
    EXPECT_THROW(w.add_vertex(range), CorpusError);  // out of range
  }
  {
    CorpusWriter w(tc.path(), 3, false);
    const NodeId unsorted[] = {2, 1};
    EXPECT_THROW(w.add_vertex(unsorted), CorpusError);  // not ascending
  }
  {
    CorpusWriter w(tc.path(), 3, false);
    const NodeId row[] = {1};
    w.add_vertex(row);
    EXPECT_THROW(w.close(), CorpusError);  // 1 of 3 rows
  }
}

TEST(CorpusWriter, CrashedBuildIsNotACorpus) {
  TempCorpus tc("crashed");
  {
    CorpusWriter w(tc.path(), 2, false);
    const NodeId row[] = {1};
    w.add_vertex(row);
    // Writer destroyed without close(): header stays zeroed.
  }
  EXPECT_THROW(MappedGraph::open(tc.path()), CorpusError);
}

// ---- Streaming generators --------------------------------------------

TEST(StreamGen, MappedEqualsMaterializedForEveryFamily) {
  using namespace storage::gen;
  const StreamSpec specs[] = {
      stream_ring(97, 1),
      stream_random_regular(120, 6, 2),
      stream_gnp(150, 12, 0.3, 3),
      stream_kronecker(7, 8.0, 4),
      stream_rgg_2d(200, 0.1, 5),
  };
  for (const auto& spec : specs) {
    TempCorpus tc("family_" + spec.kind);
    const CorpusMeta meta = write_corpus(spec, tc.path());
    const auto mg = MappedGraph::open(tc.path(), /*verify_content=*/true);
    EXPECT_EQ(mg->meta().content_digest, meta.content_digest) << spec.kind;
    const Graph ram = materialize(spec);
    SCOPED_TRACE(spec.kind);
    expect_same_graph(ram, mg->graph());
  }
}

TEST(StreamGen, OutputIndependentOfChunkSize) {
  using namespace storage::gen;
  const StreamSpec spec = stream_kronecker(6, 10.0, 9);
  TempCorpus a("chunk_a"), b("chunk_b");
  const auto da = write_corpus(spec, a.path(), /*chunk_nodes=*/7);
  const auto db = write_corpus(spec, b.path(), /*chunk_nodes=*/1u << 16);
  EXPECT_EQ(da.content_digest, db.content_digest);
}

TEST(StreamGen, ScrambledIdsAreUniqueAndRecorded) {
  using namespace storage::gen;
  StreamSpec spec = stream_ring(64, 4);
  spec.scrambled_ids = true;
  TempCorpus tc("feistel");
  write_corpus(spec, tc.path());
  const auto mg = MappedGraph::open(tc.path(), /*verify_content=*/true);
  const Graph g = mg->graph();
  std::vector<std::uint64_t> seen;
  for (NodeId v = 0; v < g.n(); ++v) seen.push_back(g.id(v));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
  // Must match the materialized oracle (same Feistel key schedule).
  const Graph ram = materialize(spec);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(g.id(v), ram.id(v));
}

TEST(StreamGen, RegularIsExactlyRegular) {
  using namespace storage::gen;
  const Graph g = materialize(stream_random_regular(101, 8, 7));
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(g.degree(v), 8u);
}

TEST(StreamGen, ValidatesSpecs) {
  using namespace storage::gen;
  EXPECT_THROW(validate(stream_ring(2, 1)), std::invalid_argument);
  EXPECT_THROW(validate(stream_random_regular(10, 3, 1)),
               std::invalid_argument);  // odd degree
  EXPECT_THROW(validate(stream_random_regular(6, 6, 1)),
               std::invalid_argument);  // too dense for circulant
  EXPECT_THROW(validate(stream_gnp(10, 0, 0.5, 1)), std::invalid_argument);
  EXPECT_THROW(validate(stream_gnp(10, 2, 1.5, 1)), std::invalid_argument);
  EXPECT_THROW(validate(stream_rgg_2d(10, 0.0, 1)), std::invalid_argument);
  StreamSpec bad = stream_ring(10, 1);
  bad.kind = "nope";
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

// ---- Hostile corpus files --------------------------------------------

class HostileCorpus : public ::testing::Test {
 protected:
  void SetUp() override {
    tc_ = std::make_unique<TempCorpus>("hostile");
    write_graph(gen::gnp(50, 0.1, 2), tc_->path());
    bytes_ = read_file(tc_->path());
    ASSERT_GE(bytes_.size(), storage::kCorpusHeaderBytes);
  }

  /// Rewrites the corpus with `bytes` and returns the open error message.
  std::string open_error(const std::vector<char>& bytes,
                         bool verify = false) {
    write_file(tc_->path(), bytes);
    try {
      MappedGraph::open(tc_->path(), verify);
    } catch (const CorpusError& e) {
      return e.what();
    }
    return "";
  }

  std::unique_ptr<TempCorpus> tc_;
  std::vector<char> bytes_;
};

TEST_F(HostileCorpus, TruncatedHeader) {
  std::vector<char> t(bytes_.begin(), bytes_.begin() + 40);
  EXPECT_NE(open_error(t).find("truncated header"), std::string::npos);
}

TEST_F(HostileCorpus, WrongMagic) {
  auto t = bytes_;
  t[0] = 'X';
  EXPECT_NE(open_error(t).find("bad magic"), std::string::npos);
}

TEST_F(HostileCorpus, WrongVersion) {
  auto t = bytes_;
  t[12] = 99;  // version field; header digest must be refreshed to match
  // A version bump alone also breaks the header digest — which is the
  // check that must fire first for a *corrupt* header. To test the
  // version check itself we must forge a valid digest, which the test
  // cannot do without reimplementing the writer — so accept either
  // message: both are typed CorpusErrors that refuse the file.
  const std::string err = open_error(t);
  EXPECT_TRUE(err.find("version") != std::string::npos ||
              err.find("digest") != std::string::npos)
      << err;
}

TEST_F(HostileCorpus, CorruptHeaderDigest) {
  auto t = bytes_;
  t[16] ^= 1;  // flip a bit of n
  EXPECT_NE(open_error(t).find("header digest mismatch"),
            std::string::npos);
}

TEST_F(HostileCorpus, FileShorterThanHeaderClaims) {
  // Keep the header page intact but drop the tail of the adjacency
  // section: the structural bounds check must catch it before any read.
  std::vector<char> t(bytes_.begin(), bytes_.end() - 64);
  EXPECT_NE(open_error(t).find("file shorter than header claims"),
            std::string::npos);
}

TEST_F(HostileCorpus, ContentCorruptionCaughtByVerify) {
  auto t = bytes_;
  t.back() ^= 0x40;  // flip a bit in the last adjacency entry
  EXPECT_NE(open_error(t, /*verify=*/true).find("content digest mismatch"),
            std::string::npos);
}

TEST_F(HostileCorpus, EmptyFile) {
  EXPECT_NE(open_error({}).find("truncated header"), std::string::npos);
}

TEST_F(HostileCorpus, MissingFile) {
  std::remove(tc_->path().c_str());
  EXPECT_THROW(MappedGraph::open(tc_->path()), CorpusError);
}

// ---- Registry ---------------------------------------------------------

TEST(CorpusRegistry, ValidatesNames) {
  EXPECT_TRUE(storage::valid_corpus_name("ring1m"));
  EXPECT_TRUE(storage::valid_corpus_name("a-b_c.2"));
  EXPECT_FALSE(storage::valid_corpus_name(""));
  EXPECT_FALSE(storage::valid_corpus_name(".hidden"));
  EXPECT_FALSE(storage::valid_corpus_name("../escape"));
  EXPECT_FALSE(storage::valid_corpus_name("a/b"));
  EXPECT_FALSE(storage::valid_corpus_name(std::string(200, 'a')));
}

TEST(CorpusRegistry, OpensOnceAndShares) {
  const std::string dir = testing::TempDir();
  TempCorpus tc("registry_reg");  // lives in dir as corpus_registry_reg.ldcg
  write_graph(gen::ring(30), tc.path());

  storage::CorpusRegistry reg(dir.substr(0, dir.size() - 1));
  const auto a = reg.get("corpus_registry_reg");
  const auto b = reg.get("corpus_registry_reg");
  EXPECT_EQ(a.get(), b.get());  // one mapping, shared

  const auto infos = reg.list();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "corpus_registry_reg");
  EXPECT_EQ(infos[0].vertices, 30u);
  EXPECT_EQ(infos[0].edges, 30u);

  EXPECT_THROW(reg.get("no/such"), CorpusError);
  EXPECT_THROW(reg.get("absent"), CorpusError);
}

TEST(CorpusRegistry, GraphOutlivesRegistryEntry) {
  const std::string dir = testing::TempDir();
  TempCorpus tc("registry_pin");
  write_graph(gen::path(16), tc.path());
  Graph g;
  {
    storage::CorpusRegistry reg(dir.substr(0, dir.size() - 1));
    g = reg.get("corpus_registry_pin")->graph();
  }
  // The registry (and its MappedGraph) are gone; the pin keeps the bytes.
  EXPECT_EQ(g.n(), 16u);
  EXPECT_EQ(g.m(), 15u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
}

}  // namespace
}  // namespace ldc
