#include "ldc/linial/cover_free.hpp"

#include <array>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "ldc/support/math.hpp"
#include "ldc/support/primes.hpp"

namespace ldc::linial {
namespace {

// Largest q whose square still fits in 64 bits: families beyond this name
// output colors no uint64 palette can hold.
constexpr std::uint64_t kMaxQ = 0xFFFFFFFFull;  // floor(sqrt(2^64 - 1))

// Cap on pow-table entries (q * (deg+1)); above it RsEvalTable falls back
// to Horner so one huge first round cannot allocate an outsized table.
constexpr std::uint64_t kMaxPowEntries = std::uint64_t{1} << 22;

}  // namespace

std::uint64_t RsFamily::output_space() const {
  return checked_mul(q, q, "RsFamily::output_space: q^2 overflows uint64");
}

std::uint64_t RsFamily::evaluate(std::uint64_t color, std::uint64_t x) const {
  assert(color < input_space);
  // Coefficients are the base-q digits of `color`.
  std::array<std::uint64_t, 64> digits{};
  const unsigned k = deg + 1;
  for (unsigned i = 0; i < k; ++i) {
    digits[i] = color % q;
    color /= q;
  }
  return poly_eval({digits.data(), k}, x, q);
}

std::uint64_t RsFamily::element(std::uint64_t color, std::uint64_t x) const {
  assert(x < q);
  return x * q + evaluate(color, x);
}

RsEvalTable::RsEvalTable(const RsFamily& fam) : fam_(fam) {
  if (fam_.q == 0) {
    throw std::invalid_argument("RsEvalTable: family has q == 0");
  }
  const std::uint64_t k = fam_.deg + 1;
  if (fam_.q > kMaxQ || sat_mul(fam_.q, k) > kMaxPowEntries) {
    return;  // Horner fallback; digit caching still applies
  }
  // Unreduced accumulation needs k * (q-1)^2 < 2^64.
  const std::uint64_t sq = (fam_.q - 1) * (fam_.q - 1);
  unreduced_ok_ =
      sq <= std::numeric_limits<std::uint64_t>::max() / k;
  pow_.resize(static_cast<std::size_t>(fam_.q * k));
  for (std::uint64_t x = 0; x < fam_.q; ++x) {
    std::uint64_t* row = &pow_[x * k];
    row[0] = fam_.q == 1 ? 0 : 1;  // x^0 mod q
    for (std::uint64_t j = 1; j < k; ++j) {
      row[j] = row[j - 1] * x % fam_.q;
    }
  }
}

void RsEvalTable::digits_of(std::uint64_t color, std::uint64_t* out) const {
  const unsigned k = fam_.deg + 1;
  for (unsigned i = 0; i < k; ++i) {
    out[i] = color % fam_.q;
    color /= fam_.q;
  }
}

std::uint64_t RsEvalTable::eval(const std::uint64_t* digits,
                                std::uint64_t x) const {
  const unsigned k = fam_.deg + 1;
  if (!pow_.empty()) {
    const std::uint64_t* row = &pow_[x * k];
    std::uint64_t acc = 0;
    if (unreduced_ok_) {
      for (unsigned j = 0; j < k; ++j) acc += digits[j] * row[j];
      return acc % fam_.q;
    }
    // q < 2^32, so each product fits; reduce per term.
    for (unsigned j = 0; j < k; ++j) {
      acc = (acc + digits[j] * row[j] % fam_.q) % fam_.q;
    }
    return acc;
  }
  return poly_eval({digits, k}, x, fam_.q);
}

std::uint64_t kth_root_ceil(std::uint64_t m, unsigned k) {
  assert(k >= 1 && m >= 1);
  if (k == 1) return m;
  std::uint64_t lo = 1, hi = 1;
  while (sat_pow(hi, k) < m) hi *= 2;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (sat_pow(mid, k) >= m) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

RsFamily choose_family(std::uint64_t m, std::uint64_t D, std::uint32_t d) {
  if (m == 0 || D == 0) throw std::invalid_argument("choose_family: m,D >= 1");
  RsFamily best;
  std::uint64_t best_out = std::numeric_limits<std::uint64_t>::max();
  bool found = false;
  for (std::uint32_t deg = 1; deg < 64; ++deg) {
    // q > D*deg/(d+1)  <=>  q >= floor(D*deg/(d+1)) + 1. D*deg can exceed
    // 64 bits for adversarial D, so the bound is computed in 128 bits — a
    // wrapped q_conflict here used to yield a tiny q that violates the
    // defect guarantee silently.
    const unsigned __int128 conflict_floor =
        static_cast<unsigned __int128>(D) * deg / (d + 1);
    if (conflict_floor >= kMaxQ) break;  // grows with deg: no deg beyond fits
    const std::uint64_t q_conflict =
        static_cast<std::uint64_t>(conflict_floor) + 1;
    const std::uint64_t q_capacity = kth_root_ceil(m, deg + 1);
    if (q_capacity <= kMaxQ) {
      const std::uint64_t q = next_prime(std::max(q_conflict, q_capacity));
      if (q <= kMaxQ) {  // prime gap cannot push past the cap in practice
        const std::uint64_t out = q * q;  // exact: q^2 <= kMaxQ^2 < 2^64
        if (out < best_out) {
          best = RsFamily{q, deg, m};
          best_out = out;
          found = true;
        }
      }
    }
    // Once capacity stops binding, larger deg only increases q_conflict.
    if (q_capacity <= q_conflict) break;
  }
  if (!found) {
    throw std::overflow_error(
        "choose_family: no representable family — q^2 would overflow uint64 "
        "for every admissible degree (m or D too large)");
  }
  return best;
}

}  // namespace ldc::linial
