#include "ldc/linial/cover_free.hpp"

#include <array>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "ldc/support/math.hpp"
#include "ldc/support/primes.hpp"

namespace ldc::linial {

std::uint64_t RsFamily::evaluate(std::uint64_t color, std::uint64_t x) const {
  assert(color < input_space);
  // Coefficients are the base-q digits of `color`.
  std::array<std::uint64_t, 64> digits{};
  const unsigned k = deg + 1;
  for (unsigned i = 0; i < k; ++i) {
    digits[i] = color % q;
    color /= q;
  }
  return poly_eval({digits.data(), k}, x, q);
}

std::uint64_t RsFamily::element(std::uint64_t color, std::uint64_t x) const {
  assert(x < q);
  return x * q + evaluate(color, x);
}

std::uint64_t kth_root_ceil(std::uint64_t m, unsigned k) {
  assert(k >= 1 && m >= 1);
  if (k == 1) return m;
  std::uint64_t lo = 1, hi = 1;
  while (sat_pow(hi, k) < m) hi *= 2;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (sat_pow(mid, k) >= m) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

RsFamily choose_family(std::uint64_t m, std::uint64_t D, std::uint32_t d) {
  if (m == 0 || D == 0) throw std::invalid_argument("choose_family: m,D >= 1");
  RsFamily best;
  std::uint64_t best_out = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t deg = 1; deg < 64; ++deg) {
    // q > D*deg/(d+1)  <=>  q >= floor(D*deg/(d+1)) + 1.
    const std::uint64_t q_conflict = D * deg / (d + 1) + 1;
    const std::uint64_t q_capacity = kth_root_ceil(m, deg + 1);
    const std::uint64_t q = next_prime(std::max(q_conflict, q_capacity));
    const std::uint64_t out = sat_mul(q, q);
    if (out < best_out) {
      best = RsFamily{q, deg, m};
      best_out = out;
    }
    // Once capacity stops binding, larger deg only increases q_conflict.
    if (q_capacity <= q_conflict) break;
  }
  return best;
}

}  // namespace ldc::linial
