// Reed-Solomon cover-free families.
//
// The classic construction behind Linial's O(log* n) coloring [Lin87] and
// its defective variant [Kuh09]: identify each of m input colors with a
// polynomial of degree `deg` over GF(q) (possible when q^(deg+1) >= m), and
// let the set of input color c be { (x, p_c(x)) : x in GF(q) } inside the
// output space [q^2]. Two distinct polynomials agree on at most `deg`
// points, so a node with at most D conflicting neighbors finds an
// evaluation point x where at most floor(D*deg/q) neighbors agree — i.e. a
// d-defective choice whenever q > D*deg/(d+1).
#pragma once

#include <cstdint>
#include <vector>

namespace ldc::linial {

/// One Reed-Solomon family: parameters are shared globally (all nodes
/// compute the same family from (m, D, d)).
struct RsFamily {
  std::uint64_t q = 0;        ///< prime field size
  std::uint32_t deg = 1;      ///< polynomial degree
  std::uint64_t input_space = 0;   ///< m: colors representable

  /// q^2; throws std::overflow_error if the output space does not fit in
  /// 64 bits (such a family names colors no palette can hold).
  std::uint64_t output_space() const;

  /// The family element of input color `color` at evaluation point `x`:
  /// the output color x*q + p_color(x).
  std::uint64_t element(std::uint64_t color, std::uint64_t x) const;

  /// p_color(x) only (the value part of the pair).
  std::uint64_t evaluate(std::uint64_t color, std::uint64_t x) const;
};

/// Per-round evaluation tables for one family. RsFamily::evaluate redoes
/// the base-q digit split of `color` (deg+1 divisions) on every (color, x)
/// call — inside a round loop that is q * |conflicts| division chains per
/// node. An RsEvalTable hoists the per-color work out of the x loop
/// (digits_of, once per color) and pre-tabulates x^j mod q for every
/// (x, j), so eval() is a dot product of table lookups with at most one
/// final modulo when q is small enough to accumulate unreduced.
///
/// Build one per round (it depends only on the family, which is shared by
/// all nodes); eval results are bit-identical to RsFamily::evaluate.
class RsEvalTable {
 public:
  explicit RsEvalTable(const RsFamily& fam);

  const RsFamily& family() const { return fam_; }

  /// Writes the base-q digits of `color` (the polynomial's coefficients)
  /// to out[0 .. deg]; out must hold deg+1 entries.
  void digits_of(std::uint64_t color, std::uint64_t* out) const;

  /// p(x) for the polynomial with coefficient vector `digits` (length
  /// deg+1), x < q.
  std::uint64_t eval(const std::uint64_t* digits, std::uint64_t x) const;

 private:
  RsFamily fam_;
  bool unreduced_ok_ = false;      ///< sum of k products fits in 64 bits
  std::vector<std::uint64_t> pow_; ///< pow_[x*(deg+1) + j] = x^j mod q;
                                   ///< empty => Horner fallback (huge q)
};

/// Smallest integer r with r^k >= m (integer k-th root, rounded up).
std::uint64_t kth_root_ceil(std::uint64_t m, unsigned k);

/// Picks the family minimizing the output space q^2 subject to
///   q^(deg+1) >= m     (every input color is a distinct polynomial)
///   q > D*deg/(d+1)    (a d-defective evaluation point always exists
///                       against <= D conflicting neighbors)
/// over deg = 1..63. m >= 1, D >= 1. All candidate arithmetic is
/// overflow-checked: degrees whose required q would make q^2 wrap 64 bits
/// are rejected, and if no degree admits a representable family the call
/// throws std::overflow_error instead of returning a wrapped (invalid)
/// family.
RsFamily choose_family(std::uint64_t m, std::uint64_t D, std::uint32_t d);

}  // namespace ldc::linial
