// Reed-Solomon cover-free families.
//
// The classic construction behind Linial's O(log* n) coloring [Lin87] and
// its defective variant [Kuh09]: identify each of m input colors with a
// polynomial of degree `deg` over GF(q) (possible when q^(deg+1) >= m), and
// let the set of input color c be { (x, p_c(x)) : x in GF(q) } inside the
// output space [q^2]. Two distinct polynomials agree on at most `deg`
// points, so a node with at most D conflicting neighbors finds an
// evaluation point x where at most floor(D*deg/q) neighbors agree — i.e. a
// d-defective choice whenever q > D*deg/(d+1).
#pragma once

#include <cstdint>

namespace ldc::linial {

/// One Reed-Solomon family: parameters are shared globally (all nodes
/// compute the same family from (m, D, d)).
struct RsFamily {
  std::uint64_t q = 0;        ///< prime field size
  std::uint32_t deg = 1;      ///< polynomial degree
  std::uint64_t input_space = 0;   ///< m: colors representable

  std::uint64_t output_space() const { return q * q; }

  /// The family element of input color `color` at evaluation point `x`:
  /// the output color x*q + p_color(x).
  std::uint64_t element(std::uint64_t color, std::uint64_t x) const;

  /// p_color(x) only (the value part of the pair).
  std::uint64_t evaluate(std::uint64_t color, std::uint64_t x) const;
};

/// Smallest integer r with r^k >= m (integer k-th root, rounded up).
std::uint64_t kth_root_ceil(std::uint64_t m, unsigned k);

/// Picks the family minimizing the output space q^2 subject to
///   q^(deg+1) >= m     (every input color is a distinct polynomial)
///   q > D*deg/(d+1)    (a d-defective evaluation point always exists
///                       against <= D conflicting neighbors)
/// over deg = 1..63. m >= 1, D >= 1.
RsFamily choose_family(std::uint64_t m, std::uint64_t D, std::uint32_t d);

}  // namespace ldc::linial
