#include "ldc/linial/defective_linial.hpp"

namespace ldc::linial {

DefectiveResult defective_color(Network& net, std::uint32_t d,
                                const Options& opt) {
  Result proper = color(net, opt);
  DefectiveResult res;
  res.defect = d;
  res.rounds = proper.rounds;
  if (d == 0) {
    res.phi = std::move(proper.phi);
    res.palette = proper.palette;
    return res;
  }
  res.phi = std::move(proper.phi);
  res.palette = reduce_once(net, res.phi, proper.palette, d, opt);
  ++res.rounds;
  return res;
}

}  // namespace ldc::linial
