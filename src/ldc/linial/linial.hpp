// Linial's deterministic coloring [Lin87] on the simulated network.
//
// Starting from the unique node IDs (a proper (max_id+1)-coloring), every
// round each node broadcasts its current color and applies a globally known
// Reed-Solomon cover-free family to shrink the palette, reaching an
// O(D^2 log ...)-size palette after O(log* n) rounds, where D bounds the
// number of conflicting neighbors (Delta, or the max outdegree beta when an
// orientation is supplied — then the output is proper only w.r.t.
// out-neighbors, matching [Lin87] as used by Theorem 1.1's preprocessing).
#pragma once

#include <cstdint>

#include "ldc/coloring/instance.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::linial {

struct Options {
  /// If set, conflicts are counted over out-neighbors only and the family
  /// degree bound uses max outdegree instead of Delta.
  const Orientation* orientation = nullptr;
  /// Safety cap on reduction rounds (the fixpoint is reached in log* n).
  std::uint32_t max_rounds = 64;
};

struct Result {
  Coloring phi;            ///< proper coloring with colors < palette
  std::uint64_t palette;   ///< final number of colors
  std::uint32_t rounds;    ///< communication rounds used
};

/// One reduction step: given a proper coloring with `palette` colors (proper
/// w.r.t. the option's conflict sets), returns the new palette and rewrites
/// phi in place. Performs exactly one communication round on `net`.
/// `defect` allows each node up to that many agreeing conflict-neighbors
/// (the [Kuh09] defective step); with defect > 0 the output is a
/// defect-accumulating coloring, so callers must track budgets.
std::uint64_t reduce_once(Network& net, Coloring& phi, std::uint64_t palette,
                          std::uint32_t defect, const Options& opt);

/// Full driver: iterate proper reduction steps from the ID coloring until
/// the palette stops shrinking.
Result color(Network& net, const Options& opt = {});

/// Same, but starting from a given proper `palette`-coloring.
Result color_from(Network& net, Coloring phi, std::uint64_t palette,
                  const Options& opt = {});

}  // namespace ldc::linial
