#include "ldc/linial/linial.hpp"

#include <array>
#include <stdexcept>
#include <vector>

#include "ldc/linial/cover_free.hpp"

namespace ldc::linial {
namespace {

std::uint64_t conflict_bound(const Graph& g, const Options& opt) {
  if (opt.orientation != nullptr) return opt.orientation->max_beta();
  return std::max<std::uint64_t>(1, g.max_degree());
}

}  // namespace

std::uint64_t reduce_once(Network& net, Coloring& phi, std::uint64_t palette,
                          std::uint32_t defect, const Options& opt) {
  const Graph& g = net.graph();
  const RsFamily fam = choose_family(palette, conflict_bound(g, opt), defect);
  // Per-round GF(q) tables: digits split once per color, x^j mod q looked
  // up instead of recomputed per (color, x) pair.
  const RsEvalTable tab(fam);
  const unsigned k = fam.deg + 1;

  // Round: everyone broadcasts its current color (O(log palette) bits) —
  // one bounded word per node, the fused fast path.
  std::vector<std::uint64_t> words(g.n());
  net.run_node_programs(
      [&](NodeId v) { words[v] = phi[v]; });
  const WordMail inboxes = net.exchange_broadcast_word(words, palette - 1);

  Coloring next(g.n());
  net.run_node_programs([&](NodeId v) {
    // Conflicting neighbors' colors, with their polynomials' coefficient
    // digits split once up front (the x loop below revisits each color
    // fam.q times).
    std::vector<std::uint64_t> conflict_digits;
    std::size_t conflicts = 0;
    for (const auto [u, word] : inboxes[v]) {
      if (opt.orientation != nullptr &&
          !opt.orientation->has_out_edge(v, u)) {
        continue;
      }
      const std::uint64_t c = word;
      // A fixed-width decode can yield values >= palette only when the
      // payload was corrupted in transit (fault injection); such claims
      // name no real color, so they cannot constrain the choice — ignore
      // them rather than index the family out of range. A neighbor
      // claiming the node's own color never agrees anywhere (c != phi[v]
      // is x-independent), so it is filtered here instead of per x.
      if (c < palette && c != phi[v]) {
        conflict_digits.resize(conflict_digits.size() + k);
        tab.digits_of(c, &conflict_digits[conflicts * k]);
        ++conflicts;
      }
    }
    std::array<std::uint64_t, 64> own;
    tab.digits_of(phi[v], own.data());
    // Pick the evaluation point with the fewest agreements; the family
    // parameters guarantee the minimum is <= defect when the input coloring
    // is proper w.r.t. the conflict set.
    std::uint64_t best_x = 0;
    std::uint64_t best_agree = conflicts + 1;
    for (std::uint64_t x = 0; x < fam.q && best_agree > 0; ++x) {
      const std::uint64_t mine = tab.eval(own.data(), x);
      std::uint64_t agree = 0;
      for (std::size_t i = 0; i < conflicts; ++i) {
        if (tab.eval(&conflict_digits[i * k], x) == mine) ++agree;
      }
      if (agree < best_agree) {
        best_agree = agree;
        best_x = x;
      }
    }
    if (best_agree > defect) {
      throw std::logic_error(
          "linial::reduce_once: no admissible evaluation point; input "
          "coloring was not proper w.r.t. the conflict sets");
    }
    next[v] = static_cast<Color>(fam.element(phi[v], best_x));
  });
  phi = std::move(next);
  return fam.output_space();
}

Result color_from(Network& net, Coloring phi, std::uint64_t palette,
                  const Options& opt) {
  Result res;
  res.rounds = 0;
  while (res.rounds < opt.max_rounds) {
    const std::uint64_t bound = conflict_bound(net.graph(), opt);
    const RsFamily fam = choose_family(palette, bound, 0);
    if (fam.output_space() >= palette) break;  // fixpoint reached
    palette = reduce_once(net, phi, palette, 0, opt);
    ++res.rounds;
  }
  res.phi = std::move(phi);
  res.palette = palette;
  return res;
}

Result color(Network& net, const Options& opt) {
  const Graph& g = net.graph();
  Coloring phi(g.n());
  net.run_node_programs(
      [&](NodeId v) { phi[v] = static_cast<Color>(g.id(v)); });
  return color_from(net, std::move(phi), g.max_id() + 1, opt);
}

}  // namespace ldc::linial
