// Defective Linial coloring [Kuh09]: a d-defective coloring with
// O((Delta*deg/(d+1))^2) colors in O(log* n) rounds — the proper Linial
// fixpoint followed by a single defective reduction step that tolerates up
// to d agreeing neighbors.
#pragma once

#include "ldc/linial/linial.hpp"

namespace ldc::linial {

struct DefectiveResult {
  Coloring phi;
  std::uint64_t palette;   ///< number of colors of the defective coloring
  std::uint32_t defect;    ///< guaranteed max defect
  std::uint32_t rounds;
};

/// d-defective coloring via proper Linial + one defective step. With an
/// orientation in opt, the defect guarantee is on out-neighbors.
DefectiveResult defective_color(Network& net, std::uint32_t d,
                                const Options& opt = {});

}  // namespace ldc::linial
