// The `ldc_bench` command-line driver: selects registered experiments,
// runs them under one RunConfig, prints their tables, streams structured
// output through the Sink, and applies the baseline layer.
//
//   ldc_bench --list                      enumerate experiments
//   ldc_bench                             run everything, print tables
//   ldc_bench --filter oldc --filter e0   substring selection
//   ldc_bench --smoke                     CI-scale parameter sweeps
//   ldc_bench --threads 4                 parallel engine, 4 lanes
//   ldc_bench --shards 4                  sharded engine, 4 shards
//   ldc_bench --out bench_output          JSONL + CSV + table dumps
//   ldc_bench --smoke --write-baseline BENCH_seed.json
//   ldc_bench --smoke --baseline BENCH_seed.json --check
//
// Exit codes: 0 success, 1 baseline drift or a failed experiment,
// 2 usage error.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ldc/harness/baseline.hpp"
#include "ldc/harness/experiment.hpp"

namespace ldc::harness {

struct CliOptions {
  bool list = false;
  bool smoke = false;
  bool check = false;
  bool print_tables = true;
  std::vector<std::string> filters;
  std::size_t threads = 0;        ///< 0 = unset
  bool parallel = false;          ///< --engine parallel (or --threads > 1)
  bool sharded = false;           ///< --engine sharded (or --shards)
  std::size_t shards = 0;         ///< 0 = LDC_SHARDS / hardware fallback
  std::string out_dir;            ///< empty = no structured output
  std::string baseline_path;      ///< --baseline
  std::string write_baseline_path;  ///< --write-baseline
  BaselineOptions baseline_options;
};

/// Parses argv; throws std::invalid_argument with a usage message on bad
/// input.
CliOptions parse_cli(int argc, const char* const* argv);

/// Runs the selected experiments and applies list/sink/baseline behaviour;
/// returns the process exit code. Output goes to `out` (tables, progress,
/// drift reports) and `err` (failures).
int run_cli(const CliOptions& options, std::ostream& out, std::ostream& err);

/// main() adapter: parse + run, mapping parse errors to exit code 2.
int bench_main(int argc, const char* const* argv);

}  // namespace ldc::harness
