// Experiment descriptors and the per-run context handed to their bodies.
//
// Every quantitative claim reproduced from the paper is one Experiment: a
// stable name, the claim it backs, the parameter axes it sweeps, and a run
// callback. The callback emits *typed rows* into ResultTables (the same
// cell variant the plain-text Table printer uses, so one run renders the
// markdown tables EXPERIMENTS.md quotes AND serializes to JSONL/CSV) and
// may register Networks with the context to capture their RunMetrics and
// per-round Trace into the structured output.
//
// Smoke mode (`ExperimentContext::smoke()`) asks the body to shrink its
// sweep to CI scale; bodies pick their axes with `ctx.pick(full, smoke)`.
// Everything an experiment emits must be deterministic given the build —
// the baseline checker (baseline.hpp) diffs rows and model-exact metrics
// bit-for-bit. The single observational quantity is wall-clock: it lives
// in RunMetrics::wall_ns / Trace rounds, and table columns whose header
// contains "wall" or "(obs)" are exempted from exact comparison.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ldc/runtime/metrics.hpp"
#include "ldc/runtime/network.hpp"
#include "ldc/runtime/trace.hpp"
#include "ldc/support/tables.hpp"

namespace ldc::harness {

/// How one invocation of the harness executes every selected experiment.
struct RunConfig {
  bool smoke = false;  ///< shrunk parameter sweeps for CI
  Network::Engine engine = Network::Engine::kSerial;
  std::size_t threads = 0;  ///< 0 = LDC_THREADS / hardware (parallel only)
  bool capture_rounds = true;  ///< keep per-round trace rows for JSONL
};

/// A table of typed rows; the structured twin of ldc::Table.
class ResultTable {
 public:
  using Cell = Table::Cell;

  ResultTable(std::string title, std::vector<std::string> headers);

  /// Appends one row; throws std::invalid_argument on arity mismatch
  /// (unlike Table, which only asserts — harness rows feed the baseline
  /// checker, so malformed rows must not slip into release builds).
  void add_row(std::vector<Cell> cells);

  const std::string& title() const { return title_; }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }

  /// Renders through the plain-text Table printer.
  Table to_table() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

/// Snapshot of one tracked Network sub-run.
struct MetricRecord {
  std::string label;          ///< e.g. "pipeline/Delta=16"
  RunMetrics metrics;
  std::uint64_t trace_digest = 0;   ///< 0 when the net was not prepared
  std::vector<Trace::Round> rounds; ///< per-round rows (may be empty)
  Network::Engine engine = Network::Engine::kSerial;
  std::size_t threads = 1;
};

/// Everything one experiment produced. Tables live in a deque so the
/// references ExperimentContext::table() hands out stay valid while the
/// run body opens further tables.
struct ExperimentResult {
  std::string name;
  std::deque<ResultTable> tables;
  std::vector<MetricRecord> runs;
  std::uint64_t wall_ns = 0;  ///< whole-experiment host time (observational)
};

/// Handed to the run callback; collects tables and metric records.
class ExperimentContext {
 public:
  ExperimentContext(std::string name, const RunConfig& config);

  bool smoke() const { return config_.smoke; }
  const RunConfig& config() const { return config_; }

  /// Sweep selection: the full axis normally, the shrunk one under --smoke.
  /// Returns by value so `for (auto v : ctx.pick<...>({...}, {...}))` never
  /// dangles (C++20 range-for does not extend inner temporaries' lifetime).
  template <typename T>
  T pick(T full, T smoke_axis) const {
    return config_.smoke ? std::move(smoke_axis) : std::move(full);
  }

  /// Opens a new result table; the reference stays valid for the run.
  ResultTable& table(std::string title, std::vector<std::string> headers);

  /// Applies the run's engine/thread configuration to `net` and attaches a
  /// context-owned Trace so record() can capture per-round rows. Call
  /// right after constructing the Network, before any exchange.
  void prepare(Network& net);

  /// Snapshots `net`'s RunMetrics (and, if prepared, its trace digest and
  /// per-round rows) under `label`. Call while `net` is still alive —
  /// typically right after the algorithm under measurement returns.
  void record(std::string label, const Network& net);

  /// Moves the accumulated result out (the runner calls this once).
  ExperimentResult take_result();

 private:
  RunConfig config_;
  ExperimentResult result_;
  // Trace storage must be address-stable: Networks hold raw pointers to
  // their attached trace until destruction.
  std::vector<std::unique_ptr<Trace>> traces_;
  std::vector<std::pair<const Network*, const Trace*>> attached_;
};

/// One registered experiment.
struct Experiment {
  std::string name;   ///< stable key, e.g. "e01_rounds_vs_delta"
  std::string claim;  ///< the paper claim the experiment backs
  std::vector<std::string> axes;  ///< parameter axes swept
  std::function<void(ExperimentContext&)> run;
};

}  // namespace ldc::harness
