#include "ldc/harness/experiment.hpp"

#include <algorithm>

namespace ldc::harness {

ResultTable::ResultTable(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void ResultTable::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(
        "ResultTable '" + title_ + "': row arity " +
        std::to_string(cells.size()) + " != header arity " +
        std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

Table ResultTable::to_table() const {
  Table t(title_, headers_);
  for (const auto& row : rows_) t.add_row(row);
  return t;
}

ExperimentContext::ExperimentContext(std::string name,
                                     const RunConfig& config)
    : config_(config) {
  result_.name = std::move(name);
}

ResultTable& ExperimentContext::table(std::string title,
                                      std::vector<std::string> headers) {
  result_.tables.emplace_back(std::move(title), std::move(headers));
  return result_.tables.back();
}

void ExperimentContext::prepare(Network& net) {
  net.set_engine(config_.engine, config_.threads);
  traces_.push_back(std::make_unique<Trace>());
  net.attach_trace(traces_.back().get());
  // Loop-scoped Networks reuse the same stack address across iterations, so
  // a fresh prepare() invalidates any earlier mapping for this pointer.
  attached_.erase(std::remove_if(attached_.begin(), attached_.end(),
                                 [&](const auto& entry) {
                                   return entry.first == &net;
                                 }),
                  attached_.end());
  attached_.emplace_back(&net, traces_.back().get());
}

void ExperimentContext::record(std::string label, const Network& net) {
  MetricRecord rec;
  rec.label = std::move(label);
  rec.metrics = net.metrics();
  rec.engine = net.engine();
  rec.threads = net.threads();
  // Newest-first so the latest prepare() wins for a reused address.
  for (auto it = attached_.rbegin(); it != attached_.rend(); ++it) {
    if (it->first == &net) {
      rec.trace_digest = it->second->digest();
      if (config_.capture_rounds) rec.rounds = it->second->rounds();
      break;
    }
  }
  result_.runs.push_back(std::move(rec));
}

ExperimentResult ExperimentContext::take_result() {
  return std::move(result_);
}

}  // namespace ldc::harness
