// Structured metric sink: serializes experiment results to JSONL and CSV
// alongside the human-readable tables, stamped with build provenance.
//
// Output layout under the chosen directory:
//   results.jsonl          one JSON object per line:
//                            {"type":"run", ...provenance...}        (first)
//                            {"type":"table_row", ...}   one per table row
//                            {"type":"metrics", ...}     one per tracked net
//                            {"type":"round", ...}       per-round trace rows
//                            {"type":"experiment", ...}  per-experiment close
//   csv/<experiment>.<k>.csv   one CSV per result table (k = table index)
//   tables/<experiment>.txt    the plain-text tables, as printed to stdout
//
// Everything in the JSONL except wall_ns fields is deterministic given the
// build; downstream tooling (plots, CI trend lines) can rely on exact
// reproduction.
#pragma once

#include <fstream>
#include <string>

#include "ldc/harness/experiment.hpp"
#include "ldc/harness/json.hpp"

namespace ldc::harness {

/// Build/run provenance stamped into every output file.
struct Provenance {
  std::string git_rev;      ///< configure-time `git rev-parse --short HEAD`
  std::string build_type;   ///< CMAKE_BUILD_TYPE
  std::string build_flags;  ///< CMAKE_CXX_FLAGS
  std::string engine;       ///< "serial" | "parallel"
  std::size_t threads = 0;  ///< 0 = resolved at Network level
  bool smoke = false;
};

/// Provenance for this build under the given run configuration. git_rev /
/// build flags come from compile definitions injected by CMake at
/// configure time (so they go stale only until the next reconfigure).
Provenance make_provenance(const RunConfig& config);

Json to_json(const Provenance& p);
Json to_json(const RunMetrics& m);
/// One table cell; uint/int/double/string map to their JSON kinds.
Json to_json(const ResultTable::Cell& cell);

/// True for table columns holding host-time measurements ("wall" or
/// "(obs)" in the header): excluded from exact baseline comparison.
bool observational_column(const std::string& header);

class Sink {
 public:
  /// Creates `out_dir` (and csv/, tables/ beneath it) and opens
  /// results.jsonl with the provenance header record. Throws
  /// std::runtime_error when the directory or files cannot be created.
  Sink(std::string out_dir, const Provenance& provenance);

  /// Serializes one experiment's tables, metric records and per-round
  /// trace rows.
  void write(const ExperimentResult& result);

  const std::string& out_dir() const { return out_dir_; }

 private:
  void write_csv(const ExperimentResult& result);
  void write_tables(const ExperimentResult& result);

  std::string out_dir_;
  std::ofstream jsonl_;
};

}  // namespace ldc::harness
