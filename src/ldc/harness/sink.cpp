#include "ldc/harness/sink.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <stdexcept>
#include <variant>

#ifndef LDC_GIT_REV
#define LDC_GIT_REV "unknown"
#endif
#ifndef LDC_BUILD_TYPE
#define LDC_BUILD_TYPE ""
#endif
#ifndef LDC_BUILD_FLAGS
#define LDC_BUILD_FLAGS ""
#endif

namespace ldc::harness {
namespace {

const char* engine_name(Network::Engine e) {
  switch (e) {
    case Network::Engine::kParallel: return "parallel";
    case Network::Engine::kSharded: return "sharded";
    case Network::Engine::kDist: return "dist";
    case Network::Engine::kSerial: break;
  }
  return "serial";
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string cell_text(const ResultTable::Cell& cell) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return v;
        } else {
          // Reuse JSON number formatting so CSV and JSONL agree exactly.
          return Json(v).dump();
        }
      },
      cell);
}

}  // namespace

Provenance make_provenance(const RunConfig& config) {
  Provenance p;
  p.git_rev = LDC_GIT_REV;
  p.build_type = LDC_BUILD_TYPE;
  p.build_flags = LDC_BUILD_FLAGS;
  p.engine = engine_name(config.engine);
  p.threads = config.threads;
  p.smoke = config.smoke;
  return p;
}

Json to_json(const Provenance& p) {
  Json o = Json::object();
  o.add("git_rev", p.git_rev);
  o.add("build_type", p.build_type);
  o.add("build_flags", p.build_flags);
  o.add("engine", p.engine);
  o.add("threads", static_cast<std::uint64_t>(p.threads));
  o.add("smoke", p.smoke);
  return o;
}

Json to_json(const RunMetrics& m) {
  Json o = Json::object();
  o.add("rounds", m.rounds);
  o.add("messages", m.messages);
  o.add("total_bits", m.total_bits);
  o.add("max_message_bits", static_cast<std::uint64_t>(m.max_message_bits));
  o.add("congest_violations", m.congest_violations);
  o.add("messages_dropped", m.messages_dropped);
  o.add("messages_corrupted", m.messages_corrupted);
  o.add("node_crashes", m.node_crashes);
  o.add("node_sleeps", m.node_sleeps);
  o.add("wall_ns", m.wall_ns);
  return o;
}

Json to_json(const ResultTable::Cell& cell) {
  return std::visit([](const auto& v) { return Json(v); }, cell);
}

bool observational_column(const std::string& header) {
  std::string h = header;
  std::transform(h.begin(), h.end(), h.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return h.find("wall") != std::string::npos ||
         h.find("(obs)") != std::string::npos;
}

Sink::Sink(std::string out_dir, const Provenance& provenance)
    : out_dir_(std::move(out_dir)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const char* sub : {"", "csv", "tables"}) {
    const fs::path p = fs::path(out_dir_) / sub;
    fs::create_directories(p, ec);
    if (ec) {
      throw std::runtime_error("sink: cannot create " + p.string() + ": " +
                               ec.message());
    }
  }
  const std::string path = (fs::path(out_dir_) / "results.jsonl").string();
  jsonl_.open(path, std::ios::trunc);
  if (!jsonl_) throw std::runtime_error("sink: cannot open " + path);
  Json run = Json::object();
  run.add("type", "run");
  run.add("schema", std::uint64_t{1});
  const Json prov = to_json(provenance);
  for (const auto& [k, v] : prov.as_object()) run.add(k, v);
  jsonl_ << run.dump() << '\n';
}

void Sink::write(const ExperimentResult& result) {
  for (const ResultTable& t : result.tables) {
    const auto& headers = t.headers();
    for (std::size_t r = 0; r < t.rows().size(); ++r) {
      Json row = Json::object();
      row.add("type", "table_row");
      row.add("experiment", result.name);
      row.add("table", t.title());
      row.add("index", static_cast<std::uint64_t>(r));
      Json cells = Json::object();
      for (std::size_t c = 0; c < headers.size(); ++c) {
        cells.add(headers[c], to_json(t.rows()[r][c]));
      }
      row.add("cells", std::move(cells));
      jsonl_ << row.dump() << '\n';
    }
  }
  for (const MetricRecord& rec : result.runs) {
    Json m = Json::object();
    m.add("type", "metrics");
    m.add("experiment", result.name);
    m.add("label", rec.label);
    m.add("engine", engine_name(rec.engine));
    m.add("threads", static_cast<std::uint64_t>(rec.threads));
    m.add("trace_digest", rec.trace_digest);
    const Json metrics = to_json(rec.metrics);
    for (const auto& [k, v] : metrics.as_object()) m.add(k, v);
    jsonl_ << m.dump() << '\n';
    for (const Trace::Round& round : rec.rounds) {
      Json r = Json::object();
      r.add("type", "round");
      r.add("experiment", result.name);
      r.add("label", rec.label);
      r.add("round", round.index);
      r.add("mark", round.mark);
      r.add("messages", round.messages);
      r.add("bits", round.bits);
      r.add("max_message_bits",
            static_cast<std::uint64_t>(round.max_message_bits));
      r.add("wall_ns", round.wall_ns);
      if (round.faults.any()) {
        Json f = Json::object();
        f.add("dropped", round.faults.dropped);
        f.add("corrupted", round.faults.corrupted);
        f.add("crashes", round.faults.crashes);
        f.add("sleeps", round.faults.sleeps);
        r.add("faults", std::move(f));
      }
      jsonl_ << r.dump() << '\n';
    }
  }
  Json close = Json::object();
  close.add("type", "experiment");
  close.add("experiment", result.name);
  close.add("tables", static_cast<std::uint64_t>(result.tables.size()));
  close.add("runs", static_cast<std::uint64_t>(result.runs.size()));
  close.add("wall_ns", result.wall_ns);
  jsonl_ << close.dump() << '\n';
  jsonl_.flush();

  write_csv(result);
  write_tables(result);
}

void Sink::write_csv(const ExperimentResult& result) {
  namespace fs = std::filesystem;
  for (std::size_t i = 0; i < result.tables.size(); ++i) {
    const ResultTable& t = result.tables[i];
    const std::string path =
        (fs::path(out_dir_) / "csv" /
         (result.name + "." + std::to_string(i) + ".csv"))
            .string();
    std::ofstream os(path, std::ios::trunc);
    if (!os) throw std::runtime_error("sink: cannot open " + path);
    os << "# " << t.title() << '\n';
    for (std::size_t c = 0; c < t.headers().size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(t.headers()[c]);
    }
    os << '\n';
    for (const auto& row : t.rows()) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << (c == 0 ? "" : ",") << csv_escape(cell_text(row[c]));
      }
      os << '\n';
    }
  }
}

void Sink::write_tables(const ExperimentResult& result) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::path(out_dir_) / "tables" / (result.name + ".txt")).string();
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("sink: cannot open " + path);
  for (const ResultTable& t : result.tables) t.to_table().print(os);
}

}  // namespace ldc::harness
