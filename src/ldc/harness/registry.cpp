#include "ldc/harness/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace ldc::harness {

Registry& Registry::instance() {
  // Function-local static: safe against the static initialization order
  // fiasco — Registrars in other translation units may run first.
  static Registry registry;
  return registry;
}

void Registry::add(Experiment e) {
  if (e.name.empty()) {
    throw std::invalid_argument("registry: experiment name must not be empty");
  }
  if (!e.run) {
    throw std::invalid_argument("registry: experiment '" + e.name +
                                "' has no run callback");
  }
  if (find(e.name) != nullptr) {
    throw std::invalid_argument("registry: duplicate experiment '" + e.name +
                                "'");
  }
  experiments_.push_back(std::move(e));
}

std::vector<const Experiment*> Registry::all() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const auto& e : experiments_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              return a->name < b->name;
            });
  return out;
}

const Experiment* Registry::find(std::string_view name) const {
  for (const auto& e : experiments_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<const Experiment*> Registry::match(
    const std::vector<std::string>& filters) const {
  if (filters.empty()) return all();
  std::vector<const Experiment*> out;
  for (const Experiment* e : all()) {
    for (const auto& f : filters) {
      if (e->name.find(f) != std::string::npos ||
          e->claim.find(f) != std::string::npos) {
        out.push_back(e);
        break;
      }
    }
  }
  return out;
}

Registrar::Registrar(Experiment e) {
  Registry::instance().add(std::move(e));
}

}  // namespace ldc::harness
