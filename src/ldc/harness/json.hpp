// Minimal JSON document model for the experiment harness: the metric sink
// writes JSONL / baseline files with it, and the baseline checker parses
// them back. Deliberately tiny — objects preserve insertion order (so
// emitted files diff cleanly in git), integers round-trip exactly through
// int64/uint64 (bit counters must not pass through a double), and parse
// errors carry byte offsets. Non-BMP codepoints round-trip as \uXXXX
// surrogate pairs (the writer synthesizes them for 4-byte UTF-8, the
// parser recombines them; lone surrogate halves are rejected). Not a
// general-purpose JSON library: no streaming.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ldc::harness {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };
  using Array = std::vector<Json>;
  /// Insertion-ordered; duplicate keys are not rejected, first one wins on
  /// lookup.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Json(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(unsigned v) : kind_(Kind::kUint), uint_(v) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Json(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }

  bool as_bool() const { expect(Kind::kBool); return bool_; }
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  /// Any numeric kind, widened to double.
  double as_double() const;
  const std::string& as_string() const {
    expect(Kind::kString);
    return string_;
  }
  const Array& as_array() const { expect(Kind::kArray); return array_; }
  const Object& as_object() const { expect(Kind::kObject); return object_; }

  /// Object member lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  /// Object member lookup; throws JsonError when absent.
  const Json& at(const std::string& key) const;

  /// Appends a member (object) / element (array).
  void add(std::string key, Json value);
  void push_back(Json value);

  /// Compact single-line rendering (JSONL-safe: no raw newlines).
  std::string dump() const;
  /// Pretty rendering with two-space indent (for committed baselines).
  std::string dump_pretty() const;

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  /// Parses one complete document; trailing non-space input is an error.
  static Json parse(const std::string& text);

  /// Line-delimited entry point for JSONL protocols: parses exactly one
  /// document from one framing line. Unlike parse() — which skips any
  /// leading whitespace, silently accepting blank lines glued onto a
  /// document — this rejects embedded newline bytes ('\n'/'\r' anywhere,
  /// a framing violation), and rejects empty or whitespace-only input,
  /// always reporting the byte offset of the offence.
  static Json parse_line(const std::string& line);

 private:
  void expect(Kind k) const;
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace ldc::harness
