#include "ldc/harness/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>

namespace ldc::harness {
namespace {

const char* kind_name(Json::Kind k) {
  switch (k) {
    case Json::Kind::kNull: return "null";
    case Json::Kind::kBool: return "bool";
    case Json::Kind::kInt: return "int";
    case Json::Kind::kUint: return "uint";
    case Json::Kind::kDouble: return "double";
    case Json::Kind::kString: return "string";
    case Json::Kind::kArray: return "array";
    case Json::Kind::kObject: return "object";
  }
  return "?";
}

void escape_into(const std::string& s, std::string& out) {
  out.push_back('"');
  for (std::size_t i = 0; i < s.size();) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      ++i;
      continue;
    }
    // Non-BMP codepoints (4-byte UTF-8) must be escaped as a UTF-16
    // surrogate pair — raw astral-plane bytes survive a round trip, but a
    // \uXXXX-only consumer (or a CESU-8 producer on the other side) would
    // disagree; BMP multi-byte UTF-8 passes through raw, which every JSON
    // parser accepts. Invalid UTF-8 also passes through raw, unchanged
    // from the previous behaviour.
    if ((c & 0xF8) == 0xF0 && i + 3 < s.size() &&
        (static_cast<unsigned char>(s[i + 1]) & 0xC0) == 0x80 &&
        (static_cast<unsigned char>(s[i + 2]) & 0xC0) == 0x80 &&
        (static_cast<unsigned char>(s[i + 3]) & 0xC0) == 0x80) {
      const std::uint32_t cp =
          (static_cast<std::uint32_t>(c & 0x07) << 18) |
          (static_cast<std::uint32_t>(s[i + 1] & 0x3F) << 12) |
          (static_cast<std::uint32_t>(s[i + 2] & 0x3F) << 6) |
          static_cast<std::uint32_t>(s[i + 3] & 0x3F);
      if (cp >= 0x10000 && cp <= 0x10FFFF) {
        const std::uint32_t off = cp - 0x10000;
        char buf[16];
        std::snprintf(buf, sizeof buf, "\\u%04x\\u%04x",
                      0xD800 + (off >> 10), 0xDC00 + (off & 0x3FF));
        out += buf;
        i += 4;
        continue;
      }
    }
    out.push_back(static_cast<char>(c));
    ++i;
  }
  out.push_back('"');
}

/// Shortest representation that parses back to the same double.
void double_into(double v, std::string& out) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; store as null
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0;
  std::sscanf(buf, "%lf", &back);
  if (back == v) {
    char shorter[32];
    for (int prec = 1; prec < 17; ++prec) {
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &back);
      if (back == v) {
        std::memcpy(buf, shorter, sizeof buf);
        break;
      }
    }
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json document() {
    Json v = value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json parse error at byte " + std::to_string(pos_) +
                    ": " + what);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* w) {
    const std::size_t len = std::strlen(w);
    if (text_.compare(pos_, len, w) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json value() {
    skip_space();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (consume_word("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_word("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_word("null")) return Json(nullptr);
        fail("bad literal");
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_space();
    if (peek() == '}') { ++pos_; return obj; }
    while (true) {
      skip_space();
      std::string key = string();
      skip_space();
      expect(':');
      obj.add(std::move(key), value());
      skip_space();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return obj;
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_space();
    if (peek() == ']') { ++pos_; return arr; }
    while (true) {
      arr.push_back(value());
      skip_space();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return arr;
    }
  }

  /// Four hex digits of a \uXXXX escape (the "\u" is already consumed).
  unsigned hex4() {
    if (pos_ + 4 > text_.size()) fail("short \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out.push_back(c); continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          unsigned code = hex4();
          // UTF-16 surrogate halves are not codepoints: a high surrogate
          // must be followed by "\uDC00".."\uDFFF", and the pair decodes
          // to one astral-plane codepoint (4-byte UTF-8). Lone halves in
          // either order are malformed input, rejected loudly.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            const unsigned low = hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("unpaired high surrogate in \\u escape");
            }
            const std::uint32_t cp =
                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            break;
          }
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    bool negative = false;
    bool integral = true;
    if (peek() == '-') { negative = true; ++pos_; }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) { ++pos_; continue; }
      if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ == start + (negative ? 1u : 0u)) fail("bad number");
    const std::string tok = text_.substr(start, pos_ - start);
    const char* const tok_end = tok.c_str() + tok.size();
    char* end = nullptr;
    if (integral) {
      errno = 0;
      if (negative) {
        const long long v = std::strtoll(tok.c_str(), &end, 10);
        if (errno == 0 && end == tok_end) {
          return Json(static_cast<std::int64_t>(v));
        }
      } else {
        const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
        if (errno == 0 && end == tok_end) {
          return Json(static_cast<std::uint64_t>(v));
        }
      }
    }
    // The scanner consumes any digit/.eE+- run, so a corrupted token like
    // '1e5e5' or '1.2.3' reaches here; require strtod to consume it fully
    // rather than silently parsing a valid prefix.
    end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok_end) fail("bad number");
    return Json(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

void Json::expect(Kind k) const {
  if (kind_ != k) {
    throw JsonError(std::string("json: expected ") + kind_name(k) +
                    ", have " + kind_name(kind_));
  }
}

std::int64_t Json::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kUint) {
    if (uint_ > static_cast<std::uint64_t>(
                    std::numeric_limits<std::int64_t>::max())) {
      throw JsonError("json: uint out of int64 range");
    }
    return static_cast<std::int64_t>(uint_);
  }
  throw JsonError(std::string("json: expected int, have ") +
                  kind_name(kind_));
}

std::uint64_t Json::as_uint() const {
  if (kind_ == Kind::kUint) return uint_;
  if (kind_ == Kind::kInt) {
    if (int_ < 0) throw JsonError("json: negative int as uint");
    return static_cast<std::uint64_t>(int_);
  }
  throw JsonError(std::string("json: expected uint, have ") +
                  kind_name(kind_));
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return double_;
    default:
      throw JsonError(std::string("json: expected number, have ") +
                      kind_name(kind_));
  }
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) throw JsonError("json: missing member '" + key + "'");
  return *v;
}

void Json::add(std::string key, Json value) {
  expect(Kind::kObject);
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  expect(Kind::kArray);
  array_.push_back(std::move(value));
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: double_into(double_, out); break;
    case Kind::kString: escape_into(string_, out); break;
    case Kind::kArray: {
      out.push_back('[');
      // Arrays of scalars stay on one line even in pretty mode (baseline
      // table rows read naturally that way).
      bool nested = false;
      for (const auto& v : array_) {
        nested = nested || v.kind_ == Kind::kArray || v.kind_ == Kind::kObject;
      }
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += nested ? "," : ", ";
        if (nested) newline(depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (nested && !array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        escape_into(object_[i].first, out);
        out += pretty ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  out.push_back('\n');
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).document();
}

Json Json::parse_line(const std::string& line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\n' || line[i] == '\r') {
      throw JsonError("json parse error at byte " + std::to_string(i) +
                      ": embedded newline in line-delimited document");
    }
  }
  std::size_t first = 0;
  while (first < line.size() &&
         std::isspace(static_cast<unsigned char>(line[first]))) {
    ++first;
  }
  if (first == line.size()) {
    throw JsonError("json parse error at byte " + std::to_string(first) +
                    ": blank line where a document was expected");
  }
  return Parser(line).document();
}

}  // namespace ldc::harness
