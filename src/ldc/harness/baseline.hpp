// Baseline / regression layer: a committed JSON snapshot of every
// experiment's deterministic output, diffed against a fresh run.
//
// Deterministic quantities — table cells, RunMetrics' model-exact fields
// and trace digests — must match *exactly*: the simulator is seeded and
// engine-independent, so any drift is a real behaviour change (round
// counts, message bits, colors, validity verdicts). Wall-clock is the one
// observational quantity: metrics wall_ns is compared within a generous
// multiplicative tolerance (with an absolute floor so micro-runs cannot
// flake), and table columns flagged observational (header contains "wall"
// or "(obs)") are skipped entirely.
//
// `ldc_bench --smoke --write-baseline BENCH_seed.json` regenerates the
// committed snapshot; `--baseline BENCH_seed.json --check` exits non-zero
// on drift, which is the CI regression gate.
#pragma once

#include <string>
#include <vector>

#include "ldc/harness/experiment.hpp"
#include "ldc/harness/json.hpp"
#include "ldc/harness/sink.hpp"

namespace ldc::harness {

struct BaselineOptions {
  /// Multiplicative wall-clock tolerance: wall_ns values a and b agree
  /// when max(a,b) <= factor * max(min(a,b), wall_floor_ns). <= 0 disables
  /// wall-clock checking entirely.
  double wall_tolerance = 1000.0;
  /// Differences where both sides are below this are always accepted
  /// (sub-millisecond measurements are pure jitter).
  std::uint64_t wall_floor_ns = 1'000'000;
};

struct BaselineDiff {
  std::vector<std::string> mismatches;  ///< hard failures (drift)
  std::vector<std::string> notes;      ///< informational (wall deviations)
  bool ok() const { return mismatches.empty(); }
};

/// Serializes a full run into the committed baseline document.
Json baseline_json(const std::vector<ExperimentResult>& results,
                   const Provenance& provenance);

/// Diffs a fresh run against a parsed baseline. `ran_all` distinguishes a
/// filtered run (baseline experiments missing from `results` are ignored)
/// from a full one (they are drift).
BaselineDiff check_baseline(const Json& baseline,
                            const std::vector<ExperimentResult>& results,
                            const BaselineOptions& options, bool ran_all);

/// File helpers; throw std::runtime_error / JsonError on IO or parse
/// failure.
void save_baseline(const std::string& path, const Json& baseline);
Json load_baseline(const std::string& path);

}  // namespace ldc::harness
