#include "ldc/harness/runner.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "ldc/harness/registry.hpp"
#include "ldc/harness/sink.hpp"

namespace ldc::harness {
namespace {

constexpr const char* kUsage = R"(usage: ldc_bench [options]

selection
  --list                 list registered experiments and exit
  --filter SUBSTR        run experiments whose name/claim contains SUBSTR
                         (repeatable; default: run all)

execution
  --smoke                shrunk parameter sweeps (CI scale)
  --engine serial|parallel|sharded
  --threads N            parallel-engine lanes (implies --engine parallel)
  --shards N             shard count (implies --engine sharded)

output
  --out DIR              write results.jsonl, csv/, tables/ under DIR
  --no-tables            suppress table printing on stdout

baselines
  --write-baseline FILE  snapshot this run as the committed baseline
  --baseline FILE        baseline to compare against
  --check                diff this run against --baseline; exit 1 on drift
  --wall-tolerance X     wall-clock tolerance factor (default 1000; 0 = off)

exit codes: 0 ok, 1 drift/failure, 2 usage error
)";

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string require_value(int argc, const char* const* argv, int& i,
                          const std::string& flag) {
  if (i + 1 >= argc) {
    throw std::invalid_argument(flag + " requires a value");
  }
  return argv[++i];
}

}  // namespace

CliOptions parse_cli(int argc, const char* const* argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      o.list = true;
    } else if (arg == "--filter") {
      o.filters.push_back(require_value(argc, argv, i, arg));
    } else if (arg == "--all") {
      // run-everything is the default; the flag documents intent
    } else if (arg == "--smoke") {
      o.smoke = true;
    } else if (arg == "--engine") {
      const std::string v = require_value(argc, argv, i, arg);
      if (v == "parallel") { o.parallel = true; o.sharded = false; }
      else if (v == "sharded") { o.sharded = true; o.parallel = false; }
      else if (v == "serial") { o.parallel = false; o.sharded = false; }
      else {
        throw std::invalid_argument(
            "--engine must be serial, parallel, or sharded");
      }
    } else if (arg == "--shards") {
      const std::string v = require_value(argc, argv, i, arg);
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || n == 0 || n > 1024) {
        throw std::invalid_argument("--shards expects an integer in [1, 1024]");
      }
      o.shards = n;
      o.sharded = true;
      o.parallel = false;
    } else if (arg == "--threads") {
      const std::string v = require_value(argc, argv, i, arg);
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || n == 0 || n > 1024) {
        throw std::invalid_argument("--threads expects an integer in [1, 1024]");
      }
      o.threads = n;
      if (n > 1) o.parallel = true;
    } else if (arg == "--out") {
      o.out_dir = require_value(argc, argv, i, arg);
    } else if (arg == "--no-tables") {
      o.print_tables = false;
    } else if (arg == "--write-baseline") {
      o.write_baseline_path = require_value(argc, argv, i, arg);
    } else if (arg == "--baseline") {
      o.baseline_path = require_value(argc, argv, i, arg);
    } else if (arg == "--check") {
      o.check = true;
    } else if (arg == "--wall-tolerance") {
      const std::string v = require_value(argc, argv, i, arg);
      char* end = nullptr;
      const double x = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || x < 0) {
        throw std::invalid_argument("--wall-tolerance expects a factor >= 0");
      }
      o.baseline_options.wall_tolerance = x;
    } else if (arg == "--help" || arg == "-h") {
      throw std::invalid_argument("help");
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  if (o.check && o.baseline_path.empty()) {
    throw std::invalid_argument("--check requires --baseline FILE");
  }
  return o;
}

int run_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  const Registry& registry = Registry::instance();

  if (options.list) {
    const auto all = registry.all();
    out << all.size() << " registered experiments:\n\n";
    for (const Experiment* e : all) {
      out << "  " << e->name << "\n      claim: " << e->claim
          << "\n      axes:  ";
      for (std::size_t i = 0; i < e->axes.size(); ++i) {
        out << (i == 0 ? "" : ", ") << e->axes[i];
      }
      out << "\n";
    }
    return 0;
  }

  const auto selected = registry.match(options.filters);
  if (selected.empty()) {
    // Running nothing must never look like success: a typo'd --filter in a
    // CI gate would otherwise silently skip the whole roster. Name the
    // offending filters so the fix is obvious, and exit as a usage error.
    err << "ldc_bench: no experiments match ";
    if (options.filters.empty()) {
      err << "(registry is empty)";
    } else {
      err << "--filter ";
      for (std::size_t i = 0; i < options.filters.size(); ++i) {
        err << (i == 0 ? "" : ", ") << "'" << options.filters[i] << "'";
      }
    }
    err << "; see --list for the registered experiments\n";
    return 2;
  }

  RunConfig config;
  config.smoke = options.smoke;
  config.engine = options.sharded    ? Network::Engine::kSharded
                  : options.parallel ? Network::Engine::kParallel
                                     : Network::Engine::kSerial;
  // Under kSharded the count parameter is the shard count; set_engine
  // resolves 0 via LDC_SHARDS (strict parse) / hardware concurrency.
  config.threads = options.sharded ? options.shards : options.threads;
  const Provenance provenance = make_provenance(config);

  std::unique_ptr<Sink> sink;
  if (!options.out_dir.empty()) {
    try {
      sink = std::make_unique<Sink>(options.out_dir, provenance);
    } catch (const std::exception& e) {
      err << "ldc_bench: " << e.what() << "\n";
      return 2;
    }
  }

  std::vector<ExperimentResult> results;
  bool failed = false;
  for (const Experiment* e : selected) {
    out << "[" << (results.size() + 1) << "/" << selected.size() << "] "
        << e->name << (config.smoke ? "  (smoke)" : "") << "\n";
    out.flush();
    ExperimentContext ctx(e->name, config);
    const std::uint64_t start = now_ns();
    try {
      e->run(ctx);
    } catch (const std::exception& ex) {
      err << "ldc_bench: experiment '" << e->name << "' failed: " << ex.what()
          << "\n";
      failed = true;
      continue;
    }
    ExperimentResult result = ctx.take_result();
    result.wall_ns = now_ns() - start;
    if (options.print_tables) {
      for (const ResultTable& t : result.tables) t.to_table().print(out);
    }
    if (sink != nullptr) sink->write(result);
    results.push_back(std::move(result));
  }

  if (!options.write_baseline_path.empty()) {
    if (failed) {
      // A snapshot missing the failed experiments would silently shrink the
      // regression gate; refuse rather than commit a truncated baseline.
      err << "ldc_bench: refusing to write baseline: one or more experiments "
             "failed (snapshot would omit them)\n";
      return 1;
    }
    try {
      save_baseline(options.write_baseline_path,
                    baseline_json(results, provenance));
      out << "baseline written to " << options.write_baseline_path << "\n";
    } catch (const std::exception& e) {
      err << "ldc_bench: " << e.what() << "\n";
      return 1;
    }
  }

  if (options.check) {
    Json baseline;
    try {
      baseline = load_baseline(options.baseline_path);
    } catch (const std::exception& e) {
      err << "ldc_bench: " << e.what() << "\n";
      return 2;
    }
    BaselineDiff diff;
    try {
      // Refuse cross-mode diffs: smoke and full sweeps have different rows.
      const Json* cfg = baseline.find("config");
      const bool baseline_smoke =
          cfg != nullptr && cfg->find("smoke") != nullptr &&
          cfg->at("smoke").as_bool();
      if (baseline_smoke != options.smoke) {
        err << "ldc_bench: baseline was recorded with smoke="
            << (baseline_smoke ? "true" : "false")
            << " but this run has smoke="
            << (options.smoke ? "true" : "false") << "; refusing to diff\n";
        return 2;
      }
      diff = check_baseline(baseline, results, options.baseline_options,
                            options.filters.empty());
    } catch (const std::exception& e) {
      // Structural surprises (missing keys, wrong kinds) in a hand-edited
      // or truncated baseline are a usage error, not a crash.
      err << "ldc_bench: malformed baseline " << options.baseline_path << ": "
          << e.what() << "\n";
      return 2;
    }
    for (const auto& note : diff.notes) out << "note: " << note << "\n";
    if (!diff.ok()) {
      err << "ldc_bench: baseline drift (" << diff.mismatches.size()
          << " mismatches):\n";
      for (const auto& m : diff.mismatches) err << "  " << m << "\n";
      return 1;
    }
    out << "baseline check: " << results.size() << " experiments match "
        << options.baseline_path << "\n";
  }

  return failed ? 1 : 0;
}

int bench_main(int argc, const char* const* argv) {
  CliOptions options;
  try {
    options = parse_cli(argc, argv);
  } catch (const std::invalid_argument& e) {
    const bool help = std::string(e.what()) == "help";
    (help ? std::cout : std::cerr)
        << (help ? "" : std::string("ldc_bench: ") + e.what() + "\n\n")
        << kUsage;
    return help ? 0 : 2;
  }
  return run_cli(options, std::cout, std::cerr);
}

}  // namespace ldc::harness
