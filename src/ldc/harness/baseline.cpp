#include "ldc/harness/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ldc::harness {
namespace {

Json table_json(const ResultTable& t) {
  Json o = Json::object();
  o.add("title", t.title());
  Json headers = Json::array();
  for (const auto& h : t.headers()) headers.push_back(Json(h));
  o.add("headers", std::move(headers));
  Json rows = Json::array();
  for (const auto& row : t.rows()) {
    Json r = Json::array();
    for (const auto& cell : row) r.push_back(to_json(cell));
    rows.push_back(std::move(r));
  }
  o.add("rows", std::move(rows));
  return o;
}

/// Model-exact metric fields (wall_ns handled separately).
const char* const kExactMetricKeys[] = {
    "rounds",          "messages",          "total_bits",
    "max_message_bits", "congest_violations", "messages_dropped",
    "messages_corrupted", "node_crashes",   "node_sleeps",
};

bool numbers_equal(const Json& a, const Json& b) {
  const bool any_double =
      a.kind() == Json::Kind::kDouble || b.kind() == Json::Kind::kDouble;
  if (any_double) {
    const double x = a.as_double();
    const double y = b.as_double();
    if (x == y) return true;
    // Doubles in tables derive from deterministic integer quantities; a
    // tiny relative epsilon only forgives printing/platform rounding.
    const double scale = std::max(std::abs(x), std::abs(y));
    return std::abs(x - y) <= 1e-9 * scale + 1e-12;
  }
  // Both integral (int/uint): compare in uint64 when both non-negative.
  const bool a_neg = a.kind() == Json::Kind::kInt && a.as_int() < 0;
  const bool b_neg = b.kind() == Json::Kind::kInt && b.as_int() < 0;
  if (a_neg != b_neg) return false;
  if (a_neg) return a.as_int() == b.as_int();
  return a.as_uint() == b.as_uint();
}

bool values_equal(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) return numbers_equal(a, b);
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Json::Kind::kNull: return true;
    case Json::Kind::kBool: return a.as_bool() == b.as_bool();
    case Json::Kind::kString: return a.as_string() == b.as_string();
    default: return a.dump() == b.dump();
  }
}

std::string show(const Json& v) { return v.dump(); }

class Checker {
 public:
  Checker(const BaselineOptions& options, BaselineDiff& diff)
      : options_(options), diff_(&diff) {}

  void mismatch(const std::string& where, const std::string& what) {
    diff_->mismatches.push_back(where + ": " + what);
  }

  void wall_clock(const std::string& where, std::uint64_t base,
                  std::uint64_t fresh) {
    if (options_.wall_tolerance <= 0) return;
    const std::uint64_t lo = std::min(base, fresh);
    const std::uint64_t hi = std::max(base, fresh);
    const double bound = options_.wall_tolerance *
                         static_cast<double>(std::max(lo, options_.wall_floor_ns));
    if (static_cast<double>(hi) > bound) {
      mismatch(where, "wall_ns " + std::to_string(fresh) +
                          " outside tolerance of baseline " +
                          std::to_string(base) + " (factor " +
                          std::to_string(options_.wall_tolerance) + ")");
    } else if (hi > lo * 4 && hi > options_.wall_floor_ns) {
      diff_->notes.push_back(where + ": wall_ns " + std::to_string(fresh) +
                             " vs baseline " + std::to_string(base) +
                             " (within tolerance)");
    }
  }

  void table(const std::string& exp, const Json& base,
             const ResultTable& fresh) {
    const std::string where = exp + " / table '" + fresh.title() + "'";
    if (base.at("title").as_string() != fresh.title()) {
      mismatch(where, "title changed from '" + base.at("title").as_string() +
                          "'");
      return;
    }
    const auto& bheaders = base.at("headers").as_array();
    if (bheaders.size() != fresh.headers().size()) {
      mismatch(where, "header arity " + std::to_string(fresh.headers().size()) +
                          " != baseline " + std::to_string(bheaders.size()));
      return;
    }
    for (std::size_t c = 0; c < bheaders.size(); ++c) {
      if (bheaders[c].as_string() != fresh.headers()[c]) {
        mismatch(where, "header[" + std::to_string(c) + "] '" +
                            fresh.headers()[c] + "' != baseline '" +
                            bheaders[c].as_string() + "'");
        return;
      }
    }
    const auto& brows = base.at("rows").as_array();
    if (brows.size() != fresh.rows().size()) {
      mismatch(where, "row count " + std::to_string(fresh.rows().size()) +
                          " != baseline " + std::to_string(brows.size()));
      return;
    }
    for (std::size_t r = 0; r < brows.size(); ++r) {
      const auto& brow = brows[r].as_array();
      // A hand-edited/truncated baseline row may disagree with its own
      // header list; report it instead of indexing out of bounds.
      if (brow.size() != bheaders.size()) {
        mismatch(where + " row " + std::to_string(r),
                 "baseline row arity " + std::to_string(brow.size()) +
                     " != header arity " + std::to_string(bheaders.size()));
        continue;
      }
      for (std::size_t c = 0; c < bheaders.size(); ++c) {
        if (observational_column(fresh.headers()[c])) continue;
        const Json fresh_cell = to_json(fresh.rows()[r][c]);
        if (!values_equal(brow[c], fresh_cell)) {
          mismatch(where + " row " + std::to_string(r) + " col '" +
                       fresh.headers()[c] + "'",
                   "run " + show(fresh_cell) + " != baseline " +
                       show(brow[c]));
        }
      }
    }
  }

  void metrics(const std::string& exp, const Json& base,
               const MetricRecord& fresh) {
    const std::string where = exp + " / metrics '" + fresh.label + "'";
    const Json fresh_json = to_json(fresh.metrics);
    for (const char* key : kExactMetricKeys) {
      const Json* b = base.find(key);
      if (b == nullptr) {
        mismatch(where, std::string("baseline lacks field '") + key + "'");
        continue;
      }
      if (!values_equal(*b, fresh_json.at(key))) {
        mismatch(where + " field '" + key + "'",
                 "run " + show(fresh_json.at(key)) + " != baseline " +
                     show(*b));
      }
    }
    const Json* bdigest = base.find("trace_digest");
    if (bdigest != nullptr && fresh.trace_digest != 0 &&
        bdigest->as_uint() != 0 &&
        bdigest->as_uint() != fresh.trace_digest) {
      mismatch(where, "trace_digest " + std::to_string(fresh.trace_digest) +
                          " != baseline " + std::to_string(bdigest->as_uint()));
    }
    const Json* bwall = base.find("wall_ns");
    if (bwall != nullptr) {
      wall_clock(where, bwall->as_uint(), fresh.metrics.wall_ns);
    }
  }

 private:
  BaselineOptions options_;
  BaselineDiff* diff_;
};

}  // namespace

Json baseline_json(const std::vector<ExperimentResult>& results,
                   const Provenance& provenance) {
  Json doc = Json::object();
  doc.add("schema", std::uint64_t{1});
  doc.add("provenance", to_json(provenance));
  Json config = Json::object();
  config.add("smoke", provenance.smoke);
  doc.add("config", std::move(config));
  Json experiments = Json::object();
  // Baselines are keyed by name; keep them sorted so regeneration diffs
  // cleanly regardless of run order.
  std::vector<const ExperimentResult*> sorted;
  for (const auto& r : results) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const ExperimentResult* a, const ExperimentResult* b) {
              return a->name < b->name;
            });
  for (const ExperimentResult* r : sorted) {
    Json e = Json::object();
    Json tables = Json::array();
    for (const auto& t : r->tables) tables.push_back(table_json(t));
    e.add("tables", std::move(tables));
    Json metrics = Json::object();
    for (const auto& rec : r->runs) {
      Json m = to_json(rec.metrics);
      m.add("trace_digest", rec.trace_digest);
      metrics.add(rec.label, std::move(m));
    }
    e.add("metrics", std::move(metrics));
    experiments.add(r->name, std::move(e));
  }
  doc.add("experiments", std::move(experiments));
  return doc;
}

BaselineDiff check_baseline(const Json& baseline,
                            const std::vector<ExperimentResult>& results,
                            const BaselineOptions& options, bool ran_all) {
  BaselineDiff diff;
  Checker check(options, diff);

  // Mode compatibility (smoke vs full) is the runner's job: it knows the
  // RunConfig and refuses to diff across modes before calling here.
  const Json& experiments = baseline.at("experiments");
  std::set<std::string> fresh_names;
  for (const auto& r : results) {
    fresh_names.insert(r.name);
    const Json* base = experiments.find(r.name);
    if (base == nullptr) {
      check.mismatch(r.name, "not present in baseline (regenerate with "
                             "--write-baseline)");
      continue;
    }
    const auto& btables = base->at("tables").as_array();
    if (btables.size() != r.tables.size()) {
      check.mismatch(r.name,
                     "table count " + std::to_string(r.tables.size()) +
                         " != baseline " + std::to_string(btables.size()));
    } else {
      for (std::size_t i = 0; i < btables.size(); ++i) {
        check.table(r.name, btables[i], r.tables[i]);
      }
    }
    const Json& bmetrics = base->at("metrics");
    for (const auto& rec : r.runs) {
      const Json* bm = bmetrics.find(rec.label);
      if (bm == nullptr) {
        check.mismatch(r.name, "metrics label '" + rec.label +
                                   "' not present in baseline");
        continue;
      }
      check.metrics(r.name, *bm, rec);
    }
    // Labels recorded in the baseline but absent from the fresh run mean
    // the experiment stopped tracking a sub-run — also drift.
    for (const auto& [label, unused] : bmetrics.as_object()) {
      (void)unused;
      const bool present =
          std::any_of(r.runs.begin(), r.runs.end(),
                      [&](const MetricRecord& rec) { return rec.label == label; });
      if (!present) {
        check.mismatch(r.name, "baseline metrics label '" + label +
                                   "' missing from run");
      }
    }
  }
  if (ran_all) {
    for (const auto& [name, unused] : experiments.as_object()) {
      (void)unused;
      if (fresh_names.count(name) == 0) {
        check.mismatch(name, "in baseline but did not run");
      }
    }
  }
  return diff;
}

void save_baseline(const std::string& path, const Json& baseline) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("baseline: cannot open " + path);
  os << baseline.dump_pretty();
  if (!os) throw std::runtime_error("baseline: write failed for " + path);
}

Json load_baseline(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("baseline: cannot read " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return Json::parse(buf.str());
}

}  // namespace ldc::harness
