// Experiment registry. Experiment translation units self-register via a
// file-scope Registrar; the ldc_bench runner then lists, filters and runs
// them. Registration order is link order (unspecified), so all iteration
// APIs return experiments sorted by name — names are chosen sortable
// (a1..a4, e01..e14).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ldc/harness/experiment.hpp"

namespace ldc::harness {

class Registry {
 public:
  /// The process-wide registry the Registrar populates.
  static Registry& instance();

  /// Adds an experiment; throws std::invalid_argument on an empty or
  /// duplicate name, or a missing run callback.
  void add(Experiment e);

  std::size_t size() const { return experiments_.size(); }

  /// All experiments, sorted by name.
  std::vector<const Experiment*> all() const;

  /// Exact-name lookup; nullptr when absent.
  const Experiment* find(std::string_view name) const;

  /// Experiments whose name or claim contains any of the given substrings
  /// (case-sensitive), sorted by name. An empty filter list matches all.
  std::vector<const Experiment*> match(
      const std::vector<std::string>& filters) const;

 private:
  std::vector<Experiment> experiments_;
};

/// File-scope self-registration hook:
///   const harness::Registrar reg{{.name = "e01_...", ...}};
class Registrar {
 public:
  explicit Registrar(Experiment e);
};

}  // namespace ldc::harness
