// Recursive color space reduction — Theorem 1.2 (and Corollaries 4.1, 4.2).
//
// Given an OLDC instance over color space C and a partition of C into p
// equal blocks, nodes first solve an auxiliary OLDC instance over the
// block space [p] (using the same pluggable base solver): choosing block i
// with auxiliary defect beta_{v,i} means at most beta_{v,i} out-neighbors
// land in the same block. Each block's nodes then recurse independently
// (and, on the real network, in parallel) on the induced subgraph with the
// restricted lists. After ceil(log_p |C|) levels the base solver runs on a
// color space of size <= p, which bounds the per-message list encoding by
// O(p^...) bits — the message-size lever of Corollary 4.2.
#pragma once

#include <cstdint>
#include <functional>

#include "ldc/coloring/instance.hpp"
#include "ldc/oldc/gamma.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::reduction {

/// A pluggable OLDC solver: solves `inst` (lists + per-color defects) on
/// the network w.r.t. the orientation, given a proper initial m-coloring.
using OldcSolver = std::function<oldc::OldcResult(
    Network&, const LdcInstance&, const Orientation&, const Coloring&,
    std::uint64_t)>;

struct Options {
  /// Subspace count per level; |C| <= p means "solve directly".
  std::uint64_t p = 0;
  /// Exponent 1+nu used to derive auxiliary defects (Theorem 1.2).
  double one_plus_nu = 2.0;
  /// Safety cap on recursion depth.
  std::uint32_t max_depth = 16;
};

struct Result {
  Coloring phi;
  oldc::OldcStats stats;       ///< rounds are *parallel* rounds (max across
                               ///< sibling blocks per level)
  std::uint32_t levels = 0;    ///< recursion depth reached
};

/// Solves the instance by recursive color space reduction; with p == 0 or
/// |C| <= p this is exactly one call to `base`.
Result reduce_and_solve(Network& net, const LdcInstance& inst,
                        const Orientation& orientation,
                        const Coloring& initial, std::uint64_t m,
                        const Options& opt, const OldcSolver& base);

/// Corollary 4.2 parameterization: p = ceil(|C|^(1/r)) for r levels.
std::uint64_t subspace_count_for_depth(std::uint64_t color_space,
                                       std::uint32_t r);

}  // namespace ldc::reduction
