#include "ldc/reduction/speedup.hpp"

#include <algorithm>
#include <cmath>

namespace ldc::reduction {

std::uint64_t speedup_subspace_count(std::uint64_t beta, double kappa,
                                     std::uint64_t color_space) {
  const double lb = std::log2(static_cast<double>(std::max<std::uint64_t>(
      2, beta)));
  const double lk = std::log2(std::max(2.0, kappa));
  const double exponent = std::ceil(std::sqrt(lb * lk));
  const double p = std::exp2(std::min(exponent, 62.0));
  return std::clamp<std::uint64_t>(static_cast<std::uint64_t>(p), 2,
                                   std::max<std::uint64_t>(2, color_space));
}

}  // namespace ldc::reduction
