#include "ldc/reduction/color_space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ldc/graph/induced_orientation.hpp"
#include "ldc/repair/repair.hpp"
#include "ldc/graph/subgraph.hpp"
#include "ldc/linial/cover_free.hpp"
#include "ldc/support/math.hpp"

namespace ldc::reduction {
namespace {

void merge_child_stats(oldc::OldcStats& into, const oldc::OldcStats& from) {
  into.h = std::max(into.h, from.h);
  into.tau = std::max(into.tau, from.tau);
  into.p1_relaxed += from.p1_relaxed;
  into.degraded += from.degraded;
  into.repair_rounds += from.repair_rounds;
  into.repaired = into.repaired || from.repaired;
}

Result solve_rec(Network& net, const LdcInstance& inst,
                 const Orientation& orientation, const Coloring& initial,
                 std::uint64_t m, const Options& opt, const OldcSolver& base,
                 std::uint32_t depth) {
  Result res;
  if (opt.p <= 1 || inst.color_space <= opt.p || depth >= opt.max_depth) {
    auto out = base(net, inst, orientation, initial, m);
    res.phi = std::move(out.phi);
    res.stats = out.stats;
    res.levels = 1;
    return res;
  }

  const std::uint32_t n = inst.n();
  const std::uint64_t bs = ceil_div(inst.color_space, opt.p);
  const std::uint64_t blocks = ceil_div(inst.color_space, bs);

  // --- Auxiliary instance over the block space.
  LdcInstance aux;
  aux.graph = inst.graph;
  aux.color_space = blocks;
  aux.lists.resize(n);
  // Per node and block: the weight sum_x (d_v(x)+1)^(1+nu).
  std::vector<std::vector<double>> weight(n);
  for (NodeId v = 0; v < n; ++v) {
    weight[v].assign(blocks, 0.0);
    const auto& l = inst.lists[v];
    for (std::size_t i = 0; i < l.size(); ++i) {
      weight[v][l.colors[i] / bs] +=
          std::pow(static_cast<double>(l.defects[i]) + 1.0, opt.one_plus_nu);
    }
    for (std::uint64_t b = 0; b < blocks; ++b) {
      if (weight[v][b] <= 0.0) continue;
      aux.lists[v].colors.push_back(static_cast<Color>(b));
      // beta_{v,i} = floor(W_i^(1/(1+nu))) - 1, capped by beta_v
      // (Theorem 1.2 with kappa normalized to 1; see DESIGN.md §4).
      const double raw = std::pow(weight[v][b], 1.0 / opt.one_plus_nu);
      const std::uint32_t cap = orientation.beta(v);
      aux.lists[v].defects.push_back(std::min<std::uint32_t>(
          cap, static_cast<std::uint32_t>(std::max(0.0, raw - 1.0))));
    }
    if (aux.lists[v].colors.empty()) {
      throw std::invalid_argument("reduce_and_solve: node with empty list");
    }
  }

  auto aux_out = base(net, aux, orientation, initial, m);
  res.stats.rounds += aux_out.stats.rounds;
  merge_child_stats(res.stats, aux_out.stats);

  // --- Recurse per block on induced subgraphs (parallel in the model).
  res.phi.assign(n, kUncolored);
  RunMetrics parallel;  // rounds = max across blocks; traffic summed
  std::uint32_t child_rounds_max = 0;
  std::uint32_t child_levels_max = 0;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    std::vector<NodeId> members;
    for (NodeId v = 0; v < n; ++v) {
      if (aux_out.phi[v] == b) members.push_back(v);
    }
    if (members.empty()) continue;
    const Subgraph sub = induced_subgraph(*inst.graph, members);
    const Orientation sub_orient = induced_orientation(orientation, sub);
    LdcInstance sub_inst;
    sub_inst.graph = &sub.graph;
    sub_inst.color_space = std::min(bs, inst.color_space - b * bs);
    sub_inst.lists.resize(sub.graph.n());
    Coloring sub_initial(sub.graph.n());
    for (NodeId i = 0; i < sub.graph.n(); ++i) {
      const NodeId v = sub.to_parent[i];
      sub_initial[i] = initial[v];
      const auto& l = inst.lists[v];
      for (std::size_t x = 0; x < l.size(); ++x) {
        if (l.colors[x] / bs == b) {
          sub_inst.lists[i].colors.push_back(
              static_cast<Color>(l.colors[x] - b * bs));
          sub_inst.lists[i].defects.push_back(l.defects[x]);
        }
      }
      if (sub_inst.lists[i].colors.empty()) {
        // Cannot happen through the aux solve (aux lists contain only
        // nonempty blocks); defensive fallback if a repair pass moved v.
        for (std::uint64_t c = 0; c < sub_inst.color_space; ++c) {
          sub_inst.lists[i].colors.push_back(static_cast<Color>(c));
          sub_inst.lists[i].defects.push_back(orientation.beta(v));
        }
      }
    }
    Network sub_net(sub.graph, net.budget_bits());
    Result child;
    bool block_ok = true;
    try {
      child = solve_rec(sub_net, sub_inst, sub_orient, sub_initial, m, opt,
                        base, depth + 1);
    } catch (const InfeasibleError&) {
      // The aux assignment starved this block; its nodes stay uncolored
      // and the final repair pass below fixes them against the full lists.
      block_ok = false;
      ++res.stats.p1_relaxed;
    }
    if (block_ok) {
      for (NodeId i = 0; i < sub.graph.n(); ++i) {
        if (child.phi[i] != kUncolored) {
          res.phi[sub.to_parent[i]] =
              static_cast<Color>(child.phi[i] + b * bs);
        }
      }
    }
    // Parallel accounting: blocks run simultaneously on the real network.
    RunMetrics cm = sub_net.metrics();
    child_rounds_max =
        std::max(child_rounds_max, static_cast<std::uint32_t>(cm.rounds));
    cm.rounds = 0;
    parallel.merge(cm);
    merge_child_stats(res.stats, child.stats);
    child_levels_max = std::max(child_levels_max, child.levels);
  }
  parallel.rounds = child_rounds_max;
  net.absorb(parallel);
  res.stats.rounds += child_rounds_max;
  res.levels = 1 + child_levels_max;

  // Any node left uncolored by a starved block is repaired against the
  // full instance (valid colors stay put; only violated/uncolored move).
  bool incomplete = false;
  for (NodeId v = 0; v < n; ++v) {
    if (res.phi[v] == kUncolored) {
      incomplete = true;
      break;
    }
  }
  if (incomplete) {
    repair::Options ropt;
    ropt.orientation = &orientation;
    auto rep = repair::repair(net, inst, res.phi, ropt);
    if (!rep.success) {
      throw InfeasibleError("reduce_and_solve: final repair failed");
    }
    res.phi = std::move(rep.phi);
    res.stats.repair_rounds += rep.rounds;
    res.stats.repaired = true;
    res.stats.rounds += rep.rounds;
  }
  return res;
}

}  // namespace

Result reduce_and_solve(Network& net, const LdcInstance& inst,
                        const Orientation& orientation,
                        const Coloring& initial, std::uint64_t m,
                        const Options& opt, const OldcSolver& base) {
  return solve_rec(net, inst, orientation, initial, m, opt, base, 0);
}

std::uint64_t subspace_count_for_depth(std::uint64_t color_space,
                                       std::uint32_t r) {
  if (r <= 1) return color_space;
  return linial::kth_root_ceil(color_space, r);
}

}  // namespace ldc::reduction
