// Corollary 4.1 — the speed-up parameterization of Theorem 1.2.
//
// For a base OLDC algorithm with round complexity poly(Lambda) + O(log* m)
// and quality kappa(Lambda), choosing p = 2^Theta(sqrt(log beta * log
// kappa)) balances the per-level cost against the level count
// log_p |C| = Theta(sqrt(log beta / log kappa)), giving a
// 2^O(sqrt(log beta log kappa)) overall bound. This header provides the
// parameter choice; plug it into reduction::reduce_and_solve.
#pragma once

#include <cstdint>

namespace ldc::reduction {

/// p = 2^ceil(sqrt(log2(beta) * log2(kappa))), clamped to [2, color_space].
std::uint64_t speedup_subspace_count(std::uint64_t beta, double kappa,
                                     std::uint64_t color_space);

}  // namespace ldc::reduction
