#include "ldc/oldc/class_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "ldc/oldc/rounding.hpp"
#include "ldc/support/math.hpp"

namespace ldc::oldc {

std::uint32_t ClassPlan::bucket_defect(std::uint32_t mu) const {
  const std::uint32_t log2R = static_cast<std::uint32_t>(ilog2(rv));
  const std::uint64_t dp1 =
      std::uint64_t{1} << (log2R / 2 - std::min(mu, log2R / 2));
  return static_cast<std::uint32_t>(dp1 - 1);
}

ClassPlan plan_classes(const ColorList& list, std::uint32_t beta_v,
                       const ClassPlanParams& params) {
  if (list.size() == 0) {
    throw std::invalid_argument("plan_classes: empty color list");
  }
  ClassPlan plan;
  const std::uint64_t bhat = next_pow2(std::max(1u, beta_v));
  plan.rv = params.alpha * bhat * bhat * params.tau_bar *
            static_cast<std::uint64_t>(params.hp) * params.hp;
  const std::uint32_t log2R = static_cast<std::uint32_t>(ilog2(plan.rv));
  const std::uint32_t sqrtR_log = log2R / 2;  // log2R is even by rounding
  const std::uint32_t h = params.h;

  // Bucket colors by mu = log4(R_v / (d+1)^2) with the rounded defect.
  struct Bucket {
    std::uint64_t weight = 0;
  };
  std::map<std::uint32_t, Bucket> weights;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    std::uint32_t dp1 = pow2_floor(list.defects[i] + 1);
    if (ilog2(dp1) > static_cast<int>(sqrtR_log)) {
      dp1 = std::uint32_t{1} << sqrtR_log;
    }
    const std::uint32_t mu =
        sqrtR_log - static_cast<std::uint32_t>(ilog2(dp1));
    weights[mu].weight += static_cast<std::uint64_t>(dp1) * dp1;
    plan.bucket_colors[mu].push_back(list.colors[i]);
    total += static_cast<std::uint64_t>(dp1) * dp1;
  }

  // lambda_{v,mu} = 4^{-r}, r = ceil(log4(D_v / D_{v,mu})); zero below the
  // 1/(2 * #possible buckets) mass cutoff.
  const std::uint64_t hbuckets = sqrtR_log + 1;
  std::uint32_t case2_mu = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cand;  // (mu, r)
  for (const auto& [mu, b] : weights) {
    if (sat_mul(b.weight, 2 * hbuckets) < total) continue;
    const std::uint32_t r = ceil_log4_ratio(total, b.weight);
    if (r <= 1) {
      plan.case2 = true;
      case2_mu = mu;
      break;
    }
    cand.emplace_back(mu, r);
  }

  if (plan.case2) {
    const std::uint32_t cls = std::min<std::uint32_t>(
        std::max(1u, case2_mu), h);
    if (case2_mu != cls) ++plan.clamped;
    plan.aux_colors = {static_cast<Color>(cls - 1)};
    plan.aux_defects = {static_cast<std::uint32_t>(
        (std::uint64_t{1} << sqrtR_log) / 4)};
    plan.mu_of_class[cls] = case2_mu;
  } else {
    for (const auto& [mu, r] : cand) {
      const std::int64_t f =
          static_cast<std::int64_t>(mu) - static_cast<std::int64_t>(r) + 2;
      if (f < 1) continue;
      std::uint32_t cls = static_cast<std::uint32_t>(f);
      if (cls > h) {
        cls = h;
        ++plan.clamped;
      }
      if (plan.mu_of_class.count(cls) != 0) continue;  // first mu wins
      plan.mu_of_class[cls] = mu;
      plan.aux_colors.push_back(static_cast<Color>(cls - 1));
      // delta = floor(sqrt(lambda * R_v)) = sqrt(R_v) / 2^r.
      const std::uint64_t delta =
          (std::uint64_t{1} << sqrtR_log) >> std::min(r, sqrtR_log);
      plan.aux_defects.push_back(static_cast<std::uint32_t>(delta));
    }
    if (plan.aux_colors.empty()) {
      // Fallback — cannot occur under Theorem 1.1's precondition.
      const auto best = std::max_element(
          weights.begin(), weights.end(), [](const auto& a, const auto& b) {
            return a.second.weight < b.second.weight;
          });
      const std::uint32_t cls = std::min<std::uint32_t>(
          std::max(1u, best->first), h);
      plan.aux_colors = {static_cast<Color>(cls - 1)};
      plan.aux_defects = {std::max(1u, beta_v)};
      plan.mu_of_class[cls] = best->first;
      plan.fallback = true;
      ++plan.clamped;
    }
  }

  // Keep aux lists sorted by class value (clamping can reorder).
  std::vector<std::size_t> order(plan.aux_colors.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return plan.aux_colors[a] < plan.aux_colors[b];
  });
  std::vector<Color> ac(order.size());
  std::vector<std::uint32_t> ad(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    ac[i] = plan.aux_colors[order[i]];
    ad[i] = plan.aux_defects[order[i]];
  }
  plan.aux_colors = std::move(ac);
  plan.aux_defects = std::move(ad);
  return plan;
}

}  // namespace ldc::oldc
