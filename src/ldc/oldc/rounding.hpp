// Power-of-two/four rounding helpers shared by the OLDC solvers.
//
// Lemma 3.6 and Lemma 3.8 round defects down and beta up to powers of two
// (so that gamma-classes and the R_v / (d+1)^2 bucket indices are exact
// integers); these helpers centralize that arithmetic.
#pragma once

#include <algorithm>
#include <cstdint>

#include "ldc/support/math.hpp"

namespace ldc::oldc {

/// Largest power of two <= x (x >= 1; pow2_floor(0) == 1 by clamping).
constexpr std::uint32_t pow2_floor(std::uint32_t x) {
  return std::uint32_t{1} << ilog2(std::max(1u, x));
}

/// Smallest power of four >= x (x >= 0; pow4_ceil(0) == 1).
constexpr std::uint64_t pow4_ceil(std::uint64_t x) {
  std::uint64_t p = 1;
  while (p < x) p *= 4;
  return p;
}

/// ceil(log4(num / den)) for num >= den >= 1 (0 when num <= den).
constexpr std::uint32_t ceil_log4_ratio(std::uint64_t num,
                                        std::uint64_t den) {
  std::uint32_t r = 0;
  std::uint64_t scaled = den;
  while (scaled < num) {
    scaled = sat_mul(scaled, 4);
    ++r;
  }
  return r;
}

}  // namespace ldc::oldc
