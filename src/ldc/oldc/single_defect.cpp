#include "ldc/oldc/single_defect.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "ldc/coloring/validate.hpp"
#include "ldc/mt/conflict.hpp"
#include "ldc/repair/repair.hpp"
#include "ldc/support/math.hpp"
#include "ldc/support/packed_palette.hpp"
#include "ldc/support/prf.hpp"

namespace ldc::oldc {
namespace {

// Candidate families are pure functions of (type, set size, family size);
// memoize them so equal-typed nodes share one materialization.
class FamilyCache {
 public:
  const mt::CandidateFamily& get(std::uint64_t type_key,
                                 std::span<const Color> list,
                                 std::uint32_t set_size,
                                 std::uint32_t kprime) {
    const std::uint64_t k =
        hash_combine(type_key, hash_combine(set_size, kprime));
    auto it = cache_.find(k);
    if (it == cache_.end()) {
      it = cache_
               .emplace(k, std::make_unique<mt::CandidateFamily>(
                               type_key, list, set_size, kprime))
               .first;
    }
    return *it->second;
  }

 private:
  std::unordered_map<std::uint64_t, std::unique_ptr<mt::CandidateFamily>>
      cache_;
};

struct NeighborInfo {
  std::uint32_t gamma = 0;
  const mt::CandidateFamily* family = nullptr;
  std::span<const Color> chosen_set;  ///< C_u once its index arrived
  Color chosen_color = kUncolored;    ///< final color once announced
};

}  // namespace

OldcResult solve_single_defect(Network& net, const SingleDefectInput& in) {
  const Graph& g = *in.graph;
  const Orientation& orient = *in.orientation;
  const std::uint32_t n = g.n();
  if (in.lists.size() != n || in.defects.size() != n) {
    throw std::invalid_argument("solve_single_defect: per-node data size");
  }

  OldcResult res;
  res.phi.assign(n, kUncolored);

  // --- Local preprocessing: gamma-classes, residues, candidate families.
  std::uint32_t h = 1;
  std::vector<std::uint32_t> gamma(n);
  for (NodeId v = 0; v < n; ++v) {
    gamma[v] = gamma_class(orient.beta(v), in.defects[v], 2);
    h = std::max(h, gamma[v]);
  }
  const std::uint32_t tau =
      mt::effective_tau(in.params, h, in.color_space, in.m);
  res.stats.h = h;
  res.stats.tau = tau;

  FamilyCache cache;
  std::vector<std::vector<Color>> restricted(n);
  std::vector<const mt::CandidateFamily*> family(n);
  for (NodeId v = 0; v < n; ++v) {
    restricted[v] = mt::best_residue_sublist(in.lists[v], in.g);
    if (restricted[v].empty()) {
      throw std::invalid_argument("solve_single_defect: empty color list");
    }
    const std::uint64_t ki =
        sat_mul(std::uint64_t{1} << gamma[v], tau);
    const std::uint32_t set_size = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(ki, restricted[v].size()));
    const std::uint64_t key = mt::type_key((*in.initial)[v], restricted[v]);
    family[v] = &cache.get(key, restricted[v], set_size, in.params.kprime);
    if (family[v]->set_size() < ki) ++res.stats.degraded;
  }

  // --- Round 1: broadcast types (initial color, gamma-class, defect, list).
  net.mark("oldc/types");
  std::vector<std::vector<NeighborInfo>> nb(n);
  {
    std::vector<Message> msgs(n);
    net.run_node_programs([&](NodeId v) {
      BitWriter w;
      w.write_bounded((*in.initial)[v], in.m - 1);
      w.write_bounded(gamma[v], h);
      w.write_varint(in.defects[v]);
      encode_color_list(w, restricted[v], in.color_space);
      msgs[v] = Message::from(w);
    });
    const auto inboxes = net.exchange_broadcast(msgs);
    ++res.stats.rounds;
    // Serial decode: FamilyCache is shared-mutable (memoizes candidate
    // families across equal-typed nodes), so this pass must not fan out.
    for (NodeId v = 0; v < n; ++v) {
      nb[v].resize(g.degree(v));
      for (const auto& [u, m] : inboxes[v]) {
        auto r = m.reader();
        const std::uint64_t u_initial = r.read_bounded(in.m - 1);
        NeighborInfo info;
        info.gamma = static_cast<std::uint32_t>(r.read_bounded(h));
        const std::uint32_t u_defect =
            static_cast<std::uint32_t>(r.read_varint());
        const auto u_list = decode_color_list(r, in.color_space);
        const std::uint64_t ki =
            sat_mul(std::uint64_t{1} << info.gamma, tau);
        const std::uint32_t set_size = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(ki, u_list.size()));
        (void)u_defect;
        info.family = &cache.get(mt::type_key(u_initial, u_list), u_list,
                                 set_size, in.params.kprime);
        nb[v][g.neighbor_index(v, u)] = info;
      }
    }
  }

  // --- Local P1: pick the candidate set with the fewest conflicted
  // out-neighbors of gamma-class <= own.
  std::vector<std::uint32_t> chosen_index(n, 0);
  std::vector<std::uint8_t> p1_relaxed(n, 0);
  net.run_node_programs([&](NodeId v) {
    const auto kv = family[v]->view();
    std::uint32_t best_j = 0;
    std::uint32_t best_dc = ~0u;
    for (std::uint32_t j = 0; j < kv.count && best_dc > 0; ++j) {
      const auto cj = kv.set(j);
      std::uint32_t dc = 0;
      for (NodeId u : orient.out(v)) {
        const auto& info = nb[v][g.neighbor_index(v, u)];
        if (info.gamma > gamma[v]) continue;
        const auto ku = info.family->view();
        for (std::uint32_t s = 0; s < ku.count; ++s) {
          if (mt::tau_g_conflict(cj, ku.set(s), tau, in.g)) {
            ++dc;
            break;
          }
        }
      }
      if (dc < best_dc) {
        best_dc = dc;
        best_j = j;
      }
    }
    chosen_index[v] = best_j;
    p1_relaxed[v] = (2 * best_dc > in.defects[v]) ? 1 : 0;
  });
  for (NodeId v = 0; v < n; ++v) res.stats.p1_relaxed += p1_relaxed[v];

  // --- Round 2: broadcast the chosen candidate index (one bounded word:
  // the fused fast path).
  net.mark("oldc/p1-index");
  {
    std::vector<std::uint64_t> words(n);
    net.run_node_programs([&](NodeId v) { words[v] = chosen_index[v]; });
    const WordMail inboxes =
        net.exchange_broadcast_word(words, in.params.kprime - 1);
    ++res.stats.rounds;
    net.run_node_programs([&](NodeId v) {
      for (const auto [u, word] : inboxes[v]) {
        const auto j = static_cast<std::uint32_t>(word);
        auto& info = nb[v][g.neighbor_index(v, u)];
        info.chosen_set = info.family->set(
            std::min(j, info.family->size() - 1));
      }
    });
  }

  // --- Problem P0: descending gamma-classes pick minimum-frequency colors.
  net.mark("oldc/p0-classes");
  const auto my_set = [&](NodeId v) { return family[v]->set(chosen_index[v]); };
  for (std::uint32_t cls = h; cls >= 1; --cls) {
    std::vector<std::uint64_t> words(n);
    std::vector<bool> active(n, false);
    for (NodeId v = 0; v < n; ++v) active[v] = (gamma[v] == cls);
    net.run_node_programs([&](NodeId v) {
      if (gamma[v] != cls) return;
      const auto cv = my_set(v);
      Color best = cv.empty() ? restricted[v].front() : cv.front();
      std::uint64_t best_f = ~0ULL;
      // Packed fast path: the g-dilated union of every constraining color.
      // A candidate absent from the union has frequency f == 0, and the
      // loop below picks the *first* minimum — so the first absent
      // candidate (list order) is the exact answer. Only when every
      // candidate conflicts does the exact counting loop run. The palette
      // is per-thread scratch: built and cleared once per node.
      static thread_local PackedPalette forbid;
      forbid.reset(in.color_space);
      for (NodeId u : orient.out(v)) {
        const auto& info = nb[v][g.neighbor_index(v, u)];
        if (info.gamma <= gamma[v]) {
          for (Color y : info.chosen_set) forbid.insert_window(y, in.g);
        } else if (info.chosen_color != kUncolored) {
          forbid.insert_window(info.chosen_color, in.g);
        }
      }
      const std::uint64_t zero_conflict =
          forbid.first_absent(std::span<const Color>(cv));
      if (zero_conflict != PackedPalette::npos) {
        best = static_cast<Color>(zero_conflict);
        best_f = 0;
      } else {
        for (Color x : cv) {
          std::uint64_t f = 0;
          for (NodeId u : orient.out(v)) {
            const auto& info = nb[v][g.neighbor_index(v, u)];
            if (info.gamma <= gamma[v]) {
              f += mt::mu_g(x, info.chosen_set, in.g);
            } else if (info.chosen_color != kUncolored) {
              const std::int64_t diff =
                  static_cast<std::int64_t>(info.chosen_color) - x;
              if (static_cast<std::uint64_t>(diff < 0 ? -diff : diff) <=
                  in.g) {
                ++f;
              }
            }
          }
          if (f < best_f) {
            best_f = f;
            best = x;
          }
        }
      }
      res.phi[v] = best;
      words[v] = best;
    });
    const WordMail inboxes =
        net.exchange_broadcast_word(words, in.color_space - 1, &active);
    ++res.stats.rounds;
    net.run_node_programs([&](NodeId v) {
      for (const auto [u, word] : inboxes[v]) {
        nb[v][g.neighbor_index(v, u)].chosen_color =
            static_cast<Color>(word);
      }
    });
  }

  // --- Validate; repair if the pigeonhole margin was missed.
  LdcInstance check_inst;
  check_inst.graph = in.graph;
  check_inst.color_space = in.color_space;
  check_inst.lists.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    check_inst.lists[v].colors = in.lists[v];
    check_inst.lists[v].defects.assign(in.lists[v].size(), in.defects[v]);
  }
  res.valid = static_cast<bool>(
      validate_oldc(check_inst, orient, res.phi, in.g));
  if (!res.valid && in.run_repair) {
    repair::Options ropt;
    ropt.g = in.g;
    ropt.orientation = in.orientation;
    auto rep = repair::repair(net, check_inst, res.phi, ropt);
    if (!rep.success) {
      throw InfeasibleError("solve_single_defect: repair failed (instance infeasible?)");
    }
    res.phi = std::move(rep.phi);
    res.stats.repair_rounds = rep.rounds;
    res.stats.repaired = true;
    res.stats.rounds += rep.rounds;
  }
  return res;
}

}  // namespace ldc::oldc
