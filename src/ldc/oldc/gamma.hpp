// Gamma-classes and shared plumbing for the OLDC solvers (Section 3.2).
//
// Nodes are grouped into gamma-classes by the ratio beta_v / (d_v + 1): the
// class of v is the smallest i with 2^i >= factor * beta_v / (d_v + 1)
// (factor 2 for the basic algorithm of Section 3.2.3, factor 4 inside the
// two-phase algorithm of Section 3.3). Also provides the wire codec for
// color lists — the paper's Lemma 3.6 encoding: a list costs
// min(|C|, Lambda * ceil(log2 |C|)) bits (bitmap vs. explicit), defects are
// powers of two (O(loglog beta) bits), and candidate-set choices travel as
// indices into the PRF-derived family.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ldc/coloring/instance.hpp"
#include "ldc/runtime/message.hpp"

namespace ldc::oldc {

/// Smallest i >= 1 with 2^i >= factor * beta / (defect + 1).
std::uint32_t gamma_class(std::uint32_t beta, std::uint32_t defect,
                          std::uint32_t factor);

/// Statistics every OLDC solver reports alongside its coloring.
struct OldcStats {
  std::uint32_t rounds = 0;        ///< communication rounds used
  std::uint32_t h = 0;             ///< number of gamma-classes
  std::uint32_t tau = 0;           ///< effective conflict threshold
  std::uint32_t p1_relaxed = 0;    ///< nodes whose P1 pick exceeded budget
  std::uint32_t degraded = 0;      ///< nodes with clamped candidate sets
  std::uint32_t repair_rounds = 0; ///< extra rounds spent in repair (rare)
  bool repaired = false;           ///< final coloring needed repair
};

struct OldcResult {
  Coloring phi;
  OldcStats stats;
  bool valid = false;  ///< validator verdict on the raw (pre-repair) output
};

/// Encodes a sorted color list: 1 selector bit, then either a |C|-bit
/// bitmap or an explicit length-prefixed list of ceil(log2 |C|)-bit colors,
/// whichever is smaller (Lemma 3.6's encoding).
void encode_color_list(BitWriter& w, std::span<const Color> list,
                       std::uint64_t color_space);

/// Inverse of encode_color_list.
std::vector<Color> decode_color_list(BitReader& r, std::uint64_t color_space);

}  // namespace ldc::oldc
