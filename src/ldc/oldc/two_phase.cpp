#include "ldc/oldc/two_phase.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "ldc/coloring/validate.hpp"
#include "ldc/mt/conflict.hpp"
#include "ldc/oldc/class_plan.hpp"
#include "ldc/oldc/multi_defect.hpp"
#include "ldc/oldc/rounding.hpp"
#include "ldc/repair/repair.hpp"
#include "ldc/support/math.hpp"
#include "ldc/support/packed_palette.hpp"
#include "ldc/support/prf.hpp"

namespace ldc::oldc {
namespace {

// Memoized candidate families (same trick as single_defect).
class FamilyCache {
 public:
  const mt::CandidateFamily& get(std::uint64_t type_key,
                                 std::span<const Color> list,
                                 std::uint32_t set_size,
                                 std::uint32_t kprime) {
    const std::uint64_t k =
        hash_combine(type_key, hash_combine(set_size, kprime));
    auto it = cache_.find(k);
    if (it == cache_.end()) {
      it = cache_
               .emplace(k, std::make_unique<mt::CandidateFamily>(
                               type_key, list, set_size, kprime))
               .first;
    }
    return *it->second;
  }

 private:
  std::unordered_map<std::uint64_t, std::unique_ptr<mt::CandidateFamily>>
      cache_;
};

}  // namespace

TwoPhaseResult solve_two_phase(Network& net, const TwoPhaseInput& in) {
  const LdcInstance& inst = *in.inst;
  const Graph& g = *inst.graph;
  const Orientation& orient = *in.orientation;
  const std::uint32_t n = g.n();
  TwoPhaseResult res;
  res.phi.assign(n, kUncolored);

  // --- Global parameters (Lemma 3.8).
  const std::uint32_t h =
      std::max(1, ceil_log2(std::max<std::uint64_t>(2, orient.max_beta())));
  const std::uint32_t hp = static_cast<std::uint32_t>(
      pow4_ceil(std::max<std::uint64_t>(1, ceil_log2(8ULL * h))));
  const std::uint32_t tau = static_cast<std::uint32_t>(pow4_ceil(
      mt::effective_tau(in.params, h, inst.color_space, in.m)));
  const std::uint32_t tau_bar = static_cast<std::uint32_t>(
      pow4_ceil(mt::effective_tau(in.params, hp, h, in.m)));
  const std::uint64_t alpha = pow4_ceil(std::max(1u, in.alpha));
  res.stats.h = h;
  res.stats.tau = tau;

  // --- Per-node bucketing and auxiliary class lists (Lemma 3.8 planning,
  // factored into oldc/class_plan for direct unit testing).
  ClassPlanParams plan_params;
  plan_params.h = h;
  plan_params.hp = hp;
  plan_params.tau_bar = tau_bar;
  plan_params.alpha = alpha;
  std::vector<ClassPlan> plans(n);
  for (NodeId v = 0; v < n; ++v) {
    plans[v] = plan_classes(inst.lists[v], orient.beta(v), plan_params);
    res.stats.clamped_classes += plans[v].clamped;
  }

  net.mark("two-phase/aux");
  // --- Assign gamma-classes by solving the auxiliary OLDC instance over
  // color space [h] with window g = floor(log2 h) (Lemma 3.6).
  std::vector<std::uint32_t> cls(n);
  std::vector<std::uint32_t> dv(n);        // single rounded defect
  std::vector<std::vector<Color>> used(n);  // bucket colors in play
  {
    LdcInstance aux;
    aux.graph = &g;
    aux.color_space = h;
    aux.lists.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      aux.lists[v].colors = plans[v].aux_colors;
      aux.lists[v].defects = plans[v].aux_defects;
    }
    MultiDefectInput mdi;
    mdi.inst = &aux;
    mdi.orientation = in.orientation;
    mdi.initial = in.initial;
    mdi.m = in.m;
    mdi.g = ilog2(std::max(1u, h));
    mdi.params = in.params;
    mdi.run_repair = in.run_repair;
    const auto aux_res = solve_multi_defect(net, mdi);
    res.stats.aux_rounds = aux_res.stats.rounds;
    res.stats.rounds += aux_res.stats.rounds;
    res.stats.repair_rounds += aux_res.stats.repair_rounds;
    for (NodeId v = 0; v < n; ++v) {
      cls[v] = static_cast<std::uint32_t>(aux_res.phi[v]) + 1;
      const std::uint32_t mu = plans[v].mu_of_class.at(cls[v]);
      dv[v] = plans[v].bucket_defect(mu);
      used[v] = plans[v].bucket_colors.at(mu);
      std::sort(used[v].begin(), used[v].end());
    }
  }

  net.mark("two-phase/class-announce");
  // --- One round: everyone announces its gamma-class (one bounded word:
  // the fused fast path).
  std::vector<std::vector<std::uint32_t>> nb_cls(n);
  {
    std::vector<std::uint64_t> words(n);
    for (NodeId v = 0; v < n; ++v) words[v] = cls[v];
    const WordMail inboxes = net.exchange_broadcast_word(words, h);
    ++res.stats.rounds;
    for (NodeId v = 0; v < n; ++v) {
      nb_cls[v].resize(g.degree(v));
      for (const auto [u, word] : inboxes[v]) {
        nb_cls[v][g.neighbor_index(v, u)] =
            static_cast<std::uint32_t>(word);
      }
    }
  }

  net.mark("two-phase/phase-I");
  // --- Phase I: ascending classes; prune, pick candidate sets.
  FamilyCache cache;
  // Per node: chosen set (own) and per-neighbor chosen set once known.
  std::vector<std::span<const Color>> own_set(n);
  std::vector<std::vector<std::span<const Color>>> nb_set(n);
  for (NodeId v = 0; v < n; ++v) nb_set[v].resize(g.degree(v));
  std::vector<const mt::CandidateFamily*> pending_family(n, nullptr);

  PackedPalette lower_union;  // prune scratch, reused across nodes/classes
  for (std::uint32_t i = 1; i <= h; ++i) {
    // Local: members of V_i prune and build candidate families.
    std::vector<bool> active(n, false);
    std::vector<std::vector<Color>> pruned(n);
    for (NodeId v = 0; v < n; ++v) {
      if (cls[v] != i) continue;
      active[v] = true;
      // Membership union of all lower-class out-neighbor sets: a color
      // absent from the union is held by no such neighbor (count 0, always
      // kept), so the per-neighbor counting loop runs only for colors that
      // are at least somewhere.
      lower_union.reset(inst.color_space);
      for (NodeId u : orient.out(v)) {
        const auto ui = g.neighbor_index(v, u);
        if (nb_cls[v][ui] >= i) continue;
        for (Color y : nb_set[v][ui]) lower_union.insert(y);
      }
      std::vector<Color> keep;
      keep.reserve(used[v].size());
      for (Color x : used[v]) {
        std::uint32_t cnt = 0;
        if (lower_union.contains(x)) {
          for (NodeId u : orient.out(v)) {
            const auto ui = g.neighbor_index(v, u);
            if (nb_cls[v][ui] >= i) continue;
            const auto cu = nb_set[v][ui];
            if (std::binary_search(cu.begin(), cu.end(), x)) ++cnt;
          }
        }
        if (4ULL * cnt > dv[v]) {
          ++res.stats.pruned_colors;
        } else {
          keep.push_back(x);
        }
      }
      if (keep.empty()) {
        keep = used[v];  // safety: never run out of colors entirely
        ++res.stats.p1_relaxed;
      }
      pruned[v] = std::move(keep);
      const std::uint64_t ki = sat_mul(std::uint64_t{1} << i, tau);
      const std::uint32_t set_size = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(ki, pruned[v].size()));
      const std::uint64_t key = mt::type_key((*in.initial)[v], pruned[v]);
      pending_family[v] =
          &cache.get(key, pruned[v], set_size, in.params.kprime);
      if (set_size < ki) ++res.stats.degraded;
    }

    // Round A: V_i broadcasts (initial color, pruned list).
    std::vector<std::vector<const mt::CandidateFamily*>> nb_family(n);
    {
      std::vector<Message> msgs(n);
      for (NodeId v = 0; v < n; ++v) {
        if (!active[v]) continue;
        BitWriter w;
        w.write_bounded((*in.initial)[v], in.m - 1);
        encode_color_list(w, pruned[v], inst.color_space);
        msgs[v] = Message::from(w);
      }
      const auto inboxes = net.exchange_broadcast(msgs, &active);
      ++res.stats.rounds;
      for (NodeId v = 0; v < n; ++v) {
        nb_family[v].assign(g.degree(v), nullptr);
        for (const auto& [u, m] : inboxes[v]) {
          auto r = m.reader();
          const std::uint64_t u_initial = r.read_bounded(in.m - 1);
          const auto u_list = decode_color_list(r, inst.color_space);
          const std::uint64_t ki = sat_mul(std::uint64_t{1} << i, tau);
          const std::uint32_t set_size = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(ki, u_list.size()));
          nb_family[v][g.neighbor_index(v, u)] = &cache.get(
              mt::type_key(u_initial, u_list), u_list, set_size,
              in.params.kprime);
        }
      }
    }

    // Local P1 against same-class out-neighbors only.
    std::vector<std::uint32_t> chosen(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      const auto kv = pending_family[v]->view();
      std::uint32_t best_j = 0, best_dc = ~0u;
      for (std::uint32_t j = 0; j < kv.count && best_dc > 0; ++j) {
        const auto cj = kv.set(j);
        std::uint32_t dc = 0;
        for (NodeId u : orient.out(v)) {
          const auto ui = g.neighbor_index(v, u);
          if (nb_cls[v][ui] != i || nb_family[v][ui] == nullptr) continue;
          const auto ku = nb_family[v][ui]->view();
          for (std::uint32_t s = 0; s < ku.count; ++s) {
            if (mt::tau_g_conflict(cj, ku.set(s), tau, 0)) {
              ++dc;
              break;
            }
          }
        }
        if (dc < best_dc) {
          best_dc = dc;
          best_j = j;
        }
      }
      chosen[v] = best_j;
      if (4ULL * best_dc > dv[v]) ++res.stats.p1_relaxed;
      own_set[v] = pending_family[v]->set(best_j);
    }

    // Round B: V_i broadcasts the chosen index (fused: one bounded word).
    {
      std::vector<std::uint64_t> words(n);
      for (NodeId v = 0; v < n; ++v) {
        if (active[v]) words[v] = chosen[v];
      }
      const WordMail inboxes =
          net.exchange_broadcast_word(words, in.params.kprime - 1, &active);
      ++res.stats.rounds;
      for (NodeId v = 0; v < n; ++v) {
        for (const auto [u, word] : inboxes[v]) {
          const auto j = static_cast<std::uint32_t>(word);
          const auto ui = g.neighbor_index(v, u);
          const auto* fam = nb_family[v][ui];
          if (fam != nullptr) {
            nb_set[v][ui] = fam->set(std::min(j, fam->size() - 1));
          }
        }
      }
    }
  }

  net.mark("two-phase/phase-II");
  // --- Phase II: descending classes pick final colors.
  std::vector<std::vector<Color>> nb_final(n);
  for (NodeId v = 0; v < n; ++v) nb_final[v].assign(g.degree(v), kUncolored);
  PackedPalette forbid;        // Phase II scratch, reused across nodes
  std::vector<NodeId> contrib; // same-class out-neighbors that count
  for (std::uint32_t i = h; i >= 1; --i) {
    std::vector<std::uint64_t> words(n);
    std::vector<bool> active(n, false);
    for (NodeId v = 0; v < n; ++v) {
      if (cls[v] != i) continue;
      active[v] = true;
      const auto cv = own_set[v];
      Color best = cv.empty() ? used[v].front() : cv.front();
      std::uint64_t best_f = ~0ULL;
      // The tau&g-conflict test against a same-class neighbor depends on
      // the two chosen sets only, never on the candidate x — decide it
      // once per neighbor instead of once per (x, neighbor) pair. Only
      // non-conflicted same-class neighbors count (the conflicted
      // <= d_v/4 are charged to the P1 budget); lower classes are covered
      // by Phase I pruning.
      contrib.clear();
      forbid.reset(inst.color_space);
      for (NodeId u : orient.out(v)) {
        const auto ui = g.neighbor_index(v, u);
        const std::uint32_t uc = nb_cls[v][ui];
        if (uc > i) {
          if (nb_final[v][ui] != kUncolored) forbid.insert(nb_final[v][ui]);
        } else if (uc == i) {
          const auto cu = nb_set[v][ui];
          if (!cu.empty() && !mt::tau_g_conflict(cv, cu, tau, 0)) {
            contrib.push_back(u);
            for (Color y : cu) forbid.insert(y);
          }
        }
      }
      // Packed fast path: a candidate absent from the union of announced
      // finals and contributing sets has frequency f == 0, and the exact
      // loop picks the first minimum — so the first absent candidate (in
      // list order) is the exact answer.
      const std::uint64_t zero_conflict =
          forbid.first_absent(std::span<const Color>(cv));
      if (zero_conflict != PackedPalette::npos) {
        best = static_cast<Color>(zero_conflict);
      } else {
        for (Color x : cv) {
          std::uint64_t f = 0;
          for (NodeId u : orient.out(v)) {
            const auto ui = g.neighbor_index(v, u);
            if (nb_cls[v][ui] > i && nb_final[v][ui] == x) ++f;
          }
          for (NodeId u : contrib) {
            const auto cu = nb_set[v][g.neighbor_index(v, u)];
            if (std::binary_search(cu.begin(), cu.end(), x)) ++f;
          }
          if (f < best_f) {
            best_f = f;
            best = x;
          }
        }
      }
      res.phi[v] = best;
      words[v] = best;
    }
    const WordMail inboxes =
        net.exchange_broadcast_word(words, inst.color_space - 1, &active);
    ++res.stats.rounds;
    for (NodeId v = 0; v < n; ++v) {
      for (const auto [u, word] : inboxes[v]) {
        nb_final[v][g.neighbor_index(v, u)] = static_cast<Color>(word);
      }
    }
  }

  // --- Validate against the original instance; repair if needed.
  res.valid = static_cast<bool>(validate_oldc(inst, orient, res.phi, 0));
  if (!res.valid && in.run_repair) {
    repair::Options ropt;
    ropt.orientation = in.orientation;
    auto rep = repair::repair(net, inst, res.phi, ropt);
    if (!rep.success) {
      throw InfeasibleError("solve_two_phase: repair failed");
    }
    res.phi = std::move(rep.phi);
    res.stats.repair_rounds += rep.rounds;
    res.stats.repaired = true;
    res.stats.rounds += rep.rounds;
  }
  return res;
}

}  // namespace ldc::oldc
