#include "ldc/oldc/multi_defect.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "ldc/coloring/validate.hpp"
#include "ldc/oldc/rounding.hpp"
#include "ldc/oldc/single_defect.hpp"
#include "ldc/repair/repair.hpp"
#include "ldc/support/math.hpp"

namespace ldc::oldc {
OldcResult solve_multi_defect(Network& net, const MultiDefectInput& in) {
  const LdcInstance& inst = *in.inst;
  const Graph& g = *inst.graph;
  const Orientation& orient = *in.orientation;
  const std::uint32_t n = g.n();

  // Bucket each node's colors by the gamma-class implied by the rounded
  // defect; keep the heaviest bucket.
  SingleDefectInput sd;
  sd.graph = &g;
  sd.orientation = in.orientation;
  sd.color_space = inst.color_space;
  sd.initial = in.initial;
  sd.m = in.m;
  sd.g = in.g;
  sd.params = in.params;
  sd.run_repair = false;  // repair is done here, against the full instance
  sd.lists.resize(n);
  sd.defects.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto& list = inst.lists[v];
    if (list.size() == 0) {
      throw std::invalid_argument("solve_multi_defect: empty color list");
    }
    // bucket key: gamma-class of the rounded defect.
    std::map<std::uint32_t, std::pair<std::uint64_t, std::vector<std::size_t>>>
        buckets;  // class -> (weight, color indices)
    for (std::size_t i = 0; i < list.size(); ++i) {
      const std::uint32_t dp1 = pow2_floor(list.defects[i] + 1);
      const std::uint32_t cls = gamma_class(orient.beta(v), dp1 - 1, 2);
      auto& b = buckets[cls];
      b.first += static_cast<std::uint64_t>(dp1) * dp1;
      b.second.push_back(i);
    }
    const auto best = std::max_element(
        buckets.begin(), buckets.end(), [](const auto& a, const auto& b) {
          return a.second.first < b.second.first;
        });
    std::uint32_t min_defect = ~0u;
    for (auto i : best->second.second) {
      sd.lists[v].push_back(list.colors[i]);
      min_defect = std::min(min_defect, pow2_floor(list.defects[i] + 1) - 1);
    }
    sd.defects[v] = min_defect;
  }

  OldcResult res = solve_single_defect(net, sd);

  // Validate against the *original* per-color defects and repair if needed.
  res.valid = static_cast<bool>(validate_oldc(inst, orient, res.phi, in.g));
  if (!res.valid && in.run_repair) {
    repair::Options ropt;
    ropt.g = in.g;
    ropt.orientation = in.orientation;
    auto rep = repair::repair(net, inst, res.phi, ropt);
    if (!rep.success) {
      throw InfeasibleError("solve_multi_defect: repair failed");
    }
    res.phi = std::move(rep.phi);
    res.stats.repair_rounds += rep.rounds;
    res.stats.repaired = true;
    res.stats.rounds += rep.rounds;
  }
  return res;
}

}  // namespace ldc::oldc
