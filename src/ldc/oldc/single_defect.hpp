// Basic generalized OLDC algorithm — Section 3.2.3 of the paper.
//
// Every node has one defect value d_v for all colors of its list. The
// algorithm:
//   1. (local) gamma-class i_v = min{i : 2^i >= 2 beta_v/(d_v+1)}; residue
//      restriction of the list mod (2g+1); candidate family K_v of k'
//      candidate sets of k_{i_v} = 2^{i_v} * tau colors each, a pure
//      function of the node's type (problem P2, zero rounds);
//   2. (1 round) types travel to neighbors, who reconstruct K_u locally;
//   3. (local, problem P1) v picks C_v in K_v minimizing the number of
//      out-neighbors u with i_u <= i_v whose family contains a set
//      tau&g-conflicting with C_v; the paper's pigeonhole gives a pick with
//      at most d_v/2 such neighbors;
//   4. (1 round) the index of C_v travels to neighbors;
//   5. (h rounds, problem P0) gamma-classes are processed in descending
//      order; a class-i node picks the color of C_v with the lowest
//      frequency among out-neighbors' candidate sets (classes <= i) and
//      already chosen colors (classes > i), then announces it.
//
// The output is validated against Definition 1.1 (generalized g); in the
// rare case a PRF candidate family misses the pigeonhole margin, a bounded
// repair phase (ldc/repair) restores validity and is reported in stats.
#pragma once

#include <cstdint>
#include <vector>

#include "ldc/coloring/instance.hpp"
#include "ldc/mt/candidates.hpp"
#include "ldc/oldc/gamma.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::oldc {

struct SingleDefectInput {
  const Graph* graph = nullptr;
  const Orientation* orientation = nullptr;
  std::uint64_t color_space = 0;
  /// Per-node sorted color lists (the single defect applies to every color).
  std::vector<std::vector<Color>> lists;
  /// Per-node defect d_v.
  std::vector<std::uint32_t> defects;
  /// Proper initial coloring with colors < m (e.g. from linial::color).
  const Coloring* initial = nullptr;
  std::uint64_t m = 0;
  /// Generalized conflict width: a neighbor conflicts when |x - y| <= g.
  std::uint32_t g = 0;
  mt::CandidateParams params;
  /// Run the repair safety net if the raw output fails validation.
  bool run_repair = true;
};

OldcResult solve_single_defect(Network& net, const SingleDefectInput& in);

}  // namespace ldc::oldc
