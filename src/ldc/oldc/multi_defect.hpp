// Multi-defect OLDC via bucket selection — Lemma 3.6.
//
// Defects and beta_v are rounded to powers of two; each node buckets its
// colors by the gamma-class the color's defect implies and keeps the bucket
// maximizing sum (d_v(x)+1)^2 — the lemma guarantees the chosen bucket
// carries at least a 1/h fraction of the node's total weight, which is
// enough for the single-defect algorithm of Section 3.2.3.
#pragma once

#include "ldc/coloring/instance.hpp"
#include "ldc/mt/candidates.hpp"
#include "ldc/oldc/gamma.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::oldc {

struct MultiDefectInput {
  const LdcInstance* inst = nullptr;  ///< lists with per-color defects
  const Orientation* orientation = nullptr;
  const Coloring* initial = nullptr;  ///< proper m-coloring
  std::uint64_t m = 0;
  std::uint32_t g = 0;
  mt::CandidateParams params;
  bool run_repair = true;
};

/// Solves the generalized OLDC instance (each node ends with at most
/// d_v(phi(v)) out-neighbors w within |phi(w) - phi(v)| <= g).
OldcResult solve_multi_defect(Network& net, const MultiDefectInput& in);

}  // namespace ldc::oldc
