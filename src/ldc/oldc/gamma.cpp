#include "ldc/oldc/gamma.hpp"

#include <cassert>

#include "ldc/support/math.hpp"

namespace ldc::oldc {

std::uint32_t gamma_class(std::uint32_t beta, std::uint32_t defect,
                          std::uint32_t factor) {
  assert(beta >= 1);
  const std::uint64_t target =
      ceil_div(static_cast<std::uint64_t>(factor) * beta, defect + 1);
  return std::max(1, ceil_log2(std::max<std::uint64_t>(target, 2)));
}

void encode_color_list(BitWriter& w, std::span<const Color> list,
                       std::uint64_t color_space) {
  const int color_bits = ceil_log2(color_space);
  const std::size_t explicit_bits =
      32 + list.size() * static_cast<std::size_t>(color_bits);
  if (color_space <= explicit_bits) {
    // Bitmap form.
    w.write(0, 1);
    std::size_t next = 0;
    for (std::uint64_t c = 0; c < color_space; ++c) {
      const bool present = next < list.size() && list[next] == c;
      w.write(present ? 1 : 0, 1);
      if (present) ++next;
    }
  } else {
    w.write(1, 1);
    w.write(list.size(), 32);
    for (Color c : list) w.write(c, color_bits);
  }
}

std::vector<Color> decode_color_list(BitReader& r,
                                     std::uint64_t color_space) {
  const int color_bits = ceil_log2(color_space);
  std::vector<Color> out;
  if (r.read(1) == 0) {
    for (std::uint64_t c = 0; c < color_space; ++c) {
      if (r.read(1) == 1) out.push_back(static_cast<Color>(c));
    }
  } else {
    const std::uint64_t len = r.read(32);
    out.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) {
      out.push_back(static_cast<Color>(r.read(color_bits)));
    }
  }
  return out;
}

}  // namespace ldc::oldc
