// Two-phase OLDC algorithm — Lemmas 3.7 / 3.8, i.e. Theorem 1.1.
//
// Improves on Lemma 3.6 by (a) choosing each node's gamma-class adaptively
// via an auxiliary OLDC instance over the class space [h] (solved with the
// multi-defect algorithm with window g = floor(log2 h)), and (b) processing
// classes in two sweeps: Phase I ascends, pruning colors over-subscribed by
// lower classes (budget d_v/4) and picking candidate sets against
// same-class competitors only (budget d_v/4); Phase II descends, picking
// the minimum-frequency color against same-class candidate sets and
// higher-class final colors (budget d_v/2).
//
// Precondition shape (Theorem 1.1): sum_x (d_v(x)+1)^2 >= alpha * beta_v^2
// * kappa(beta, |C|, m). Practical constants are knobs in the params; the
// validator + repair safety net keep outputs valid regardless (stats report
// any relaxation).
#pragma once

#include "ldc/coloring/instance.hpp"
#include "ldc/mt/candidates.hpp"
#include "ldc/oldc/gamma.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::oldc {

struct TwoPhaseInput {
  const LdcInstance* inst = nullptr;  ///< lists with per-color defects
  const Orientation* orientation = nullptr;
  const Coloring* initial = nullptr;  ///< proper m-coloring
  std::uint64_t m = 0;
  mt::CandidateParams params;
  /// alpha constant of R_v = alpha * beta_v^2 * tau_bar * h'^2, rounded to
  /// a power of 4.
  std::uint32_t alpha = 4;
  bool run_repair = true;
};

struct TwoPhaseStats : OldcStats {
  std::uint32_t aux_rounds = 0;     ///< rounds spent assigning gamma-classes
  std::uint32_t pruned_colors = 0;  ///< total colors removed in Phase I
  std::uint32_t clamped_classes = 0;  ///< class indices clamped into [1,h]
};

struct TwoPhaseResult {
  Coloring phi;
  TwoPhaseStats stats;
  bool valid = false;
};

/// Solves the OLDC instance (g = 0 conflicts, Definition 1.1).
TwoPhaseResult solve_two_phase(Network& net, const TwoPhaseInput& in);

}  // namespace ldc::oldc
