// Per-node gamma-class planning — the pure-computation core of Lemma 3.8.
//
// Given a node's list/defects and beta_v, computes the rounded quantities
// R_v, the defect buckets mu, the lambda values, and the auxiliary
// class-selection instance (candidate classes with defects delta_{v,i})
// the two-phase algorithm solves to assign gamma-classes. Factored out of
// the solver so the paper's inequalities — Sum lambda >= 1/8 in Case I
// (Inequality (7)'s precursor), delta_{v,i} >= sqrt(R_v)/(8h), and
// Sum (delta+1)^2 >= R_v/20 — are directly unit-testable.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ldc/coloring/instance.hpp"

namespace ldc::oldc {

struct ClassPlanParams {
  std::uint32_t h = 1;         ///< number of gamma-classes
  std::uint32_t hp = 4;        ///< h' (power of 4)
  std::uint32_t tau_bar = 4;   ///< tau-bar (power of 4)
  std::uint64_t alpha = 4;     ///< alpha (power of 4)
};

struct ClassPlan {
  std::uint64_t rv = 0;                         ///< R_v (power of 4)
  bool case2 = false;                           ///< some lambda >= 1/4
  bool fallback = false;                        ///< paper precondition missed
  std::uint32_t clamped = 0;                    ///< class indices clamped
  std::vector<Color> aux_colors;                ///< class-1 values, sorted
  std::vector<std::uint32_t> aux_defects;       ///< delta_{v, class}
  std::map<std::uint32_t, std::uint32_t> mu_of_class;  ///< class -> bucket
  /// bucket mu -> original colors in it (all sharing one rounded defect).
  std::map<std::uint32_t, std::vector<Color>> bucket_colors;

  /// The rounded single defect of bucket mu: sqrt(R_v)/2^mu - 1.
  std::uint32_t bucket_defect(std::uint32_t mu) const;
};

/// Plans node v's auxiliary class-selection lists (Lemma 3.8 Cases I/II).
ClassPlan plan_classes(const ColorList& list, std::uint32_t beta_v,
                       const ClassPlanParams& params);

}  // namespace ldc::oldc
