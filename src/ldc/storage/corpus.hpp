// On-disk CSR graph corpus format + streaming writer.
//
// A corpus is a single file holding one immutable undirected graph in the
// exact layout the algorithms consume in RAM, so an mmap of the file IS
// the graph (see mapped_graph.hpp) — built once by `ldc_gen`, then paged
// on demand and shared read-only by every service worker.
//
// Layout (little-endian, every section page-aligned to 4096 bytes):
//
//   [0, 4096)                      header (fixed fields below)
//   [offsets_pos, +offsets_bytes)  (n+1) x uint64  CSR offsets
//   [ids_pos, +ids_bytes)          n x uint64      node ids (optional)
//   [adj_pos, +adj_bytes)          adj_entries x uint32 neighbor ids
//
// Header fields (fixed byte offsets, see corpus.cpp):
//   magic "LDCCORP1", endianness tag 0x01020304, format version,
//   n / adj_entries / max_degree / flags / max_id,
//   the three section (pos, bytes) pairs,
//   content_digest — FNV-1a 64 combining the three section digests,
//   header_digest  — FNV-1a 64 over all preceding header bytes.
//
// The adjacency section is last and the offsets/ids sections have sizes
// known from n alone, so CorpusWriter streams all three sections in one
// pass with O(buffer) memory — it never holds the edge set, the offset
// array, or the id array in RAM. The header is patched on close().
//
// Integrity model: structural validation (magic, version, endianness,
// header digest, section bounds vs the real file size) is mandatory at
// open and touches only the header page. The content digest covers every
// section byte; verifying it reads the whole file, so it is opt-in
// (ldc_gen --verify, the hostility tests) rather than paid on the serve
// path — the digest still *names* the content and keys result caches.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ldc/graph/graph.hpp"

namespace ldc::storage {

/// Malformed, truncated or foreign corpus file — every hostile-input
/// condition surfaces as this one catchable type naming what failed,
/// never a crash or a silently mis-loaded graph.
class CorpusError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kCorpusVersion = 1;
inline constexpr std::uint64_t kCorpusPage = 4096;
inline constexpr std::uint64_t kCorpusHeaderBytes = 112;

/// Flags word.
inline constexpr std::uint32_t kCorpusHasIds = 1u << 0;

/// Everything the header records about a corpus.
struct CorpusMeta {
  std::uint64_t n = 0;
  std::uint64_t adj_entries = 0;  ///< 2m: each undirected edge twice
  std::uint32_t max_degree = 0;
  bool has_ids = false;
  std::uint64_t max_id = 0;
  std::uint64_t content_digest = 0;  ///< identity of the graph bytes
  std::uint64_t file_bytes = 0;

  std::uint64_t m() const { return adj_entries / 2; }
};

/// Streaming writer: feed vertices 0..n-1 in order, each with its full
/// sorted neighbor list, then close(). Peak memory is the section write
/// buffers — independent of n and m. The file is invalid (zero header)
/// until close() patches the header, so a crashed build is never mistaken
/// for a corpus.
class CorpusWriter {
 public:
  /// Creates/truncates `path`. n < 2^32 (NodeId is 32-bit). with_ids
  /// reserves the id section; then every add_vertex must pass an id.
  CorpusWriter(std::string path, std::uint64_t n, bool with_ids);
  ~CorpusWriter();

  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  /// Appends the next vertex's neighbor row. Rows must arrive for
  /// vertices 0..n-1 in order; `sorted_neighbors` must be strictly
  /// ascending, self-loop-free and < n. With with_ids, `id` is recorded
  /// (the caller guarantees uniqueness — ldc_gen derives ids from a
  /// bijection); without, it must be omitted (identity ids).
  void add_vertex(std::span<const NodeId> sorted_neighbors);
  void add_vertex(std::span<const NodeId> sorted_neighbors, std::uint64_t id);

  std::uint64_t vertices_written() const { return next_vertex_; }

  /// Flushes sections, checks exactly n rows arrived and the half-edge
  /// count is even (an asymmetric emission cannot be a valid undirected
  /// CSR), writes the real header. Returns the final meta.
  CorpusMeta close();

 private:
  struct Section {
    std::uint64_t base = 0;    ///< file position of the section start
    std::uint64_t cursor = 0;  ///< bytes appended so far
    std::uint64_t digest;      ///< running FNV-1a over appended bytes
    std::vector<unsigned char> buf;
  };

  void append(Section& s, const void* data, std::size_t len);
  void flush(Section& s);
  void add_vertex_impl(std::span<const NodeId> sorted_neighbors,
                       const std::uint64_t* id);

  std::string path_;
  int fd_ = -1;
  std::uint64_t n_;
  bool with_ids_;
  std::uint64_t next_vertex_ = 0;
  std::uint64_t adj_entries_ = 0;
  std::uint32_t max_degree_ = 0;
  std::uint64_t max_id_ = 0;
  bool closed_ = false;
  Section offsets_, ids_, adj_;
};

/// Parses and validates a header page (the first kCorpusPage bytes, or
/// fewer for a truncated file); `file_bytes` is the real on-disk size the
/// section bounds are checked against. Throws CorpusError naming the
/// failing check. Returns the meta plus the three section positions.
struct CorpusLayout {
  CorpusMeta meta;
  std::uint64_t offsets_pos = 0, offsets_bytes = 0;
  std::uint64_t ids_pos = 0, ids_bytes = 0;
  std::uint64_t adj_pos = 0, adj_bytes = 0;
};
CorpusLayout parse_corpus_header(std::span<const unsigned char> header,
                                 std::uint64_t file_bytes,
                                 const std::string& what);

}  // namespace ldc::storage
