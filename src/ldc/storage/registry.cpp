#include "ldc/storage/registry.hpp"

namespace ldc::storage {

bool valid_corpus_name(const std::string& name) {
  if (name.empty() || name.size() > 128 || name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::shared_ptr<const MappedGraph> CorpusRegistry::get(
    const std::string& name) {
  if (!valid_corpus_name(name)) {
    throw CorpusError("corpus name '" + name +
                      "' invalid (want [A-Za-z0-9_.-]{1,128}, no leading "
                      "dot)");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_.find(name);
    if (it != open_.end()) return it->second;
  }
  // Open outside the lock: mapping + header validation can touch the
  // disk, and a slow open must not block lookups of already-open corpora.
  auto mg = MappedGraph::open(dir_ + "/" + name + kCorpusExtension);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = open_.emplace(name, std::move(mg));
  return it->second;  // a racing open won; keep the cached one
}

std::vector<CorpusRegistry::Info> CorpusRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Info> out;
  out.reserve(open_.size());
  for (const auto& [name, mg] : open_) {
    Info info;
    info.name = name;
    info.vertices = mg->meta().n;
    info.edges = mg->meta().m();
    info.file_bytes = mg->file_bytes();
    info.content_digest = mg->meta().content_digest;
    info.open_mappings = mg->open_pins();
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace ldc::storage
