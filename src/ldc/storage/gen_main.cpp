// ldc_gen: materializes a named corpus file from a streaming generator.
//
//   ldc_gen --dir corpora --name ring1m --kind ring --n 1000000
//   ldc_gen --dir corpora --name reg10m --kind random_regular
//           --n 10000000 --degree 8 --seed 7
//
// Writes <dir>/<name>.ldcg — the layout ldc_serve --corpus-dir serves
// from — streaming rows with bounded memory, then (with --verify) remaps
// the file and recomputes the content digest. The summary line it prints
// carries the digest that will key result caches for jobs on this corpus.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "ldc/storage/mapped_graph.hpp"
#include "ldc/storage/registry.hpp"
#include "ldc/storage/stream_gen.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: ldc_gen --dir DIR --name NAME --kind KIND [options]\n"
      "\n"
      "Streams a generated graph into the corpus file DIR/NAME.ldcg with\n"
      "bounded memory (never holds the edge set in RAM).\n"
      "\n"
      "  --dir DIR          corpus directory (created files land here)\n"
      "  --name NAME        corpus name ([A-Za-z0-9_.-], no leading dot)\n"
      "  --kind KIND        ring | random_regular | gnp | kronecker | "
      "rgg_2d\n"
      "  --n N              vertex count (kronecker derives it from "
      "--scale)\n"
      "  --seed S           generator seed (default 1)\n"
      "  --degree D         random_regular: even degree\n"
      "  --band B           gnp: candidate window |u-v| <= B\n"
      "  --p P              gnp: per-pair edge probability\n"
      "  --scale K          kronecker: n = 2^K\n"
      "  --edge-factor F    kronecker: edge draws per vertex (default 16)\n"
      "  --radius R         rgg_2d: connection radius in (0,1]\n"
      "  --scrambled-ids    record feistel-scrambled 64-bit external ids\n"
      "  --chunk-nodes N    rows generated per chunk (default 65536)\n"
      "  --verify           remap the finished file and recompute the\n"
      "                     content digest (reads the whole file)\n"
      "  --help             this text\n");
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir, name;
  ldc::storage::gen::StreamSpec spec;
  spec.seed = 1;
  std::uint64_t chunk_nodes = 1u << 16;
  bool verify = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ldc_gen: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto need_u64 = [&](std::uint64_t& out) {
      if (!parse_u64(value(), out)) {
        std::fprintf(stderr, "ldc_gen: bad %s\n", arg.c_str());
        std::exit(2);
      }
    };
    auto need_double = [&](double& out) {
      if (!parse_double(value(), out)) {
        std::fprintf(stderr, "ldc_gen: bad %s\n", arg.c_str());
        std::exit(2);
      }
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--dir") {
      dir = value();
    } else if (arg == "--name") {
      name = value();
    } else if (arg == "--kind") {
      spec.kind = value();
    } else if (arg == "--n") {
      need_u64(spec.n);
    } else if (arg == "--seed") {
      need_u64(spec.seed);
    } else if (arg == "--degree") {
      std::uint64_t d = 0;
      need_u64(d);
      spec.degree = static_cast<std::uint32_t>(d);
    } else if (arg == "--band") {
      std::uint64_t b = 0;
      need_u64(b);
      spec.band = static_cast<std::uint32_t>(b);
    } else if (arg == "--p") {
      need_double(spec.p);
    } else if (arg == "--scale") {
      std::uint64_t k = 0;
      need_u64(k);
      spec.scale = static_cast<std::uint32_t>(k);
      spec.n = std::uint64_t{1} << spec.scale;
    } else if (arg == "--edge-factor") {
      need_double(spec.edge_factor);
    } else if (arg == "--radius") {
      need_double(spec.radius);
    } else if (arg == "--scrambled-ids") {
      spec.scrambled_ids = true;
    } else if (arg == "--chunk-nodes") {
      need_u64(chunk_nodes);
    } else if (arg == "--verify") {
      verify = true;
    } else {
      std::fprintf(stderr, "ldc_gen: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (dir.empty() || name.empty() || spec.kind.empty()) {
    std::fprintf(stderr, "ldc_gen: --dir, --name and --kind are required\n");
    usage(stderr);
    return 2;
  }
  if (!ldc::storage::valid_corpus_name(name)) {
    std::fprintf(stderr,
                 "ldc_gen: invalid corpus name '%s' (want [A-Za-z0-9_.-], "
                 "no leading dot)\n",
                 name.c_str());
    return 2;
  }

  const std::string path = dir + "/" + name + ldc::storage::kCorpusExtension;
  try {
    const auto meta =
        ldc::storage::gen::write_corpus(spec, path, chunk_nodes);
    if (verify) {
      ldc::storage::MappedGraph::open(path, /*verify_content=*/true);
    }
    std::printf("ldc_gen: %s kind=%s n=%" PRIu64 " m=%" PRIu64
                " max_degree=%" PRIu32 " bytes=%" PRIu64
                " digest=%016" PRIx64 "%s\n",
                path.c_str(), spec.kind.c_str(), meta.n, meta.m(),
                meta.max_degree, meta.file_bytes, meta.content_digest,
                verify ? " verified" : "");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ldc_gen: %s\n", e.what());
    std::remove(path.c_str());  // never leave a half-written corpus behind
    return 1;
  }
  return 0;
}
