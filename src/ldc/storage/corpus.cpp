#include "ldc/storage/corpus.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "ldc/support/fnv.hpp"

namespace ldc::storage {
namespace {

constexpr char kMagic[8] = {'L', 'D', 'C', 'C', 'O', 'R', 'P', '1'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kSectionBufBytes = std::size_t{1} << 20;

// Fixed header field offsets (bytes). The header digest covers [0, 104).
enum : std::size_t {
  kOffMagic = 0,
  kOffEndian = 8,
  kOffVersion = 12,
  kOffN = 16,
  kOffAdjEntries = 24,
  kOffMaxDegree = 32,
  kOffFlags = 36,
  kOffMaxId = 40,
  kOffOffsetsPos = 48,
  kOffOffsetsBytes = 56,
  kOffIdsPos = 64,
  kOffIdsBytes = 72,
  kOffAdjPos = 80,
  kOffAdjBytes = 88,
  kOffContentDigest = 96,
  kOffHeaderDigest = 104,
};
static_assert(kOffHeaderDigest + 8 == kCorpusHeaderBytes);

std::uint64_t page_align(std::uint64_t pos) {
  return (pos + kCorpusPage - 1) / kCorpusPage * kCorpusPage;
}

template <typename T>
void put(unsigned char* header, std::size_t off, T value) {
  std::memcpy(header + off, &value, sizeof value);
}

template <typename T>
T get(std::span<const unsigned char> header, std::size_t off) {
  T value;
  std::memcpy(&value, header.data() + off, sizeof value);
  return value;
}

[[noreturn]] void fail(const std::string& what, const std::string& why) {
  throw CorpusError("corpus " + what + ": " + why);
}

void write_all_at(int fd, const void* data, std::size_t len,
                  std::uint64_t pos, const std::string& path) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (len > 0) {
    const ssize_t w = ::pwrite(fd, p, len, static_cast<off_t>(pos));
    if (w < 0) {
      if (errno == EINTR) continue;
      throw CorpusError("corpus " + path + ": write failed: " +
                        std::strerror(errno));
    }
    p += w;
    pos += static_cast<std::uint64_t>(w);
    len -= static_cast<std::size_t>(w);
  }
}

}  // namespace

CorpusWriter::CorpusWriter(std::string path, std::uint64_t n, bool with_ids)
    : path_(std::move(path)), n_(n), with_ids_(with_ids) {
  if (n >= std::numeric_limits<NodeId>::max()) {
    throw CorpusError("corpus " + path_ +
                      ": n exceeds the 32-bit node-id space");
  }
  fd_ = ::open(path_.c_str(), O_CREAT | O_TRUNC | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw CorpusError("corpus " + path_ + ": cannot create: " +
                      std::strerror(errno));
  }
  // Section positions are known up front because the adjacency section —
  // the only one whose size depends on the (not yet known) edge count —
  // comes last.
  offsets_.base = page_align(kCorpusHeaderBytes);
  ids_.base = page_align(offsets_.base + (n_ + 1) * 8);
  adj_.base = page_align(ids_.base + (with_ids_ ? n_ * 8 : 0));
  for (Section* s : {&offsets_, &ids_, &adj_}) {
    s->digest = kFnv1a64Seed;
    s->buf.reserve(kSectionBufBytes);
  }
  const std::uint64_t zero = 0;
  append(offsets_, &zero, sizeof zero);  // offsets[0]
}

CorpusWriter::~CorpusWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void CorpusWriter::append(Section& s, const void* data, std::size_t len) {
  s.digest = fnv1a64_bytes(data, len, s.digest);
  const auto* p = static_cast<const unsigned char*>(data);
  s.buf.insert(s.buf.end(), p, p + len);
  if (s.buf.size() >= kSectionBufBytes) flush(s);
}

void CorpusWriter::flush(Section& s) {
  if (s.buf.empty()) return;
  write_all_at(fd_, s.buf.data(), s.buf.size(), s.base + s.cursor, path_);
  s.cursor += s.buf.size();
  s.buf.clear();
}

void CorpusWriter::add_vertex(std::span<const NodeId> sorted_neighbors) {
  if (with_ids_) {
    throw CorpusError("corpus " + path_ +
                      ": id required (writer opened with_ids)");
  }
  add_vertex_impl(sorted_neighbors, nullptr);
}

void CorpusWriter::add_vertex(std::span<const NodeId> sorted_neighbors,
                              std::uint64_t id) {
  if (!with_ids_) {
    throw CorpusError("corpus " + path_ +
                      ": writer opened without an id section");
  }
  add_vertex_impl(sorted_neighbors, &id);
}

void CorpusWriter::add_vertex_impl(std::span<const NodeId> sorted_neighbors,
                                   const std::uint64_t* id) {
  if (closed_) throw CorpusError("corpus " + path_ + ": writer closed");
  if (next_vertex_ >= n_) {
    throw CorpusError("corpus " + path_ + ": more than n vertex rows");
  }
  const NodeId self = static_cast<NodeId>(next_vertex_);
  NodeId prev = 0;
  bool first = true;
  for (const NodeId v : sorted_neighbors) {
    if (v >= n_) fail(path_, "neighbor id out of range");
    if (v == self) fail(path_, "self-loop");
    if (!first && v <= prev) fail(path_, "neighbor row not strictly ascending");
    prev = v;
    first = false;
  }
  if (!sorted_neighbors.empty()) {
    append(adj_, sorted_neighbors.data(), sorted_neighbors.size() * 4);
  }
  adj_entries_ += sorted_neighbors.size();
  max_degree_ = std::max(max_degree_,
                         static_cast<std::uint32_t>(sorted_neighbors.size()));
  append(offsets_, &adj_entries_, sizeof adj_entries_);
  if (id != nullptr) {
    append(ids_, id, sizeof *id);
    max_id_ = std::max(max_id_, *id);
  }
  ++next_vertex_;
}

CorpusMeta CorpusWriter::close() {
  if (closed_) throw CorpusError("corpus " + path_ + ": writer closed");
  if (next_vertex_ != n_) {
    fail(path_, "closed after " + std::to_string(next_vertex_) + " of " +
                    std::to_string(n_) + " vertex rows");
  }
  if (adj_entries_ % 2 != 0) {
    fail(path_, "odd half-edge count — emission was not symmetric");
  }
  closed_ = true;
  flush(offsets_);
  flush(ids_);
  flush(adj_);

  // The content digest combines the three independent section digests
  // (each section streams concurrently, so one sequential FNV pass over
  // the whole file is not available to the writer; the verifier combines
  // identically).
  std::uint64_t section_digests[3] = {offsets_.digest, ids_.digest,
                                      adj_.digest};
  const std::uint64_t content =
      fnv1a64_bytes(section_digests, sizeof section_digests);

  unsigned char header[kCorpusHeaderBytes];
  std::memset(header, 0, sizeof header);
  std::memcpy(header + kOffMagic, kMagic, sizeof kMagic);
  put(header, kOffEndian, kEndianTag);
  put(header, kOffVersion, kCorpusVersion);
  put(header, kOffN, n_);
  put(header, kOffAdjEntries, adj_entries_);
  put(header, kOffMaxDegree, max_degree_);
  put(header, kOffFlags, with_ids_ ? kCorpusHasIds : 0u);
  put(header, kOffMaxId, with_ids_ ? max_id_ : (n_ == 0 ? 0 : n_ - 1));
  put(header, kOffOffsetsPos, offsets_.base);
  put(header, kOffOffsetsBytes, offsets_.cursor);
  put(header, kOffIdsPos, ids_.base);
  put(header, kOffIdsBytes, ids_.cursor);
  put(header, kOffAdjPos, adj_.base);
  put(header, kOffAdjBytes, adj_.cursor);
  put(header, kOffContentDigest, content);
  put(header, kOffHeaderDigest,
      fnv1a64_bytes(header, kOffHeaderDigest));
  write_all_at(fd_, header, sizeof header, 0, path_);
  ::close(fd_);
  fd_ = -1;

  CorpusMeta meta;
  meta.n = n_;
  meta.adj_entries = adj_entries_;
  meta.max_degree = max_degree_;
  meta.has_ids = with_ids_;
  meta.max_id = with_ids_ ? max_id_ : (n_ == 0 ? 0 : n_ - 1);
  meta.content_digest = content;
  meta.file_bytes = adj_.base + adj_.cursor;
  return meta;
}

CorpusLayout parse_corpus_header(std::span<const unsigned char> header,
                                 std::uint64_t file_bytes,
                                 const std::string& what) {
  if (header.size() < kCorpusHeaderBytes) {
    fail(what, "truncated header (" + std::to_string(header.size()) +
                   " of " + std::to_string(kCorpusHeaderBytes) + " bytes)");
  }
  if (std::memcmp(header.data() + kOffMagic, kMagic, sizeof kMagic) != 0) {
    fail(what, "bad magic (not a corpus file)");
  }
  if (get<std::uint32_t>(header, kOffEndian) != kEndianTag) {
    fail(what, "endianness mismatch (written on a foreign-endian host)");
  }
  const std::uint32_t version = get<std::uint32_t>(header, kOffVersion);
  if (version != kCorpusVersion) {
    fail(what, "unsupported format version " + std::to_string(version));
  }
  if (get<std::uint64_t>(header, kOffHeaderDigest) !=
      fnv1a64_bytes(header.data(), kOffHeaderDigest)) {
    fail(what, "header digest mismatch (corrupt or half-written header)");
  }

  CorpusLayout lo;
  lo.meta.n = get<std::uint64_t>(header, kOffN);
  lo.meta.adj_entries = get<std::uint64_t>(header, kOffAdjEntries);
  lo.meta.max_degree = get<std::uint32_t>(header, kOffMaxDegree);
  lo.meta.has_ids =
      (get<std::uint32_t>(header, kOffFlags) & kCorpusHasIds) != 0;
  lo.meta.max_id = get<std::uint64_t>(header, kOffMaxId);
  lo.meta.content_digest = get<std::uint64_t>(header, kOffContentDigest);
  lo.meta.file_bytes = file_bytes;
  lo.offsets_pos = get<std::uint64_t>(header, kOffOffsetsPos);
  lo.offsets_bytes = get<std::uint64_t>(header, kOffOffsetsBytes);
  lo.ids_pos = get<std::uint64_t>(header, kOffIdsPos);
  lo.ids_bytes = get<std::uint64_t>(header, kOffIdsBytes);
  lo.adj_pos = get<std::uint64_t>(header, kOffAdjPos);
  lo.adj_bytes = get<std::uint64_t>(header, kOffAdjBytes);

  if (lo.meta.n >= std::numeric_limits<NodeId>::max()) {
    fail(what, "node count exceeds the 32-bit node-id space");
  }
  if (lo.meta.adj_entries % 2 != 0) {
    fail(what, "odd half-edge count");
  }
  if (lo.offsets_bytes != (lo.meta.n + 1) * 8) {
    fail(what, "offsets section size does not match n");
  }
  if (lo.ids_bytes != (lo.meta.has_ids ? lo.meta.n * 8 : 0)) {
    fail(what, "ids section size does not match n/flags");
  }
  if (lo.adj_bytes != lo.meta.adj_entries * 4) {
    fail(what, "adjacency section size does not match half-edge count");
  }
  const auto check_section = [&](const char* name, std::uint64_t pos,
                                 std::uint64_t bytes) {
    if (pos % 8 != 0 || pos < kCorpusHeaderBytes) {
      fail(what, std::string(name) + " section position invalid");
    }
    if (pos > file_bytes || bytes > file_bytes - pos) {
      fail(what, std::string("file shorter than header claims (") + name +
                     " section)");
    }
  };
  check_section("offsets", lo.offsets_pos, lo.offsets_bytes);
  check_section("ids", lo.ids_pos, lo.ids_bytes);
  check_section("adjacency", lo.adj_pos, lo.adj_bytes);
  return lo;
}

}  // namespace ldc::storage
