// Process-wide corpus registry: opens each named corpus at most once and
// hands out shared read-only mappings to every service worker.
//
// Names are untrusted wire input ({"graph":{"corpus":"name"}}), so they
// are validated against a strict charset before touching the filesystem —
// a name can never traverse out of the corpus directory. A corpus file is
// `<dir>/<name>.ldcg`; files are assumed immutable while registered (the
// content digest read at open keys result caches, exactly like a job
// parameter).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ldc/storage/mapped_graph.hpp"

namespace ldc::storage {

/// File extension of corpus files in a registry directory.
inline constexpr const char* kCorpusExtension = ".ldcg";

/// True iff `name` is a safe corpus name: 1-128 chars of
/// [A-Za-z0-9_.-], not starting with '.' (no traversal, no hidden files).
bool valid_corpus_name(const std::string& name);

class CorpusRegistry {
 public:
  explicit CorpusRegistry(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Shared mapping for `name`, opening (and caching) it on first use.
  /// Thread-safe. Throws CorpusError for an invalid name, a missing file
  /// or a file that fails validation (a failed open is NOT cached — a
  /// fixed file can be retried).
  std::shared_ptr<const MappedGraph> get(const std::string& name);

  /// Loaded-corpus observability for the stats export.
  struct Info {
    std::string name;
    std::uint64_t vertices = 0;
    std::uint64_t edges = 0;
    std::uint64_t file_bytes = 0;
    std::uint64_t content_digest = 0;
    long open_mappings = 0;  ///< live pins beyond the registry's own
  };

  /// Snapshot of every corpus opened so far, sorted by name.
  std::vector<Info> list() const;

 private:
  std::string dir_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const MappedGraph>> open_;
};

}  // namespace ldc::storage
