#include "ldc/storage/stream_gen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "ldc/support/prf.hpp"

namespace ldc::storage::gen {

namespace {

// Domain-separation tags mixed into the spec seed so the shift choices,
// the coordinates, the edge draws and the id scramble never share a PRF
// stream.
constexpr std::uint64_t kTagShifts = 0x7368696674u;
constexpr std::uint64_t kTagCoords = 0x636f6f7264u;
constexpr std::uint64_t kTagEdges = 0x6564676573u;
constexpr std::uint64_t kTagIds = 0x696473u;

// Graph500 reference R-MAT quadrant probabilities.
constexpr double kKronA = 0.57;
constexpr double kKronB = 0.19;
constexpr double kKronC = 0.19;

double unit_double(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

// Computes each family's per-spec derived state once, then emits sorted
// neighbor rows for any vertex range. Rows are a pure function of
// (spec, v) — chunking never changes the output.
class RowSource {
 public:
  explicit RowSource(const StreamSpec& spec) : spec_(spec) {
    if (spec_.kind == "random_regular") {
      const std::uint64_t half = spec_.degree / 2;
      // Shift universe [1, ceil(n/2)): every shift s yields two distinct
      // neighbors v +- s, and distinct shifts never collide, so the
      // circulant is exactly d-regular.
      const std::uint64_t universe =
          (spec_.n % 2 == 0) ? spec_.n / 2 - 1 : (spec_.n - 1) / 2;
      shifts_ = sample_distinct(Prf(hash_combine(spec_.seed, kTagShifts)), 0,
                                universe, static_cast<std::size_t>(half));
      for (auto& s : shifts_) ++s;
    } else if (spec_.kind == "rgg_2d") {
      grid_ = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(1.0 / spec_.radius));
      cells_ = grid_ * grid_;
      cell_base_ = spec_.n / cells_;
      cell_rem_ = spec_.n % cells_;
    } else if (spec_.kind == "kronecker") {
      draws_ = static_cast<std::uint64_t>(
          std::llround(spec_.edge_factor * static_cast<double>(spec_.n)));
    }
  }

  template <typename Fn>
  void emit(std::uint64_t lo, std::uint64_t hi, Fn&& fn) {
    if (spec_.kind == "kronecker") {
      emit_kronecker(lo, hi, fn);
      return;
    }
    std::vector<NodeId> row;
    for (std::uint64_t v = lo; v < hi; ++v) {
      row.clear();
      if (spec_.kind == "ring") {
        row_ring(v, row);
      } else if (spec_.kind == "random_regular") {
        row_circulant(v, row);
      } else if (spec_.kind == "gnp") {
        row_gnp(v, row);
      } else {
        row_rgg(v, row);
      }
      fn(v, std::span<const NodeId>(row));
    }
  }

 private:
  void row_ring(std::uint64_t v, std::vector<NodeId>& row) const {
    const std::uint64_t prev = (v + spec_.n - 1) % spec_.n;
    const std::uint64_t next = (v + 1) % spec_.n;
    row.push_back(static_cast<NodeId>(std::min(prev, next)));
    row.push_back(static_cast<NodeId>(std::max(prev, next)));
  }

  void row_circulant(std::uint64_t v, std::vector<NodeId>& row) const {
    for (const std::uint64_t s : shifts_) {
      row.push_back(static_cast<NodeId>((v + s) % spec_.n));
      row.push_back(static_cast<NodeId>((v + spec_.n - s) % spec_.n));
    }
    std::sort(row.begin(), row.end());
  }

  void row_gnp(std::uint64_t v, std::vector<NodeId>& row) const {
    if (spec_.p <= 0.0) return;
    const Prf prf(hash_combine(spec_.seed, kTagEdges));
    const std::uint64_t lo =
        v > spec_.band ? v - spec_.band : 0;
    const std::uint64_t hi = std::min(spec_.n - 1, v + spec_.band);
    for (std::uint64_t u = lo; u <= hi; ++u) {
      if (u == v) continue;
      const std::uint64_t a = std::min(u, v), b = std::max(u, v);
      // One PRF slot per unordered candidate pair: both endpoints replay
      // the identical decision.
      const std::uint64_t code = a * spec_.band + (b - a - 1);
      if (spec_.p >= 1.0 || unit_double(prf.at(code)) < spec_.p) {
        row.push_back(static_cast<NodeId>(u));
      }
    }
  }

  std::uint64_t cell_start(std::uint64_t c) const {
    return c * cell_base_ + std::min<std::uint64_t>(c, cell_rem_);
  }
  std::uint64_t cell_of(std::uint64_t v) const {
    const std::uint64_t fat = cell_rem_ * (cell_base_ + 1);
    if (v < fat) return v / (cell_base_ + 1);
    return cell_rem_ + (v - fat) / cell_base_;
  }
  void position(std::uint64_t v, double& x, double& y) const {
    const std::uint64_t c = cell_of(v);
    const std::uint64_t bits = Prf(hash_combine(spec_.seed, kTagCoords)).at(v);
    const double side = 1.0 / static_cast<double>(grid_);
    x = (static_cast<double>(c % grid_) +
         static_cast<double>(bits >> 32) * 0x1.0p-32) *
        side;
    y = (static_cast<double>(c / grid_) +
         static_cast<double>(bits & 0xffffffffu) * 0x1.0p-32) *
        side;
  }

  void row_rgg(std::uint64_t v, std::vector<NodeId>& row) const {
    double vx, vy;
    position(v, vx, vy);
    const double r2 = spec_.radius * spec_.radius;
    const std::uint64_t c = cell_of(v);
    const std::int64_t cx = static_cast<std::int64_t>(c % grid_);
    const std::int64_t cy = static_cast<std::int64_t>(c / grid_);
    // The cell side is >= radius, so all neighbors live in the 3x3 block;
    // scanning it in row-major cell order visits candidate ids ascending
    // (vertex order is cell-major), so the row needs no sort.
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::int64_t nx = cx + dx, ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<std::int64_t>(grid_) ||
            ny >= static_cast<std::int64_t>(grid_)) {
          continue;
        }
        const std::uint64_t nc =
            static_cast<std::uint64_t>(ny) * grid_ +
            static_cast<std::uint64_t>(nx);
        const std::uint64_t end = cell_start(nc + 1);
        for (std::uint64_t w = cell_start(nc); w < end; ++w) {
          if (w == v) continue;
          double wx, wy;
          position(w, wx, wy);
          const double ddx = wx - vx, ddy = wy - vy;
          if (ddx * ddx + ddy * ddy <= r2) {
            row.push_back(static_cast<NodeId>(w));
          }
        }
      }
    }
  }

  template <typename Fn>
  void emit_kronecker(std::uint64_t lo, std::uint64_t hi, Fn&& fn) {
    // Stripe replay: re-run the full deterministic draw stream and keep
    // the endpoints landing in [lo, hi). RAM is bounded by the stripe's
    // adjacency mass instead of the whole edge set.
    const Prf prf(hash_combine(spec_.seed, kTagEdges));
    std::vector<std::vector<NodeId>> rows(
        static_cast<std::size_t>(hi - lo));
    for (std::uint64_t e = 0; e < draws_; ++e) {
      std::uint64_t u = 0, v = 0;
      for (std::uint32_t level = 0; level < spec_.scale; ++level) {
        const double r =
            unit_double(prf.at(e * spec_.scale + level));
        const std::uint64_t rbit = r >= kKronA + kKronB ? 1 : 0;
        const std::uint64_t cbit =
            (r >= kKronA && r < kKronA + kKronB) ||
                    r >= kKronA + kKronB + kKronC
                ? 1
                : 0;
        u = (u << 1) | rbit;
        v = (v << 1) | cbit;
      }
      if (u == v) continue;  // self-loops dropped
      if (u >= lo && u < hi) {
        rows[static_cast<std::size_t>(u - lo)].push_back(
            static_cast<NodeId>(v));
      }
      if (v >= lo && v < hi) {
        rows[static_cast<std::size_t>(v - lo)].push_back(
            static_cast<NodeId>(u));
      }
    }
    for (std::uint64_t v = lo; v < hi; ++v) {
      auto& row = rows[static_cast<std::size_t>(v - lo)];
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
      fn(v, std::span<const NodeId>(row));
    }
  }

  StreamSpec spec_;
  std::vector<std::uint64_t> shifts_;             // random_regular
  std::uint64_t grid_ = 0, cells_ = 0;            // rgg_2d
  std::uint64_t cell_base_ = 0, cell_rem_ = 0;    // rgg_2d
  std::uint64_t draws_ = 0;                       // kronecker
};

}  // namespace

StreamSpec stream_ring(std::uint64_t n, std::uint64_t seed) {
  StreamSpec s;
  s.kind = "ring";
  s.n = n;
  s.seed = seed;
  return s;
}

StreamSpec stream_random_regular(std::uint64_t n, std::uint32_t degree,
                                 std::uint64_t seed) {
  StreamSpec s;
  s.kind = "random_regular";
  s.n = n;
  s.degree = degree;
  s.seed = seed;
  return s;
}

StreamSpec stream_gnp(std::uint64_t n, std::uint32_t band, double p,
                      std::uint64_t seed) {
  StreamSpec s;
  s.kind = "gnp";
  s.n = n;
  s.band = band;
  s.p = p;
  s.seed = seed;
  return s;
}

StreamSpec stream_kronecker(std::uint32_t scale, double edge_factor,
                            std::uint64_t seed) {
  StreamSpec s;
  s.kind = "kronecker";
  s.scale = scale;
  s.n = std::uint64_t{1} << scale;
  s.edge_factor = edge_factor;
  s.seed = seed;
  return s;
}

StreamSpec stream_rgg_2d(std::uint64_t n, double radius, std::uint64_t seed) {
  StreamSpec s;
  s.kind = "rgg_2d";
  s.n = n;
  s.radius = radius;
  s.seed = seed;
  return s;
}

void validate(const StreamSpec& spec) {
  const auto fail = [&](const std::string& why) {
    throw std::invalid_argument("stream spec (" + spec.kind + "): " + why);
  };
  if (spec.n == 0) fail("n must be positive");
  if (spec.n >= std::numeric_limits<NodeId>::max()) {
    fail("n exceeds the 32-bit node-id space");
  }
  if (spec.kind == "ring") {
    if (spec.n < 3) fail("ring needs n >= 3");
  } else if (spec.kind == "random_regular") {
    if (spec.n < 3) fail("needs n >= 3");
    if (spec.degree == 0 || spec.degree % 2 != 0) {
      fail("circulant degree must be even and positive");
    }
    const std::uint64_t universe =
        (spec.n % 2 == 0) ? spec.n / 2 - 1 : (spec.n - 1) / 2;
    if (spec.degree / 2 > universe) fail("degree too large for n");
  } else if (spec.kind == "gnp") {
    if (spec.band == 0) fail("band must be positive");
    if (!(spec.p >= 0.0 && spec.p <= 1.0)) fail("p must be in [0, 1]");
  } else if (spec.kind == "kronecker") {
    if (spec.scale == 0 || spec.scale > 31) fail("scale must be in [1, 31]");
    if (spec.n != std::uint64_t{1} << spec.scale) fail("n must equal 2^scale");
    if (!(spec.edge_factor > 0.0)) fail("edge_factor must be positive");
  } else if (spec.kind == "rgg_2d") {
    if (!(spec.radius > 0.0 && spec.radius <= 1.0)) {
      fail("radius must be in (0, 1]");
    }
  } else {
    fail("unknown kind");
  }
}

std::uint64_t feistel64(std::uint64_t x, std::uint64_t key) {
  auto left = static_cast<std::uint32_t>(x >> 32);
  auto right = static_cast<std::uint32_t>(x);
  for (std::uint64_t round = 0; round < 4; ++round) {
    const Prf prf(hash_combine(key, round));
    const auto f = static_cast<std::uint32_t>(prf.at(right));
    const std::uint32_t next_left = right;
    right = left ^ f;
    left = next_left;
  }
  return (std::uint64_t{left} << 32) | right;
}

CorpusMeta write_corpus(const StreamSpec& spec, const std::string& path,
                        std::uint64_t chunk_nodes) {
  validate(spec);
  if (chunk_nodes == 0) chunk_nodes = 1;
  const std::uint64_t id_key = hash_combine(spec.seed, kTagIds);
  CorpusWriter writer(path, spec.n, spec.scrambled_ids);
  RowSource source(spec);
  for (std::uint64_t lo = 0; lo < spec.n; lo += chunk_nodes) {
    const std::uint64_t hi = std::min(spec.n, lo + chunk_nodes);
    source.emit(lo, hi, [&](std::uint64_t v, std::span<const NodeId> row) {
      if (spec.scrambled_ids) {
        writer.add_vertex(row, feistel64(v, id_key));
      } else {
        writer.add_vertex(row);
      }
    });
  }
  return writer.close();
}

Graph materialize(const StreamSpec& spec) {
  validate(spec);
  std::vector<std::uint32_t> offsets;
  offsets.reserve(static_cast<std::size_t>(spec.n) + 1);
  offsets.push_back(0);
  std::vector<NodeId> adj;
  RowSource source(spec);
  constexpr std::uint64_t kChunk = 1u << 16;
  for (std::uint64_t lo = 0; lo < spec.n; lo += kChunk) {
    const std::uint64_t hi = std::min(spec.n, lo + kChunk);
    source.emit(lo, hi, [&](std::uint64_t, std::span<const NodeId> row) {
      adj.insert(adj.end(), row.begin(), row.end());
      offsets.push_back(static_cast<std::uint32_t>(adj.size()));
    });
  }
  Graph g(std::move(offsets), std::move(adj));
  if (spec.scrambled_ids) {
    const std::uint64_t id_key = hash_combine(spec.seed, kTagIds);
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(spec.n));
    for (std::uint64_t v = 0; v < spec.n; ++v) {
      ids[static_cast<std::size_t>(v)] = feistel64(v, id_key);
    }
    g.set_ids(std::move(ids));
  }
  return g;
}

}  // namespace ldc::storage::gen
