#include "ldc/storage/mapped_graph.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "ldc/support/fnv.hpp"

namespace ldc::storage {

struct MappedGraph::Mapping {
  const unsigned char* data = nullptr;
  std::size_t len = 0;

  ~Mapping() {
    if (data != nullptr) {
      ::munmap(const_cast<unsigned char*>(data), len);
    }
  }
};

std::shared_ptr<const MappedGraph> MappedGraph::open(const std::string& path,
                                                     bool verify_content) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw CorpusError("corpus " + path + ": cannot open: " +
                      std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw CorpusError("corpus " + path + ": stat failed: " +
                      std::strerror(err));
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kCorpusHeaderBytes) {
    ::close(fd);
    throw CorpusError("corpus " + path + ": truncated header (" +
                      std::to_string(file_bytes) + " of " +
                      std::to_string(kCorpusHeaderBytes) + " bytes)");
  }

  auto mapping = std::make_shared<Mapping>();
  void* addr = ::mmap(nullptr, file_bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (addr == MAP_FAILED) {
    throw CorpusError("corpus " + path + ": mmap failed: " +
                      std::strerror(errno));
  }
  mapping->data = static_cast<const unsigned char*>(addr);
  mapping->len = file_bytes;

  // Structural validation reads only the header page; a bad header must
  // never be followed by a section access.
  auto mg = std::shared_ptr<MappedGraph>(new MappedGraph());
  mg->path_ = path;
  mg->mapping_ = mapping;
  mg->layout_ = parse_corpus_header(
      {mapping->data, static_cast<std::size_t>(
                          std::min<std::uint64_t>(file_bytes, kCorpusPage))},
      file_bytes, path);

  if (verify_content) {
    mg->advise_sequential();
    const auto& lo = mg->layout_;
    std::uint64_t section_digests[3] = {
        fnv1a64_bytes(mapping->data + lo.offsets_pos, lo.offsets_bytes),
        fnv1a64_bytes(mapping->data + lo.ids_pos, lo.ids_bytes),
        fnv1a64_bytes(mapping->data + lo.adj_pos, lo.adj_bytes)};
    if (fnv1a64_bytes(section_digests, sizeof section_digests) !=
        lo.meta.content_digest) {
      throw CorpusError("corpus " + path + ": content digest mismatch");
    }
    // The offsets rows feed Graph::view unchecked, so a verified open
    // also pins down the two structural invariants cheap enough to test
    // without a full monotonicity scan at every open.
    const auto* off = reinterpret_cast<const std::uint64_t*>(
        mapping->data + lo.offsets_pos);
    if (off[0] != 0 || off[lo.meta.n] != lo.meta.adj_entries) {
      throw CorpusError("corpus " + path +
                        ": offsets do not match the adjacency section");
    }
  }
  return mg;
}

Graph MappedGraph::graph() const {
  const auto& lo = layout_;
  const unsigned char* base = mapping_->data;
  std::span<const std::uint64_t> offsets{
      reinterpret_cast<const std::uint64_t*>(base + lo.offsets_pos),
      static_cast<std::size_t>(lo.meta.n + 1)};
  std::span<const NodeId> adj{
      reinterpret_cast<const NodeId*>(base + lo.adj_pos),
      static_cast<std::size_t>(lo.meta.adj_entries)};
  std::span<const std::uint64_t> ids;
  if (lo.meta.has_ids) {
    ids = {reinterpret_cast<const std::uint64_t*>(base + lo.ids_pos),
           static_cast<std::size_t>(lo.meta.n)};
  }
  return Graph::view(offsets, adj, ids, lo.meta.max_degree, lo.meta.max_id,
                     mapping_);
}

long MappedGraph::open_pins() const { return mapping_.use_count() - 1; }

void MappedGraph::advise_sequential() const {
  ::madvise(const_cast<unsigned char*>(mapping_->data), mapping_->len,
            MADV_SEQUENTIAL);
}

void MappedGraph::advise_random() const {
  ::madvise(const_cast<unsigned char*>(mapping_->data), mapping_->len,
            MADV_RANDOM);
}

}  // namespace ldc::storage
