// Read-only mmap view of a corpus file (corpus.hpp).
//
// MappedGraph::open maps the file PROT_READ/MAP_SHARED and validates the
// header structurally (magic, version, endianness, header digest, section
// bounds against the true file size) — touching only the header page, so
// opening a 100 GB corpus is O(1). graph() then returns an ldc::Graph
// whose CSR spans point straight into the mapping: algorithm code,
// Network and the engines run over paged storage with zero copies, and
// the kernel shares the clean pages copy-on-write across every worker
// (and every process) mapping the same file.
//
// Lifetime/ownership rules: the mapping is owned by an internal
// refcounted block; every Graph handed out by graph() pins it, so a
// by-value Graph copy — e.g. one captured by a running job — keeps the
// bytes mapped even after the MappedGraph (or the registry entry) is
// dropped. Nothing is ever unmapped while a reader exists.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ldc/graph/graph.hpp"
#include "ldc/storage/corpus.hpp"

namespace ldc::storage {

class MappedGraph {
 public:
  /// Maps and validates `path`. With verify_content, additionally streams
  /// every section recomputing the content digest (reads the whole file —
  /// ldc_gen --verify and the hostility tests use it; the serve path does
  /// not). Throws CorpusError naming the failing check.
  static std::shared_ptr<const MappedGraph> open(const std::string& path,
                                                 bool verify_content = false);

  const CorpusMeta& meta() const { return layout_.meta; }
  const std::string& path() const { return path_; }
  std::uint64_t file_bytes() const { return layout_.meta.file_bytes; }

  /// Zero-copy Graph view pinned to the mapping — safe to copy by value
  /// and to outlive this MappedGraph.
  Graph graph() const;

  /// How many pins (graph() copies still alive + registry handles) hold
  /// the mapping, excluding this object's own reference. Observability
  /// only (stats `corpora` section).
  long open_pins() const;

  /// Hints the kernel the mapping will be walked sequentially /
  /// revisited randomly (madvise; best-effort).
  void advise_sequential() const;
  void advise_random() const;

 private:
  struct Mapping;  // RAII munmap block
  MappedGraph() = default;

  std::string path_;
  std::shared_ptr<const Mapping> mapping_;
  CorpusLayout layout_;
};

}  // namespace ldc::storage
