// Wire format of the multi-process distributed engine (DESIGN.md §12).
//
// Every byte that crosses a coordinator↔worker socket is a *frame*: a
// fixed 48-byte little-endian header (magic / version / kind / round /
// src shard / dst shard / payload size / element count) followed by the
// payload, sealed by an FNV-1a 64 digest over header-and-payload — the
// same digest primitive the corpus store uses for its sections, so a
// flipped bit anywhere in a frame is caught at the receiver, not three
// rounds later as a wrong color. Frames are self-describing and
// length-prefixed: a reader can always either complete a frame, wait for
// more bytes, or reject the stream with a typed FrameError naming the
// check that failed (bad magic, unsupported version, oversized payload,
// digest mismatch, torn frame, count/payload disagreement). Malformed
// input is never undefined behavior — the fuzz battery in
// tests/test_dist_fuzz.cpp mutates valid streams and asserts exactly
// this.
//
// Payloads are flat little-endian records built/parsed through
// PayloadWriter/PayloadReader; every reader overrun throws FrameError.
// The per-round payloads serialize the SAME data the in-process sharded
// engine stages in memory: per-(src,dst) ShardBatchEntry buffers become
// kBatch frames, per-shard inbox CSRs come back as kInbox frames, and
// the fault context ships the plan parameters plus the round's down
// bitmap so workers re-resolve the pure PRF drop/corrupt decisions
// bit-identically (fault.hpp).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ldc/graph/graph.hpp"
#include "ldc/runtime/fault.hpp"
#include "ldc/runtime/message.hpp"

namespace ldc::dist {

/// Malformed or hostile frame bytes: truncated/torn frames, bad magic,
/// unsupported version, digest mismatch, oversized payloads, counts that
/// disagree with the payload. Always a typed rejection, never a crash.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Handshake failure: corpus content-digest mismatch, attach timeout,
/// an unexpected frame where HELLO/ASSIGN-ACK was required, or a worker
/// that died before attaching.
class AttachError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A worker died (EOF / reset) or went silent past the heartbeat window
/// mid-run; the message names the shard and the round.
class WorkerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kWireMagic = 0x4643444Cu;  ///< "LDCF" LE
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 48;
/// Hard cap on one frame's payload; anything larger is a typed rejection
/// (a hostile length prefix must not drive an allocation).
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

enum class FrameKind : std::uint16_t {
  kHello = 1,       ///< worker→coord: corpus content digest + shape
  kAssign = 2,      ///< coord→worker: shard index, partition, budget
  kAssignAck = 3,   ///< worker→coord: topology built, ready
  kOutbox = 4,      ///< coord→worker: fault ctx + owned senders' outboxes
  kBatch = 5,       ///< worker→coord (then relayed): (src,dst) batch
  kBatchAck = 6,    ///< coord→worker: batch (round,src,dst) accepted
  kInbox = 7,       ///< worker→coord: staging summary + inbox CSR
  kBcast = 8,       ///< coord→worker: fault ctx + transmit mask
  kInboxIds = 9,    ///< worker→coord: broadcast inbox as sender ids
  kWordDense = 10,  ///< reserved (dense word rounds are coordinator-local)
  kSummary = 11,    ///< reserved (per-round summaries ride in kInbox)
  kWordSparse = 12, ///< coord→worker: masked/faulty fused word round
  kInboxWords = 13, ///< worker→coord: word-slot CSR reply
  kError = 14,      ///< worker→coord: typed phase error (code + what())
  kAbort = 15,      ///< coord→worker: discard the named round
  kShutdown = 16,   ///< coord→worker: clean exit
  kHeartbeat = 17,  ///< either way: liveness probe, echoed by workers
};

const char* frame_kind_name(FrameKind k);

/// Error codes carried by kError frames; the coordinator rethrows the
/// lowest shard's error as the matching exception type, preserving the
/// engine-independent error contract of Network::exchange.
inline constexpr std::uint32_t kErrInvalidArgument = 1;
inline constexpr std::uint32_t kErrCongest = 2;
inline constexpr std::uint32_t kErrInternal = 3;

struct FrameHeader {
  FrameKind kind = FrameKind::kHeartbeat;
  std::uint64_t round = 0;
  std::uint32_t src_shard = 0;
  std::uint32_t dst_shard = 0;
  std::uint64_t payload_bytes = 0;
  std::uint32_t count = 0;  ///< kind-specific element count
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Serializes one frame (header + payload + digest) to wire bytes.
std::string encode_frame(FrameKind kind, std::uint64_t round,
                         std::uint32_t src_shard, std::uint32_t dst_shard,
                         std::uint32_t count, std::string_view payload);

/// Incremental frame decoder over an untrusted byte stream. feed() bytes
/// as they arrive; next() yields one validated frame, std::nullopt when
/// the buffer holds only a partial frame, or throws FrameError — after
/// which the stream is poisoned (there is no resynchronization point in
/// a length-prefixed stream with a corrupt prefix).
class FrameReader {
 public:
  void feed(const char* data, std::size_t len);
  std::optional<Frame> next();
  std::size_t buffered() const { return buf_.size() - pos_; }
  /// True when buffered() bytes are a frame prefix that can never
  /// complete validly (used by blocking readers to report torn frames).
  bool mid_frame() const { return buffered() != 0; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------- fd I/O --

/// Writes all of `bytes` (blocking; retries EINTR). Throws WorkerError
/// naming `who` when the peer is gone (EPIPE/ECONNRESET).
void write_all_fd(int fd, std::string_view bytes, const char* who);

/// Blocking read of one frame. The caller owns `reader` and must reuse
/// the SAME reader for every read on the same fd: one read(2) can pull
/// several coalesced frames off the socket, and the surplus bytes live
/// in the reader until the next call. Returns std::nullopt on clean EOF
/// at a frame boundary; throws FrameError on malformed bytes or a torn
/// frame (EOF mid-frame).
std::optional<Frame> read_frame_fd(int fd, FrameReader& reader);

// ------------------------------------------------------- payload codecs --

/// Append-only little-endian record builder for frame payloads.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void raw(const void* data, std::size_t len) {
    out_.append(static_cast<const char*>(data), len);
  }
  std::string take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked reader over an untrusted payload; every overrun throws
/// FrameError naming the frame kind being decoded.
class PayloadReader {
 public:
  PayloadReader(std::string_view payload, const char* what)
      : p_(payload), what_(what) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(p_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v;
    copy(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    copy(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    copy(&v, sizeof v);
    return v;
  }
  std::string_view bytes(std::size_t len) {
    need(len);
    std::string_view v = p_.substr(pos_, len);
    pos_ += len;
    return v;
  }
  std::size_t remaining() const { return p_.size() - pos_; }
  /// Rejects trailing garbage — a valid encoder never leaves any.
  void expect_end() const {
    if (remaining() != 0) {
      throw FrameError(std::string(what_) + ": " +
                       std::to_string(remaining()) +
                       " trailing payload bytes");
    }
  }

 private:
  void need(std::size_t len) const {
    if (p_.size() - pos_ < len) {
      throw FrameError(std::string(what_) + ": payload truncated (need " +
                       std::to_string(len) + " bytes, have " +
                       std::to_string(p_.size() - pos_) + ")");
    }
  }
  void copy(void* dst, std::size_t len) {
    need(len);
    std::memcpy(dst, p_.data() + pos_, len);
    pos_ += len;
  }

  std::string_view p_;
  std::size_t pos_ = 0;
  const char* what_;
};

// ------------------------------------------------- shared round records --

/// The per-round fault context a worker needs to re-resolve the pure PRF
/// drop/corrupt decisions exactly as the coordinator would: the plan's
/// parameters plus the coordinator-computed down bitmap (crash-cap
/// resolution is order-dependent, so down state is decided once,
/// centrally, and shipped — never re-derived per worker).
struct FaultCtx {
  bool faulty = false;
  FaultPlan plan;
  std::vector<std::uint8_t> down;  ///< packed bitmap, ceil(n/8) bytes

  bool down_bit(NodeId v) const {
    return (down[v >> 3] >> (v & 7)) & 1u;
  }
};

void encode_fault_ctx(PayloadWriter& w, const FaultPlan* plan,
                      const std::vector<char>& down, NodeId n);
FaultCtx decode_fault_ctx(PayloadReader& r, NodeId n);

/// Message payload on the wire: exact bit count + the packed words.
void encode_message(PayloadWriter& w, const Message& m);
Message decode_message(PayloadReader& r);

/// Per-shard staging totals of one exchange round, merged by the
/// coordinator in ascending shard order (mirrors ShardState's staging).
struct ShardRoundSummary {
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;
  std::uint64_t congest_violations = 0;
  std::uint64_t round_max_bits = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t traffic_messages = 0;
  std::uint64_t traffic_bits = 0;
};

void encode_summary(PayloadWriter& w, const ShardRoundSummary& s);
ShardRoundSummary decode_summary(PayloadReader& r);

// ------------------------------------------------------ strict knob parsing --

/// Strictly parses a positive integer knob (flag or env var) in
/// [1, max]; garbage, overflow, or out-of-range throws
/// std::invalid_argument naming the knob and the offending token —
/// the LDC_SHARDS convention (shard.hpp), never a silent fallback.
std::uint64_t parse_positive_u64(const char* name, const char* text,
                                 std::uint64_t max);

/// Worker-process cap (processes, not threads — deliberately lower than
/// ShardCrew::kMaxShards).
inline constexpr std::size_t kMaxDistWorkers = 64;

/// Worker count for `workers == 0`: LDC_DIST_WORKERS if set (strictly
/// parsed, throws std::invalid_argument on garbage), else the
/// ThreadPool::default_thread_count() fallback clamped to kMaxDistWorkers.
std::size_t default_worker_count();

}  // namespace ldc::dist
