// Coordinator: process management, the non-blocking socket pump, the
// K² batch barrier, and the master-arena splice (DESIGN.md §12).
//
// Deadlock freedom: workers use plain blocking I/O, so the coordinator
// must never block on a write — all sends go through per-worker
// out-queues flushed by poll(2), and every wait is a poll with a
// deadline. Because the coordinator always drains its sockets while
// waiting, a worker's blocking writes always complete.
#include "ldc/dist/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

namespace ldc::dist {
namespace {

std::uint64_t mono_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Locates the worker binary for spawn mode: explicit option, then
/// LDC_SHARD_BIN, then next to the running executable (build trees put
/// ldc_coord, the tests, and ldc_shard under sibling directories).
std::string find_shard_binary(const std::string& override_path) {
  if (!override_path.empty()) return override_path;
  if (const char* env = std::getenv("LDC_SHARD_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (len > 0) {
    buf[len] = '\0';
    std::string dir(buf);
    const std::size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    for (const std::string& cand :
         {dir + "/ldc_shard", dir + "/../src/ldc_shard"}) {
      if (::access(cand.c_str(), X_OK) == 0) return cand;
    }
  }
  throw AttachError(
      "ldc_shard binary not found: set LDC_SHARD_BIN or pass "
      "CoordinatorOptions::shard_binary");
}

std::string pack_bitmap(const std::vector<char>& flags, std::size_t n) {
  std::string bits((n + 7) / 8, '\0');
  for (std::size_t v = 0; v < n; ++v) {
    if (flags[v] != 0) bits[v >> 3] |= static_cast<char>(1u << (v & 7));
  }
  return bits;
}

}  // namespace

Coordinator::Coordinator(const std::string& corpus_path,
                         CoordinatorOptions opt)
    : mg_(storage::MappedGraph::open(corpus_path, /*verify_content=*/true)),
      graph_(mg_->graph()),
      opt_(std::move(opt)) {
  if (opt_.heartbeat_ms == 0 || opt_.attach_timeout_ms == 0) {
    throw std::invalid_argument(
        "Coordinator: heartbeat_ms and attach_timeout_ms must be >= 1");
  }
  std::size_t k = opt_.workers == 0 ? default_worker_count() : opt_.workers;
  if (k > kMaxDistWorkers) {
    throw std::invalid_argument("Coordinator: workers must be <= " +
                                std::to_string(kMaxDistWorkers));
  }
  k = std::min<std::size_t>(k, std::max<NodeId>(graph_.n(), 1));
  conns_.resize(k);
  try {
    if (!opt_.listen_unix.empty() || opt_.listen_tcp != 0) {
      accept_workers(k);
    } else {
      spawn_workers(corpus_path, k);
    }
    handshake();
  } catch (...) {
    // A throwing constructor never reaches the destructor: reap whatever
    // was already spawned so a failed attach leaves no orphans behind.
    shutdown_workers();
    throw;
  }
}

Coordinator::~Coordinator() { shutdown_workers(); }

void Coordinator::spawn_workers(const std::string& corpus_path,
                                std::size_t k) {
  const std::string bin = find_shard_binary(opt_.shard_binary);
  for (std::size_t i = 0; i < k; ++i) {
    int sv[2];
    // Both ends close-on-exec at creation: a worker spawned later must
    // not inherit this worker's socket, or its death would never read as
    // EOF here. The child re-enables inheritance on its own fd only.
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
      throw AttachError(std::string("socketpair failed: ") +
                        std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw AttachError(std::string("fork failed: ") + std::strerror(errno));
    }
    if (pid == 0) {
      (void)::fcntl(sv[1], F_SETFD, 0);  // clear CLOEXEC on our end only
      const std::string fd_arg = std::to_string(sv[1]);
      ::execl(bin.c_str(), "ldc_shard", "--corpus", corpus_path.c_str(),
              "--fd", fd_arg.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed; the parent sees EOF at HELLO
    }
    ::close(sv[1]);
    set_nonblocking(sv[0]);
    conns_[i].fd = sv[0];
    conns_[i].pid = pid;
  }
}

void Coordinator::accept_workers(std::size_t k) {
  sockaddr_un ua{};
  sockaddr_in ia{};
  const sockaddr* addr;
  socklen_t alen;
  int domain;
  if (!opt_.listen_unix.empty()) {
    domain = AF_UNIX;
    if (opt_.listen_unix.size() >= sizeof ua.sun_path) {
      throw std::invalid_argument("Coordinator: unix socket path too long");
    }
    ua.sun_family = AF_UNIX;
    std::strncpy(ua.sun_path, opt_.listen_unix.c_str(),
                 sizeof ua.sun_path - 1);
    ::unlink(opt_.listen_unix.c_str());
    addr = reinterpret_cast<const sockaddr*>(&ua);
    alen = sizeof ua;
  } else {
    domain = AF_INET;
    ia.sin_family = AF_INET;
    ia.sin_addr.s_addr = htonl(INADDR_ANY);
    ia.sin_port = htons(opt_.listen_tcp);
    addr = reinterpret_cast<const sockaddr*>(&ia);
    alen = sizeof ia;
  }
  listen_fd_ = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw AttachError(std::string("socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(listen_fd_, addr, alen) != 0 || ::listen(listen_fd_, 64) != 0) {
    throw AttachError(std::string("bind/listen failed: ") +
                      std::strerror(errno));
  }
  const std::uint64_t deadline = mono_ms() + opt_.attach_timeout_ms;
  for (std::size_t i = 0; i < k; ++i) {
    pollfd p{listen_fd_, POLLIN, 0};
    const std::uint64_t now = mono_ms();
    if (now >= deadline ||
        ::poll(&p, 1, static_cast<int>(deadline - now)) <= 0) {
      throw AttachError("attach timeout: " + std::to_string(i) + " of " +
                        std::to_string(k) + " workers connected within " +
                        std::to_string(opt_.attach_timeout_ms) + " ms");
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      throw AttachError(std::string("accept failed: ") +
                        std::strerror(errno));
    }
    set_nonblocking(fd);
    conns_[i].fd = fd;
  }
}

void Coordinator::queue_frame(std::size_t k, FrameKind kind,
                              std::uint64_t round, std::uint32_t src,
                              std::uint32_t dst, std::uint32_t count,
                              std::string_view payload) {
  const std::string bytes = encode_frame(kind, round, src, dst, count,
                                         payload);
  conns_[k].outq.append(bytes);
  ++wire_.frames_sent;
  wire_.bytes_sent += bytes.size();
}

void Coordinator::pump(int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> owner;
  for (std::size_t k = 0; k < conns_.size(); ++k) {
    WorkerConn& c = conns_[k];
    if (c.fd < 0 || c.eof) continue;
    short events = POLLIN;
    if (c.outq_off < c.outq.size()) events |= POLLOUT;
    pfds.push_back(pollfd{c.fd, events, 0});
    owner.push_back(k);
  }
  if (pfds.empty()) return;
  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc <= 0) return;  // timeout or EINTR; the caller re-checks deadlines
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    WorkerConn& c = conns_[owner[i]];
    if (pfds[i].revents & POLLOUT) {
      while (c.outq_off < c.outq.size()) {
        // MSG_NOSIGNAL: a SIGKILLed worker's socket must yield EPIPE
        // (mapped to eof below), never a process-fatal SIGPIPE.
        const ssize_t n = ::send(c.fd, c.outq.data() + c.outq_off,
                                 c.outq.size() - c.outq_off, MSG_NOSIGNAL);
        if (n > 0) {
          c.outq_off += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        c.eof = true;  // EPIPE/ECONNRESET: the read side reports it
        break;
      }
      if (c.outq_off == c.outq.size()) {
        c.outq.clear();
        c.outq_off = 0;
      }
    }
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      char buf[1 << 16];
      for (;;) {
        const ssize_t n = ::read(c.fd, buf, sizeof buf);
        if (n > 0) {
          wire_.bytes_received += static_cast<std::uint64_t>(n);
          last_rx_ms_ = mono_ms();
          c.reader.feed(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          c.eof = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        c.eof = true;
        break;
      }
      try {
        while (std::optional<Frame> f = c.reader.next()) {
          ++wire_.frames_received;
          c.inq.push_back(std::move(*f));
        }
      } catch (const FrameError& e) {
        throw FrameError("shard " + std::to_string(owner[i]) + ": " +
                         e.what());
      }
      if (c.eof && c.reader.mid_frame()) {
        throw FrameError("shard " + std::to_string(owner[i]) +
                         ": torn frame (worker closed mid-frame)");
      }
    }
  }
}

Coordinator::Incoming Coordinator::await_frame(
    std::uint64_t round, const char* phase, std::uint64_t window_ms,
    bool attaching, const std::vector<char>& satisfied) {
  for (;;) {
    for (std::size_t k = 0; k < conns_.size(); ++k) {
      if (!conns_[k].inq.empty()) {
        Frame f = std::move(conns_[k].inq.front());
        conns_[k].inq.pop_front();
        return Incoming{k, std::move(f)};
      }
    }
    for (std::size_t k = 0; k < conns_.size(); ++k) {
      if (conns_[k].eof && (k >= satisfied.size() || satisfied[k] == 0)) {
        const std::string what =
            "worker for shard " + std::to_string(k) +
            " died (connection closed) during " + phase + " of round " +
            std::to_string(round);
        if (attaching) throw AttachError(what);
        throw WorkerError(what);
      }
    }
    const std::uint64_t now = mono_ms();
    if (now >= last_rx_ms_ + window_ms) {
      std::size_t slow = 0;
      while (slow < satisfied.size() && satisfied[slow] != 0) ++slow;
      const std::string what =
          "worker for shard " + std::to_string(slow) + " silent for " +
          std::to_string(window_ms) + " ms during " + phase + " of round " +
          std::to_string(round) + " (heartbeat timeout)";
      if (attaching) throw AttachError(what);
      throw WorkerError(what);
    }
    const std::uint64_t remain = last_rx_ms_ + window_ms - now;
    pump(static_cast<int>(std::min<std::uint64_t>(remain, 100)));
  }
}

void Coordinator::rethrow_worker_error(std::uint32_t shard,
                                       std::uint32_t code,
                                       const std::string& what) const {
  switch (code) {
    case kErrInvalidArgument:
      throw std::invalid_argument(what);
    case kErrCongest:
      throw CongestViolation(what);
    default:
      throw WorkerError("shard " + std::to_string(shard) + ": " + what);
  }
}

void Coordinator::handshake() {
  const std::size_t K = conns_.size();
  std::vector<char> satisfied(K, 0);
  last_rx_ms_ = mono_ms();
  for (std::size_t have = 0; have < K;) {
    Incoming in = await_frame(0, "hello", opt_.attach_timeout_ms, true,
                              satisfied);
    if (in.frame.header.kind != FrameKind::kHello ||
        satisfied[in.from] != 0) {
      throw AttachError("worker " + std::to_string(in.from) +
                        ": expected one hello frame, got " +
                        frame_kind_name(in.frame.header.kind));
    }
    PayloadReader r(in.frame.payload, "hello");
    const std::uint64_t digest = r.u64();
    const std::uint32_t n = r.u32();
    const std::uint64_t adj = r.u64();
    r.expect_end();
    const storage::CorpusMeta& meta = mg_->meta();
    if (digest != meta.content_digest) {
      throw AttachError(
          "worker " + std::to_string(in.from) +
          ": corpus content digest mismatch (worker " +
          std::to_string(digest) + ", coordinator " +
          std::to_string(meta.content_digest) +
          ") — the shard is serving a different graph");
    }
    if (n != graph_.n() || adj != meta.adj_entries) {
      throw AttachError("worker " + std::to_string(in.from) +
                        ": corpus shape mismatch at attach");
    }
    satisfied[in.from] = 1;
    ++have;
  }
}

void Coordinator::bind(Network& net) {
  const Graph& g = graph_;
  if (DistBackend::graph(net).n() != g.n()) {
    throw AttachError(
        "Coordinator::bind: the Network's graph does not match the corpus "
        "(construct it over corpus_graph())");
  }
  budget_bits_ = DistBackend::budget_bits(net);
  strict_ = DistBackend::strict(net);
  const std::size_t K = conns_.size();
  part_ = Partition::degree_balanced(g, K);

  // Coordinator-side halo facts per shard: the sorted ghost list drives
  // the word-round halo shipping, and ghost_edges prices dense word
  // rounds. Workers recompute both from their ShardTopology; the assign
  // ack cross-checks them, so a topology disagreement can never survive
  // the attach.
  for (std::size_t k = 0; k < K; ++k) {
    WorkerConn& c = conns_[k];
    c.ghosts.clear();
    c.ghost_edges = 0;
    const NodeId b = part_.begin(k);
    const NodeId e = part_.end(k);
    for (NodeId v = b; v < e; ++v) {
      for (NodeId u : g.neighbors(v)) {
        if (u < b || u >= e) {
          ++c.ghost_edges;
          c.ghosts.push_back(u);
        }
      }
    }
    std::sort(c.ghosts.begin(), c.ghosts.end());
    c.ghosts.erase(std::unique(c.ghosts.begin(), c.ghosts.end()),
                   c.ghosts.end());
  }

  for (std::size_t k = 0; k < K; ++k) {
    PayloadWriter w;
    w.u32(static_cast<std::uint32_t>(k));
    w.u32(static_cast<std::uint32_t>(K));
    w.u64(budget_bits_);
    w.u8(strict_ ? 1 : 0);
    for (NodeId s : part_.starts()) w.u32(s);
    queue_frame(k, FrameKind::kAssign, 0, 0,
                static_cast<std::uint32_t>(k), 0, w.take());
  }
  std::vector<char> satisfied(K, 0);
  last_rx_ms_ = mono_ms();
  for (std::size_t have = 0; have < K;) {
    Incoming in = await_frame(0, "assign", opt_.attach_timeout_ms, true,
                              satisfied);
    const FrameHeader& h = in.frame.header;
    if (h.kind != FrameKind::kAssignAck || h.src_shard != in.from ||
        satisfied[in.from] != 0) {
      throw AttachError("worker " + std::to_string(in.from) +
                        ": expected one assign ack, got " +
                        frame_kind_name(h.kind));
    }
    PayloadReader r(in.frame.payload, "assign_ack");
    const std::uint64_t ghost_edges = r.u64();
    const std::uint64_t ghosts = r.u64();
    r.expect_end();
    const WorkerConn& c = conns_[in.from];
    if (ghost_edges != c.ghost_edges || ghosts != c.ghosts.size()) {
      throw AttachError("worker " + std::to_string(in.from) +
                        ": shard topology disagreement at assign (worker "
                        "halo does not match the coordinator's partition)");
    }
    satisfied[in.from] = 1;
    ++have;
  }
  // Logical traffic is a per-run counter (the in-process engine's starts
  // at zero with each ShardSet); a bind marks the start of a run.
  traffic_ = ShardTraffic{};
  bound_ = true;
}

void Coordinator::exchange_dist(Network& net,
                                const std::vector<Network::Outbox>& outboxes,
                                std::uint64_t round, RoundFaults& rf,
                                std::size_t& round_max_bits) {
  const Graph& g = graph_;
  const std::uint32_t n = g.n();
  const std::size_t K = conns_.size();
  const FaultPlan* plan = DistBackend::faults(net);
  const bool faulty = plan != nullptr && plan->any();

  std::string ctx;
  {
    PayloadWriter w;
    encode_fault_ctx(w, plan, DistBackend::down(net), n);
    ctx = w.take();
  }
  for (std::size_t k = 0; k < K; ++k) {
    const NodeId b = part_.begin(k);
    const NodeId e = part_.end(k);
    PayloadWriter w;
    w.raw(ctx.data(), ctx.size());
    for (NodeId u = b; u < e; ++u) {
      w.u32(static_cast<std::uint32_t>(outboxes[u].size()));
      for (const auto& [dest, msg] : outboxes[u]) {
        w.u32(dest);
        encode_message(w, msg);
      }
    }
    queue_frame(k, FrameKind::kOutbox, round, 0,
                static_cast<std::uint32_t>(k), e - b, w.take());
  }

  // The barrier: the round closes only when all K² batch frames are in
  // (each acked back to its source, off-diagonal ones relayed to their
  // destination) and all K inbox frames arrived. On a worker kError the
  // round flips to aborting: every worker is told to discard the round,
  // and the coordinator still drains until each shard has concluded
  // (error, abort ack, or an already-complete inbox) before rethrowing
  // the lowest shard's error — the error-order contract of the
  // in-process engines.
  std::vector<std::vector<char>> batch_seen(K, std::vector<char>(K, 0));
  std::size_t batches = 0;
  std::vector<std::optional<Frame>> inbox(K);
  std::vector<std::optional<std::pair<std::uint32_t, std::string>>> errors(K);
  std::vector<char> abort_ack(K, 0);
  std::vector<char> satisfied(K, 0);
  bool aborting = false;
  auto concluded = [&](std::size_t k) {
    return errors[k].has_value() || abort_ack[k] != 0 ||
           inbox[k].has_value();
  };
  last_rx_ms_ = mono_ms();
  for (;;) {
    if (!aborting && batches == K * K &&
        static_cast<std::size_t>(std::count_if(
            inbox.begin(), inbox.end(),
            [](const auto& o) { return o.has_value(); })) == K) {
      break;
    }
    if (aborting) {
      bool all = true;
      for (std::size_t k = 0; k < K; ++k) all = all && concluded(k);
      if (all) break;
    }
    Incoming in = await_frame(round, "exchange", opt_.heartbeat_ms, false,
                              satisfied);
    const FrameHeader& h = in.frame.header;
    if (h.round != round && h.kind != FrameKind::kHeartbeat) {
      throw FrameError("shard " + std::to_string(in.from) + ": " +
                       frame_kind_name(h.kind) + " frame for round " +
                       std::to_string(h.round) + " inside round " +
                       std::to_string(round));
    }
    switch (h.kind) {
      case FrameKind::kBatch: {
        if (h.src_shard != in.from || h.dst_shard >= K ||
            batch_seen[in.from][h.dst_shard] != 0) {
          throw FrameError("shard " + std::to_string(in.from) +
                           ": bad or duplicate batch frame");
        }
        batch_seen[in.from][h.dst_shard] = 1;
        ++batches;
        if (!aborting) {
          queue_frame(in.from, FrameKind::kBatchAck, round, h.src_shard,
                      h.dst_shard, 0, {});
          if (h.dst_shard != in.from) {
            queue_frame(h.dst_shard, FrameKind::kBatch, round, h.src_shard,
                        h.dst_shard, h.count, in.frame.payload);
          }
        }
        break;
      }
      case FrameKind::kInbox:
        if (h.src_shard != in.from || inbox[in.from].has_value()) {
          throw FrameError("shard " + std::to_string(in.from) +
                           ": bad or duplicate inbox frame");
        }
        inbox[in.from] = std::move(in.frame);
        satisfied[in.from] = 1;
        break;
      case FrameKind::kError: {
        PayloadReader r(in.frame.payload, "error");
        const std::uint32_t code = r.u32();
        const std::uint32_t len = r.u32();
        const std::string_view text = r.bytes(len);
        r.expect_end();
        errors[in.from] = {code, std::string(text)};
        satisfied[in.from] = 1;
        if (!aborting) {
          aborting = true;
          for (std::size_t j = 0; j < K; ++j) {
            queue_frame(j, FrameKind::kAbort, round, 0,
                        static_cast<std::uint32_t>(j), 0, {});
          }
        }
        break;
      }
      case FrameKind::kAbort:
        abort_ack[in.from] = 1;
        satisfied[in.from] = 1;
        break;
      case FrameKind::kHeartbeat:
        break;
      default:
        throw FrameError("shard " + std::to_string(in.from) +
                         ": unexpected " + frame_kind_name(h.kind) +
                         " frame inside an exchange round");
    }
  }
  if (aborting) {
    for (std::size_t k = 0; k < K; ++k) {
      if (errors[k].has_value()) {
        rethrow_worker_error(static_cast<std::uint32_t>(k),
                             errors[k]->first, errors[k]->second);
      }
    }
    throw WorkerError("exchange round aborted with no worker error");
  }

  // Splice: rebase each shard's inbox CSR into the master arena. Shards
  // own contiguous ascending ranges, so appending them in shard order IS
  // the serial layout; within each inbox the worker already produced
  // ascending sender order.
  MailArena& a = DistBackend::arena(net);
  std::vector<std::uint32_t>& offsets = DistBackend::arena_offsets(a);
  std::vector<MailSlot>& slots = DistBackend::arena_slots(a);
  if (offsets.size() < static_cast<std::size_t>(n) + 1) {
    offsets.resize(static_cast<std::size_t>(n) + 1);
  }
  std::uint32_t total = 0;
  std::vector<std::uint32_t> base(K);
  for (std::size_t k = 0; k < K; ++k) {
    base[k] = total;
    total += inbox[k]->header.count;
  }
  offsets[n] = total;
  if (slots.size() != total) slots.resize(total);

  RunMetrics& m = DistBackend::metrics(net);
  for (std::size_t k = 0; k < K; ++k) {
    const NodeId b = part_.begin(k);
    const NodeId owned = part_.end(k) - b;
    const std::uint32_t count = inbox[k]->header.count;
    PayloadReader r(inbox[k]->payload, "inbox");
    const ShardRoundSummary sum = decode_summary(r);
    for (NodeId lv = 0; lv < owned; ++lv) {
      offsets[b + lv] = base[k] + r.u32();
    }
    if (r.u32() != count) {
      throw FrameError("shard " + std::to_string(k) +
                       ": inbox offsets disagree with the slot count");
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      MailSlot& slot = slots[base[k] + i];
      slot.first = r.u32();
      slot.second = decode_message(r);
    }
    r.expect_end();
    // Deterministic merge in ascending shard order: sums and maxes only.
    m.messages += sum.messages;
    m.total_bits += sum.total_bits;
    m.max_message_bits = std::max<std::size_t>(
        m.max_message_bits, static_cast<std::size_t>(sum.max_message_bits));
    m.congest_violations += sum.congest_violations;
    round_max_bits = std::max<std::size_t>(
        round_max_bits, static_cast<std::size_t>(sum.round_max_bits));
    rf.dropped += sum.dropped;
    rf.corrupted += sum.corrupted;
    traffic_.messages += sum.traffic_messages;
    traffic_.bits += sum.traffic_bits;
  }
  (void)faulty;
}

std::vector<Frame> Coordinator::collect_replies(FrameKind kind,
                                                std::uint64_t round,
                                                const char* phase) {
  const std::size_t K = conns_.size();
  std::vector<std::optional<Frame>> got(K);
  std::vector<char> satisfied(K, 0);
  last_rx_ms_ = mono_ms();
  for (std::size_t have = 0; have < K;) {
    Incoming in = await_frame(round, phase, opt_.heartbeat_ms, false,
                              satisfied);
    const FrameHeader& h = in.frame.header;
    if (h.kind == FrameKind::kHeartbeat) continue;
    if (h.kind != kind || h.round != round || h.src_shard != in.from ||
        got[in.from].has_value()) {
      throw FrameError("shard " + std::to_string(in.from) +
                       ": expected one " + frame_kind_name(kind) +
                       " frame, got " + frame_kind_name(h.kind));
    }
    got[in.from] = std::move(in.frame);
    satisfied[in.from] = 1;
    ++have;
  }
  std::vector<Frame> out;
  out.reserve(K);
  for (auto& f : got) out.push_back(std::move(*f));
  return out;
}

void Coordinator::broadcast_fill_dist(Network& net,
                                      const std::vector<Message>& msgs,
                                      const std::vector<bool>* /*active*/,
                                      std::uint64_t round, RoundFaults& rf,
                                      bool all_live) {
  const Graph& g = graph_;
  const std::uint32_t n = g.n();
  const std::size_t K = conns_.size();
  MailArena& a = DistBackend::arena(net);
  std::vector<std::uint32_t>& offsets = DistBackend::arena_offsets(a);
  std::vector<MailSlot>& slots = DistBackend::arena_slots(a);
  if (offsets.size() < static_cast<std::size_t>(n) + 1) {
    offsets.resize(static_cast<std::size_t>(n) + 1);
  }

  if (all_live) {
    // Degenerate fast path: no mask, no faults — every inbox is the
    // sorted neighbor list, which the coordinator can lay out locally
    // without a round trip. Logical traffic still accrues exactly as the
    // in-process engine counts it: one unit per delivered slot whose
    // sender lies outside the destination's shard range.
    std::uint32_t total = 0;
    for (NodeId v = 0; v < n; ++v) {
      offsets[v] = total;
      total += g.degree(v);
    }
    offsets[n] = total;
    if (slots.size() != total) slots.resize(total);
    std::size_t k = 0;
    for (NodeId v = 0; v < n; ++v) {
      while (v >= part_.end(k)) ++k;
      const NodeId b = part_.begin(k);
      const NodeId e = part_.end(k);
      std::uint32_t cur = offsets[v];
      for (NodeId u : g.neighbors(v)) {
        MailSlot& slot = slots[cur++];
        slot.first = u;
        slot.second = msgs[u];
        if (u < b || u >= e) {
          ++traffic_.messages;
          traffic_.bits += msgs[u].bit_count();
        }
      }
    }
    return;
  }

  // Masked / faulty: workers resolve the per-edge drop and corruption
  // decisions and return surviving sender ids; the coordinator rebuilds
  // the payload slots (it holds the messages, so uncorrupted deliveries
  // keep sharing one refcounted payload, as in-process) and re-resolves
  // the pure PRF corruption on the destination's CoW copy.
  const FaultPlan* plan = DistBackend::faults(net);
  const bool faulty = plan != nullptr && plan->any();
  std::string payload;
  {
    PayloadWriter w;
    encode_fault_ctx(w, plan, DistBackend::down(net), n);
    const std::string bits =
        pack_bitmap(DistBackend::arena_transmits(a), n);
    w.raw(bits.data(), bits.size());
    payload = w.take();
  }
  for (std::size_t k = 0; k < K; ++k) {
    queue_frame(k, FrameKind::kBcast, round, 0,
                static_cast<std::uint32_t>(k), 0, payload);
  }
  const std::vector<Frame> replies =
      collect_replies(FrameKind::kInboxIds, round, "broadcast");

  std::uint32_t total = 0;
  std::vector<std::uint32_t> base(K);
  for (std::size_t k = 0; k < K; ++k) {
    base[k] = total;
    total += replies[k].header.count;
  }
  offsets[n] = total;
  if (slots.size() != total) slots.resize(total);
  for (std::size_t k = 0; k < K; ++k) {
    const NodeId b = part_.begin(k);
    const NodeId e = part_.end(k);
    const NodeId owned = e - b;
    const std::uint32_t count = replies[k].header.count;
    PayloadReader r(replies[k].payload, "inbox_ids");
    rf.dropped += r.u64();
    rf.corrupted += r.u64();
    std::vector<std::uint32_t> local(static_cast<std::size_t>(owned) + 1);
    for (NodeId lv = 0; lv <= owned; ++lv) local[lv] = r.u32();
    if (local[owned] != count) {
      throw FrameError("shard " + std::to_string(k) +
                       ": inbox_ids offsets disagree with the id count");
    }
    for (NodeId lv = 0; lv < owned; ++lv) {
      offsets[b + lv] = base[k] + local[lv];
      const NodeId v = b + lv;
      for (std::uint32_t i = local[lv]; i < local[lv + 1]; ++i) {
        const NodeId u = r.u32();
        MailSlot& slot = slots[base[k] + i];
        slot.first = u;
        slot.second = msgs[u];
        if (u < b || u >= e) {
          ++traffic_.messages;
          traffic_.bits += msgs[u].bit_count();
        }
        if (faulty && plan->corrupts_message(round, u, v)) {
          plan->corrupt_payload(round, u, v, slot.second);
        }
      }
    }
    r.expect_end();
  }
}

void Coordinator::word_fill_dist(Network& net,
                                 const std::vector<std::uint64_t>& words,
                                 std::size_t bits, std::uint64_t round,
                                 RoundFaults& rf, bool all_live) {
  const Graph& g = graph_;
  const std::uint32_t n = g.n();
  const std::size_t K = conns_.size();
  MailArena& a = DistBackend::arena(net);

  if (all_live) {
    // Dense mode is coordinator-local (the serial one-word-per-sender
    // layout); the priced halo is ghost_edges per shard, fixed at bind.
    std::vector<std::uint64_t>& aw = DistBackend::arena_words(a);
    if (aw.size() < n) aw.resize(n);
    std::copy(words.begin(), words.end(), aw.begin());
    for (const WorkerConn& c : conns_) {
      traffic_.messages += c.ghost_edges;
      traffic_.bits += c.ghost_edges * bits;
    }
    return;
  }

  const FaultPlan* plan = DistBackend::faults(net);
  std::string ctx;
  {
    PayloadWriter w;
    encode_fault_ctx(w, plan, DistBackend::down(net), n);
    ctx = w.take();
  }
  const std::string bitmap =
      pack_bitmap(DistBackend::arena_transmits(a), n);
  for (std::size_t k = 0; k < K; ++k) {
    const NodeId b = part_.begin(k);
    const NodeId e = part_.end(k);
    PayloadWriter w;
    w.raw(ctx.data(), ctx.size());
    w.raw(bitmap.data(), bitmap.size());
    w.u32(static_cast<std::uint32_t>(bits));
    for (NodeId v = b; v < e; ++v) w.u64(words[v]);
    for (NodeId ghost : conns_[k].ghosts) w.u64(words[ghost]);
    queue_frame(k, FrameKind::kWordSparse, round, 0,
                static_cast<std::uint32_t>(k), 0, w.take());
  }
  const std::vector<Frame> replies =
      collect_replies(FrameKind::kInboxWords, round, "word broadcast");

  std::vector<std::uint32_t>& offsets = DistBackend::arena_offsets(a);
  std::vector<WordSlot>& slots = DistBackend::arena_word_slots(a);
  if (offsets.size() < static_cast<std::size_t>(n) + 1) {
    offsets.resize(static_cast<std::size_t>(n) + 1);
  }
  std::uint32_t total = 0;
  std::vector<std::uint32_t> base(K);
  for (std::size_t k = 0; k < K; ++k) {
    base[k] = total;
    total += replies[k].header.count;
  }
  offsets[n] = total;
  if (slots.size() != total) slots.resize(total);
  for (std::size_t k = 0; k < K; ++k) {
    const NodeId b = part_.begin(k);
    const NodeId owned = part_.end(k) - b;
    const std::uint32_t count = replies[k].header.count;
    PayloadReader r(replies[k].payload, "inbox_words");
    rf.dropped += r.u64();
    rf.corrupted += r.u64();
    traffic_.messages += r.u64();
    traffic_.bits += r.u64();
    for (NodeId lv = 0; lv < owned; ++lv) {
      offsets[b + lv] = base[k] + r.u32();
    }
    if (r.u32() != count) {
      throw FrameError("shard " + std::to_string(k) +
                       ": inbox_words offsets disagree with the slot count");
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      WordSlot& slot = slots[base[k] + i];
      slot.sender = r.u32();
      slot.value = r.u64();
    }
    r.expect_end();
  }
}

void Coordinator::shutdown_workers() {
  // Best-effort clean shutdown, then the hammer: no orphan processes and
  // no leaked sockets survive a coordinator, however the run ended.
  for (std::size_t k = 0; k < conns_.size(); ++k) {
    if (conns_[k].fd >= 0 && !conns_[k].eof) {
      try {
        queue_frame(k, FrameKind::kShutdown, 0, 0,
                    static_cast<std::uint32_t>(k), 0, {});
      } catch (const std::exception&) {
      }
    }
  }
  const std::uint64_t flush_deadline = mono_ms() + 500;
  for (;;) {
    bool pending = false;
    for (const WorkerConn& c : conns_) {
      if (c.fd >= 0 && !c.eof && c.outq_off < c.outq.size()) pending = true;
    }
    if (!pending || mono_ms() >= flush_deadline) break;
    try {
      pump(20);
    } catch (const std::exception&) {
      break;  // malformed trailing bytes cannot block shutdown
    }
  }
  for (WorkerConn& c : conns_) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!opt_.listen_unix.empty()) ::unlink(opt_.listen_unix.c_str());
  }
  const std::uint64_t kill_deadline = mono_ms() + 2000;
  for (WorkerConn& c : conns_) {
    while (c.pid > 0) {
      const pid_t r = ::waitpid(c.pid, nullptr, WNOHANG);
      if (r == c.pid || (r < 0 && errno == ECHILD)) {
        c.pid = -1;
        break;
      }
      if (mono_ms() >= kill_deadline) {
        ::kill(c.pid, SIGKILL);
        ::waitpid(c.pid, nullptr, 0);
        c.pid = -1;
        break;
      }
      ::usleep(10 * 1000);
    }
  }
}

}  // namespace ldc::dist
