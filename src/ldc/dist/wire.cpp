#include "ldc/dist/wire.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "ldc/runtime/thread_pool.hpp"
#include "ldc/support/fnv.hpp"

namespace ldc::dist {
namespace {

/// Header layout (little-endian byte offsets):
///   [ 0,  4) magic        [ 4,  6) version      [ 6,  8) kind
///   [ 8, 16) round        [16, 20) src_shard    [20, 24) dst_shard
///   [24, 32) payload_bytes[32, 36) count        [36, 40) reserved (0)
///   [40, 48) digest — FNV-1a over bytes [0, 40) then the payload.
constexpr std::size_t kDigestOffset = 40;

void put_u16(char* p, std::uint16_t v) { std::memcpy(p, &v, sizeof v); }
void put_u32(char* p, std::uint32_t v) { std::memcpy(p, &v, sizeof v); }
void put_u64(char* p, std::uint64_t v) { std::memcpy(p, &v, sizeof v); }

std::uint16_t get_u16(const char* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint32_t get_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t get_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

bool known_kind(std::uint16_t k) {
  return k >= static_cast<std::uint16_t>(FrameKind::kHello) &&
         k <= static_cast<std::uint16_t>(FrameKind::kHeartbeat);
}

std::uint64_t frame_digest(const char* header, std::string_view payload) {
  std::uint64_t h = fnv1a64_bytes(header, kDigestOffset);
  return fnv1a64_bytes(payload.data(), payload.size(), h);
}

/// Validates everything but the digest (which needs the payload): magic,
/// version, kind, reserved word, payload cap. Throws FrameError.
FrameHeader parse_header(const char* p) {
  if (get_u32(p) != kWireMagic) {
    throw FrameError("frame: bad magic 0x" + std::to_string(get_u32(p)));
  }
  const std::uint16_t version = get_u16(p + 4);
  if (version != kWireVersion) {
    throw FrameError("frame: unsupported wire version " +
                     std::to_string(version) + " (expected " +
                     std::to_string(kWireVersion) + ")");
  }
  const std::uint16_t kind = get_u16(p + 6);
  if (!known_kind(kind)) {
    throw FrameError("frame: unknown kind " + std::to_string(kind));
  }
  FrameHeader h;
  h.kind = static_cast<FrameKind>(kind);
  h.round = get_u64(p + 8);
  h.src_shard = get_u32(p + 16);
  h.dst_shard = get_u32(p + 20);
  h.payload_bytes = get_u64(p + 24);
  h.count = get_u32(p + 32);
  if (h.payload_bytes > kMaxFramePayload) {
    throw FrameError("frame: oversized payload (" +
                     std::to_string(h.payload_bytes) + " bytes > cap " +
                     std::to_string(kMaxFramePayload) + ")");
  }
  if (get_u32(p + 36) != 0) {
    throw FrameError("frame: nonzero reserved field");
  }
  return h;
}

}  // namespace

const char* frame_kind_name(FrameKind k) {
  switch (k) {
    case FrameKind::kHello: return "hello";
    case FrameKind::kAssign: return "assign";
    case FrameKind::kAssignAck: return "assign_ack";
    case FrameKind::kOutbox: return "outbox";
    case FrameKind::kBatch: return "batch";
    case FrameKind::kBatchAck: return "batch_ack";
    case FrameKind::kInbox: return "inbox";
    case FrameKind::kBcast: return "bcast";
    case FrameKind::kInboxIds: return "inbox_ids";
    case FrameKind::kWordDense: return "word_dense";
    case FrameKind::kSummary: return "summary";
    case FrameKind::kWordSparse: return "word_sparse";
    case FrameKind::kInboxWords: return "inbox_words";
    case FrameKind::kError: return "error";
    case FrameKind::kAbort: return "abort";
    case FrameKind::kShutdown: return "shutdown";
    case FrameKind::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

std::string encode_frame(FrameKind kind, std::uint64_t round,
                         std::uint32_t src_shard, std::uint32_t dst_shard,
                         std::uint32_t count, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw FrameError("encode_frame: payload exceeds cap");
  }
  std::string out(kFrameHeaderBytes + payload.size(), '\0');
  char* p = out.data();
  put_u32(p, kWireMagic);
  put_u16(p + 4, kWireVersion);
  put_u16(p + 6, static_cast<std::uint16_t>(kind));
  put_u64(p + 8, round);
  put_u32(p + 16, src_shard);
  put_u32(p + 20, dst_shard);
  put_u64(p + 24, payload.size());
  put_u32(p + 32, count);
  put_u32(p + 36, 0);
  put_u64(p + kDigestOffset, frame_digest(p, payload));
  std::memcpy(p + kFrameHeaderBytes, payload.data(), payload.size());
  return out;
}

void FrameReader::feed(const char* data, std::size_t len) {
  // Compact before the buffer grows past the consumed prefix.
  if (pos_ != 0 && (pos_ == buf_.size() || pos_ >= (1u << 16))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, len);
}

std::optional<Frame> FrameReader::next() {
  if (buf_.size() - pos_ < kFrameHeaderBytes) return std::nullopt;
  const char* p = buf_.data() + pos_;
  const FrameHeader h = parse_header(p);
  const std::size_t total = kFrameHeaderBytes + h.payload_bytes;
  if (buf_.size() - pos_ < total) return std::nullopt;
  const std::string_view payload(p + kFrameHeaderBytes, h.payload_bytes);
  const std::uint64_t want = get_u64(p + kDigestOffset);
  const std::uint64_t got = frame_digest(p, payload);
  if (want != got) {
    throw FrameError(std::string("frame: digest mismatch on ") +
                     frame_kind_name(h.kind) + " frame (round " +
                     std::to_string(h.round) + ")");
  }
  Frame f;
  f.header = h;
  f.payload.assign(payload);
  pos_ += total;
  return f;
}

void write_all_fd(int fd, std::string_view bytes, const char* who) {
  std::size_t off = 0;
  bool is_socket = true;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a peer that died mid-run must surface as EPIPE, not
    // kill the writer with SIGPIPE. Pipes (tests) reject send with
    // ENOTSOCK; fall back to write for them.
    const ssize_t n =
        is_socket
            ? ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL)
            : ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (is_socket && errno == ENOTSOCK) {
        is_socket = false;
        continue;
      }
      throw WorkerError(std::string(who) + ": write failed: " +
                        std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<Frame> read_frame_fd(int fd, FrameReader& reader) {
  char buf[1 << 16];
  for (;;) {
    if (auto f = reader.next()) return f;
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw FrameError(std::string("frame: read failed: ") +
                       std::strerror(errno));
    }
    if (n == 0) {
      if (reader.mid_frame()) {
        throw FrameError("frame: torn frame (EOF with " +
                         std::to_string(reader.buffered()) +
                         " buffered bytes)");
      }
      return std::nullopt;  // clean EOF at a frame boundary
    }
    reader.feed(buf, static_cast<std::size_t>(n));
  }
}

void encode_fault_ctx(PayloadWriter& w, const FaultPlan* plan,
                      const std::vector<char>& down, NodeId n) {
  const bool faulty = plan != nullptr && plan->any();
  w.u8(faulty ? 1 : 0);
  if (!faulty) return;
  w.u64(plan->seed);
  w.f64(plan->drop_rate);
  w.f64(plan->corrupt_rate);
  w.f64(plan->crash_rate);
  w.f64(plan->sleep_rate);
  w.u32(plan->max_crashes);
  w.u32(0);
  std::vector<std::uint8_t> bits((n + 7) / 8, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (v < down.size() && down[v] != 0) bits[v >> 3] |= 1u << (v & 7);
  }
  w.raw(bits.data(), bits.size());
}

FaultCtx decode_fault_ctx(PayloadReader& r, NodeId n) {
  FaultCtx ctx;
  const std::uint8_t faulty = r.u8();
  if (faulty > 1) throw FrameError("fault ctx: bad faulty flag");
  ctx.faulty = faulty != 0;
  if (!ctx.faulty) return ctx;
  ctx.plan.seed = r.u64();
  ctx.plan.drop_rate = r.f64();
  ctx.plan.corrupt_rate = r.f64();
  ctx.plan.crash_rate = r.f64();
  ctx.plan.sleep_rate = r.f64();
  ctx.plan.max_crashes = r.u32();
  (void)r.u32();  // padding
  const std::string_view bits = r.bytes((n + 7) / 8);
  ctx.down.assign(bits.begin(), bits.end());
  return ctx;
}

void encode_message(PayloadWriter& w, const Message& m) {
  const std::size_t bits = m.bit_count();
  w.u32(static_cast<std::uint32_t>(bits));
  BitReader reader = m.reader();
  for (std::size_t done = 0; done < bits; done += 64) {
    const int take = static_cast<int>(std::min<std::size_t>(64, bits - done));
    w.u64(reader.read(take));
  }
}

Message decode_message(PayloadReader& r) {
  const std::uint32_t bits = r.u32();
  // A CONGEST payload of > 2^27 bits (16 MiB) in one message is hostile
  // input, not a workload.
  if (bits > (1u << 27)) {
    throw FrameError("message: payload of " + std::to_string(bits) +
                     " bits exceeds the wire cap");
  }
  BitWriter w;
  for (std::uint32_t done = 0; done < bits; done += 64) {
    const int take = static_cast<int>(std::min<std::uint32_t>(64, bits - done));
    w.write(r.u64(), take);
  }
  return Message::from(w);
}

void encode_summary(PayloadWriter& w, const ShardRoundSummary& s) {
  w.u64(s.messages);
  w.u64(s.total_bits);
  w.u64(s.max_message_bits);
  w.u64(s.congest_violations);
  w.u64(s.round_max_bits);
  w.u64(s.dropped);
  w.u64(s.corrupted);
  w.u64(s.traffic_messages);
  w.u64(s.traffic_bits);
}

ShardRoundSummary decode_summary(PayloadReader& r) {
  ShardRoundSummary s;
  s.messages = r.u64();
  s.total_bits = r.u64();
  s.max_message_bits = r.u64();
  s.congest_violations = r.u64();
  s.round_max_bits = r.u64();
  s.dropped = r.u64();
  s.corrupted = r.u64();
  s.traffic_messages = r.u64();
  s.traffic_bits = r.u64();
  return s;
}

std::uint64_t parse_positive_u64(const char* name, const char* text,
                                 std::uint64_t max) {
  if (text == nullptr || *text == '\0') {
    throw std::invalid_argument(std::string(name) +
                                " must be an integer in [1, " +
                                std::to_string(max) + "]; got \"\"");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < 1 ||
      static_cast<unsigned long long>(v) > max) {
    throw std::invalid_argument(std::string(name) +
                                " must be an integer in [1, " +
                                std::to_string(max) + "]; got \"" + text +
                                "\"");
  }
  return static_cast<std::uint64_t>(v);
}

std::size_t default_worker_count() {
  const char* env = std::getenv("LDC_DIST_WORKERS");
  if (env == nullptr || *env == '\0') {
    return std::min<std::size_t>(ThreadPool::default_thread_count(),
                                 kMaxDistWorkers);
  }
  return static_cast<std::size_t>(
      parse_positive_u64("LDC_DIST_WORKERS", env, kMaxDistWorkers));
}

}  // namespace ldc::dist
