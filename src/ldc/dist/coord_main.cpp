// ldc_coord: run one coloring job on the distributed engine.
//
// Loads a corpus, brings up K `ldc_shard` worker processes (spawned over
// socketpairs by default, or accepted on --listen-unix/--listen-tcp for
// manually started workers), runs one algorithm from the service
// registry with every communication round executed by the workers, and
// prints the outcome — plus the logical cross-shard traffic and the
// physical wire counters — as text or JSON.
//
//   ldc_gen --family gnp --n 20000 --p 0.0008 --out g.ldcg
//   ldc_coord --corpus g.ldcg --algorithm linial --workers 4
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "ldc/dist/coordinator.hpp"
#include "ldc/service/algorithms.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: ldc_coord --corpus FILE [options]\n"
      "\n"
      "Runs one coloring job with every communication round executed by\n"
      "K ldc_shard worker processes (the distributed engine). Colors,\n"
      "metrics and trace digests are byte-identical to the serial engine.\n"
      "\n"
      "  --algorithm NAME      service registry id (default linial;\n"
      "                        greedy|luby|linial|kw|d1lc)\n"
      "  --workers N           worker processes (default: LDC_DIST_WORKERS\n"
      "                        or the hardware fallback, max %zu)\n"
      "  --seed N              algorithm seed (default 1)\n"
      "  --param K=V           integer algorithm parameter (repeatable)\n"
      "  --heartbeat-ms N      worker-silence tolerance (default 30000)\n"
      "  --attach-timeout-ms N handshake deadline (default 10000)\n"
      "  --shard-bin PATH      ldc_shard binary (default: LDC_SHARD_BIN or\n"
      "                        next to this executable)\n"
      "  --listen-unix PATH    accept externally started workers on a\n"
      "                        unix socket instead of spawning\n"
      "  --listen-tcp PORT     accept workers on a TCP port\n"
      "  --json                machine-readable output\n"
      "  --help                this text\n",
      ldc::dist::kMaxDistWorkers);
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus;
  std::string algorithm = "linial";
  ldc::dist::CoordinatorOptions opt;
  ldc::service::Job job;
  bool json = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument("ldc_coord: " + arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage(stdout);
        return 0;
      }
      if (arg == "--corpus") {
        corpus = value();
      } else if (arg == "--algorithm") {
        algorithm = value();
      } else if (arg == "--workers") {
        opt.workers = static_cast<std::size_t>(ldc::dist::parse_positive_u64(
            "--workers", value(), ldc::dist::kMaxDistWorkers));
      } else if (arg == "--seed") {
        job.seed = ldc::dist::parse_positive_u64(
            "--seed", value(), std::uint64_t(-1));
      } else if (arg == "--param") {
        const std::string kv = value();
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
          throw std::invalid_argument("--param needs K=V; got \"" + kv +
                                      "\"");
        }
        const std::string key = "--param " + kv.substr(0, eq);
        job.params.emplace_back(
            kv.substr(0, eq),
            ldc::dist::parse_positive_u64(key.c_str(), kv.c_str() + eq + 1,
                                          std::uint64_t(-1)));
      } else if (arg == "--heartbeat-ms") {
        opt.heartbeat_ms = ldc::dist::parse_positive_u64(
            "--heartbeat-ms", value(), 86400000ull);
      } else if (arg == "--attach-timeout-ms") {
        opt.attach_timeout_ms = ldc::dist::parse_positive_u64(
            "--attach-timeout-ms", value(), 86400000ull);
      } else if (arg == "--shard-bin") {
        opt.shard_binary = value();
      } else if (arg == "--listen-unix") {
        opt.listen_unix = value();
      } else if (arg == "--listen-tcp") {
        opt.listen_tcp = static_cast<std::uint16_t>(
            ldc::dist::parse_positive_u64("--listen-tcp", value(), 65535));
      } else if (arg == "--json") {
        json = true;
      } else {
        std::fprintf(stderr, "ldc_coord: unknown option '%s'\n",
                     arg.c_str());
        usage(stderr);
        return 2;
      }
    }
    if (corpus.empty()) {
      throw std::invalid_argument("--corpus is required");
    }
    job.algorithm = algorithm;
    job.normalize();

    const ldc::service::AlgorithmInfo* algo =
        ldc::service::AlgorithmRegistry::instance().find(algorithm);
    if (algo == nullptr) {
      std::string names;
      for (const auto* a :
           ldc::service::AlgorithmRegistry::instance().all()) {
        names += (names.empty() ? "" : "|") + a->name;
      }
      throw std::invalid_argument("unknown algorithm '" + algorithm +
                                  "' (have " + names + ")");
    }

    ldc::dist::Coordinator coord(corpus, opt);
    ldc::service::ExecContext exec;
    exec.engine = ldc::Network::Engine::kDist;
    exec.dist = &coord;
    const ldc::service::JobOutcome out =
        algo->run(coord.corpus_graph(), job, exec);
    const ldc::ShardTraffic traffic = coord.traffic();
    const ldc::dist::WireStats wire = coord.wire_stats();

    if (json) {
      std::printf(
          "{\"algorithm\":\"%s\",\"workers\":%zu,\"valid\":%s,"
          "\"n\":%u,\"colors\":%llu,\"palette\":%llu,\"rounds\":%llu,"
          "\"messages\":%llu,\"total_bits\":%llu,\"color_digest\":%llu,"
          "\"cross_shard_messages\":%llu,\"cross_shard_bits\":%llu,"
          "\"frames_sent\":%llu,\"frames_received\":%llu,"
          "\"bytes_sent\":%llu,\"bytes_received\":%llu}\n",
          algorithm.c_str(), coord.shards(), out.valid ? "true" : "false",
          out.n, static_cast<unsigned long long>(out.colors),
          static_cast<unsigned long long>(out.palette),
          static_cast<unsigned long long>(out.rounds),
          static_cast<unsigned long long>(out.messages),
          static_cast<unsigned long long>(out.total_bits),
          static_cast<unsigned long long>(out.color_digest),
          static_cast<unsigned long long>(traffic.messages),
          static_cast<unsigned long long>(traffic.bits),
          static_cast<unsigned long long>(wire.frames_sent),
          static_cast<unsigned long long>(wire.frames_received),
          static_cast<unsigned long long>(wire.bytes_sent),
          static_cast<unsigned long long>(wire.bytes_received));
    } else {
      std::printf("algorithm        %s\n", algorithm.c_str());
      std::printf("workers          %zu\n", coord.shards());
      std::printf("valid            %s\n", out.valid ? "yes" : "NO");
      std::printf("n                %u\n", out.n);
      std::printf("colors           %llu (palette %llu)\n",
                  static_cast<unsigned long long>(out.colors),
                  static_cast<unsigned long long>(out.palette));
      std::printf("rounds           %llu\n",
                  static_cast<unsigned long long>(out.rounds));
      std::printf("messages         %llu (%llu bits)\n",
                  static_cast<unsigned long long>(out.messages),
                  static_cast<unsigned long long>(out.total_bits));
      std::printf("color digest     %llu\n",
                  static_cast<unsigned long long>(out.color_digest));
      std::printf("cross-shard      %llu msgs, %llu bits (logical)\n",
                  static_cast<unsigned long long>(traffic.messages),
                  static_cast<unsigned long long>(traffic.bits));
      std::printf("wire             %llu+%llu frames, %llu+%llu bytes "
                  "(sent+received)\n",
                  static_cast<unsigned long long>(wire.frames_sent),
                  static_cast<unsigned long long>(wire.frames_received),
                  static_cast<unsigned long long>(wire.bytes_sent),
                  static_cast<unsigned long long>(wire.bytes_received));
    }
    return out.valid ? 0 : 1;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "ldc_coord: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ldc_coord: %s\n", e.what());
    return 1;
  }
}
