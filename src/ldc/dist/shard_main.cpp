// ldc_shard: one worker process of the distributed engine.
//
// Spawn mode (what ldc_coord and the Coordinator class use) passes an
// already-connected socket with --fd; listen-mode deployments start K of
// these by hand with --connect-unix/--connect-tcp pointing at the
// coordinator (README quickstart). Either way the worker HELLOs with its
// corpus content digest and then serves rounds until kShutdown.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ldc/dist/wire.hpp"
#include "ldc/dist/worker.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: ldc_shard --corpus FILE "
               "(--fd N | --connect-unix PATH | --connect-tcp HOST:PORT)\n"
               "\n"
               "One shard worker of the distributed engine. Connects to an\n"
               "ldc_coord coordinator, announces its corpus content digest,\n"
               "and serves exchange/broadcast rounds for its assigned vertex\n"
               "range until told to shut down.\n");
}

int connect_unix(const std::string& path) {
  sockaddr_un ua{};
  if (path.size() >= sizeof ua.sun_path) {
    std::fprintf(stderr, "ldc_shard: unix socket path too long\n");
    return -1;
  }
  ua.sun_family = AF_UNIX;
  std::strncpy(ua.sun_path, path.c_str(), sizeof ua.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&ua), sizeof ua) != 0) {
    std::fprintf(stderr, "ldc_shard: connect %s: %s\n", path.c_str(),
                 std::strerror(errno));
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& hostport) {
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon + 1 == hostport.size()) {
    std::fprintf(stderr, "ldc_shard: --connect-tcp needs HOST:PORT\n");
    return -1;
  }
  const std::string host = hostport.substr(0, colon);
  const std::string port = hostport.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    std::fprintf(stderr, "ldc_shard: resolve %s: %s\n", hostport.c_str(),
                 ::gai_strerror(rc));
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    std::fprintf(stderr, "ldc_shard: connect %s: %s\n", hostport.c_str(),
                 std::strerror(errno));
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus;
  std::string conn_unix;
  std::string conn_tcp;
  long fd_arg = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ldc_shard: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--corpus") {
      corpus = value();
    } else if (arg == "--fd") {
      try {
        fd_arg = static_cast<long>(
            ldc::dist::parse_positive_u64("--fd", value(), 1 << 20));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "ldc_shard: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--connect-unix") {
      conn_unix = value();
    } else if (arg == "--connect-tcp") {
      conn_tcp = value();
    } else {
      std::fprintf(stderr, "ldc_shard: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "ldc_shard: --corpus is required\n");
    return 2;
  }
  const int transports = (fd_arg >= 0 ? 1 : 0) +
                         (conn_unix.empty() ? 0 : 1) +
                         (conn_tcp.empty() ? 0 : 1);
  if (transports != 1) {
    std::fprintf(stderr,
                 "ldc_shard: exactly one of --fd / --connect-unix / "
                 "--connect-tcp is required\n");
    return 2;
  }

  // The coordinator detects worker death via EOF; dying to a SIGPIPE
  // because the *coordinator* died first would mask the real error.
  std::signal(SIGPIPE, SIG_IGN);

  int fd = static_cast<int>(fd_arg);
  if (!conn_unix.empty()) fd = connect_unix(conn_unix);
  if (!conn_tcp.empty()) fd = connect_tcp(conn_tcp);
  if (fd < 0) return 1;

  try {
    ldc::dist::ShardWorker worker(corpus, fd);
    return worker.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ldc_shard: %s\n", e.what());
    return 1;
  }
}
