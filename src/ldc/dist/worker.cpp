// ShardWorker: the per-process delivery plane of the distributed engine.
//
// The round bodies here are line-for-line mirrors of the Engine::kSharded
// bodies in runtime/shard.cpp — validation order, accounting order, the
// pre-drop remote-traffic count, destination-side corruption on the CoW
// slot copy, and the ascending-source-shard fill that reproduces the
// serial sender order. Anywhere the in-process engine reads shared
// memory, this one reads a decoded frame; everything else is identical,
// which is what makes the cross-engine digest equality hold.
#include "ldc/dist/worker.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "ldc/runtime/network.hpp"

namespace ldc::dist {
namespace {

/// Same contract (and exception text) as every other engine: checked per
/// sender before any of that sender's messages are validated.
void check_unique_destinations(
    const std::vector<std::pair<NodeId, Message>>& outbox,
    std::vector<NodeId>& scratch) {
  if (outbox.size() < 2) return;
  scratch.clear();
  for (const auto& [dest, msg] : outbox) scratch.push_back(dest);
  std::sort(scratch.begin(), scratch.end());
  if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end()) {
    throw std::invalid_argument(
        "Network::exchange: duplicate destination in a sender's outbox");
  }
}

/// Coordinator told us to discard the in-flight round (another shard
/// errored); unwinds the round handler back to the serve loop.
struct AbortRound {
  std::uint64_t round;
};

/// kShutdown can arrive inside a round wait; unwinds run() to exit 0.
struct ShutdownRequested {};

bool bitmap_bit(std::string_view bits, NodeId v) {
  return (static_cast<std::uint8_t>(bits[v >> 3]) >> (v & 7)) & 1u;
}

}  // namespace

ShardWorker::ShardWorker(const std::string& corpus_path, int fd)
    : mg_(storage::MappedGraph::open(corpus_path, /*verify_content=*/true)),
      fd_(fd) {}

ShardWorker::~ShardWorker() {
  if (fd_ >= 0) ::close(fd_);
}

void ShardWorker::send_frame(FrameKind kind, std::uint64_t round,
                             std::uint32_t dst, std::uint32_t count,
                             std::string_view payload) {
  write_all_fd(fd_, encode_frame(kind, round, shard_, dst, count, payload),
               "ldc_shard");
}

void ShardWorker::send_error(std::uint64_t round, std::uint32_t code,
                             const char* what) {
  PayloadWriter w;
  w.u32(code);
  const std::string_view text(what);
  w.u32(static_cast<std::uint32_t>(text.size()));
  w.raw(text.data(), text.size());
  send_frame(FrameKind::kError, round, 0, code, w.take());
}

std::size_t ShardWorker::shard_of(NodeId v) const {
  std::size_t lo = 0;
  std::size_t hi = shards_ - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (starts_[mid] <= v) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

int ShardWorker::run() {
  // HELLO: the digest handshake. The coordinator refuses any worker whose
  // corpus content digest differs from its own (AttachError), so a shard
  // can never silently run against a different graph.
  {
    PayloadWriter w;
    w.u64(mg_->meta().content_digest);
    w.u32(mg_->graph().n());
    w.u64(mg_->meta().adj_entries);
    send_frame(FrameKind::kHello, 0, 0, 0, w.take());
  }
  try {
    for (;;) {
      std::optional<Frame> f = read_frame_fd(fd_, reader_);
      if (!f) return 0;  // coordinator went away cleanly
      switch (f->header.kind) {
        case FrameKind::kAssign:
          handle_assign(*f);
          break;
        case FrameKind::kOutbox:
          handle_outbox(*f);
          break;
        case FrameKind::kBcast:
          handle_bcast(*f);
          break;
        case FrameKind::kWordSparse:
          handle_word_sparse(*f);
          break;
        case FrameKind::kAbort:
          break;  // stale: the round it names was already abandoned here
        case FrameKind::kHeartbeat:
          send_frame(FrameKind::kHeartbeat, f->header.round, 0, 0, {});
          break;
        case FrameKind::kShutdown:
          return 0;
        default:
          throw FrameError(std::string("ldc_shard: unexpected ") +
                           frame_kind_name(f->header.kind) + " frame");
      }
    }
  } catch (const ShutdownRequested&) {
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ldc_shard[%u]: fatal: %s\n", shard_, e.what());
    return 1;
  }
}

void ShardWorker::handle_assign(const Frame& f) {
  PayloadReader r(f.payload, "assign");
  shard_ = r.u32();
  shards_ = r.u32();
  budget_bits_ = static_cast<std::size_t>(r.u64());
  strict_ = r.u8() != 0;
  if (shards_ == 0 || shard_ >= shards_ || shards_ > kMaxDistWorkers) {
    throw FrameError("assign: bad shard index " + std::to_string(shard_) +
                     " of " + std::to_string(shards_));
  }
  starts_.assign(shards_ + 1, 0);
  for (std::size_t i = 0; i <= shards_; ++i) starts_[i] = r.u32();
  r.expect_end();
  const Graph& g = mg_->graph();
  if (starts_.front() != 0 || starts_.back() != g.n()) {
    throw FrameError("assign: partition does not cover [0, n)");
  }
  topo_ = ShardTopology{};
  topo_.build(g, starts_[shard_], starts_[shard_ + 1]);
  assigned_ = true;
  PayloadWriter w;
  w.u64(topo_.ghost_edges);
  w.u64(topo_.ghosts.size());
  send_frame(FrameKind::kAssignAck, f.header.round, 0, shard_, w.take());
}

void ShardWorker::handle_outbox(const Frame& f) {
  if (!assigned_) throw FrameError("outbox: worker not assigned");
  const Graph& g = mg_->graph();
  const NodeId b = topo_.vbegin;
  const NodeId e = topo_.vend;
  const NodeId owned = topo_.owned();
  const std::uint64_t round = f.header.round;
  const std::size_t K = shards_;

  PayloadReader r(f.payload, "outbox");
  const FaultCtx ctx = decode_fault_ctx(r, g.n());
  if (f.header.count != owned) {
    throw FrameError("outbox: sender count " +
                     std::to_string(f.header.count) + " != owned " +
                     std::to_string(owned));
  }
  std::vector<std::vector<std::pair<NodeId, Message>>> out(owned);
  for (NodeId lu = 0; lu < owned; ++lu) {
    const std::uint32_t len = r.u32();
    out[lu].reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) {
      const NodeId dest = r.u32();
      out[lu].emplace_back(dest, decode_message(r));
    }
  }
  r.expect_end();

  const bool faulty = ctx.faulty;
  auto lost = [&](NodeId u, NodeId dest) {
    return ctx.down_bit(dest) || ctx.plan.drops_message(round, u, dest);
  };

  // Phase A — runtime/shard.cpp's source pass verbatim: validate, account
  // into the staging summary, count local survivors per local destination,
  // serialize each cross-shard survivor into its (src, dst) batch. Remote
  // traffic is counted BEFORE the drop check, exactly as in-process.
  ShardRoundSummary sum;
  std::vector<std::uint32_t> counts(owned, 0);
  std::vector<PayloadWriter> batches(K);
  std::vector<std::uint32_t> batch_counts(K, 0);
  try {
    for (NodeId u = b; u < e; ++u) {
      const auto& ob = out[u - b];
      check_unique_destinations(ob, scratch_);
      const bool sender_down = faulty && ctx.down_bit(u);
      for (const auto& [dest, msg] : ob) {
        if (!g.has_edge(u, dest)) {
          throw std::invalid_argument(
              "Network::exchange: message to non-neighbor");
        }
        if (sender_down) continue;
        const std::size_t bits = msg.bit_count();
        ++sum.messages;
        sum.total_bits += bits;
        sum.max_message_bits = std::max<std::uint64_t>(
            sum.max_message_bits, bits);
        if (budget_bits_ != 0 && bits > budget_bits_) {
          ++sum.congest_violations;
          if (strict_) {
            throw CongestViolation(
                "message of " + std::to_string(bits) +
                " bits exceeds CONGEST budget of " +
                std::to_string(budget_bits_));
          }
        }
        sum.round_max_bits = std::max<std::uint64_t>(sum.round_max_bits,
                                                     bits);
        const bool remote = dest < b || dest >= e;
        if (remote) {
          ++sum.traffic_messages;
          sum.traffic_bits += bits;
        }
        if (faulty && lost(u, dest)) {
          ++sum.dropped;
          continue;
        }
        if (faulty && ctx.plan.corrupts_message(round, u, dest)) {
          ++sum.corrupted;
        }
        if (!remote) {
          ++counts[dest - b];
        } else {
          const std::size_t j = shard_of(dest);
          batches[j].u32(u);
          batches[j].u32(dest);
          encode_message(batches[j], msg);
          ++batch_counts[j];
        }
      }
    }
  } catch (const CongestViolation& ex) {
    send_error(round, kErrCongest, ex.what());
    return;
  } catch (const std::invalid_argument& ex) {
    send_error(round, kErrInvalidArgument, ex.what());
    return;
  }

  // Ship all K batches in ascending destination order (the diagonal one is
  // always empty — local deliveries never leave the shard — but still
  // travels, so the coordinator's barrier is exactly K² frames per round).
  for (std::size_t j = 0; j < K; ++j) {
    send_frame(FrameKind::kBatch, round, static_cast<std::uint32_t>(j),
               batch_counts[j], batches[j].take());
  }

  // Barrier: K acks for our batches plus the K-1 batches destined here
  // (the coordinator relays them; our own diagonal is not echoed back).
  std::vector<std::vector<BatchEntry>> incoming(K);
  std::vector<char> have(K, 0);
  have[shard_] = 1;
  std::size_t acks = 0;
  std::size_t got = 1;
  try {
    while (acks < K || got < K) {
      std::optional<Frame> nf = read_frame_fd(fd_, reader_);
      if (!nf) {
        throw WorkerError("ldc_shard: coordinator closed mid-round");
      }
      switch (nf->header.kind) {
        case FrameKind::kBatchAck: {
          if (nf->header.round != round || nf->header.src_shard != shard_) {
            throw FrameError("batch_ack: wrong round or source");
          }
          ++acks;
          break;
        }
        case FrameKind::kBatch: {
          const std::uint32_t src = nf->header.src_shard;
          if (nf->header.round != round || nf->header.dst_shard != shard_ ||
              src >= K || have[src] != 0) {
            throw FrameError("batch: wrong round, destination, or source");
          }
          PayloadReader br(nf->payload, "batch");
          std::vector<BatchEntry>& in = incoming[src];
          in.reserve(nf->header.count);
          for (std::uint32_t i = 0; i < nf->header.count; ++i) {
            BatchEntry be;
            be.sender = br.u32();
            be.dest = br.u32();
            be.msg = decode_message(br);
            if (be.dest < b || be.dest >= e) {
              throw FrameError("batch: entry for non-owned destination");
            }
            in.push_back(be);
          }
          br.expect_end();
          have[src] = 1;
          ++got;
          break;
        }
        case FrameKind::kAbort:
          throw AbortRound{nf->header.round};
        case FrameKind::kHeartbeat:
          send_frame(FrameKind::kHeartbeat, nf->header.round, 0, 0, {});
          break;
        case FrameKind::kShutdown:
          throw ShutdownRequested{};
        default:
          throw FrameError(std::string("ldc_shard: unexpected ") +
                           frame_kind_name(nf->header.kind) +
                           " frame inside a round");
      }
    }
  } catch (const AbortRound&) {
    send_frame(FrameKind::kAbort, round, 0, 0, {});  // abort ack
    return;
  }

  // Phase B — the destination pass: fold batch counts into the local
  // counts, lay out the shard CSR, then fill walking source shards in
  // ascending order with the own range inline at j == shard_. Corruption
  // is applied here on the destination's own copy, re-resolving the pure
  // PRF decision counted in phase A.
  for (std::size_t j = 0; j < K; ++j) {
    for (const BatchEntry& s : incoming[j]) ++counts[s.dest - b];
  }
  std::vector<std::uint32_t> offsets(static_cast<std::size_t>(owned) + 1);
  std::uint32_t total = 0;
  for (NodeId lv = 0; lv < owned; ++lv) {
    offsets[lv] = total;
    total += counts[lv];
  }
  offsets[owned] = total;
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<std::pair<NodeId, Message>> slots(total);
  for (std::size_t j = 0; j < K; ++j) {
    if (j == shard_) {
      for (NodeId u = b; u < e; ++u) {
        if (faulty && ctx.down_bit(u)) continue;
        for (const auto& [dest, msg] : out[u - b]) {
          if (dest < b || dest >= e) continue;
          if (faulty && lost(u, dest)) continue;
          auto& slot = slots[cursor[dest - b]++];
          slot.first = u;
          slot.second = msg;
          if (faulty && ctx.plan.corrupts_message(round, u, dest)) {
            ctx.plan.corrupt_payload(round, u, dest, slot.second);
          }
        }
      }
      continue;
    }
    for (const BatchEntry& s : incoming[j]) {
      auto& slot = slots[cursor[s.dest - b]++];
      slot.first = s.sender;
      slot.second = s.msg;
      if (faulty && ctx.plan.corrupts_message(round, s.sender, s.dest)) {
        ctx.plan.corrupt_payload(round, s.sender, s.dest, slot.second);
      }
    }
  }

  PayloadWriter w;
  encode_summary(w, sum);
  for (std::uint32_t off : offsets) w.u32(off);
  for (const auto& [sender, msg] : slots) {
    w.u32(sender);
    encode_message(w, msg);
  }
  send_frame(FrameKind::kInbox, round, 0, total, w.take());
}

void ShardWorker::handle_bcast(const Frame& f) {
  if (!assigned_) throw FrameError("bcast: worker not assigned");
  const Graph& g = mg_->graph();
  const NodeId b = topo_.vbegin;
  const NodeId e = topo_.vend;
  const NodeId owned = topo_.owned();
  const std::uint64_t round = f.header.round;

  PayloadReader r(f.payload, "bcast");
  const FaultCtx ctx = decode_fault_ctx(r, g.n());
  const std::string_view transmits = r.bytes((g.n() + 7) / 8);
  r.expect_end();
  const bool faulty = ctx.faulty;

  // Receiver-driven survivor scan, mirroring broadcast_fill_sharded's
  // masked/faulty path: count drops/corruptions per live edge, collect
  // surviving sender ids per owned destination in adjacency order. The
  // coordinator rebuilds the payload slots (it holds the messages), so
  // only ids travel back.
  std::vector<std::uint32_t> offsets(static_cast<std::size_t>(owned) + 1);
  std::vector<NodeId> senders;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint32_t total = 0;
  for (NodeId v = b; v < e; ++v) {
    offsets[v - b] = total;
    const bool receiver_down = faulty && ctx.down_bit(v);
    for (NodeId u : g.neighbors(v)) {
      if (!bitmap_bit(transmits, u)) continue;
      if (faulty &&
          (receiver_down || ctx.plan.drops_message(round, u, v))) {
        ++dropped;
        continue;
      }
      if (faulty && ctx.plan.corrupts_message(round, u, v)) ++corrupted;
      senders.push_back(u);
      ++total;
    }
  }
  offsets[owned] = total;

  PayloadWriter w;
  w.u64(dropped);
  w.u64(corrupted);
  for (std::uint32_t off : offsets) w.u32(off);
  for (NodeId u : senders) w.u32(u);
  send_frame(FrameKind::kInboxIds, round, 0, total, w.take());
}

void ShardWorker::handle_word_sparse(const Frame& f) {
  if (!assigned_) throw FrameError("word_sparse: worker not assigned");
  const Graph& g = mg_->graph();
  const NodeId b = topo_.vbegin;
  const NodeId e = topo_.vend;
  const NodeId owned = topo_.owned();
  const std::uint64_t round = f.header.round;

  PayloadReader r(f.payload, "word_sparse");
  const FaultCtx ctx = decode_fault_ctx(r, g.n());
  const std::string_view transmits = r.bytes((g.n() + 7) / 8);
  const std::size_t bits = r.u32();
  std::vector<std::uint64_t> owned_words(owned);
  for (NodeId lv = 0; lv < owned; ++lv) owned_words[lv] = r.u64();
  std::vector<std::uint64_t> ghost_words(topo_.ghosts.size());
  for (std::size_t i = 0; i < ghost_words.size(); ++i) {
    ghost_words[i] = r.u64();
  }
  r.expect_end();
  const bool faulty = ctx.faulty;

  // A sender delivering to an owned destination is either owned or a
  // ghost; the halo words shipped above cover exactly the latter.
  auto word_of = [&](NodeId u) -> std::uint64_t {
    if (u >= b && u < e) return owned_words[u - b];
    const auto it =
        std::lower_bound(topo_.ghosts.begin(), topo_.ghosts.end(), u);
    return ghost_words[static_cast<std::size_t>(it - topo_.ghosts.begin())];
  };

  // word_fill_sharded's sparse path: per-shard word CSR, corruption via
  // the pure PRF, traffic counted per DELIVERED out-of-range slot.
  std::vector<std::uint32_t> offsets(static_cast<std::size_t>(owned) + 1);
  std::vector<WordSlot> slots;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t traffic_messages = 0;
  std::uint64_t traffic_bits = 0;
  std::uint32_t total = 0;
  for (NodeId v = b; v < e; ++v) {
    offsets[v - b] = total;
    const bool receiver_down = faulty && ctx.down_bit(v);
    for (NodeId u : g.neighbors(v)) {
      if (!bitmap_bit(transmits, u)) continue;
      if (faulty &&
          (receiver_down || ctx.plan.drops_message(round, u, v))) {
        ++dropped;
        continue;
      }
      if (faulty && ctx.plan.corrupts_message(round, u, v)) ++corrupted;
      WordSlot slot{u, word_of(u)};
      if (u < b || u >= e) {
        ++traffic_messages;
        traffic_bits += bits;
      }
      if (faulty && ctx.plan.corrupts_message(round, u, v)) {
        ctx.plan.corrupt_word(round, u, v, slot.value, bits);
      }
      slots.push_back(slot);
      ++total;
    }
  }
  offsets[owned] = total;

  PayloadWriter w;
  w.u64(dropped);
  w.u64(corrupted);
  w.u64(traffic_messages);
  w.u64(traffic_bits);
  for (std::uint32_t off : offsets) w.u32(off);
  for (const WordSlot& s : slots) {
    w.u32(s.sender);
    w.u64(s.value);
  }
  send_frame(FrameKind::kInboxWords, round, 0, total, w.take());
}

}  // namespace ldc::dist
