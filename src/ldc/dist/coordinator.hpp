// The distributed engine's coordinator: owns the worker processes, the
// sockets, and the barrier protocol (DESIGN.md §12).
//
// A Coordinator is a DistBackend: attach it to a Network with
// attach_dist() and every exchange / broadcast / fused-word round is
// executed by K `ldc_shard` worker processes, each running the sharded
// engine's phase A / phase B over its contiguous vertex range, with the
// per-(src, dst) batch buffers traveling as digest-sealed frames. The
// coordinator is the hub: it relays batches between workers, acks each
// one, and closes round N only when all K² batch frames for N are acked
// and all K inbox frames are in — then splices the per-shard inbox CSRs
// into the Network's master arena in ascending shard order, which (the
// ranges being contiguous and ascending) reproduces the serial layout
// byte for byte.
//
// Two ways to get workers:
//  * spawn mode (default): fork+exec K `ldc_shard` processes over
//    socketpairs. Every socket fd is created close-on-exec and each
//    child unsets the flag only on its own fd, so no worker inherits a
//    sibling's socket — worker death is always visible as EOF.
//  * listen mode: bind a unix-domain or TCP socket and accept K
//    externally started workers (the README quickstart).
//
// Attach validation: every worker HELLOs with its corpus content digest
// and shape; any mismatch with the coordinator's own mmap is a typed
// AttachError naming the worker. Liveness: the coordinator's I/O is
// fully non-blocking; while a round is in flight, heartbeat_ms of total
// silence (or any worker EOF) aborts the run with a WorkerError naming
// the shard and round.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "ldc/dist/wire.hpp"
#include "ldc/graph/partition.hpp"
#include "ldc/runtime/network.hpp"
#include "ldc/storage/mapped_graph.hpp"

namespace ldc::dist {

struct CoordinatorOptions {
  /// Worker-process count; 0 resolves via LDC_DIST_WORKERS (strictly
  /// parsed) with the LDC_THREADS-style hardware fallback, clamped to
  /// kMaxDistWorkers and to n.
  std::size_t workers = 0;
  /// Max tolerated total silence while a round is in flight before the
  /// coordinator declares the slowest worker hung (WorkerError).
  std::uint64_t heartbeat_ms = 30000;
  /// Max wait for worker HELLOs and assign acks (AttachError).
  std::uint64_t attach_timeout_ms = 10000;
  /// Path of the `ldc_shard` binary for spawn mode; "" resolves via
  /// LDC_SHARD_BIN, then next to the running executable.
  std::string shard_binary;
  /// Non-empty: listen mode on this unix-domain socket path instead of
  /// spawning (the path is unlinked on shutdown).
  std::string listen_unix;
  /// Non-zero: listen mode on this TCP port (all interfaces).
  std::uint16_t listen_tcp = 0;
};

/// Physical wire observability (frames and bytes actually moved over the
/// sockets, headers included) — deliberately separate from the LOGICAL
/// cross_shard_traffic() counters, which stay engine-independent.
struct WireStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class Coordinator : public DistBackend {
 public:
  /// Opens the corpus, spawns (or accepts) the workers, and runs the
  /// HELLO digest handshake. Throws CorpusError on a bad corpus file,
  /// AttachError on a worker that fails the handshake, and
  /// std::invalid_argument on bad options.
  explicit Coordinator(const std::string& corpus_path,
                       CoordinatorOptions opt = {});
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The corpus-backed graph; construct the Network over exactly this.
  const Graph& corpus_graph() const { return graph_; }
  const storage::MappedGraph& mapped() const { return *mg_; }

  std::size_t shards() const override { return conns_.size(); }
  ShardTraffic traffic() const override { return traffic_; }
  WireStats wire_stats() const { return wire_; }

  /// Worker process ids in shard order (-1 per worker in listen mode).
  /// Observability for diagnostics and the failure-injection tests.
  std::vector<pid_t> worker_pids() const {
    std::vector<pid_t> pids;
    pids.reserve(conns_.size());
    for (const WorkerConn& c : conns_) pids.push_back(c.pid);
    return pids;
  }

 protected:
  void bind(Network& net) override;
  void exchange_dist(Network& net,
                     const std::vector<Network::Outbox>& outboxes,
                     std::uint64_t round, RoundFaults& rf,
                     std::size_t& round_max_bits) override;
  void broadcast_fill_dist(Network& net, const std::vector<Message>& msgs,
                           const std::vector<bool>* active,
                           std::uint64_t round, RoundFaults& rf,
                           bool all_live) override;
  void word_fill_dist(Network& net, const std::vector<std::uint64_t>& words,
                      std::size_t bits, std::uint64_t round, RoundFaults& rf,
                      bool all_live) override;

 private:
  struct WorkerConn {
    int fd = -1;
    pid_t pid = -1;  ///< -1 in listen mode
    FrameReader reader;
    std::deque<Frame> inq;  ///< decoded frames not yet consumed
    std::string outq;       ///< bytes not yet flushed
    std::size_t outq_off = 0;
    bool eof = false;
    // Per-shard topology facts (coordinator-computed at bind, verified
    // against the worker's own kAssignAck).
    std::vector<NodeId> ghosts;    ///< sorted halo of the worker's range
    std::uint64_t ghost_edges = 0;
  };

  void spawn_workers(const std::string& corpus_path, std::size_t k);
  void accept_workers(std::size_t k);
  void handshake();
  void shutdown_workers();

  /// Appends a frame to worker k's out-queue (flushed by pump()).
  void queue_frame(std::size_t k, FrameKind kind, std::uint64_t round,
                   std::uint32_t src, std::uint32_t dst, std::uint32_t count,
                   std::string_view payload);
  /// One poll(2) pass: flush pending writes, read what's available,
  /// decode complete frames into the per-worker in-queues. Never blocks
  /// longer than timeout_ms. Throws FrameError on malformed worker bytes.
  void pump(int timeout_ms);
  /// A decoded frame tagged with the connection it arrived on (workers
  /// don't know their shard index until kAssign, so the socket — not the
  /// header — is the source of truth for identity).
  struct Incoming {
    std::size_t from;
    Frame frame;
  };

  /// Pops the next decoded frame (ascending worker order), pumping until
  /// one arrives. On worker EOF throws WorkerError (or AttachError when
  /// attaching); after window_ms of total silence throws naming `phase`,
  /// `round`, and the lowest shard still owed by the caller.
  Incoming await_frame(std::uint64_t round, const char* phase,
                       std::uint64_t window_ms, bool attaching,
                       const std::vector<char>& satisfied);

  /// Waits for exactly one `kind` reply from every worker for `round`
  /// (heartbeats tolerated, anything else is a FrameError) and returns
  /// them in shard order.
  std::vector<Frame> collect_replies(FrameKind kind, std::uint64_t round,
                                     const char* phase);

  /// Maps a worker kError frame to the matching typed exception.
  [[noreturn]] void rethrow_worker_error(std::uint32_t shard,
                                         std::uint32_t code,
                                         const std::string& what) const;

  std::size_t shard_of(NodeId v) const { return part_.shard_of(v); }

  std::shared_ptr<const storage::MappedGraph> mg_;
  Graph graph_;  ///< zero-copy view pinning the mapping
  CoordinatorOptions opt_;
  std::vector<WorkerConn> conns_;
  int listen_fd_ = -1;
  std::uint64_t last_rx_ms_ = 0;  ///< monotone ms of the last bytes read

  // Set at bind().
  bool bound_ = false;
  Partition part_;
  std::size_t budget_bits_ = 0;
  bool strict_ = false;

  ShardTraffic traffic_;
  WireStats wire_;
};

}  // namespace ldc::dist
