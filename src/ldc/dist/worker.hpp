// The `ldc_shard` worker process: one shard of the distributed engine.
//
// A worker owns one contiguous vertex range of the coordinator's
// partition and is the delivery plane for it — the exact phase A / phase
// B bodies of the in-process sharded engine (shard.cpp), with the
// per-(src, dst) batch buffers serialized as kBatch frames instead of
// staged in shared memory. The worker is deliberately stateless across
// rounds: everything a round needs (outboxes, fault context, transmit
// masks, word values) arrives in the round's frames, and every fault
// decision it resolves is a pure function of (plan seed, round, edge) —
// which is the whole determinism argument (DESIGN.md §12).
//
// I/O is plain blocking reads/writes: the coordinator end is fully
// non-blocking and always drains, so a worker can never wedge the
// protocol by blocking on a write.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ldc/dist/wire.hpp"
#include "ldc/graph/partition.hpp"
#include "ldc/storage/mapped_graph.hpp"

namespace ldc::dist {

class ShardWorker {
 public:
  /// Opens (mmaps) the corpus and takes ownership of the connected
  /// socket fd. Throws CorpusError on a bad corpus file.
  ShardWorker(const std::string& corpus_path, int fd);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Sends HELLO, then serves coordinator frames until kShutdown (returns
  /// 0) or a fatal protocol error (logs to stderr, returns 1). Algorithm
  /// errors (non-neighbor delivery, strict CONGEST violations) are NOT
  /// fatal: they travel back as kError frames and the worker keeps
  /// serving rounds.
  int run();

 private:
  struct BatchEntry {
    NodeId sender;
    NodeId dest;
    Message msg;
  };

  void send_frame(FrameKind kind, std::uint64_t round, std::uint32_t dst,
                  std::uint32_t count, std::string_view payload);
  void send_error(std::uint64_t round, std::uint32_t code, const char* what);

  void handle_assign(const Frame& f);
  void handle_outbox(const Frame& f);
  void handle_bcast(const Frame& f);
  void handle_word_sparse(const Frame& f);

  /// Shard owning global vertex v (binary search over starts_).
  std::size_t shard_of(NodeId v) const;

  std::shared_ptr<const storage::MappedGraph> mg_;
  int fd_;
  FrameReader reader_;  ///< persistent: read(2) coalesces frames

  // Assigned at kAssign (re-assignable: a coordinator re-binds per run).
  bool assigned_ = false;
  std::uint32_t shard_ = 0;
  std::uint32_t shards_ = 0;
  std::size_t budget_bits_ = 0;
  bool strict_ = false;
  std::vector<NodeId> starts_;  ///< K+1 partition boundaries
  ShardTopology topo_;

  std::vector<NodeId> scratch_;  ///< duplicate-destination check
};

}  // namespace ldc::dist
