// Resilient execution harness: run a colorer under fault injection, then
// self-stabilize.
//
// The harness attaches a FaultPlan to the network, runs an arbitrary colorer
// (which may crash-stop nodes, lose messages, or decode corrupted payloads —
// decoder exceptions are caught and treated as a failed run), validates the
// outcome with validate_ldc, and if the coloring is invalid hands it to
// repair::repair. The result reports the recovery cost: extra rounds spent
// repairing and the number of nodes that had to change color. This is the
// experimental backend for the fault-tolerance story (E11 / bench
// micro:faults): defect repair is self-stabilizing, so any transiently
// faulty run converges to a valid list defective coloring once the faults
// stop.
#pragma once

#include <cstdint>
#include <functional>

#include "ldc/coloring/instance.hpp"
#include "ldc/repair/repair.hpp"
#include "ldc/runtime/fault.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::repair {

struct ResilientOptions {
  /// Faults injected while the colorer runs. An all-zero plan runs faultless.
  FaultPlan plan;
  /// Passed through to repair::repair (seed, conflict width g, round cap).
  Options repair;
  /// Keep the plan attached during the repair phase too. Defaults to false:
  /// the standard experiment is "transient faults, then the network heals
  /// and the coloring self-stabilizes". With true, repair itself runs under
  /// fire and convergence is only guaranteed for sub-critical fault rates.
  bool faults_during_repair = false;
};

struct ResilientResult {
  Coloring phi;                      ///< final coloring (post-repair)
  bool valid = false;                ///< validate_ldc passed at the end
  bool colorer_failed = false;       ///< colorer threw; repaired from scratch
  std::uint32_t colorer_rounds = 0;  ///< rounds the colorer consumed
  std::uint32_t recovery_rounds = 0; ///< extra rounds repair needed
  std::uint32_t moved_nodes = 0;     ///< nodes recolored during recovery
  /// validate_ldc violation count of the colorer's raw output (0 if it was
  /// already valid; n if the colorer failed outright).
  std::size_t initial_violations = 0;
  RunMetrics metrics;                ///< network metrics snapshot at the end
};

/// The colorer under test. Runs on the (fault-injected) network and returns
/// its coloring; entries may be kUncolored. Exceptions escaping the colorer
/// (e.g. BitReader overruns from corrupted payloads) are caught by
/// run_resilient and treated as a fully uncolored result.
using Colorer = std::function<Coloring(Network&, const LdcInstance&)>;

/// Runs `colorer` on `net` under `opt.plan`, then repairs the result into a
/// valid list defective coloring of `inst`. Detaches the fault plan before
/// returning; any plan previously attached to `net` is replaced.
ResilientResult run_resilient(Network& net, const LdcInstance& inst,
                              const Colorer& colorer,
                              const ResilientOptions& opt = {});

}  // namespace ldc::repair
