#include "ldc/repair/resilient.hpp"

#include <exception>

#include "ldc/coloring/validate.hpp"

namespace ldc::repair {

ResilientResult run_resilient(Network& net, const LdcInstance& inst,
                              const Colorer& colorer,
                              const ResilientOptions& opt) {
  ResilientResult res;
  const std::uint64_t rounds_before = net.metrics().rounds;

  if (opt.plan.any()) net.attach_faults(&opt.plan);
  try {
    res.phi = colorer(net, inst);
  } catch (const std::exception&) {
    // Corrupted payloads can derail decoders arbitrarily (BitReader
    // overruns, contract violations in sub-protocols). A colorer that dies
    // is equivalent to one that returns nothing: repair colors from scratch.
    res.colorer_failed = true;
    res.phi.clear();
  }
  res.phi.resize(inst.n(), kUncolored);
  res.colorer_rounds =
      static_cast<std::uint32_t>(net.metrics().rounds - rounds_before);

  if (!opt.faults_during_repair) net.attach_faults(nullptr);

  const ValidationResult initial =
      validate_ldc(inst, res.phi, opt.repair.g);
  res.initial_violations = initial.violations.size();
  if (initial.ok) {
    res.valid = true;
  } else {
    const Coloring before = res.phi;
    Result rep = repair(net, inst, std::move(res.phi), opt.repair);
    res.recovery_rounds = rep.rounds;
    res.phi = std::move(rep.phi);
    for (NodeId v = 0; v < inst.n(); ++v) {
      if (before[v] != res.phi[v]) ++res.moved_nodes;
    }
    res.valid = validate_ldc(inst, res.phi, opt.repair.g).ok;
  }

  net.attach_faults(nullptr);
  res.metrics = net.metrics();
  return res;
}

}  // namespace ldc::repair
