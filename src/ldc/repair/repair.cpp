#include "ldc/repair/repair.hpp"

#include <cstdlib>
#include <vector>

#include "ldc/support/prf.hpp"

namespace ldc::repair {
namespace {

bool conflicting(Color a, Color b, std::uint32_t g) {
  if (a == kUncolored || b == kUncolored) return false;
  return static_cast<std::uint64_t>(
             std::llabs(static_cast<std::int64_t>(a) - b)) <= g;
}

}  // namespace

Result repair(Network& net, const LdcInstance& inst, Coloring phi,
              const Options& opt) {
  const Graph& g = net.graph();
  phi.resize(g.n(), kUncolored);
  const Prf prf(opt.seed);
  Result res;

  // Per-round wire format: 1 bit colored flag + the color.
  const std::uint64_t space = inst.color_space;
  auto encode = [&](Color c) {
    BitWriter w;
    if (c == kUncolored) {
      w.write(0, 1);
    } else {
      w.write(1, 1);
      w.write_bounded(c, space - 1);
    }
    return Message::from(w);
  };

  // The defect budget of v counts conflicts over this conflict set.
  auto counts_conflict = [&](NodeId v, NodeId u) {
    return opt.orientation == nullptr || opt.orientation->has_out_edge(v, u);
  };

  for (std::uint32_t round = 0; round < opt.max_rounds; ++round) {
    std::vector<Message> msgs(g.n());
    for (NodeId v = 0; v < g.n(); ++v) msgs[v] = encode(phi[v]);
    const auto inboxes = net.exchange_broadcast(msgs);

    // Decode neighbor colors.
    std::vector<std::vector<std::pair<NodeId, Color>>> nb_colors(g.n());
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const auto& [u, m] : inboxes[v]) {
        auto r = m.reader();
        const Color c = (r.read(1) == 1)
                            ? static_cast<Color>(r.read_bounded(space - 1))
                            : kUncolored;
        nb_colors[v].emplace_back(u, c);
      }
    }

    auto violated = [&](NodeId v) {
      if (phi[v] == kUncolored) return true;
      // A color outside the node's own list (a corrupted or foreign color)
      // is unconditionally invalid — treat it like an uncolored node
      // instead of looking up a defect budget it does not have.
      const auto& list = inst.lists[v];
      const std::size_t idx = list.find(phi[v]);
      if (idx == list.size()) return true;
      std::uint32_t cnt = 0;
      for (const auto& [u, c] : nb_colors[v]) {
        if (counts_conflict(v, u) && conflicting(phi[v], c, opt.g)) ++cnt;
      }
      return cnt > list.defects[idx];
    };

    std::vector<bool> is_violated(g.n());
    bool any = false;
    for (NodeId v = 0; v < g.n(); ++v) {
      is_violated[v] = violated(v);
      any = any || is_violated[v];
    }
    if (!any) {
      res.success = true;
      break;
    }

    // Second exchange: violating nodes announce contention (1 bit). A node
    // cannot deduce a neighbor's violation status locally (it depends on
    // the neighbor's private list), so this costs a round.
    {
      std::vector<Message> contend_msgs(g.n());
      for (NodeId v = 0; v < g.n(); ++v) {
        BitWriter w;
        w.write(is_violated[v] ? 1 : 0, 1);
        contend_msgs[v] = Message::from(w);
      }
      net.exchange_broadcast(contend_msgs);
      ++res.rounds;
    }

    // Priorities are PRF(round, id): computable by neighbors without extra
    // communication (ids are known).
    auto priority = [&](NodeId v) {
      return prf.at(hash_combine(round, g.id(v)));
    };
    for (NodeId v = 0; v < g.n(); ++v) {
      if (!is_violated[v]) continue;
      bool local_max = true;
      for (const auto& [u, c] : nb_colors[v]) {
        (void)c;
        if (is_violated[u] && priority(u) > priority(v)) {
          local_max = false;
          break;
        }
      }
      if (!local_max) continue;
      // Recolor: admissible color with fewest conflicts.
      const auto& list = inst.lists[v];
      std::size_t best_i = 0;
      std::uint32_t best_cnt = ~0u;
      bool best_admissible = false;
      for (std::size_t i = 0; i < list.size(); ++i) {
        std::uint32_t cnt = 0;
        for (const auto& [u, c] : nb_colors[v]) {
          if (counts_conflict(v, u) && conflicting(list.colors[i], c, opt.g)) {
            ++cnt;
          }
        }
        const bool admissible = cnt <= list.defects[i];
        // Prefer admissible colors; among them (or among all if none is
        // admissible) prefer fewer conflicts.
        if ((admissible && !best_admissible) ||
            (admissible == best_admissible && cnt < best_cnt)) {
          best_i = i;
          best_cnt = cnt;
          best_admissible = admissible;
        }
      }
      phi[v] = list.colors[best_i];
    }
    ++res.rounds;
  }
  res.phi = std::move(phi);
  return res;
}

}  // namespace ldc::repair
