// Distributed defect repair — the distributed analogue of Lemma A.1's
// potential-function recoloring.
//
// Given any (partial or violating) coloring of a list defective instance,
// nodes repeatedly broadcast their colors; a node whose defect budget is
// exceeded (or that is uncolored) recolors itself when it holds the locally
// highest per-round PRF priority among its violating neighbors, picking the
// admissible color with the fewest current conflicts. Because adjacent
// nodes never recolor simultaneously, each step is exactly a step of the
// Lemma A.1 sequential process executed in parallel on an independent set,
// so the same potential argument drives convergence.
//
// Uses: (a) safety net ensuring library outputs are always valid even when
// a PRF-selected candidate family misses the paper's pigeonhole margin (see
// DESIGN.md §4); (b) standalone self-stabilizing baseline (E11); (c) the
// failure-injection test target.
#pragma once

#include <cstdint>

#include "ldc/coloring/instance.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::repair {

struct Options {
  std::uint32_t max_rounds = 4096;
  std::uint64_t seed = 0x5eed5eed;
  std::uint32_t g = 0;  ///< generalized conflict width (|x-y| <= g)
  /// If set, defects are counted over out-neighbors only.
  const Orientation* orientation = nullptr;
};

struct Result {
  Coloring phi;
  std::uint32_t rounds = 0;
  bool success = false;  ///< all defect budgets satisfied at the end
};

/// Repairs `phi` into a valid (O)LDC coloring of `inst`. Initially
/// uncolored nodes (kUncolored) are treated as violating and colored along
/// the way.
Result repair(Network& net, const LdcInstance& inst, Coloring phi,
              const Options& opt = {});

}  // namespace ldc::repair
