// poll(2)-based serving frontend: one loop thread multiplexes a listening
// unix socket plus any number of EventSessions over ONE shared Service
// (one queue, one worker pool, one result cache for every client).
//
// Structure per iteration:
//   1. poll() over {wake pipe, listener, every live session} with a
//      bounded timeout (so a stop flag flipped by a signal handler in
//      another thread is still observed promptly).
//   2. Drain the wake pipe (workers write one byte when a session gained
//      output or finished a drain — the write is non-blocking and a full
//      pipe means a wakeup is already pending).
//   3. Adopt externally-provided fds (adopt() is thread-safe; tests use
//      it with socketpair()s to avoid filesystem sockets).
//   4. Accept until EAGAIN. EINTR/ECONNABORTED are non-fatal; beyond
//      max_sessions the fd is closed immediately (the client sees EOF).
//   5. Dispatch readability/writability to sessions, tick() the ones a
//      worker unblocked, reap finished() sessions.
//
// Shutdown: when the stop flag is set (or stop() is called) the listener
// closes, every session behaves as if its client sent EOF — outstanding
// jobs finish and flush — and run() returns once no sessions remain.
// The destructor shuts the Service down (joining workers) before any
// session teardown, so no result callback can fire into a dead loop.
#pragma once

#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ldc/service/session.hpp"

namespace ldc::service {

struct EventLoopOptions {
  int backlog = 128;                ///< listen(2) backlog
  std::size_t max_sessions = 1024;  ///< beyond this, accepts are refused
  SessionLimits session_limits;
  /// Optional external stop request (e.g. a signal handler's flag);
  /// polled every iteration. May be null.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
  int poll_interval_ms = 200;  ///< poll timeout; bounds stop-flag latency
};

class EventLoopServer {
 public:
  EventLoopServer(const ServiceConfig& cfg, EventLoopOptions opts);
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Binds + listens on a unix socket path (unlinking a stale one).
  /// Throws std::runtime_error on failure. Call at most once, before
  /// run().
  void listen_on(const std::string& path);

  /// Hands an already-connected stream socket to the loop (takes
  /// ownership). Thread-safe; may be called while run() is executing.
  void adopt(int fd);

  /// Runs the loop on the calling thread until stop. Returns after every
  /// session has finished (all outstanding jobs emitted and flushed).
  void run();

  /// Requests shutdown from any thread (idempotent).
  void stop();

  Service& service() { return service_; }
  std::size_t session_count() const;

 private:
  void make_wake_pipe();
  void wake();
  void accept_ready();
  void add_session(int fd);

  const EventLoopOptions opts_;
  Service service_;  // declared before sessions_: workers outlive no session

  int listener_ = -1;
  std::string socket_path_;
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  mutable std::mutex mu_;  // guards sessions_/pending_/stop_ (loop + adopt/stop)
  std::vector<std::shared_ptr<EventSession>> sessions_;
  std::vector<int> pending_;  ///< adopted fds awaiting the loop thread
  bool stop_ = false;
};

}  // namespace ldc::service
