// Line-delimited JSON protocol over the Service: one request object per
// line in, one event object per line out.
//
// Requests ({"op": ...}):
//   submit   {"op":"submit","job":{...},"tag":"..."} -> admitted|rejected
//   cancel   {"op":"cancel","id":N}                  -> cancel (found flag)
//   pause    {"op":"pause"}                          -> paused
//   resume   {"op":"resume"}                         -> resumed
//   drain    {"op":"drain"}  (blocks)                -> drained
//   stats    {"op":"stats","counters_only":true}     -> stats
//   shutdown {"op":"shutdown"}                       -> bye (serve returns)
//
// Events carry "event": admitted, rejected, result, cancel, paused,
// resumed, drained, stats, error, bye. A malformed line or unknown op
// produces an error event and the session continues — bad input must
// never take the server down. EOF on input triggers a graceful drain:
// queued jobs finish, their results are emitted, then bye.
//
// Determinism contract: the emit lock is held across submit+admitted so
// a job's admitted line always precedes its result line; result lines
// contain only model-exact fields (no latencies), so with one worker and
// drain-separated bursts the whole output stream is byte-reproducible.
#pragma once

#include <iosfwd>
#include <string>

#include "ldc/service/service.hpp"

namespace ldc::service {

/// Transport abstraction: blocking line reader + line writer. The serve
/// loop is transport-agnostic; tests drive it with string streams, the
/// binary with fds (stdin/stdout or a unix socket).
class LineIO {
 public:
  virtual ~LineIO() = default;
  /// Blocks for the next input line (without terminator); false on EOF
  /// or interruption (both mean: drain and finish).
  virtual bool read_line(std::string& out) = 0;
  /// Writes one line (terminator appended). Must tolerate concurrent
  /// exclusion by the caller — serve serializes all writes itself.
  virtual void write_line(const std::string& line) = 0;
};

/// std::istream/std::ostream transport (tests, simple pipes).
class StreamLineIO final : public LineIO {
 public:
  StreamLineIO(std::istream& in, std::ostream& out) : in_(in), out_(out) {}
  bool read_line(std::string& out) override;
  void write_line(const std::string& line) override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

/// Runs one protocol session over `io` with a fresh Service built from
/// `cfg`. Returns when the client sends shutdown or the input ends;
/// either way every admitted job has emitted its result by then.
void serve(LineIO& io, const ServiceConfig& cfg);

/// Event formatting shared between this blocking loop and the event-loop
/// sessions (session.hpp): {"event":name}, plus the full result line
/// (model-exact fields only; `tag` echoed when non-empty). Both frontends
/// must emit byte-identical lines for a given JobResult, or the solo-vs-
/// multiplexed determinism contract breaks.
harness::Json protocol_event(const char* name);
harness::Json protocol_result(const JobResult& r, const std::string& tag);

}  // namespace ldc::service
