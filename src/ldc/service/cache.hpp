// Byte-budgeted LRU cache of job outcomes, keyed by job digest.
//
// An outcome is a pure function of its job digest (see job.hpp), so the
// cache never needs invalidation — only eviction. The budget is in
// approximate bytes (a fixed per-entry estimate covering the outcome,
// the key and the bookkeeping nodes); when an insertion would exceed it,
// least-recently-used entries are evicted first. A budget of 0 disables
// caching entirely (every get misses, every put is dropped).
//
// Thread-safe: the service's workers call get/put concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "ldc/service/algorithms.hpp"

namespace ldc::service {

class ResultCache {
 public:
  /// Approximate footprint charged per cached entry: the outcome payload
  /// plus list/map node overhead. Deliberately a round, documented number
  /// so budgets translate to entry counts predictably.
  static constexpr std::size_t kEntryBytes = 192;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;        ///< current charged footprint
    std::size_t entries = 0;
    std::size_t byte_budget = 0;
  };

  explicit ResultCache(std::size_t byte_budget) : budget_(byte_budget) {}

  /// Looks up a digest; refreshes its LRU position on hit. Counts a hit
  /// or a miss either way.
  std::optional<JobOutcome> get(std::uint64_t digest);

  /// Inserts or overwrites; the entry becomes most-recently-used. Evicts
  /// from the LRU tail until the footprint fits the budget.
  void put(std::uint64_t digest, const JobOutcome& outcome);

  Stats stats() const;

 private:
  struct Entry {
    std::uint64_t digest;
    JobOutcome outcome;
  };

  const std::size_t budget_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ldc::service
