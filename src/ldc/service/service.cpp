#include "ldc/service/service.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "ldc/dist/coordinator.hpp"
#include "ldc/graph/io_error.hpp"

namespace ldc::service {

Service::Service(ServiceConfig cfg, ResultCallback on_result)
    : cfg_(cfg),
      on_result_(std::move(on_result)),
      corpora_(cfg.corpus_dir.empty()
                   ? nullptr
                   : std::make_unique<storage::CorpusRegistry>(
                         cfg.corpus_dir)),
      cache_(cfg.cache_bytes),
      queue_(cfg.queue_capacity,
             [](const Pending& p) {
               return p.gate == nullptr ||
                      !p.gate->paused.load(std::memory_order_acquire);
             }),
      pool_(cfg.workers) {
  // run_tasks blocks until every loop returns (i.e. the queue is closed
  // and drained), so it needs a dedicated driver thread; the driver
  // participates as one of the pool's lanes.
  driver_ = std::thread([this] {
    std::vector<std::function<void()>> loops;
    loops.reserve(pool_.size());
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      loops.emplace_back([this] { worker_loop(); });
    }
    pool_.run_tasks(std::move(loops));
  });
}

Service::~Service() { shutdown(); }

Admission Service::submit(const Job& job, SubmitOptions opts) {
  Admission a;
  std::lock_guard<std::mutex> admit(admit_mu_);
  a.id = next_id_++;
  {
    std::lock_guard<std::mutex> lock(metrics_.mu);
    ++metrics_.submitted;
  }
  Pending p;
  p.job = job;
  p.id = a.id;
  if (p.job.graph.family == "corpus" && corpora_ != nullptr) {
    // Resolve the name to content *before* the digest so the cache key is
    // the corpus bytes, not the mutable name binding. A failed open is
    // deliberately not fatal here: the job runs, retries, and fails with
    // the CorpusError message on the normal result stream.
    try {
      p.corpus = corpora_->get(p.job.graph.corpus);
      p.job.graph.corpus_digest = p.corpus->meta().content_digest;
    } catch (const storage::CorpusError&) {
    }
  }
  p.digest = p.job.digest();
  a.digest = p.digest;
  p.enqueued = Clock::now();
  p.token = std::make_shared<CancelToken>();
  p.gate = std::move(opts.gate);
  p.on_result = std::move(opts.on_result);
  if (job.deadline_ms != 0) {
    p.token->arm_deadline(p.enqueued +
                          std::chrono::milliseconds(job.deadline_ms));
  }
  // Cache consult happens at admission so the hit is pinned to this job
  // even if the entry is evicted before a worker dequeues it.
  p.cached = cache_.get(p.digest);

  const auto token = p.token;
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.try_push(std::move(p))) {
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    a.admitted = false;
    a.reason = queue_.closed() ? "shutting down" : "queue full";
    std::lock_guard<std::mutex> lock(metrics_.mu);
    ++metrics_.rejected;
    return a;
  }
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    live_[a.id] = token;
  }
  {
    std::lock_guard<std::mutex> lock(metrics_.mu);
    ++metrics_.admitted;
  }
  a.admitted = true;
  return a;
}

bool Service::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(live_mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  it->second->cancel();
  return true;
}

void Service::pause() { queue_.pause(); }

void Service::resume() { queue_.resume(); }

void Service::pause_session(SessionGate& gate) {
  gate.paused.store(true, std::memory_order_release);
}

void Service::resume_session(SessionGate& gate) {
  gate.paused.store(false, std::memory_order_release);
  queue_.poke();  // blocked workers re-scan for this session's jobs
}

void Service::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void Service::shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.close();  // rejects new pushes; overrides any pause
    if (driver_.joinable()) driver_.join();
  });
}

harness::Json Service::stats(bool counters_only) const {
  {
    std::lock_guard<std::mutex> lock(metrics_.mu);
    metrics_.queue_depth = queue_.size();
    metrics_.outstanding = outstanding_.load(std::memory_order_relaxed);
  }
  harness::Json j = metrics_to_json(metrics_, cache_.stats(), counters_only);
  if (corpora_ != nullptr) {
    harness::Json arr = harness::Json::array();
    for (const auto& info : corpora_->list()) {
      harness::Json c = harness::Json::object();
      c.add("name", info.name);
      c.add("vertices", info.vertices);
      c.add("edges", info.edges);
      c.add("file_bytes", info.file_bytes);
      c.add("open_mappings",
            static_cast<std::uint64_t>(std::max<long>(0, info.open_mappings)));
      arr.push_back(std::move(c));
    }
    j.add("corpora", std::move(arr));
  }
  return j;
}

void Service::worker_loop() {
  while (auto p = queue_.pop()) {
    run_one(*p);
  }
}

void Service::run_one(Pending& p) {
  JobResult r;
  r.id = p.id;
  r.digest = p.digest;
  r.algorithm = p.job.algorithm;
  try {
    p.token->check();  // queued-phase cancellation / deadline
    if (p.cached.has_value()) {
      r.status = "ok";
      r.cached = true;
      r.outcome = *p.cached;
    } else {
      const AlgorithmInfo* algo =
          AlgorithmRegistry::instance().find(p.job.algorithm);
      if (algo == nullptr) {
        throw JobSpecError("unknown algorithm '" + p.job.algorithm + "'");
      }
      Graph g;
      if (p.job.graph.family == "corpus") {
        if (p.corpus == nullptr) {
          if (corpora_ == nullptr) {
            throw JobSpecError(
                "family 'corpus' needs a service with a corpus directory "
                "(--corpus-dir)");
          }
          // Admission-time resolution failed; retry so the CorpusError
          // (missing file, failed validation) names the actual problem.
          p.corpus = corpora_->get(p.job.graph.corpus);
        }
        g = p.corpus->graph();  // zero-copy view, pinned to the mapping
      } else {
        g = build_graph(p.job.graph);
      }
      ExecContext exec;
      exec.engine = cfg_.job_engine;
      exec.threads = cfg_.job_threads;
      exec.cancel = p.token.get();
      std::unique_ptr<dist::Coordinator> coord;
      if (cfg_.job_engine == Network::Engine::kDist) {
        if (p.job.graph.family != "corpus") {
          throw JobSpecError(
              "engine 'dist' serves only family 'corpus' jobs (workers "
              "mmap the corpus file; generated graphs have no file to "
              "share)");
        }
        dist::CoordinatorOptions dopt;
        dopt.workers = cfg_.dist_workers;
        dopt.heartbeat_ms = cfg_.dist_heartbeat_ms;
        dopt.attach_timeout_ms = cfg_.dist_attach_timeout_ms;
        coord = std::make_unique<dist::Coordinator>(p.corpus->path(), dopt);
        exec.dist = coord.get();
      }
      r.outcome = algo->run(g, p.job, exec);
      p.token->check();  // a deadline that fired during the last round
      r.status = "ok";
      cache_.put(p.digest, r.outcome);
    }
  } catch (const JobCancelled& e) {
    r.status = e.deadline_missed() ? "deadline_missed" : "cancelled";
  } catch (const std::exception& e) {
    r.status = "failed";
    r.error = e.what();
  }
  emit(r, p);
}

void Service::emit(const JobResult& r, const Pending& p) {
  JobResult out = r;
  out.latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           p.enqueued)
          .count());
  {
    std::lock_guard<std::mutex> lock(metrics_.mu);
    if (out.status == "ok") {
      ++metrics_.completed;
    } else if (out.status == "failed") {
      ++metrics_.failed;
    } else if (out.status == "deadline_missed") {
      ++metrics_.deadline_missed;
    } else {
      ++metrics_.cancelled;
    }
    metrics_.latency[out.algorithm].add(out.latency_ns);
  }
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    live_.erase(out.id);
  }
  if (p.on_result) {
    p.on_result(out);
  } else if (on_result_) {
    on_result_(out);
  }
  // Decrement last: drain() returning guarantees the callback has run.
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    outstanding_.fetch_sub(1, std::memory_order_release);
  }
  drain_cv_.notify_all();
}

}  // namespace ldc::service
