// One event-loop protocol session: the non-blocking twin of the blocking
// serve() loop in protocol.cpp, designed to be multiplexed by the poll
// loop in event_loop.hpp over a *shared* Service.
//
// Responsibilities:
//  * Read framing: reassembles request lines across arbitrarily short
//    reads (the transport gives no framing guarantees beyond the byte
//    stream); a line longer than SessionLimits::max_line_bytes is a
//    typed error event and the excess is discarded up to the next
//    newline — hostile input never kills the session.
//  * Write buffering: every emitted line is appended to a per-session
//    output buffer; only the event-loop thread performs socket writes,
//    draining the buffer on writability. A write error (client gone)
//    discards buffered output and lets outstanding jobs finish silently.
//  * Session-local ids: submissions are numbered 1.. per session (the
//    same numbering a client sees from a dedicated blocking serve()), and
//    results are routed back through per-job callbacks — the shared
//    Service's global ids never leak to clients.
//  * Ordering invariants: the session mutex is held across
//    submit+admitted (a result emitted by a worker can never precede its
//    own admitted line) and across resume+resumed-ack (a result released
//    by the resume can never precede the ack). With one worker and the
//    pause/submit/resume/drain discipline, a session's full byte stream
//    is therefore identical whether it runs alone or multiplexed with
//    any number of other sessions.
//  * Asynchronous drain/shutdown: `drain` must not block the loop
//    thread, so it suspends request parsing until the session's
//    outstanding count hits zero (the last result emits "drained" and
//    resumes parsing). EOF and `shutdown` work the same way with "bye"
//    and session teardown at the end.
//
// Threading: on_readable/on_writable/tick/begin_shutdown run on the loop
// thread only. Result callbacks run on worker threads and only touch
// mutex-guarded state plus the wake hook. The session is shared_ptr-
// managed; per-job callbacks keep it alive until its last result lands.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ldc/service/service.hpp"

namespace ldc::service {

/// Per-session resource bounds (untrusted clients).
struct SessionLimits {
  std::size_t max_line_bytes = 1 << 20;  ///< longer request lines error out
  /// Output buffered for a slow reader before the session is declared
  /// dead (buffered lines dropped, connection torn down after its jobs
  /// finish). Keeps one stuck client from holding the server's memory.
  std::size_t max_outbuf_bytes = std::size_t{16} << 20;
};

class EventSession : public std::enable_shared_from_this<EventSession> {
 public:
  /// Takes ownership of `fd` (an already-connected stream socket; made
  /// non-blocking here). `wake` is invoked — possibly from worker
  /// threads — whenever output becomes available or a state transition
  /// needs the loop's attention; it must be callable until the session
  /// is destroyed.
  EventSession(int fd, Service& service, SessionLimits limits,
               std::function<void()> wake);
  ~EventSession();

  EventSession(const EventSession&) = delete;
  EventSession& operator=(const EventSession&) = delete;

  int fd() const { return fd_; }

  // ---- event-loop thread interface ----------------------------------
  void on_readable();   ///< drain the socket, reassemble + handle lines
  void on_writable();   ///< flush as much buffered output as the fd takes
  void tick();          ///< resume parsing after a worker unblocked it
  void begin_shutdown();///< server stop: behave as if the client sent EOF

  bool wants_read() const;
  bool wants_write() const;
  /// True once the session can be reaped: goodbye flushed, or the
  /// connection is dead and no jobs are outstanding.
  bool finished() const;

  // ---- observability (tests) ----------------------------------------
  std::uint64_t outstanding() const;

 private:
  void pump();                              // parse complete inbuf lines
  void handle_line(const std::string& line);
  void do_submit(const harness::Json& req);
  void do_cancel(const harness::Json& req);
  void do_stats(const harness::Json& req);
  void enter_input_done();                  // EOF/shutdown/dead-write path
  void on_result(const JobResult& r, std::uint64_t local_id,
                 const std::string& tag);   // worker threads
  void append_locked(const harness::Json& event);  // mu_ held
  void error_event(std::string message);
  bool parse_blocked() const;

  const int fd_;
  Service& service_;
  const SessionLimits limits_;
  const std::function<void()> wake_;
  const std::shared_ptr<SessionGate> gate_;

  // Read-side state: loop thread only, no lock.
  std::string inbuf_;
  bool discarding_line_ = false;  ///< oversized line: drop until newline
  bool read_eof_ = false;

  // Cross-thread state.
  mutable std::mutex mu_;
  std::string outbuf_;            ///< framed lines awaiting the socket
  std::size_t out_off_ = 0;       ///< consumed prefix of outbuf_
  std::uint64_t next_local_ = 1;  ///< session-local submission ids
  std::unordered_map<std::uint64_t, std::uint64_t> local_to_global_;
  std::uint64_t outstanding_ = 0; ///< admitted, result not yet appended
  bool drain_pending_ = false;    ///< "drained" owed once outstanding==0
  bool input_done_ = false;       ///< no more requests (EOF/shutdown/dead)
  bool bye_queued_ = false;
  bool write_dead_ = false;       ///< client unreachable; output discarded
  bool resume_parse_ = false;     ///< tick() must pump (drain finished)
};

}  // namespace ldc::service
