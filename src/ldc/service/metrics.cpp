#include "ldc/service/metrics.hpp"

#include <cmath>

namespace ldc::service {

std::uint64_t LatencyHistogram::percentile_ns(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest-rank: the q-quantile sample has 1-based rank ceil(q * count),
  // clamped to [1, count]. (floor(q * (count-1)) + 1 under-reports upper
  // quantiles: p99 of two samples would pick rank 1, the minimum.)
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * double(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return i >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << (i + 1)) - 1;
    }
  }
  return ~std::uint64_t{0};
}

harness::Json LatencyHistogram::to_json() const {
  using harness::Json;
  Json j = Json::object();
  j.add("count", count_);
  const double mean_ms =
      count_ == 0 ? 0.0 : double(sum_ns_) / double(count_) / 1e6;
  j.add("mean_ms", mean_ms);
  j.add("p50_ms", double(percentile_ns(0.50)) / 1e6);
  j.add("p95_ms", double(percentile_ns(0.95)) / 1e6);
  j.add("p99_ms", double(percentile_ns(0.99)) / 1e6);
  return j;
}

harness::Json metrics_to_json(const ServiceMetrics& m,
                              const ResultCache::Stats& cache,
                              bool counters_only) {
  using harness::Json;
  std::lock_guard<std::mutex> lock(m.mu);
  Json j = Json::object();
  j.add("submitted", m.submitted);
  j.add("admitted", m.admitted);
  j.add("rejected", m.rejected);
  j.add("completed", m.completed);
  j.add("failed", m.failed);
  j.add("cancelled", m.cancelled);
  j.add("deadline_missed", m.deadline_missed);
  j.add("queue_depth", std::uint64_t{m.queue_depth});
  j.add("outstanding", std::uint64_t{m.outstanding});

  Json c = Json::object();
  c.add("hits", cache.hits);
  c.add("misses", cache.misses);
  c.add("insertions", cache.insertions);
  c.add("evictions", cache.evictions);
  c.add("entries", std::uint64_t{cache.entries});
  c.add("bytes", std::uint64_t{cache.bytes});
  c.add("byte_budget", std::uint64_t{cache.byte_budget});
  const std::uint64_t lookups = cache.hits + cache.misses;
  c.add("hit_rate",
        lookups == 0 ? 0.0 : double(cache.hits) / double(lookups));
  j.add("cache", std::move(c));

  if (!counters_only) {
    Json lat = Json::object();
    for (const auto& [algo, hist] : m.latency) {
      lat.add(algo, hist.to_json());
    }
    j.add("latency", std::move(lat));
  }
  return j;
}

}  // namespace ldc::service
