// Bounded FIFO admission queue with backpressure, pause gating and
// graceful close — the head of the service pipeline.
//
// Semantics:
//  * try_push: non-blocking; false when the queue is at capacity or
//    closed. Admission control *is* this rejection — the caller reports
//    the reason to the client instead of queueing unboundedly.
//  * pop: blocks until an item is deliverable. While paused, delivery is
//    gated (items accumulate; deterministic-burst scripts use this to
//    decouple admission order from worker timing). close() overrides the
//    pause so a shutdown always drains. Returns nullopt only when closed
//    and empty — the worker-loop exit condition.
//  * Strict FIFO: pop order equals successful push order.
//  * Optional per-item gate: a predicate supplied at construction that
//    decides whether an item is currently deliverable (the event-loop
//    frontend uses it for session-scoped pause). Pop delivers the oldest
//    *deliverable* item, so FIFO holds within every gate class. Gate
//    state lives outside the queue; flip it and then poke() so blocked
//    pops re-scan. close() overrides gates exactly like it overrides
//    pause — shutdown must always drain.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

namespace ldc::service {

template <typename T>
class BoundedQueue {
 public:
  /// Returns true when the item may be delivered now. Called with the
  /// queue mutex held, so it must be cheap and lock-free (an atomic read).
  using Gate = std::function<bool(const T&)>;

  explicit BoundedQueue(std::size_t capacity, Gate gate = nullptr)
      : capacity_(capacity), gate_(std::move(gate)) {}

  /// Enqueues unless full or closed; never blocks.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Dequeues the oldest deliverable item; blocks while nothing is
  /// deliverable (empty, paused, or every queued item gated).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (closed_) {  // gates and pause no longer apply: drain in FIFO order
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
      }
      if (!paused_) {
        for (auto it = items_.begin(); it != items_.end(); ++it) {
          if (!gate_ || gate_(*it)) {
            T item = std::move(*it);
            items_.erase(it);
            return item;
          }
        }
      }
      cv_.wait(lock);
    }
  }

  /// Gates delivery (admission continues). Idempotent.
  void pause() {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
  }

  void resume() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      paused_ = false;
    }
    cv_.notify_all();
  }

  /// Wakes every blocked pop so it re-evaluates the gate predicate. Call
  /// after externally-owned gate state changes (e.g. a session resume).
  void poke() { cv_.notify_all(); }

  /// Rejects all further pushes; queued items still drain (close beats
  /// pause and gates, so a paused service can always shut down).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  const Gate gate_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool paused_ = false;
  bool closed_ = false;
};

}  // namespace ldc::service
