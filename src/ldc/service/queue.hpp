// Bounded FIFO admission queue with backpressure, pause gating and
// graceful close — the head of the service pipeline.
//
// Semantics:
//  * try_push: non-blocking; false when the queue is at capacity or
//    closed. Admission control *is* this rejection — the caller reports
//    the reason to the client instead of queueing unboundedly.
//  * pop: blocks until an item is deliverable. While paused, delivery is
//    gated (items accumulate; deterministic-burst scripts use this to
//    decouple admission order from worker timing). close() overrides the
//    pause so a shutdown always drains. Returns nullopt only when closed
//    and empty — the worker-loop exit condition.
//  * Strict FIFO: pop order equals successful push order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ldc::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues unless full or closed; never blocks.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Dequeues the oldest item; blocks while empty-but-open or paused.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return (!items_.empty() && (!paused_ || closed_)) ||
             (closed_ && items_.empty());
    });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Gates delivery (admission continues). Idempotent.
  void pause() {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
  }

  void resume() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      paused_ = false;
    }
    cv_.notify_all();
  }

  /// Rejects all further pushes; queued items still drain (close beats
  /// pause, so a paused service can always shut down).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool paused_ = false;
  bool closed_ = false;
};

}  // namespace ldc::service
