// Service observability: counters, gauges and per-algorithm latency
// histograms, exported through the harness JSON writer so `stats`
// responses and experiment rows share one formatting path.
//
// Latencies are wall-clock and therefore non-deterministic; the JSON
// export takes a `counters_only` flag so deterministic test scripts can
// request a stable snapshot (counters + cache stats, no timings).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "ldc/harness/json.hpp"
#include "ldc/service/cache.hpp"

namespace ldc::service {

/// Power-of-two-bucketed latency histogram over nanoseconds. Bucket i
/// counts samples in [2^i, 2^(i+1)); percentiles are read off the bucket
/// upper bounds, which is exact enough for p50/p95/p99 reporting and
/// needs no per-sample storage.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t ns) {
    ++buckets_[bucket_of(ns)];
    ++count_;
    sum_ns_ += ns;
  }

  std::uint64_t count() const { return count_; }

  /// Upper bound (ns) of the bucket holding the q-quantile sample;
  /// 0 when empty. q in [0, 1].
  std::uint64_t percentile_ns(double q) const;

  /// {"count":N,"mean_ms":..,"p50_ms":..,"p95_ms":..,"p99_ms":..}
  harness::Json to_json() const;

 private:
  static int bucket_of(std::uint64_t ns) {
    int b = 0;
    while (ns > 1 && b < kBuckets - 1) {
      ns >>= 1;
      ++b;
    }
    return b;
  }

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
};

/// One service instance's lifetime counters and gauges. Mutated under an
/// internal mutex by the admission path and the workers; `snapshot`-style
/// reads go through to_json.
struct ServiceMetrics {
  // Counters (monotone).
  std::uint64_t submitted = 0;        ///< submit ops seen (admitted + rejected)
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;         ///< backpressure or closed-queue rejects
  std::uint64_t completed = 0;        ///< jobs that produced an outcome
  std::uint64_t failed = 0;           ///< jobs whose body threw (spec/io/run)
  std::uint64_t cancelled = 0;        ///< explicit cancel honoured
  std::uint64_t deadline_missed = 0;  ///< deadline fired before completion
  // Cache counters live in ResultCache::Stats and are exported alongside.

  // Gauges (sampled at export time by the service).
  std::size_t queue_depth = 0;
  std::size_t outstanding = 0;  ///< admitted, result not yet emitted

  /// Completion latency (admission to result callback) per algorithm id.
  std::map<std::string, LatencyHistogram> latency;

  /// Guards every field above.
  mutable std::mutex mu;
};

/// Serializes a consistent snapshot. With counters_only, omits the
/// latency histograms and any wall-clock-derived field so the output is
/// deterministic for scripted runs; cache stats ride along either way.
harness::Json metrics_to_json(const ServiceMetrics& m,
                              const ResultCache::Stats& cache,
                              bool counters_only);

}  // namespace ldc::service
