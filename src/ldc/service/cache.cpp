#include "ldc/service/cache.hpp"

namespace ldc::service {

std::optional<JobOutcome> ResultCache::get(std::uint64_t digest) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(digest);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->outcome;
}

void ResultCache::put(std::uint64_t digest, const JobOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ < kEntryBytes) return;  // budget 0 (or absurdly small) = off
  auto it = index_.find(digest);
  if (it != index_.end()) {
    it->second->outcome = outcome;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (!lru_.empty() && (lru_.size() + 1) * kEntryBytes > budget_) {
    index_.erase(lru_.back().digest);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{digest, outcome});
  index_[digest] = lru_.begin();
  ++insertions_;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = lru_.size() * kEntryBytes;
  s.byte_budget = budget_;
  return s;
}

}  // namespace ldc::service
