#include "ldc/service/algorithms.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "ldc/baselines/greedy.hpp"
#include "ldc/baselines/kw_reduction.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/linial/linial.hpp"

namespace ldc::service {
namespace {

/// Fills the outcome fields every network-driven body shares.
JobOutcome finish(const Graph& g, const Network& net, const Coloring& phi,
                  bool valid, std::uint64_t palette) {
  JobOutcome out;
  out.valid = valid;
  out.n = g.n();
  out.colors = colors_used(phi);
  out.palette = palette;
  out.rounds = net.metrics().rounds;
  out.messages = net.metrics().messages;
  out.total_bits = net.metrics().total_bits;
  out.color_digest = coloring_digest(phi);
  return out;
}

/// The (Delta+1)-list instance every built-in proper-coloring body solves.
LdcInstance standard_instance(const Graph& g) {
  return delta_plus_one_instance(g);
}

void register_builtins(AlgorithmRegistry& r) {
  r.add({
      "greedy",
      "sequential first-fit on the (Delta+1) instance (ground truth)",
      [](const Graph& g, const Job&, const ExecContext& exec) {
        exec.check();
        const LdcInstance inst = standard_instance(g);
        const auto phi = baselines::greedy_list_coloring(inst);
        exec.check();
        JobOutcome out;
        out.n = g.n();
        out.palette = g.max_degree() + 1;
        if (phi.has_value()) {
          out.valid = validate_proper(g, *phi).ok &&
                      validate_membership(inst, *phi).ok;
          out.colors = colors_used(*phi);
          out.color_digest = coloring_digest(*phi);
        }
        return out;
      },
  });
  r.add({
      "luby",
      "randomized Luby/Johansson list coloring (seeded)",
      [](const Graph& g, const Job& job, const ExecContext& exec) {
        const LdcInstance inst = standard_instance(g);
        Network net(g);
        exec.configure(net);
        baselines::LubyOptions opt;
        opt.seed = job.seed;
        const auto res = baselines::luby_list_coloring(net, inst, opt);
        const bool valid = res.success && validate_ldc(inst, res.phi).ok;
        return finish(g, net, res.phi, valid, g.max_degree() + 1);
      },
  });
  r.add({
      "linial",
      "Linial's O(Delta^2)-coloring from the IDs (log* n rounds)",
      [](const Graph& g, const Job&, const ExecContext& exec) {
        Network net(g);
        exec.configure(net);
        const auto res = linial::color(net);
        const bool valid = validate_proper(g, res.phi).ok;
        return finish(g, net, res.phi, valid, res.palette);
      },
  });
  r.add({
      "kw",
      "Linial then Kuhn-Wattenhofer reduction to Delta+1 colors",
      [](const Graph& g, const Job&, const ExecContext& exec) {
        Network net(g);
        exec.configure(net);
        const auto res = baselines::linial_then_kw(net);
        const bool valid = validate_proper(g, res.phi).ok;
        return finish(g, net, res.phi, valid, res.palette);
      },
  });
  r.add({
      "d1lc",
      "Theorem 1.4 pipeline: deterministic (degree+1)-list coloring",
      [](const Graph& g, const Job& job, const ExecContext& exec) {
        // param "reduction_levels" tunes the Corollary 4.2 recursion; the
        // default mirrors the pipeline's own default.
        const LdcInstance inst = standard_instance(g);
        Network net(g);
        exec.configure(net);
        d1lc::PipelineOptions opt;
        opt.reduction_levels = static_cast<std::uint32_t>(
            job.param_or("reduction_levels", opt.reduction_levels));
        const auto res = d1lc::color(net, inst, opt);
        const bool valid = res.valid && validate_proper(g, res.phi).ok;
        return finish(g, net, res.phi, valid, res.initial_palette);
      },
  });
}

}  // namespace

void ExecContext::configure(Network& net) const {
  if (engine == Network::Engine::kDist) {
    if (dist == nullptr) {
      throw std::invalid_argument(
          "ExecContext: engine 'dist' needs a DistBackend (corpus jobs "
          "only — the coordinator is built over the corpus file)");
    }
    net.attach_dist(dist);
  } else {
    net.set_engine(engine, threads);
  }
  if (cancel != nullptr) {
    const CancelToken* token = cancel;
    net.set_round_callback([token](std::uint64_t) { token->check(); });
  }
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void AlgorithmRegistry::add(AlgorithmInfo info) {
  if (info.name.empty()) {
    throw std::invalid_argument("AlgorithmRegistry: empty name");
  }
  if (!info.run) {
    throw std::invalid_argument("AlgorithmRegistry: missing run callback");
  }
  if (find(info.name) != nullptr) {
    throw std::invalid_argument("AlgorithmRegistry: duplicate '" +
                                info.name + "'");
  }
  algorithms_.push_back(std::move(info));
}

const AlgorithmInfo* AlgorithmRegistry::find(std::string_view name) const {
  for (const auto& a : algorithms_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

std::vector<const AlgorithmInfo*> AlgorithmRegistry::all() const {
  std::vector<const AlgorithmInfo*> out;
  out.reserve(algorithms_.size());
  for (const auto& a : algorithms_) out.push_back(&a);
  std::sort(out.begin(), out.end(),
            [](const AlgorithmInfo* a, const AlgorithmInfo* b) {
              return a->name < b->name;
            });
  return out;
}

std::uint64_t coloring_digest(const std::vector<Color>& phi) {
  return fnv1a64(phi.data(), phi.size() * sizeof(Color));
}

}  // namespace ldc::service
