#include "ldc/service/job.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "ldc/graph/generators.hpp"
#include "ldc/graph/io.hpp"

namespace ldc::service {
namespace {

// The service builds a fresh graph per job, so generator sizes bound both
// memory and admission-to-first-round latency; a wire-supplied "n" beyond
// this is a spec error, not an allocation attempt.
constexpr std::uint64_t kMaxJobNodes = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxIdBits = 40;

/// Canonical double rendering for digests: shortest round-trip form, so
/// 0.1 always digests identically.
std::string canon_double(double v) {
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

void require_range(const char* field, std::uint64_t value, std::uint64_t lo,
                   std::uint64_t hi) {
  if (value < lo || value > hi) {
    throw JobSpecError(std::string("job spec: '") + field + "' = " +
                       std::to_string(value) + " outside [" +
                       std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
}

std::uint64_t get_uint(const harness::Json& obj, const char* field,
                       std::uint64_t dflt) {
  const harness::Json* v = obj.find(field);
  if (v == nullptr) return dflt;
  try {
    return v->as_uint();
  } catch (const harness::JsonError&) {
    throw JobSpecError(std::string("job spec: '") + field +
                       "' must be a non-negative integer");
  }
}

double get_double(const harness::Json& obj, const char* field, double dflt) {
  const harness::Json* v = obj.find(field);
  if (v == nullptr) return dflt;
  try {
    return v->as_double();
  } catch (const harness::JsonError&) {
    throw JobSpecError(std::string("job spec: '") + field +
                       "' must be a number");
  }
}

std::string get_string(const harness::Json& obj, const char* field) {
  const harness::Json* v = obj.find(field);
  if (v == nullptr) {
    throw JobSpecError(std::string("job spec: missing '") + field + "'");
  }
  try {
    return v->as_string();
  } catch (const harness::JsonError&) {
    throw JobSpecError(std::string("job spec: '") + field +
                       "' must be a string");
  }
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t seed) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

Graph build_graph(const GraphSpec& spec) {
  const auto& f = spec.family;
  if (f == "corpus") {
    // Corpus graphs are resolved by the service's registry (the spec alone
    // cannot name a directory); reaching this builder means none exists.
    throw JobSpecError(
        "job spec: family 'corpus' needs a service with a corpus "
        "directory (--corpus-dir)");
  }
  if (f != "file") require_range("n", spec.n, 1, kMaxJobNodes);
  require_range("id_bits", spec.id_bits, 0, kMaxIdBits);
  Graph g = [&]() -> Graph {
    if (f == "ring") {
      require_range("n", spec.n, 3, kMaxJobNodes);
      return gen::ring(spec.n);
    }
    if (f == "path") return gen::path(spec.n);
    if (f == "clique") {
      require_range("n", spec.n, 1, 4096);  // K_n is dense: n^2 edges
      return gen::clique(spec.n);
    }
    if (f == "gnp") {
      if (!(spec.p >= 0.0 && spec.p <= 1.0)) {
        throw JobSpecError("job spec: 'p' must be in [0, 1]");
      }
      require_range("n", spec.n, 1, 1u << 14);  // expected n^2 p edges
      return gen::gnp(spec.n, spec.p, spec.seed);
    }
    if (f == "regular") {
      require_range("d", spec.d, 1, spec.n - 1);
      if ((static_cast<std::uint64_t>(spec.n) * spec.d) % 2 != 0) {
        // The bench helper silently bumps n; a wire client must instead
        // learn that no such graph exists.
        throw JobSpecError("job spec: d-regular graph needs n*d even");
      }
      return gen::random_regular(spec.n, spec.d, spec.seed);
    }
    if (f == "torus") {
      require_range("w", spec.w, 3, 4096);
      require_range("h", spec.h, 3, 4096);
      return gen::torus(spec.w, spec.h);
    }
    if (f == "tree") return gen::random_tree(spec.n, spec.seed);
    if (f == "power_law") {
      if (!(spec.alpha > 2.0)) {
        throw JobSpecError("job spec: 'alpha' must be > 2");
      }
      if (!(spec.avg_deg > 0.0 &&
            spec.avg_deg <= static_cast<double>(spec.n))) {
        throw JobSpecError("job spec: 'avg_deg' must be in (0, n]");
      }
      return gen::power_law(spec.n, spec.alpha, spec.avg_deg, spec.seed);
    }
    if (f == "file") {
      if (spec.path.empty()) {
        throw JobSpecError("job spec: family 'file' requires 'path'");
      }
      return io::load_edge_list(spec.path);
    }
    throw JobSpecError("job spec: unknown graph family '" + f + "'");
  }();
  if (spec.id_bits > 0) {
    if ((std::uint64_t{1} << spec.id_bits) < g.n()) {
      throw JobSpecError("job spec: id space 2^" +
                         std::to_string(spec.id_bits) + " smaller than n");
    }
    gen::scramble_ids(g, std::uint64_t{1} << spec.id_bits, spec.seed + 101);
  }
  return g;
}

void Job::normalize() {
  std::sort(params.begin(), params.end());
  const auto dup = std::adjacent_find(
      params.begin(), params.end(),
      [](const auto& a, const auto& b) { return a.first == b.first; });
  if (dup != params.end()) {
    throw JobSpecError("job spec: duplicate param '" + dup->first + "'");
  }
}

std::uint64_t Job::param_or(const std::string& key,
                            std::uint64_t dflt) const {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return dflt;
}

std::string Job::canonical() const {
  std::string s = "algo=" + algorithm + "|seed=" + std::to_string(seed) +
                  "|graph=" + graph.family;
  if (graph.family == "corpus") {
    // The content digest — not the name — is the graph's identity, so a
    // regenerated corpus under the same name never serves stale cache
    // entries (and an identical corpus under a new name still hits).
    s += ",corpus=" + graph.corpus +
         ",content=" + std::to_string(graph.corpus_digest);
  } else if (graph.family == "file") {
    s += ",path=" + graph.path;
  } else {
    s += ",n=" + std::to_string(graph.n) + ",d=" + std::to_string(graph.d) +
         ",w=" + std::to_string(graph.w) + ",h=" + std::to_string(graph.h) +
         ",p=" + canon_double(graph.p) +
         ",alpha=" + canon_double(graph.alpha) +
         ",avg_deg=" + canon_double(graph.avg_deg) +
         ",gseed=" + std::to_string(graph.seed);
  }
  s += ",id_bits=" + std::to_string(graph.id_bits);
  for (const auto& [k, v] : params) {
    s += "|" + k + "=" + std::to_string(v);
  }
  return s;
}

std::uint64_t Job::digest() const {
  const std::string c = canonical();
  return fnv1a64(c.data(), c.size());
}

Job job_from_json(const harness::Json& j) {
  if (j.kind() != harness::Json::Kind::kObject) {
    throw JobSpecError("job spec: expected an object");
  }
  Job job;
  job.algorithm = get_string(j, "algorithm");
  job.seed = get_uint(j, "seed", 1);
  job.deadline_ms = get_uint(j, "deadline_ms", 0);

  const harness::Json* g = j.find("graph");
  if (g == nullptr || g->kind() != harness::Json::Kind::kObject) {
    throw JobSpecError("job spec: missing 'graph' object");
  }
  job.graph.family = get_string(*g, "family");
  job.graph.n = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(get_uint(*g, "n", 0), UINT32_MAX));
  job.graph.d = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(get_uint(*g, "d", 0), UINT32_MAX));
  job.graph.w = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(get_uint(*g, "w", 0), UINT32_MAX));
  job.graph.h = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(get_uint(*g, "h", 0), UINT32_MAX));
  job.graph.p = get_double(*g, "p", 0.0);
  job.graph.alpha = get_double(*g, "alpha", 0.0);
  job.graph.avg_deg = get_double(*g, "avg_deg", 0.0);
  job.graph.seed = get_uint(*g, "seed", 1);
  job.graph.id_bits = get_uint(*g, "id_bits", 0);
  if (const harness::Json* path = g->find("path")) {
    try {
      job.graph.path = path->as_string();
    } catch (const harness::JsonError&) {
      throw JobSpecError("job spec: 'path' must be a string");
    }
  }
  if (const harness::Json* corpus = g->find("corpus")) {
    try {
      job.graph.corpus = corpus->as_string();
    } catch (const harness::JsonError&) {
      throw JobSpecError("job spec: 'corpus' must be a string");
    }
  }
  if (job.graph.family == "corpus") {
    if (job.graph.corpus.empty()) {
      throw JobSpecError("job spec: family 'corpus' requires 'corpus'");
    }
    if (job.graph.id_bits != 0) {
      throw JobSpecError(
          "job spec: 'id_bits' cannot rescramble a corpus graph (its ids "
          "are baked into the file)");
    }
  }

  if (const harness::Json* params = j.find("params")) {
    if (params->kind() != harness::Json::Kind::kObject) {
      throw JobSpecError("job spec: 'params' must be an object");
    }
    for (const auto& [key, value] : params->as_object()) {
      try {
        job.params.emplace_back(key, value.as_uint());
      } catch (const harness::JsonError&) {
        throw JobSpecError("job spec: param '" + key +
                           "' must be a non-negative integer");
      }
    }
  }
  job.normalize();
  return job;
}

harness::Json job_to_json(const Job& job) {
  using harness::Json;
  Json g = Json::object();
  g.add("family", job.graph.family);
  if (job.graph.family == "corpus") {
    g.add("corpus", job.graph.corpus);
  } else if (job.graph.family == "file") {
    g.add("path", job.graph.path);
  } else {
    if (job.graph.n != 0) g.add("n", std::uint64_t{job.graph.n});
    if (job.graph.d != 0) g.add("d", std::uint64_t{job.graph.d});
    if (job.graph.w != 0) g.add("w", std::uint64_t{job.graph.w});
    if (job.graph.h != 0) g.add("h", std::uint64_t{job.graph.h});
    if (job.graph.p != 0.0) g.add("p", job.graph.p);
    if (job.graph.alpha != 0.0) g.add("alpha", job.graph.alpha);
    if (job.graph.avg_deg != 0.0) g.add("avg_deg", job.graph.avg_deg);
    g.add("seed", job.graph.seed);
  }
  if (job.graph.id_bits != 0) g.add("id_bits", job.graph.id_bits);

  Json j = Json::object();
  j.add("algorithm", job.algorithm);
  j.add("graph", std::move(g));
  j.add("seed", job.seed);
  if (job.deadline_ms != 0) j.add("deadline_ms", job.deadline_ms);
  if (!job.params.empty()) {
    Json params = Json::object();
    for (const auto& [k, v] : job.params) params.add(k, v);
    j.add("params", std::move(params));
  }
  return j;
}

}  // namespace ldc::service
