// Job specification for the coloring service.
//
// A Job is the unit of admission: a graph source (a named generator spec,
// or a serialized edge-list file), an algorithm id from the service's
// AlgorithmRegistry, integer parameters, a seed, and an optional deadline.
// Every job has a deterministic canonical digest — a pure function of the
// fields that determine its *result* (the deadline is excluded: it decides
// whether the job runs, not what it computes) — which keys the result
// cache and lets clients correlate resubmissions.
//
// Job specs arrive over the wire, so parsing is strict: unknown fields,
// out-of-range sizes and unknown families/algorithms all throw JobSpecError
// with the offending field named.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ldc/graph/graph.hpp"
#include "ldc/harness/json.hpp"

namespace ldc::service {

/// Malformed job specification (untrusted input; never a crash).
class JobSpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Where the job's graph comes from. `family` selects a deterministic
/// generator from ldc::gen (sized by the fields that family uses),
/// "file" to load an edge list from `path` (the untrusted-input path —
/// io::read_edge_list enforces its own limits), or "corpus" to run over
/// a preloaded mmap-backed corpus named by `corpus` (requires a service
/// configured with a corpus directory; the graph is shared read-only
/// across workers, never rebuilt per job).
struct GraphSpec {
  std::string family;        ///< ring|path|clique|gnp|regular|torus|tree|
                             ///< power_law|file|corpus
  std::uint32_t n = 0;       ///< node count (generator families)
  std::uint32_t d = 0;       ///< degree (regular)
  std::uint32_t w = 0;       ///< torus width
  std::uint32_t h = 0;       ///< torus height
  double p = 0.0;            ///< edge probability (gnp)
  double alpha = 0.0;        ///< power-law exponent
  double avg_deg = 0.0;      ///< power-law expected average degree
  std::uint64_t seed = 1;    ///< generator seed
  std::uint64_t id_bits = 0; ///< > 0: scramble ids into [0, 2^id_bits)
  std::string path;          ///< edge-list file (family == "file")
  std::string corpus;        ///< corpus name (family == "corpus")
  /// Content digest of the resolved corpus. Never parsed from the wire:
  /// the service fills it in at admission so the job digest — and with it
  /// the result cache — is keyed by the corpus *content*, not its name.
  std::uint64_t corpus_digest = 0;
};

/// Instantiates the spec; throws JobSpecError on an invalid spec and
/// propagates io errors for the "file" family.
Graph build_graph(const GraphSpec& spec);

struct Job {
  GraphSpec graph;
  std::string algorithm;          ///< AlgorithmRegistry id
  std::uint64_t seed = 1;         ///< algorithm seed (randomized solvers)
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline
  /// Algorithm parameters, canonicalized to sorted unique keys by
  /// normalize()/job_from_json. Integer-valued by design so the canonical
  /// form (and therefore the digest) never depends on float formatting.
  std::vector<std::pair<std::string, std::uint64_t>> params;

  /// Sorts params by key; throws JobSpecError on duplicate keys.
  void normalize();

  /// Parameter lookup with default (params must be normalized).
  std::uint64_t param_or(const std::string& key, std::uint64_t dflt) const;

  /// Canonical text form — the digest preimage. Covers graph spec,
  /// algorithm, seed and normalized params; excludes the deadline. For
  /// family == "file" the *path* stands in for the graph (the file must
  /// not change under a running service for cache hits to be meaningful).
  std::string canonical() const;

  /// FNV-1a 64 of canonical().
  std::uint64_t digest() const;
};

/// Parses a job from its wire form; throws JobSpecError naming the field
/// on any malformed, missing or out-of-range input. The result is
/// normalized.
Job job_from_json(const harness::Json& j);

/// Wire form round-trip (used by clients and the protocol tests).
harness::Json job_to_json(const Job& job);

/// FNV-1a 64 over bytes — the digest primitive shared by job digests and
/// coloring digests.
std::uint64_t fnv1a64(const void* data, std::size_t len,
                      std::uint64_t seed = 14695981039346656037ull);

}  // namespace ldc::service
