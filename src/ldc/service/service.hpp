// The job-serving subsystem: bounded admission -> worker pool -> result
// cache, with cooperative cancellation and deadline enforcement at round
// boundaries.
//
// Flow: submit() parses nothing (it takes a parsed Job), assigns a
// monotone id, consults the result cache, and either rejects (queue full
// or shut down — the backpressure signal) or enqueues a Pending entry.
// Cache hits are NOT answered inline: they ride through the queue like
// any job and are emitted by a worker in FIFO position, so admission
// control and emission order treat hits and misses uniformly (this is
// what makes scripted runs deterministic at one worker). Workers pop
// entries, honour cancellation/deadlines, run the algorithm via the
// registry, feed the cache, and invoke the result callback.
//
// Thread-nesting policy (documented contract, exercised in test_service):
// the pool runs WHOLE jobs concurrently, one lane per job. A job may
// itself request the parallel engine (config job_engine/job_threads);
// each Network owns its private ThreadPool, so nesting is safe but
// multiplies live threads (workers * job_threads) — the deployment
// default is therefore parallel jobs with a serial engine, or one worker
// with a parallel engine, not both.
//
// Determinism: with workers == 1 and a script that separates bursts with
// drain(), the full result stream (ids, order, every field) is a pure
// function of the script. With workers > 1 the *set* of results is
// unchanged; only interleaving varies. Latencies are the one exception,
// which is why they live only in the stats export (counters_only hides
// them).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "ldc/runtime/network.hpp"
#include "ldc/runtime/thread_pool.hpp"
#include "ldc/service/algorithms.hpp"
#include "ldc/service/cache.hpp"
#include "ldc/service/cancel.hpp"
#include "ldc/service/job.hpp"
#include "ldc/service/metrics.hpp"
#include "ldc/service/queue.hpp"
#include "ldc/storage/registry.hpp"

namespace ldc::service {

struct ServiceConfig {
  std::size_t workers = 1;         ///< pool lanes; 0 = default_thread_count
  std::size_t queue_capacity = 64; ///< admission bound (backpressure beyond)
  std::size_t cache_bytes = 64 * 1024;  ///< result-cache budget; 0 = off
  Network::Engine job_engine = Network::Engine::kSerial;
  std::size_t job_threads = 1;     ///< engine lanes per job (nesting policy)
  /// Non-empty: serve family == "corpus" jobs from <dir>/<name>.ldcg via
  /// a shared CorpusRegistry (each corpus mapped once, workers share it).
  std::string corpus_dir;
  /// Engine::kDist knobs (corpus jobs only: the per-job coordinator
  /// spawns its shard workers over the job's corpus file). 0 workers
  /// resolves via LDC_DIST_WORKERS with the hardware fallback.
  std::size_t dist_workers = 0;
  std::uint64_t dist_heartbeat_ms = 30000;
  std::uint64_t dist_attach_timeout_ms = 10000;
};

/// Outcome of a submit(): either an assigned id or a rejection reason.
struct Admission {
  bool admitted = false;
  std::uint64_t id = 0;       ///< assigned either way (correlates rejects)
  std::string reason;         ///< non-empty iff rejected
  /// The job's canonical digest as the service keyed it — for corpus jobs
  /// this includes the resolved corpus *content* digest, which the client
  /// cannot compute itself; frontends must echo this, not job.digest().
  std::uint64_t digest = 0;
};

/// Everything a client learns about one finished job.
struct JobResult {
  std::uint64_t id = 0;
  std::uint64_t digest = 0;
  std::string algorithm;
  std::string status;         ///< ok | failed | cancelled | deadline_missed
  std::string error;          ///< non-empty iff status == failed
  bool cached = false;        ///< outcome came from the result cache
  JobOutcome outcome;         ///< meaningful iff status == ok
  std::uint64_t latency_ns = 0;  ///< admission -> emission (wall clock)
};

/// Session-scoped delivery gate: while paused, jobs submitted under this
/// gate stay queued (admission continues — backpressure semantics are
/// unchanged) but are skipped by workers. One frontend session owns one
/// gate; flipping it never affects other sessions' jobs, which is what
/// lets many multiplexed sessions script deterministic bursts over a
/// *shared* worker pool. Flip via Service::pause_session/resume_session
/// so blocked workers are woken to re-scan.
struct SessionGate {
  std::atomic<bool> paused{false};
};

/// Per-submit options for multi-session frontends.
struct SubmitOptions {
  /// Session delivery gate; nullptr = always deliverable.
  std::shared_ptr<SessionGate> gate;
  /// Overrides the service-wide result callback for this job (used to
  /// route results back to the owning session). Same threading contract
  /// as the constructor callback.
  std::function<void(const JobResult&)> on_result;
};

class Service {
 public:
  using ResultCallback = std::function<void(const JobResult&)>;
  using Clock = std::chrono::steady_clock;

  /// Starts the worker pool immediately. The callback is invoked from
  /// worker threads, one call at a time per job but concurrently across
  /// jobs when workers > 1 — the callback must be thread-safe.
  Service(ServiceConfig cfg, ResultCallback on_result);

  /// Callback-less variant for frontends that route every result through
  /// per-submit callbacks (SubmitOptions::on_result). A job submitted
  /// without its own callback is still run; its result is dropped.
  explicit Service(ServiceConfig cfg) : Service(std::move(cfg), nullptr) {}

  /// Implies shutdown(): drains admitted jobs, joins workers.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admission. Never blocks: a full (or shut down) queue rejects with a
  /// reason instead. Consults the result cache on the admission path so a
  /// hit is pinned to the job even if the entry is evicted before a
  /// worker reaches it.
  Admission submit(const Job& job) { return submit(job, SubmitOptions{}); }

  /// Admission with a session gate and/or per-job result routing.
  Admission submit(const Job& job, SubmitOptions opts);

  /// Session-scoped pause/resume: gates delivery of that session's queued
  /// jobs only. resume_session wakes blocked workers so they re-scan.
  void pause_session(SessionGate& gate);
  void resume_session(SessionGate& gate);

  /// Requests cancellation of a queued or running job; honoured at the
  /// next round boundary (running) or at dequeue (queued). False when the
  /// id is unknown or already finished.
  bool cancel(std::uint64_t id);

  /// Gates delivery to workers; admission continues (scripted bursts use
  /// this to make backpressure deterministic).
  void pause();
  void resume();

  /// Blocks until every admitted job has emitted its result. Does not
  /// resume a paused queue — resume() first, or drain() waits forever.
  void drain();

  /// Stops admission, drains queued jobs (overriding any pause), joins
  /// the pool. Idempotent.
  void shutdown();

  /// Consistent metrics snapshot (gauges sampled now). counters_only
  /// omits wall-clock-derived fields for deterministic scripts.
  harness::Json stats(bool counters_only) const;

  std::size_t workers() const { return pool_.size(); }

 private:
  struct Pending {
    Job job;
    std::uint64_t id = 0;
    std::uint64_t digest = 0;
    Clock::time_point enqueued;
    std::shared_ptr<CancelToken> token;
    std::optional<JobOutcome> cached;  ///< admission-time cache hit
    std::shared_ptr<SessionGate> gate; ///< session delivery gate (may be null)
    ResultCallback on_result;          ///< per-job override (may be null)
    /// Resolved at admission for corpus jobs; pins the mapping for the
    /// job's whole life. Null when resolution failed (run_one retries so
    /// the failure surfaces with the real CorpusError message).
    std::shared_ptr<const storage::MappedGraph> corpus;
  };

  void worker_loop();
  void run_one(Pending& p);
  void emit(const JobResult& r, const Pending& p);

  const ServiceConfig cfg_;
  ResultCallback on_result_;
  std::unique_ptr<storage::CorpusRegistry> corpora_;  ///< null without dir
  ResultCache cache_;
  mutable ServiceMetrics metrics_;
  BoundedQueue<Pending> queue_;

  std::mutex admit_mu_;  ///< serializes id assignment + push (FIFO = id order)
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<CancelToken>> live_;
  std::mutex live_mu_;

  std::atomic<std::size_t> outstanding_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  ThreadPool pool_;
  std::thread driver_;  ///< blocks in pool_.run_tasks for the service's life
  std::once_flag shutdown_once_;
};

}  // namespace ldc::service
