// Cooperative cancellation for served coloring jobs.
//
// A CancelToken is shared between the service (which cancels or arms a
// deadline) and the running job (which polls it). Jobs poll at round
// boundaries through Network::set_round_callback — the simulator's natural
// preemption points — so a cancelled or deadline-exceeded job unwinds via
// JobCancelled before its next communication round, never mid-round.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace ldc::service {

/// Thrown out of a job body when its token fires; the worker maps it to a
/// "cancelled" or "deadline_missed" result instead of a failure.
class JobCancelled : public std::runtime_error {
 public:
  explicit JobCancelled(bool deadline)
      : std::runtime_error(deadline ? "job deadline exceeded"
                                    : "job cancelled"),
        deadline_(deadline) {}

  bool deadline_missed() const { return deadline_; }

 private:
  bool deadline_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Requests cancellation; the next check() throws.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms a wall-clock deadline; check() throws once it has passed.
  void arm_deadline(Clock::time_point when) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            when.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Throws JobCancelled when cancelled or past the armed deadline. Cheap
  /// enough to call every round: two relaxed atomic loads plus a clock
  /// read only when a deadline is armed.
  void check() const {
    if (cancelled()) throw JobCancelled(/*deadline=*/false);
    const auto ns = deadline_ns_.load(std::memory_order_relaxed);
    if (ns != 0 &&
        Clock::now().time_since_epoch() >= std::chrono::nanoseconds(ns)) {
      throw JobCancelled(/*deadline=*/true);
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< 0 = no deadline
};

}  // namespace ldc::service
