#include "ldc/service/session.hpp"

#include "ldc/service/protocol.hpp"

#include <cerrno>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace ldc::service {

namespace {

using harness::Json;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

EventSession::EventSession(int fd, Service& service, SessionLimits limits,
                           std::function<void()> wake)
    : fd_(fd),
      service_(service),
      limits_(limits),
      wake_(std::move(wake)),
      gate_(std::make_shared<SessionGate>()) {
  set_nonblocking(fd_);
}

EventSession::~EventSession() { ::close(fd_); }

bool EventSession::parse_blocked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drain_pending_ || input_done_;
}

bool EventSession::wants_read() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !input_done_ && !drain_pending_;
}

bool EventSession::wants_write() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !write_dead_ && out_off_ < outbuf_.size();
}

bool EventSession::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (write_dead_) return input_done_ && outstanding_ == 0;
  return bye_queued_ && out_off_ == outbuf_.size();
}

std::uint64_t EventSession::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

void EventSession::on_readable() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (input_done_) return;
  }
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // Hard read error: the connection is gone. Finish like EOF so
      // outstanding jobs still drain before teardown.
      read_eof_ = true;
      break;
    }
    if (n == 0) {
      read_eof_ = true;
      break;
    }
    std::size_t start = 0;
    const std::size_t len = static_cast<std::size_t>(n);
    if (discarding_line_) {
      // Drop bytes up to and including the newline that ends the
      // oversized line, then resume normal framing.
      std::size_t i = 0;
      while (i < len && buf[i] != '\n') ++i;
      if (i == len) continue;  // still inside the oversized line
      discarding_line_ = false;
      start = i + 1;
    }
    inbuf_.append(buf + start, len - start);
    // Oversized unterminated line: reject once, discard its remainder.
    if (inbuf_.size() > limits_.max_line_bytes &&
        inbuf_.find('\n') == std::string::npos) {
      inbuf_.clear();
      discarding_line_ = true;
      error_event("request line too long");
    }
  }
  pump();
}

void EventSession::pump() {
  while (!parse_blocked()) {
    const std::size_t nl = inbuf_.find('\n');
    if (nl == std::string::npos) {
      if (!read_eof_) return;
      if (!inbuf_.empty()) {
        // Final ragged line at EOF — same contract as the blocking
        // FdLineIO, which delivers it before reporting end-of-input.
        std::string line;
        line.swap(inbuf_);
        handle_line(line);
        continue;  // handle_line may have blocked parsing (drain)
      }
      enter_input_done();
      return;
    }
    std::string line = inbuf_.substr(0, nl);
    inbuf_.erase(0, nl + 1);
    if (line.size() > limits_.max_line_bytes) {
      error_event("request line too long");
      continue;
    }
    handle_line(line);
  }
}

void EventSession::handle_line(const std::string& line) {
  Json req;
  try {
    req = Json::parse_line(line);
  } catch (const harness::JsonError& e) {
    error_event(std::string("bad request line: ") + e.what());
    return;
  }
  const Json* op = req.find("op");
  if (op == nullptr || op->kind() != Json::Kind::kString) {
    error_event("request needs a string 'op'");
    return;
  }
  const std::string& name = op->as_string();
  if (name == "submit") return do_submit(req);
  if (name == "cancel") return do_cancel(req);
  if (name == "pause") {
    service_.pause_session(*gate_);
    std::lock_guard<std::mutex> lock(mu_);
    append_locked(protocol_event("paused"));
    return;
  }
  if (name == "resume") {
    // Lock across resume + ack: a result released by this resume (a
    // worker can finish instantly) must not precede the "resumed" line,
    // or the session's stream stops being byte-deterministic.
    std::lock_guard<std::mutex> lock(mu_);
    service_.resume_session(*gate_);
    append_locked(protocol_event("resumed"));
    return;
  }
  if (name == "drain") {
    // Asynchronous: never blocks the loop thread. Parsing stays
    // suspended until the last outstanding result appends "drained".
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_ == 0) {
      append_locked(protocol_event("drained"));
    } else {
      drain_pending_ = true;
    }
    return;
  }
  if (name == "stats") return do_stats(req);
  if (name == "shutdown") {
    enter_input_done();
    return;
  }
  error_event("unknown op '" + name + "'");
}

void EventSession::do_submit(const Json& req) {
  const Json* spec = req.find("job");
  if (spec == nullptr) {
    error_event("submit needs a 'job' object");
    return;
  }
  std::string tag;
  if (const Json* t = req.find("tag")) {
    if (t->kind() != Json::Kind::kString) {
      error_event("'tag' must be a string");
      return;
    }
    tag = t->as_string();
  }
  Job job;
  try {
    job = job_from_json(*spec);
  } catch (const JobSpecError& e) {
    error_event(e.what());
    return;
  }
  // Lock across submit + admitted so this job's result line (appended by
  // a worker under the same lock) cannot precede its admitted line.
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t local = next_local_++;
  SubmitOptions opts;
  opts.gate = gate_;
  auto self = shared_from_this();
  opts.on_result = [self, local, tag](const JobResult& r) {
    self->on_result(r, local, tag);
  };
  const Admission a = service_.submit(job, std::move(opts));
  if (a.admitted) {
    ++outstanding_;
    local_to_global_[local] = a.id;
  }
  Json j = protocol_event(a.admitted ? "admitted" : "rejected");
  j.add("id", local);
  if (!tag.empty()) j.add("tag", tag);
  if (a.admitted) {
    // The service's keying, not job.digest(): for corpus jobs it folds
    // in the resolved corpus content digest.
    j.add("digest", a.digest);
  } else {
    j.add("reason", a.reason);
  }
  append_locked(j);
}

void EventSession::do_cancel(const Json& req) {
  const Json* id = req.find("id");
  std::uint64_t value = 0;
  try {
    if (id != nullptr) value = id->as_uint();
  } catch (const harness::JsonError&) {
    id = nullptr;
  }
  if (id == nullptr) {
    error_event("cancel needs a numeric 'id'");
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  bool found = false;
  auto it = local_to_global_.find(value);
  if (it != local_to_global_.end()) found = service_.cancel(it->second);
  Json j = protocol_event("cancel");
  j.add("id", value);
  j.add("found", found);
  append_locked(j);
}

void EventSession::do_stats(const Json& req) {
  bool counters_only = false;
  if (const Json* c = req.find("counters_only")) {
    counters_only = c->kind() == Json::Kind::kBool && c->as_bool();
  }
  // Service-wide snapshot: the shared core has one queue, one cache and
  // one pool, so stats are global by design (documented in README).
  Json j = protocol_event("stats");
  j.add("metrics", service_.stats(counters_only));
  std::lock_guard<std::mutex> lock(mu_);
  append_locked(j);
}

void EventSession::enter_input_done() {
  inbuf_.clear();
  read_eof_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  input_done_ = true;
  if (outstanding_ == 0 && !bye_queued_) {
    append_locked(protocol_event("bye"));
    bye_queued_ = true;
  }
}

void EventSession::on_result(const JobResult& r, std::uint64_t local_id,
                             const std::string& tag) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    JobResult local = r;
    local.id = local_id;
    append_locked(protocol_result(local, tag));
    local_to_global_.erase(local_id);
    --outstanding_;
    if (outstanding_ == 0) {
      if (drain_pending_) {
        drain_pending_ = false;
        append_locked(protocol_event("drained"));
        resume_parse_ = true;  // the loop's next tick() re-enters pump()
      }
      if (input_done_ && !bye_queued_) {
        append_locked(protocol_event("bye"));
        bye_queued_ = true;
      }
    }
  }
  wake_();
}

void EventSession::tick() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!resume_parse_) return;
    resume_parse_ = false;
  }
  pump();
}

void EventSession::begin_shutdown() { enter_input_done(); }

void EventSession::on_writable() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!write_dead_ && out_off_ < outbuf_.size()) {
    // send() with MSG_NOSIGNAL: a peer that closed mid-stream must
    // surface as EPIPE here, not as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, outbuf_.data() + out_off_,
                             outbuf_.size() - out_off_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // Client unreachable: drop buffered output, stop reading, let
      // outstanding jobs finish (their results are discarded).
      write_dead_ = true;
      input_done_ = true;
      outbuf_.clear();
      out_off_ = 0;
      return;
    }
    out_off_ += static_cast<std::size_t>(n);
  }
  if (out_off_ == outbuf_.size()) {
    outbuf_.clear();
    out_off_ = 0;
  } else if (out_off_ > (std::size_t{1} << 16)) {
    outbuf_.erase(0, out_off_);
    out_off_ = 0;
  }
}

void EventSession::append_locked(const Json& event) {
  if (write_dead_) return;
  if (outbuf_.size() - out_off_ > limits_.max_outbuf_bytes) {
    // Slow reader overflow: same terminal state as a broken pipe.
    write_dead_ = true;
    input_done_ = true;
    outbuf_.clear();
    out_off_ = 0;
    return;
  }
  outbuf_ += event.dump();
  outbuf_.push_back('\n');
}

void EventSession::error_event(std::string message) {
  Json j = protocol_event("error");
  j.add("message", std::move(message));
  std::lock_guard<std::mutex> lock(mu_);
  append_locked(j);
}

}  // namespace ldc::service
