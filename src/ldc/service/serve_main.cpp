// ldc_serve: the coloring service as a line-delimited JSON server.
//
// Default transport is stdin/stdout — `ldc_serve < script.jsonl` — which
// composes with shell pipelines and is what CI smoke-tests. With
// --socket PATH it runs the poll(2) event loop instead, multiplexing
// many concurrent client sessions over ONE shared Service (one queue,
// one worker pool, one result cache); each session sees its own
// submission numbering and a byte-deterministic stream at one worker.
//
// SIGTERM/SIGINT are installed without SA_RESTART so a blocking read
// returns EINTR; the read loop treats that as end-of-input, which flows
// into the same graceful-drain path as EOF: queued jobs finish, their
// results are emitted, "bye" is written, exit 0. The event loop polls
// the same stop flag and drains every live session before exiting.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include <unistd.h>

#include "ldc/dist/wire.hpp"
#include "ldc/service/event_loop.hpp"
#include "ldc/service/protocol.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void install_signals() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must return EINTR
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// File-descriptor transport. read_line blocks in read(2); EOF, read
/// errors and EINTR-with-stop-flag all end the session (-> drain).
class FdLineIO final : public ldc::service::LineIO {
 public:
  FdLineIO(int in_fd, int out_fd) : in_(in_fd), out_(out_fd) {}

  bool read_line(std::string& out) override {
    out.clear();
    for (;;) {
      if (pos_ == len_) {
        if (g_stop) return false;
        const ssize_t n = ::read(in_, buf_, sizeof buf_);
        if (n < 0) {
          if (errno == EINTR && !g_stop) continue;
          return false;  // interrupted for shutdown, or a hard error
        }
        if (n == 0) return !out.empty();  // EOF: deliver a final ragged line
        pos_ = 0;
        len_ = static_cast<std::size_t>(n);
      }
      while (pos_ < len_) {
        const char c = buf_[pos_++];
        if (c == '\n') return true;
        out.push_back(c);
      }
    }
  }

  void write_line(const std::string& line) override {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::write(out_, framed.data() + off,
                                framed.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // client went away; the session will end at next read
      }
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  int in_;
  int out_;
  char buf_[4096];
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
};

int serve_socket(const std::string& path,
                 const ldc::service::ServiceConfig& cfg,
                 ldc::service::EventLoopOptions opts) {
  opts.stop_flag = &g_stop;
  try {
    ldc::service::EventLoopServer server(cfg, opts);
    server.listen_on(path);
    std::fprintf(stderr, "ldc_serve: listening on %s\n", path.c_str());
    server.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ldc_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: ldc_serve [options]\n"
               "\n"
               "Serves coloring jobs as line-delimited JSON on stdin/stdout\n"
               "(or a unix socket). One request object per line in, one\n"
               "event object per line out; EOF or SIGTERM drains and exits.\n"
               "\n"
               "  --workers N         worker lanes (0 = LDC_THREADS/cores; "
               "default 1)\n"
               "  --queue-capacity N  admission bound before backpressure "
               "(default 64)\n"
               "  --cache-bytes N     result-cache budget, 0 disables "
               "(default 65536)\n"
               "  --engine serial|parallel|sharded|dist\n"
               "                      per-job simulation engine (default "
               "serial)\n"
               "  --job-threads N     engine lanes per job (default 1)\n"
               "  --shards N          shard count per job (implies\n"
               "                      --engine sharded; 0 = LDC_SHARDS)\n"
               "  --dist-workers N    worker processes per dist job (0 =\n"
               "                      LDC_DIST_WORKERS; implies --engine "
               "dist)\n"
               "  --heartbeat-ms N    dist worker-silence tolerance "
               "(default 30000)\n"
               "  --attach-timeout-ms N\n"
               "                      dist handshake deadline (default "
               "10000)\n"
               "  --corpus-dir DIR    serve {\"graph\":{\"corpus\":NAME}} "
               "jobs from\n"
               "                      DIR/NAME.ldcg (mmap, shared across "
               "workers)\n"
               "  --socket PATH       listen on a unix socket instead of "
               "stdin\n"
               "                      (event loop; many concurrent sessions)\n"
               "  --backlog N         listen(2) backlog (default 128)\n"
               "  --max-sessions N    concurrent session cap (default 1024)\n"
               "  --help              this text\n");
}

bool parse_size(const char* s, std::size_t& out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ldc::service::ServiceConfig cfg;
  ldc::service::EventLoopOptions opts;
  std::string socket_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ldc_serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--workers") {
      if (!parse_size(value(), cfg.workers)) {
        std::fprintf(stderr, "ldc_serve: bad --workers\n");
        return 2;
      }
    } else if (arg == "--queue-capacity") {
      if (!parse_size(value(), cfg.queue_capacity) ||
          cfg.queue_capacity == 0) {
        std::fprintf(stderr, "ldc_serve: bad --queue-capacity\n");
        return 2;
      }
    } else if (arg == "--cache-bytes") {
      if (!parse_size(value(), cfg.cache_bytes)) {
        std::fprintf(stderr, "ldc_serve: bad --cache-bytes\n");
        return 2;
      }
    } else if (arg == "--engine") {
      const std::string v = value();
      if (v == "serial") {
        cfg.job_engine = ldc::Network::Engine::kSerial;
      } else if (v == "parallel") {
        cfg.job_engine = ldc::Network::Engine::kParallel;
      } else if (v == "sharded") {
        cfg.job_engine = ldc::Network::Engine::kSharded;
      } else if (v == "dist") {
        cfg.job_engine = ldc::Network::Engine::kDist;
      } else {
        std::fprintf(stderr,
                     "ldc_serve: --engine serial|parallel|sharded|dist\n");
        return 2;
      }
    } else if (arg == "--dist-workers") {
      // Strict, like every dist knob: garbage or overflow names the token
      // instead of silently falling back (the LDC_SHARDS convention).
      try {
        cfg.dist_workers =
            static_cast<std::size_t>(ldc::dist::parse_positive_u64(
                "--dist-workers", value(), ldc::dist::kMaxDistWorkers));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "ldc_serve: %s\n", e.what());
        return 2;
      }
      cfg.job_engine = ldc::Network::Engine::kDist;
    } else if (arg == "--heartbeat-ms") {
      try {
        cfg.dist_heartbeat_ms = ldc::dist::parse_positive_u64(
            "--heartbeat-ms", value(), 86400000ull);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "ldc_serve: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--attach-timeout-ms") {
      try {
        cfg.dist_attach_timeout_ms = ldc::dist::parse_positive_u64(
            "--attach-timeout-ms", value(), 86400000ull);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "ldc_serve: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--shards") {
      // The shard count rides in job_threads: under kSharded, set_engine
      // interprets the count parameter as the number of shards.
      if (!parse_size(value(), cfg.job_threads) || cfg.job_threads == 0 ||
          cfg.job_threads > 1024) {
        std::fprintf(stderr, "ldc_serve: bad --shards\n");
        return 2;
      }
      cfg.job_engine = ldc::Network::Engine::kSharded;
    } else if (arg == "--job-threads") {
      if (!parse_size(value(), cfg.job_threads) || cfg.job_threads == 0) {
        std::fprintf(stderr, "ldc_serve: bad --job-threads\n");
        return 2;
      }
    } else if (arg == "--corpus-dir") {
      cfg.corpus_dir = value();
    } else if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--backlog") {
      std::size_t backlog = 0;
      if (!parse_size(value(), backlog) || backlog == 0 ||
          backlog > 65535) {
        std::fprintf(stderr, "ldc_serve: bad --backlog\n");
        return 2;
      }
      opts.backlog = static_cast<int>(backlog);
    } else if (arg == "--max-sessions") {
      if (!parse_size(value(), opts.max_sessions) ||
          opts.max_sessions == 0) {
        std::fprintf(stderr, "ldc_serve: bad --max-sessions\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "ldc_serve: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  install_signals();
  if (!socket_path.empty()) return serve_socket(socket_path, cfg, opts);

  FdLineIO io(STDIN_FILENO, STDOUT_FILENO);
  ldc::service::serve(io, cfg);
  return 0;
}
