#include "ldc/service/protocol.hpp"

#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <utility>

namespace ldc::service {

bool StreamLineIO::read_line(std::string& out) {
  return static_cast<bool>(std::getline(in_, out));
}

void StreamLineIO::write_line(const std::string& line) {
  out_ << line << '\n';
  out_.flush();
}

using harness::Json;

Json protocol_event(const char* name) {
  Json j = Json::object();
  j.add("event", name);
  return j;
}

Json protocol_result(const JobResult& r, const std::string& tag) {
  Json j = protocol_event("result");
  j.add("id", r.id);
  if (!tag.empty()) j.add("tag", tag);
  j.add("digest", r.digest);
  j.add("algorithm", r.algorithm);
  j.add("status", r.status);
  j.add("cached", r.cached);
  if (r.status == "ok") {
    j.add("valid", r.outcome.valid);
    j.add("n", std::uint64_t{r.outcome.n});
    j.add("colors", r.outcome.colors);
    j.add("palette", r.outcome.palette);
    j.add("rounds", r.outcome.rounds);
    j.add("messages", r.outcome.messages);
    j.add("bits", r.outcome.total_bits);
    j.add("color_digest", r.outcome.color_digest);
  } else if (!r.error.empty()) {
    j.add("error", r.error);
  }
  return j;
}

namespace {

Json event(const char* name) { return protocol_event(name); }

Json result_event(const JobResult& r, const std::string& tag) {
  return protocol_result(r, tag);
}

/// Serializes every line written to the transport; also owns the id->tag
/// echo map shared between the request thread and the workers.
class Session {
 public:
  Session(LineIO& io, const ServiceConfig& cfg)
      : io_(io), service_(cfg, [this](const JobResult& r) { on_result(r); }) {}

  /// False once the session should end (shutdown op).
  bool handle(const std::string& line) {
    Json req;
    try {
      req = Json::parse_line(line);
    } catch (const harness::JsonError& e) {
      error(std::string("bad request line: ") + e.what());
      return true;
    }
    const Json* op = req.find("op");
    if (op == nullptr || op->kind() != Json::Kind::kString) {
      error("request needs a string 'op'");
      return true;
    }
    const std::string& name = op->as_string();
    if (name == "submit") return do_submit(req), true;
    if (name == "cancel") return do_cancel(req), true;
    if (name == "pause") return service_.pause(), write(event("paused")), true;
    if (name == "resume") {
      // Lock across resume + ack: a result line released by this resume
      // (a worker can finish instantly) must not precede the "resumed"
      // line, or single-worker streams stop being byte-deterministic.
      std::lock_guard<std::mutex> lock(mu_);
      service_.resume();
      io_.write_line(event("resumed").dump());
      return true;
    }
    if (name == "drain") {
      service_.drain();  // deliberately outside the write lock
      write(event("drained"));
      return true;
    }
    if (name == "stats") return do_stats(req), true;
    if (name == "shutdown") return false;
    error("unknown op '" + name + "'");
    return true;
  }

  /// Graceful end: finish every admitted job, then say goodbye.
  void finish() {
    service_.shutdown();
    write(event("bye"));
  }

 private:
  void do_submit(const Json& req) {
    const Json* spec = req.find("job");
    if (spec == nullptr) {
      error("submit needs a 'job' object");
      return;
    }
    std::string tag;
    if (const Json* t = req.find("tag")) {
      if (t->kind() != Json::Kind::kString) {
        error("'tag' must be a string");
        return;
      }
      tag = t->as_string();
    }
    Job job;
    try {
      job = job_from_json(*spec);
    } catch (const JobSpecError& e) {
      error(e.what());
      return;
    }
    // Lock across submit + admitted so this job's result line (written by
    // a worker under the same lock) cannot precede its admitted line.
    std::lock_guard<std::mutex> lock(mu_);
    const Admission a = service_.submit(job);
    if (a.admitted && !tag.empty()) tags_[a.id] = tag;
    Json j = event(a.admitted ? "admitted" : "rejected");
    j.add("id", a.id);
    if (!tag.empty()) j.add("tag", tag);
    if (a.admitted) {
      // The service's keying, not job.digest(): for corpus jobs it folds
      // in the resolved corpus content digest.
      j.add("digest", a.digest);
    } else {
      j.add("reason", a.reason);
    }
    io_.write_line(j.dump());
  }

  void do_cancel(const Json& req) {
    const Json* id = req.find("id");
    std::uint64_t value = 0;
    try {
      if (id != nullptr) value = id->as_uint();
    } catch (const harness::JsonError&) {
      id = nullptr;
    }
    if (id == nullptr) {
      error("cancel needs a numeric 'id'");
      return;
    }
    const bool found = service_.cancel(value);
    Json j = event("cancel");
    j.add("id", value);
    j.add("found", found);
    write(std::move(j));
  }

  void do_stats(const Json& req) {
    bool counters_only = false;
    if (const Json* c = req.find("counters_only")) {
      counters_only = c->kind() == Json::Kind::kBool && c->as_bool();
    }
    Json j = event("stats");
    j.add("metrics", service_.stats(counters_only));
    write(std::move(j));
  }

  void on_result(const JobResult& r) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string tag;
    auto it = tags_.find(r.id);
    if (it != tags_.end()) {
      tag = it->second;
      tags_.erase(it);
    }
    io_.write_line(result_event(r, tag).dump());
  }

  void error(std::string message) {
    Json j = event("error");
    j.add("message", std::move(message));
    write(std::move(j));
  }

  void write(Json j) {
    std::lock_guard<std::mutex> lock(mu_);
    io_.write_line(j.dump());
  }

  LineIO& io_;
  std::mutex mu_;
  std::unordered_map<std::uint64_t, std::string> tags_;
  Service service_;  // declared last: workers may call on_result until join
};

}  // namespace

void serve(LineIO& io, const ServiceConfig& cfg) {
  // Heap-allocated: the session owns mutexes, and TSan only invalidates a
  // mutex's lock-order state when its memory is freed — stack-allocated
  // sessions in back-to-back serve() calls (e.g. the test suite in one
  // process) would alias addresses and produce phantom inversion cycles.
  const auto session = std::make_unique<Session>(io, cfg);
  std::string line;
  bool more = true;
  while (more && io.read_line(line)) {
    more = session->handle(line);
  }
  session->finish();
}

}  // namespace ldc::service
