#include "ldc/service/event_loop.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

namespace ldc::service {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

EventLoopServer::EventLoopServer(const ServiceConfig& cfg,
                                 EventLoopOptions opts)
    : opts_(opts), service_(cfg) {
  make_wake_pipe();
}

EventLoopServer::~EventLoopServer() {
  // Join the workers FIRST: after shutdown() no result callback can run,
  // so sessions (and the wake pipe their callbacks write to) are safe to
  // tear down.
  service_.shutdown();
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.clear();
    for (int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listener_ >= 0) ::close(listener_);
  if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
  ::close(wake_rd_);
  ::close(wake_wr_);
}

void EventLoopServer::make_wake_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) fail("pipe");
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);
}

void EventLoopServer::wake() {
  const char byte = 1;
  // Non-blocking: EAGAIN means the pipe already holds a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &byte, 1);
}

void EventLoopServer::listen_on(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  listener_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener_ < 0) fail("socket");
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    fail("bind " + path);
  }
  if (::listen(listener_, opts_.backlog) != 0) fail("listen");
  set_nonblocking(listener_);
  socket_path_ = path;
}

void EventLoopServer::adopt(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(fd);
  }
  wake();
}

void EventLoopServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake();
}

std::size_t EventLoopServer::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void EventLoopServer::add_session(int fd) {
  auto session = std::make_shared<EventSession>(
      fd, service_, opts_.session_limits, [this] { wake(); });
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.push_back(std::move(session));
}

void EventLoopServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      // EINTR: retry. ECONNABORTED: the client gave up between the
      // handshake and our accept — its problem, not a server error.
      if (errno == EINTR) continue;
      if (errno == ECONNABORTED) continue;
      break;  // EAGAIN/EWOULDBLOCK or a transient error: next poll round
    }
    bool full = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      full = sessions_.size() >= opts_.max_sessions;
    }
    if (full) {
      ::close(fd);  // immediate EOF; client can retry later
      continue;
    }
    add_session(fd);
  }
}

void EventLoopServer::run() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<EventSession>> live;
  bool stopping = false;
  for (;;) {
    if (!stopping &&
        (opts_.stop_flag != nullptr && *opts_.stop_flag != 0)) {
      stop();
    }
    // Snapshot under the lock; poll and dispatch outside it (worker
    // callbacks never touch the loop's containers, only sessions).
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ && !stopping) {
        stopping = true;
        if (listener_ >= 0) {
          ::close(listener_);
          listener_ = -1;
          if (!socket_path_.empty()) {
            ::unlink(socket_path_.c_str());
            socket_path_.clear();
          }
        }
        for (auto& s : sessions_) s->begin_shutdown();
      }
      for (int fd : pending_) {
        if (stopping) {
          ::close(fd);
        } else if (sessions_.size() >= opts_.max_sessions) {
          ::close(fd);
        } else {
          // add_session relocks mu_; stage outside instead.
          auto session = std::make_shared<EventSession>(
              fd, service_, opts_.session_limits, [this] { wake(); });
          sessions_.push_back(std::move(session));
        }
      }
      pending_.clear();
      // Reap finished sessions (goodbye flushed, or dead with no jobs).
      sessions_.erase(
          std::remove_if(sessions_.begin(), sessions_.end(),
                         [](const std::shared_ptr<EventSession>& s) {
                           return s->finished();
                         }),
          sessions_.end());
      if (stopping && sessions_.empty()) return;
      live.assign(sessions_.begin(), sessions_.end());
    }

    fds.clear();
    fds.push_back({wake_rd_, POLLIN, 0});
    if (!stopping && listener_ >= 0) {
      fds.push_back({listener_, POLLIN, 0});
    }
    const std::size_t session_base = fds.size();
    for (const auto& s : live) {
      short events = 0;
      if (s->wants_read()) events |= POLLIN;
      if (s->wants_write()) events |= POLLOUT;
      fds.push_back({s->fd(), events, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), opts_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) fail("poll");

    if (rc > 0) {
      if ((fds[0].revents & POLLIN) != 0) {
        char buf[256];
        while (::read(wake_rd_, buf, sizeof buf) > 0) {
        }
      }
      if (!stopping && session_base == 2 &&
          (fds[1].revents & POLLIN) != 0) {
        accept_ready();
      }
      for (std::size_t i = 0; i < live.size(); ++i) {
        const short re = fds[session_base + i].revents;
        if ((re & POLLOUT) != 0) live[i]->on_writable();
        if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) {
          live[i]->on_readable();
        }
      }
    }
    // Always tick: a worker may have finished a drain between polls.
    for (const auto& s : live) s->tick();
  }
}

}  // namespace ldc::service
