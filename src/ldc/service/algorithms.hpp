// The service's algorithm registry — the menu of servable colorings.
//
// Mirrors the harness registry pattern (src/ldc/harness/registry.hpp):
// algorithms self-describe with a stable id and run callback, the registry
// lists and resolves them, and the built-in roster is registered at first
// use. Bodies receive the job's graph, the parsed Job (seed + params) and
// an ExecContext carrying the engine choice and the cancellation token;
// they must call exec.configure(net) on every Network they create so
// cancellation and deadlines are honoured at round boundaries.
//
// Outcomes carry only model-exact quantities (validity, colors, rounds,
// traffic, a digest of the coloring) — an outcome is a pure function of
// the job digest, which is what makes the result cache sound.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ldc/coloring/instance.hpp"
#include "ldc/runtime/network.hpp"
#include "ldc/service/cancel.hpp"
#include "ldc/service/job.hpp"

namespace ldc::service {

/// What one served job computed. Deterministic given the job digest.
struct JobOutcome {
  bool valid = false;            ///< validator verdict on the coloring
  std::uint32_t n = 0;           ///< nodes actually solved
  std::uint64_t colors = 0;      ///< distinct colors used
  std::uint64_t palette = 0;     ///< algorithm-reported palette bound
  std::uint64_t rounds = 0;      ///< communication rounds
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t color_digest = 0;  ///< FNV-1a over the color vector
};

/// Per-job execution environment handed to algorithm bodies.
struct ExecContext {
  Network::Engine engine = Network::Engine::kSerial;
  std::size_t threads = 1;          ///< engine lanes (see nesting policy)
  const CancelToken* cancel = nullptr;
  /// Required under Engine::kDist: the distributed backend (a
  /// dist::Coordinator) every Network of this job attaches to. The caller
  /// owns it and keeps it alive for the body's whole run.
  DistBackend* dist = nullptr;

  /// Applies the engine choice and installs the round-boundary
  /// cancellation check on `net`. Call on every Network the body creates.
  void configure(Network& net) const;

  /// Explicit cancellation point for pre/post-network compute phases.
  void check() const {
    if (cancel != nullptr) cancel->check();
  }
};

using AlgorithmFn =
    std::function<JobOutcome(const Graph&, const Job&, const ExecContext&)>;

struct AlgorithmInfo {
  std::string name;     ///< stable wire id, e.g. "d1lc"
  std::string summary;  ///< one line for listings
  AlgorithmFn run;
};

class AlgorithmRegistry {
 public:
  /// Process-wide registry, pre-populated with the built-in roster
  /// (greedy, luby, linial, kw, d1lc) on first access.
  static AlgorithmRegistry& instance();

  /// Throws std::invalid_argument on empty/duplicate names or missing run.
  void add(AlgorithmInfo info);

  /// Exact-id lookup; nullptr when absent.
  const AlgorithmInfo* find(std::string_view name) const;

  /// All algorithms, sorted by name.
  std::vector<const AlgorithmInfo*> all() const;

 private:
  std::vector<AlgorithmInfo> algorithms_;
};

/// Digest of a coloring (FNV-1a over the 32-bit color values in node
/// order) — the cross-run identity of a result.
std::uint64_t coloring_digest(const std::vector<Color>& phi);

}  // namespace ldc::service
