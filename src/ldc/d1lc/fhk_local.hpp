// The FHK/MT20-regime LOCAL baseline of experiments E1/E2.
//
// Same decomposition pipeline as Theorem 1.4 but *without* Corollary 4.2's
// color space reduction: every per-class OLDC solve ships whole color
// lists over the full space, i.e. Theta(min(|C|, Lambda log |C|))-bit
// messages — the message regime of the O(sqrt(Delta log Delta) + log* n)
// LOCAL algorithms of [FHK16, BEG18, MT20] that Theorem 1.4's CONGEST
// algorithm eliminates. Round complexity matches the CONGEST pipeline up
// to the reduction's level factor; the message sizes are what experiment
// E2 contrasts.
#pragma once

#include "ldc/d1lc/congest_colorer.hpp"

namespace ldc::d1lc {

/// d1lc::color with reduction disabled (big messages).
PipelineResult color_local_baseline(Network& net, const LdcInstance& inst,
                                    PipelineOptions opt = {});

}  // namespace ldc::d1lc
