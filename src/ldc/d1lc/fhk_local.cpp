#include "ldc/d1lc/fhk_local.hpp"

namespace ldc::d1lc {

PipelineResult color_local_baseline(Network& net, const LdcInstance& inst,
                                    PipelineOptions opt) {
  opt.reduction_levels = 0;
  return color(net, inst, opt);
}

}  // namespace ldc::d1lc
