#include "ldc/d1lc/edge_color.hpp"

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"

namespace ldc::d1lc {

EdgeColoringResult edge_color(const Graph& g, const PipelineOptions& opt) {
  EdgeColoringResult res;
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) res.edges.emplace_back(u, v);
    }
  }
  const Graph lg = gen::line_graph(g);
  const LdcInstance inst = delta_plus_one_instance(lg);
  res.palette = inst.color_space;  // <= 2*Delta(G) - 1
  Network net(lg);
  const auto out = color(net, inst, opt);
  res.slots = out.phi;
  res.rounds = out.rounds;
  res.valid = out.valid && validate_proper(lg, out.phi).ok;
  return res;
}

}  // namespace ldc::d1lc
