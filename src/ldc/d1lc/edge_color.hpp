// Distributed edge coloring via the line-graph reduction.
//
// The paper's related work (Sections 1 and 4) treats edge coloring as
// vertex coloring of the line graph — the canonical bounded-neighborhood-
// independence family. This driver builds the line graph, runs the
// Theorem 1.4 pipeline on it, and maps slot assignments back to edges.
// The simulated network is the line graph itself (two adjacent edges of G
// correspond to neighboring "nodes"; in a real network a node simulates
// its incident edges, which changes constants but not shapes).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ldc/d1lc/congest_colorer.hpp"

namespace ldc::d1lc {

struct EdgeColoringResult {
  /// One entry per edge of g, indexed like `edges` (u < v, sorted).
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<Color> slots;
  std::uint64_t palette = 0;  ///< 2*Delta(G) - 1 (the line graph's Delta+1)
  std::uint32_t rounds = 0;
  bool valid = false;
};

/// Proper edge coloring of g with at most 2*Delta(G) - 1 colors.
EdgeColoringResult edge_color(const Graph& g,
                              const PipelineOptions& opt = {});

}  // namespace ldc::d1lc
