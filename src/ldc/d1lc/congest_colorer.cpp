#include "ldc/d1lc/congest_colorer.hpp"

#include "ldc/coloring/validate.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/reduction/color_space.hpp"

namespace ldc::d1lc {

PipelineResult color(Network& net, const LdcInstance& inst,
                     const PipelineOptions& opt) {
  PipelineResult res;

  // Stage 1: Linial from IDs.
  net.mark("pipeline/linial");
  const auto lin = linial::color(net);
  res.linial_rounds = lin.rounds;
  res.initial_palette = lin.palette;

  // Stage 2: Theorem 1.3 with the (possibly reduction-wrapped) Theorem 1.1
  // solver.
  arb::OldcSolver base = arb::two_phase_solver(opt.params);
  arb::OldcSolver solver = base;
  if (opt.reduction_levels > 0) {
    const std::uint32_t r = opt.reduction_levels;
    solver = [base, r](Network& sub_net, const LdcInstance& sub_inst,
                       const Orientation& orientation,
                       const Coloring& initial, std::uint64_t m) {
      reduction::Options ropt;
      ropt.p = reduction::subspace_count_for_depth(sub_inst.color_space, r);
      const auto out = reduction::reduce_and_solve(
          sub_net, sub_inst, orientation, initial, m, ropt, base);
      oldc::OldcResult o;
      o.phi = out.phi;
      o.stats = out.stats;
      o.valid = true;
      return o;
    };
  }
  net.mark("pipeline/theorem-1.3");
  const auto t13 = arb::solve_list_arbdefective(net, inst, lin.phi,
                                                lin.palette, solver,
                                                opt.t13);
  res.phi = t13.out.colors;
  res.t13 = t13.stats;
  res.rounds = res.linial_rounds + t13.stats.rounds;
  // For defect-0 instances arbdefective validity == proper list coloring.
  res.valid = t13.valid;
  return res;
}

}  // namespace ldc::d1lc
