// Theorem 1.4 — deterministic (degree+1)-list coloring in CONGEST.
//
// Pipeline: Linial's O(Delta^2)-coloring from the IDs (O(log* n) rounds,
// O(log n)-bit messages), then the Theorem 1.3 transformer driven by the
// Theorem 1.1 two-phase OLDC solver; with reduction_levels = r > 0 each
// per-class OLDC solve first reduces the color space recursively
// (Corollary 4.2, p = |C|^(1/r)) so that every message carries a list over
// a size-p space — the step that brings message sizes from
// Theta(min(|C|, Lambda log|C|)) down toward O(|C|^(1/r) + log n).
#pragma once

#include "ldc/arb/list_arbdefective.hpp"
#include "ldc/coloring/instance.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::d1lc {

struct PipelineOptions {
  /// Corollary 4.2 recursion depth; 0 disables color space reduction (the
  /// LOCAL-style variant with Theta(Lambda log|C|)-bit messages, i.e. the
  /// FHK/MT20-regime baseline — see fhk_local.hpp).
  std::uint32_t reduction_levels = 2;
  mt::CandidateParams params;
  arb::Theorem13Options t13;
};

struct PipelineResult {
  Coloring phi;
  std::uint32_t rounds = 0;         ///< total, including the Linial stage
  std::uint32_t linial_rounds = 0;
  std::uint64_t initial_palette = 0;
  arb::Theorem13Stats t13;
  bool valid = false;
};

/// Solves a (degree+1)-list coloring instance (defects all 0); also accepts
/// general (degree+1)-list *arbdefective* instances — the output is then an
/// arbdefective coloring whose orientation is discarded here (use
/// arb::solve_list_arbdefective directly to keep it).
PipelineResult color(Network& net, const LdcInstance& inst,
                     const PipelineOptions& opt = {});

}  // namespace ldc::d1lc
