#include "ldc/sequential/euler.hpp"

#include <cstddef>
#include <utility>
#include <vector>

namespace ldc::sequential {

Orientation euler_orientation(const Graph& g) {
  struct Edge {
    NodeId a, b;
    bool real;
  };
  std::vector<Edge> edges;
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v, true});
    }
  }
  // Pair odd-degree vertices with virtual edges (even count guaranteed).
  {
    std::vector<NodeId> odd;
    for (NodeId v = 0; v < g.n(); ++v) {
      if (g.degree(v) % 2 == 1) odd.push_back(v);
    }
    for (std::size_t i = 0; i + 1 < odd.size(); i += 2) {
      edges.push_back({odd[i], odd[i + 1], false});
    }
  }
  // Multigraph adjacency: (edge id) per endpoint.
  std::vector<std::vector<std::uint32_t>> inc(g.n());
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    inc[edges[e].a].push_back(e);
    inc[edges[e].b].push_back(e);
  }
  std::vector<bool> used(edges.size(), false);
  std::vector<std::size_t> cursor(g.n(), 0);
  std::vector<std::vector<NodeId>> out(g.n());

  // Hierholzer over each component; orient edges in traversal direction.
  for (NodeId start = 0; start < g.n(); ++start) {
    if (cursor[start] >= inc[start].size()) continue;
    std::vector<NodeId> stack{start};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      while (cursor[v] < inc[v].size() && used[inc[v][cursor[v]]]) {
        ++cursor[v];
      }
      if (cursor[v] == inc[v].size()) {
        stack.pop_back();
        continue;
      }
      const std::uint32_t e = inc[v][cursor[v]];
      used[e] = true;
      const NodeId w = (edges[e].a == v) ? edges[e].b : edges[e].a;
      if (edges[e].real) out[v].push_back(w);
      stack.push_back(w);
    }
  }
  return Orientation(g, std::move(out));
}

}  // namespace ldc::sequential
