// Balanced edge orientation via Euler tours (the tool behind Lemma A.2).
//
// Pairing odd-degree vertices with virtual edges makes every degree even;
// orienting each component's Euler circuit then splits every vertex's edges
// evenly, so each node ends with outdegree <= ceil(deg(v) / 2).
#pragma once

#include "ldc/graph/graph.hpp"
#include "ldc/graph/orientation.hpp"

namespace ldc::sequential {

/// Orientation of all edges of g with outdeg(v) <= ceil(deg(v)/2) for all v.
Orientation euler_orientation(const Graph& g);

}  // namespace ldc::sequential
