// Sequential list defective coloring by potential-function recoloring
// (Lemma A.1 of the paper, generalizing Lovasz'66).
//
// If every node satisfies sum_{x in L_v} (d_v(x) + 1) > deg(v), the
// recoloring process below terminates with a valid list defective coloring
// after at most 3|E| + n recolor steps (the potential Phi = #monochromatic
// edges + sum_v (deg(v) - d_v(phi(v))) starts at <= 3|E| and strictly
// decreases).
#pragma once

#include <cstdint>
#include <optional>

#include "ldc/coloring/instance.hpp"

namespace ldc::sequential {

struct RecolorStats {
  std::uint64_t steps = 0;            ///< recolor operations performed
  std::uint64_t initial_potential = 0;
};

/// Solves the instance; returns std::nullopt if some unhappy node has no
/// admissible color (which the paper proves cannot happen when the weight
/// condition sum (d_v(x)+1) > deg(v) holds for all v).
///
/// `initial` optionally seeds the process (partial colorings are completed
/// with each node's first list color first); used by the failure-injection
/// tests to demonstrate self-stabilization from corrupted colorings.
std::optional<Coloring> solve_list_defective(const LdcInstance& inst,
                                             RecolorStats* stats = nullptr,
                                             const Coloring* initial =
                                                 nullptr);

/// True iff the instance satisfies Lemma A.1's existence condition.
bool satisfies_ldc_condition(const LdcInstance& inst);

/// True iff the instance satisfies Lemma A.2's arbdefective condition
/// (sum (2 d_v(x) + 1) > deg(v)).
bool satisfies_arb_condition(const LdcInstance& inst);

}  // namespace ldc::sequential
