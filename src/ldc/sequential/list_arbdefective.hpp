// Sequential list arbdefective coloring (Lemma A.2).
//
// Strategy per the paper: solve the list *defective* instance with doubled
// defects 2*d_v(x) (exists by Lemma A.1 when sum (2 d_v(x)+1) > deg(v)),
// then orient each color class's induced subgraph with an Euler tour so each
// node keeps at most d_v(x) same-colored out-neighbors. Cross-class edges
// are oriented arbitrarily (they never contribute to arbdefect).
#pragma once

#include <optional>

#include "ldc/coloring/instance.hpp"

namespace ldc::sequential {

/// Returns std::nullopt only when the doubled-defect instance is
/// unsolvable, i.e. the Lemma A.2 condition fails.
std::optional<ArbdefectiveColoring> solve_list_arbdefective(
    const LdcInstance& inst);

}  // namespace ldc::sequential
