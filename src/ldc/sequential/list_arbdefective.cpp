#include "ldc/sequential/list_arbdefective.hpp"

#include <map>
#include <vector>

#include "ldc/graph/subgraph.hpp"
#include "ldc/sequential/euler.hpp"
#include "ldc/sequential/list_defective.hpp"

namespace ldc::sequential {

std::optional<ArbdefectiveColoring> solve_list_arbdefective(
    const LdcInstance& inst) {
  // Doubled-defect instance.
  LdcInstance doubled = inst;
  for (auto& l : doubled.lists) {
    for (auto& d : l.defects) d = 2 * d;
  }
  auto phi = solve_list_defective(doubled);
  if (!phi.has_value()) return std::nullopt;

  const Graph& g = *inst.graph;
  // Group nodes by color.
  std::map<Color, std::vector<NodeId>> classes;
  for (NodeId v = 0; v < g.n(); ++v) classes[(*phi)[v]].push_back(v);

  std::vector<std::vector<NodeId>> out(g.n());
  // Intra-class edges: Euler orientation gives outdeg <= ceil(deg_class/2),
  // and deg_class <= 2*d_v(x) within the class, so intra-class outdeg is
  // <= d_v(x) -- unless deg_class is odd, where ceil((2d)/2) = d still.
  for (const auto& [color, members] : classes) {
    (void)color;
    const Subgraph sub = induced_subgraph(g, members);
    const Orientation o = euler_orientation(sub.graph);
    for (NodeId i = 0; i < sub.graph.n(); ++i) {
      for (NodeId j : o.out(i)) {
        out[sub.to_parent[i]].push_back(sub.to_parent[j]);
      }
    }
  }
  // Cross-class edges: orient from smaller to larger index (arbitrary).
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v && (*phi)[u] != (*phi)[v]) out[u].push_back(v);
    }
  }
  return ArbdefectiveColoring{std::move(*phi), Orientation(g, std::move(out))};
}

}  // namespace ldc::sequential
