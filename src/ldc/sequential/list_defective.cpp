#include "ldc/sequential/list_defective.hpp"

#include <deque>
#include <vector>

namespace ldc::sequential {
namespace {

// Number of neighbors of v currently colored with c.
std::uint32_t count_same(const Graph& g, const Coloring& phi, NodeId v,
                         Color c) {
  std::uint32_t k = 0;
  for (NodeId u : g.neighbors(v)) {
    if (phi[u] == c) ++k;
  }
  return k;
}

}  // namespace

bool satisfies_ldc_condition(const LdcInstance& inst) {
  for (NodeId v = 0; v < inst.n(); ++v) {
    if (inst.lists[v].weight() <= inst.graph->degree(v)) return false;
  }
  return true;
}

bool satisfies_arb_condition(const LdcInstance& inst) {
  for (NodeId v = 0; v < inst.n(); ++v) {
    std::uint64_t w = 0;
    for (auto d : inst.lists[v].defects) {
      w += 2 * static_cast<std::uint64_t>(d) + 1;
    }
    if (w <= inst.graph->degree(v)) return false;
  }
  return true;
}

std::optional<Coloring> solve_list_defective(const LdcInstance& inst,
                                             RecolorStats* stats,
                                             const Coloring* initial) {
  inst.check();
  const Graph& g = *inst.graph;
  Coloring phi(inst.n(), kUncolored);
  for (NodeId v = 0; v < inst.n(); ++v) {
    if (inst.lists[v].size() == 0) return std::nullopt;
    if (initial != nullptr && v < initial->size() &&
        (*initial)[v] != kUncolored && inst.lists[v].contains((*initial)[v])) {
      phi[v] = (*initial)[v];
    } else {
      phi[v] = inst.lists[v].colors.front();
    }
  }

  auto unhappy = [&](NodeId v) {
    return count_same(g, phi, v, phi[v]) > inst.lists[v].defect_of(phi[v]);
  };

  if (stats != nullptr) {
    stats->steps = 0;
    std::uint64_t mono = 0;
    std::uint64_t slack = 0;
    for (NodeId v = 0; v < inst.n(); ++v) {
      mono += count_same(g, phi, v, phi[v]);
      slack += g.degree(v) - std::min<std::uint32_t>(
                                 g.degree(v), inst.lists[v].defect_of(phi[v]));
    }
    stats->initial_potential = mono / 2 + slack;
  }

  // Worklist of potentially unhappy nodes. A node only becomes unhappy when
  // a neighbor adopts its color, so pushing recolored nodes' neighbors
  // suffices for completeness.
  std::deque<NodeId> work;
  std::vector<bool> queued(inst.n(), false);
  for (NodeId v = 0; v < inst.n(); ++v) {
    work.push_back(v);
    queued[v] = true;
  }
  while (!work.empty()) {
    const NodeId v = work.front();
    work.pop_front();
    queued[v] = false;
    if (!unhappy(v)) continue;
    // Find an admissible color: at most d_v(y) neighbors already have y.
    Color best = kUncolored;
    for (std::size_t i = 0; i < inst.lists[v].size(); ++i) {
      const Color y = inst.lists[v].colors[i];
      if (count_same(g, phi, v, y) <= inst.lists[v].defects[i]) {
        best = y;
        break;
      }
    }
    if (best == kUncolored) return std::nullopt;  // condition violated
    phi[v] = best;
    if (stats != nullptr) ++stats->steps;
    for (NodeId u : g.neighbors(v)) {
      if (!queued[u]) {
        work.push_back(u);
        queued[u] = true;
      }
    }
  }
  return phi;
}

}  // namespace ldc::sequential
