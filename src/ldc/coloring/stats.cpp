#include "ldc/coloring/stats.hpp"

#include <cstdlib>

namespace ldc {
namespace {

bool conflicting(Color a, Color b, std::uint32_t g) {
  if (a == kUncolored || b == kUncolored) return false;
  return static_cast<std::uint64_t>(
             std::llabs(static_cast<std::int64_t>(a) - b)) <= g;
}

template <typename NeighborsOf>
ColoringStats compute(const LdcInstance& inst, const Coloring& phi,
                      std::uint32_t g, NeighborsOf&& out_of) {
  ColoringStats s;
  std::uint64_t realized_total = 0;
  std::uint32_t colored = 0;
  for (NodeId v = 0; v < inst.n(); ++v) {
    if (phi[v] == kUncolored) continue;
    ++colored;
    auto& count = s.histogram[phi[v]];
    ++count;
    s.max_class_size = std::max(s.max_class_size, count);
    std::uint32_t realized = 0;
    for (NodeId u : out_of(v)) {
      if (conflicting(phi[v], phi[u], g)) ++realized;
    }
    s.monochromatic_conflicts += realized;
    s.max_realized_defect = std::max(s.max_realized_defect, realized);
    realized_total += realized;
    if (inst.lists[v].contains(phi[v])) {
      s.total_defect_budget += inst.lists[v].defect_of(phi[v]);
    }
  }
  s.colors_used = s.histogram.size();
  if (colored > 0) {
    s.avg_realized_defect = static_cast<double>(realized_total) / colored;
  }
  if (s.total_defect_budget > 0) {
    s.budget_utilization = static_cast<double>(realized_total) /
                           static_cast<double>(s.total_defect_budget);
  }
  return s;
}

}  // namespace

ColoringStats coloring_stats(const LdcInstance& inst, const Coloring& phi,
                             std::uint32_t g) {
  const Graph& graph = *inst.graph;
  return compute(inst, phi, g,
                 [&graph](NodeId v) { return graph.neighbors(v); });
}

ColoringStats coloring_stats_oriented(const LdcInstance& inst,
                                      const Orientation& orientation,
                                      const Coloring& phi, std::uint32_t g) {
  return compute(inst, phi, g,
                 [&orientation](NodeId v) { return orientation.out(v); });
}

}  // namespace ldc
