#include "ldc/coloring/instance.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ldc {

std::size_t ColorList::find(Color c) const {
  const auto it = std::lower_bound(colors.begin(), colors.end(), c);
  if (it == colors.end() || *it != c) return size();
  return static_cast<std::size_t>(it - colors.begin());
}

std::uint32_t ColorList::defect_of(Color c) const {
  const auto i = find(c);
  assert(i != size());
  return defects[i];
}

std::uint64_t ColorList::weight() const {
  std::uint64_t w = 0;
  for (auto d : defects) w += static_cast<std::uint64_t>(d) + 1;
  return w;
}

std::uint64_t ColorList::weight_sq() const {
  std::uint64_t w = 0;
  for (auto d : defects) {
    const std::uint64_t dp1 = static_cast<std::uint64_t>(d) + 1;
    w += dp1 * dp1;
  }
  return w;
}

double ColorList::weight_pow(double one_plus_nu) const {
  double w = 0.0;
  for (auto d : defects) {
    w += std::pow(static_cast<double>(d) + 1.0, one_plus_nu);
  }
  return w;
}

void ColorList::normalize() {
  if (colors.size() != defects.size()) {
    throw std::invalid_argument("ColorList: colors/defects size mismatch");
  }
  std::vector<std::size_t> order(colors.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [this](std::size_t a, std::size_t b) {
              return colors[a] < colors[b];
            });
  std::vector<Color> c(colors.size());
  std::vector<std::uint32_t> d(defects.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    c[i] = colors[order[i]];
    d[i] = defects[order[i]];
  }
  if (std::adjacent_find(c.begin(), c.end()) != c.end()) {
    throw std::invalid_argument("ColorList: duplicate color");
  }
  colors = std::move(c);
  defects = std::move(d);
}

std::size_t LdcInstance::max_list_size() const {
  std::size_t m = 0;
  for (const auto& l : lists) m = std::max(m, l.size());
  return m;
}

void LdcInstance::check() const {
  if (graph == nullptr) throw std::invalid_argument("LdcInstance: no graph");
  if (lists.size() != graph->n()) {
    throw std::invalid_argument("LdcInstance: list count != n");
  }
  for (const auto& l : lists) {
    if (l.colors.size() != l.defects.size()) {
      throw std::invalid_argument("LdcInstance: ragged list");
    }
    if (!std::is_sorted(l.colors.begin(), l.colors.end())) {
      throw std::invalid_argument("LdcInstance: unsorted list");
    }
    if (std::adjacent_find(l.colors.begin(), l.colors.end()) !=
        l.colors.end()) {
      throw std::invalid_argument("LdcInstance: duplicate color");
    }
    if (!l.colors.empty() && l.colors.back() >= color_space) {
      throw std::invalid_argument("LdcInstance: color outside space");
    }
  }
}

}  // namespace ldc
