#include "ldc/coloring/instance_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ldc/graph/io_error.hpp"

namespace ldc::io {

void write_instance(std::ostream& os, const LdcInstance& inst) {
  os << "# ldc instance\n";
  os << "space " << inst.color_space << "\n";
  for (NodeId v = 0; v < inst.n(); ++v) {
    os << "l " << v;
    const auto& l = inst.lists[v];
    for (std::size_t i = 0; i < l.size(); ++i) {
      os << " " << l.colors[i] << "/" << l.defects[i];
    }
    os << "\n";
  }
}

LdcInstance read_instance(std::istream& is, const Graph& g) {
  LdcInstance inst;
  inst.graph = &g;
  inst.lists.resize(g.n());
  std::string line;
  std::size_t lineno = 0;
  bool have_space = false;
  auto fail = [&lineno](const std::string& why) {
    throw ParseError("instance line " + std::to_string(lineno) + ": " +
                     why);
  };
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag[0] == '#') continue;
    if (tag == "space") {
      if (have_space) fail("duplicate 'space' record");
      if (!(ls >> inst.color_space) || inst.color_space == 0) {
        fail("expected positive color space");
      }
      have_space = true;
    } else if (tag == "l") {
      if (!have_space) fail("'l' before 'space'");
      NodeId v = 0;
      if (!(ls >> v)) fail("expected node id");
      if (v >= g.n()) fail("node out of range");
      if (!inst.lists[v].colors.empty()) fail("duplicate list for node");
      std::string cell;
      while (ls >> cell) {
        const auto slash = cell.find('/');
        if (slash == std::string::npos) fail("expected <color>/<defect>");
        try {
          inst.lists[v].colors.push_back(
              static_cast<Color>(std::stoul(cell.substr(0, slash))));
          inst.lists[v].defects.push_back(
              static_cast<std::uint32_t>(std::stoul(cell.substr(slash + 1))));
        } catch (const std::exception&) {
          fail("bad number in '" + cell + "'");
        }
      }
      try {
        inst.lists[v].normalize();
      } catch (const std::exception& e) {
        fail(e.what());
      }
    } else {
      fail("unknown record '" + tag + "'");
    }
  }
  if (!have_space) throw ParseError("instance: missing 'space'");
  // Files must cover every node: a missing 'l' record means the file was
  // truncated (check() tolerates empty lists for programmatic instances,
  // so the reader has to enforce coverage itself or truncation would load
  // silently as an unsolvable instance).
  for (NodeId v = 0; v < g.n(); ++v) {
    if (inst.lists[v].colors.empty()) {
      throw ParseError("instance: no list for node " + std::to_string(v) +
                       " (truncated file?)");
    }
  }
  inst.check();
  return inst;
}

void save_instance(const std::string& path, const LdcInstance& inst) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_instance(f, inst);
}

LdcInstance load_instance(const std::string& path, const Graph& g) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_instance(f, g);
}

}  // namespace ldc::io
