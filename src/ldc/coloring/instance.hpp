// Problem instances for (oriented) list defective coloring.
//
// Definition 1.1 of the paper: every node v has a color list L_v from a
// color space C and a defect function d_v : L_v -> N0. A coloring phi is
//   * a list defective coloring if every v has at most d_v(phi(v))
//     neighbors of color phi(v);
//   * an oriented list defective coloring (OLDC) if the bound applies to
//     out-neighbors w.r.t. a given orientation;
//   * a list arbdefective coloring if the orientation is part of the output.
//
// The generalized form of Section 3.2 counts a neighbor as conflicting when
// |phi(u) - phi(v)| <= g for a parameter g >= 0 (g = 0 is the plain OLDC).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "ldc/graph/graph.hpp"
#include "ldc/graph/orientation.hpp"

namespace ldc {

/// Thrown when a solver determines (or strongly suspects, via a failed
/// repair pass) that the instance it was handed cannot be solved — e.g. a
/// recursion step produced a sub-instance violating the existence bounds.
/// Pipelines catch this to defer the affected nodes to a later stage.
class InfeasibleError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

using Color = std::uint32_t;

/// Sentinel for "not yet colored".
inline constexpr Color kUncolored = std::numeric_limits<Color>::max();

/// A node's color list with per-color defect budgets. Colors are kept
/// sorted and unique; defects[i] belongs to colors[i].
struct ColorList {
  std::vector<Color> colors;
  std::vector<std::uint32_t> defects;

  std::size_t size() const { return colors.size(); }

  /// Index of `c` in the list, or size() if absent (binary search).
  std::size_t find(Color c) const;

  bool contains(Color c) const { return find(c) != size(); }

  /// Defect budget of color c; requires contains(c).
  std::uint32_t defect_of(Color c) const;

  /// The paper's existence weight: sum of (d_v(x) + 1) over the list.
  std::uint64_t weight() const;

  /// The Theorem 1.1 weight: sum of (d_v(x) + 1)^2 over the list.
  std::uint64_t weight_sq() const;

  /// sum of (d_v(x) + 1)^(1+nu) for real nu (Theorems 1.2 / 1.3).
  double weight_pow(double one_plus_nu) const;

  /// Sorts colors (carrying defects along) and checks uniqueness.
  void normalize();
};

/// A list defective coloring instance on an undirected graph. For oriented
/// problems, pair with an Orientation (see OldcInstance).
struct LdcInstance {
  const Graph* graph = nullptr;
  std::uint64_t color_space = 0;  ///< |C|; colors are in [0, color_space)
  std::vector<ColorList> lists;   ///< one per node

  std::uint32_t n() const { return graph->n(); }

  /// Maximum list size Lambda.
  std::size_t max_list_size() const;

  /// Checks structural sanity: list sizes match n, colors within the color
  /// space, sorted and unique. Throws on violation.
  void check() const;
};

/// Oriented instance: the orientation is an input (Definition 1.1, second
/// bullet).
struct OldcInstance {
  LdcInstance ldc;
  Orientation orientation;

  std::uint32_t n() const { return ldc.n(); }
};

/// A (partial) coloring; kUncolored marks uncolored nodes.
using Coloring = std::vector<Color>;

/// Result of a solver that also outputs an orientation (list arbdefective
/// coloring, Definition 1.1 third bullet).
struct ArbdefectiveColoring {
  Coloring colors;
  Orientation orientation;
};

}  // namespace ldc
