// Validity oracles — the ground truth every algorithm is tested against.
//
// Each validator re-checks an output coloring directly from the definitions
// in the paper (Definition 1.1 and the generalized-g variant of Section
// 3.2), independently of any algorithm state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ldc/coloring/instance.hpp"

namespace ldc {

struct Violation {
  NodeId node = 0;
  Color color = 0;
  std::uint32_t conflicts = 0;  ///< conflicting (out-)neighbors found
  std::uint32_t budget = 0;     ///< allowed defect for that color
  std::string reason;
};

struct ValidationResult {
  bool ok = true;
  std::vector<Violation> violations;

  explicit operator bool() const { return ok; }
};

/// Every node colored, with a color from its own list.
ValidationResult validate_membership(const LdcInstance& inst,
                                     const Coloring& phi);

/// List defective coloring validity (undirected; conflict when
/// |phi(u) - phi(v)| <= g; g = 0 is the standard definition).
ValidationResult validate_ldc(const LdcInstance& inst, const Coloring& phi,
                              std::uint32_t g = 0);

/// Oriented validity: defect counted over out-neighbors only.
ValidationResult validate_oldc(const LdcInstance& inst,
                               const Orientation& orientation,
                               const Coloring& phi, std::uint32_t g = 0);

/// Arbdefective validity: oriented validity w.r.t. the output orientation.
ValidationResult validate_arbdefective(const LdcInstance& inst,
                                       const ArbdefectiveColoring& out);

/// Proper coloring (no two adjacent nodes share a color); list membership
/// must be checked separately when lists exist.
ValidationResult validate_proper(const Graph& g, const Coloring& phi);

/// d-defective coloring with colors from [0, c): every color class induces
/// max degree <= d.
ValidationResult validate_defective(const Graph& g, const Coloring& phi,
                                    std::uint32_t c, std::uint32_t d);

/// Number of distinct colors used by colored nodes.
std::size_t colors_used(const Coloring& phi);

}  // namespace ldc
