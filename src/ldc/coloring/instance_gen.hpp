// Workload generators: list defective coloring instances over a graph.
//
// These produce the instance families the experiment suite sweeps:
//  * (degree+1)-list coloring instances (lists of size deg(v)+1, defect 0) —
//    the problem Theorem 1.4 solves;
//  * uniform d-defective c-coloring instances (the classic problem as an
//    LDC special case);
//  * random LDC/OLDC instances scaled to meet a requested weight condition
//    sum (d_v(x)+1)^(1+nu) >= bound_v * kappa, the precondition shape of
//    Theorems 1.1-1.3.
#pragma once

#include <cstdint>

#include "ldc/coloring/instance.hpp"

namespace ldc {

/// The standard (Delta+1)-coloring problem as a list instance: every list is
/// {0, ..., Delta} with all defects 0.
LdcInstance delta_plus_one_instance(const Graph& g);

/// (degree+1)-list coloring: node v receives deg(v)+1 distinct colors drawn
/// deterministically from [0, color_space); defects all 0. color_space must
/// be >= Delta+1.
LdcInstance degree_plus_one_instance(const Graph& g,
                                     std::uint64_t color_space,
                                     std::uint64_t seed);

/// Classic d-defective c-coloring as an LDC instance: every list is
/// {0,...,c-1}, every defect d.
LdcInstance uniform_defective_instance(const Graph& g, std::uint32_t c,
                                       std::uint32_t d);

/// Parameters for random weighted instances.
struct RandomLdcParams {
  std::uint64_t color_space = 0;  ///< |C|
  double one_plus_nu = 2.0;       ///< exponent 1+nu in the weight condition
  double kappa = 1.0;             ///< multiplicative slack
  std::uint32_t max_defect = 0;   ///< defects drawn from [0, max_defect]
  std::uint64_t seed = 1;
};

/// Random LDC instance where each node v's list satisfies
///   sum_x (d_v(x)+1)^(1+nu) >= deg(v)^(1+nu) * kappa.
/// Defects are drawn uniformly from [0, max_defect]; colors are added until
/// the weight condition holds (so list sizes adapt to the drawn defects).
LdcInstance random_weighted_instance(const Graph& g,
                                     const RandomLdcParams& params);

/// Oriented variant: the per-node bound uses beta_v of the given
/// orientation instead of deg(v).
LdcInstance random_weighted_oriented_instance(const Graph& g,
                                              const Orientation& o,
                                              const RandomLdcParams& params);

}  // namespace ldc
