#include "ldc/coloring/instance_gen.hpp"

#include <cmath>
#include <stdexcept>

#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

// Draws a list of distinct colors with random defects until the node's
// weight sum_x (d(x)+1)^(1+nu) reaches `target`, or the color space is
// exhausted (then throws: the instance parameters are infeasible).
ColorList draw_until_weight(const Prf& prf, std::uint64_t node_key,
                            std::uint64_t color_space, double one_plus_nu,
                            double target, std::uint32_t max_defect) {
  ColorList list;
  double weight = 0.0;
  std::uint64_t i = 0;
  // Estimate list length to pre-sample distinct colors in one pass; average
  // per-color weight is at least 1, so target colors always suffice if the
  // space allows; otherwise take the whole space.
  while (weight < target) {
    if (list.colors.size() >= color_space) {
      throw std::invalid_argument(
          "random instance: color space too small for weight target");
    }
    Color c = static_cast<Color>(
        prf.at_below(hash_combine(node_key, i), color_space));
    ++i;
    // Skip duplicates (list stays small relative to space in practice).
    bool dup = false;
    for (Color existing : list.colors) {
      if (existing == c) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    const std::uint32_t d =
        max_defect == 0
            ? 0
            : static_cast<std::uint32_t>(prf.at_below(
                  hash_combine(node_key, i * 2654435761ULL + 17),
                  static_cast<std::uint64_t>(max_defect) + 1));
    list.colors.push_back(c);
    list.defects.push_back(d);
    weight += std::pow(static_cast<double>(d) + 1.0, one_plus_nu);
  }
  list.normalize();
  return list;
}

}  // namespace

LdcInstance delta_plus_one_instance(const Graph& g) {
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = static_cast<std::uint64_t>(g.max_degree()) + 1;
  inst.lists.resize(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    auto& l = inst.lists[v];
    l.colors.resize(inst.color_space);
    l.defects.assign(inst.color_space, 0);
    for (std::uint64_t c = 0; c < inst.color_space; ++c) {
      l.colors[c] = static_cast<Color>(c);
    }
  }
  return inst;
}

LdcInstance degree_plus_one_instance(const Graph& g,
                                     std::uint64_t color_space,
                                     std::uint64_t seed) {
  if (color_space < static_cast<std::uint64_t>(g.max_degree()) + 1) {
    throw std::invalid_argument(
        "degree_plus_one_instance: color space < Delta+1");
  }
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = color_space;
  inst.lists.resize(g.n());
  const Prf prf(seed);
  for (NodeId v = 0; v < g.n(); ++v) {
    const std::size_t k = g.degree(v) + 1;
    auto picks = sample_distinct(prf, static_cast<std::uint64_t>(v) << 32,
                                 color_space, k);
    auto& l = inst.lists[v];
    l.colors.assign(picks.begin(), picks.end());
    l.defects.assign(k, 0);
  }
  return inst;
}

LdcInstance uniform_defective_instance(const Graph& g, std::uint32_t c,
                                       std::uint32_t d) {
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = c;
  inst.lists.resize(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    auto& l = inst.lists[v];
    l.colors.resize(c);
    l.defects.assign(c, d);
    for (std::uint32_t x = 0; x < c; ++x) l.colors[x] = x;
  }
  return inst;
}

LdcInstance random_weighted_instance(const Graph& g,
                                     const RandomLdcParams& params) {
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = params.color_space;
  inst.lists.resize(g.n());
  const Prf prf(params.seed);
  for (NodeId v = 0; v < g.n(); ++v) {
    const double target =
        std::pow(static_cast<double>(g.degree(v)), params.one_plus_nu) *
            params.kappa +
        1.0;
    inst.lists[v] = draw_until_weight(prf, v, params.color_space,
                                      params.one_plus_nu, target,
                                      params.max_defect);
  }
  return inst;
}

LdcInstance random_weighted_oriented_instance(const Graph& g,
                                              const Orientation& o,
                                              const RandomLdcParams& params) {
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = params.color_space;
  inst.lists.resize(g.n());
  const Prf prf(params.seed);
  for (NodeId v = 0; v < g.n(); ++v) {
    const double target =
        std::pow(static_cast<double>(o.beta(v)), params.one_plus_nu) *
            params.kappa +
        1.0;
    inst.lists[v] = draw_until_weight(prf, v, params.color_space,
                                      params.one_plus_nu, target,
                                      params.max_defect);
  }
  return inst;
}

}  // namespace ldc
