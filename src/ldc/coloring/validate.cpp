#include "ldc/coloring/validate.hpp"

#include <cstdlib>
#include <set>

namespace ldc {
namespace {

bool conflicting(Color a, Color b, std::uint32_t g) {
  if (a == kUncolored || b == kUncolored) return false;
  const std::int64_t d = static_cast<std::int64_t>(a) - b;
  return static_cast<std::uint64_t>(std::llabs(d)) <= g;
}

void add_violation(ValidationResult& r, NodeId v, Color c,
                   std::uint32_t conflicts, std::uint32_t budget,
                   std::string reason) {
  r.ok = false;
  r.violations.push_back({v, c, conflicts, budget, std::move(reason)});
}

}  // namespace

ValidationResult validate_membership(const LdcInstance& inst,
                                     const Coloring& phi) {
  ValidationResult r;
  if (phi.size() != inst.n()) {
    add_violation(r, 0, 0, 0, 0, "coloring size != n");
    return r;
  }
  for (NodeId v = 0; v < inst.n(); ++v) {
    if (phi[v] == kUncolored) {
      add_violation(r, v, phi[v], 0, 0, "node uncolored");
    } else if (!inst.lists[v].contains(phi[v])) {
      add_violation(r, v, phi[v], 0, 0, "color not in node's list");
    }
  }
  return r;
}

ValidationResult validate_ldc(const LdcInstance& inst, const Coloring& phi,
                              std::uint32_t g) {
  ValidationResult r = validate_membership(inst, phi);
  if (!r.ok) return r;
  const Graph& graph = *inst.graph;
  for (NodeId v = 0; v < inst.n(); ++v) {
    std::uint32_t conflicts = 0;
    for (NodeId u : graph.neighbors(v)) {
      if (conflicting(phi[v], phi[u], g)) ++conflicts;
    }
    const std::uint32_t budget = inst.lists[v].defect_of(phi[v]);
    if (conflicts > budget) {
      add_violation(r, v, phi[v], conflicts, budget, "defect exceeded");
    }
  }
  return r;
}

ValidationResult validate_oldc(const LdcInstance& inst,
                               const Orientation& orientation,
                               const Coloring& phi, std::uint32_t g) {
  ValidationResult r = validate_membership(inst, phi);
  if (!r.ok) return r;
  for (NodeId v = 0; v < inst.n(); ++v) {
    std::uint32_t conflicts = 0;
    for (NodeId u : orientation.out(v)) {
      if (conflicting(phi[v], phi[u], g)) ++conflicts;
    }
    const std::uint32_t budget = inst.lists[v].defect_of(phi[v]);
    if (conflicts > budget) {
      add_violation(r, v, phi[v], conflicts, budget,
                    "oriented defect exceeded");
    }
  }
  return r;
}

ValidationResult validate_arbdefective(const LdcInstance& inst,
                                       const ArbdefectiveColoring& out) {
  return validate_oldc(inst, out.orientation, out.colors, 0);
}

ValidationResult validate_proper(const Graph& g, const Coloring& phi) {
  ValidationResult r;
  if (phi.size() != g.n()) {
    add_violation(r, 0, 0, 0, 0, "coloring size != n");
    return r;
  }
  for (NodeId v = 0; v < g.n(); ++v) {
    if (phi[v] == kUncolored) {
      add_violation(r, v, phi[v], 0, 0, "node uncolored");
      continue;
    }
    for (NodeId u : g.neighbors(v)) {
      if (phi[u] == phi[v]) {
        add_violation(r, v, phi[v], 1, 0, "monochromatic edge");
        break;
      }
    }
  }
  return r;
}

ValidationResult validate_defective(const Graph& g, const Coloring& phi,
                                    std::uint32_t c, std::uint32_t d) {
  ValidationResult r;
  if (phi.size() != g.n()) {
    add_violation(r, 0, 0, 0, 0, "coloring size != n");
    return r;
  }
  for (NodeId v = 0; v < g.n(); ++v) {
    if (phi[v] == kUncolored || phi[v] >= c) {
      add_violation(r, v, phi[v], 0, 0, "color outside [0, c)");
      continue;
    }
    std::uint32_t conflicts = 0;
    for (NodeId u : g.neighbors(v)) {
      if (phi[u] == phi[v]) ++conflicts;
    }
    if (conflicts > d) {
      add_violation(r, v, phi[v], conflicts, d, "defect exceeded");
    }
  }
  return r;
}

std::size_t colors_used(const Coloring& phi) {
  std::set<Color> used;
  for (Color c : phi) {
    if (c != kUncolored) used.insert(c);
  }
  return used.size();
}

}  // namespace ldc
