// List defective instance serialization.
//
// Text format ('#' comments):
//   space <|C|>
//   l <node> <color>/<defect> [<color>/<defect> ...]
// Nodes without an 'l' record get an empty list (rejected by check()), so
// files are expected to cover every node. The graph travels separately
// (ldc/graph/io.hpp); loading binds the instance to the given graph.
#pragma once

#include <iosfwd>
#include <string>

#include "ldc/coloring/instance.hpp"

namespace ldc::io {

void write_instance(std::ostream& os, const LdcInstance& inst);

/// Parses an instance over `g`; throws std::invalid_argument with a line
/// number on malformed input.
LdcInstance read_instance(std::istream& is, const Graph& g);

void save_instance(const std::string& path, const LdcInstance& inst);
LdcInstance load_instance(const std::string& path, const Graph& g);

}  // namespace ldc::io
