// List defective instance serialization.
//
// Text format ('#' comments):
//   space <|C|>
//   l <node> <color>/<defect> [<color>/<defect> ...]
// Nodes without an 'l' record get an empty list (rejected by the reader —
// a truncated file must not load), so files must cover every node. The graph travels separately
// (ldc/graph/io.hpp); loading binds the instance to the given graph.
#pragma once

#include <iosfwd>
#include <string>

#include "ldc/coloring/instance.hpp"
#include "ldc/graph/io_error.hpp"

namespace ldc::io {

void write_instance(std::ostream& os, const LdcInstance& inst);

/// Parses an instance over `g`; throws io::ParseError (a
/// std::invalid_argument) with a line number on malformed input. A
/// truncated file that leaves some node without an 'l' record fails the
/// final LdcInstance::check() rather than loading silently.
LdcInstance read_instance(std::istream& is, const Graph& g);

void save_instance(const std::string& path, const LdcInstance& inst);
LdcInstance load_instance(const std::string& path, const Graph& g);

}  // namespace ldc::io
