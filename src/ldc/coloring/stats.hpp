// Quality statistics of (defective) colorings — how much of the defect
// budget a coloring actually consumes, color histograms, and per-class
// degree profiles. Used by the experiment harnesses and the examples.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ldc/coloring/instance.hpp"

namespace ldc {

struct ColoringStats {
  std::size_t colors_used = 0;
  std::map<Color, std::uint32_t> histogram;      ///< class sizes
  std::uint32_t max_class_size = 0;
  std::uint32_t monochromatic_conflicts = 0;     ///< conflicting node pairs
  std::uint32_t max_realized_defect = 0;         ///< worst per-node count
  double avg_realized_defect = 0.0;
  std::uint64_t total_defect_budget = 0;         ///< sum d_v(phi(v))
  /// Fraction of the per-node budgets consumed (0 for proper colorings).
  double budget_utilization = 0.0;
};

/// Undirected statistics; conflicts counted with |x-y| <= g.
ColoringStats coloring_stats(const LdcInstance& inst, const Coloring& phi,
                             std::uint32_t g = 0);

/// Oriented statistics: realized defects over out-neighbors.
ColoringStats coloring_stats_oriented(const LdcInstance& inst,
                                      const Orientation& orientation,
                                      const Coloring& phi,
                                      std::uint32_t g = 0);

}  // namespace ldc
