#include "ldc/graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

namespace ldc {

Graph::Graph(std::vector<std::uint32_t> offsets, std::vector<NodeId> adj,
             std::vector<std::uint64_t> ids)
    : own_adj_(std::move(adj)) {
  assert(!offsets.empty());
  assert(offsets.back() == own_adj_.size());
  own_offsets_.assign(offsets.begin(), offsets.end());
  offsets_ = own_offsets_;
  adj_ = own_adj_;
  const std::uint32_t nodes = n();
  for (NodeId v = 0; v < nodes; ++v) {
    max_degree_ = std::max(max_degree_, degree(v));
    assert(std::is_sorted(neighbors(v).begin(), neighbors(v).end()));
  }
  if (ids.empty()) {
    // Identity ids stay implicit (ids_ empty): id(v) == v.
    max_id_ = nodes == 0 ? 0 : nodes - 1;
  } else {
    set_ids(std::move(ids));
  }
}

Graph Graph::view(std::span<const std::uint64_t> offsets,
                  std::span<const NodeId> adj,
                  std::span<const std::uint64_t> ids,
                  std::uint32_t max_degree, std::uint64_t max_id,
                  std::shared_ptr<const void> pin) {
  if (offsets.empty() || offsets.back() != adj.size()) {
    throw std::invalid_argument("Graph::view: offsets do not match adj");
  }
  if (!ids.empty() && ids.size() != offsets.size() - 1) {
    throw std::invalid_argument("Graph::view: wrong id count");
  }
  Graph g;
  g.offsets_ = offsets;
  g.adj_ = adj;
  g.ids_ = ids;
  g.max_degree_ = max_degree;
  g.max_id_ = max_id;
  g.pin_ = std::move(pin);
  return g;
}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  // Each span either aliases the source's own_* vector (rebind to our
  // fresh copy) or external storage (copy the span + keepalive verbatim).
  own_offsets_ = other.own_offsets_;
  own_adj_ = other.own_adj_;
  own_ids_ = other.own_ids_;
  pin_ = other.pin_;
  offsets_ = other.offsets_.data() == other.own_offsets_.data()
                 ? std::span<const std::uint64_t>(own_offsets_)
                 : other.offsets_;
  adj_ = other.adj_.data() == other.own_adj_.data()
             ? std::span<const NodeId>(own_adj_)
             : other.adj_;
  ids_ = other.ids_.data() == other.own_ids_.data() && !other.ids_.empty()
             ? std::span<const std::uint64_t>(own_ids_)
             : other.ids_;
  max_degree_ = other.max_degree_;
  max_id_ = other.max_id_;
  return *this;
}

void Graph::set_ids(std::vector<std::uint64_t> ids) {
  if (ids.size() != n()) {
    throw std::invalid_argument("Graph::set_ids: wrong id count");
  }
  std::unordered_set<std::uint64_t> seen(ids.begin(), ids.end());
  if (seen.size() != ids.size()) {
    throw std::invalid_argument("Graph::set_ids: ids must be unique");
  }
  own_ids_ = std::move(ids);
  ids_ = own_ids_;
  max_id_ = 0;
  for (auto id : ids_) max_id_ = std::max(max_id_, id);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::uint32_t Graph::neighbor_index(NodeId v, NodeId u) const {
  const auto nb = neighbors(v);
  const auto it = std::lower_bound(nb.begin(), nb.end(), u);
  if (it == nb.end() || *it != u) return n();
  return static_cast<std::uint32_t>(it - nb.begin());
}

}  // namespace ldc
