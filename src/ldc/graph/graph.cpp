#include "ldc/graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

namespace ldc {

Graph::Graph(std::vector<std::uint32_t> offsets, std::vector<NodeId> adj,
             std::vector<std::uint64_t> ids)
    : offsets_(std::move(offsets)), adj_(std::move(adj)) {
  assert(!offsets_.empty());
  assert(offsets_.back() == adj_.size());
  const std::uint32_t nodes = n();
  for (NodeId v = 0; v < nodes; ++v) {
    max_degree_ = std::max(max_degree_, degree(v));
    assert(std::is_sorted(neighbors(v).begin(), neighbors(v).end()));
  }
  if (ids.empty()) {
    ids_.resize(nodes);
    for (NodeId v = 0; v < nodes; ++v) ids_[v] = v;
  } else {
    set_ids(std::move(ids));
    return;
  }
  max_id_ = nodes == 0 ? 0 : nodes - 1;
}

void Graph::set_ids(std::vector<std::uint64_t> ids) {
  if (ids.size() != n()) {
    throw std::invalid_argument("Graph::set_ids: wrong id count");
  }
  std::unordered_set<std::uint64_t> seen(ids.begin(), ids.end());
  if (seen.size() != ids.size()) {
    throw std::invalid_argument("Graph::set_ids: ids must be unique");
  }
  ids_ = std::move(ids);
  max_id_ = 0;
  for (auto id : ids_) max_id_ = std::max(max_id_, id);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::uint32_t Graph::neighbor_index(NodeId v, NodeId u) const {
  const auto nb = neighbors(v);
  const auto it = std::lower_bound(nb.begin(), nb.end(), u);
  if (it == nb.end() || *it != u) return n();
  return static_cast<std::uint32_t>(it - nb.begin());
}

}  // namespace ldc
