#include "ldc/graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "ldc/graph/builder.hpp"
#include "ldc/graph/io_error.hpp"

namespace ldc::io {

namespace {
// Cap on the declared node count: the reader allocates O(n) state up front,
// so an attacker-chosen header like "n 4000000000" must fail cleanly
// instead of attempting a multi-gigabyte allocation. 2^26 nodes is far
// beyond any graph the simulator can usefully hold.
constexpr std::uint64_t kMaxNodes = std::uint64_t{1} << 26;
}  // namespace

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# ldc edge list\n";
  os << "n " << g.n() << "\n";
  bool custom_ids = false;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (g.id(v) != v) {
      custom_ids = true;
      break;
    }
  }
  if (custom_ids) {
    for (NodeId v = 0; v < g.n(); ++v) {
      os << "id " << v << " " << g.id(v) << "\n";
    }
  }
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) os << "e " << u << " " << v << "\n";
    }
  }
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  std::optional<GraphBuilder> builder;
  std::vector<std::uint64_t> ids;
  std::unordered_set<std::uint64_t> seen_edges;
  bool any_custom_id = false;
  auto fail = [&lineno](const std::string& why) {
    throw ParseError("edge list line " + std::to_string(lineno) + ": " +
                     why);
  };
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag[0] == '#') continue;
    if (tag == "n") {
      std::uint64_t n = 0;
      if (!(ls >> n)) fail("expected node count");
      if (n > kMaxNodes) {
        fail("node count " + std::to_string(n) + " exceeds limit " +
             std::to_string(kMaxNodes));
      }
      if (builder.has_value()) fail("duplicate 'n' record");
      builder.emplace(static_cast<std::uint32_t>(n));
      ids.resize(n);
      for (NodeId v = 0; v < n; ++v) ids[v] = v;
    } else if (tag == "id") {
      if (!builder.has_value()) fail("'id' before 'n'");
      NodeId v = 0;
      std::uint64_t id = 0;
      if (!(ls >> v >> id)) fail("expected 'id <node> <identifier>'");
      if (v >= builder->n()) fail("node out of range");
      ids[v] = id;
      any_custom_id = true;
    } else if (tag == "e") {
      if (!builder.has_value()) fail("'e' before 'n'");
      NodeId u = 0, v = 0;
      if (!(ls >> u >> v)) fail("expected 'e <u> <v>'");
      // GraphBuilder deduplicates at build() for generator convenience; in
      // a file a repeated edge is a malformed document (often a sign of a
      // truncated-and-concatenated upload), so reject it here.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(u, v)) << 32) |
          std::max(u, v);
      if (!seen_edges.insert(key).second) {
        fail("duplicate edge {" + std::to_string(u) + ", " +
             std::to_string(v) + "}");
      }
      try {
        builder->add_edge(u, v);
      } catch (const std::exception& e) {
        fail(e.what());
      }
    } else {
      fail("unknown record '" + tag + "'");
    }
  }
  if (!builder.has_value()) {
    throw ParseError("edge list: missing 'n' record");
  }
  Graph g = builder->build();
  if (any_custom_id) g.set_ids(std::move(ids));
  return g;
}

void write_dot(std::ostream& os, const Graph& g, const Coloring* phi) {
  // A qualitative palette cycled over color classes.
  static const char* kPalette[] = {"#4e79a7", "#f28e2b", "#e15759",
                                   "#76b7b2", "#59a14f", "#edc948",
                                   "#b07aa1", "#ff9da7", "#9c755f",
                                   "#bab0ac"};
  os << "graph G {\n  node [style=filled];\n";
  for (NodeId v = 0; v < g.n(); ++v) {
    os << "  " << v << " [label=\"" << v;
    if (phi != nullptr && (*phi)[v] != kUncolored) {
      os << "\\nc" << (*phi)[v];
      os << "\" fillcolor=\"" << kPalette[(*phi)[v] % 10];
    }
    os << "\"];\n";
  }
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) os << "  " << u << " -- " << v << ";\n";
    }
  }
  os << "}\n";
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_edge_list(f, g);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_edge_list(f);
}

}  // namespace ldc::io
