// Deterministic workload graph generators.
//
// These supply the graph families the experiment suite sweeps over: rings
// (Linial lower-bound family), cliques (tightness of the existence lemmas),
// random regular and G(n,p) graphs (typical instances), trees, tori, and
// line graphs (the bounded-neighborhood-independence family the paper's
// related work discusses).
#pragma once

#include <cstdint>

#include "ldc/graph/graph.hpp"

namespace ldc::gen {

/// Cycle on n >= 3 nodes.
Graph ring(std::uint32_t n);

/// Path on n >= 1 nodes.
Graph path(std::uint32_t n);

/// Complete graph K_n.
Graph clique(std::uint32_t n);

/// Complete bipartite graph K_{a,b}.
Graph complete_bipartite(std::uint32_t a, std::uint32_t b);

/// Erdos-Renyi G(n, p).
Graph gnp(std::uint32_t n, double p, std::uint64_t seed);

/// Random d-regular-ish graph via the configuration model with rejection of
/// self-loops/multi-edges; the result has maximum degree exactly <= d and is
/// d-regular except for O(1) deficient nodes when pairing gets stuck.
Graph random_regular(std::uint32_t n, std::uint32_t d, std::uint64_t seed);

/// w x h torus grid (4-regular when w,h >= 3).
Graph torus(std::uint32_t w, std::uint32_t h);

/// Uniform random labelled tree (Prufer sequence).
Graph random_tree(std::uint32_t n, std::uint64_t seed);

/// Chung-Lu style power-law graph with exponent `alpha` (> 2) and expected
/// average degree roughly `avg_deg`.
Graph power_law(std::uint32_t n, double alpha, double avg_deg,
                std::uint64_t seed);

/// Line graph of g: one node per edge of g, adjacency iff edges share an
/// endpoint. Bounded neighborhood independence family.
Graph line_graph(const Graph& g);

/// Assigns spread-out pseudorandom unique IDs from [0, id_space) to g's
/// nodes (exercises the log* dependence on identifier size).
void scramble_ids(Graph& g, std::uint64_t id_space, std::uint64_t seed);

}  // namespace ldc::gen
