// Induced subgraphs with node index mappings.
//
// Theorem 1.3's transformer and Lemma A.2's per-color-class Euler
// orientation both operate on induced subgraphs while needing to map results
// back to the parent graph.
#pragma once

#include <span>
#include <vector>

#include "ldc/graph/graph.hpp"

namespace ldc {

struct Subgraph {
  Graph graph;                       ///< the induced subgraph
  std::vector<NodeId> to_parent;     ///< subgraph node -> parent node
  std::vector<NodeId> from_parent;   ///< parent node -> subgraph node, or
                                     ///< parent.n() if not included
};

/// Induced subgraph on `nodes` (need not be sorted; duplicates rejected).
/// Node ids are inherited from the parent.
Subgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes);

}  // namespace ldc
