#include "ldc/graph/builder.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ldc {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loop");
  if (u >= n_ || v >= n_) throw std::out_of_range("GraphBuilder: bad node");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  return std::find(edges_.begin(), edges_.end(), std::make_pair(u, v)) !=
         edges_.end();
}

std::size_t GraphBuilder::unique_edge_count() const {
  auto edges = edges_;
  std::sort(edges.begin(), edges.end());
  return static_cast<std::size_t>(
      std::unique(edges.begin(), edges.end()) - edges.begin());
}

Graph GraphBuilder::build() const {
  auto edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<std::uint32_t> deg(n_, 0);
  for (const auto& [u, v] : edges) {
    ++deg[u];
    ++deg[v];
  }
  std::vector<std::uint32_t> offsets(n_ + 1, 0);
  for (std::uint32_t v = 0; v < n_; ++v) offsets[v + 1] = offsets[v] + deg[v];
  std::vector<NodeId> adj(offsets.back());
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    adj[cursor[u]++] = v;
    adj[cursor[v]++] = u;
  }
  // Each per-node range is sorted already because edges were sorted by
  // (min, max) — but the v side inserts u values out of order; sort ranges.
  for (std::uint32_t v = 0; v < n_; ++v) {
    std::sort(adj.begin() + offsets[v], adj.begin() + offsets[v + 1]);
  }
  return Graph(std::move(offsets), std::move(adj));
}

}  // namespace ldc
