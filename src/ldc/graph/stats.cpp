#include "ldc/graph/stats.hpp"

#include <algorithm>

namespace ldc {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  if (g.n() == 0) return s;
  s.min_degree = g.degree(0);
  s.histogram.assign(g.max_degree() + 1, 0);
  std::uint64_t total = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto d = g.degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    total += d;
    ++s.histogram[d];
  }
  s.avg_degree = static_cast<double>(total) / g.n();
  return s;
}

bool check_graph(const Graph& g) {
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    if (!std::is_sorted(nb.begin(), nb.end())) return false;
    if (std::adjacent_find(nb.begin(), nb.end()) != nb.end()) return false;
    for (NodeId u : nb) {
      if (u == v) return false;
      if (u >= g.n()) return false;
      if (!g.has_edge(u, v)) return false;
    }
  }
  return true;
}

}  // namespace ldc
