// Degree statistics used by experiment harnesses and instance generators.
#pragma once

#include <cstdint>
#include <vector>

#include "ldc/graph/graph.hpp"

namespace ldc {

struct DegreeStats {
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  double avg_degree = 0.0;
  std::vector<std::uint64_t> histogram;  // histogram[d] = #nodes of degree d
};

DegreeStats degree_stats(const Graph& g);

/// Verifies basic structural sanity (symmetry, sortedness, no self loops);
/// returns true iff consistent. Used in generator tests.
bool check_graph(const Graph& g);

}  // namespace ldc
