// Restriction of an Orientation to an induced subgraph.
#pragma once

#include "ldc/graph/orientation.hpp"
#include "ldc/graph/subgraph.hpp"

namespace ldc {

/// Orientation of sub.graph inheriting the parent orientation's directions.
Orientation induced_orientation(const Orientation& parent,
                                const Subgraph& sub);

}  // namespace ldc
