#include "ldc/graph/orientation.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ldc/support/prf.hpp"

namespace ldc {

void Orientation::finalize(std::vector<std::vector<NodeId>>&& out_lists) {
  const auto n = static_cast<std::uint32_t>(out_lists.size());
  offsets_.assign(n + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    std::sort(out_lists[v].begin(), out_lists[v].end());
    offsets_[v + 1] =
        offsets_[v] + static_cast<std::uint32_t>(out_lists[v].size());
  }
  adj_.resize(offsets_.back());
  for (std::uint32_t v = 0; v < n; ++v) {
    std::copy(out_lists[v].begin(), out_lists[v].end(),
              adj_.begin() + offsets_[v]);
    max_beta_ = std::max(max_beta_, beta(v));
  }
}

Orientation::Orientation(const Graph& g,
                         std::vector<std::vector<NodeId>> out_lists) {
  if (out_lists.size() != g.n()) {
    throw std::invalid_argument("Orientation: wrong node count");
  }
  finalize(std::move(out_lists));
  // Validate: each undirected edge oriented exactly one way.
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) {
        const bool uv = has_out_edge(u, v);
        const bool vu = has_out_edge(v, u);
        if (uv == vu) {
          throw std::invalid_argument(
              "Orientation: edge must be oriented exactly one way");
        }
      }
    }
  }
}

Orientation Orientation::by_decreasing_id(const Graph& g) {
  std::vector<std::vector<NodeId>> out(g.n());
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (g.id(u) > g.id(v)) out[u].push_back(v);
    }
  }
  Orientation o;
  o.finalize(std::move(out));
  return o;
}

Orientation Orientation::random(const Graph& g, std::uint64_t seed) {
  const Prf prf(seed);
  std::vector<std::vector<NodeId>> out(g.n());
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) {
        const std::uint64_t key =
            hash_combine(static_cast<std::uint64_t>(u) << 32 | v, 0);
        if (prf.at(key) & 1) {
          out[u].push_back(v);
        } else {
          out[v].push_back(u);
        }
      }
    }
  }
  Orientation o;
  o.finalize(std::move(out));
  return o;
}

Orientation Orientation::bidirected(const Graph& g) {
  std::vector<std::vector<NodeId>> out(g.n());
  for (NodeId u = 0; u < g.n(); ++u) {
    const auto nb = g.neighbors(u);
    out[u].assign(nb.begin(), nb.end());
  }
  Orientation o;
  o.finalize(std::move(out));
  return o;
}

bool Orientation::has_out_edge(NodeId u, NodeId v) const {
  const auto o = out(u);
  return std::binary_search(o.begin(), o.end(), v);
}

}  // namespace ldc
