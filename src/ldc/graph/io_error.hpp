// Typed error for text-format readers (graph edge lists, LDC instances).
//
// Everything reaching these parsers is untrusted input — the CLI, the job
// service's graph-file path, downstream users exchanging files — so every
// malformed-input condition must surface as this one catchable type with a
// line-numbered message, never as a crash, a std::bad_alloc from an
// attacker-chosen allocation size, or a silently mis-loaded structure.
#pragma once

#include <stdexcept>
#include <string>

namespace ldc::io {

/// Thrown by read_edge_list / read_instance on malformed input. Derives
/// from std::invalid_argument so pre-existing catch sites keep working.
class ParseError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

}  // namespace ldc::io
