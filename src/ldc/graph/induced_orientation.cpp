#include "ldc/graph/induced_orientation.hpp"

namespace ldc {

Orientation induced_orientation(const Orientation& parent,
                                const Subgraph& sub) {
  std::vector<std::vector<NodeId>> out(sub.graph.n());
  for (NodeId i = 0; i < sub.graph.n(); ++i) {
    const NodeId p = sub.to_parent[i];
    for (NodeId q : parent.out(p)) {
      const NodeId j = sub.from_parent[q];
      if (j != static_cast<NodeId>(sub.from_parent.size())) {
        // q is in the subgraph iff from_parent[q] != parent.n(); the
        // sentinel equals the parent's node count.
        if (sub.graph.has_edge(i, j)) out[i].push_back(j);
      }
    }
  }
  return Orientation(sub.graph, std::move(out));
}

}  // namespace ldc
