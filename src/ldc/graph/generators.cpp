#include "ldc/graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "ldc/graph/builder.hpp"
#include "ldc/support/prf.hpp"

namespace ldc::gen {
namespace {

// In-RAM generators materialize every edge (and random_regular a stub per
// half-edge), so requested sizes must be bounded *in 64-bit* before any
// container is sized from them: a 32-bit product like torus's w*h or
// complete_bipartite's a+b used to wrap silently and build a garbage graph
// instead of failing. Callers wanting 10^8+-vertex families stream them
// through ldc/storage instead.
constexpr std::uint64_t kMaxInRamNodes = std::uint64_t{1} << 31;
constexpr std::uint64_t kMaxInRamEdges = std::uint64_t{1} << 31;

void require_fits(const char* what, std::uint64_t value, std::uint64_t cap) {
  if (value > cap) {
    throw std::overflow_error(std::string(what) + " = " +
                              std::to_string(value) +
                              " exceeds the in-RAM generator cap " +
                              std::to_string(cap) +
                              " (use the streaming corpus generators)");
  }
}

}  // namespace

Graph ring(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("ring: n >= 3 required");
  GraphBuilder b(n);
  for (std::uint32_t v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

Graph path(std::uint32_t n) {
  GraphBuilder b(n);
  for (std::uint32_t v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph clique(std::uint32_t n) {
  GraphBuilder b(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph complete_bipartite(std::uint32_t a, std::uint32_t b_) {
  require_fits("complete_bipartite: a+b",
               std::uint64_t{a} + std::uint64_t{b_}, kMaxInRamNodes);
  require_fits("complete_bipartite: a*b edges",
               std::uint64_t{a} * std::uint64_t{b_}, kMaxInRamEdges);
  GraphBuilder b(a + b_);
  for (std::uint32_t u = 0; u < a; ++u) {
    for (std::uint32_t v = 0; v < b_; ++v) b.add_edge(u, a + v);
  }
  return b.build();
}

Graph gnp(std::uint32_t n, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("gnp: bad p");
  GraphBuilder b(n);
  SplitMix64 rng(seed);
  if (p >= 0.2) {  // dense: direct coin flips
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = u + 1; v < n; ++v) {
        if (rng.next_double() < p) b.add_edge(u, v);
      }
    }
    return b.build();
  }
  // Sparse: geometric skipping.
  if (p <= 0.0) return b.build();
  const double logq = std::log1p(-p);
  std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t pos = 0;
  while (true) {
    const double r = rng.next_double();
    const std::uint64_t skip =
        static_cast<std::uint64_t>(std::floor(std::log1p(-r) / logq));
    if (skip > total || pos + skip >= total) break;
    pos += skip;
    // Decode pos -> (u, v).
    std::uint64_t idx = pos;
    std::uint32_t u = 0;
    std::uint64_t row = n - 1;
    while (idx >= row) {
      idx -= row;
      --row;
      ++u;
    }
    const std::uint32_t v = u + 1 + static_cast<std::uint32_t>(idx);
    b.add_edge(u, v);
    ++pos;
    if (pos >= total) break;
  }
  return b.build();
}

Graph random_regular(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  if (d >= n) throw std::invalid_argument("random_regular: d < n required");
  if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) {
    throw std::invalid_argument("random_regular: n*d must be even");
  }
  require_fits("random_regular: n*d stubs",
               static_cast<std::uint64_t>(n) * d, kMaxInRamEdges);
  SplitMix64 rng(seed);
  // Configuration model: random stub pairing, then repair invalid pairs
  // (self-loops / duplicates) by edge swaps with random existing edges.
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
  }
  std::set<std::pair<NodeId, NodeId>> edges;
  auto norm = [](NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  std::vector<NodeId> leftover;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId u = stubs[i], v = stubs[i + 1];
    if (u != v && edges.emplace(norm(u, v)).second) continue;
    leftover.push_back(u);
    leftover.push_back(v);
  }
  // Repair: connect each leftover stub pair (u, v) by splitting a random
  // existing edge (a, b) into (u, a) and (v, b). After enough random
  // retries any remaining stubs are dropped (rare; callers tolerate O(1)
  // deficient nodes).
  std::vector<std::pair<NodeId, NodeId>> pool(edges.begin(), edges.end());
  int budget = static_cast<int>(leftover.size()) * 200 + 200;
  while (leftover.size() >= 2 && budget-- > 0) {
    const NodeId u = leftover[leftover.size() - 2];
    const NodeId v = leftover[leftover.size() - 1];
    if (pool.empty()) break;
    auto& picked = pool[rng.next_below(pool.size())];
    NodeId a = picked.first, b = picked.second;
    if (rng.next() & 1) std::swap(a, b);
    if (a == u || a == v || b == u || b == v) continue;
    if (u != a && v != b && !edges.count(norm(u, a)) &&
        !edges.count(norm(v, b)) && edges.count(norm(a, b))) {
      edges.erase(norm(a, b));
      edges.insert(norm(u, a));
      edges.insert(norm(v, b));
      picked = norm(u, a);
      pool.push_back(norm(v, b));
      leftover.pop_back();
      leftover.pop_back();
    }
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

Graph torus(std::uint32_t w, std::uint32_t h) {
  if (w < 3 || h < 3) throw std::invalid_argument("torus: w,h >= 3 required");
  require_fits("torus: w*h", std::uint64_t{w} * std::uint64_t{h},
               kMaxInRamNodes);
  GraphBuilder b(w * h);
  auto at = [w](std::uint32_t x, std::uint32_t y) { return y * w + x; };
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      b.add_edge(at(x, y), at((x + 1) % w, y));
      b.add_edge(at(x, y), at(x, (y + 1) % h));
    }
  }
  return b.build();
}

Graph random_tree(std::uint32_t n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("random_tree: n >= 1");
  GraphBuilder b(n);
  if (n >= 2) {
    if (n == 2) {
      b.add_edge(0, 1);
    } else {
      // Prufer decoding.
      SplitMix64 rng(seed);
      std::vector<std::uint32_t> prufer(n - 2);
      for (auto& x : prufer) {
        x = static_cast<std::uint32_t>(rng.next_below(n));
      }
      std::vector<std::uint32_t> deg(n, 1);
      for (auto x : prufer) ++deg[x];
      std::set<std::uint32_t> leaves;
      for (std::uint32_t v = 0; v < n; ++v) {
        if (deg[v] == 1) leaves.insert(v);
      }
      for (auto x : prufer) {
        const std::uint32_t leaf = *leaves.begin();
        leaves.erase(leaves.begin());
        b.add_edge(leaf, x);
        if (--deg[x] == 1) leaves.insert(x);
      }
      const std::uint32_t a = *leaves.begin();
      const std::uint32_t c = *std::next(leaves.begin());
      b.add_edge(a, c);
    }
  }
  return b.build();
}

Graph power_law(std::uint32_t n, double alpha, double avg_deg,
                std::uint64_t seed) {
  if (alpha <= 2.0) throw std::invalid_argument("power_law: alpha > 2");
  SplitMix64 rng(seed);
  std::vector<double> weight(n);
  double total = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    weight[v] = std::pow(static_cast<double>(v + 1), -1.0 / (alpha - 1.0));
    total += weight[v];
  }
  const double scale = avg_deg * n / total;
  for (auto& w : weight) w *= scale;
  // Chung-Lu: edge {u,v} with prob min(1, wu*wv / (sum w)).
  const double wsum = avg_deg * n;
  GraphBuilder b(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      const double p = std::min(1.0, weight[u] * weight[v] / wsum);
      if (rng.next_double() < p) b.add_edge(u, v);
    }
  }
  return b.build();
}

Graph line_graph(const Graph& g) {
  // Enumerate edges (u < v) with stable indices.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  // Bucket edges per endpoint; edges sharing an endpoint are adjacent.
  std::vector<std::vector<std::uint32_t>> incident(g.n());
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    incident[edges[e].first].push_back(e);
    incident[edges[e].second].push_back(e);
  }
  GraphBuilder b(static_cast<std::uint32_t>(edges.size()));
  for (const auto& bucket : incident) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      for (std::size_t j = i + 1; j < bucket.size(); ++j) {
        b.add_edge(bucket[i], bucket[j]);
      }
    }
  }
  return b.build();
}

void scramble_ids(Graph& g, std::uint64_t id_space, std::uint64_t seed) {
  if (id_space < g.n()) {
    throw std::invalid_argument("scramble_ids: id_space < n");
  }
  const Prf prf(seed);
  auto picks = sample_distinct(prf, 0, id_space, g.n());
  // sample_distinct returns sorted ids; shuffle deterministically so ids
  // are not correlated with node indices.
  SplitMix64 rng(hash_combine(seed, 0xabcdef));
  for (std::size_t i = picks.size(); i > 1; --i) {
    std::swap(picks[i - 1], picks[rng.next_below(i)]);
  }
  g.set_ids(std::move(picks));
}

}  // namespace ldc::gen
