// Contiguous vertex-range partitions of a CSR graph for sharded execution.
//
// A Partition splits [0, n) into K contiguous ascending ranges; shard k
// owns [begin(k), end(k)). Contiguity is the determinism lever: the
// concatenation of the shards' sender ranges in shard order *is* the
// serial sender order, so a sharded engine that merges per-shard results
// ascending reproduces the serial delivery order byte for byte (the same
// argument Network::kParallel already relies on, see DESIGN.md §11).
//
// A ShardTopology is one shard's local view: the owned range, the sorted
// ghost list (out-of-range neighbours of owned vertices, read-only halo),
// and a local-id CSR whose rows preserve the global adjacency order. It is
// built by the shard's own worker thread so the pages land on that
// worker's NUMA node under first-touch placement.
#pragma once

#include <cstdint>
#include <vector>

#include "ldc/graph/graph.hpp"

namespace ldc {

/// A partition of [0, n) into K contiguous, ascending, non-empty vertex
/// ranges (empty ranges only when n < K forces fewer real shards; callers
/// clamp K to n first). starts()[0] == 0 and starts()[K] == n.
class Partition {
 public:
  Partition() = default;

  /// Equal-width ranges; the first n % K shards take one extra vertex.
  static Partition contiguous(NodeId n, std::size_t shards);

  /// Ranges balanced by degree sum: boundaries sit as close to the ideal
  /// i*(2m)/K adjacency-prefix targets as contiguity and non-emptiness
  /// allow. Falls back to contiguous() on an edgeless graph.
  static Partition degree_balanced(const Graph& g, std::size_t shards);

  std::size_t shards() const {
    return starts_.empty() ? 0 : starts_.size() - 1;
  }
  NodeId begin(std::size_t k) const { return starts_[k]; }
  NodeId end(std::size_t k) const { return starts_[k + 1]; }
  NodeId n() const { return starts_.empty() ? 0 : starts_.back(); }

  /// Index of the shard owning vertex v (v must be < n()).
  std::size_t shard_of(NodeId v) const;

  const std::vector<NodeId>& starts() const { return starts_; }

 private:
  explicit Partition(std::vector<NodeId> starts)
      : starts_(std::move(starts)) {}

  std::vector<NodeId> starts_;  ///< K+1 range boundaries
};

/// One shard's local graph view. Local ids: owned vertex v maps to
/// v - vbegin; ghost g maps to owned() + (rank of g in the sorted ghosts).
/// adj rows keep the global rows' ascending-neighbour order, so walking a
/// local row and translating ids back yields exactly the global row.
struct ShardTopology {
  NodeId vbegin = 0;
  NodeId vend = 0;
  std::vector<NodeId> ghosts;       ///< sorted global ids of halo vertices
  std::vector<std::uint64_t> xadj;  ///< owned()+1 local row offsets
  std::vector<std::uint32_t> adj;   ///< local ids, global row order
  std::uint64_t ghost_edges = 0;    ///< adjacency entries that are ghosts

  NodeId owned() const { return vend - vbegin; }

  /// True iff local id refers to a ghost rather than an owned vertex.
  bool is_ghost(std::uint32_t lid) const { return lid >= owned(); }

  /// Global id of a local id.
  NodeId global_id(std::uint32_t lid) const {
    return lid < owned() ? vbegin + lid : ghosts[lid - owned()];
  }

  /// Builds the local CSR for [vbegin, vend) of g. Call from the shard's
  /// owning worker thread for first-touch NUMA placement.
  void build(const Graph& g, NodeId vbegin, NodeId vend);
};

}  // namespace ldc
