// Edge orientations of an undirected Graph.
//
// Oriented list defective coloring (Definition 1.1) constrains only
// *out*-neighbors. An Orientation assigns each undirected edge a direction;
// the paper's convention beta_v := max(1, outdeg(v)) is exposed as beta().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ldc/graph/graph.hpp"

namespace ldc {

class Orientation {
 public:
  Orientation() = default;

  /// Orientation from explicit out-neighbor lists (validated against g:
  /// every edge must be oriented exactly one way).
  Orientation(const Graph& g, std::vector<std::vector<NodeId>> out_lists);

  /// Acyclic orientation: u -> v iff id(u) > id(v).
  static Orientation by_decreasing_id(const Graph& g);

  /// Orientation by independent fair coin per edge.
  static Orientation random(const Graph& g, std::uint64_t seed);

  /// Orients every edge both ways (each undirected edge becomes two directed
  /// edges) — the reduction the paper uses to run OLDC algorithms on
  /// undirected list defective instances.
  static Orientation bidirected(const Graph& g);

  std::uint32_t n() const { return static_cast<std::uint32_t>(offsets_.empty() ? 0 : offsets_.size() - 1); }

  std::span<const NodeId> out(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  std::uint32_t outdeg(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// beta_v = max(1, outdeg(v)) per the paper's convention (Section 2).
  std::uint32_t beta(NodeId v) const { return std::max(1u, outdeg(v)); }

  /// Maximum beta_v over all nodes.
  std::uint32_t max_beta() const { return max_beta_; }

  bool has_out_edge(NodeId u, NodeId v) const;

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<NodeId> adj_;
  std::uint32_t max_beta_ = 1;

  void finalize(std::vector<std::vector<NodeId>>&& out_lists);
};

}  // namespace ldc
