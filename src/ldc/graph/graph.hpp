// Immutable undirected graph in CSR form.
//
// This is the communication topology for the simulated LOCAL/CONGEST network
// (Peleg'00): nodes carry unique O(log n)-bit identifiers and exchange
// messages over edges. The structure is immutable after construction; use
// GraphBuilder to assemble one.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ldc {

using NodeId = std::uint32_t;

class Graph {
 public:
  Graph() = default;

  /// Builds from CSR arrays. `offsets` has n+1 entries; `adj` lists each
  /// undirected edge twice. `ids` are the unique node identifiers (defaults
  /// to the node index when empty).
  Graph(std::vector<std::uint32_t> offsets, std::vector<NodeId> adj,
        std::vector<std::uint64_t> ids = {});

  std::uint32_t n() const { return static_cast<std::uint32_t>(offsets_.empty() ? 0 : offsets_.size() - 1); }

  /// Number of undirected edges.
  std::uint64_t m() const { return adj_.size() / 2; }

  std::uint32_t degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  std::uint32_t max_degree() const { return max_degree_; }

  /// Unique identifier of node v (the initial "m-coloring by IDs").
  std::uint64_t id(NodeId v) const { return ids_[v]; }

  std::uint64_t max_id() const { return max_id_; }

  /// Replaces node identifiers (used by tests exercising the log* n
  /// dependence on the identifier space). Must be unique; checked.
  void set_ids(std::vector<std::uint64_t> ids);

  /// True if u and v are adjacent (binary search; adjacency lists sorted).
  bool has_edge(NodeId u, NodeId v) const;

  /// Index of neighbor u within v's adjacency list; n() if absent.
  std::uint32_t neighbor_index(NodeId v, NodeId u) const;

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<NodeId> adj_;
  std::vector<std::uint64_t> ids_;
  std::uint32_t max_degree_ = 0;
  std::uint64_t max_id_ = 0;
};

}  // namespace ldc
