// Immutable undirected graph in CSR form.
//
// This is the communication topology for the simulated LOCAL/CONGEST network
// (Peleg'00): nodes carry unique O(log n)-bit identifiers and exchange
// messages over edges. The structure is immutable after construction; use
// GraphBuilder to assemble one.
//
// Storage model. A Graph reads its three CSR arrays (offsets, adjacency,
// ids) through spans. The owning constructor points them at private
// vectors; Graph::view() points them at caller-provided memory — the
// zero-copy path the mmap-backed corpus store (ldc/storage) uses to run
// algorithms directly over a mapped file. A view may carry a `pin`
// (shared_ptr keepalive, e.g. the mapping object) so by-value copies of
// the Graph can never outlive the bytes they read. Offsets are 64-bit so
// a mapped adjacency section may exceed 2^32 entries; node ids stay
// 32-bit. An empty ids span means identity ids (id(v) == v) — identity is
// never materialized, so a billion-vertex view costs no id storage.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace ldc {

using NodeId = std::uint32_t;

class Graph {
 public:
  Graph() = default;

  /// Builds from CSR arrays (owning). `offsets` has n+1 entries; `adj`
  /// lists each undirected edge twice. `ids` are the unique node
  /// identifiers (defaults to the node index when empty).
  Graph(std::vector<std::uint32_t> offsets, std::vector<NodeId> adj,
        std::vector<std::uint64_t> ids = {});

  /// Zero-copy view over external CSR storage. `offsets` must have n + 1
  /// entries ending in adj.size(); `ids` may be empty (identity). The
  /// caller vouches for the invariants the owning constructor would check
  /// (sorted adjacency rows, unique ids) and supplies the precomputed
  /// stats — the corpus format stores them in its header precisely so a
  /// multi-gigabyte mapping is never scanned at open time. `pin` keeps
  /// the backing storage alive across by-value copies of the view (pass
  /// nullptr when the caller guarantees lifetime by other means).
  static Graph view(std::span<const std::uint64_t> offsets,
                    std::span<const NodeId> adj,
                    std::span<const std::uint64_t> ids,
                    std::uint32_t max_degree, std::uint64_t max_id,
                    std::shared_ptr<const void> pin);

  // Spans must track the owned vectors across copies; moves keep heap
  // buffers stable so the defaults are correct for them.
  Graph(const Graph& other) { *this = other; }
  Graph& operator=(const Graph& other);
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  std::uint32_t n() const { return static_cast<std::uint32_t>(offsets_.empty() ? 0 : offsets_.size() - 1); }

  /// Number of undirected edges.
  std::uint64_t m() const { return adj_.size() / 2; }

  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  std::uint32_t max_degree() const { return max_degree_; }

  /// Unique identifier of node v (the initial "m-coloring by IDs").
  std::uint64_t id(NodeId v) const {
    return ids_.empty() ? v : ids_[v];
  }

  std::uint64_t max_id() const { return max_id_; }

  /// Replaces node identifiers (used by tests exercising the log* n
  /// dependence on the identifier space). Must be unique; checked. Works
  /// on views too: the new ids are owned by this Graph, the topology
  /// stays external.
  void set_ids(std::vector<std::uint64_t> ids);

  /// True if u and v are adjacent (binary search; adjacency lists sorted).
  bool has_edge(NodeId u, NodeId v) const;

  /// Index of neighbor u within v's adjacency list; n() if absent.
  std::uint32_t neighbor_index(NodeId v, NodeId u) const;

 private:
  // Owned storage (empty for the externally backed arrays of a view).
  std::vector<std::uint64_t> own_offsets_;
  std::vector<NodeId> own_adj_;
  std::vector<std::uint64_t> own_ids_;
  std::shared_ptr<const void> pin_;  ///< external-storage keepalive

  std::span<const std::uint64_t> offsets_;
  std::span<const NodeId> adj_;
  std::span<const std::uint64_t> ids_;  ///< empty => identity ids

  std::uint32_t max_degree_ = 0;
  std::uint64_t max_id_ = 0;
};

}  // namespace ldc
