// Graph serialization: a plain edge-list format and Graphviz DOT export.
//
// Edge-list format (whitespace/line structured, '#' comments):
//   n <node-count>
//   id <node> <identifier>        (optional; defaults to the node index)
//   e <u> <v>
// The CLI (examples/ldc_cli.cpp) and downstream users exchange graphs in
// this format; DOT export is for visualisation (colors become fill
// colors when a coloring is supplied).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "ldc/coloring/instance.hpp"
#include "ldc/graph/graph.hpp"
#include "ldc/graph/io_error.hpp"

namespace ldc::io {

/// Writes the edge-list representation.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses an edge-list; throws io::ParseError (a std::invalid_argument)
/// with a line number on malformed input — including an oversized 'n'
/// header (the reader refuses attacker-sized allocations) and duplicate
/// 'e' records (files must list each edge once).
Graph read_edge_list(std::istream& is);

/// Graphviz DOT output; when `phi` is given, nodes are labelled and
/// grouped by color.
void write_dot(std::ostream& os, const Graph& g,
               const Coloring* phi = nullptr);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

}  // namespace ldc::io
