#include "ldc/graph/subgraph.hpp"

#include <stdexcept>

#include "ldc/graph/builder.hpp"

namespace ldc {

Subgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes) {
  Subgraph s;
  s.to_parent.assign(nodes.begin(), nodes.end());
  s.from_parent.assign(g.n(), g.n());
  for (std::uint32_t i = 0; i < s.to_parent.size(); ++i) {
    const NodeId p = s.to_parent[i];
    if (p >= g.n()) throw std::out_of_range("induced_subgraph: bad node");
    if (s.from_parent[p] != g.n()) {
      throw std::invalid_argument("induced_subgraph: duplicate node");
    }
    s.from_parent[p] = i;
  }
  GraphBuilder b(static_cast<std::uint32_t>(s.to_parent.size()));
  std::vector<std::uint64_t> ids(s.to_parent.size());
  for (std::uint32_t i = 0; i < s.to_parent.size(); ++i) {
    const NodeId p = s.to_parent[i];
    ids[i] = g.id(p);
    for (NodeId q : g.neighbors(p)) {
      const NodeId j = s.from_parent[q];
      if (j != g.n() && i < j) b.add_edge(i, j);
    }
  }
  s.graph = b.build();
  s.graph.set_ids(std::move(ids));
  return s;
}

}  // namespace ldc
