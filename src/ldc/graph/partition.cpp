#include "ldc/graph/partition.hpp"

#include <algorithm>
#include <cassert>

namespace ldc {
namespace {

std::size_t clamp_shards(NodeId n, std::size_t shards) {
  if (shards == 0) shards = 1;
  if (n > 0 && shards > n) shards = n;
  return shards;
}

}  // namespace

Partition Partition::contiguous(NodeId n, std::size_t shards) {
  const std::size_t k = clamp_shards(n, shards);
  std::vector<NodeId> starts(k + 1, 0);
  const NodeId width = n / static_cast<NodeId>(k);
  const NodeId extra = n % static_cast<NodeId>(k);
  NodeId at = 0;
  for (std::size_t i = 0; i < k; ++i) {
    starts[i] = at;
    at += width + (i < extra ? 1 : 0);
  }
  starts[k] = n;
  return Partition(std::move(starts));
}

Partition Partition::degree_balanced(const Graph& g, std::size_t shards) {
  const NodeId n = g.n();
  const std::size_t k = clamp_shards(n, shards);
  const std::uint64_t total = 2 * g.m();  // adjacency entries
  if (total == 0 || k <= 1) return contiguous(n, k);

  // Prefix sums of degree, then for each boundary the smallest cut point
  // whose prefix reaches the ideal i*total/k target.
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) prefix[v + 1] = prefix[v] + g.degree(v);

  std::vector<NodeId> starts(k + 1, 0);
  starts[k] = n;
  for (std::size_t i = 1; i < k; ++i) {
    const std::uint64_t target = total * i / k;
    const auto it =
        std::lower_bound(prefix.begin(), prefix.end(), target);
    starts[i] = static_cast<NodeId>(it - prefix.begin());
  }
  // Non-empty ranges: push boundaries apart (n >= k guarantees room).
  for (std::size_t i = 1; i < k; ++i) {
    starts[i] = std::max<NodeId>(starts[i], starts[i - 1] + 1);
  }
  for (std::size_t i = k; i-- > 1;) {
    starts[i] = std::min<NodeId>(starts[i], starts[i + 1] - 1);
  }
  return Partition(std::move(starts));
}

std::size_t Partition::shard_of(NodeId v) const {
  assert(!starts_.empty() && v < starts_.back());
  const auto it =
      std::upper_bound(starts_.begin() + 1, starts_.end(), v);
  return static_cast<std::size_t>(it - starts_.begin()) - 1;
}

void ShardTopology::build(const Graph& g, NodeId b, NodeId e) {
  vbegin = b;
  vend = e;
  ghost_edges = 0;
  const NodeId width = e - b;

  // Collect the halo via a bitmap over [0, n): deterministic, sorted
  // output without sorting a per-edge worklist.
  const NodeId n = g.n();
  std::vector<std::uint64_t> seen((static_cast<std::size_t>(n) + 63) / 64,
                                  0);
  std::uint64_t entries = 0;
  for (NodeId v = b; v < e; ++v) {
    for (const NodeId u : g.neighbors(v)) {
      ++entries;
      if (u < b || u >= e) {
        seen[u >> 6] |= std::uint64_t{1} << (u & 63);
      }
    }
  }
  ghosts.clear();
  for (std::size_t w = 0; w < seen.size(); ++w) {
    std::uint64_t bits = seen[w];
    while (bits != 0) {
      const unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
      ghosts.push_back(static_cast<NodeId>((w << 6) + tz));
      bits &= bits - 1;
    }
  }

  // Local CSR: owned neighbours map by offset, ghosts by rank lookup.
  xadj.assign(static_cast<std::size_t>(width) + 1, 0);
  adj.clear();
  adj.reserve(entries);
  std::uint64_t at = 0;
  for (NodeId v = b; v < e; ++v) {
    xadj[v - b] = at;
    for (const NodeId u : g.neighbors(v)) {
      std::uint32_t lid;
      if (u >= b && u < e) {
        lid = u - b;
      } else {
        const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), u);
        lid = width + static_cast<std::uint32_t>(it - ghosts.begin());
        ++ghost_edges;
      }
      adj.push_back(lid);
      ++at;
    }
  }
  xadj[width] = at;
}

}  // namespace ldc
