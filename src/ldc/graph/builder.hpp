// Mutable edge-list accumulator that produces an immutable Graph.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ldc/graph/graph.hpp"

namespace ldc {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t n) : n_(n) {}

  /// Adds the undirected edge {u, v}. Self-loops are rejected; duplicate
  /// edges are deduplicated at build time.
  void add_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  std::uint32_t n() const { return n_; }
  std::size_t edge_count() const { return edges_.size(); }

  /// Finalizes into a CSR Graph. The builder may be reused afterwards.
  Graph build() const;

 private:
  std::uint32_t n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // normalized u < v
};

}  // namespace ldc
