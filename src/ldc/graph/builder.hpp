// Mutable edge-list accumulator that produces an immutable Graph.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ldc/graph/graph.hpp"

namespace ldc {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t n) : n_(n) {}

  /// Adds the undirected edge {u, v}. Self-loops are rejected; duplicate
  /// edges are deduplicated at build time.
  void add_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  std::uint32_t n() const { return n_; }

  /// Number of add_edge() calls recorded so far — the RAW count, which
  /// counts a duplicate edge once per call. build() deduplicates, so the
  /// built graph's m() can be smaller; use unique_edge_count() for the
  /// post-dedup count.
  std::size_t edge_count() const { return edges_.size(); }

  /// Number of distinct undirected edges recorded (what build() will
  /// produce as m()). O(E log E): counts on a sorted copy.
  std::size_t unique_edge_count() const;

  /// Finalizes into a CSR Graph. The builder may be reused afterwards.
  Graph build() const;

 private:
  std::uint32_t n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // normalized u < v
};

}  // namespace ldc
