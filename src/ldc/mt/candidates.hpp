// Candidate families (the problem-P2 objects) and their parameters.
//
// In the paper, problem P2 equips every node with a family K_v of k'
// candidate color sets, each of k_i colors from the node's
// residue-restricted list; the family is a pure function of the node's
// *type* (initial color, color list), which is what makes P2 solvable in
// zero communication rounds (Lemma 3.5). The paper realizes the function by
// a greedy pass over all possible types whose internal computation is
// e^{O(gamma^2 log gamma log|C| + ...)} (its Appendix C) — infeasible to
// run. This module keeps the zero-round structure (family = function of
// type) but realizes the function with a keyed PRF; mt/greedy_types.hpp
// implements the paper's exact greedy for tiny parameters so Lemma 3.5
// itself is validated (experiment E9). See DESIGN.md §4.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ldc/coloring/instance.hpp"
#include "ldc/mt/conflict.hpp"

namespace ldc::mt {

/// Tunable stand-ins for the paper's parameter formulas (Section 3.2.1).
struct CandidateParams {
  /// tau: conflict threshold. 0 = use the paper's formula
  /// tau(h,|C|,m) = ceil(8h + 2 loglog|C| + 2 loglogm + 16), capped.
  std::uint32_t tau = 0;
  std::uint32_t tau_cap = 20;
  /// k' (family size). The paper's 2^h * tau' is astronomically large; any
  /// value makes the final coloring *checkable*, larger values lower the
  /// chance of P1 relaxations.
  std::uint32_t kprime = 24;
};

/// tau(h, |C|, m) from Equation (4), uncapped.
std::uint32_t tau_formula(std::uint32_t h, std::uint64_t color_space,
                          std::uint64_t m);

/// Effective tau under the given params.
std::uint32_t effective_tau(const CandidateParams& p, std::uint32_t h,
                            std::uint64_t color_space, std::uint64_t m);

/// A node's candidate family: `kprime` sorted candidate sets of `set_size`
/// colors drawn deterministically (PRF keyed by the node's type) from its
/// restricted list. Both endpoints of an edge construct the same family
/// from the same type description, so only the type travels on the wire.
class CandidateFamily {
 public:
  /// `list` must be sorted. set_size is clamped to list.size() (a clamp is
  /// recorded via degraded()).
  CandidateFamily(std::uint64_t type_key, std::span<const Color> list,
                  std::uint32_t set_size, std::uint32_t kprime);

  FamilyView view() const {
    return FamilyView{storage_, set_size_, kprime_};
  }

  std::span<const Color> set(std::uint32_t j) const {
    return view().set(j);
  }

  std::uint32_t set_size() const { return set_size_; }
  std::uint32_t size() const { return kprime_; }

  /// True when the list was too short for the requested set size (the
  /// paper's list-size precondition was violated).
  bool degraded() const { return degraded_; }

 private:
  std::vector<Color> storage_;
  std::uint32_t set_size_;
  std::uint32_t kprime_;
  bool degraded_ = false;
};

/// The type key of a node: fingerprint of (initial color, restricted list).
/// Equal types yield equal candidate families — the zero-round property.
std::uint64_t type_key(std::uint64_t initial_color,
                       std::span<const Color> restricted_list);

/// Residue-class restriction (Section 3.2.2): returns the sublist of
/// `list` whose colors are congruent to a (mod 2g+1) for the residue a
/// maximizing the sublist size. With g = 0 returns the whole list.
std::vector<Color> best_residue_sublist(std::span<const Color> list,
                                        std::uint32_t g,
                                        std::uint32_t* residue_out = nullptr);

}  // namespace ldc::mt
