// Conflict relations of the Maus-Tonoyan machinery (Definitions 3.2 / 3.3).
//
// mu_g(x, C) counts the colors of C within distance g of x; two candidate
// sets C, C' "tau&g-conflict" when sum_{x in C} mu_g(x, C') >= tau; and two
// candidate *families* K, K' are in the relation Psi_g(tau', tau) when K
// contains tau' distinct sets that each tau&g-conflict with some set of K'.
#pragma once

#include <cstdint>
#include <span>

#include "ldc/coloring/instance.hpp"

namespace ldc::mt {

/// Number of colors c in the sorted span C with |x - c| <= g.
std::uint32_t mu_g(Color x, std::span<const Color> C, std::uint32_t g);

/// sum_{x in a} mu_g(x, b) for sorted spans (symmetric). O(|a| + |b| + out).
std::uint64_t conflict_weight(std::span<const Color> a,
                              std::span<const Color> b, std::uint32_t g);

/// Definition 3.2: a and b tau&g-conflict iff conflict_weight >= tau.
/// Short-circuits once the threshold is reached.
bool tau_g_conflict(std::span<const Color> a, std::span<const Color> b,
                    std::uint32_t tau, std::uint32_t g);

/// A candidate family view: `sets` contains `count` sorted candidate sets
/// of `set_size` colors each, stored contiguously.
struct FamilyView {
  std::span<const Color> storage;
  std::uint32_t set_size = 0;
  std::uint32_t count = 0;

  std::span<const Color> set(std::uint32_t j) const {
    return storage.subspan(static_cast<std::size_t>(j) * set_size, set_size);
  }
};

/// Definition 3.3: (K1, K2) in Psi_g(tau', tau)?
bool psi_conflict(const FamilyView& k1, const FamilyView& k2,
                  std::uint32_t tau_prime, std::uint32_t tau,
                  std::uint32_t g);

/// Number of sets in k1 that tau&g-conflict with at least one set of k2
/// (the quantity Psi thresholds at tau').
std::uint32_t conflicting_sets(const FamilyView& k1, const FamilyView& k2,
                               std::uint32_t tau, std::uint32_t g);

}  // namespace ldc::mt
