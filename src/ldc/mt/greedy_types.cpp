#include "ldc/mt/greedy_types.hpp"

#include <algorithm>

#include "ldc/mt/conflict.hpp"

namespace ldc::mt {
namespace {

// Flattens a family (vector of sorted sets of equal size) into a
// FamilyView-backed buffer.
struct FlatFamily {
  std::vector<Color> storage;
  std::uint32_t set_size;
  std::uint32_t count;

  explicit FlatFamily(const std::vector<std::vector<Color>>& family) {
    set_size = family.empty() ? 0
                              : static_cast<std::uint32_t>(family[0].size());
    count = static_cast<std::uint32_t>(family.size());
    storage.reserve(static_cast<std::size_t>(set_size) * count);
    for (const auto& s : family) {
      storage.insert(storage.end(), s.begin(), s.end());
    }
  }

  FamilyView view() const { return FamilyView{storage, set_size, count}; }
};

bool either_way_conflict(const FamilyView& a, const FamilyView& b,
                         const TinyParams& p) {
  return psi_conflict(a, b, p.tau_prime, p.tau, 0) ||
         psi_conflict(b, a, p.tau_prime, p.tau, 0);
}

}  // namespace

std::vector<std::vector<std::uint32_t>> combinations(std::uint32_t n,
                                                     std::uint32_t k) {
  std::vector<std::vector<std::uint32_t>> out;
  if (k > n) return out;
  std::vector<std::uint32_t> cur(k);
  for (std::uint32_t i = 0; i < k; ++i) cur[i] = i;
  while (true) {
    out.push_back(cur);
    // Advance to the next combination.
    std::int64_t i = static_cast<std::int64_t>(k) - 1;
    while (i >= 0 && cur[static_cast<std::size_t>(i)] ==
                         n - k + static_cast<std::uint32_t>(i)) {
      --i;
    }
    if (i < 0) break;
    ++cur[static_cast<std::size_t>(i)];
    for (std::size_t j = static_cast<std::size_t>(i) + 1; j < k; ++j) {
      cur[j] = cur[j - 1] + 1;
    }
  }
  return out;
}

TinyAssignment greedy_assign(const TinyParams& p) {
  TinyAssignment out;
  // Enumerate all lists L in binom([color_space], ell), canonical order.
  const auto lists = combinations(p.color_space, p.ell);
  for (std::uint32_t c = 0; c < p.m; ++c) {
    for (const auto& l : lists) {
      TinyType t;
      t.initial_color = c;
      t.list.assign(l.begin(), l.end());
      out.types.push_back(std::move(t));
    }
  }

  std::vector<FlatFamily> assigned;
  out.complete = true;
  for (const auto& type : out.types) {
    // S(L): all kprime-subsets of the k-subsets of L.
    const auto base_sets =
        combinations(static_cast<std::uint32_t>(type.list.size()), p.k);
    const auto picks =
        combinations(static_cast<std::uint32_t>(base_sets.size()), p.kprime);
    bool found = false;
    for (const auto& pick : picks) {
      ++out.scanned;
      std::vector<std::vector<Color>> family;
      family.reserve(p.kprime);
      for (auto s : pick) {
        std::vector<Color> set;
        set.reserve(p.k);
        for (auto i : base_sets[s]) set.push_back(type.list[i]);
        family.push_back(std::move(set));
      }
      FlatFamily flat(family);
      bool clash = false;
      for (const auto& prev : assigned) {
        if (either_way_conflict(flat.view(), prev.view(), p)) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        assigned.push_back(std::move(flat));
        out.families.push_back(std::move(family));
        found = true;
        break;
      }
    }
    if (!found) {
      out.complete = false;
      out.families.emplace_back();  // keep indices aligned
    }
  }
  return out;
}

bool verify_pairwise(const TinyAssignment& a, const TinyParams& p) {
  std::vector<FlatFamily> flats;
  flats.reserve(a.families.size());
  for (const auto& f : a.families) {
    if (f.empty()) return false;
    flats.emplace_back(f);
  }
  for (std::size_t i = 0; i < flats.size(); ++i) {
    for (std::size_t j = i + 1; j < flats.size(); ++j) {
      if (either_way_conflict(flats[i].view(), flats[j].view(), p)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace ldc::mt
