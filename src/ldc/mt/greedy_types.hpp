// Exact greedy type assignment — Lemma 3.5 / Lemma 3.1 at tiny parameters.
//
// Enumerates all types (initial color, color list) over a small color
// space, and greedily assigns each a candidate family from S(L) (all
// kprime-subsets of the k-subsets of L) such that no two assigned families
// are in the Psi(tau', tau) relation in either direction. This is the
// paper's zero-round construction run verbatim; it is only feasible for
// tiny parameters and exists to validate the lemma (experiment E9) and to
// cross-check the PRF-based construction's conflict statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "ldc/coloring/instance.hpp"

namespace ldc::mt {

struct TinyParams {
  std::uint32_t color_space = 6;  ///< |C|
  std::uint32_t ell = 4;          ///< list size (all lists)
  std::uint32_t k = 2;            ///< candidate set size
  std::uint32_t kprime = 2;       ///< family size
  std::uint32_t tau = 2;          ///< set-conflict threshold
  std::uint32_t tau_prime = 2;    ///< family-conflict threshold
  std::uint32_t m = 2;            ///< number of initial colors
};

struct TinyType {
  std::uint32_t initial_color;
  std::vector<Color> list;
};

struct TinyAssignment {
  std::vector<TinyType> types;
  /// families[t][s] is the s-th candidate set of type t's family.
  std::vector<std::vector<std::vector<Color>>> families;
  bool complete = false;           ///< every type got a family
  std::uint64_t scanned = 0;       ///< candidate families examined
};

/// All k-subsets of {0..n-1} in lexicographic order.
std::vector<std::vector<std::uint32_t>> combinations(std::uint32_t n,
                                                     std::uint32_t k);

/// Runs the greedy pass over all types in canonical order.
TinyAssignment greedy_assign(const TinyParams& p);

/// Re-checks that no two assigned families Psi-conflict in either
/// direction (the property Lemma 3.5 guarantees).
bool verify_pairwise(const TinyAssignment& a, const TinyParams& p);

}  // namespace ldc::mt
