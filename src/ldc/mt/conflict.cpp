#include "ldc/mt/conflict.hpp"

#include <algorithm>

namespace ldc::mt {

std::uint32_t mu_g(Color x, std::span<const Color> C, std::uint32_t g) {
  const Color lo = (x >= g) ? x - g : 0;
  const std::uint64_t hi = static_cast<std::uint64_t>(x) + g;
  const auto begin = std::lower_bound(C.begin(), C.end(), lo);
  auto it = begin;
  std::uint32_t count = 0;
  while (it != C.end() && *it <= hi) {
    ++count;
    ++it;
  }
  return count;
}

std::uint64_t conflict_weight(std::span<const Color> a,
                              std::span<const Color> b, std::uint32_t g) {
  // Two-pointer sweep: for each x in a, count b's window [x-g, x+g].
  std::uint64_t total = 0;
  std::size_t lo = 0, hi = 0;
  for (Color x : a) {
    const Color wlo = (x >= g) ? x - g : 0;
    const std::uint64_t whi = static_cast<std::uint64_t>(x) + g;
    while (lo < b.size() && b[lo] < wlo) ++lo;
    if (hi < lo) hi = lo;
    while (hi < b.size() && b[hi] <= whi) ++hi;
    total += hi - lo;
  }
  return total;
}

bool tau_g_conflict(std::span<const Color> a, std::span<const Color> b,
                    std::uint32_t tau, std::uint32_t g) {
  if (tau == 0) return true;
  std::uint64_t total = 0;
  std::size_t lo = 0, hi = 0;
  for (Color x : a) {
    const Color wlo = (x >= g) ? x - g : 0;
    const std::uint64_t whi = static_cast<std::uint64_t>(x) + g;
    while (lo < b.size() && b[lo] < wlo) ++lo;
    if (hi < lo) hi = lo;
    while (hi < b.size() && b[hi] <= whi) ++hi;
    total += hi - lo;
    if (total >= tau) return true;
  }
  return false;
}

std::uint32_t conflicting_sets(const FamilyView& k1, const FamilyView& k2,
                               std::uint32_t tau, std::uint32_t g) {
  std::uint32_t count = 0;
  for (std::uint32_t i = 0; i < k1.count; ++i) {
    const auto ci = k1.set(i);
    for (std::uint32_t j = 0; j < k2.count; ++j) {
      if (tau_g_conflict(ci, k2.set(j), tau, g)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

bool psi_conflict(const FamilyView& k1, const FamilyView& k2,
                  std::uint32_t tau_prime, std::uint32_t tau,
                  std::uint32_t g) {
  return conflicting_sets(k1, k2, tau, g) >= tau_prime;
}

}  // namespace ldc::mt
