#include "ldc/mt/candidates.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ldc/support/math.hpp"
#include "ldc/support/prf.hpp"

namespace ldc::mt {

std::uint32_t tau_formula(std::uint32_t h, std::uint64_t color_space,
                          std::uint64_t m) {
  const double llc =
      std::log2(std::max(2.0, std::log2(static_cast<double>(
                                  std::max<std::uint64_t>(2, color_space)))));
  const double llm =
      std::log2(std::max(2.0, std::log2(static_cast<double>(
                                  std::max<std::uint64_t>(2, m)))));
  return static_cast<std::uint32_t>(
      std::ceil(8.0 * h + 2.0 * llc + 2.0 * llm + 16.0));
}

std::uint32_t effective_tau(const CandidateParams& p, std::uint32_t h,
                            std::uint64_t color_space, std::uint64_t m) {
  if (p.tau != 0) return p.tau;
  return std::min(p.tau_cap, tau_formula(h, color_space, m));
}

CandidateFamily::CandidateFamily(std::uint64_t key,
                                 std::span<const Color> list,
                                 std::uint32_t set_size,
                                 std::uint32_t kprime)
    : set_size_(set_size), kprime_(kprime) {
  assert(std::is_sorted(list.begin(), list.end()));
  if (set_size_ > list.size()) {
    set_size_ = static_cast<std::uint32_t>(list.size());
    degraded_ = true;
  }
  if (kprime_ == 0) kprime_ = 1;
  storage_.reserve(static_cast<std::size_t>(set_size_) * kprime_);
  const Prf prf(key);
  for (std::uint32_t j = 0; j < kprime_; ++j) {
    const auto idx = sample_distinct(
        prf, static_cast<std::uint64_t>(j) << 32, list.size(), set_size_);
    for (auto i : idx) storage_.push_back(list[i]);
  }
}

std::uint64_t type_key(std::uint64_t initial_color,
                       std::span<const Color> restricted_list) {
  return hash_combine(initial_color, fingerprint(restricted_list));
}

std::vector<Color> best_residue_sublist(std::span<const Color> list,
                                        std::uint32_t g,
                                        std::uint32_t* residue_out) {
  const std::uint32_t mod = 2 * g + 1;
  if (mod == 1) {
    if (residue_out != nullptr) *residue_out = 0;
    return {list.begin(), list.end()};
  }
  std::vector<std::uint32_t> counts(mod, 0);
  for (Color c : list) ++counts[c % mod];
  const std::uint32_t best = static_cast<std::uint32_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  std::vector<Color> out;
  out.reserve(counts[best]);
  for (Color c : list) {
    if (c % mod == best) out.push_back(c);
  }
  if (residue_out != nullptr) *residue_out = best;
  return out;
}

}  // namespace ldc::mt
