#include "ldc/arb/beg_arbdefective.hpp"

#include <stdexcept>
#include <vector>

#include "ldc/support/prf.hpp"

namespace ldc::arb {

ArbdefectiveResult arbdefective_color(Network& net,
                                      const ArbdefectiveOptions& opt) {
  const Graph& g = net.graph();
  const std::uint32_t n = g.n();
  const std::uint32_t q = opt.colors;
  if (static_cast<std::uint64_t>(q) * (opt.defect + 1) <= g.max_degree()) {
    throw std::invalid_argument(
        "arbdefective_color: need colors * (defect+1) > Delta");
  }
  const Prf prf(opt.seed);

  ArbdefectiveResult res;
  res.phi.assign(n, kUncolored);
  std::vector<std::uint32_t> commit_round(n, ~0u);
  // Per node: committed load per color among its neighbors.
  std::vector<std::vector<std::uint32_t>> load(n);
  for (NodeId v = 0; v < n; ++v) load[v].assign(q, 0);

  std::uint32_t committed = 0;
  for (std::uint32_t round = 0; round < opt.max_rounds && committed < n;
       ++round) {
    // Propose: first-fit — the lowest color class whose committed load is
    // still within the defect budget. (First-fit, not least-loaded: it
    // fills classes up to their budget the way the locally-iterative
    // algorithms do, so downstream consumers see arbdefect ~ d rather
    // than a near-proper coloring.)
    std::vector<Color> proposal(n, kUncolored);
    std::vector<Message> msgs(n);
    std::vector<bool> active(n, false);
    for (NodeId v = 0; v < n; ++v) {
      if (res.phi[v] != kUncolored) continue;
      Color best = kUncolored;
      if (opt.selection == ArbSelection::kFirstFit) {
        for (Color c = 0; c < q; ++c) {
          if (load[v][c] <= opt.defect) {
            best = c;
            break;
          }
        }
      } else {
        std::uint32_t best_load = ~0u;
        for (Color c = 0; c < q; ++c) {
          if (load[v][c] <= opt.defect && load[v][c] < best_load) {
            best_load = load[v][c];
            best = c;
          }
        }
      }
      if (best == kUncolored) {
        throw std::logic_error(
            "arbdefective_color: no color under budget (pigeonhole "
            "violated)");
      }
      proposal[v] = best;
      active[v] = true;
      BitWriter w;
      w.write_bounded(best, q - 1);
      msgs[v] = Message::from(w);
    }
    const auto inboxes = net.exchange_broadcast(msgs, &active);
    ++res.rounds;

    // Commit unless an adjacent *uncommitted* proposer with the same color
    // has higher priority. Priorities PRF(round, id) are locally
    // computable by neighbors.
    auto priority = [&](NodeId v) {
      return prf.at(hash_combine(round, g.id(v)));
    };
    std::vector<bool> commits(n, false);
    for (NodeId v = 0; v < n; ++v) {
      if (proposal[v] == kUncolored) continue;
      bool ok = true;
      for (const auto& [u, m] : inboxes[v]) {
        auto r = m.reader();
        const Color cu = static_cast<Color>(r.read_bounded(q - 1));
        if (cu == proposal[v] && priority(u) > priority(v)) {
          ok = false;
          break;
        }
      }
      commits[v] = ok;
    }
    // Second exchange: announce commits so everyone updates loads. (One
    // bit "committed" suffices — the color was already announced.)
    std::vector<Message> ack(n);
    for (NodeId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      BitWriter w;
      w.write(commits[v] ? 1 : 0, 1);
      ack[v] = Message::from(w);
    }
    const auto ackboxes = net.exchange_broadcast(ack, &active);
    ++res.rounds;
    for (NodeId v = 0; v < n; ++v) {
      for (const auto& [u, m] : ackboxes[v]) {
        auto r = m.reader();
        if (r.read(1) == 1) ++load[v][proposal[u]];
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (commits[v]) {
        res.phi[v] = proposal[v];
        commit_round[v] = round;
        ++committed;
      }
    }
  }
  res.success = committed == n;

  // Orientation: same-color edges point later -> earlier; all other edges
  // by commit time as well (harmless and keeps the orientation total).
  std::vector<std::vector<NodeId>> out(n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (v < u) {
        // Orient from the later committer to the earlier one; ties cannot
        // happen for same-colored neighbors (the priority rule forbids
        // simultaneous same-color commits); break other ties by id.
        const bool v_later = commit_round[v] > commit_round[u] ||
                             (commit_round[v] == commit_round[u] &&
                              g.id(v) > g.id(u));
        if (v_later) {
          out[v].push_back(u);
        } else {
          out[u].push_back(v);
        }
      }
    }
  }
  res.orientation = Orientation(g, std::move(out));
  return res;
}

}  // namespace ldc::arb
