// Low-outdegree orientations via degeneracy / peeling.
//
// The arbdefective-coloring line of work ([BE10] and the paper's Section 1)
// exploits that oriented algorithms depend on the maximum *outdegree*
// beta, not Delta: orienting along a degeneracy order gives beta <=
// degeneracy(G), which is tiny on sparse graphs (trees: 1, planar: 5,
// power-law networks: ~constant) even when Delta is huge. Two variants:
//
//  * degeneracy_orientation — the exact sequential peeling (smallest-
//    degree-last), beta = degeneracy(G);
//  * distributed_peeling_orientation — the classic H-partition: repeatedly
//    peel all nodes of degree <= (1+eps) * avg; O(log n) peeling rounds,
//    beta <= (2+eps) * arboricity(G). Runs on a Network (one round per
//    peeling step: peeled nodes announce themselves).
#pragma once

#include <cstdint>

#include "ldc/graph/orientation.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc {

struct DegeneracyResult {
  Orientation orientation;
  std::uint32_t degeneracy = 0;  ///< == max outdegree of the orientation
};

/// Exact sequential degeneracy orientation (edges point from later-peeled
/// to earlier-peeled nodes).
DegeneracyResult degeneracy_orientation(const Graph& g);

struct PeelingResult {
  Orientation orientation;
  std::uint32_t beta = 0;        ///< max outdegree achieved
  std::uint32_t rounds = 0;      ///< peeling rounds on the network
  std::uint32_t layers = 0;      ///< H-partition layer count
};

/// Distributed peeling with threshold factor (2 + eps); eps > 0.
PeelingResult distributed_peeling_orientation(Network& net,
                                              double eps = 1.0);

}  // namespace ldc
