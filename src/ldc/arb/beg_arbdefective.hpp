// Fast arbdefective coloring — the [BEG18] role in Theorem 1.3.
//
// The paper invokes Barenboim-Elkin-Goldenberg's locally-iterative
// d-arbdefective O(Delta/d)-coloring (O(Delta/d + log* n) rounds). We
// substitute a committing greedy with per-round PRF priorities (DESIGN.md
// §4): each round, every uncommitted node proposes the least-loaded color
// class with committed load <= d (one exists whenever q*(d+1) > Delta, by
// pigeonhole over at most Delta committed neighbors) and commits unless an
// adjacent uncommitted node proposed the same color with higher priority.
// Same-color edges orient from the later-committing endpoint to the
// earlier one, so a node's same-color outdegree equals its committed load
// at commit time, i.e. <= d *by construction* — the arbdefect guarantee is
// unconditional. Round count is O(log n) w.h.p. instead of the paper's
// deterministic O(Delta/d + log* n); benches report measured rounds.
//
// Doubling as the prior-work baseline of experiment E5 (its round count is
// what [BEG18]'s O(Delta/d) bound is compared against there, with the
// caveat above recorded in EXPERIMENTS.md).
#pragma once

#include <cstdint>

#include "ldc/coloring/instance.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::arb {

/// How an uncommitted node picks its proposal among in-budget classes.
enum class ArbSelection {
  kFirstFit,     ///< lowest class with load <= d: fills budgets (default;
                 ///< matches how locally-iterative algorithms use defects)
  kLeastLoaded,  ///< argmin load: yields a near-proper coloring (ablation
                 ///< A3 quantifies the difference)
};

struct ArbdefectiveOptions {
  std::uint32_t colors = 0;   ///< q
  std::uint32_t defect = 0;   ///< d (arbdefect)
  std::uint64_t seed = 0xa11d;
  std::uint32_t max_rounds = 4096;
  ArbSelection selection = ArbSelection::kFirstFit;
};

struct ArbdefectiveResult {
  Coloring phi;              ///< colors in [0, q)
  Orientation orientation;   ///< same-color outdegree <= d
  std::uint32_t rounds = 0;
  bool success = false;
};

/// Requires colors * (defect + 1) > Delta(G). Throws otherwise.
ArbdefectiveResult arbdefective_color(Network& net,
                                      const ArbdefectiveOptions& opt);

}  // namespace ldc::arb
