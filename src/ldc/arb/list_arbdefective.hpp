// Theorem 1.3 — solving (degree+1)-list arbdefective coloring instances
// with a pluggable OLDC solver.
//
// Structure (Section 5): repeat O(log Delta) degree-halving stages. Each
// stage computes a q-color arbdefective coloring of the still-uncolored
// subgraph with arbdefect delta ~ Delta_s / q, then iterates over the q
// classes; within class i, nodes that still have >= Delta_s/2 uncolored
// neighbors (and therefore still hold residual lists of weight > Delta_s/2)
// are colored by the OLDC solver on the class's induced directed subgraph
// (outdegree <= delta). Residual defects d'_v(x) = d_v(x) - a_v(x) shrink
// as neighbors take colors; edges orient from later-colored to
// earlier-colored endpoints so the final coloring is arbdefective w.r.t.
// the output orientation. A short repair tail finishes the last
// low-degree remnant (rounds reported separately).
#pragma once

#include <cstdint>
#include <functional>

#include "ldc/coloring/instance.hpp"
#include "ldc/mt/candidates.hpp"
#include "ldc/oldc/gamma.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::arb {

/// Pluggable OLDC solver (same shape as reduction::OldcSolver).
using OldcSolver = std::function<oldc::OldcResult(
    Network&, const LdcInstance&, const Orientation&, const Coloring&,
    std::uint64_t)>;

struct Theorem13Options {
  /// Exponent 1+nu of the plugged OLDC solver's weight condition
  /// (Theorem 1.1 has nu = 1, i.e. 2.0).
  double one_plus_nu = 2.0;
  /// Multiplier on the per-stage class count q = c * Lambda^(nu/(1+nu)).
  double q_factor = 2.0;
  /// Degree threshold below which the stage loop hands the remnant to the
  /// repair tail (keeps the tail O(1) rounds instead of paying fixed
  /// per-stage overheads on trivial subgraphs).
  std::uint32_t tail_degree = 4;
  std::uint64_t seed = 0x7130;
  std::uint32_t max_stages = 40;
};

struct Theorem13Stats {
  std::uint32_t rounds = 0;        ///< total communication rounds
  std::uint32_t stages = 0;        ///< degree-halving stages executed
  std::uint32_t class_iterations = 0;  ///< OLDC solves across all stages
  std::uint32_t arbdef_rounds = 0;     ///< rounds in arbdefective coloring
  std::uint32_t oldc_rounds = 0;       ///< rounds inside OLDC solves
  std::uint32_t tail_rounds = 0;       ///< repair tail rounds
  std::uint32_t repair_rounds = 0;     ///< repair inside OLDC solves
};

struct Theorem13Result {
  ArbdefectiveColoring out;
  Theorem13Stats stats;
  bool valid = false;
};

/// Solves a list arbdefective instance with
/// sum_x (d_v(x)+1) > deg(v) for all v (this covers (degree+1)-list
/// coloring: defects all 0). `initial` must be a proper m-coloring of the
/// whole graph (e.g. Linial's output).
Theorem13Result solve_list_arbdefective(Network& net,
                                        const LdcInstance& inst,
                                        const Coloring& initial,
                                        std::uint64_t m,
                                        const OldcSolver& solver,
                                        const Theorem13Options& opt = {});

/// Default plug-in: the Theorem 1.1 two-phase solver.
OldcSolver two_phase_solver(mt::CandidateParams params);

}  // namespace ldc::arb
