#include "ldc/arb/list_arbdefective.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ldc/arb/beg_arbdefective.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/induced_orientation.hpp"
#include "ldc/graph/subgraph.hpp"
#include "ldc/oldc/two_phase.hpp"
#include "ldc/repair/repair.hpp"
#include "ldc/support/prf.hpp"
#include "ldc/support/math.hpp"

namespace ldc::arb {
namespace {

// Residual list of v: colors whose defect budget is not yet exhausted by
// already-colored neighbors, with the residual budgets.
ColorList residual_list(const LdcInstance& inst,
                        const std::vector<std::vector<std::uint32_t>>& av,
                        NodeId v) {
  ColorList out;
  const auto& l = inst.lists[v];
  for (std::size_t i = 0; i < l.size(); ++i) {
    if (av[v][i] <= l.defects[i]) {
      out.colors.push_back(l.colors[i]);
      out.defects.push_back(l.defects[i] - av[v][i]);
    }
  }
  return out;
}

}  // namespace

OldcSolver two_phase_solver(mt::CandidateParams params) {
  return [params](Network& net, const LdcInstance& inst,
                  const Orientation& orientation, const Coloring& initial,
                  std::uint64_t m) {
    oldc::TwoPhaseInput in;
    in.inst = &inst;
    in.orientation = &orientation;
    in.initial = &initial;
    in.m = m;
    in.params = params;
    const auto two = oldc::solve_two_phase(net, in);
    oldc::OldcResult res;
    res.phi = two.phi;
    res.stats = two.stats;
    res.valid = two.valid;
    return res;
  };
}

Theorem13Result solve_list_arbdefective(Network& net,
                                        const LdcInstance& inst,
                                        const Coloring& initial,
                                        std::uint64_t m,
                                        const OldcSolver& solver,
                                        const Theorem13Options& opt) {
  const Graph& g = *inst.graph;
  const std::uint32_t n = g.n();
  Theorem13Result res;
  res.out.colors.assign(n, kUncolored);
  Coloring& phi = res.out.colors;

  // a_v(x) bookkeeping: colored neighbors per list color.
  std::vector<std::vector<std::uint32_t>> av(n);
  for (NodeId v = 0; v < n; ++v) av[v].assign(inst.lists[v].size(), 0);

  // Final orientation assembled incrementally; timestamps order batches.
  std::vector<std::vector<NodeId>> final_out(n);
  std::vector<std::uint32_t> stamp(n, ~0u);
  std::uint32_t batch = 0;

  const double exp_ratio =
      (opt.one_plus_nu - 1.0) / opt.one_plus_nu;  // nu / (1+nu)

  // Colors a set of nodes `now` (they just received phi values): orient
  // their edges toward earlier-colored neighbors, stamp them, and update
  // all neighbors' a_v counters. Announcing the colors costs one round on
  // the full network.
  auto commit_batch = [&](const std::vector<NodeId>& now) {
    for (NodeId v : now) {
      for (NodeId u : g.neighbors(v)) {
        if (phi[u] != kUncolored && stamp[u] < batch) {
          final_out[v].push_back(u);
        }
      }
      stamp[v] = batch;
    }
    // Fused broadcast: each committing node announces one bounded word.
    std::vector<std::uint64_t> words(n);
    std::vector<bool> active(n, false);
    for (NodeId v : now) {
      active[v] = true;
      words[v] = phi[v];
    }
    const WordMail inboxes =
        net.exchange_broadcast_word(words, inst.color_space - 1, &active);
    ++res.stats.rounds;
    for (NodeId v = 0; v < n; ++v) {
      for (const auto [u, word] : inboxes[v]) {
        (void)u;
        const Color c = static_cast<Color>(word);
        const std::size_t i = inst.lists[v].find(c);
        if (i != inst.lists[v].size()) ++av[v][i];
      }
    }
    ++batch;
  };

  // The repair tail: finishes the remaining low-degree subgraph.
  auto run_tail = [&](const std::vector<NodeId>& members) {
    if (members.empty()) return;
    const Subgraph sub = induced_subgraph(g, members);
    LdcInstance tail;
    tail.graph = &sub.graph;
    tail.color_space = inst.color_space;
    tail.lists.resize(sub.graph.n());
    for (NodeId i = 0; i < sub.graph.n(); ++i) {
      tail.lists[i] = residual_list(inst, av, sub.to_parent[i]);
      if (tail.lists[i].colors.empty()) {
        throw std::runtime_error(
            "solve_list_arbdefective: residual list empty (instance "
            "condition violated)");
      }
    }
    Network sub_net(sub.graph, net.budget_bits());
    repair::Options ropt;
    ropt.seed = hash_combine(opt.seed, 0x7a11);
    auto rep = repair::repair(sub_net, tail,
                              Coloring(sub.graph.n(), kUncolored), ropt);
    if (!rep.success) {
      throw std::runtime_error("solve_list_arbdefective: tail failed");
    }
    net.absorb(sub_net.metrics());
    res.stats.tail_rounds += rep.rounds;
    res.stats.rounds += rep.rounds;
    std::vector<NodeId> now;
    for (NodeId i = 0; i < sub.graph.n(); ++i) {
      phi[sub.to_parent[i]] = rep.phi[i];
      now.push_back(sub.to_parent[i]);
    }
    // Intra-tail edges: the repair guarantee is the *undirected* defect
    // bound, which dominates any orientation; orient by id.
    for (NodeId i = 0; i < sub.graph.n(); ++i) {
      const NodeId v = sub.to_parent[i];
      for (NodeId j : sub.graph.neighbors(i)) {
        const NodeId u = sub.to_parent[j];
        if (g.id(v) > g.id(u)) final_out[v].push_back(u);
      }
    }
    commit_batch(now);
  };

  // --- Degree-halving stages.
  for (std::uint32_t stage = 0; stage < opt.max_stages; ++stage) {
    std::vector<NodeId> members;
    for (NodeId v = 0; v < n; ++v) {
      if (phi[v] == kUncolored) members.push_back(v);
    }
    if (members.empty()) break;
    const Subgraph sub = induced_subgraph(g, members);
    const std::uint32_t delta_s = std::max(1u, sub.graph.max_degree());
    if (delta_s <= opt.tail_degree) {
      run_tail(members);
      break;
    }
    ++res.stats.stages;

    // Residual list sizes bound Lambda_s.
    std::size_t lambda_s = 1;
    for (NodeId v : members) {
      std::size_t sz = 0;
      for (std::size_t i = 0; i < inst.lists[v].size(); ++i) {
        if (av[v][i] <= inst.lists[v].defects[i]) ++sz;
      }
      lambda_s = std::max(lambda_s, sz);
    }
    // q = q_factor * Lambda^(nu/(1+nu)), delta ~ 2*Delta_s/q, ensuring
    // q*(delta+1) > 2*Delta_s for fast arbdefective commits.
    std::uint32_t q = static_cast<std::uint32_t>(std::ceil(
        opt.q_factor * std::pow(static_cast<double>(lambda_s), exp_ratio)));
    q = std::clamp<std::uint32_t>(q, 1, delta_s + 1);
    const std::uint32_t delta =
        static_cast<std::uint32_t>(ceil_div(2ULL * delta_s, q));

    // Stage arbdefective coloring on the uncolored subgraph.
    Network arb_net(sub.graph, net.budget_bits());
    ArbdefectiveOptions aopt;
    aopt.colors = q;
    aopt.defect = delta;
    aopt.seed = hash_combine(opt.seed, stage);
    const auto psi = arbdefective_color(arb_net, aopt);
    net.absorb(arb_net.metrics());
    res.stats.arbdef_rounds += psi.rounds;
    res.stats.rounds += psi.rounds;

    // Iterate over the stage's color classes.
    bool progress = false;
    for (std::uint32_t cls = 0; cls < q; ++cls) {
      std::vector<NodeId> vi;         // class members (subgraph ids)
      for (NodeId i = 0; i < sub.graph.n(); ++i) {
        const NodeId v = sub.to_parent[i];
        if (phi[v] != kUncolored || psi.phi[i] != cls) continue;
        // Only nodes that still have >= Delta_s/2 uncolored neighbors are
        // colored now; the rest wait for the next stage.
        std::uint32_t udeg = 0;
        for (NodeId u : g.neighbors(v)) {
          if (phi[u] == kUncolored) ++udeg;
        }
        if (2ULL * udeg >= delta_s) vi.push_back(i);
      }
      if (vi.empty()) continue;
      ++res.stats.class_iterations;

      // Class subgraph with the stage orientation restricted to it.
      std::vector<NodeId> vi_parent;
      vi_parent.reserve(vi.size());
      for (NodeId i : vi) vi_parent.push_back(sub.to_parent[i]);
      const Subgraph cls_sub = induced_subgraph(g, vi_parent);
      // Build the orientation on cls_sub from psi's orientation on sub.
      std::vector<std::vector<NodeId>> cls_out(cls_sub.graph.n());
      for (NodeId a = 0; a < cls_sub.graph.n(); ++a) {
        const NodeId pa = cls_sub.to_parent[a];
        const NodeId sa = sub.from_parent[pa];
        for (NodeId sb : psi.orientation.out(sa)) {
          const NodeId pb = sub.to_parent[sb];
          const NodeId b = cls_sub.from_parent[pb];
          if (b != g.n()) cls_out[a].push_back(b);
        }
      }
      const Orientation cls_orient(cls_sub.graph, std::move(cls_out));

      LdcInstance cls_inst;
      cls_inst.graph = &cls_sub.graph;
      cls_inst.color_space = inst.color_space;
      cls_inst.lists.resize(cls_sub.graph.n());
      Coloring cls_initial(cls_sub.graph.n());
      for (NodeId a = 0; a < cls_sub.graph.n(); ++a) {
        const NodeId v = cls_sub.to_parent[a];
        cls_inst.lists[a] = residual_list(inst, av, v);
        cls_initial[a] = initial[v];
        if (cls_inst.lists[a].colors.empty()) {
          throw std::runtime_error(
              "solve_list_arbdefective: residual list empty");
        }
      }

      Network cls_net(cls_sub.graph, net.budget_bits());
      oldc::OldcResult out;
      try {
        out = solver(cls_net, cls_inst, cls_orient, cls_initial, m);
      } catch (const InfeasibleError&) {
        // The class's sub-instance missed the solver's margins; its nodes
        // simply wait for a later stage (their degree keeps shrinking) or
        // the tail.
        net.absorb(cls_net.metrics());
        continue;
      }
      net.absorb(cls_net.metrics());
      res.stats.oldc_rounds += out.stats.rounds;
      res.stats.rounds += out.stats.rounds;
      res.stats.repair_rounds += out.stats.repair_rounds;

      // Record results; intra-class edges take the stage orientation.
      std::vector<NodeId> now;
      for (NodeId a = 0; a < cls_sub.graph.n(); ++a) {
        const NodeId v = cls_sub.to_parent[a];
        if (out.phi[a] == kUncolored) continue;
        phi[v] = out.phi[a];
        now.push_back(v);
        // Only edges whose far endpoint was also colored in this batch
        // take the stage orientation; edges toward deferred nodes are
        // oriented when those nodes eventually color (later -> earlier).
        for (NodeId b : cls_orient.out(a)) {
          if (out.phi[b] != kUncolored) {
            final_out[v].push_back(cls_sub.to_parent[b]);
          }
        }
      }
      commit_batch(now);
      progress = true;
    }
    if (!progress) {
      // No class made progress (e.g. stage arbdefective coloring failed to
      // commit anybody useful) — finish with the tail.
      std::vector<NodeId> rest;
      for (NodeId v = 0; v < n; ++v) {
        if (phi[v] == kUncolored) rest.push_back(v);
      }
      run_tail(rest);
      break;
    }
  }
  // Anything left after max_stages goes to the tail.
  {
    std::vector<NodeId> rest;
    for (NodeId v = 0; v < n; ++v) {
      if (phi[v] == kUncolored) rest.push_back(v);
    }
    run_tail(rest);
  }

  res.out.orientation = Orientation(g, std::move(final_out));
  res.valid = static_cast<bool>(validate_arbdefective(inst, res.out));
  return res;
}

}  // namespace ldc::arb
