#include "ldc/arb/degeneracy.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ldc {

DegeneracyResult degeneracy_orientation(const Graph& g) {
  const std::uint32_t n = g.n();
  std::vector<std::uint32_t> deg(n);
  std::uint32_t maxdeg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    maxdeg = std::max(maxdeg, deg[v]);
  }
  // Bucket queue over current degrees.
  std::vector<std::vector<NodeId>> buckets(maxdeg + 1);
  for (NodeId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> peeled(n, false);
  std::vector<std::uint32_t> order(n);  // peel position
  DegeneracyResult res;
  std::uint32_t cursor = 0;
  std::uint32_t current = 0;
  for (std::uint32_t step = 0; step < n; ++step) {
    // Find the smallest non-empty bucket (degrees only drop by one per
    // removal, so scanning from max(current-1, 0) is amortized linear).
    if (current > 0) --current;
    while (current <= maxdeg && buckets[current].empty()) ++current;
    while (true) {
      if (current > maxdeg) {
        throw std::logic_error("degeneracy_orientation: bucket underflow");
      }
      if (buckets[current].empty()) {
        ++current;
        continue;
      }
      const NodeId v = buckets[current].back();
      buckets[current].pop_back();
      if (peeled[v] || deg[v] != current) {
        // Stale entry; its true bucket is elsewhere (lazy deletion).
        if (!peeled[v] && deg[v] < current) buckets[deg[v]].push_back(v);
        continue;
      }
      peeled[v] = true;
      order[v] = cursor++;
      res.degeneracy = std::max(res.degeneracy, deg[v]);
      for (NodeId u : g.neighbors(v)) {
        if (!peeled[u]) {
          buckets[--deg[u]].push_back(u);
        }
      }
      break;
    }
  }
  // Orient each edge from the earlier-peeled endpoint to the later one:
  // v's out-neighbors are exactly those unpeeled when v was removed.
  std::vector<std::vector<NodeId>> out(n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (order[v] < order[u]) out[v].push_back(u);
    }
  }
  res.orientation = Orientation(g, std::move(out));
  return res;
}

PeelingResult distributed_peeling_orientation(Network& net, double eps) {
  if (eps <= 0.0) throw std::invalid_argument("peeling: eps > 0 required");
  const Graph& g = net.graph();
  const std::uint32_t n = g.n();
  PeelingResult res;
  std::vector<std::uint32_t> layer(n, ~0u);
  std::vector<std::uint32_t> rdeg(n);
  for (NodeId v = 0; v < n; ++v) rdeg[v] = g.degree(v);
  std::uint64_t rem_nodes = n;
  std::uint64_t rem_edges = g.m();

  while (rem_nodes > 0) {
    // Threshold (2+eps) * average remaining degree (globally known
    // quantities in the model: n, m and the layer schedule are derived
    // from them).
    const double avg =
        rem_nodes == 0 ? 0.0
                       : 2.0 * static_cast<double>(rem_edges) /
                             static_cast<double>(rem_nodes);
    const auto threshold = static_cast<std::uint32_t>((2.0 + eps) * avg);
    // Peel; announce with a 1-bit message.
    std::vector<Message> msgs(n);
    std::vector<bool> active(n, false);
    std::uint64_t peeled_now = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (layer[v] != ~0u || rdeg[v] > threshold) continue;
      layer[v] = res.layers;
      active[v] = true;
      ++peeled_now;
      BitWriter w;
      w.write(1, 1);
      msgs[v] = Message::from(w);
    }
    const auto inboxes = net.exchange_broadcast(msgs, &active);
    ++res.rounds;
    if (peeled_now == 0) {
      throw std::logic_error("peeling: no progress (threshold below min)");
    }
    // Update remaining degrees / counts.
    for (NodeId v = 0; v < n; ++v) {
      if (layer[v] != ~0u && layer[v] != res.layers) continue;
      for (const auto& [u, m] : inboxes[v]) {
        (void)m;
        // u peeled this layer; if v is still unpeeled, its remaining
        // degree drops. Edges between two same-layer nodes are removed
        // once (handled below in the edge count).
        if (layer[v] == ~0u && rdeg[v] > 0) --rdeg[v];
      }
    }
    // Recompute remaining edge count exactly (simulator-side bookkeeping
    // of globally-derivable quantities).
    rem_nodes -= peeled_now;
    std::uint64_t edges = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (layer[v] != ~0u) continue;
      for (NodeId u : g.neighbors(v)) {
        if (layer[u] == ~0u && u > v) ++edges;
      }
    }
    rem_edges = edges;
    ++res.layers;
  }

  // Orientation: toward later layers; within a layer, toward larger id.
  std::vector<std::vector<NodeId>> out(n);
  for (NodeId v = 0; v < n; ++v) {
    std::uint32_t outdeg = 0;
    for (NodeId u : g.neighbors(v)) {
      if (layer[v] < layer[u] ||
          (layer[v] == layer[u] && g.id(v) < g.id(u))) {
        out[v].push_back(u);
        ++outdeg;
      }
    }
    res.beta = std::max(res.beta, outdeg);
  }
  res.orientation = Orientation(g, std::move(out));
  return res;
}

}  // namespace ldc
