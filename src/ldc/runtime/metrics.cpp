#include "ldc/runtime/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace ldc {

void RunMetrics::merge(const RunMetrics& other) {
  rounds += other.rounds;
  messages += other.messages;
  total_bits += other.total_bits;
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  congest_violations += other.congest_violations;
  messages_dropped += other.messages_dropped;
  messages_corrupted += other.messages_corrupted;
  node_crashes += other.node_crashes;
  node_sleeps += other.node_sleeps;
  wall_ns += other.wall_ns;
}

bool RunMetrics::same_communication(const RunMetrics& other) const {
  return rounds == other.rounds && messages == other.messages &&
         total_bits == other.total_bits &&
         max_message_bits == other.max_message_bits &&
         congest_violations == other.congest_violations &&
         messages_dropped == other.messages_dropped &&
         messages_corrupted == other.messages_corrupted &&
         node_crashes == other.node_crashes &&
         node_sleeps == other.node_sleeps;
}

std::ostream& operator<<(std::ostream& os, const RunMetrics& m) {
  os << "rounds=" << m.rounds << " messages=" << m.messages
     << " total_bits=" << m.total_bits
     << " max_message_bits=" << m.max_message_bits
     << " congest_violations=" << m.congest_violations;
  if (m.messages_dropped != 0 || m.messages_corrupted != 0 ||
      m.node_crashes != 0 || m.node_sleeps != 0) {
    os << " dropped=" << m.messages_dropped
       << " corrupted=" << m.messages_corrupted
       << " crashes=" << m.node_crashes << " sleeps=" << m.node_sleeps;
  }
  return os << " wall_ms=" << (static_cast<double>(m.wall_ns) / 1e6);
}

}  // namespace ldc
