#include "ldc/runtime/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace ldc {

void RunMetrics::merge(const RunMetrics& other) {
  rounds += other.rounds;
  messages += other.messages;
  total_bits += other.total_bits;
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  congest_violations += other.congest_violations;
  wall_ns += other.wall_ns;
}

bool RunMetrics::same_communication(const RunMetrics& other) const {
  return rounds == other.rounds && messages == other.messages &&
         total_bits == other.total_bits &&
         max_message_bits == other.max_message_bits &&
         congest_violations == other.congest_violations;
}

std::ostream& operator<<(std::ostream& os, const RunMetrics& m) {
  return os << "rounds=" << m.rounds << " messages=" << m.messages
            << " total_bits=" << m.total_bits
            << " max_message_bits=" << m.max_message_bits
            << " congest_violations=" << m.congest_violations
            << " wall_ms=" << (static_cast<double>(m.wall_ns) / 1e6);
}

}  // namespace ldc
