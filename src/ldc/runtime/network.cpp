#include "ldc/runtime/network.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <string>

#include "ldc/support/math.hpp"

namespace ldc {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Enforces the "destinations unique per round" contract for one sender.
/// Checked before any of the sender's messages are validated or delivered,
/// in both engines, so the error order is engine-independent.
void check_unique_destinations(const Network::Outbox& outbox,
                               std::vector<NodeId>& scratch) {
  if (outbox.size() < 2) return;
  scratch.clear();
  for (const auto& [dest, msg] : outbox) scratch.push_back(dest);
  std::sort(scratch.begin(), scratch.end());
  if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end()) {
    throw std::invalid_argument(
        "Network::exchange: duplicate destination in a sender's outbox");
  }
}

}  // namespace

void Network::set_engine(Engine engine, std::size_t threads) {
  if (engine == Engine::kDist) {
    if (dist_ == nullptr) {
      throw std::invalid_argument(
          "Network::set_engine: kDist requires an attached backend — call "
          "attach_dist() with a dist::Coordinator instead");
    }
    engine_ = Engine::kDist;
    pool_.reset();
    shards_.reset();
    return;
  }
  dist_ = nullptr;
  engine_ = engine;
  if (engine == Engine::kSerial) {
    pool_.reset();
    shards_.reset();
    return;
  }
  if (engine == Engine::kSharded) {
    pool_.reset();
    std::size_t k =
        threads == 0 ? ShardCrew::default_shard_count() : threads;
    k = std::min(k, ShardCrew::kMaxShards);
    k = std::min<std::size_t>(k, std::max<NodeId>(graph_->n(), 1));
    if (k <= 1) {
      shards_.reset();  // one shard: run the exact serial code path
      return;
    }
    if (shards_ == nullptr || shards_->size() != k) {
      shards_ = std::make_unique<ShardSet>(*graph_, k,
                                           ShardCrew::pin_from_env());
    }
    return;
  }
  shards_.reset();
  const std::size_t t =
      threads == 0 ? ThreadPool::default_thread_count() : threads;
  if (t <= 1) {
    pool_.reset();  // one lane: run the exact serial code path
    return;
  }
  if (pool_ == nullptr || pool_->size() != t) {
    pool_ = std::make_unique<ThreadPool>(t);
  }
}

void Network::attach_dist(DistBackend* backend) {
  if (backend == nullptr) {
    dist_ = nullptr;
    engine_ = Engine::kSerial;
    return;
  }
  // bind() partitions the graph and runs the assign handshake; it throws
  // on failure, leaving this Network on its previous engine.
  backend->bind(*this);
  dist_ = backend;
  engine_ = Engine::kDist;
  pool_.reset();
  shards_.reset();
}

void Network::account(const Message& m) {
  ++metrics_.messages;
  metrics_.total_bits += m.bit_count();
  metrics_.max_message_bits =
      std::max(metrics_.max_message_bits, m.bit_count());
  if (budget_bits_ != 0 && m.bit_count() > budget_bits_) {
    ++metrics_.congest_violations;
    if (strict_) {
      throw CongestViolation("message of " + std::to_string(m.bit_count()) +
                             " bits exceeds CONGEST budget of " +
                             std::to_string(budget_bits_));
    }
  }
}

void Network::check_budget(const Message& m) const {
  if (budget_bits_ != 0 && m.bit_count() > budget_bits_ && strict_) {
    throw CongestViolation("message of " + std::to_string(m.bit_count()) +
                           " bits exceeds CONGEST budget of " +
                           std::to_string(budget_bits_));
  }
}

void Network::prepare_round_faults(std::uint64_t round, RoundFaults& rf) {
  const auto n = graph_->n();
  if (crashed_.size() != n) {
    crashed_.assign(n, 0);
    crashed_total_ = 0;
  }
  down_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (crashed_[v] == 0 && crashed_total_ < faults_->max_crashes &&
        faults_->crashes_node(round, v)) {
      crashed_[v] = 1;
      ++crashed_total_;
      ++rf.crashes;
    }
    bool down = crashed_[v] != 0;
    if (!down && faults_->sleeps_node(round, v)) {
      down = true;
      ++rf.sleeps;
    }
    down_[v] = down ? 1 : 0;
  }
  metrics_.node_crashes += rf.crashes;
  metrics_.node_sleeps += rf.sleeps;
}

void Network::exchange_serial(const std::vector<Outbox>& outboxes,
                              std::uint64_t round, RoundFaults& rf,
                              std::size_t& round_max_bits) {
  const auto n = graph_->n();
  const bool faulty = faults_ != nullptr && faults_->any();
  MailArena& a = arena_;
  const std::uint64_t ep = a.epoch_;
  auto& lane = a.lane(0, n);

  // Pass 1 (by sender, ascending): validate, account, and count surviving
  // messages per destination. Error and strict-CONGEST throw order is the
  // serial sender/message order, exactly as when delivery was interleaved
  // (on a throw the half-filled arena is never exposed: exchange() already
  // bumped the epoch, so no live view reads it).
  for (NodeId u = 0; u < n; ++u) {
    check_unique_destinations(outboxes[u], a.scratch_);
    const bool sender_down = faulty && down_[u] != 0;
    for (const auto& [dest, msg] : outboxes[u]) {
      if (!graph_->has_edge(u, dest)) {
        throw std::invalid_argument(
            "Network::exchange: message to non-neighbor");
      }
      if (sender_down) continue;  // suppressed: never transmitted
      account(msg);
      round_max_bits = std::max(round_max_bits, msg.bit_count());
      if (faulty &&
          (down_[dest] != 0 || faults_->drops_message(round, u, dest))) {
        ++rf.dropped;
        continue;
      }
      if (faulty && faults_->corrupts_message(round, u, dest)) {
        ++rf.corrupted;
      }
      lane.add_one(dest, ep);
    }
  }

  // Offsets from counts; the lane entries become absolute write cursors.
  if (a.offsets_.size() < n + 1) a.offsets_.resize(n + 1);
  std::uint32_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    a.offsets_[v] = total;
    const std::uint32_t c = lane.at(v, ep);
    lane.set(v, ep, total);
    total += c;
  }
  a.offsets_[n] = total;
  if (a.slots_.size() != total) a.slots_.resize(total);

  // Pass 2 (by sender, ascending): write each surviving message at its
  // destination's cursor. Fault decisions are pure in (seed, round, edge),
  // so re-resolving them here reproduces pass 1 exactly. Ascending senders
  // into per-destination cursors yield ascending sender order per inbox.
  for (NodeId u = 0; u < n; ++u) {
    if (faulty && down_[u] != 0) continue;
    for (const auto& [dest, msg] : outboxes[u]) {
      if (faulty &&
          (down_[dest] != 0 || faults_->drops_message(round, u, dest))) {
        continue;
      }
      MailSlot& slot = a.slots_[lane.counts[dest]++];
      slot.first = u;
      slot.second = msg;  // shares the payload: no copy of the words
      if (faulty && faults_->corrupts_message(round, u, dest)) {
        // flip_bit clones the shared payload (CoW), so the corruption
        // cannot alias the sender's handle or sibling deliveries.
        faults_->corrupt_payload(round, u, dest, slot.second);
      }
    }
  }
}

void Network::exchange_parallel(const std::vector<Outbox>& outboxes,
                                std::uint64_t round, RoundFaults& rf,
                                std::size_t& round_max_bits) {
  const auto n = graph_->n();
  const bool faulty = faults_ != nullptr && faults_->any();
  MailArena& a = arena_;
  const std::uint64_t ep = a.epoch_;
  // Per-shard staging: metrics plus a per-destination count lane. Shards
  // are contiguous ascending sender ranges, so concatenating them in shard
  // order reproduces the serial sender order exactly. Lanes persist in the
  // arena and are epoch-stamped: entries from earlier rounds read as zero,
  // so no O(n·lanes) clearing happens per round. Fault decisions are pure
  // in (seed, round, edge), so the counting pass and the write pass
  // resolve them identically without sharing state.
  struct Shard {
    RunMetrics metrics;
    std::size_t round_max_bits = 0;
    std::uint64_t dropped = 0;
    std::uint64_t corrupted = 0;
  };
  const std::size_t lanes = std::min<std::size_t>(pool_->size(), n);
  std::vector<Shard> shards(lanes);
  for (std::size_t t = 0; t < lanes; ++t) a.lane(t, n);

  // Drop decision shared by the counting and write passes (down receiver
  // first so the plan's drop stream is only consulted for live edges,
  // exactly as in the serial engine).
  auto lost = [&](NodeId u, NodeId dest) {
    return down_[dest] != 0 || faults_->drops_message(round, u, dest);
  };

  // Pass 1 (by sender): validate, account into the shard, count per dest.
  // Exception order matches serial: parallel_for rethrows the lowest chunk
  // = lowest sender, per-sender checks run in serial order within a chunk,
  // and the exception texts are position-independent.
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t t) {
    Shard& sh = shards[t];
    MailArena::Lane& lane = a.lanes_[t];
    std::vector<NodeId> scratch;
    for (std::size_t u = b; u < e; ++u) {
      check_unique_destinations(outboxes[u], scratch);
      const bool sender_down = faulty && down_[u] != 0;
      for (const auto& [dest, msg] : outboxes[u]) {
        if (!graph_->has_edge(static_cast<NodeId>(u), dest)) {
          throw std::invalid_argument(
              "Network::exchange: message to non-neighbor");
        }
        if (sender_down) continue;
        ++sh.metrics.messages;
        sh.metrics.total_bits += msg.bit_count();
        sh.metrics.max_message_bits =
            std::max(sh.metrics.max_message_bits, msg.bit_count());
        if (budget_bits_ != 0 && msg.bit_count() > budget_bits_) {
          ++sh.metrics.congest_violations;
          check_budget(msg);
        }
        sh.round_max_bits = std::max(sh.round_max_bits, msg.bit_count());
        if (faulty && lost(static_cast<NodeId>(u), dest)) {
          ++sh.dropped;
          continue;
        }
        if (faulty &&
            faults_->corrupts_message(round, static_cast<NodeId>(u), dest)) {
          ++sh.corrupted;
        }
        lane.add_one(dest, ep);
      }
    }
  });

  // Pass 2 (by destination): global CSR offsets from the per-lane counts.
  // 2a computes per-chunk slot totals, a serial scan over the (few) chunks
  // assigns chunk base offsets, then 2b lays out each destination's span
  // and turns the lane entries into absolute write cursors, shard by shard
  // — so shard order within an inbox equals ascending sender order.
  if (a.chunk_total_.size() < lanes) a.chunk_total_.resize(lanes);
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t t) {
    std::uint32_t sum = 0;
    for (std::size_t dest = b; dest < e; ++dest) {
      for (std::size_t l = 0; l < lanes; ++l) {
        sum += a.lanes_[l].at(static_cast<NodeId>(dest), ep);
      }
    }
    a.chunk_total_[t] = sum;
  });
  // parallel_for(n, ...) splits [0, n) the same way on every call with the
  // same pool, so chunk t in 2b covers exactly the range summed in 2a.
  const std::size_t chunks = std::min<std::size_t>(pool_->size(), n);
  std::uint32_t total = 0;
  for (std::size_t t = 0; t < chunks; ++t) {
    const std::uint32_t c = a.chunk_total_[t];
    a.chunk_total_[t] = total;
    total += c;
  }
  if (a.offsets_.size() < n + 1) a.offsets_.resize(n + 1);
  a.offsets_[n] = total;
  if (a.slots_.size() != total) a.slots_.resize(total);
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t t) {
    std::uint32_t cur = a.chunk_total_[t];
    for (std::size_t dest = b; dest < e; ++dest) {
      a.offsets_[dest] = cur;
      for (std::size_t l = 0; l < lanes; ++l) {
        MailArena::Lane& lane = a.lanes_[l];
        const std::uint32_t c = lane.at(static_cast<NodeId>(dest), ep);
        lane.set(static_cast<NodeId>(dest), ep, cur);
        cur += c;
      }
    }
  });

  // Pass 3 (by sender, same sharding): write messages at the shard's
  // cursor — disjoint slots, and slot order equals serial insert order.
  // Re-resolves the (pure) fault decisions of pass 1.
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t t) {
    MailArena::Lane& lane = a.lanes_[t];
    for (std::size_t u = b; u < e; ++u) {
      if (faulty && down_[u] != 0) continue;
      for (const auto& [dest, msg] : outboxes[u]) {
        if (faulty && lost(static_cast<NodeId>(u), dest)) continue;
        MailSlot& slot = a.slots_[lane.counts[dest]++];
        slot.first = static_cast<NodeId>(u);
        slot.second = msg;
        if (faulty &&
            faults_->corrupts_message(round, static_cast<NodeId>(u), dest)) {
          faults_->corrupt_payload(round, static_cast<NodeId>(u), dest,
                                   slot.second);
        }
      }
    }
  });

  // Deterministic merge: all folds are sums / maxes, so the totals equal
  // the serial accounting regardless of shard boundaries.
  for (const Shard& sh : shards) {
    metrics_.messages += sh.metrics.messages;
    metrics_.total_bits += sh.metrics.total_bits;
    metrics_.max_message_bits =
        std::max(metrics_.max_message_bits, sh.metrics.max_message_bits);
    metrics_.congest_violations += sh.metrics.congest_violations;
    round_max_bits = std::max(round_max_bits, sh.round_max_bits);
    rf.dropped += sh.dropped;
    rf.corrupted += sh.corrupted;
  }
}

void Network::debug_check_sorted() const {
#ifndef NDEBUG
  // The ascending-sender invariant that replaced the per-inbox sort: the
  // serial engine walks senders in order, the parallel engine's chunks are
  // contiguous ascending ranges merged in chunk order, the sharded engine
  // fills each inbox walking source shards ascending, and the broadcast
  // fill follows the graph's sorted adjacency.
  if (shards_ != nullptr) {
    for (const auto& st : shards_->states_) {
      const MailArena& a = st->arena;
      for (NodeId lv = 0; lv < st->topo.owned(); ++lv) {
        for (std::uint32_t i = a.offsets_[lv] + 1; i < a.offsets_[lv + 1];
             ++i) {
          assert(a.slots_[i - 1].first < a.slots_[i].first &&
                 "sharded inbox not in ascending sender order");
        }
      }
    }
    return;
  }
  for (NodeId v = 0; v < graph_->n(); ++v) {
    for (std::uint32_t i = arena_.offsets_[v] + 1; i < arena_.offsets_[v + 1];
         ++i) {
      assert(arena_.slots_[i - 1].first < arena_.slots_[i].first &&
             "inbox not in ascending sender order");
    }
  }
#endif
}

void Network::finish_round(std::uint64_t msgs_before,
                           std::uint64_t bits_before,
                           std::size_t round_max_bits, std::uint64_t t0,
                           const RoundFaults& rf) {
  metrics_.messages_dropped += rf.dropped;
  metrics_.messages_corrupted += rf.corrupted;
  const std::uint64_t wall_ns = (now_ns() - t0) + pending_compute_ns_;
  pending_compute_ns_ = 0;
  metrics_.wall_ns += wall_ns;
  if (trace_ != nullptr) {
    trace_->record_round(metrics_.messages - msgs_before,
                         metrics_.total_bits - bits_before, round_max_bits,
                         wall_ns, rf);
  }
}

RoundMail Network::seal_round(std::uint64_t msgs_before,
                              std::uint64_t bits_before,
                              std::size_t round_max_bits, std::uint64_t t0,
                              const RoundFaults& rf) {
  debug_check_sorted();
  finish_round(msgs_before, bits_before, round_max_bits, t0, rf);
  if (shards_ != nullptr) {
    return RoundMail(&arena_, &shards_->map_, graph_->n());
  }
  return RoundMail(&arena_, graph_->n());
}

RoundMail Network::exchange(const std::vector<Outbox>& outboxes) {
  const auto n = graph_->n();
  if (outboxes.size() != n) {
    throw std::invalid_argument("Network::exchange: outbox count != n");
  }
  // Round-boundary hook (cancellation checks live here): runs before the
  // round is accounted, so a throwing callback leaves metrics untouched.
  if (round_cb_) round_cb_(metrics_.rounds);
  // Invalidate prior views before touching the arena, so even a throwing
  // round can never expose half-rewritten slots through a stale RoundMail.
  ++arena_.epoch_;
  // The round index keying the fault schedule: silent rounds shift it, so a
  // plan addresses "the k-th round of the run", not "the k-th exchange".
  const std::uint64_t round = metrics_.rounds;
  ++metrics_.rounds;
  RoundFaults rf;
  if (faults_ != nullptr && faults_->any()) prepare_round_faults(round, rf);
  const std::uint64_t msgs_before = metrics_.messages;
  const std::uint64_t bits_before = metrics_.total_bits;
  std::size_t round_max_bits = 0;
  const std::uint64_t t0 = now_ns();
  if (dist_ != nullptr) {
    dist_->exchange_dist(*this, outboxes, round, rf, round_max_bits);
  } else if (shards_ != nullptr) {
    exchange_sharded(outboxes, round, rf, round_max_bits);
  } else if (pool_ != nullptr && pool_->size() > 1) {
    exchange_parallel(outboxes, round, rf, round_max_bits);
  } else {
    exchange_serial(outboxes, round, rf, round_max_bits);
  }
  return seal_round(msgs_before, bits_before, round_max_bits, t0, rf);
}

void Network::broadcast_fill(const std::vector<Message>& msgs,
                             const std::vector<bool>* active,
                             std::uint64_t round, RoundFaults& rf,
                             std::size_t& round_max_bits) {
  const auto n = graph_->n();
  const bool faulty = faults_ != nullptr && faults_->any();
  MailArena& a = arena_;
  // The pure fast path — nobody masked, nobody down — needs no per-edge
  // transmit test and no counting scan: every inbox is exactly the
  // sender-sorted neighbor list, so the offsets are the graph's CSR.
  const bool all_live = active == nullptr && !faulty;
  if (!all_live) {
    a.transmits_.assign(n, 0);
    for (NodeId u = 0; u < n; ++u) {
      const bool sends = (active == nullptr || (*active)[u]) &&
                         !(faulty && down_[u] != 0);
      a.transmits_[u] = sends ? 1 : 0;
    }
  }

  // Sender-side accounting, in ascending sender order — bulk per sender
  // (degree many identical messages) instead of per message, with the
  // strict-CONGEST throw surfacing at the same sender and with the same
  // partial metric updates as the per-message account() loop it replaces.
  for (NodeId u = 0; u < n; ++u) {
    if (!all_live && a.transmits_[u] == 0) continue;
    const std::size_t deg = graph_->degree(u);
    if (deg == 0) continue;
    const std::size_t bits = msgs[u].bit_count();
    if (budget_bits_ != 0 && bits > budget_bits_) {
      if (strict_) {
        // account() for the sender's first message: counts it, then throws.
        ++metrics_.messages;
        metrics_.total_bits += bits;
        metrics_.max_message_bits =
            std::max(metrics_.max_message_bits, bits);
        ++metrics_.congest_violations;
        throw CongestViolation("message of " + std::to_string(bits) +
                               " bits exceeds CONGEST budget of " +
                               std::to_string(budget_bits_));
      }
      metrics_.congest_violations += deg;
    }
    metrics_.messages += deg;
    metrics_.total_bits += static_cast<std::uint64_t>(deg) * bits;
    metrics_.max_message_bits = std::max(metrics_.max_message_bits, bits);
    round_max_bits = std::max(round_max_bits, bits);
  }

  // Sharded engine: sender-side accounting above ran on the coordinator
  // (identical to serial); the per-shard receiver-driven fill takes over.
  if (dist_ != nullptr) {
    dist_->broadcast_fill_dist(*this, msgs, active, round, rf, all_live);
    return;
  }
  if (shards_ != nullptr) {
    broadcast_fill_sharded(msgs, active, round, rf, all_live);
    return;
  }

  // Receiver-side offsets. In the masked/faulty case this is also where
  // the per-edge drop and corruption events are counted (each live edge is
  // visited exactly once; the fill pass re-resolves the pure decisions).
  if (a.offsets_.size() < n + 1) a.offsets_.resize(n + 1);
  std::uint32_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    a.offsets_[v] = total;
    if (all_live) {
      total += static_cast<std::uint32_t>(graph_->degree(v));
      continue;
    }
    const bool receiver_down = faulty && down_[v] != 0;
    for (NodeId u : graph_->neighbors(v)) {
      if (a.transmits_[u] == 0) continue;
      if (faulty &&
          (receiver_down || faults_->drops_message(round, u, v))) {
        ++rf.dropped;
        continue;
      }
      if (faulty && faults_->corrupts_message(round, u, v)) {
        ++rf.corrupted;
      }
      ++total;
    }
  }
  a.offsets_[n] = total;
  if (a.slots_.size() != total) a.slots_.resize(total);

  // Fill (by destination): v's inbox is one shared handle per live
  // in-neighbor, in adjacency order — the graph stores sorted adjacency,
  // so ascending sender order holds with no sort. Parallelizing by
  // destination is race-free: spans are disjoint and all reads are const.
  auto fill = [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t v = b; v < e; ++v) {
      std::uint32_t cur = a.offsets_[v];
      const bool receiver_down =
          !all_live && faulty && down_[v] != 0;
      for (NodeId u : graph_->neighbors(static_cast<NodeId>(v))) {
        if (!all_live) {
          if (a.transmits_[u] == 0) continue;
          if (faulty && (receiver_down ||
                         faults_->drops_message(round, u,
                                                static_cast<NodeId>(v)))) {
            continue;
          }
        }
        MailSlot& slot = a.slots_[cur++];
        slot.first = u;
        slot.second = msgs[u];
        if (!all_live && faulty &&
            faults_->corrupts_message(round, u, static_cast<NodeId>(v))) {
          faults_->corrupt_payload(round, u, static_cast<NodeId>(v),
                                   slot.second);
        }
      }
    }
  };
  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->parallel_for(n, fill);
  } else {
    fill(0, n, 0);
  }
}

RoundMail Network::exchange_broadcast(const std::vector<Message>& msgs,
                                      const std::vector<bool>* active) {
  const auto n = graph_->n();
  if (msgs.size() != n) {
    throw std::invalid_argument(
        "Network::exchange_broadcast: msgs count " +
        std::to_string(msgs.size()) + " != n " + std::to_string(n));
  }
  if (active != nullptr && active->size() != n) {
    throw std::invalid_argument(
        "Network::exchange_broadcast: active mask size != n");
  }
  if (round_cb_) round_cb_(metrics_.rounds);
  ++arena_.epoch_;
  const std::uint64_t round = metrics_.rounds;
  ++metrics_.rounds;
  RoundFaults rf;
  if (faults_ != nullptr && faults_->any()) prepare_round_faults(round, rf);
  const std::uint64_t msgs_before = metrics_.messages;
  const std::uint64_t bits_before = metrics_.total_bits;
  std::size_t round_max_bits = 0;
  const std::uint64_t t0 = now_ns();
  broadcast_fill(msgs, active, round, rf, round_max_bits);
  return seal_round(msgs_before, bits_before, round_max_bits, t0, rf);
}

WordMail Network::exchange_broadcast_word(
    const std::vector<std::uint64_t>& words, std::uint64_t bound,
    const std::vector<bool>* active) {
  const auto n = graph_->n();
  if (words.size() != n) {
    throw std::invalid_argument(
        "Network::exchange_broadcast_word: words count != n");
  }
  if (active != nullptr && active->size() != n) {
    throw std::invalid_argument(
        "Network::exchange_broadcast_word: active mask size != n");
  }
  if (bound == std::numeric_limits<std::uint64_t>::max()) {
    throw std::invalid_argument(
        "Network::exchange_broadcast_word: bound must be < 2^64-1 (the "
        "equivalent write_bounded width is ceil_log2(bound+1))");
  }
  if (round_cb_) round_cb_(metrics_.rounds);
  ++arena_.epoch_;
  const std::uint64_t round = metrics_.rounds;
  ++metrics_.rounds;
  RoundFaults rf;
  const bool faulty = faults_ != nullptr && faults_->any();
  if (faulty) prepare_round_faults(round, rf);
  const std::uint64_t msgs_before = metrics_.messages;
  const std::uint64_t bits_before = metrics_.total_bits;
  std::size_t round_max_bits = 0;
  const std::uint64_t t0 = now_ns();

  // Payload width of the round: every live sender transmits exactly the
  // bits write_bounded(word, bound) would pack.
  const std::size_t bits = static_cast<std::size_t>(ceil_log2(bound + 1));
  MailArena& a = arena_;
  const bool all_live = active == nullptr && !faulty;
  if (!all_live) {
    a.transmits_.assign(n, 0);
    for (NodeId u = 0; u < n; ++u) {
      const bool sends = (active == nullptr || (*active)[u]) &&
                         !(faulty && down_[u] != 0);
      a.transmits_[u] = sends ? 1 : 0;
    }
  }

  // Sender-side accounting: the same bulk walk as broadcast_fill, with
  // every live sender's payload exactly `bits` wide — so metrics, trace
  // rows, and the strict-CONGEST throw point match the Message path.
  for (NodeId u = 0; u < n; ++u) {
    if (!all_live && a.transmits_[u] == 0) continue;
    const std::size_t deg = graph_->degree(u);
    if (deg == 0) continue;
    assert(words[u] <= bound &&
           "exchange_broadcast_word: live sender's word exceeds bound");
    if (budget_bits_ != 0 && bits > budget_bits_) {
      if (strict_) {
        ++metrics_.messages;
        metrics_.total_bits += bits;
        metrics_.max_message_bits =
            std::max(metrics_.max_message_bits, bits);
        ++metrics_.congest_violations;
        throw CongestViolation("message of " + std::to_string(bits) +
                               " bits exceeds CONGEST budget of " +
                               std::to_string(budget_bits_));
      }
      metrics_.congest_violations += deg;
    }
    metrics_.messages += deg;
    metrics_.total_bits += static_cast<std::uint64_t>(deg) * bits;
    metrics_.max_message_bits = std::max(metrics_.max_message_bits, bits);
    round_max_bits = std::max(round_max_bits, bits);
  }

  if (dist_ != nullptr) {
    // Workers validate and count their halo traffic; the master arena is
    // filled in the serial layout, so the serial-mode view below applies.
    dist_->word_fill_dist(*this, words, bits, round, rf, all_live);
    finish_round(msgs_before, bits_before, round_max_bits, t0, rf);
    return WordMail(&arena_, graph_, all_live, n);
  }
  if (shards_ != nullptr) {
    // Per-shard fill: dense rounds snapshot owned + halo words into the
    // shard's arena; masked/faulty rounds build per-shard word CSRs.
    word_fill_sharded(words, bits, round, rf, all_live);
    finish_round(msgs_before, bits_before, round_max_bits, t0, rf);
    return WordMail(&arena_, &shards_->map_, all_live, n);
  }

  if (all_live) {
    // Dense mode: one word per sender; lanes are synthesized from the
    // graph CSR at read time. O(n) work for an O(m) logical round.
    if (a.words_.size() < n) a.words_.resize(n);
    std::copy(words.begin(), words.end(), a.words_.begin());
  } else {
    // Sparse mode: CSR of (sender, word) slots, mirroring broadcast_fill's
    // masked/faulty path — drop and corruption events are counted in the
    // offset pass and re-resolved (pure decisions) in the fill pass.
    if (a.offsets_.size() < n + 1) a.offsets_.resize(n + 1);
    std::uint32_t total = 0;
    for (NodeId v = 0; v < n; ++v) {
      a.offsets_[v] = total;
      const bool receiver_down = faulty && down_[v] != 0;
      for (NodeId u : graph_->neighbors(v)) {
        if (a.transmits_[u] == 0) continue;
        if (faulty &&
            (receiver_down || faults_->drops_message(round, u, v))) {
          ++rf.dropped;
          continue;
        }
        if (faulty && faults_->corrupts_message(round, u, v)) {
          ++rf.corrupted;
        }
        ++total;
      }
    }
    a.offsets_[n] = total;
    if (a.word_slots_.size() != total) a.word_slots_.resize(total);
    for (NodeId v = 0; v < n; ++v) {
      std::uint32_t cur = a.offsets_[v];
      const bool receiver_down = faulty && down_[v] != 0;
      for (NodeId u : graph_->neighbors(v)) {
        if (a.transmits_[u] == 0) continue;
        if (faulty &&
            (receiver_down || faults_->drops_message(round, u, v))) {
          continue;
        }
        WordSlot& slot = a.word_slots_[cur++];
        slot.sender = u;
        slot.value = words[u];
        if (faulty && faults_->corrupts_message(round, u, v)) {
          faults_->corrupt_word(round, u, v, slot.value, bits);
        }
      }
    }
  }

  finish_round(msgs_before, bits_before, round_max_bits, t0, rf);
  return WordMail(&arena_, graph_, all_live, n);
}

void Network::run_node_programs(const std::function<void(NodeId)>& fn) {
  const auto n = graph_->n();
  const std::uint64_t t0 = now_ns();
  if (shards_ != nullptr) {
    // Each shard's worker runs its own range — node state written by fn
    // stays on the pages that worker first-touched. Lowest-shard
    // exceptions win, matching a serial loop's error order.
    ShardSet& S = *shards_;
    S.crew_.run([&](std::size_t k) {
      const ShardState& st = *S.states_[k];
      for (NodeId v = st.topo.vbegin; v < st.topo.vend; ++v) fn(v);
    });
    pending_compute_ns_ += now_ns() - t0;
    return;
  }
  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->parallel_for(n,
                        [&](std::size_t b, std::size_t e, std::size_t) {
                          for (std::size_t v = b; v < e; ++v) {
                            fn(static_cast<NodeId>(v));
                          }
                        });
  } else {
    for (NodeId v = 0; v < n; ++v) fn(v);
  }
  pending_compute_ns_ += now_ns() - t0;
}

}  // namespace ldc
